package rca

import (
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	setup := Setup{
		Corpus:       CorpusConfig{AuxModules: 30, Seed: 2},
		EnsembleSize: 30,
		ExpSize:      6,
	}
	out, err := RunExperiment(WSUBBUG, setup)
	if err != nil {
		t.Fatal(err)
	}
	if !out.BugLocated {
		t.Fatal("WSUBBUG not located through public API")
	}
	report := FormatOutcome(out)
	for _, want := range []string{"WSUBBUG", "UF-ECT failure", "induced subgraph",
		"bug located", "iteration 1"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestExperimentsList(t *testing.T) {
	specs := Experiments()
	if len(specs) != 6 {
		t.Fatalf("experiments = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name()] = true
	}
	for _, want := range []string{"WSUBBUG", "RAND-MT", "GOFFGRATCH", "AVX2",
		"RANDOMBUG", "DYN3BUG"} {
		if !names[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestCorpusConfigs(t *testing.T) {
	d := DefaultCorpus()
	p := PaperScaleCorpus()
	if d.AuxModules <= 0 || p.AuxModules <= d.AuxModules {
		t.Fatalf("corpus configs: default=%d paper=%d", d.AuxModules, p.AuxModules)
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{
		{Config: "AVX2 enabled, all modules", FailureRate: 0.92},
		{Config: "AVX2 disabled, all modules", FailureRate: 0.02},
	}
	s := FormatTable1(rows)
	if !strings.Contains(s, "92%") || !strings.Contains(s, "2%") {
		t.Fatalf("table formatting:\n%s", s)
	}
}
