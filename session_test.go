package rca

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/climate-rca/rca/internal/experiments"
)

// outcomeSummary collects every deterministic quantity an Outcome
// carries, for whole-pipeline equality checks.
type outcomeSummary struct {
	Name            string
	FailureRate     float64
	SelectedOutputs []string
	Internals       []string
	GraphNodes      int
	GraphEdges      int
	SliceNodes      int
	SliceEdges      int
	BugNodes        []int
	BugDisplays     []string
	KGenFlagged     []string
	BugInSlice      bool
	BugLocated      bool
	Iterations      int
	Actions         []string
	Final           []int
}

func summarize(o *Outcome) outcomeSummary {
	s := outcomeSummary{
		Name:            o.Name,
		FailureRate:     o.FailureRate,
		SelectedOutputs: o.SelectedOutputs,
		Internals:       o.Internals,
		GraphNodes:      o.GraphNodes,
		GraphEdges:      o.GraphEdges,
		SliceNodes:      o.SliceNodes,
		SliceEdges:      o.SliceEdges,
		BugNodes:        o.BugNodes,
		BugDisplays:     o.BugDisplays,
		KGenFlagged:     o.KGenFlagged,
		BugInSlice:      o.BugInSlice,
		BugLocated:      o.BugLocated,
		Iterations:      len(o.Refine.Iterations),
		Final:           o.Refine.Final,
	}
	for _, it := range o.Refine.Iterations {
		s.Actions = append(s.Actions, string(it.Action))
	}
	return s
}

// legacySpecs are the prewired §6 experiments expressed in the
// deprecated closed-world Spec form, index-aligned with Experiments().
var legacySpecs = []Spec{
	{Name: "WSUBBUG", Bug: BugWsub, CAMOnly: true, SelectK: 1},
	{Name: "RAND-MT", Mersenne: true, CAMOnly: true, SelectK: 5},
	{Name: "GOFFGRATCH", Bug: BugGoffGratch, CAMOnly: true, SelectK: 5},
	{Name: "AVX2", FMA: true, CAMOnly: true, SelectK: 5},
	{Name: "RANDOMBUG", Bug: BugRandomIdx, CAMOnly: true, SelectK: 1},
	{Name: "DYN3BUG", Bug: BugDyn3, CAMOnly: true, SelectK: 5},
}

// TestScenariosMatchDeprecatedSpecPath pins the redesign's determinism
// acceptance: for every prewired experiment, the scenario value run
// through Session.Run must be observationally identical to the
// deprecated closed-world Spec run through RunSpec — opening the enum
// into injections must not change a single outcome quantity.
func TestScenariosMatchDeprecatedSpecPath(t *testing.T) {
	ctx := context.Background()
	cfg := CorpusConfig{AuxModules: 30, Seed: 2}
	setup := Setup{Corpus: cfg, EnsembleSize: 24, ExpSize: 6}
	session := NewSession(cfg, WithEnsembleSize(24), WithExpSize(6))
	scenarios := Experiments()
	for i, spec := range legacySpecs {
		spec, sc := spec, scenarios[i]
		t.Run(spec.Name, func(t *testing.T) {
			want, err := RunSpec(spec, setup)
			if err != nil {
				t.Fatalf("spec path: %v", err)
			}
			got, err := session.Run(ctx, sc)
			if err != nil {
				t.Fatalf("scenario path: %v", err)
			}
			if !reflect.DeepEqual(summarize(got), summarize(want)) {
				t.Fatalf("scenario outcome diverges from deprecated Spec path:\nscenario: %+v\nspec:     %+v",
					summarize(got), summarize(want))
			}
		})
	}
}

// TestSessionRunAllConcurrent proves the cached corpus, ensemble and
// metagraphs are safe to share across RunAll's worker goroutines (run
// under -race in CI) and that the fan-out returns the same outcomes a
// sequential composition does.
func TestSessionRunAllConcurrent(t *testing.T) {
	ctx := context.Background()
	cfg := CorpusConfig{AuxModules: 30, Seed: 2}
	scenarios := Experiments()

	concurrent := NewSession(cfg, WithEnsembleSize(20), WithExpSize(5), WithWorkers(len(scenarios)))
	outs, err := concurrent.RunAll(ctx, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(scenarios) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(scenarios))
	}
	sequential := NewSession(cfg, WithEnsembleSize(20), WithExpSize(5))
	for i, sc := range scenarios {
		if outs[i] == nil || outs[i].Name != sc.Name() {
			t.Fatalf("outcome %d = %+v, want %s", i, outs[i], sc.Name())
		}
		want, err := sequential.Run(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(summarize(outs[i]), summarize(want)) {
			t.Fatalf("%s: concurrent outcome diverges:\nconcurrent: %+v\nsequential: %+v",
				sc.Name(), summarize(outs[i]), summarize(want))
		}
	}
}

// TestSessionStagesCompose exercises the typed stages individually and
// checks they agree with the composed Run.
func TestSessionStagesCompose(t *testing.T) {
	ctx := context.Background()
	session := NewSession(CorpusConfig{AuxModules: 30, Seed: 2},
		WithEnsembleSize(20), WithExpSize(5))
	sc := WSUBBUG

	v, err := session.Verdict(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if v.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", v.FailureRate)
	}
	sel, err := session.SelectVariables(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Outputs) == 0 {
		t.Fatal("no outputs selected")
	}
	comp, err := session.Compile(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Metagraph.G.NumNodes() == 0 {
		t.Fatal("empty metagraph")
	}
	sl, err := session.Slice(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.BugInSlice {
		t.Fatal("bug not in slice")
	}
	ref, err := session.Refine(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := session.Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate != v.FailureRate || out.Refine != ref ||
		out.Metagraph != comp.Metagraph || out.Slice != sl.Slice {
		t.Fatal("Run did not reuse the cached stage results")
	}
	if !out.BugLocated {
		t.Fatal("bug not located")
	}
}

// TestCompositeScenarioEndToEnd is the acceptance scenario: a
// user-defined two-defect composite (WSUB + GOFFGRATCH, not in the
// prewired catalog) runs end to end, carries both defect sites, and a
// re-run — even under a different display name — hits the session's
// metagraph and refinement caches.
func TestCompositeScenarioEndToEnd(t *testing.T) {
	ctx := context.Background()
	cfg := CorpusConfig{AuxModules: 30, Seed: 2}
	session := NewSession(cfg, WithEnsembleSize(20), WithExpSize(5))

	opts := ScenarioOptions{CAMOnly: true, SelectK: 5}
	sc := NewScenario("WSUB+GG", opts, WsubDefect(), GoffGratchDefect())

	out, err := session.Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("composite failure rate = %v", out.FailureRate)
	}
	if len(out.BugNodes) < 2 {
		t.Fatalf("composite carries %d defect sites (%v); want both defects",
			len(out.BugNodes), out.BugDisplays)
	}
	if !out.BugInSlice {
		t.Fatalf("no composite defect site in slice (selected %v)", out.SelectedOutputs)
	}

	// Re-run: every stage must come from cache (pointer identity).
	again, err := session.Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Refine != out.Refine || again.Metagraph != out.Metagraph || again.Slice != out.Slice {
		t.Fatal("re-run did not hit the stage caches")
	}

	// Cache keys derive from injection fingerprints, not display
	// names: a renamed but identical scenario shares everything.
	renamed := NewScenario("SOMETHING-ELSE", opts, WsubDefect(), GoffGratchDefect())
	out2, err := session.Run(ctx, renamed)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Refine != out.Refine || out2.Metagraph != out.Metagraph {
		t.Fatal("renamed identical scenario missed the caches")
	}
	if out2.Name != "SOMETHING-ELSE" {
		t.Fatalf("outcome name = %q", out2.Name)
	}

	fp1, err := ScenarioFingerprint(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := ScenarioFingerprint(cfg, renamed)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ for identical injections:\n%s\n%s", fp1, fp2)
	}
	single, err := ScenarioFingerprint(cfg, WSUBBUG)
	if err != nil {
		t.Fatal(err)
	}
	if single == fp1 {
		t.Fatal("single- and two-defect scenarios share a fingerprint")
	}
}

// TestConflictingInjectionsRejected: contradictory compositions fail
// with the typed error before any model work happens.
func TestConflictingInjectionsRejected(t *testing.T) {
	ctx := context.Background()
	session := NewSession(CorpusConfig{AuxModules: 25, Seed: 2})
	cases := []Scenario{
		NewScenario("two-prng", ScenarioOptions{}, MersennePRNG(), MersennePRNG()),
		NewScenario("two-fma", ScenarioOptions{}, EnableFMA(), EnableFMA("micro_mg")),
		NewScenario("same-param", ScenarioOptions{},
			PerturbParameter("turbcoef", 0.02), PerturbParameter("turbcoef", 0.03)),
		NewScenario("same-assign", ScenarioOptions{}, WsubDefect(), WsubDefect()),
	}
	for _, sc := range cases {
		if _, err := session.Run(ctx, sc); !errors.Is(err, ErrConflictingInjections) {
			t.Errorf("%s: err = %v, want ErrConflictingInjections", sc.Name(), err)
		}
	}
}

// TestUnknownSubprogramRejected: an injection over a nonexistent
// target surfaces corpus.ErrUnknownSubprogram through the session.
func TestUnknownSubprogramRejected(t *testing.T) {
	ctx := context.Background()
	session := NewSession(CorpusConfig{AuxModules: 25, Seed: 2})
	sc := NewScenario("ghost", ScenarioOptions{},
		ScaleAssignment{Subprogram: "no_such_sub", Var: "x", Factor: 1.5})
	if _, err := session.Run(ctx, sc); !errors.Is(err, ErrUnknownSubprogram) {
		t.Fatalf("err = %v, want ErrUnknownSubprogram", err)
	}
}

// cancelingSampler cancels its context the first time refinement
// starts, forcing a deterministic mid-pipeline cancellation.
type cancelingSampler struct {
	cancel context.CancelFunc
	inner  Sampler
}

func (c cancelingSampler) Kind() string { return "cancel-on-refine" }

func (c cancelingSampler) Refine(in experiments.RefineInput) (*RefineResult, error) {
	c.cancel()
	return c.inner.Refine(in)
}

// TestRunAllCancellationMidRun is the cancellation acceptance test: a
// context canceled mid-RunAll surfaces ErrCanceled (and the context's
// own error) promptly, the canceled result is not memoized, and the
// session stays fully reusable afterwards. Run under -race in CI.
func TestRunAllCancellationMidRun(t *testing.T) {
	cfg := CorpusConfig{AuxModules: 25, Seed: 2}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	session := NewSession(cfg,
		WithEnsembleSize(16), WithExpSize(4), WithWorkers(3),
		WithSampler(cancelingSampler{cancel: cancel, inner: ValueSampling(0)}))

	_, err := session.RunAll(ctx, Experiments())
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled through the wrapper", err)
	}

	// The session must remain reusable with a fresh context: the
	// canceled refinement was not memoized, and the cached corpus,
	// fingerprint and metagraphs still serve. (The sampler's cancel
	// func is idempotent — it only affects the original context.)
	got, err := session.Run(context.Background(), WSUBBUG)
	if err != nil {
		t.Fatalf("session not reusable after cancellation: %v", err)
	}
	fresh := NewSession(cfg, WithEnsembleSize(16), WithExpSize(4))
	want, err := fresh.Run(context.Background(), WSUBBUG)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(summarize(got), summarize(want)) {
		t.Fatalf("post-cancellation outcome diverges:\nreused: %+v\nfresh:  %+v",
			summarize(got), summarize(want))
	}
}

// TestSessionContextCancellationPerCall: a canceled per-call context
// aborts stages with the typed error.
func TestSessionContextCancellationPerCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	session := NewSession(CorpusConfig{AuxModules: 30, Seed: 2})
	_, err := session.Run(ctx, WSUBBUG)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled/context.Canceled", err)
	}
}

// TestSessionContextCancellationConstructor: the deprecated
// constructor-scoped context still aborts.
func TestSessionContextCancellationConstructor(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	session := NewSession(CorpusConfig{AuxModules: 30, Seed: 2}, WithContext(ctx))
	if _, err := session.Run(context.Background(), WSUBBUG); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestSessionTable1 shares the session's ensemble and metagraph with
// the selective-FMA study.
func TestSessionTable1(t *testing.T) {
	ctx := context.Background()
	session := NewSession(CorpusConfig{AuxModules: 25, Seed: 2},
		WithEnsembleSize(20), WithExpSize(4))
	rows, err := session.Table1(ctx, Table1Setup{ExpSize: 3, TopK: 5, RandomSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Enabled-everywhere must fail far more often than
	// disabled-everywhere (the Table 1 shape).
	if rows[0].FailureRate < rows[len(rows)-1].FailureRate {
		t.Fatalf("table shape wrong: %+v", rows)
	}
}

// TestRunExperimentRejectsUnknownSampler: the stringly-typed kind now
// fails loudly instead of silently running the value sampler.
func TestRunExperimentRejectsUnknownSampler(t *testing.T) {
	setup := Setup{Corpus: CorpusConfig{AuxModules: 25, Seed: 2}, SamplerKind: "bogus"}
	if _, err := RunExperiment(WSUBBUG, setup); err == nil {
		t.Fatal("expected unknown-sampler error")
	}
}

func TestAllExperimentsIncludesSupplement(t *testing.T) {
	all := AllExperiments()
	if len(all) != 8 {
		t.Fatalf("all experiments = %d", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name()] = true
	}
	for _, want := range []string{"AVX2-FULL", "LANDBUG"} {
		if !names[want] {
			t.Fatalf("missing supplement scenario %s", want)
		}
	}
}
