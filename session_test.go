package rca

import (
	"context"
	"reflect"
	"testing"
)

// outcomeSummary collects every deterministic quantity an Outcome
// carries, for whole-pipeline equality checks.
type outcomeSummary struct {
	Name            string
	FailureRate     float64
	SelectedOutputs []string
	Internals       []string
	GraphNodes      int
	GraphEdges      int
	SliceNodes      int
	SliceEdges      int
	BugNodes        []int
	BugDisplays     []string
	KGenFlagged     []string
	BugInSlice      bool
	BugLocated      bool
	Iterations      int
	Actions         []string
	Final           []int
}

func summarize(o *Outcome) outcomeSummary {
	s := outcomeSummary{
		Name:            o.Spec.Name,
		FailureRate:     o.FailureRate,
		SelectedOutputs: o.SelectedOutputs,
		Internals:       o.Internals,
		GraphNodes:      o.GraphNodes,
		GraphEdges:      o.GraphEdges,
		SliceNodes:      o.SliceNodes,
		SliceEdges:      o.SliceEdges,
		BugNodes:        o.BugNodes,
		BugDisplays:     o.BugDisplays,
		KGenFlagged:     o.KGenFlagged,
		BugInSlice:      o.BugInSlice,
		BugLocated:      o.BugLocated,
		Iterations:      len(o.Refine.Iterations),
		Final:           o.Refine.Final,
	}
	for _, it := range o.Refine.Iterations {
		s.Actions = append(s.Actions, string(it.Action))
	}
	return s
}

// TestSessionMatchesRunExperiment asserts the staged Session pipeline
// is observationally identical to the one-shot seed API for all six §6
// experiments: sharing the cached corpus, ensemble fingerprint and
// metagraphs must not change a single outcome quantity.
func TestSessionMatchesRunExperiment(t *testing.T) {
	cfg := CorpusConfig{AuxModules: 30, Seed: 2}
	setup := Setup{Corpus: cfg, EnsembleSize: 24, ExpSize: 6}
	session := NewSession(cfg, WithEnsembleSize(24), WithExpSize(6))
	for _, spec := range Experiments() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, err := RunExperiment(spec, setup)
			if err != nil {
				t.Fatalf("one-shot: %v", err)
			}
			got, err := session.Run(spec)
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			if !reflect.DeepEqual(summarize(got), summarize(want)) {
				t.Fatalf("session outcome diverges from one-shot:\nsession: %+v\none-shot: %+v",
					summarize(got), summarize(want))
			}
		})
	}
}

// TestSessionRunAllConcurrent proves the cached corpus, ensemble and
// metagraphs are safe to share across RunAll's worker goroutines (run
// under -race in CI) and that the fan-out returns the same outcomes a
// sequential composition does.
func TestSessionRunAllConcurrent(t *testing.T) {
	cfg := CorpusConfig{AuxModules: 30, Seed: 2}
	specs := Experiments()

	concurrent := NewSession(cfg, WithEnsembleSize(20), WithExpSize(5), WithWorkers(len(specs)))
	outs, err := concurrent.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(specs) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(specs))
	}
	sequential := NewSession(cfg, WithEnsembleSize(20), WithExpSize(5))
	for i, spec := range specs {
		if outs[i] == nil || outs[i].Spec.Name != spec.Name {
			t.Fatalf("outcome %d = %+v, want %s", i, outs[i], spec.Name)
		}
		want, err := sequential.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(summarize(outs[i]), summarize(want)) {
			t.Fatalf("%s: concurrent outcome diverges:\nconcurrent: %+v\nsequential: %+v",
				spec.Name, summarize(outs[i]), summarize(want))
		}
	}
}

// TestSessionStagesCompose exercises the typed stages individually and
// checks they agree with the composed Run.
func TestSessionStagesCompose(t *testing.T) {
	session := NewSession(CorpusConfig{AuxModules: 30, Seed: 2},
		WithEnsembleSize(20), WithExpSize(5))
	spec := WSUBBUG

	v, err := session.Verdict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", v.FailureRate)
	}
	sel, err := session.SelectVariables(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Outputs) == 0 {
		t.Fatal("no outputs selected")
	}
	comp, err := session.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Metagraph.G.NumNodes() == 0 {
		t.Fatal("empty metagraph")
	}
	sl, err := session.Slice(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.BugInSlice {
		t.Fatal("bug not in slice")
	}
	ref, err := session.Refine(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := session.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate != v.FailureRate || out.Refine != ref ||
		out.Metagraph != comp.Metagraph || out.Slice != sl.Slice {
		t.Fatal("Run did not reuse the cached stage results")
	}
	if !out.BugLocated {
		t.Fatal("bug not located")
	}
}

// TestSessionContextCancellation: a cancelled context aborts stages.
func TestSessionContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	session := NewSession(CorpusConfig{AuxModules: 30, Seed: 2}, WithContext(ctx))
	if _, err := session.Run(WSUBBUG); err == nil {
		t.Fatal("expected context error")
	}
}

// TestSessionTable1 shares the session's ensemble and metagraph with
// the selective-FMA study.
func TestSessionTable1(t *testing.T) {
	session := NewSession(CorpusConfig{AuxModules: 25, Seed: 2},
		WithEnsembleSize(20), WithExpSize(4))
	rows, err := session.Table1(Table1Setup{ExpSize: 3, TopK: 5, RandomSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Enabled-everywhere must fail far more often than
	// disabled-everywhere (the Table 1 shape).
	if rows[0].FailureRate < rows[len(rows)-1].FailureRate {
		t.Fatalf("table shape wrong: %+v", rows)
	}
}

// TestRunExperimentRejectsUnknownSampler: the stringly-typed kind now
// fails loudly instead of silently running the value sampler.
func TestRunExperimentRejectsUnknownSampler(t *testing.T) {
	setup := Setup{Corpus: CorpusConfig{AuxModules: 25, Seed: 2}, SamplerKind: "bogus"}
	if _, err := RunExperiment(WSUBBUG, setup); err == nil {
		t.Fatal("expected unknown-sampler error")
	}
}

func TestAllExperimentsIncludesSupplement(t *testing.T) {
	all := AllExperiments()
	if len(all) != 8 {
		t.Fatalf("all experiments = %d", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name] = true
	}
	for _, want := range []string{"AVX2-FULL", "LANDBUG"} {
		if !names[want] {
			t.Fatalf("missing supplement spec %s", want)
		}
	}
}
