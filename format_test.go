package rca

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/coverage"
	"github.com/climate-rca/rca/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestFormatOutcomeGolden pins the FormatOutcome report layout — the
// surface ectool/rca users scrape — against a golden file, so
// formatting regressions are caught by CI instead of downstream
// parsers.
func TestFormatOutcomeGolden(t *testing.T) {
	out := &Outcome{
		Name:        "WSUB+GG",
		FailureRate: 0.875,
		FirstStep: &experiments.FirstStepResult{
			Differing: []string{"WSUB"},
			Total:     120,
		},
		SelectedOutputs: []string{"WSUB", "CLDLOW"},
		Internals:       []string{"wsub", "cldlow"},
		Coverage: coverage.Report{
			ModulesBefore: 104, ModulesAfter: 63,
			SubprogramsBefore: 340, SubprogramsAfter: 181,
		},
		GraphNodes:  4821,
		GraphEdges:  19044,
		SliceNodes:  212,
		SliceEdges:  845,
		BugNodes:    []int{17, 93},
		BugDisplays: []string{"wsub__microp_aero", "es__goffgratch_svp"},
		KGenFlagged: []string{"ratio", "dum"},
		BugInSlice:  true,
		BugLocated:  true,
		Refine: &core.Result{
			Iterations: []core.Iteration{
				{Nodes: 212, Edges: 845, LargestSCC: 9,
					Communities: [][]int{{1, 2, 3}, {4, 5}},
					Sampled:     []int{1, 4}, Detected: []int{1},
					Action: core.ActionContractToDetected},
				{Nodes: 31, Edges: 77, LargestSCC: 3,
					Communities: [][]int{{1, 2}},
					Sampled:     []int{1}, Detected: []int{1},
					Action: core.ActionBugInstrumented},
			},
			Final:           []int{17},
			BugInstrumented: true,
			Converged:       true,
		},
	}
	golden(t, "format_outcome.golden", FormatOutcome(out))
}

// TestFormatTable1Golden pins the Table 1 rendering.
func TestFormatTable1Golden(t *testing.T) {
	rows := []Table1Row{
		{Config: "AVX2 enabled, all modules", FailureRate: 0.92},
		{Config: "AVX2 disabled, 50 largest modules", FailureRate: 0.86},
		{Config: "AVX2 disabled, 50 rand mods (10 sample avg)", FailureRate: 0.83},
		{Config: "AVX2 disabled, 50 central modules", FailureRate: 0.08},
		{Config: "AVX2 disabled, all modules", FailureRate: 0.02},
	}
	golden(t, "format_table1.golden", FormatTable1(rows))
}
