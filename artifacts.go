package rca

import (
	"time"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/experiments"
)

// ArtifactStore is a content-addressed on-disk artifact store shared
// by any number of sessions and processes: compiled bytecode programs,
// generated corpora, coverage-filtered metagraphs and finished
// outcomes are stored once under their scenario fingerprints
// (sha-256 path layout, atomic writes, integrity-verified reads,
// size-capped LRU eviction) and rebuilt at most once across every
// process on the same directory via lock-file singleflight. See
// OpenArtifactStore and WithArtifacts; rcad's -store flag wires one
// through the daemon for warm restarts and multi-worker sharing.
type ArtifactStore = artifact.Store

// ArtifactStoreStats is a snapshot of store counters (hits, misses,
// evictions, current bytes).
type ArtifactStoreStats = artifact.Stats

// OpenArtifactStore opens (creating if needed) an artifact store
// rooted at dir.
func OpenArtifactStore(dir string, opts ...ArtifactStoreOption) (*ArtifactStore, error) {
	return artifact.Open(dir, opts...)
}

// ArtifactStoreOption configures OpenArtifactStore.
type ArtifactStoreOption = artifact.Option

// WithStoreMaxBytes caps the store's total on-disk payload bytes;
// puts evict least-recently-accessed blobs beyond the cap (default
// 512 MiB).
func WithStoreMaxBytes(n int64) ArtifactStoreOption { return artifact.WithMaxBytes(n) }

// WithStoreLockStale sets the age after which another process may
// steal a build lock or queue lease (the holder is presumed crashed;
// default 2 minutes).
func WithStoreLockStale(d time.Duration) ArtifactStoreOption { return artifact.WithLockStale(d) }

// WithStoreBreaker tunes the store's write-path circuit breaker:
// threshold consecutive I/O failures trip it into degraded mode
// (in-memory pass-through), and every cooldown interval one half-open
// probe retries the disk (defaults 5 failures / 5s).
func WithStoreBreaker(threshold int, cooldown time.Duration) ArtifactStoreOption {
	return artifact.WithBreaker(threshold, cooldown)
}

// WithArtifacts attaches an artifact store to a session: corpus
// builds, compiled bytecode programs and compiled metagraphs gain a
// write-through/read-back disk layer keyed by the session's scenario
// fingerprints, so a fresh process pointed at a warm store skips
// generation, compilation and the coverage trace, and concurrent
// processes sharing the store build each artifact exactly once.
func WithArtifacts(store *ArtifactStore) Option { return experiments.WithArtifacts(store) }
