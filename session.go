package rca

import (
	"context"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/experiments"
	"github.com/climate-rca/rca/internal/lasso"
	"github.com/climate-rca/rca/internal/model"
)

// Session is the compile-once, run-many entry point: constructed once
// per corpus configuration, it caches the generated corpus builds, the
// control-ensemble ECT fingerprint and the compiled metagraphs, and
// exposes the pipeline as typed stages plus Run/RunAll/Table1
// composing them. Cache keys are scenario fingerprints (concatenated
// injection IDs), so user-defined and multi-defect scenarios share
// work exactly like the prewired catalog. A Session is safe for
// concurrent use.
//
// Every call takes a context.Context; cancellation is honored at
// stage entry, between ensemble members, and between refinement
// iterations, surfaces as ErrCanceled (also matching the context's
// own error), and is never memoized — the Session stays reusable
// after a canceled investigation.
//
//	session := rca.NewSession(rca.DefaultCorpus(),
//		rca.WithEnsembleSize(40),
//		rca.WithSampler(rca.ValueSampling(0)))
//	outs, err := session.RunAll(ctx, rca.Experiments())
type Session = experiments.Session

// Option configures a Session (functional options for NewSession).
type Option = experiments.Option

// Sampler is the step-7 instrumentation strategy used by the
// refinement loop; see ValueSampling, ReachSampling, GradedSampling.
type Sampler = experiments.Sampler

// Stage names one pipeline stage of Session.Run, in execution order:
// StageVerdict, StageSelect, StageCompile, StageSlice, StageRefine.
type Stage = experiments.Stage

// The pipeline stages Session.Run reports, in order.
const (
	StageVerdict = experiments.StageVerdict
	StageSelect  = experiments.StageSelect
	StageCompile = experiments.StageCompile
	StageSlice   = experiments.StageSlice
	StageRefine  = experiments.StageRefine
)

// Stages lists the pipeline stages in execution order.
func Stages() []Stage { return experiments.Stages() }

// WithProgress returns a context that makes Session.Run report each
// stage transition to f before entering the stage — the hook rcad's
// job progress events are built on. Cached stages still report: the
// callback narrates the investigation's logical progress. f must be
// safe for concurrent use when the context is shared across goroutines
// (RunAll fan-out).
func WithProgress(ctx context.Context, f func(Stage)) context.Context {
	return experiments.WithProgress(ctx, f)
}

// ScenarioKeys are the layered cache fingerprints of one scenario over
// a session's corpus configuration (Source ⊂ Build ⊂ Scenario); see
// Session.Keys. External caching and deduplication layers — rcad's
// singleflight job dedup, its outcome store — key on these.
type ScenarioKeys = experiments.Keys

// Stage payloads of the Session API.
type (
	// Verdict is the UF-ECT consistency verdict (pipeline step 0).
	Verdict = experiments.Verdict
	// Selection is the §3 affected-variable selection.
	Selection = experiments.Selection
	// Compiled is the coverage-filtered metagraph (§4).
	Compiled = experiments.Compiled
	// Sliced is the induced subgraph plus known defect sites (§5).
	Sliced = experiments.Sliced
	// RefineResult is the Algorithm 5.4 refinement trace.
	RefineResult = core.Result
	// RunOutput maps output labels to step-9 global means.
	RunOutput = ect.RunOutput
)

// NewSession builds a Session for one corpus configuration. Nothing is
// generated until a stage needs it; every expensive artifact (corpus
// build, ensemble, metagraph) is then cached for the session's
// lifetime under the requesting scenario's injection fingerprints.
func NewSession(cfg CorpusConfig, opts ...Option) *Session {
	return experiments.NewSession(cfg, opts...)
}

// WithEnsembleSize sets the control-ensemble size (default 40, the
// paper's choice).
func WithEnsembleSize(n int) Option { return experiments.WithEnsembleSize(n) }

// WithExpSize sets the experimental-set size (default 10).
func WithExpSize(n int) Option { return experiments.WithExpSize(n) }

// WithSampler selects the step-7 instrumentation strategy (default
// ValueSampling).
func WithSampler(s Sampler) Option { return experiments.WithSampler(s) }

// WithRefineOptions sets the Algorithm 5.4 knobs.
func WithRefineOptions(o RefineOptions) Option { return experiments.WithRefineOptions(o) }

// WithContext attaches a constructor-scoped cancellation context,
// checked alongside the per-call contexts.
//
// Deprecated: pass a context to each call instead — Run, RunAll,
// Table1 and every stage take one. Constructor-scoped cancellation
// cannot distinguish between investigations sharing the session.
func WithContext(ctx context.Context) Option { return experiments.WithContext(ctx) }

// WithWorkers bounds RunAll's concurrent fan-out (default GOMAXPROCS).
func WithWorkers(n int) Option { return experiments.WithWorkers(n) }

// EngineKind selects the execution engine integrations run on: the
// bytecode register VM (EngineBytecode, the default) or the
// tree-walking interpreter (EngineTree, the reference oracle). The two
// are pinned bit-identical — same Outputs, Kernel, AllValues,
// FormatOutcome bytes — so the choice is purely a throughput knob;
// the VM runs the six-spec pipeline several times faster.
type EngineKind = model.EngineKind

// Engine choices for WithEngine.
const (
	EngineBytecode = model.EngineBytecode
	EngineTree     = model.EngineTree
)

// ParseEngine maps a CLI flag value ("bytecode" or "tree") onto an
// engine kind.
func ParseEngine(s string) (EngineKind, error) { return model.ParseEngine(s) }

// WithEngine selects the session's execution engine. The default is
// the bytecode VM: each source fingerprint's FortLite modules are
// compiled once to a register program — the Session's cached build
// artifact, shared by every ensemble member, scenario and (through
// rcad's dedup) concurrent job that uses the same sources.
func WithEngine(k EngineKind) Option { return experiments.WithEngine(k) }

// LassoSolver selects the solver engine behind the §3 lasso variable
// selection: the coordinate-screened engine (SolverCD, the default) or
// the dense fixed-step ISTA loop it replaced (SolverISTA, retained as
// the differential reference oracle). The two emit bit-identical
// iterates — same fitted weights, supports, iteration counts and
// FormatOutcome bytes — so like EngineKind the choice is purely a
// throughput knob.
type LassoSolver = lasso.Solver

// Lasso solver choices for WithLassoSolver.
const (
	SolverCD   = lasso.SolverCD
	SolverISTA = lasso.SolverISTA
)

// ParseLassoSolver maps a CLI flag value ("cd" or "ista") onto a lasso
// solver engine.
func ParseLassoSolver(s string) (LassoSolver, error) { return lasso.ParseSolver(s) }

// WithLassoSolver selects the session's lasso engine. The default is
// the coordinate-screened engine, which skips per-iteration gradient
// work for coordinates certified inert and refreshes its certificates
// with full KKT passes.
func WithLassoSolver(sv LassoSolver) Option { return experiments.WithLassoSolver(sv) }

// WithParallelism bounds the worker pool used inside one investigation
// (default GOMAXPROCS): ensemble and experimental-set members integrate
// concurrently and the refinement loop's graph kernels (edge
// betweenness, Girvan-Newman, eigenvector matvecs) shard across it.
// Results are bit-identical at every parallelism level —
// WithParallelism(1) is the sequential reference — so this is purely a
// wall-clock knob. Contexts are honored between work units.
func WithParallelism(n int) Option { return experiments.WithParallelism(n) }

// WithBatch sets how many ensemble/experimental members integrate in
// lockstep on one batched struct-of-arrays VM (default 8). One
// instruction decode drives all lanes; lanes split off only at
// data-dependent branches. WithBatch(1) runs every member on its own
// solo VM — the differential reference. Outputs are bit-identical at
// every batch width, so this too is purely a wall-clock knob.
func WithBatch(n int) Option { return experiments.WithBatch(n) }

// ValueSampling instruments refinement nodes with real runtime value
// snapshots; tol <= 0 selects the default normalized-RMS tolerance.
func ValueSampling(tol float64) Sampler { return experiments.ValueSampling(tol) }

// ReachSampling simulates instrumentation by bug-node reachability —
// the paper's §5.2 simulation.
func ReachSampling() Sampler { return experiments.ReachSampling() }

// GradedSampling ranks sampled differences by magnitude and contracts
// to the greatest difference at fixed points (§6.3 extension).
func GradedSampling() Sampler { return experiments.GradedSampling() }
