package rca

import (
	"context"
	"testing"
)

// solverSession builds a small-corpus session on the given lasso
// solver at a chosen intra-investigation parallelism, so the
// equivalence holds under concurrent scheduling too (run with -race in
// CI).
func solverSession(sv LassoSolver, par int) *Session {
	return NewSession(CorpusConfig{AuxModules: 16, Seed: 4},
		WithEnsembleSize(14), WithExpSize(5),
		WithParallelism(par), WithWorkers(4),
		WithLassoSolver(sv))
}

// TestLassoSolversBitIdenticalAcrossCatalog is the deterministic-
// equivalence pin for the lasso engines: Session.RunAll over the full
// §6 + §8 scenario catalog must produce byte-identical FormatOutcome
// renderings with the coordinate-screened engine (the default) and the
// dense ISTA oracle, at parallelism 1, 2 and 8. The §3 selection the
// outcome prints depends on the exact truncated iterate trajectory, so
// nothing short of byte equality is acceptable.
func TestLassoSolversBitIdenticalAcrossCatalog(t *testing.T) {
	ctx := context.Background()
	scs := AllExperiments()

	for _, par := range []int{1, 2, 8} {
		ista, err := solverSession(SolverISTA, par).RunAll(ctx, scs)
		if err != nil {
			t.Fatalf("par %d: ista solver: %v", par, err)
		}
		cd, err := solverSession(SolverCD, par).RunAll(ctx, scs)
		if err != nil {
			t.Fatalf("par %d: cd solver: %v", par, err)
		}
		if len(ista) != len(cd) {
			t.Fatalf("par %d: outcome counts differ: %d vs %d", par, len(ista), len(cd))
		}
		for i := range ista {
			io, co := FormatOutcome(ista[i]), FormatOutcome(cd[i])
			if io != co {
				t.Errorf("par %d: %s: FormatOutcome bytes differ\n--- ista ---\n%s--- cd ---\n%s",
					par, scs[i].Name(), io, co)
			}
		}
	}
}

// TestLassoSolversTable1Identical extends the pin to the selective-FMA
// study: FormatTable1 bytes must match across solvers.
func TestLassoSolversTable1Identical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	setup := Table1Setup{ExpSize: 3, TopK: 4, RandomSamples: 2}

	rowsISTA, err := solverSession(SolverISTA, 8).Table1(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	rowsCD, err := solverSession(SolverCD, 8).Table1(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable1(rowsISTA) != FormatTable1(rowsCD) {
		t.Fatalf("Table1 bytes differ:\n--- ista ---\n%s--- cd ---\n%s",
			FormatTable1(rowsISTA), FormatTable1(rowsCD))
	}
}
