// Package rca is a Go reproduction of "Making Root Cause Analysis
// Feasible for Large Code Bases: A Solution Approach for a Climate
// Model" (Milroy, Baker, Hammerling, Kim, Jessup, Hauser — HPDC 2019,
// arXiv:1810.13432).
//
// The package exposes the complete pipeline the paper describes:
//
//  1. an ensemble consistency test (UF-CAM-ECT style, PCA-based) that
//     issues the Pass/Fail verdict starting an investigation;
//  2. affected-output-variable selection (standardized median
//     distances and lasso logistic regression);
//  3. compilation of (FortLite) Fortran source into a variable
//     dependency digraph with metadata — the metagraph;
//  4. hybrid slicing: coverage filtering plus BFS ancestor closures
//     over canonical variable names;
//  5. the Algorithm 5.4 iterative refinement: Girvan-Newman
//     communities, eigenvector in-centrality, runtime sampling, and
//     subgraph contraction, converging on the defect;
//  6. module-level quotient-graph centrality for selective
//     instruction (FMA/AVX2) disablement.
//
// Because CESM itself is 1.5M lines of unavailable Fortran, the
// repository ships a synthetic CESM-like corpus (internal/corpus) and
// an interpreter (internal/interp) that executes it; see DESIGN.md for
// the substitution map.
//
// # Scenarios
//
// An experiment is a Scenario: a named, ordered set of composable
// Injections — source patches over corpus subprograms, a PRNG swap,
// per-module FMA toggles, ensemble-parameter perturbations — plus
// slicing options. The paper's §6/§8 catalog is prewired (WSUBBUG,
// RANDMT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG, and the supplement),
// but any defect the patch engine can express runs through the same
// pipeline and the same caches:
//
//	twoBugs := rca.NewScenario("WSUB+GG",
//		rca.ScenarioOptions{CAMOnly: true, SelectK: 5},
//		rca.WsubDefect(),
//		rca.GoffGratchDefect())
//
//	session := rca.NewSession(rca.DefaultCorpus())
//	out, err := session.Run(ctx, twoBugs)
//
// Running several investigations against the same corpus? One Session
// caches the corpus builds, the 40-member ensemble's ECT fingerprint
// and the compiled metagraphs — keyed by injection fingerprints, so
// user-defined and multi-defect scenarios are cached exactly like the
// prewired catalog:
//
//	outs, err := session.RunAll(ctx, rca.Experiments())
//
// Every pipeline call takes a context.Context; cancellation lands
// between ensemble members and refinement iterations, surfaces as
// ErrCanceled, and leaves the Session reusable.
package rca

import (
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/experiments"
)

// Scenario is one root-cause investigation: a name, an ordered set of
// composable injections, and slicing options. Build one with
// NewScenario, ParseInjection or ScenarioFromJSON.
type Scenario = experiments.Scenario

// Injection is one composable element of a scenario: a source patch,
// a PRNG swap, an FMA policy, or an ensemble-parameter perturbation.
// Its ID() fingerprint drives the Session's caches.
type Injection = experiments.Injection

// ScenarioOptions control how an investigation slices (CAM-module
// restriction, lasso target support), independent of what it injects.
type ScenarioOptions = experiments.ScenarioOptions

// SourceReplace injects a defect by replacing text inside one
// assignment of a named corpus subprogram — the §6 defect family.
type SourceReplace = experiments.SourceReplace

// ScaleAssignment injects a defect by multiplying an assignment's
// right-hand side by a factor (e.g. micro_mg_tend.ratio *= 1.0001).
type ScaleAssignment = experiments.ScaleAssignment

// Spec names one experiment configuration over the closed defect
// catalog.
//
// Deprecated: Spec predates the Scenario interface and can only
// express the prewired defects. Compose a Scenario from Injections
// instead; legacy Specs convert losslessly with Scenario().
type Spec = experiments.Spec

// Setup sizes an experiment run: corpus scale, ensemble and
// experimental set sizes, sampler kind and refinement options.
type Setup = experiments.Setup

// Outcome carries everything one experiment produces: the consistency
// verdict, selected variables, graph/slice sizes, the refinement trace
// and whether the defect was located.
type Outcome = experiments.Outcome

// CorpusConfig sizes the synthetic CESM-like corpus.
type CorpusConfig = corpus.Config

// Bug selects a prewired injectable source defect.
//
// Deprecated: the Bug enum is the closed world the Scenario API
// opens. Use the catalog injections (WsubDefect, GoffGratchDefect, …)
// or a custom SourceReplace/ScaleAssignment.
type Bug = corpus.Bug

// Patch is one source-level edit over a named corpus subprogram — the
// corpus-layer mechanism behind SourceReplace/ScaleAssignment.
type Patch = corpus.Patch

// Table1Row is one row of the selective-FMA-disablement study.
type Table1Row = experiments.Table1Row

// Table1Setup sizes the selective-FMA-disablement study.
type Table1Setup = experiments.Table1Setup

// Typed errors of the pipeline; classify failures with errors.Is:
//
//	ErrCanceled              — a per-call context was canceled or
//	                           timed out (also matches ctx.Err())
//	ErrConflictingInjections — a scenario composes contradictory
//	                           injections
//	ErrUnknownSubprogram     — an injection targets a subprogram,
//	                           assignment or metagraph node the corpus
//	                           does not contain
//	ErrBadPatch              — a patch edit could not be applied
var (
	ErrCanceled              = experiments.ErrCanceled
	ErrConflictingInjections = experiments.ErrConflictingInjections
	ErrUnknownSubprogram     = corpus.ErrUnknownSubprogram
	ErrBadPatch              = corpus.ErrBadPatch
	// ErrInvalidBounds reports a run-set request with negative or
	// overflowing count/offset (Session.ExperimentalOutputs).
	ErrInvalidBounds = experiments.ErrInvalidBounds
)

// The paper's prewired experiments (§6 and supplement §8.2), as
// scenario values over the open Injection catalog.
var (
	WSUBBUG    = experiments.WSUBBUG.Scenario()
	RANDMT     = experiments.RANDMT.Scenario()
	GOFFGRATCH = experiments.GOFFGRATCH.Scenario()
	AVX2       = experiments.AVX2.Scenario()
	RANDOMBUG  = experiments.RANDOMBUG.Scenario()
	DYN3BUG    = experiments.DYN3BUG.Scenario()
	AVX2Full   = experiments.AVX2Full.Scenario()
	LANDBUG    = experiments.LANDBUG.Scenario()
)

// Injectable bugs (for legacy custom Specs).
//
// Deprecated: compose injections instead of enum values.
const (
	BugNone       = corpus.BugNone
	BugWsub       = corpus.BugWsub
	BugGoffGratch = corpus.BugGoffGratch
	BugDyn3       = corpus.BugDyn3
	BugRandomIdx  = corpus.BugRandomIdx
	BugLand       = corpus.BugLand
)

// NewScenario composes injections into a runnable scenario.
func NewScenario(name string, opts ScenarioOptions, injs ...Injection) Scenario {
	return experiments.NewScenario(name, opts, injs...)
}

// ParseInjection parses the compact injection syntax the CLIs accept:
// "sub.var*=1.0001", "sub.var:OLD=>NEW", "prng=mt", "fma=all",
// "param:turbcoef=0.02". See the experiments package for the grammar.
func ParseInjection(s string) (Injection, error) { return experiments.ParseInjection(s) }

// ScenarioFromJSON decodes a JSON scenario definition — the format of
// `rca -scenario` files and of rcad's POST /v1/jobs request body.
// Inject entries are compact-syntax strings or structured patch
// objects; alternatively {"experiment": "GOFFGRATCH"} references the
// prewired catalog:
//
//	{"name": "WSUB+GG", "camonly": true, "selectk": 5,
//	 "inject": ["aero_run.wsub:0.20=>2.00", "prng=mt"]}
func ScenarioFromJSON(data []byte) (Scenario, error) { return experiments.ScenarioFromJSON(data) }

// ScenarioToJSON serializes a scenario to the wire format, the inverse
// of ScenarioFromJSON: parsing the result yields a scenario with the
// same name, options and injection fingerprints. This is how
// `rca -server` ships scenarios to an rcad daemon.
func ScenarioToJSON(sc Scenario) ([]byte, error) { return experiments.ScenarioToJSON(sc) }

// ScenarioFingerprint returns a scenario's stable cache identity over
// a corpus configuration — the value that replaces the legacy
// (Bug, Mersenne, FMA) tuple as the Session cache key.
func ScenarioFingerprint(cfg CorpusConfig, sc Scenario) (string, error) {
	return experiments.ScenarioFingerprint(cfg, sc)
}

// MersennePRNG swaps the model's random_number generator to Mersenne
// Twister (§6.2 RAND-MT).
func MersennePRNG() Injection { return experiments.MersennePRNG() }

// EnableFMA enables fused multiply-add in the named modules, or
// everywhere with no arguments (the §6.4 AVX2 port).
func EnableFMA(modules ...string) Injection { return experiments.EnableFMA(modules...) }

// PerturbParameter perturbs one of the ensemble-shaping corpus
// parameters ("turbcoef", "fmagain", "auxfmagain").
func PerturbParameter(name string, value float64) Injection {
	return experiments.PerturbParameter(name, value)
}

// The prewired defect catalog (§6 and §8.2), exposed as reusable
// injections so composites like WSUB+GOFFGRATCH are one NewScenario
// call away.
func WsubDefect() Injection       { return experiments.WsubDefect() }
func GoffGratchDefect() Injection { return experiments.GoffGratchDefect() }
func Dyn3Defect() Injection       { return experiments.Dyn3Defect() }
func RandomIdxDefect() Injection  { return experiments.RandomIdxDefect() }
func LandDefect() Injection       { return experiments.LandDefect() }

// DefaultCorpus returns the CI-sized corpus configuration.
func DefaultCorpus() CorpusConfig { return corpus.Default() }

// PaperScaleCorpus returns a corpus sized like the paper's 561-module
// quotient graph.
func PaperScaleCorpus() CorpusConfig { return corpus.PaperScale() }

// RunExperiment executes the full root-cause-analysis pipeline for
// one scenario.
//
// Deprecated: RunExperiment builds a single-use Session per call,
// regenerating the corpus, the ensemble and the metagraph every time.
// Use NewSession and Session.Run (or Session.RunAll) to amortize that
// work across scenarios.
func RunExperiment(sc Scenario, setup Setup) (*Outcome, error) {
	return experiments.RunScenario(sc, setup)
}

// RunSpec executes the pipeline for one legacy closed-world Spec.
//
// Deprecated: convert the Spec with Scenario() and use a Session.
func RunSpec(spec Spec, setup Setup) (*Outcome, error) {
	return experiments.Run(spec, setup)
}

// RunTable1 reproduces the paper's Table 1 (selective AVX2/FMA
// disablement failure rates).
//
// Deprecated: use Session.Table1, which shares the ensemble and the
// metagraph with the rest of the session's pipeline.
func RunTable1(setup Table1Setup) ([]Table1Row, error) {
	return experiments.Table1(setup)
}

// Experiments returns the prewired §6 scenarios in paper order.
func Experiments() []Scenario {
	return []Scenario{WSUBBUG, RANDMT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG}
}

// SupplementExperiments returns the supplement scenarios (Figure 15's
// unrestricted AVX2 slice and the land-module defect).
func SupplementExperiments() []Scenario {
	return []Scenario{AVX2Full, LANDBUG}
}

// AllExperiments returns every prewired scenario: the six §6
// experiments followed by the supplement.
func AllExperiments() []Scenario {
	return append(Experiments(), SupplementExperiments()...)
}

// FormatOutcome renders an experiment outcome as a human-readable
// report mirroring the quantities the paper states per experiment.
func FormatOutcome(o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment       %s\n", o.Name)
	fmt.Fprintf(&b, "UF-ECT failure   %.0f%%\n", 100*o.FailureRate)
	if o.FirstStep != nil {
		verdict := "inconclusive"
		if o.FirstStep.Conclusive() {
			verdict = "conclusive"
		}
		fmt.Fprintf(&b, "first-step diff  %d of %d variables differ (%s)\n",
			len(o.FirstStep.Differing), o.FirstStep.Total, verdict)
	}
	fmt.Fprintf(&b, "selected outputs %s\n", strings.Join(o.SelectedOutputs, ", "))
	fmt.Fprintf(&b, "internal vars    %s\n", strings.Join(o.Internals, ", "))
	fmt.Fprintf(&b, "coverage filter  modules %d->%d (-%.0f%%), subprograms %d->%d (-%.0f%%)\n",
		o.Coverage.ModulesBefore, o.Coverage.ModulesAfter, o.Coverage.ModuleReductionPct(),
		o.Coverage.SubprogramsBefore, o.Coverage.SubprogramsAfter, o.Coverage.SubprogramReductionPct())
	fmt.Fprintf(&b, "metagraph        %d nodes, %d edges\n", o.GraphNodes, o.GraphEdges)
	fmt.Fprintf(&b, "induced subgraph %d nodes, %d edges\n", o.SliceNodes, o.SliceEdges)
	if len(o.KGenFlagged) > 0 {
		fmt.Fprintf(&b, "kgen flagged     %s\n", strings.Join(o.KGenFlagged, ", "))
	}
	fmt.Fprintf(&b, "bug locations    %s (in slice: %v)\n",
		strings.Join(o.BugDisplays, ", "), o.BugInSlice)
	for i, it := range o.Refine.Iterations {
		fmt.Fprintf(&b, "iteration %d      %d nodes / %d edges (largest SCC %d), %d communities, sampled %d, detected %d -> %s\n",
			i+1, it.Nodes, it.Edges, it.LargestSCC, len(it.Communities), len(it.Sampled), len(it.Detected), it.Action)
	}
	fmt.Fprintf(&b, "final subgraph   %d nodes\n", len(o.Refine.Final))
	fmt.Fprintf(&b, "bug located      %v (instrumented directly: %v)\n",
		o.BugLocated, o.Refine.BugInstrumented)
	return b.String()
}

// FormatTable1 renders Table 1 rows like the paper's table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Experiment                                      ECT failure rate\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %3.0f%%\n", r.Config, 100*r.FailureRate)
	}
	return b.String()
}

// RefineOptions re-exports the Algorithm 5.4 knobs for custom setups.
type RefineOptions = core.Options
