// Package rca is a Go reproduction of "Making Root Cause Analysis
// Feasible for Large Code Bases: A Solution Approach for a Climate
// Model" (Milroy, Baker, Hammerling, Kim, Jessup, Hauser — HPDC 2019,
// arXiv:1810.13432).
//
// The package exposes the complete pipeline the paper describes:
//
//  1. an ensemble consistency test (UF-CAM-ECT style, PCA-based) that
//     issues the Pass/Fail verdict starting an investigation;
//  2. affected-output-variable selection (standardized median
//     distances and lasso logistic regression);
//  3. compilation of (FortLite) Fortran source into a variable
//     dependency digraph with metadata — the metagraph;
//  4. hybrid slicing: coverage filtering plus BFS ancestor closures
//     over canonical variable names;
//  5. the Algorithm 5.4 iterative refinement: Girvan-Newman
//     communities, eigenvector in-centrality, runtime sampling, and
//     subgraph contraction, converging on the defect;
//  6. module-level quotient-graph centrality for selective
//     instruction (FMA/AVX2) disablement.
//
// Because CESM itself is 1.5M lines of unavailable Fortran, the
// repository ships a synthetic CESM-like corpus (internal/corpus) and
// an interpreter (internal/interp) that executes it; see DESIGN.md for
// the substitution map. Six experiments from the paper are prewired:
// WSUBBUG, RAND-MT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG.
//
// Quick start (one experiment):
//
//	out, err := rca.RunExperiment(rca.GOFFGRATCH, rca.Setup{})
//	fmt.Print(rca.FormatOutcome(out))
//
// Running several investigations against the same corpus? Build a
// Session once — it caches the corpus, the 40-member ensemble's ECT
// fingerprint and the compiled metagraphs — and fan out over it:
//
//	session := rca.NewSession(rca.DefaultCorpus())
//	outs, err := session.RunAll(rca.Experiments())
package rca

import (
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/experiments"
)

// Spec names one experiment configuration (which defect is injected
// and how the slice is restricted).
type Spec = experiments.Spec

// Setup sizes an experiment run: corpus scale, ensemble and
// experimental set sizes, sampler kind and refinement options.
type Setup = experiments.Setup

// Outcome carries everything one experiment produces: the consistency
// verdict, selected variables, graph/slice sizes, the refinement trace
// and whether the defect was located.
type Outcome = experiments.Outcome

// CorpusConfig sizes the synthetic CESM-like corpus.
type CorpusConfig = corpus.Config

// Bug selects an injectable source defect.
type Bug = corpus.Bug

// Table1Row is one row of the selective-FMA-disablement study.
type Table1Row = experiments.Table1Row

// Table1Setup sizes the selective-FMA-disablement study.
type Table1Setup = experiments.Table1Setup

// The paper's experiments (§6 and supplement §8.2).
var (
	WSUBBUG    = experiments.WSUBBUG
	RANDMT     = experiments.RANDMT
	GOFFGRATCH = experiments.GOFFGRATCH
	AVX2       = experiments.AVX2
	RANDOMBUG  = experiments.RANDOMBUG
	DYN3BUG    = experiments.DYN3BUG
	AVX2Full   = experiments.AVX2Full
	LANDBUG    = experiments.LANDBUG
)

// Injectable bugs (for custom Specs).
const (
	BugNone       = corpus.BugNone
	BugWsub       = corpus.BugWsub
	BugGoffGratch = corpus.BugGoffGratch
	BugDyn3       = corpus.BugDyn3
	BugRandomIdx  = corpus.BugRandomIdx
)

// DefaultCorpus returns the CI-sized corpus configuration.
func DefaultCorpus() CorpusConfig { return corpus.Default() }

// PaperScaleCorpus returns a corpus sized like the paper's 561-module
// quotient graph.
func PaperScaleCorpus() CorpusConfig { return corpus.PaperScale() }

// RunExperiment executes the full root-cause-analysis pipeline for
// one experiment.
//
// Deprecated: RunExperiment builds a single-use Session per call,
// regenerating the corpus, the ensemble and the metagraph every time.
// Use NewSession and Session.Run (or Session.RunAll) to amortize that
// work across experiments.
func RunExperiment(spec Spec, setup Setup) (*Outcome, error) {
	return experiments.Run(spec, setup)
}

// RunTable1 reproduces the paper's Table 1 (selective AVX2/FMA
// disablement failure rates).
//
// Deprecated: use Session.Table1, which shares the ensemble and the
// metagraph with the rest of the session's pipeline.
func RunTable1(setup Table1Setup) ([]Table1Row, error) {
	return experiments.Table1(setup)
}

// Experiments returns the prewired §6 specs in paper order.
func Experiments() []Spec {
	return []Spec{WSUBBUG, RANDMT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG}
}

// SupplementExperiments returns the supplement specs (Figure 15's
// unrestricted AVX2 slice and the land-module defect).
func SupplementExperiments() []Spec {
	return []Spec{AVX2Full, LANDBUG}
}

// AllExperiments returns every prewired spec: the six §6 experiments
// followed by the supplement.
func AllExperiments() []Spec {
	return append(Experiments(), SupplementExperiments()...)
}

// FormatOutcome renders an experiment outcome as a human-readable
// report mirroring the quantities the paper states per experiment.
func FormatOutcome(o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment       %s\n", o.Spec.Name)
	fmt.Fprintf(&b, "UF-ECT failure   %.0f%%\n", 100*o.FailureRate)
	if o.FirstStep != nil {
		verdict := "inconclusive"
		if o.FirstStep.Conclusive() {
			verdict = "conclusive"
		}
		fmt.Fprintf(&b, "first-step diff  %d of %d variables differ (%s)\n",
			len(o.FirstStep.Differing), o.FirstStep.Total, verdict)
	}
	fmt.Fprintf(&b, "selected outputs %s\n", strings.Join(o.SelectedOutputs, ", "))
	fmt.Fprintf(&b, "internal vars    %s\n", strings.Join(o.Internals, ", "))
	fmt.Fprintf(&b, "coverage filter  modules %d->%d (-%.0f%%), subprograms %d->%d (-%.0f%%)\n",
		o.Coverage.ModulesBefore, o.Coverage.ModulesAfter, o.Coverage.ModuleReductionPct(),
		o.Coverage.SubprogramsBefore, o.Coverage.SubprogramsAfter, o.Coverage.SubprogramReductionPct())
	fmt.Fprintf(&b, "metagraph        %d nodes, %d edges\n", o.GraphNodes, o.GraphEdges)
	fmt.Fprintf(&b, "induced subgraph %d nodes, %d edges\n", o.SliceNodes, o.SliceEdges)
	if len(o.KGenFlagged) > 0 {
		fmt.Fprintf(&b, "kgen flagged     %s\n", strings.Join(o.KGenFlagged, ", "))
	}
	fmt.Fprintf(&b, "bug locations    %s (in slice: %v)\n",
		strings.Join(o.BugDisplays, ", "), o.BugInSlice)
	for i, it := range o.Refine.Iterations {
		fmt.Fprintf(&b, "iteration %d      %d nodes / %d edges (largest SCC %d), %d communities, sampled %d, detected %d -> %s\n",
			i+1, it.Nodes, it.Edges, it.LargestSCC, len(it.Communities), len(it.Sampled), len(it.Detected), it.Action)
	}
	fmt.Fprintf(&b, "final subgraph   %d nodes\n", len(o.Refine.Final))
	fmt.Fprintf(&b, "bug located      %v (instrumented directly: %v)\n",
		o.BugLocated, o.Refine.BugInstrumented)
	return b.String()
}

// FormatTable1 renders Table 1 rows like the paper's table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Experiment                                      ECT failure rate\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %3.0f%%\n", r.Config, 100*r.FailureRate)
	}
	return b.String()
}

// RefineOptions re-exports the Algorithm 5.4 knobs for custom setups.
type RefineOptions = core.Options
