package rca

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§6 plus the supplement §8). Each benchmark
// prints the reproduced artifact — the same rows or series the paper
// reports — on its first iteration, so
//
//	go test -bench=. -benchmem
//
// doubles as the experiment log that EXPERIMENTS.md summarizes.
// Absolute node counts and percentages are corpus-scale dependent; the
// shape (who wins, orderings, convergence behaviour) is the
// reproduction target.

import (
	"context"
	"fmt"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/experiments"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/slicing"
	"github.com/climate-rca/rca/internal/stats"
)

// benchSetup keeps the benchmark corpus a consistent, moderate size.
func benchSetup() Setup {
	return Setup{
		Corpus:       CorpusConfig{AuxModules: 40, Seed: 2},
		EnsembleSize: 30,
		ExpSize:      8,
	}
}

// benchSession builds a fresh Session with the benchSetup sizing.
func benchSession() *Session {
	return NewSession(CorpusConfig{AuxModules: 40, Seed: 2},
		WithEnsembleSize(30), WithExpSize(8))
}

// BenchmarkPipelineSixSpecsOneShot runs the six §6 experiments as
// independent one-shot calls (the seed API): every call regenerates
// the corpus, re-runs the ensemble and recompiles the metagraph.
// Compare against BenchmarkPipelineSixSpecsSession.
func BenchmarkPipelineSixSpecsOneShot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range Experiments() {
			if _, err := RunExperiment(spec, benchSetup()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPipelineSixSpecsSession runs the same six experiments on
// one Session per iteration: the corpus, the ensemble ECT fingerprint
// and the metagraphs are generated once and shared, and RunAll fans
// out concurrently — the compile-once, run-many speedup the Session
// API exists for.
func BenchmarkPipelineSixSpecsSession(b *testing.B) {
	var fits, iters uint64
	for i := 0; i < b.N; i++ {
		s := benchSession()
		if _, err := s.RunAll(context.Background(), Experiments()); err != nil {
			b.Fatal(err)
		}
		f, it := s.LassoStats()
		fits += f
		iters += it
	}
	b.ReportMetric(float64(fits)/float64(b.N), "lassofits")
	b.ReportMetric(float64(iters)/float64(b.N), "lassoiters")
}

// BenchmarkPipelineSixSpecsSessionISTA is the same six-spec session
// with the §3 selection stage pinned to the dense ISTA reference
// solver instead of the coordinate-screened default. The gap to
// BenchmarkPipelineSixSpecsSession is the lasso-engine win; outputs
// are pinned bit-identical, so the two benchmarks do exactly the same
// science.
func BenchmarkPipelineSixSpecsSessionISTA(b *testing.B) {
	var fits, iters uint64
	for i := 0; i < b.N; i++ {
		s := NewSession(CorpusConfig{AuxModules: 40, Seed: 2},
			WithEnsembleSize(30), WithExpSize(8), WithLassoSolver(SolverISTA))
		if _, err := s.RunAll(context.Background(), Experiments()); err != nil {
			b.Fatal(err)
		}
		f, it := s.LassoStats()
		fits += f
		iters += it
	}
	b.ReportMetric(float64(fits)/float64(b.N), "lassofits")
	b.ReportMetric(float64(iters)/float64(b.N), "lassoiters")
}

// BenchmarkPipelineSixSpecsSessionUnbatched is the same six-spec
// session run with batching disabled (WithBatch(1)): every ensemble
// and experimental member integrates on its own solo VM. The gap to
// BenchmarkPipelineSixSpecsSession is the lockstep SoA batching win;
// outputs are pinned bit-identical, so the two benchmarks do exactly
// the same science.
func BenchmarkPipelineSixSpecsSessionUnbatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSession(CorpusConfig{AuxModules: 40, Seed: 2},
			WithEnsembleSize(30), WithExpSize(8), WithBatch(1))
		if _, err := s.RunAll(context.Background(), Experiments()); err != nil {
			b.Fatal(err)
		}
	}
}

func runSpec(b *testing.B, spec Scenario, print bool) *Outcome {
	b.Helper()
	var out *Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = RunExperiment(spec, benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && print {
			fmt.Printf("\n--- %s ---\n%s", spec.Name(), FormatOutcome(out))
		}
	}
	return out
}

// BenchmarkTable1SelectiveFMA regenerates Table 1: UF-ECT failure
// rates under selective AVX2/FMA disablement strategies.
func BenchmarkTable1SelectiveFMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable1(Table1Setup{
			Corpus:        CorpusConfig{AuxModules: 40, Seed: 2},
			EnsembleSize:  30,
			ExpSize:       8,
			TopK:          8,
			RandomSamples: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Table 1 ---\n%s", FormatTable1(rows))
		}
	}
}

// BenchmarkTable2VariableSelection regenerates Table 2: the output
// variables each experiment's selection picks, and their internal
// counterparts.
func BenchmarkTable2VariableSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Table 2 ---\n")
		}
		outs, err := benchSession().RunAll(context.Background(), Experiments())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, out := range outs {
				fmt.Printf("%-11s outputs: %v\n%-11s internal: %v\n",
					out.Name, out.SelectedOutputs, "", out.Internals)
			}
		}
	}
}

// BenchmarkFigure4DegreeDistribution regenerates Figures 4/9: the
// degree distribution of the full variable digraph.
func BenchmarkFigure4DegreeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := corpus.Generate(corpus.Config{AuxModules: 100, Seed: 1})
		mods, err := c.Parse()
		if err != nil {
			b.Fatal(err)
		}
		mg, err := metagraph.Build(mods)
		if err != nil {
			b.Fatal(err)
		}
		points := experiments.DegreeDistribution(mg.G)
		if i == 0 {
			fmt.Printf("\n--- Figure 4 (degree distribution, %d nodes %d edges) ---\n",
				mg.G.NumNodes(), mg.G.NumEdges())
			for _, p := range points {
				if p.Degree <= 12 || p.Count >= 5 {
					fmt.Printf("degree %4d: %d nodes\n", p.Degree, p.Count)
				}
			}
			fmt.Printf("power-law exponent ~%.2f\n", experiments.PowerLawExponent(points))
		}
	}
}

// BenchmarkWsubBugSection61 regenerates the §6.1 WSUBBUG narrative:
// dominant median distance and a tiny induced subgraph containing the
// defect.
func BenchmarkWsubBugSection61(b *testing.B) {
	out := runSpec(b, WSUBBUG, true)
	if out.MedianRanking[0].Name != "WSUB" {
		b.Fatalf("wsub not top-ranked")
	}
}

// BenchmarkFigure5and6RandMT regenerates the RAND-MT two-iteration
// narrative (Figures 5-6).
func BenchmarkFigure5and6RandMT(b *testing.B) { runSpec(b, RANDMT, true) }

// BenchmarkFigure7GoffGratch regenerates the GOFFGRATCH iteration
// (Figure 7).
func BenchmarkFigure7GoffGratch(b *testing.B) { runSpec(b, GOFFGRATCH, true) }

// BenchmarkFigure8AVX2 regenerates Figure 8 and the §6.4 in-centrality
// listing of the bug community (dum__micro_mg_tend et al.).
func BenchmarkFigure8AVX2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(AVX2, benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Figure 8 / §6.4 ---\n%s", FormatOutcome(out))
			if len(out.Refine.Iterations) > 0 {
				listing := experiments.CommunityInCentrality(out.Metagraph,
					out.Refine.Iterations[0].Communities, out.BugNodes, 16)
				fmt.Println("bug-community in-centrality[:16]:")
				for _, cn := range listing {
					fmt.Printf("  (%s, %f)\n", cn.Display, cn.Score)
				}
			}
		}
	}
}

// BenchmarkFigure10GoffGratchDegrees regenerates Figure 10: the degree
// distribution of the GOFFGRATCH induced subgraph.
func BenchmarkFigure10GoffGratchDegrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(GOFFGRATCH, benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		points := experiments.DegreeDistribution(out.Slice.Sub)
		if i == 0 {
			fmt.Printf("\n--- Figure 10 (GOFFGRATCH subgraph degrees, %d nodes) ---\n",
				out.SliceNodes)
			for _, p := range points {
				fmt.Printf("degree %4d: %d nodes\n", p.Degree, p.Count)
			}
			fmt.Printf("power-law exponent ~%.2f\n", experiments.PowerLawExponent(points))
		}
	}
}

// BenchmarkFigure11NonBacktracking regenerates Figure 11: eigenvector
// vs Hashimoto non-backtracking centrality rank curves on the
// GOFFGRATCH subgraph.
func BenchmarkFigure11NonBacktracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(GOFFGRATCH, benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		curve := experiments.Figure11(out.Slice.Sub)
		if i == 0 {
			fmt.Printf("\n--- Figure 11 (rank curves, %d nodes) ---\n", out.SliceNodes)
			fmt.Printf("%-6s %-14s %-14s\n", "rank", "eigenvector", "non-backtracking")
			for _, r := range []int{0, 1, 2, 4, 9, 19, 49} {
				if r < len(curve.Eigen) {
					nb := 0.0
					if r < len(curve.NonBacktracking) {
						nb = curve.NonBacktracking[r]
					}
					fmt.Printf("%-6d %-14.6g %-14.6g\n", r+1, curve.Eigen[r], nb)
				}
			}
			fmt.Printf("non-backtracking ranks %d of %d nodes (sharp drop beyond)\n",
				curve.NBRanked, out.SliceNodes)
		}
	}
}

// BenchmarkFigure12RandomBug regenerates the RANDOMBUG single
// iteration (Figure 12, supplement §8.2.1).
func BenchmarkFigure12RandomBug(b *testing.B) { runSpec(b, RANDOMBUG, true) }

// BenchmarkFigure13and14Dyn3Bug regenerates the DYN3BUG two-iteration
// narrative (Figures 13-14, supplement §8.2.2).
func BenchmarkFigure13and14Dyn3Bug(b *testing.B) { runSpec(b, DYN3BUG, true) }

// BenchmarkFigure15AVX2Unrestricted regenerates Figure 15: the AVX2
// slice without the CAM-module restriction (larger graph, same
// conclusions after an extra iteration).
func BenchmarkFigure15AVX2Unrestricted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// One session: the two variants share the corpus, ensemble and
		// the compiled AVX2 metagraph; only the slice differs.
		s := benchSession()
		restricted, err := s.Run(context.Background(), AVX2)
		if err != nil {
			b.Fatal(err)
		}
		full, err := s.Run(context.Background(), AVX2Full)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Figure 15 ---\nCAM-restricted slice: %d nodes / %d edges\n",
				restricted.SliceNodes, restricted.SliceEdges)
			fmt.Printf("unrestricted slice:   %d nodes / %d edges\n",
				full.SliceNodes, full.SliceEdges)
			fmt.Printf("bug located: restricted=%v unrestricted=%v\n",
				restricted.BugLocated, full.BugLocated)
			if full.SliceNodes <= restricted.SliceNodes {
				fmt.Println("WARNING: unrestricted slice not larger")
			}
		}
	}
}

// --- Ablation benches (design choices DESIGN.md calls out) ---------

// BenchmarkAblationGNDepth compares one vs several Girvan-Newman
// rounds per refinement iteration (§5.4's conservative choice).
func BenchmarkAblationGNDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Ablation: G-N depth ---\n")
		}
		for _, depth := range []int{1, 2, 3} {
			s := benchSetup()
			s.Refine = RefineOptions{GNIterations: depth}
			out, err := RunExperiment(GOFFGRATCH, s)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("gn=%d iterations=%d located=%v final=%d communities(first)=%d\n",
					depth, len(out.Refine.Iterations), out.BugLocated,
					len(out.Refine.Final), len(out.Refine.Iterations[0].Communities))
			}
		}
	}
}

// BenchmarkAblationCentralityChoice compares sampling-site rankings
// (paper §5.3 picks eigenvector in-centrality; supplement §8.1 finds
// non-backtracking no better).
func BenchmarkAblationCentralityChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Ablation: centrality choice ---\n")
		}
		for _, kind := range []string{"eigen-in", "degree", "pagerank", "nonbacktracking"} {
			s := benchSetup()
			s.Refine = RefineOptions{Centrality: kind}
			out, err := RunExperiment(GOFFGRATCH, s)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("%-16s iterations=%d located=%v final=%d\n",
					kind, len(out.Refine.Iterations), out.BugLocated, len(out.Refine.Final))
			}
		}
	}
}

// BenchmarkAblationCommunityMethod compares Girvan-Newman (the
// paper's partitioner) against Louvain greedy modularity — the
// scalable alternative for paper-sized subgraphs.
func BenchmarkAblationCommunityMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Ablation: community method ---\n")
		}
		for _, method := range []string{"girvan-newman", "louvain"} {
			s := benchSetup()
			s.Refine = RefineOptions{CommunityMethod: method}
			out, err := RunExperiment(GOFFGRATCH, s)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("%-14s iterations=%d located=%v final=%d communities(first)=%d\n",
					method, len(out.Refine.Iterations), out.BugLocated,
					len(out.Refine.Final), len(out.Refine.Iterations[0].Communities))
			}
		}
	}
}

// BenchmarkAblationCommunitySampling compares community-aware
// sampling with whole-subgraph top-m sampling (the §6.2 discussion:
// without communities the centrality-dominant cluster absorbs every
// sample).
func BenchmarkAblationCommunitySampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n--- Ablation: community vs whole-graph sampling ---\n")
		}
		for _, whole := range []bool{false, true} {
			s := benchSetup()
			s.Refine = RefineOptions{WholeGraphSampling: whole}
			out, err := RunExperiment(RANDMT, s)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("wholeGraph=%-5v iterations=%d located=%v final=%d\n",
					whole, len(out.Refine.Iterations), out.BugLocated, len(out.Refine.Final))
			}
		}
	}
}

// BenchmarkAblationSliceKind compares the union-of-shortest-paths
// (ancestor-closure) slice with a slice that keeps the targets'
// descendants too, measuring precision loss.
func BenchmarkAblationSliceKind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := corpus.Generate(corpus.Config{AuxModules: 40, Seed: 2})
		mods, err := c.Parse()
		if err != nil {
			b.Fatal(err)
		}
		mg, err := metagraph.Build(mods)
		if err != nil {
			b.Fatal(err)
		}
		sl, err := slicing.FromOutputs(mg, []string{"QRL", "FLDS", "FLNS"}, slicing.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Ancestors ∪ descendants alternative.
		targets := sl.GraphIDs(sl.Targets)
		both := append(mg.G.Ancestors(targets), mg.G.Descendants(targets)...)
		wide, _ := mg.G.Subgraph(both)
		if i == 0 {
			fmt.Printf("\n--- Ablation: slice kind ---\n")
			fmt.Printf("ancestor closure: %d nodes\nancestors+descendants: %d nodes\n",
				sl.Sub.NumNodes(), wide.NumNodes())
		}
	}
}

// BenchmarkAblationSelectionMethods compares the two §3 variable
// selection methods: lasso vs standardized median distance.
func BenchmarkAblationSelectionMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := RunExperiment(GOFFGRATCH, benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n--- Ablation: variable selection methods ---\n")
			fmt.Printf("lasso selection:   %v\n", out.SelectedOutputs)
			med := stats.SelectAffected(out.MedianRanking, 10)
			fmt.Printf("median distances:  %v\n", med)
			overlap := 0
			for _, l := range out.SelectedOutputs {
				for _, m := range med {
					if l == m {
						overlap++
					}
				}
			}
			fmt.Printf("overlap: %d of %d (the paper: orderings mostly coincide)\n",
				overlap, len(out.SelectedOutputs))
		}
	}
}
