package rca

import (
	"context"
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/search"
)

// SearchObjective selects what a scenario search optimizes.
type SearchObjective = search.Objective

const (
	// SearchMinFlip finds the smallest injection subset whose composed
	// scenario fails UF-ECT at least at the threshold rate.
	SearchMinFlip = search.ObjectiveMinFlip
	// SearchMaxDelta finds the bounded-size subset with the highest
	// composed failure rate.
	SearchMaxDelta = search.ObjectiveMaxDelta
	// SearchRank ranks single injections by failure-rate delta.
	SearchRank = search.ObjectiveRank
)

// ParseSearchObjective maps a CLI/wire name to a SearchObjective
// (empty string means minflip).
func ParseSearchObjective(s string) (SearchObjective, error) { return search.ParseObjective(s) }

// SearchOptions configure one scenario search; see rca.Search.
type SearchOptions = search.Options

// SearchResult is a finished scenario search.
type SearchResult = search.Result

// SearchRequest is the wire-level search description accepted by
// rcad's POST /v1/searches and produced by SearchRequestToJSON.
type SearchRequest = search.Request

// SearchEvent is one search progress event (SearchOptions.Progress).
type SearchEvent = search.Event

// SearchCandidate, SearchSubset, SearchStats and SearchIncumbentUpdate
// name the result's component types.
type (
	SearchCandidate       = search.Candidate
	SearchSubset          = search.Subset
	SearchStats           = search.Stats
	SearchIncumbentUpdate = search.IncumbentUpdate
)

// Search runs a branch-and-bound exploration of the injection space
// over the session: probe each pool candidate alone, order the pool by
// probe delta, warm-start from the greedy prefix, then expand subset
// waves with incumbent pruning. Node evaluations are keyed by the
// layered build fingerprints, so a session with an artifact store
// attached shares them — and its incumbent bounds — with every process
// pointed at the same store. Results are bit-identical at every
// parallelism level.
func Search(ctx context.Context, s *Session, opts SearchOptions) (*SearchResult, error) {
	return search.Run(ctx, s, opts)
}

// SearchRequestFromJSON parses the search wire format:
//
//	{"objective": "minflip", "threshold": 0.5, "maxsubset": 3,
//	 "base": {"name": "clean"}, "pool": ["param:turbcoef=0.02", ...]}
//
// base is a scenario document (ScenarioFromJSON); pool entries use the
// same injection grammar as a scenario's inject list.
func SearchRequestFromJSON(data []byte) (*SearchRequest, error) {
	return search.RequestFromJSON(data)
}

// SearchRequestToJSON serializes a request to the wire format, the
// inverse of SearchRequestFromJSON.
func SearchRequestToJSON(req *SearchRequest) ([]byte, error) { return search.RequestToJSON(req) }

// FormatSearchResult renders a search result like the CLI prints it.
func FormatSearchResult(r *SearchResult) string {
	var b strings.Builder
	switch r.Objective {
	case SearchMinFlip:
		fmt.Fprintf(&b, "objective        minimal flipping subset (threshold %.0f%%)\n", 100*r.Threshold)
	case SearchMaxDelta:
		fmt.Fprintf(&b, "objective        max verdict delta (subsets up to %d)\n", r.MaxSubset)
	case SearchRank:
		b.WriteString("objective        rank single injections\n")
	}
	fmt.Fprintf(&b, "base scenario    %s (failure rate %.0f%%)\n", r.BaseName, 100*r.BaseRate)
	b.WriteString("candidates\n")
	for _, c := range r.Candidates {
		if !c.Feasible {
			fmt.Fprintf(&b, "  %-44s conflicts with base\n", c.ID)
			continue
		}
		fmt.Fprintf(&b, "  %-44s %3.0f%% (delta %+.0f%%)\n", c.ID, 100*c.Rate, 100*c.Delta)
	}
	for _, u := range r.Incumbents {
		fmt.Fprintf(&b, "incumbent        [%d] %s -> %.0f%% (%s, wave %d)\n",
			len(u.Subset.IDs), joinOrNone(u.Subset.IDs), 100*u.Subset.Rate, u.By, u.Wave)
	}
	if r.Best != nil {
		fmt.Fprintf(&b, "best subset      [%d] %s -> %.0f%% failure\n",
			len(r.Best.IDs), joinOrNone(r.Best.IDs), 100*r.Best.Rate)
	} else {
		b.WriteString("best subset      none found\n")
	}
	s := r.Stats
	fmt.Fprintf(&b, "explored         %d of %d subsets (%.1fx pruning), %d expanded, %d pruned, %d infeasible, %d waves\n",
		s.Evaluations, s.Exhaustive, float64(s.Exhaustive)/float64(maxInt(s.Evaluations, 1)),
		s.Expanded, s.Pruned, s.Infeasible, s.Waves)
	return b.String()
}

func joinOrNone(ids []string) string {
	if len(ids) == 0 {
		return "(empty)"
	}
	return strings.Join(ids, " + ")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
