package rca

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkSearchMinFlip runs the calibrated seeded minimal-flip
// search (testdata/search_minflip.json) on a fresh cold session per
// iteration and reports, alongside ns/op, the pruning and latency
// metrics cmd/benchjson snapshots:
//
//	searchnodes  distinct subsets evaluated — the exhaustive
//	             enumeration over this six-candidate pool would need
//	             Stats.Exhaustive (64) of them
//	searchms     wall milliseconds per search
func BenchmarkSearchMinFlip(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("testdata", "search_minflip.json"))
	if err != nil {
		b.Fatal(err)
	}
	req, err := SearchRequestFromJSON(data)
	if err != nil {
		b.Fatal(err)
	}
	var nodes int
	var total time.Duration
	for i := 0; i < b.N; i++ {
		s := NewSession(CorpusConfig{AuxModules: 10, Seed: 5},
			WithEnsembleSize(16), WithExpSize(6))
		start := time.Now()
		res, err := Search(context.Background(), s, req.Options())
		if err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
		nodes = res.Stats.Evaluations
		if res.Best == nil || len(res.Best.IDs) != 2 {
			b.Fatalf("seeded search lost the known pair: %+v", res.Best)
		}
		if int64(nodes) >= res.Stats.Exhaustive {
			b.Fatalf("pruning did nothing: %d of %d", nodes, res.Stats.Exhaustive)
		}
	}
	b.ReportMetric(float64(nodes), "searchnodes")
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "searchms")
}
