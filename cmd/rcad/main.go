// Command rcad is the long-running root-cause-analysis daemon: one
// compile-once rca.Session per process behind an HTTP/JSON API. Many
// clients submit scenario descriptions; the service computes the
// expensive shared substeps — corpus builds, the control-ensemble ECT
// fingerprint, compiled metagraphs — at most once, deduplicates
// identical in-flight investigations (singleflight on the scenario
// fingerprints) and serves repeat submissions from an LRU outcome
// store. With -store DIR those artifacts additionally persist in a
// content-addressed on-disk store: a restarted daemon (or a second
// daemon on the same directory) serves previously investigated
// scenarios warm, without re-running the pipeline, and -worker-id
// turns the process into a queue worker draining jobs enqueued by any
// peer on the store. POST /v1/searches runs branch-and-bound scenario
// searches over injection pools (rca -search is the matching client
// mode); search requests also travel the shared queue, kind-tagged as
// {"search": {...}}, and workers publish incumbent bounds through the
// store so peers prune against them. See internal/serve for the API.
//
// Usage:
//
//	rcad -addr :8080 -aux 100 -ensemble 40 -runs 10
//	rcad -addr :8080 -store /var/lib/rcad/artifacts
//	rcad -faults 'artifact.put:eio@0.1;worker.exec:crash@after=2' -fault-seed 42
//	curl -X POST 'localhost:8080/v1/jobs?wait=1' -d '{"experiment":"GOFFGRATCH"}'
//	curl -X POST 'localhost:8080/v1/searches?wait=1' -d @search.json
//	curl 'localhost:8080/v1/table1?topk=20'
//	rca -server http://localhost:8080 -all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/fault"
	"github.com/climate-rca/rca/internal/serve"
)

// defaultFaultSeed mirrors fault.FromEnv's seed resolution so the
// -fault-seed flag's default reflects RCAD_FAULT_SEED.
func defaultFaultSeed() uint64 {
	if s := os.Getenv("RCAD_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		aux      = flag.Int("aux", 100, "auxiliary module count (corpus scale)")
		seed     = flag.Uint64("seed", 1, "corpus structure seed")
		ensemble = flag.Int("ensemble", 40, "ensemble size")
		runs     = flag.Int("runs", 10, "experimental run count")
		sampler  = flag.String("sampler", "value", "sampler: value | reach | graded")
		parallel = flag.Int("parallel", 0, "worker pool per investigation (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "members per batched lockstep VM (0 = default 8, 1 = solo VMs)")
		engine   = flag.String("engine", "bytecode", "execution engine: bytecode (compiled register VM, default) | tree (AST-walking oracle)")
		lassoSv  = flag.String("lasso", "cd", "lasso solver: cd (coordinate-screened, default) | ista (dense reference oracle)")
		workers  = flag.Int("workers", 2, "concurrent pipeline executions")
		queue    = flag.Int("queue", 64, "bounded job-queue capacity")
		outcomes = flag.Int("outcomes", 128, "in-memory LRU outcome-store capacity")
		storeDir = flag.String("store", "", "artifact store directory: persist corpora, compiled programs, metagraphs and outcomes so restarts serve warm and concurrent daemons share work")
		storeMax = flag.Int64("store-max-bytes", 0, "artifact store size cap in bytes (0 = default 512 MiB); least-recently-used blobs are evicted beyond it")
		flushTO  = flag.Duration("flush-timeout", 5*time.Second, "shutdown deadline for flushing in-flight outcome writes to the artifact store")
		workerID = flag.String("worker-id", "", "drain the artifact store's shared job queue under this worker name (requires -store)")
		peersCSV = flag.String("worker-peers", "", "comma-separated worker names sharing the queue (affinity hashing); default just -worker-id")
		warm     = flag.Bool("warm", true, "precompute the control-ensemble fingerprint at startup")
		faults   = flag.String("faults", os.Getenv("RCAD_FAULTS"), "deterministic fault-injection spec, e.g. 'artifact.put:eio@0.1;worker.exec:crash@after=2' (default $RCAD_FAULTS; see DESIGN.md 'Failure model')")
		faultSd  = flag.Uint64("fault-seed", defaultFaultSeed(), "fault-injection seed: same spec + seed replays the same fault sequence (default $RCAD_FAULT_SEED or 1)")
		maxAtt   = flag.Int("max-attempts", 3, "attempt budget per job before it is dead-lettered (terminal failed state)")
		jobTO    = flag.Duration("job-timeout", 0, "per-job execution deadline; a timed-out attempt counts against -max-attempts (0 = none)")
	)
	flag.Parse()

	if *faults != "" {
		plane, err := fault.Parse(*faults, *faultSd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcad:", err)
			os.Exit(2)
		}
		fault.SetGlobal(plane)
		log.Printf("rcad: fault plane armed: %s (seed %d)", *faults, *faultSd)
	}

	var strategy rca.Sampler
	switch *sampler {
	case "value":
		strategy = rca.ValueSampling(0)
	case "reach":
		strategy = rca.ReachSampling()
	case "graded":
		strategy = rca.GradedSampling()
	default:
		fmt.Fprintf(os.Stderr, "rcad: invalid -sampler %q (valid: value, reach, graded)\n", *sampler)
		os.Exit(2)
	}

	engKind, err := rca.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcad:", err)
		os.Exit(2)
	}

	solver, err := rca.ParseLassoSolver(*lassoSv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcad:", err)
		os.Exit(2)
	}

	if *workerID != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "rcad: -worker-id requires -store")
		os.Exit(2)
	}

	var store *rca.ArtifactStore
	if *storeDir != "" {
		var sopts []rca.ArtifactStoreOption
		if *storeMax > 0 {
			sopts = append(sopts, rca.WithStoreMaxBytes(*storeMax))
		}
		store, err = rca.OpenArtifactStore(*storeDir, sopts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcad:", err)
			os.Exit(2)
		}
		if store.Degraded() {
			log.Printf("rcad: artifact store %s is unusable; serving degraded (in-memory pass-through, /healthz reports degraded:true)", *storeDir)
		}
	}

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = *aux
	ccfg.Seed = *seed
	opts := []rca.Option{
		rca.WithEnsembleSize(*ensemble),
		rca.WithExpSize(*runs),
		rca.WithSampler(strategy),
		rca.WithEngine(engKind),
		rca.WithLassoSolver(solver),
	}
	if *parallel > 0 {
		opts = append(opts, rca.WithParallelism(*parallel))
	}
	if *batch > 0 {
		opts = append(opts, rca.WithBatch(*batch))
	}
	if store != nil {
		opts = append(opts, rca.WithArtifacts(store))
	}
	session := rca.NewSession(ccfg, opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		// Pay the control-ensemble cost before the first job instead
		// of inside it; a Ctrl-C during warmup still exits promptly.
		log.Printf("rcad: warming control-ensemble fingerprint (aux=%d, ensemble=%d)", *aux, *ensemble)
		start := time.Now()
		if _, err := session.Fingerprint(ctx); err != nil {
			if errors.Is(err, rca.ErrCanceled) {
				return
			}
			log.Fatalf("rcad: warmup: %v", err)
		}
		log.Printf("rcad: warm in %v", time.Since(start).Round(time.Millisecond))
	}

	svc := serve.New(serve.Config{
		Session:      session,
		QueueSize:    *queue,
		Workers:      *workers,
		StoreSize:    *outcomes,
		Artifacts:    store,
		FlushTimeout: *flushTO,
		MaxAttempts:  *maxAtt,
		JobTimeout:   *jobTO,
	})
	defer svc.Close()

	var workerDone chan struct{}
	if *workerID != "" {
		peers := []string{*workerID}
		if *peersCSV != "" {
			peers = strings.Split(*peersCSV, ",")
		}
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			if err := svc.ServeQueue(ctx, *workerID, peers, 0); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("rcad: queue worker: %v", err)
			}
		}()
		log.Printf("rcad: worker %q draining shared queue (peers=%v)", *workerID, peers)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("rcad: serving on %s (workers=%d, queue=%d, outcomes=%d)", *addr, *workers, *queue, *outcomes)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rcad: %v", err)
	}
	if workerDone != nil {
		// Join the queue worker before exiting: ServeQueue's unwind
		// releases any held lease, so a SIGTERM mid-job returns the job
		// to pending for a peer instead of leaving a lease to go stale.
		<-workerDone
		log.Printf("rcad: queue worker drained, leases released")
	}
	log.Printf("rcad: shut down")
}
