// Command rcad is the long-running root-cause-analysis daemon: one
// compile-once rca.Session per process behind an HTTP/JSON API. Many
// clients submit scenario descriptions; the service computes the
// expensive shared substeps — corpus builds, the control-ensemble ECT
// fingerprint, compiled metagraphs — at most once, deduplicates
// identical in-flight investigations (singleflight on the scenario
// fingerprints) and serves repeat submissions from an LRU outcome
// store. See internal/serve for the API.
//
// Usage:
//
//	rcad -addr :8080 -aux 100 -ensemble 40 -runs 10
//	curl -X POST 'localhost:8080/v1/jobs?wait=1' -d '{"experiment":"GOFFGRATCH"}'
//	curl 'localhost:8080/v1/table1?topk=20'
//	rca -server http://localhost:8080 -all
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		aux      = flag.Int("aux", 100, "auxiliary module count (corpus scale)")
		seed     = flag.Uint64("seed", 1, "corpus structure seed")
		ensemble = flag.Int("ensemble", 40, "ensemble size")
		runs     = flag.Int("runs", 10, "experimental run count")
		sampler  = flag.String("sampler", "value", "sampler: value | reach | graded")
		parallel = flag.Int("parallel", 0, "worker pool per investigation (0 = GOMAXPROCS)")
		engine   = flag.String("engine", "bytecode", "execution engine: bytecode (compiled register VM, default) | tree (AST-walking oracle)")
		workers  = flag.Int("workers", 2, "concurrent pipeline executions")
		queue    = flag.Int("queue", 64, "bounded job-queue capacity")
		storeCap = flag.Int("store", 128, "LRU outcome-store capacity")
		warm     = flag.Bool("warm", true, "precompute the control-ensemble fingerprint at startup")
	)
	flag.Parse()

	var strategy rca.Sampler
	switch *sampler {
	case "value":
		strategy = rca.ValueSampling(0)
	case "reach":
		strategy = rca.ReachSampling()
	case "graded":
		strategy = rca.GradedSampling()
	default:
		fmt.Fprintf(os.Stderr, "rcad: invalid -sampler %q (valid: value, reach, graded)\n", *sampler)
		os.Exit(2)
	}

	engKind, err := rca.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcad:", err)
		os.Exit(2)
	}

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = *aux
	ccfg.Seed = *seed
	opts := []rca.Option{
		rca.WithEnsembleSize(*ensemble),
		rca.WithExpSize(*runs),
		rca.WithSampler(strategy),
		rca.WithEngine(engKind),
	}
	if *parallel > 0 {
		opts = append(opts, rca.WithParallelism(*parallel))
	}
	session := rca.NewSession(ccfg, opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		// Pay the control-ensemble cost before the first job instead
		// of inside it; a Ctrl-C during warmup still exits promptly.
		log.Printf("rcad: warming control-ensemble fingerprint (aux=%d, ensemble=%d)", *aux, *ensemble)
		start := time.Now()
		if _, err := session.Fingerprint(ctx); err != nil {
			if errors.Is(err, rca.ErrCanceled) {
				return
			}
			log.Fatalf("rcad: warmup: %v", err)
		}
		log.Printf("rcad: warm in %v", time.Since(start).Round(time.Millisecond))
	}

	svc := serve.New(serve.Config{
		Session:   session,
		QueueSize: *queue,
		Workers:   *workers,
		StoreSize: *storeCap,
	})
	defer svc.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("rcad: serving on %s (workers=%d, queue=%d, store=%d)", *addr, *workers, *queue, *storeCap)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rcad: %v", err)
	}
	log.Printf("rcad: shut down")
}
