// Command ectool is the pyCECT-style consistency tester: it generates
// ensemble/experimental output CSVs from the synthetic model, and
// evaluates experimental CSVs against an ensemble CSV, printing a
// Pass/Fail verdict per run.
//
// Usage:
//
//	ectool -gen -out ens.csv -members 40
//	ectool -gen -out exp.csv -members 10 -offset 1000 -mt
//	ectool -ensemble ens.csv -experimental exp.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/ect"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate outputs instead of testing")
		out     = flag.String("out", "runs.csv", "output CSV (with -gen)")
		members = flag.Int("members", 40, "number of runs (with -gen)")
		offset  = flag.Int("offset", 0, "member seed offset (with -gen)")
		aux     = flag.Int("aux", 100, "corpus scale")
		seed    = flag.Uint64("seed", 1, "corpus seed")
		mt      = flag.Bool("mt", false, "use the Mersenne Twister PRNG (with -gen)")
		fma     = flag.Bool("fma", false, "enable FMA in all modules (with -gen)")
		ensCSV  = flag.String("ensemble", "", "ensemble CSV (test mode)")
		expCSV  = flag.String("experimental", "", "experimental CSV (test mode)")
	)
	flag.Parse()

	if *gen {
		if err := generate(*out, *aux, *seed, *members, *offset, *mt, *fma); err != nil {
			fmt.Fprintln(os.Stderr, "ectool:", err)
			os.Exit(1)
		}
		return
	}
	if *ensCSV == "" || *expCSV == "" {
		fmt.Fprintln(os.Stderr, "ectool: need -ensemble and -experimental CSVs (or -gen)")
		os.Exit(2)
	}
	if err := evaluate(*ensCSV, *expCSV); err != nil {
		fmt.Fprintln(os.Stderr, "ectool:", err)
		os.Exit(1)
	}
}

func generate(path string, aux int, seed uint64, members, offset int, mt, fma bool) error {
	session := rca.NewSession(rca.CorpusConfig{AuxModules: aux, Seed: seed})
	var injs []rca.Injection
	if mt {
		injs = append(injs, rca.MersennePRNG())
	}
	if fma {
		injs = append(injs, rca.EnableFMA())
	}
	sc := rca.NewScenario("ECTOOL", rca.ScenarioOptions{}, injs...)
	runs, err := session.ExperimentalOutputs(context.Background(), sc, members, offset)
	if err != nil {
		return err
	}
	return writeCSV(path, runs)
}

func writeCSV(path string, runs []rca.RunOutput) error {
	if len(runs) == 0 {
		return fmt.Errorf("no runs to write (need -members >= 1)")
	}
	var vars []string
	for v := range runs[0] {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(vars); err != nil {
		return err
	}
	for _, r := range runs {
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = strconv.FormatFloat(r[v], 'g', 17, 64)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	fmt.Printf("ectool: wrote %d runs x %d variables to %s\n", len(runs), len(vars), path)
	return w.Error()
}

func readCSV(path string) ([]ect.RunOutput, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s: need header plus rows", path)
	}
	vars := rows[0]
	var runs []ect.RunOutput
	for _, row := range rows[1:] {
		r := make(ect.RunOutput, len(vars))
		for i, v := range vars {
			x, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			r[v] = x
		}
		runs = append(runs, r)
	}
	return runs, nil
}

func evaluate(ensPath, expPath string) error {
	ens, err := readCSV(ensPath)
	if err != nil {
		return err
	}
	exp, err := readCSV(expPath)
	if err != nil {
		return err
	}
	test, err := ect.NewTest(ens, ect.Config{})
	if err != nil {
		return err
	}
	fails := 0
	for i, r := range exp {
		v := test.Evaluate(r)
		verdict := "Pass"
		if !v.Pass {
			verdict = "Fail"
			fails++
		}
		fmt.Printf("run %02d: %s (failing PCs: %d)\n", i, verdict, len(v.FailingPCs))
	}
	fmt.Printf("failure rate: %.0f%% (%d/%d)\n",
		100*float64(fails)/float64(len(exp)), fails, len(exp))
	return nil
}
