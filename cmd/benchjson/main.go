// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark snapshot format the CI bench job uploads (and
// BENCH_*.json files in the repo root record): benchmark name mapped
// to ns/op, B/op and allocs/op, averaged over -count repetitions.
//
// With -baseline it additionally guards against regressions: the named
// benchmark's fresh ns/op is compared to the committed snapshot's and
// the process exits nonzero when it regressed beyond -tol.
//
// Usage:
//
//	go test -bench 'PipelineSixSpecs|GirvanNewman|EdgeBetweenness' \
//	    -benchmem -count 3 -run '^$' ./... | go run ./cmd/benchjson
//	... | go run ./cmd/benchjson -baseline BENCH_PR5.json -key pr5 \
//	    -guard BenchmarkPipelineSixSpecsSession -tol 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one -benchmem result row. The -N GOMAXPROCS suffix
// is stripped so snapshots compare across machines, and custom
// b.ReportMetric units may sit between ns/op and the -benchmem pair.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?`)

// coldWarm match the custom b.ReportMetric units the warm-restart
// benchmark emits alongside ns/op.
var (
	coldMS = regexp.MustCompile(`([\d.]+) coldms`)
	warmMS = regexp.MustCompile(`([\d.]+) warmms`)
)

// searchNodes/searchMS match the scenario-search benchmark's custom
// units: distinct subsets evaluated (the pruning numerator; compare
// against the exhaustive count) and wall milliseconds per search.
var (
	searchNodes = regexp.MustCompile(`([\d.]+) searchnodes`)
	searchMS    = regexp.MustCompile(`([\d.]+) searchms`)
)

// lassoMS/lassoIters match the lasso benchmarks' custom units: wall
// milliseconds per SelectK path search and solver iterations consumed
// (per search for the lasso benches, per pipeline run for the
// six-spec benches).
var (
	lassoMS    = regexp.MustCompile(`([\d.]+) lassoms`)
	lassoIters = regexp.MustCompile(`([\d.]+) lassoiters`)
)

// Result is one benchmark's averaged numbers. ColdMS/WarmMS carry a
// job-latency pair (milliseconds for the first, pipeline-executing
// request vs a warm-restart replay from the artifact store) when the
// producer measured one; zero pairs are omitted from the JSON.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
	ColdMS   float64 `json:"coldms,omitempty"`
	WarmMS   float64 `json:"warmms,omitempty"`
	// SearchNodes/SearchMS carry the scenario-search benchmark's
	// pruning and latency metrics when the producer measured them.
	SearchNodes float64 `json:"searchnodes,omitempty"`
	SearchMS    float64 `json:"searchms,omitempty"`
	// LassoMS/LassoIters carry the lasso benchmarks' per-search wall
	// time and solver iteration counts when the producer measured them.
	LassoMS    float64 `json:"lassoms,omitempty"`
	LassoIters float64 `json:"lassoiters,omitempty"`
}

func main() {
	var (
		baseline = flag.String("baseline", "", "committed snapshot JSON to guard against")
		key      = flag.String("key", "", "top-level object inside the baseline holding the results (e.g. pr5); empty = the file is the results map")
		guard    = flag.String("guard", "BenchmarkPipelineSixSpecsSession", "benchmark name the regression guard checks")
		tol      = flag.Float64("tol", 0.15, "allowed fractional ns/op regression before failing")
	)
	flag.Parse()
	acc := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := acc[m[1]]
		if r == nil {
			r = &Result{}
			acc[m[1]] = r
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		r.NsOp += ns
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			a, _ := strconv.ParseFloat(m[4], 64)
			r.BOp += b
			r.AllocsOp += a
		}
		if cm := coldMS.FindStringSubmatch(sc.Text()); cm != nil {
			v, _ := strconv.ParseFloat(cm[1], 64)
			r.ColdMS += v
		}
		if wm := warmMS.FindStringSubmatch(sc.Text()); wm != nil {
			v, _ := strconv.ParseFloat(wm[1], 64)
			r.WarmMS += v
		}
		if sn := searchNodes.FindStringSubmatch(sc.Text()); sn != nil {
			v, _ := strconv.ParseFloat(sn[1], 64)
			r.SearchNodes += v
		}
		if sm := searchMS.FindStringSubmatch(sc.Text()); sm != nil {
			v, _ := strconv.ParseFloat(sm[1], 64)
			r.SearchMS += v
		}
		if lm := lassoMS.FindStringSubmatch(sc.Text()); lm != nil {
			v, _ := strconv.ParseFloat(lm[1], 64)
			r.LassoMS += v
		}
		if li := lassoIters.FindStringSubmatch(sc.Text()); li != nil {
			v, _ := strconv.ParseFloat(li[1], 64)
			r.LassoIters += v
		}
		r.Runs++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, r := range acc {
		n := float64(r.Runs)
		r.NsOp /= n
		r.BOp /= n
		r.AllocsOp /= n
		r.ColdMS /= n
		r.WarmMS /= n
		r.SearchNodes /= n
		r.SearchMS /= n
		r.LassoMS /= n
		r.LassoIters /= n
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(acc); err != nil { // json sorts map keys
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := checkGuard(acc, *baseline, *key, *guard, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkGuard fails when the guarded benchmark's fresh ns/op exceeds
// the committed snapshot's by more than the tolerance.
func checkGuard(acc map[string]*Result, path, key, guard string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	results := data
	if key != "" {
		raw, ok := doc[key]
		if !ok {
			return fmt.Errorf("%s: no %q object", path, key)
		}
		results = raw
	}
	var base map[string]*Result
	if err := json.Unmarshal(results, &base); err != nil {
		return fmt.Errorf("%s[%s]: %w", path, key, err)
	}
	want, ok := base[guard]
	if !ok || want.NsOp <= 0 {
		return fmt.Errorf("%s: baseline has no usable %s entry", path, guard)
	}
	got, ok := acc[guard]
	if !ok {
		return fmt.Errorf("fresh run has no %s result to guard", guard)
	}
	limit := want.NsOp * (1 + tol)
	if got.NsOp > limit {
		return fmt.Errorf("%s regressed: %.0f ns/op vs committed %.0f (limit %.0f, tol %.0f%%)",
			guard, got.NsOp, want.NsOp, limit, tol*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s ok: %.0f ns/op vs committed %.0f (limit %.0f)\n",
		guard, got.NsOp, want.NsOp, limit)
	return nil
}
