// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark snapshot format the CI bench job uploads (and
// BENCH_*.json files in the repo root record): benchmark name mapped
// to ns/op, B/op and allocs/op, averaged over -count repetitions.
//
// Usage:
//
//	go test -bench 'PipelineSixSpecs|GirvanNewman|EdgeBetweenness' \
//	    -benchmem -count 3 -run '^$' ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one -benchmem result row. The -N GOMAXPROCS suffix
// is stripped so snapshots compare across machines.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// Result is one benchmark's averaged numbers.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Runs     int     `json:"runs"`
}

func main() {
	acc := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := acc[m[1]]
		if r == nil {
			r = &Result{}
			acc[m[1]] = r
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		r.NsOp += ns
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			a, _ := strconv.ParseFloat(m[4], 64)
			r.BOp += b
			r.AllocsOp += a
		}
		r.Runs++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, r := range acc {
		n := float64(r.Runs)
		r.NsOp /= n
		r.BOp /= n
		r.AllocsOp /= n
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(acc); err != nil { // json sorts map keys
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
