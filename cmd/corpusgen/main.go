// Command corpusgen emits the synthetic CESM-like FortLite source tree
// to a directory, optionally with one of the paper's defects injected.
//
// Usage:
//
//	corpusgen -out ./cesm-src -aux 540 -bug GOFFGRATCH
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/climate-rca/rca/internal/corpus"
)

func main() {
	var (
		out  = flag.String("out", "corpus-src", "output directory")
		aux  = flag.Int("aux", 100, "auxiliary module count")
		seed = flag.Uint64("seed", 1, "structure seed")
		bug  = flag.String("bug", "NONE", "bug to inject: NONE|WSUBBUG|GOFFGRATCH|DYN3BUG|RANDOMBUG")
	)
	flag.Parse()

	var b corpus.Bug
	switch strings.ToUpper(*bug) {
	case "NONE":
		b = corpus.BugNone
	case "WSUBBUG":
		b = corpus.BugWsub
	case "GOFFGRATCH":
		b = corpus.BugGoffGratch
	case "DYN3BUG":
		b = corpus.BugDyn3
	case "RANDOMBUG":
		b = corpus.BugRandomIdx
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown bug %q\n", *bug)
		os.Exit(2)
	}

	c := corpus.Generate(corpus.Config{AuxModules: *aux, Seed: *seed, Bug: b})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	var lines int
	for _, f := range c.Files {
		if err := os.WriteFile(filepath.Join(*out, f.Name), []byte(f.Source), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		lines += strings.Count(f.Source, "\n")
	}
	fmt.Printf("corpusgen: wrote %d files (%d lines) to %s (bug=%s)\n",
		len(c.Files), lines, *out, b)
}
