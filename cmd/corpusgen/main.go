// Command corpusgen emits the synthetic CESM-like FortLite source tree
// to a directory — clean, with one of the paper's prewired defects, or
// with arbitrary composed injections. It rides the Session/Scenario
// API, so the emitted tree is byte-identical to what the pipeline's
// experimental build interprets and compiles.
//
// Usage:
//
//	corpusgen -out ./cesm-src -aux 540
//	corpusgen -out ./cesm-src -bug GOFFGRATCH
//	corpusgen -out ./cesm-src -inject 'micro_mg_tend.ratio*=1.0001' -inject 'aero_run.wsub:0.20=>2.00'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	rca "github.com/climate-rca/rca"
)

type injectFlags []string

func (f *injectFlags) String() string     { return strings.Join(*f, "; ") }
func (f *injectFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var injects injectFlags
	var (
		out  = flag.String("out", "corpus-src", "output directory")
		aux  = flag.Int("aux", 100, "auxiliary module count")
		seed = flag.Uint64("seed", 1, "structure seed")
		bug  = flag.String("bug", "NONE", "prewired defect: NONE|WSUBBUG|GOFFGRATCH|DYN3BUG|RANDOMBUG|LANDBUG")
	)
	flag.Var(&injects, "inject",
		"injection (repeatable): sub.var*=F | sub.var:OLD=>NEW | param:NAME=V")
	flag.Parse()

	var injs []rca.Injection
	switch strings.ToUpper(*bug) {
	case "NONE":
	case "WSUBBUG":
		injs = append(injs, rca.WsubDefect())
	case "GOFFGRATCH":
		injs = append(injs, rca.GoffGratchDefect())
	case "DYN3BUG":
		injs = append(injs, rca.Dyn3Defect())
	case "RANDOMBUG":
		injs = append(injs, rca.RandomIdxDefect())
	case "LANDBUG":
		injs = append(injs, rca.LandDefect())
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown bug %q\n", *bug)
		os.Exit(2)
	}
	for _, s := range injects {
		inj, err := rca.ParseInjection(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(2)
		}
		injs = append(injs, inj)
	}
	sc := rca.NewScenario("corpusgen", rca.ScenarioOptions{}, injs...)

	session := rca.NewSession(rca.CorpusConfig{AuxModules: *aux, Seed: *seed})
	files, err := session.Sources(context.Background(), sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	var lines int
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(*out, f.Name), []byte(f.Source), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		lines += strings.Count(f.Source, "\n")
	}
	var ids []string
	for _, inj := range sc.Injections() {
		ids = append(ids, inj.ID())
	}
	desc := "clean"
	if len(ids) > 0 {
		desc = strings.Join(ids, " + ")
	}
	fmt.Printf("corpusgen: wrote %d files (%d lines) to %s (%s)\n",
		len(files), lines, *out, desc)
}
