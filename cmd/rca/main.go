// Command rca runs the root-cause-analysis pipeline end to end on the
// synthetic CESM-like corpus: inject a scenario's defects, confirm
// the consistency-test failure, select affected variables, build the
// metagraph, slice, and iteratively refine to the defect. All modes
// share one rca.Session, so the corpus, the ensemble fingerprint and
// the metagraph are generated once per invocation. Ctrl-C cancels the
// run cleanly between pipeline checkpoints.
//
// Usage:
//
//	rca -experiment GOFFGRATCH -aux 100 -ensemble 40 -runs 10
//	rca -all
//	rca -inject 'micro_mg_tend.ratio*=1.0001' -name RATIO
//	rca -inject 'aero_run.wsub:0.20=>2.00' -inject prng=mt -name WSUB+MT
//	rca -scenario twobugs.json
//	rca -table1 -aux 100 -topk 20
//	rca -search minflip -pool 'micro_mg_tend.tlat*=1.00015' -pool 'micro_mg_tend.pre*=1.0003'
//	rca -list
//
// With -server, rca becomes a thin client of an rcad daemon: the
// scenario description is shipped as JSON and the daemon's shared
// Session does the work (corpus sizing then lives server-side):
//
//	rca -server http://localhost:8080 -experiment GOFFGRATCH
//	rca -server http://localhost:8080 -all
//	rca -server http://localhost:8080 -search minflip -pool 'prng=mt' -pool 'fma=all'
//
// -search runs a branch-and-bound scenario search over the -pool
// candidates (objectives: minflip, maxdelta, rank) instead of a single
// investigation; -experiment/-inject/-scenario then name the base
// scenario the subsets are layered onto (default: clean).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/fault"
)

// defaultFaultSeed mirrors fault.FromEnv's seed resolution so the
// -fault-seed flag's default reflects RCAD_FAULT_SEED.
func defaultFaultSeed() uint64 {
	if s := os.Getenv("RCAD_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// injectFlags collects repeated -inject values.
type injectFlags []string

func (f *injectFlags) String() string     { return strings.Join(*f, "; ") }
func (f *injectFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var injects, pool injectFlags
	var (
		search    = flag.String("search", "", "scenario search objective: minflip | maxdelta | rank (requires -pool)")
		threshold = flag.Float64("threshold", 0, "minflip verdict threshold (0 = engine default 0.5)")
		maxSubset = flag.Int("maxsubset", 0, "search subset size cap (0 = objective default)")
		name      = flag.String("experiment", "", "prewired experiment name (see -list)")
		scName    = flag.String("name", "CUSTOM", "scenario name for -inject runs")
		scFile    = flag.String("scenario", "", "JSON scenario definition file")
		camOnly   = flag.Bool("camonly", true, "restrict the slice to CAM modules (-inject runs)")
		selectK   = flag.Int("selectk", 5, "lasso target support (-inject runs)")
		list      = flag.Bool("list", false, "list experiments and exit")
		all       = flag.Bool("all", false, "run all six §6 experiments concurrently")
		aux       = flag.Int("aux", 100, "auxiliary module count (corpus scale)")
		seed      = flag.Uint64("seed", 1, "corpus structure seed")
		ensemble  = flag.Int("ensemble", 40, "ensemble size")
		runs      = flag.Int("runs", 10, "experimental run count")
		sampler   = flag.String("sampler", "value", "sampler: value | reach")
		table1    = flag.Bool("table1", false, "run the Table 1 selective-FMA study instead")
		topk      = flag.Int("topk", 50, "modules to disable per Table 1 strategy")
		dot       = flag.String("dot", "", "write the induced subgraph (Graphviz) to this file")
		graded    = flag.Bool("magnitudes", false, "use graded (magnitude-ranked) sampling (§6.3 extension)")
		parallel  = flag.Int("parallel", 0, "worker pool per investigation: ensemble members and graph kernels (0 = GOMAXPROCS); results are identical at every setting")
		batch     = flag.Int("batch", 0, "members per batched lockstep VM (0 = default 8, 1 = solo VMs); results are bit-identical at every width")
		engine    = flag.String("engine", "bytecode", "execution engine: bytecode (compiled register VM, default) | tree (AST-walking oracle); outputs are bit-identical")
		lassoSv   = flag.String("lasso", "cd", "lasso solver: cd (coordinate-screened, default) | ista (dense reference oracle); outputs are bit-identical")
		server    = flag.String("server", "", "rcad base URL: run scenarios on a daemon instead of in-process (corpus/ensemble sizing then comes from the daemon's flags)")
		storeDir  = flag.String("store", "", "artifact store directory: persist corpora, compiled programs and metagraphs so later runs (and rcad daemons) start warm")
		faults    = flag.String("faults", os.Getenv("RCAD_FAULTS"), "deterministic fault-injection spec for -store I/O, e.g. 'artifact.put:eio@0.1' (default $RCAD_FAULTS)")
		faultSd   = flag.Uint64("fault-seed", defaultFaultSeed(), "fault-injection seed: same spec + seed replays the same fault sequence (default $RCAD_FAULT_SEED or 1)")
	)
	flag.Var(&injects, "inject",
		"injection (repeatable): sub.var*=F | sub.var:OLD=>NEW | prng=mt | fma=all|m1,m2 | param:NAME=V")
	flag.Var(&pool, "pool",
		"search candidate injection (repeatable, same grammar as -inject); used with -search")
	flag.Parse()

	if *faults != "" {
		plane, err := fault.Parse(*faults, *faultSd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(2)
		}
		fault.SetGlobal(plane)
	}

	if *list {
		fmt.Println("experiments (§6):")
		for _, s := range rca.Experiments() {
			fmt.Printf("  %-12s %s\n", s.Name(), injectionIDs(s))
		}
		fmt.Println("supplement (§8.2, Figure 15):")
		for _, s := range rca.SupplementExperiments() {
			fmt.Printf("  %-12s %s\n", s.Name(), injectionIDs(s))
		}
		fmt.Println("\ncustom scenarios: -inject (repeatable) or -scenario FILE.json")
		return
	}

	// Ctrl-C cancels between pipeline checkpoints; the exit path
	// reports ErrCanceled instead of tearing the process down mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *server != "" {
		c := newClient(*server)
		var err error
		switch {
		case *table1:
			// Sizing lives server-side: forward only the parameters
			// the user set explicitly, so a bare `-table1` reuses the
			// daemon's cached ensemble instead of forcing the client
			// defaults onto it.
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			var e, r, k int
			if set["ensemble"] {
				e = *ensemble
			}
			if set["runs"] {
				r = *runs
			}
			if set["topk"] {
				k = *topk
			}
			err = runRemoteTable1(ctx, c, e, r, k)
		case *search != "":
			var req *rca.SearchRequest
			if req, err = buildSearchRequest(*search, pool, *threshold, *maxSubset,
				*name, *scFile, injects, *scName, *camOnly, *selectK); err != nil {
				fmt.Fprintln(os.Stderr, "rca:", err)
				os.Exit(2)
			}
			err = runRemoteSearch(ctx, c, req)
		case *all:
			err = runRemoteAll(ctx, c, rca.Experiments())
		default:
			var sc rca.Scenario
			if sc, err = resolveScenario(*name, *scFile, injects, *scName, *camOnly, *selectK); err != nil {
				fmt.Fprintln(os.Stderr, "rca:", err)
				os.Exit(2)
			}
			err = runRemote(ctx, c, sc)
		}
		if err != nil {
			fail(err)
		}
		return
	}

	// Validate the sampler up front: a typo should fail here, not ten
	// minutes into an ensemble run.
	var strategy rca.Sampler
	switch *sampler {
	case "value":
		strategy = rca.ValueSampling(0)
		if *graded {
			strategy = rca.GradedSampling()
		}
	case "reach":
		if *graded {
			fmt.Fprintln(os.Stderr, "rca: -magnitudes requires -sampler value")
			os.Exit(2)
		}
		strategy = rca.ReachSampling()
	default:
		fmt.Fprintf(os.Stderr, "rca: invalid -sampler %q (valid: value, reach)\n", *sampler)
		os.Exit(2)
	}

	engKind, err := rca.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rca:", err)
		os.Exit(2)
	}

	solver, err := rca.ParseLassoSolver(*lassoSv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rca:", err)
		os.Exit(2)
	}

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = *aux
	ccfg.Seed = *seed

	opts := []rca.Option{
		rca.WithEnsembleSize(*ensemble),
		rca.WithExpSize(*runs),
		rca.WithSampler(strategy),
		rca.WithEngine(engKind),
		rca.WithLassoSolver(solver),
	}
	if *parallel > 0 {
		opts = append(opts, rca.WithParallelism(*parallel))
	}
	if *batch > 0 {
		opts = append(opts, rca.WithBatch(*batch))
	}
	if *storeDir != "" {
		store, err := rca.OpenArtifactStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(2)
		}
		opts = append(opts, rca.WithArtifacts(store))
	}
	session := rca.NewSession(ccfg, opts...)

	switch {
	case *table1:
		rows, err := session.Table1(ctx, rca.Table1Setup{
			EnsembleSize: *ensemble,
			ExpSize:      *runs,
			TopK:         *topk,
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(rca.FormatTable1(rows))

	case *search != "":
		req, err := buildSearchRequest(*search, pool, *threshold, *maxSubset,
			*name, *scFile, injects, *scName, *camOnly, *selectK)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(2)
		}
		sopts := req.Options()
		if *parallel > 0 {
			sopts.Parallelism = *parallel
		}
		res, err := rca.Search(ctx, session, sopts)
		if err != nil {
			fail(err)
		}
		fmt.Print(rca.FormatSearchResult(res))

	case *all:
		outs, err := session.RunAll(ctx, rca.Experiments())
		if err != nil {
			fail(err)
		}
		located := 0
		for _, out := range outs {
			fmt.Println("================================================================")
			fmt.Print(rca.FormatOutcome(out))
			if out.BugLocated {
				located++
			}
		}
		fmt.Println("================================================================")
		fmt.Printf("located %d/%d injected defects\n", located, len(outs))

	default:
		sc, err := resolveScenario(*name, *scFile, injects, *scName, *camOnly, *selectK)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(2)
		}
		out, err := session.Run(ctx, sc)
		if err != nil {
			fail(err)
		}
		fmt.Print(rca.FormatOutcome(out))
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := out.WriteSliceDot(f); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *dot)
		}
	}
}

// resolveScenario picks the investigation: -scenario JSON wins, then
// -inject composition, then a prewired experiment name (defaulting to
// GOFFGRATCH when nothing is given).
func resolveScenario(name, file string, injects []string, scName string,
	camOnly bool, selectK int) (rca.Scenario, error) {
	if file != "" {
		if name != "" || len(injects) > 0 {
			return nil, fmt.Errorf("-scenario excludes -experiment and -inject")
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return rca.ScenarioFromJSON(data)
	}
	if len(injects) > 0 {
		if name != "" {
			return nil, fmt.Errorf("-inject excludes -experiment (use one or the other)")
		}
		injs := make([]rca.Injection, 0, len(injects))
		for _, s := range injects {
			inj, err := rca.ParseInjection(s)
			if err != nil {
				return nil, err
			}
			injs = append(injs, inj)
		}
		return rca.NewScenario(scName,
			rca.ScenarioOptions{CAMOnly: camOnly, SelectK: selectK}, injs...), nil
	}
	if name == "" {
		name = "GOFFGRATCH"
	}
	for _, s := range rca.AllExperiments() {
		if strings.EqualFold(s.Name(), name) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (try -list, or -inject for a custom scenario)", name)
}

// buildSearchRequest assembles the -search request: the objective, the
// -pool candidates, and (only when the user named one) a base scenario
// — a bare -search runs over the clean model.
func buildSearchRequest(objective string, pool []string, threshold float64, maxSubset int,
	name, file string, injects []string, scName string, camOnly bool, selectK int) (*rca.SearchRequest, error) {
	obj, err := rca.ParseSearchObjective(objective)
	if err != nil {
		return nil, err
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("-search requires at least one -pool injection")
	}
	req := &rca.SearchRequest{Objective: obj, Threshold: threshold, MaxSubset: maxSubset}
	for _, s := range pool {
		inj, err := rca.ParseInjection(s)
		if err != nil {
			return nil, fmt.Errorf("-pool %q: %w", s, err)
		}
		req.Pool = append(req.Pool, inj)
	}
	if name != "" || file != "" || len(injects) > 0 {
		base, err := resolveScenario(name, file, injects, scName, camOnly, selectK)
		if err != nil {
			return nil, err
		}
		req.Base = base
	}
	return req, nil
}

// injectionIDs renders a scenario's injection fingerprints for -list.
func injectionIDs(s rca.Scenario) string {
	var ids []string
	for _, inj := range s.Injections() {
		ids = append(ids, inj.ID())
	}
	if len(ids) == 0 {
		return "(no injections)"
	}
	return strings.Join(ids, " + ")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rca:", err)
	os.Exit(1)
}
