// Command rca runs the root-cause-analysis pipeline end to end on the
// synthetic CESM-like corpus: inject an experiment's defect, confirm
// the consistency-test failure, select affected variables, build the
// metagraph, slice, and iteratively refine to the defect.
//
// Usage:
//
//	rca -experiment GOFFGRATCH -aux 100 -ensemble 40 -runs 10
//	rca -table1 -aux 100 -topk 20
//	rca -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rca "github.com/climate-rca/rca"
)

func main() {
	var (
		name     = flag.String("experiment", "GOFFGRATCH", "experiment name (see -list)")
		list     = flag.Bool("list", false, "list experiments and exit")
		aux      = flag.Int("aux", 100, "auxiliary module count (corpus scale)")
		seed     = flag.Uint64("seed", 1, "corpus structure seed")
		ensemble = flag.Int("ensemble", 40, "ensemble size")
		runs     = flag.Int("runs", 10, "experimental run count")
		sampler  = flag.String("sampler", "value", "sampler: value | reach")
		table1   = flag.Bool("table1", false, "run the Table 1 selective-FMA study instead")
		topk     = flag.Int("topk", 50, "modules to disable per Table 1 strategy")
		dot      = flag.String("dot", "", "write the induced subgraph (Graphviz) to this file")
		graded   = flag.Bool("magnitudes", false, "use graded (magnitude-ranked) sampling (§6.3 extension)")
	)
	flag.Parse()

	if *list {
		for _, s := range rca.Experiments() {
			fmt.Printf("%-12s bug=%v mersenne=%v fma=%v\n", s.Name, s.Bug, s.Mersenne, s.FMA)
		}
		return
	}

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = *aux
	ccfg.Seed = *seed

	if *table1 {
		rows, err := rca.RunTable1(rca.Table1Setup{
			Corpus:       ccfg,
			EnsembleSize: *ensemble,
			ExpSize:      *runs,
			TopK:         *topk,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(1)
		}
		fmt.Print(rca.FormatTable1(rows))
		return
	}

	var spec rca.Spec
	found := false
	for _, s := range rca.Experiments() {
		if strings.EqualFold(s.Name, *name) {
			spec, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "rca: unknown experiment %q (try -list)\n", *name)
		os.Exit(2)
	}
	out, err := rca.RunExperiment(spec, rca.Setup{
		Corpus:       ccfg,
		EnsembleSize: *ensemble,
		ExpSize:      *runs,
		SamplerKind:  *sampler,
		Magnitudes:   *graded,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rca:", err)
		os.Exit(1)
	}
	fmt.Print(rca.FormatOutcome(out))
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := out.WriteSliceDot(f); err != nil {
			fmt.Fprintln(os.Stderr, "rca:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}
