// Command rca runs the root-cause-analysis pipeline end to end on the
// synthetic CESM-like corpus: inject an experiment's defect, confirm
// the consistency-test failure, select affected variables, build the
// metagraph, slice, and iteratively refine to the defect. All modes
// share one rca.Session, so the corpus, the ensemble fingerprint and
// the metagraph are generated once per invocation.
//
// Usage:
//
//	rca -experiment GOFFGRATCH -aux 100 -ensemble 40 -runs 10
//	rca -all
//	rca -table1 -aux 100 -topk 20
//	rca -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rca "github.com/climate-rca/rca"
)

func main() {
	var (
		name     = flag.String("experiment", "GOFFGRATCH", "experiment name (see -list)")
		list     = flag.Bool("list", false, "list experiments and exit")
		all      = flag.Bool("all", false, "run all six §6 experiments concurrently")
		aux      = flag.Int("aux", 100, "auxiliary module count (corpus scale)")
		seed     = flag.Uint64("seed", 1, "corpus structure seed")
		ensemble = flag.Int("ensemble", 40, "ensemble size")
		runs     = flag.Int("runs", 10, "experimental run count")
		sampler  = flag.String("sampler", "value", "sampler: value | reach")
		table1   = flag.Bool("table1", false, "run the Table 1 selective-FMA study instead")
		topk     = flag.Int("topk", 50, "modules to disable per Table 1 strategy")
		dot      = flag.String("dot", "", "write the induced subgraph (Graphviz) to this file")
		graded   = flag.Bool("magnitudes", false, "use graded (magnitude-ranked) sampling (§6.3 extension)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (§6):")
		for _, s := range rca.Experiments() {
			fmt.Printf("  %-12s bug=%v mersenne=%v fma=%v\n", s.Name, s.Bug, s.Mersenne, s.FMA)
		}
		fmt.Println("supplement (§8.2, Figure 15):")
		for _, s := range rca.SupplementExperiments() {
			fmt.Printf("  %-12s bug=%v mersenne=%v fma=%v\n", s.Name, s.Bug, s.Mersenne, s.FMA)
		}
		return
	}

	// Validate the sampler up front: a typo should fail here, not ten
	// minutes into an ensemble run.
	var strategy rca.Sampler
	switch *sampler {
	case "value":
		strategy = rca.ValueSampling(0)
		if *graded {
			strategy = rca.GradedSampling()
		}
	case "reach":
		if *graded {
			fmt.Fprintln(os.Stderr, "rca: -magnitudes requires -sampler value")
			os.Exit(2)
		}
		strategy = rca.ReachSampling()
	default:
		fmt.Fprintf(os.Stderr, "rca: invalid -sampler %q (valid: value, reach)\n", *sampler)
		os.Exit(2)
	}

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = *aux
	ccfg.Seed = *seed

	session := rca.NewSession(ccfg,
		rca.WithEnsembleSize(*ensemble),
		rca.WithExpSize(*runs),
		rca.WithSampler(strategy))

	switch {
	case *table1:
		rows, err := session.Table1(rca.Table1Setup{
			EnsembleSize: *ensemble,
			ExpSize:      *runs,
			TopK:         *topk,
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(rca.FormatTable1(rows))

	case *all:
		outs, err := session.RunAll(rca.Experiments())
		if err != nil {
			fail(err)
		}
		located := 0
		for _, out := range outs {
			fmt.Println("================================================================")
			fmt.Print(rca.FormatOutcome(out))
			if out.BugLocated {
				located++
			}
		}
		fmt.Println("================================================================")
		fmt.Printf("located %d/%d injected defects\n", located, len(outs))

	default:
		var spec rca.Spec
		found := false
		for _, s := range rca.AllExperiments() {
			if strings.EqualFold(s.Name, *name) {
				spec, found = s, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "rca: unknown experiment %q (try -list)\n", *name)
			os.Exit(2)
		}
		out, err := session.Run(spec)
		if err != nil {
			fail(err)
		}
		fmt.Print(rca.FormatOutcome(out))
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := out.WriteSliceDot(f); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *dot)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rca:", err)
	os.Exit(1)
}
