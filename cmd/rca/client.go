package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	rca "github.com/climate-rca/rca"
)

// client drives a remote rcad daemon instead of an in-process Session.
// Corpus and ensemble sizing live server-side (rcad's flags); the
// client only ships scenario descriptions and renders what comes back.
type client struct {
	base string
	http *http.Client
}

func newClient(base string) *client {
	return &client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// jobReply mirrors the serve job JSON (the fields the CLI renders).
type jobReply struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	Stage       string `json:"stage"`
	Outcome     *struct {
		Text       string `json:"text"`
		BugLocated bool   `json:"bugLocated"`
	} `json:"outcome"`
	Error string `json:"error"`
}

// do issues a request and decodes the JSON reply, surfacing the
// service's error body on non-2xx statuses.
func (c *client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// submit posts a scenario; wait=1 blocks until the job ends.
func (c *client) submit(ctx context.Context, sc rca.Scenario, wait bool) (*jobReply, error) {
	body, err := rca.ScenarioToJSON(sc)
	if err != nil {
		return nil, err
	}
	path := "/v1/jobs"
	if wait {
		path += "?wait=1"
	}
	var reply jobReply
	if err := c.do(ctx, http.MethodPost, path, body, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// await blocks until a job reaches a terminal state.
func (c *client) await(ctx context.Context, id string) (*jobReply, error) {
	var reply jobReply
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"?wait=1", nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// outcomeText extracts the rendered report or explains why there is
// none.
func outcomeText(j *jobReply) (string, error) {
	if j.Outcome != nil {
		return j.Outcome.Text, nil
	}
	if j.Error != "" {
		return "", fmt.Errorf("job %s %s: %s", j.ID, j.State, j.Error)
	}
	return "", fmt.Errorf("job %s ended %s without an outcome", j.ID, j.State)
}

// runRemote executes one scenario on the daemon and prints its report.
func runRemote(ctx context.Context, c *client, sc rca.Scenario) error {
	reply, err := c.submit(ctx, sc, true)
	if err != nil {
		return err
	}
	text, err := outcomeText(reply)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

// runRemoteAll submits every scenario up front — the daemon
// deduplicates and fans them across its workers — then renders the
// reports in catalog order.
func runRemoteAll(ctx context.Context, c *client, scs []rca.Scenario) error {
	ids := make([]string, len(scs))
	for i, sc := range scs {
		reply, err := c.submit(ctx, sc, false)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name(), err)
		}
		ids[i] = reply.ID
	}
	located := 0
	for i, id := range ids {
		reply, err := c.await(ctx, id)
		if err != nil {
			return fmt.Errorf("%s: %w", scs[i].Name(), err)
		}
		text, err := outcomeText(reply)
		if err != nil {
			return err
		}
		fmt.Println("================================================================")
		fmt.Print(text)
		if reply.Outcome.BugLocated {
			located++
		}
	}
	fmt.Println("================================================================")
	fmt.Printf("located %d/%d injected defects\n", located, len(scs))
	return nil
}

// searchReply mirrors the serve search JSON (fields the CLI renders).
type searchReply struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Text  string `json:"text"`
	Error string `json:"error"`
}

// runRemoteSearch runs a branch-and-bound scenario search on the
// daemon and prints its report.
func runRemoteSearch(ctx context.Context, c *client, req *rca.SearchRequest) error {
	body, err := rca.SearchRequestToJSON(req)
	if err != nil {
		return err
	}
	var reply searchReply
	if err := c.do(ctx, http.MethodPost, "/v1/searches?wait=1", body, &reply); err != nil {
		return err
	}
	if reply.Error != "" {
		return fmt.Errorf("search %s %s: %s", reply.ID, reply.State, reply.Error)
	}
	if reply.Text == "" {
		return fmt.Errorf("search %s ended %s without a result", reply.ID, reply.State)
	}
	fmt.Print(reply.Text)
	return nil
}

// runRemoteTable1 fetches the §6.5 selective-FMA study.
func runRemoteTable1(ctx context.Context, c *client, ensemble, runs, topk int) error {
	q := url.Values{}
	if ensemble > 0 {
		q.Set("ensemble", strconv.Itoa(ensemble))
	}
	if runs > 0 {
		q.Set("runs", strconv.Itoa(runs))
	}
	if topk > 0 {
		q.Set("topk", strconv.Itoa(topk))
	}
	var reply struct {
		Text string `json:"text"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/table1?"+q.Encode(), nil, &reply); err != nil {
		return err
	}
	fmt.Print(reply.Text)
	return nil
}
