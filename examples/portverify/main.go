// Portverify: the paper's §6.4-6.5 hardware-sensitivity workflow. A
// "port" to FMA-capable hardware (AVX2 enabled) fails the consistency
// test; the KGen kernel comparison flags the Morrison-Gettelman
// variables responsible; and the Table 1 study shows that disabling
// FMA on only the most central modules (by quotient-graph eigenvector
// centrality) restores statistical consistency, while disabling it on
// the largest or random modules does not.
package main

import (
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = 40

	fmt.Println("== AVX2 experiment (KGen flagging + refinement) ==")
	out, err := rca.RunExperiment(rca.AVX2, rca.Setup{
		Corpus:       ccfg,
		EnsembleSize: 30,
		ExpSize:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatOutcome(out))

	fmt.Println("\n== Table 1: selective AVX2 disablement ==")
	rows, err := rca.RunTable1(rca.Table1Setup{
		Corpus:        ccfg,
		EnsembleSize:  30,
		ExpSize:       8,
		TopK:          8,
		RandomSamples: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatTable1(rows))
}
