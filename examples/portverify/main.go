// Portverify: the paper's §6.4-6.5 hardware-sensitivity workflow. A
// "port" to FMA-capable hardware (AVX2 enabled) fails the consistency
// test; the KGen kernel comparison flags the Morrison-Gettelman
// variables responsible; and the Table 1 study shows that disabling
// FMA on only the most central modules (by quotient-graph eigenvector
// centrality) restores statistical consistency, while disabling it on
// the largest or random modules does not. Both steps run on one
// Session, so the corpus, the ensemble fingerprint and the metagraph
// are shared between the experiment and the Table 1 study.
package main

import (
	"context"
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = 40

	session := rca.NewSession(ccfg,
		rca.WithEnsembleSize(30),
		rca.WithExpSize(8))

	fmt.Println("== AVX2 experiment (KGen flagging + refinement) ==")
	ctx := context.Background()
	out, err := session.Run(ctx, rca.AVX2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatOutcome(out))

	fmt.Println("\n== Table 1: selective AVX2 disablement ==")
	rows, err := session.Table1(ctx, rca.Table1Setup{
		ExpSize:       8,
		TopK:          8,
		RandomSamples: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatTable1(rows))
}
