// Quickstart: run one complete root-cause analysis with the public
// API. A coefficient typo is injected into the Goff-Gratch saturation
// vapor pressure function (the paper's §6.3 GOFFGRATCH experiment);
// the pipeline confirms the consistency-test failure, selects the
// affected output variables, slices the dependency graph, and refines
// to the defect.
package main

import (
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	setup := rca.Setup{
		Corpus:       rca.DefaultCorpus(),
		EnsembleSize: 30,
		ExpSize:      8,
	}
	setup.Corpus.AuxModules = 40 // keep the quickstart snappy

	out, err := rca.RunExperiment(rca.GOFFGRATCH, setup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatOutcome(out))

	if out.BugLocated {
		fmt.Println("\nThe refinement procedure reached the injected defect:")
		for _, d := range out.BugDisplays {
			fmt.Println("  ", d)
		}
	}
}
