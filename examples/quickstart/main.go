// Quickstart: run one complete root-cause analysis with the staged
// Session API. A coefficient typo is injected into the Goff-Gratch
// saturation vapor pressure function (the paper's §6.3 GOFFGRATCH
// experiment); the session confirms the consistency-test failure,
// selects the affected output variables, slices the dependency graph,
// and refines to the defect — each stage reusing the cached corpus
// and ensemble fingerprint. A second, user-defined scenario (a
// micro_mg ratio perturbation that is not in the paper's catalog)
// then runs through the same session and the same caches, showing the
// open Scenario API.
package main

import (
	"context"
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	ctx := context.Background()

	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = 40 // keep the quickstart snappy

	session := rca.NewSession(ccfg,
		rca.WithEnsembleSize(30),
		rca.WithExpSize(8))

	// Stage 0: the UF-ECT verdict that starts an investigation.
	v, err := session.Verdict(ctx, rca.GOFFGRATCH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UF-ECT failure rate: %.0f%% — investigating\n\n", 100*v.FailureRate)

	// The remaining stages compose; Run reuses the verdict above.
	out, err := session.Run(ctx, rca.GOFFGRATCH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatOutcome(out))

	if out.BugLocated {
		fmt.Println("\nThe refinement procedure reached the injected defect:")
		for _, d := range out.BugDisplays {
			fmt.Println("  ", d)
		}
	}

	// A custom scenario: perturb the Morrison-Gettelman ratio
	// assignment by 0.01% — a defect the prewired catalog does not
	// know. The same session caches serve it: the control build and
	// the ensemble fingerprint are reused as-is.
	inj, err := rca.ParseInjection("micro_mg_tend.ratio*=1.0001")
	if err != nil {
		log.Fatal(err)
	}
	custom := rca.NewScenario("MG-RATIO",
		rca.ScenarioOptions{CAMOnly: true, SelectK: 5}, inj)
	out2, err := session.Run(ctx, custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rca.FormatOutcome(out2))
}
