// Quickstart: run one complete root-cause analysis with the staged
// Session API. A coefficient typo is injected into the Goff-Gratch
// saturation vapor pressure function (the paper's §6.3 GOFFGRATCH
// experiment); the session confirms the consistency-test failure,
// selects the affected output variables, slices the dependency graph,
// and refines to the defect — each stage reusing the cached corpus
// and ensemble fingerprint.
package main

import (
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = 40 // keep the quickstart snappy

	session := rca.NewSession(ccfg,
		rca.WithEnsembleSize(30),
		rca.WithExpSize(8))

	// Stage 0: the UF-ECT verdict that starts an investigation.
	v, err := session.Verdict(rca.GOFFGRATCH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UF-ECT failure rate: %.0f%% — investigating\n\n", 100*v.FailureRate)

	// The remaining stages compose; Run reuses the verdict above.
	out, err := session.Run(rca.GOFFGRATCH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rca.FormatOutcome(out))

	if out.BugLocated {
		fmt.Println("\nThe refinement procedure reached the injected defect:")
		for _, d := range out.BugDisplays {
			fmt.Println("  ", d)
		}
	}
}
