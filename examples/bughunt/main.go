// Bughunt: walk every prewired experiment of the paper (§6 and the
// supplement) and report, for each, the consistency-test verdict,
// variable selection, slice size, and the Algorithm 5.4 refinement
// trace. This is the per-experiment narrative the paper's Figures 5-8
// and 12-14 illustrate, as text.
package main

import (
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	setup := rca.Setup{
		Corpus:       rca.DefaultCorpus(),
		EnsembleSize: 30,
		ExpSize:      8,
	}
	setup.Corpus.AuxModules = 40

	located := 0
	specs := rca.Experiments()
	for _, spec := range specs {
		out, err := rca.RunExperiment(spec, setup)
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		fmt.Println("================================================================")
		fmt.Print(rca.FormatOutcome(out))
		if out.BugLocated {
			located++
		}
	}
	fmt.Println("================================================================")
	fmt.Printf("located %d/%d injected defects\n", located, len(specs))
}
