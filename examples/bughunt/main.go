// Bughunt: walk every prewired experiment of the paper (§6 and the
// supplement) and report, for each, the consistency-test verdict,
// variable selection, slice size, and the Algorithm 5.4 refinement
// trace. One Session serves all eight investigations: the corpus is
// generated once, the 30-member ensemble fingerprint is computed once,
// and RunAll fans out concurrently over the shared cached state.
package main

import (
	"context"
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
)

func main() {
	ccfg := rca.DefaultCorpus()
	ccfg.AuxModules = 40

	session := rca.NewSession(ccfg,
		rca.WithEnsembleSize(30),
		rca.WithExpSize(8))

	specs := rca.AllExperiments()
	outs, err := session.RunAll(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}
	located := 0
	for _, out := range outs {
		fmt.Println("================================================================")
		fmt.Print(rca.FormatOutcome(out))
		if out.BugLocated {
			located++
		}
	}
	fmt.Println("================================================================")
	fmt.Printf("located %d/%d injected defects\n", located, len(specs))
}
