// Modulerank: build the full metagraph of the synthetic corpus via a
// Session, form the module quotient graph (the graph minor of §6.5),
// and print the modules ranked by eigenvector centrality — the
// ordering that drives the selective-FMA-disablement result. Also
// prints the digraph's degree distribution summary (Figure 4's
// power-law shape).
package main

import (
	"context"
	"fmt"
	"log"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/experiments"
)

func main() {
	session := rca.NewSession(rca.CorpusConfig{AuxModules: 100, Seed: 1})
	mg, err := session.FullMetagraph(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	st := mg.Stats()
	fmt.Printf("metagraph: %d modules, %d nodes, %d edges (unparsed: %d)\n",
		st.Modules, st.Nodes, st.Edges, st.Unparsed)

	points := experiments.DegreeDistribution(mg.G)
	fmt.Printf("degree distribution: %d distinct degrees, power-law exponent ~%.2f\n",
		len(points), experiments.PowerLawExponent(points))

	ranked := experiments.ModuleCentralityRanking(mg)
	fmt.Println("\nmodules by quotient-graph eigenvector centrality:")
	for i, m := range ranked {
		if i >= 20 {
			fmt.Printf("  ... (%d more)\n", len(ranked)-i)
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, m)
	}
}
