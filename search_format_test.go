package rca

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFormatSearchResultGolden pins the FormatSearchResult layout —
// the surface the CLI and the daemon's text field expose — against a
// golden file, exercising every branch: a conflicting candidate, an
// incumbent trace, a found best subset, and the pruning summary.
func TestFormatSearchResultGolden(t *testing.T) {
	pair := SearchSubset{
		IDs:  []string{"scale:micro_mg/micro_mg_tend.tlat*1.00015", "scale:micro_mg/micro_mg_tend.pre*1.0003"},
		Rate: 1,
	}
	res := &SearchResult{
		Objective: SearchMinFlip,
		Threshold: 0.5,
		MaxSubset: 4,
		BaseName:  "base",
		BaseRate:  0,
		Candidates: []SearchCandidate{
			{ID: "scale:micro_mg/micro_mg_tend.tlat*1.00015", Rate: 1.0 / 3, Delta: 1.0 / 3, Feasible: true},
			{ID: "scale:micro_mg/micro_mg_tend.pre*1.0003", Rate: 1.0 / 6, Delta: 1.0 / 6, Feasible: true},
			{ID: "scale:micro_mg/micro_mg_tend.pre*1.00025", Feasible: false},
		},
		Incumbents: []SearchIncumbentUpdate{
			{Wave: 0, By: "greedy", Subset: SearchSubset{
				IDs: []string{
					"scale:micro_mg/micro_mg_tend.tlat*1.00015",
					"scale:micro_mg/micro_mg_tend.pre*1.0003",
					"scale:micro_mg/micro_mg_tend.qric*1.0002",
				},
				Rate: 1,
			}},
			{Wave: 2, By: "search", Subset: pair},
		},
		Best: &pair,
		Stats: SearchStats{
			Evaluations: 11, Expanded: 11, Pruned: 4,
			Infeasible: 1, Waves: 2, Exhaustive: 64,
		},
	}
	golden(t, "format_search.golden", FormatSearchResult(res))

	// The none-found branch renders a stable line too.
	empty := &SearchResult{
		Objective: SearchMaxDelta, MaxSubset: 2, BaseName: "clean",
		Stats: SearchStats{Evaluations: 3, Exhaustive: 7, Waves: 1},
	}
	golden(t, "format_search_none.golden", FormatSearchResult(empty))
}

// FuzzSearchRequestJSON pins the search wire format's round-trip
// contract: any request that parses must re-serialize to a canonical
// form that parses again and re-serializes identically — the property
// the queue's content-addressed dedup ids depend on. And nothing may
// panic.
func FuzzSearchRequestJSON(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "search_*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no search request seeds in testdata/")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		`{"pool":["prng=mt"]}`,
		`{"objective":"rank","pool":["fma=all","param:turbcoef=0.02"]}`,
		`{"objective":"maxdelta","maxsubset":2,"pool":["a.b*=1.5","a.c*=0.5"]}`,
		`{"objective":"minflip","threshold":0.75,"base":{"experiment":"WSUBBUG"},"pool":["prng=mt"]}`,
		`{"pool":[{"kind":"scale","module":"m","subprogram":"s","var":"v","factor":2}]}`,
		`{"pool":[{"kind":"replace","subprogram":"s","var":"v","old":"a","new":"b"}]}`,
		`{"threshold":1e-9,"pool":["a.b*=NaN"]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := SearchRequestFromJSON(data)
		if err != nil {
			return // malformed input is allowed to fail, not panic
		}
		out, err := SearchRequestToJSON(req)
		if err != nil {
			t.Fatalf("round-trip serialize failed for %q: %v", data, err)
		}
		req2, err := SearchRequestFromJSON(out)
		if err != nil {
			t.Fatalf("re-parse of serialized form %q failed: %v", out, err)
		}
		out2, err := SearchRequestToJSON(req2)
		if err != nil {
			t.Fatalf("re-serialize of %q failed: %v", out, err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical form unstable:\nin:   %q\nout:  %q\nout2: %q", data, out, out2)
		}
		if req2.Objective != req.Objective || req2.Threshold != req.Threshold ||
			req2.MaxSubset != req.MaxSubset || len(req2.Pool) != len(req.Pool) {
			t.Fatalf("request knobs changed across round-trip: %q -> %q", data, out)
		}
		for i := range req.Pool {
			if req2.Pool[i].ID() != req.Pool[i].ID() {
				t.Fatalf("pool[%d] id changed across round-trip: %q -> %q",
					i, req.Pool[i].ID(), req2.Pool[i].ID())
			}
		}
	})
}
