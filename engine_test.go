package rca

import (
	"context"
	"testing"
)

// equivSession builds a small-corpus session on the given engine with
// an aggressive parallel fan-out, so the equivalence holds under
// concurrent scheduling too (run with -race in CI).
func equivSession(engine EngineKind) *Session {
	return NewSession(CorpusConfig{AuxModules: 16, Seed: 4},
		WithEnsembleSize(14), WithExpSize(5),
		WithParallelism(8), WithWorkers(4),
		WithEngine(engine))
}

// TestEnginesBitIdenticalAcrossCatalog is the deterministic-equivalence
// pin for the execution engines: Session.RunAll over the full §6 + §8
// scenario catalog must produce byte-identical FormatOutcome renderings
// on the bytecode VM and the tree walker. The paper's verdicts depend
// on exact floating-point semantics (FMA fusion, PRNG sequences,
// evaluation order), so nothing short of byte equality is acceptable.
func TestEnginesBitIdenticalAcrossCatalog(t *testing.T) {
	ctx := context.Background()
	scs := AllExperiments()

	tree, err := equivSession(EngineTree).RunAll(ctx, scs)
	if err != nil {
		t.Fatalf("tree engine: %v", err)
	}
	vm, err := equivSession(EngineBytecode).RunAll(ctx, scs)
	if err != nil {
		t.Fatalf("bytecode engine: %v", err)
	}
	if len(tree) != len(vm) {
		t.Fatalf("outcome counts differ: %d vs %d", len(tree), len(vm))
	}
	for i := range tree {
		to, vo := FormatOutcome(tree[i]), FormatOutcome(vm[i])
		if to != vo {
			t.Errorf("%s: FormatOutcome bytes differ\n--- tree ---\n%s--- bytecode ---\n%s",
				scs[i].Name(), to, vo)
		}
	}
}

// TestEnginesTable1Identical extends the pin to the selective-FMA
// study: FormatTable1 bytes must match across engines.
func TestEnginesTable1Identical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	setup := Table1Setup{ExpSize: 3, TopK: 4, RandomSamples: 2}

	rowsTree, err := equivSession(EngineTree).Table1(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	rowsVM, err := equivSession(EngineBytecode).Table1(ctx, setup)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable1(rowsTree) != FormatTable1(rowsVM) {
		t.Fatalf("Table1 bytes differ:\n--- tree ---\n%s--- bytecode ---\n%s",
			FormatTable1(rowsTree), FormatTable1(rowsVM))
	}
}
