module github.com/climate-rca/rca

go 1.22
