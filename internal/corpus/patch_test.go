package corpus

import (
	"errors"
	"strings"
	"testing"
)

// TestBugPatchEquivalence pins the patch engine to the legacy enum: for
// every injectable Bug, generating the corpus with the bug baked in and
// patching the clean corpus must produce byte-identical source trees —
// the property that lets scenario cache keys subsume the Bug enum.
func TestBugPatchEquivalence(t *testing.T) {
	cfg := Config{AuxModules: 20, Seed: 3}
	clean := Generate(cfg)
	for _, b := range []Bug{BugWsub, BugGoffGratch, BugDyn3, BugRandomIdx, BugLand} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			p, ok := BugPatch(b)
			if !ok {
				t.Fatalf("no patch for %v", b)
			}
			patched, err := Apply(clean, p)
			if err != nil {
				t.Fatal(err)
			}
			bugCfg := cfg
			bugCfg.Bug = b
			legacy := Generate(bugCfg)
			if got, want := patched.Fingerprint(), legacy.Fingerprint(); got != want {
				for i := range legacy.Files {
					if legacy.Files[i].Source != patched.Files[i].Source {
						t.Errorf("file %s differs", legacy.Files[i].Name)
					}
				}
				t.Fatalf("fingerprint %s != legacy %s", got, want)
			}
			// The clean corpus was not mutated.
			if clean.Fingerprint() != Generate(cfg).Fingerprint() {
				t.Fatal("Apply mutated its input corpus")
			}
		})
	}
}

func TestApplyUnknownTargets(t *testing.T) {
	c := Generate(Config{AuxModules: 5, Seed: 1})
	cases := []Patch{
		ReplaceInAssign{Subprogram: "no_such_sub", Var: "x", Old: "1", New: "2"},
		ReplaceInAssign{Module: "no_such_mod", Subprogram: "aero_run", Var: "wsub", Old: "0.20", New: "2.00"},
		ReplaceInAssign{Subprogram: "aero_run", Var: "no_such_var", Old: "0.20", New: "2.00"},
		ScaleAssign{Subprogram: "aero_run", Var: "wsub", Occurrence: 3, Factor: 2},
	}
	for _, p := range cases {
		if _, err := Apply(c, p); !errors.Is(err, ErrUnknownSubprogram) {
			t.Errorf("%s: err = %v, want ErrUnknownSubprogram", p.ID(), err)
		}
	}
	// Old text absent from the located assignment is a bad patch, not
	// an unknown target.
	if _, err := Apply(c, ReplaceInAssign{Subprogram: "aero_run", Var: "wsub",
		Old: "9.99", New: "1.0"}); !errors.Is(err, ErrBadPatch) {
		t.Errorf("absent old text: err = %v, want ErrBadPatch", err)
	}
}

func TestScaleAssignRewritesAndParses(t *testing.T) {
	c := Generate(Config{AuxModules: 5, Seed: 1})
	patched, err := Apply(c, ScaleAssign{Module: "micro_mg", Subprogram: "micro_mg_tend",
		Var: "ratio", Factor: 1.0001})
	if err != nil {
		t.Fatal(err)
	}
	var src string
	for _, f := range patched.Files {
		if f.Name == "micro_mg.F90" {
			src = f.Source
		}
	}
	want := "ratio = (qniic / max(1.0e-12, qric + qniic)) * 1.0001"
	if !strings.Contains(src, want) {
		t.Fatalf("patched micro_mg missing %q", want)
	}
	if _, err := patched.Parse(); err != nil {
		t.Fatal(err)
	}
	// Deterministic: applying the same patch twice from scratch gives
	// the same fingerprint, distinct from the clean corpus.
	again, err := Apply(c, ScaleAssign{Module: "micro_mg", Subprogram: "micro_mg_tend",
		Var: "ratio", Factor: 1.0001})
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint() != patched.Fingerprint() {
		t.Fatal("patch application not deterministic")
	}
	if patched.Fingerprint() == c.Fingerprint() {
		t.Fatal("patch did not change the fingerprint")
	}
}

// TestPatchesCompose applies two independent defects; both edits must
// land and the tree must still parse.
func TestPatchesCompose(t *testing.T) {
	c := Generate(Config{AuxModules: 5, Seed: 1})
	p1, _ := BugPatch(BugWsub)
	p2, _ := BugPatch(BugGoffGratch)
	patched, err := Apply(c, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, f := range patched.Files {
		joined += f.Source
	}
	for _, want := range []string{"max(2.00, tke * 0.5)", "8.1828e-3"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("composed patches missing %q", want)
		}
	}
	if _, err := patched.Parse(); err != nil {
		t.Fatal(err)
	}
}

func TestOccurrenceSelectsLaterAssignment(t *testing.T) {
	c := Generate(Config{AuxModules: 5, Seed: 1})
	// dum is assigned several times in micro_mg_tend; occurrence 1 is
	// the second assignment.
	patched, err := Apply(c, ScaleAssign{Subprogram: "micro_mg_tend", Var: "dum",
		Occurrence: 1, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	var src string
	for _, f := range patched.Files {
		if f.Name == "micro_mg.F90" {
			src = f.Source
		}
	}
	if !strings.Contains(src, "dum = (qric * 0.3 + ccn * 1.0e-4) * 2.0") {
		t.Fatalf("occurrence patch landed wrong:\n%s", src)
	}
}
