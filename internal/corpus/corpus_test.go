package corpus

import (
	"strings"
	"testing"

	"github.com/climate-rca/rca/internal/metagraph"
)

func TestGenerateParses(t *testing.T) {
	c := Generate(Config{AuxModules: 30, Seed: 3})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != len(c.Files) {
		t.Fatalf("modules %d != files %d", len(mods), len(c.Files))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{AuxModules: 20, Seed: 9})
	b := Generate(Config{AuxModules: 20, Seed: 9})
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Source != b.Files[i].Source {
			t.Fatalf("file %s not deterministic", a.Files[i].Name)
		}
	}
	c := Generate(Config{AuxModules: 20, Seed: 10})
	same := true
	for i := range a.Files {
		if a.Files[i].Source != c.Files[i].Source {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCoreModulesPresent(t *testing.T) {
	c := Generate(Config{AuxModules: 10})
	mods := map[string]bool{}
	for _, m := range c.Modules() {
		mods[m] = true
	}
	for _, want := range []string{
		"shr_kind_mod", "physconst", "ref_pres", "physics_types",
		"chaos_turb", "wv_saturation", "microp_aero", "micro_mg",
		"cldfrc", "cloud_rand_lw", "cloud_rand_sw", "dyn3", "cam_diag",
		"lnd_snow", "cam_driver",
	} {
		if !mods[want] {
			t.Fatalf("core module %s missing", want)
		}
	}
}

func TestBugInjectionChangesSource(t *testing.T) {
	find := func(c *Corpus, file string) string {
		for _, f := range c.Files {
			if f.Name == file {
				return f.Source
			}
		}
		t.Fatalf("file %s missing", file)
		return ""
	}
	clean := Generate(Config{AuxModules: 5})
	if !strings.Contains(find(clean, "microp_aero.F90"), "max(0.20") {
		t.Fatal("clean wsub floor missing")
	}
	ws := Generate(Config{AuxModules: 5, Bug: BugWsub})
	if !strings.Contains(find(ws, "microp_aero.F90"), "max(2.00") {
		t.Fatal("WSUBBUG not injected")
	}
	gg := Generate(Config{AuxModules: 5, Bug: BugGoffGratch})
	if !strings.Contains(find(gg, "wv_saturation.F90"), "8.1828e-3") {
		t.Fatal("GOFFGRATCH not injected")
	}
	if strings.Contains(find(clean, "wv_saturation.F90"), "8.1828e-3") {
		t.Fatal("clean corpus contains GOFFGRATCH bug")
	}
	d3 := Generate(Config{AuxModules: 5, Bug: BugDyn3})
	if !strings.Contains(find(d3, "dyn3.F90"), "pref * 0.505") {
		t.Fatal("DYN3BUG not injected")
	}
	ri := Generate(Config{AuxModules: 5, Bug: BugRandomIdx})
	if !strings.Contains(find(ri, "dyn3.F90"), ", 2) - state%u") {
		t.Fatal("RANDOMBUG not injected")
	}
}

func TestBugString(t *testing.T) {
	for b, want := range map[Bug]string{
		BugNone: "NONE", BugWsub: "WSUBBUG", BugGoffGratch: "GOFFGRATCH",
		BugDyn3: "DYN3BUG", BugRandomIdx: "RANDOMBUG",
	} {
		if b.String() != want {
			t.Fatalf("%d = %q", b, b.String())
		}
	}
}

func TestMetagraphBuildsFromCorpus(t *testing.T) {
	c := Generate(Config{AuxModules: 40, Seed: 2})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	st := mg.Stats()
	if st.Nodes < 300 {
		t.Fatalf("suspiciously small graph: %+v", st)
	}
	if st.Unparsed != 0 {
		t.Fatalf("unparsed statements: %d", st.Unparsed)
	}
	// The paper's key names must exist.
	for _, disp := range []string{"dum__micro_mg_tend", "ratio__micro_mg_tend",
		"tlat__micro_mg_tend", "nctend__micro_mg_tend"} {
		if len(mg.ByDisplay(disp)) != 1 {
			t.Fatalf("display node %s missing", disp)
		}
	}
	if len(mg.ByCanonical("wsub")) == 0 || len(mg.ByCanonical("omega")) == 0 {
		t.Fatal("canonical lookups missing")
	}
	// Output map recovered from outfld calls.
	if mg.OutputMap["FLDS"] != "flwds" || mg.OutputMap["WSUB"] != "wsub" {
		t.Fatalf("OutputMap = %v", mg.OutputMap)
	}
}

func TestComponentTags(t *testing.T) {
	c := Generate(Config{AuxModules: 30, Seed: 1})
	if !c.IsCAM("micro_mg") || !c.IsCAM("dyn3") {
		t.Fatal("core CAM modules not tagged cam")
	}
	if c.IsCAM("lnd_snow") || c.IsCAM("physconst") {
		t.Fatal("non-CAM modules tagged cam")
	}
}

func TestLinesOf(t *testing.T) {
	c := Generate(Config{AuxModules: 30, Seed: 1})
	lines := c.LinesOf()
	if lines["micro_mg"] < 30 {
		t.Fatalf("micro_mg lines = %d", lines["micro_mg"])
	}
	// Some aux module should be longer than micro_mg (padding), so
	// "largest by LoC" differs from "most central".
	foundLong := false
	for m, n := range lines {
		if strings.HasPrefix(m, "aux_phys_") && n > lines["micro_mg"] {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatal("no padded aux module exceeds micro_mg size")
	}
}

func TestWsubNearIsolated(t *testing.T) {
	// The WSUBBUG sanity check (§6.1) depends on wsub having a tiny
	// ancestor closure.
	c := Generate(Config{AuxModules: 40, Seed: 2})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	wsub := mg.ByCanonical("wsub")
	if len(wsub) == 0 {
		t.Fatal("no wsub nodes")
	}
	anc := mg.G.Ancestors(wsub)
	if len(anc) > 25 {
		t.Fatalf("wsub ancestor closure too large: %d nodes", len(anc))
	}
	if len(anc) < 4 {
		t.Fatalf("wsub ancestor closure trivially small: %d", len(anc))
	}
}

func TestDeadModulesNotInDriver(t *testing.T) {
	c := Generate(Config{AuxModules: 20, Seed: 1})
	var driver string
	for _, f := range c.Files {
		if f.Name == "cam_driver.F90" {
			driver = f.Source
		}
	}
	if strings.Contains(driver, "aux_dead_") {
		t.Fatal("driver references dead modules")
	}
	found := false
	for _, f := range c.Files {
		if strings.HasPrefix(f.Name, "aux_dead_") {
			found = true
		}
	}
	if !found {
		t.Fatal("no dead modules generated")
	}
}
