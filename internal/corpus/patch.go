package corpus

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"github.com/climate-rca/rca/internal/fortran"
)

// This file is the patch engine that opens the closed Bug enum into
// arbitrary user-composable source defects: a Patch is a small edit to
// one assignment statement of one named subprogram, located through
// the FortLite AST (so the target must actually parse as an
// assignment) and applied to the raw source text (so the rest of the
// file stays byte-identical). Apply validates every patched file by
// re-parsing it; a patch can therefore never produce a corpus the
// interpreter and the metagraph compiler disagree on.

// Patch target lookup errors.
var (
	// ErrUnknownSubprogram reports a patch that names a module,
	// subprogram or assignment the corpus does not contain.
	ErrUnknownSubprogram = errors.New("corpus: unknown subprogram")
	// ErrBadPatch reports a patch whose edit could not be applied (the
	// old text is absent, or the rewritten line no longer parses).
	ErrBadPatch = errors.New("corpus: bad patch")
)

// Patch is one source-level edit over a named corpus subprogram. The
// two concrete kinds are ReplaceInAssign (substring replacement inside
// an assignment statement) and ScaleAssign (multiply an assignment's
// right-hand side by a factor). ID is a stable fingerprint used as a
// build cache key by the experiments layer.
type Patch interface {
	// ID is the patch's stable fingerprint: equal IDs produce
	// byte-identical patched sources.
	ID() string
	// target names the assignment the patch edits.
	target() patchTarget
	// rewrite edits the assignment's source line.
	rewrite(line string) (string, error)
}

// patchTarget locates one assignment statement: the Occurrence'th
// assignment to Var in Subprogram (module optional — subprogram names
// are unique in the corpus).
type patchTarget struct {
	Module     string
	Subprogram string
	Var        string
	Occurrence int
}

func (t patchTarget) String() string {
	name := t.Subprogram + "." + t.Var
	if t.Module != "" {
		name = t.Module + "/" + name
	}
	if t.Occurrence > 0 {
		name = fmt.Sprintf("%s#%d", name, t.Occurrence)
	}
	return name
}

// ReplaceInAssign replaces the first occurrence of Old with New inside
// the targeted assignment statement — the shape of every §6 source
// defect (a transposed digit, a wrong coefficient, an off-by-one
// index).
type ReplaceInAssign struct {
	Module     string // optional; "" searches every module
	Subprogram string
	Var        string // assignment LHS (canonical name)
	Occurrence int    // 0 = first assignment to Var
	Old, New   string
}

// ID is the patch fingerprint.
func (p ReplaceInAssign) ID() string {
	return "patch:" + p.target().String() + ":" + p.Old + "=>" + p.New
}

func (p ReplaceInAssign) target() patchTarget {
	return patchTarget{Module: p.Module, Subprogram: p.Subprogram, Var: p.Var, Occurrence: p.Occurrence}
}

func (p ReplaceInAssign) rewrite(line string) (string, error) {
	if p.Old == "" || !strings.Contains(line, p.Old) {
		return "", fmt.Errorf("%w: %s: %q not found in %q", ErrBadPatch, p.target(), p.Old, strings.TrimSpace(line))
	}
	return strings.Replace(line, p.Old, p.New, 1), nil
}

// ScaleAssign multiplies the targeted assignment's right-hand side by
// Factor — the ensemble-parameter-perturbation defect family (e.g.
// micro_mg_tend.ratio *= 1.0001).
type ScaleAssign struct {
	Module     string
	Subprogram string
	Var        string
	Occurrence int
	Factor     float64
}

// ID is the patch fingerprint.
func (p ScaleAssign) ID() string {
	return "scale:" + p.target().String() + "*" + FormatFactor(p.Factor)
}

func (p ScaleAssign) target() patchTarget {
	return patchTarget{Module: p.Module, Subprogram: p.Subprogram, Var: p.Var, Occurrence: p.Occurrence}
}

func (p ScaleAssign) rewrite(line string) (string, error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return "", fmt.Errorf("%w: %s: no assignment on line %q", ErrBadPatch, p.target(), strings.TrimSpace(line))
	}
	rhs := strings.TrimSpace(line[eq+1:])
	if rhs == "" {
		return "", fmt.Errorf("%w: %s: empty right-hand side", ErrBadPatch, p.target())
	}
	return line[:eq+1] + " (" + rhs + ") * " + FormatFactor(p.Factor), nil
}

// FormatFactor renders a scale factor as a FortLite numeric literal.
func FormatFactor(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".e") {
		s += ".0" // FortLite literals are real-typed
	}
	return s
}

// Apply returns a copy of the corpus with the patches applied in
// order. The original corpus is not modified; patches on the same file
// compose. Each edited file is re-parsed for validation, so the
// returned corpus always lexes, parses and interprets.
func Apply(c *Corpus, patches ...Patch) (*Corpus, error) {
	out := &Corpus{
		Files:            append([]File(nil), c.Files...),
		cfg:              c.cfg,
		DriverModule:     c.DriverModule,
		InitSub:          c.InitSub,
		StepSub:          c.StepSub,
		OutputToInternal: c.OutputToInternal,
		ComponentOf:      c.ComponentOf,
		AuxCalled:        c.AuxCalled,
	}
	for _, p := range patches {
		if err := applyOne(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// applyOne locates the patch target through the AST and edits the
// file in place (out.Files entries are value copies).
func applyOne(c *Corpus, p Patch) error {
	t := p.target()
	fi := -1
	var sub *fortran.Subprogram
	for i := range c.Files {
		modName := strings.TrimSuffix(c.Files[i].Name, ".F90")
		if t.Module != "" && modName != strings.ToLower(t.Module) {
			continue
		}
		mods, err := fortran.ParseFile(c.Files[i].Source)
		if err != nil {
			return fmt.Errorf("corpus: %s: %w", c.Files[i].Name, err)
		}
		for _, m := range mods {
			for _, s := range m.Subprograms {
				if s.Name == strings.ToLower(t.Subprogram) {
					fi, sub = i, s
					break
				}
			}
		}
		if fi >= 0 || t.Module != "" {
			break
		}
	}
	if fi < 0 || sub == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSubprogram, t)
	}

	// The Occurrence'th assignment whose LHS canonical name is Var.
	line, count := 0, 0
	fortran.WalkStmts(sub.Body, func(s fortran.Stmt) {
		as, ok := s.(*fortran.AssignStmt)
		if !ok || as.LHS.Canonical() != strings.ToLower(t.Var) {
			return
		}
		if count == t.Occurrence {
			line = as.Line
		}
		count++
	})
	if line == 0 {
		return fmt.Errorf("%w: %s: no assignment to %q (found %d)",
			ErrUnknownSubprogram, t, t.Var, count)
	}

	lines := strings.Split(c.Files[fi].Source, "\n")
	if line > len(lines) {
		return fmt.Errorf("%w: %s: line %d out of range", ErrBadPatch, t, line)
	}
	edited, err := p.rewrite(lines[line-1])
	if err != nil {
		return err
	}
	lines[line-1] = edited
	src := strings.Join(lines, "\n")
	if _, err := fortran.ParseFile(src); err != nil {
		return fmt.Errorf("%w: %s: patched source no longer parses: %v", ErrBadPatch, t, err)
	}
	c.Files[fi].Source = src
	return nil
}

// BugPatch maps a legacy Bug enum value onto the equivalent source
// patch over the clean corpus. Generate(cfg with Bug=b) and
// Apply(Generate(clean cfg), patch) produce byte-identical source
// trees — pinned by TestBugPatchEquivalence.
func BugPatch(b Bug) (Patch, bool) {
	switch b {
	case BugWsub:
		return ReplaceInAssign{Module: "microp_aero", Subprogram: "aero_run",
			Var: "wsub", Old: "0.20", New: "2.00"}, true
	case BugGoffGratch:
		return ReplaceInAssign{Module: "wv_saturation", Subprogram: "goffgratch_svp",
			Var: "e2", Old: "8.1328e-3", New: "8.1828e-3"}, true
	case BugDyn3:
		return ReplaceInAssign{Module: "dyn3", Subprogram: "dyn3_hydro",
			Var: "pint", Old: "pref * 0.5", New: "pref * 0.505"}, true
	case BugRandomIdx:
		return ReplaceInAssign{Module: "dyn3", Subprogram: "dyn3_hydro",
			Var: "omg_tmp", Old: "shift(state%u, 1)", New: "shift(state%u, 2)"}, true
	case BugLand:
		return ReplaceInAssign{Module: "lnd_snow", Subprogram: "lnd_run",
			Var: "snowhland", Old: "snowhland * 0.98", New: "snowhland * 0.90"}, true
	}
	return nil, false
}

// Fingerprint is a stable hash of the full source tree (file names and
// contents, in order). Corpora with equal fingerprints are
// byte-identical, so they compile to the same metagraph and interpret
// to the same trajectories.
func (c *Corpus) Fingerprint() string {
	h := fnv.New64a()
	for _, f := range c.Files {
		h.Write([]byte(f.Name))
		h.Write([]byte{0})
		h.Write([]byte(f.Source))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
