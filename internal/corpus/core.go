package corpus

import "fmt"

// This file holds the hand-modeled core of the synthetic model: the
// modules the paper's experiments name. Constants that experiments
// mutate (bug sites, FMA gains) are injected via fmt.Sprintf.

func (c *Corpus) addCore() {
	cfg := c.cfg

	c.add("shr_kind_mod.F90", "share", true, `
module shr_kind_mod
  real, parameter :: shr_kind_r8 = 8.0
end module shr_kind_mod
`)

	c.add("physconst.F90", "share", true, `
module physconst
  use shr_kind_mod, only: r8 => shr_kind_r8
  real, parameter :: gravit = 9.80616
  real, parameter :: rair = 287.04
  real, parameter :: cpair = 1004.64
  real, parameter :: latvap = 2501000.0
  real, parameter :: tmelt = 273.15
  real, parameter :: epsqs = 0.622
  real, parameter :: stebol = 5.67e-8
end module physconst
`)

	c.add("ref_pres.F90", "cam", true, `
module ref_pres
  real :: pref(:), pdel(:), hyai(:), hybi(:)
contains
  subroutine ref_pres_init()
    integer :: i
    do i = 1, size(pref)
      pref(i) = 100000.0 - 2200.0 * i
      pdel(i) = 2200.0
      hyai(i) = 0.001 * i
      hybi(i) = 1.0 - 0.0125 * i
    end do
  end subroutine ref_pres_init
end module ref_pres
`)

	c.add("physics_types.F90", "cam", true, `
module physics_types
  type physstate
    real :: t(:)
    real :: u(:)
    real :: v(:)
    real :: omega(:)
    real :: ps(:)
    real :: q(:)
    real :: z3(:)
  end type physstate
  type(physstate) :: state
end module physics_types
`)

	// The internal-variability engine: a logistic-map field seeded by
	// temperature deviations. This is what turns O(1e-9) initial
	// perturbations into a usable ensemble spread by step 9.
	c.add("chaos_turb.F90", "cam", true, fmt.Sprintf(`
module chaos_turb
  use physics_types
  real :: chi(:), turb(:)
  real, parameter :: turbcoef = %.6g
contains
  subroutine turb_init()
    chi = (state%%t - 200.0) * 0.004
    chi = max(0.05, min(0.95, chi))
    turb = 0.0
  end subroutine turb_init
  subroutine turb_tend()
    real :: tbar
    integer :: k
    tbar = sum(state%%t) / size(state%%t)
    chi = chi + (state%%t - tbar) * 1.0e-6
    chi = max(0.02, min(0.98, chi))
    do k = 1, 4
      chi = 3.97 * chi * (1.0 - chi)
    end do
    turb = (chi - 0.6) * 0.5 + shift(chi, 1) * 0.05
    state%%t = state%%t + turb * turbcoef
    state%%u = state%%u + turb * (turbcoef * 0.5)
    state%%v = state%%v + shift(turb, 2) * (turbcoef * 0.3)
  end subroutine turb_tend
end module chaos_turb
`, cfg.TurbCoef))

	// Goff-Gratch saturation vapor pressure; the 8.1328e-3 coefficient
	// is the GOFFGRATCH bug site.
	ggCoef := "8.1328e-3"
	if cfg.Bug == BugGoffGratch {
		ggCoef = "8.1828e-3"
	}
	c.add("wv_saturation.F90", "cam", true, fmt.Sprintf(`
module wv_saturation
  use physconst
  interface svp
    module procedure goffgratch_svp, svp_ice
  end interface
contains
  elemental function goffgratch_svp(tt) result(es)
    real, intent(in) :: tt
    real :: es
    real :: e1, e2
    e1 = 10.79574 * (1.0 - 373.16 / tt)
    e2 = %s * (10.0 ** (-(3.49149 * (373.16 / tt - 1.0))) - 1.0)
    es = 1013.246 * 10.0 ** (e1 - e2)
  end function goffgratch_svp
  elemental function svp_ice(tt) result(es)
    real, intent(in) :: tt
    real :: es
    es = goffgratch_svp(tt) * 0.92
  end function svp_ice
end module wv_saturation
`, ggCoef))

	// microp_aero: wsub is deliberately near-isolated (paper §6.1) —
	// its only stochastic input is the harness-perturbed wpert field.
	wsubFloor := "0.20"
	if cfg.Bug == BugWsub {
		wsubFloor = "2.00" // the transposed-digits typo
	}
	c.add("microp_aero.F90", "cam", true, fmt.Sprintf(`
module microp_aero
  use ref_pres
  real :: wsub(:), ccn(:), kvh(:), wpert(:)
contains
  subroutine aero_init()
    kvh = pref * 4.0e-6
    wpert = 0.0
    ccn = 0.0
  end subroutine aero_init
  subroutine aero_run()
    real :: tke(:)
    tke = kvh * 0.6 + wpert + 0.35
    wsub = max(%s, tke * 0.5)
    call outfld('WSUB', wsub)
    ccn = 20.0 + kvh * 60.0 + wpert * 5.0
    call outfld('CCN3', ccn)
  end subroutine aero_run
end module microp_aero
`, wsubFloor))

	// micro_mg: the Morrison-Gettelman-style microphysics kernel with
	// the paper's variable cast. The pk/fsens pair is the
	// deterministic near-cancellation that makes FMA rounding visible
	// (§6.4): 1000003*0.999997 = 999999.999991 exactly in real
	// arithmetic, so pk is pure rounding residue whose value depends
	// on whether the multiply-add is fused.
	c.add("micro_mg.F90", "cam", true, fmt.Sprintf(`
module micro_mg
  use physconst
  use ref_pres
  use physics_types
  use wv_saturation
  use microp_aero, only: ccn
  real :: qsout2(:), nsout2(:), freqs(:), snowl(:)
  real, parameter :: pfac = 0.999997
  real, parameter :: pnegoff = -999999.999991
  real, parameter :: fmagain = %.6g
contains
  subroutine micro_mg_tend()
    real :: es(:), qvs(:), ssat(:), rho(:), dum(:), ratio(:), tlat(:)
    real :: qniic(:), nric(:), nsic(:), qctend(:), qric(:), qitend(:)
    real :: prds(:), pre(:), nctend(:), qvlat(:), mnuccc(:), nitend(:)
    real :: nsagg(:), qsout(:)
    real :: pk, fsens
    es = goffgratch_svp(state%%t)
    qvs = epsqs * es / (pref * 0.001 - es * 0.378)
    qvs = max(1.0e-8, qvs)
    ssat = state%%q / qvs - 0.5
    rho = pref / (rair * state%%t)
    pk = 1000003.0 * pfac + pnegoff
    fsens = pk * fmagain
    dum = max(0.0, ssat) * 0.02
    qric = dum * rho * 0.5 + 0.001
    dum = qric * 0.3 + ccn * 1.0e-4
    nric = dum * 12.0
    dum = nric * 0.05 + qric * 0.2
    qniic = dum * 0.7
    nsic = qniic * 3.0 + dum * 0.1
    pre = (qric * 0.8 + dum * 0.1) * 0.01 + fsens
    prds = qniic * 0.02 + pre * 0.3
    mnuccc = dum * 0.004 + prds * 0.1
    nsagg = nsic * 0.01 + mnuccc * 0.5
    ratio = qniic / max(1.0e-12, qric + qniic)
    dum = ratio * pre + prds * 0.5
    qctend = -(dum * 0.8) - mnuccc
    qitend = dum * 0.3 + mnuccc - nsagg * 0.01
    qvlat = -(pre + prds) - dum * 0.05
    tlat = (pre + prds) * 0.02 + fsens
    nctend = -(nric * 0.001) - dum * 0.02
    nitend = mnuccc * 2.0 - nsagg + dum * 0.01
    qsout = qniic * 0.9 + dum * 0.05
    qsout2 = qsout * 0.98
    nsout2 = nsic * 0.9
    freqs = min(1.0, max(0.0, qsout * 50.0))
    snowl = qsout * 0.5
    state%%t = state%%t + tlat
    state%%q = state%%q + qvlat * 1.0e-4
    call outfld('AQSNOW', qsout2)
    call outfld('ANSNOW', nsout2)
    call outfld('FREQS', freqs)
    call outfld('PRECSL', snowl)
  end subroutine micro_mg_tend
end module micro_mg
`, cfg.FMAGain))

	// Cloud fraction: relative humidity + turbulence.
	c.add("cldfrc.F90", "cam", true, `
module cldfrc
  use physconst
  use ref_pres
  use physics_types
  use wv_saturation
  use chaos_turb
  real :: cld(:), cllow(:), clmed(:), clhgh(:), cltot(:)
contains
  subroutine cldfrc_run()
    real :: es(:), qvs(:), rh(:)
    es = goffgratch_svp(state%t)
    qvs = max(1.0e-8, epsqs * es / (pref * 0.001 - es * 0.378))
    rh = state%q / qvs
    cld = min(0.95, max(0.05, rh * 1.1 + turb * 0.2))
    cllow = min(1.0, cld * 1.1)
    clmed = cld * 0.9 + shift(cld, 1) * 0.05
    clhgh = cld * 0.5 + shift(cld, 2) * 0.1
    cltot = min(0.99, cllow * 0.4 + clmed * 0.3 + clhgh * 0.3)
    call outfld('CLOUD', cld)
    call outfld('CLDLOW', cllow)
    call outfld('CLDMED', clmed)
    call outfld('CLDHGH', clhgh)
    call outfld('CLDTOT', cltot)
  end subroutine cldfrc_run
end module cldfrc
`)

	// Longwave radiation with PRNG-sampled cloud overlap (RAND-MT bug
	// location 1).
	c.add("cloud_rand_lw.F90", "cam", true, `
module cloud_rand_lw
  use physconst
  use physics_types
  use cldfrc
  real :: flwds(:), flns(:), qrl(:), rnum_lw(:)
contains
  subroutine radlw_run()
    real :: ovrlp(:)
    call random_number(rnum_lw)
    ovrlp = cld * (0.7 + 0.3 * rnum_lw)
    flwds = stebol * state%t ** 4.0 * (0.62 + 0.25 * ovrlp)
    flns = stebol * state%t ** 4.0 * 0.22 - flwds * 0.15
    qrl = -(flns * 0.008) - ovrlp * 0.05
    state%t = state%t + qrl * 0.001
    call outfld('FLDS', flwds)
    call outfld('FLNS', flns)
    call outfld('QRL', qrl)
  end subroutine radlw_run
end module cloud_rand_lw
`)

	// Shortwave radiation with its own PRNG draw (RAND-MT location 2).
	c.add("cloud_rand_sw.F90", "cam", true, `
module cloud_rand_sw
  use physconst
  use physics_types
  use cldfrc
  real :: fsds(:), qrs(:), rnum_sw(:)
contains
  subroutine radsw_run()
    real :: trans(:)
    call random_number(rnum_sw)
    trans = 1.0 - cld * (0.45 + 0.25 * rnum_sw)
    fsds = 340.0 * trans
    qrs = fsds * 0.0022
    state%t = state%t + qrs * 0.001
    call outfld('FSDS', fsds)
    call outfld('QRS', qrs)
  end subroutine radsw_run
end module cloud_rand_sw
`)

	// dyn3: the hydrostatic-pressure dynamics kernel (DYN3BUG and
	// RANDOMBUG sites).
	pintCoef := "0.5"
	if cfg.Bug == BugDyn3 {
		pintCoef = "0.505"
	}
	shiftIdx := "1"
	if cfg.Bug == BugRandomIdx {
		shiftIdx = "2" // the array-index error feeding state%omega
	}
	c.add("dyn3.F90", "cam", true, fmt.Sprintf(`
module dyn3
  use physconst
  use ref_pres
  use physics_types
  real :: omegat(:), pint(:), omg_tmp(:)
contains
  subroutine dyn3_hydro()
    real :: pgf(:), zfac(:)
    pint = state%%ps * 0.001 + pref * %s
    zfac = rair * state%%t / (gravit * pint) * 100.0
    state%%z3 = zfac * 70.0 + shift(zfac, 1) * 5.0
    pgf = (shift(pint, 1) - pint) * 0.0004
    state%%u = state%%u * 0.98 + pgf + 0.1
    state%%v = state%%v * 0.98 - pgf * 0.8
    omg_tmp = (shift(state%%u, %s) - state%%u) * pint * 0.00002
    state%%omega = omg_tmp * 0.6 + state%%omega * 0.4
    omegat = state%%omega * state%%t
    state%%t = state%%t + state%%omega * 0.0005
    state%%ps = state%%ps + (sum(state%%u) / size(state%%u)) * 0.01
    call outfld('OMEGAT', omegat)
  end subroutine dyn3_hydro
end module dyn3
`, pintCoef, shiftIdx))

	// Surface/diagnostic fields.
	c.add("cam_diag.F90", "cam", true, `
module cam_diag
  use physconst
  use physics_types
  use dyn3
  real :: tref(:), u10(:), shf(:), wsx(:)
contains
  subroutine diag_run()
    tref = state%t * 0.96 + 9.5
    u10 = state%u * 0.8 + state%v * 0.1
    shf = (state%t - (state%t * 0.97 + 8.0)) * 12.0
    wsx = -(state%u * 0.018)
    call outfld('TREFHT', tref)
    call outfld('U10', u10)
    call outfld('SHFLX', shf)
    call outfld('TAUX', wsx)
    call outfld('T', state%t)
    call outfld('PS', state%ps)
    call outfld('U', state%u)
    call outfld('V', state%v)
    call outfld('OMEGA', state%omega)
    call outfld('Z3', state%z3)
  end subroutine diag_run
end module cam_diag
`)

	// Land component: snow accumulation (the snowhland internal in
	// Table 2). The retention coefficient is the LANDBUG site.
	retain := "0.98"
	if cfg.Bug == BugLand {
		retain = "0.90"
	}
	c.add("lnd_snow.F90", "lnd", true, fmt.Sprintf(`
module lnd_snow
  use physconst
  use physics_types
  use micro_mg
  real :: snowhland(:), soilw(:)
contains
  subroutine lnd_init()
    snowhland = 120.0
    soilw = 0.3
  end subroutine lnd_init
  subroutine lnd_run()
    snowhland = snowhland * %s + snowl * 0.5 + max(0.0, tmelt - state%%t) * 0.0001
    soilw = soilw * 0.99 + snowl * 0.01
    call outfld('SNOWHLND', snowhland)
    call outfld('SOILW', soilw)
  end subroutine lnd_run
end module lnd_snow
`, retain))

	// Feedback coupler: a fraction of auxiliary parameterizations
	// accumulate a tendency that feeds temperature, so their whole
	// upstream chains become ancestors of the core outputs and the
	// induced slices grow with corpus scale (as the paper's do).
	c.add("aux_coupler.F90", "cam", true, `
module aux_coupler
  use physics_types
  real :: auxten(:)
contains
  subroutine coupler_init()
    auxten = 0.0
  end subroutine coupler_init
  subroutine coupler_apply()
    state%t = state%t + auxten * 1.0e-4
    auxten = 0.0
  end subroutine coupler_apply
end module aux_coupler
`)

	// Ground truth for the output→internal mapping (Table 2 columns).
	for lbl, internal := range map[string]string{
		"WSUB": "wsub", "CCN3": "ccn", "AQSNOW": "qsout2",
		"ANSNOW": "nsout2", "FREQS": "freqs", "PRECSL": "snowl",
		"CLOUD": "cld", "CLDLOW": "cllow", "CLDMED": "clmed",
		"CLDHGH": "clhgh", "CLDTOT": "cltot", "FLDS": "flwds",
		"FLNS": "flns", "QRL": "qrl", "FSDS": "fsds", "QRS": "qrs",
		"OMEGAT": "omegat", "TREFHT": "tref", "U10": "u10",
		"SHFLX": "shf", "TAUX": "wsx", "T": "t", "PS": "ps", "U": "u",
		"V": "v", "OMEGA": "omega", "Z3": "z3",
		"SNOWHLND": "snowhland", "SOILW": "soilw",
	} {
		c.OutputToInternal[lbl] = internal
	}
}
