package corpus

import (
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/binenc"
)

// corpusCodecVersion is bumped on any change to the encoding below;
// the artifact store then treats older blobs as misses.
const corpusCodecVersion uint32 = 1

// Encode serializes the corpus — files, manifest and generation
// configuration — to the deterministic artifact format: same corpus,
// same bytes, including across an Encode/Decode round trip.
func (c *Corpus) Encode() ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("corpus: encode nil corpus")
	}
	w := binenc.NewWriter(1 << 16)
	w.U32(corpusCodecVersion)

	w.Len(len(c.Files))
	for _, f := range c.Files {
		w.String(f.Name)
		w.String(f.Source)
		w.String(f.Component)
		w.Bool(f.Core)
	}

	w.Int(c.cfg.AuxModules)
	w.Int(c.cfg.AuxVars)
	w.U64(c.cfg.Seed)
	w.Int(int(c.cfg.Bug))
	w.F64(c.cfg.FMAGain)
	w.F64(c.cfg.AuxFMAGain)
	w.F64(c.cfg.TurbCoef)
	w.Int(c.cfg.UnusedModules)
	w.Int(c.cfg.UnusedSubprogramPct)

	w.String(c.DriverModule)
	w.String(c.InitSub)
	w.String(c.StepSub)

	writeStringMap(w, c.OutputToInternal)
	writeStringMap(w, c.ComponentOf)

	w.Len(len(c.AuxCalled))
	for _, m := range c.AuxCalled {
		w.String(m)
	}
	return w.Bytes(), nil
}

// Decode reconstructs a corpus from Encode bytes. The result behaves
// identically to the generated original — Parse still shares modules
// through the process-wide parse cache by source text.
func Decode(data []byte) (*Corpus, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != corpusCodecVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("corpus: codec version %d, want %d", v, corpusCodecVersion)
	}
	c := &Corpus{}
	c.Files = make([]File, r.Len())
	for i := range c.Files {
		c.Files[i] = File{
			Name:      r.String(),
			Source:    r.String(),
			Component: r.String(),
			Core:      r.Bool(),
		}
	}

	c.cfg.AuxModules = r.Int()
	c.cfg.AuxVars = r.Int()
	c.cfg.Seed = r.U64()
	c.cfg.Bug = Bug(r.Int())
	c.cfg.FMAGain = r.F64()
	c.cfg.AuxFMAGain = r.F64()
	c.cfg.TurbCoef = r.F64()
	c.cfg.UnusedModules = r.Int()
	c.cfg.UnusedSubprogramPct = r.Int()

	c.DriverModule = r.String()
	c.InitSub = r.String()
	c.StepSub = r.String()

	c.OutputToInternal = readStringMap(r)
	c.ComponentOf = readStringMap(r)

	c.AuxCalled = make([]string, r.Len())
	for i := range c.AuxCalled {
		c.AuxCalled[i] = r.String()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func writeStringMap(w *binenc.Writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Len(len(keys))
	for _, k := range keys {
		w.String(k)
		w.String(m[k])
	}
}

func readStringMap(r *binenc.Reader) map[string]string {
	n := r.Len()
	m := make(map[string]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		m[k] = r.String()
	}
	return m
}
