package corpus

import (
	"fmt"
	"strings"
)

// addAux generates the auxiliary module population: many small-to-large
// peripheral physics/diagnostic modules with preferential-attachment
// imports (hub structure → power-law-ish degree distribution, Figure
// 4), weak FMA-sensitive kernels (distributed AVX2 sensitivity, §6.5),
// occasional outfld diagnostics, never-called subprograms (coverage
// fodder at the subprogram level), and a population of dead modules
// the driver never references (coverage fodder at the module level).
func (c *Corpus) addAux() {
	cfg := c.cfg
	r := c.auxRand()

	for i := 0; i < cfg.AuxModules; i++ {
		name := fmt.Sprintf("aux_phys_%03d", i)
		var b strings.Builder
		fmt.Fprintf(&b, "module %s\n", name)
		b.WriteString("  use physconst\n  use ref_pres\n  use physics_types\n")
		useTurb := r.Intn(3) == 0
		if useTurb {
			b.WriteString("  use chaos_turb\n")
		}
		coupled := r.Intn(7) == 0
		if coupled {
			b.WriteString("  use aux_coupler\n")
		}
		// Preferential attachment: earlier aux modules are imported
		// with probability weighted toward small indices, creating
		// hubs.
		var upstream []string
		if i > 0 {
			nUp := 1 + r.Intn(2)
			for u := 0; u < nUp; u++ {
				// Square the uniform variate to bias toward 0.
				f := r.Float64()
				idx := int(f * f * float64(i))
				if idx >= i {
					idx = i - 1
				}
				up := fmt.Sprintf("aux_phys_%03d", idx)
				dup := false
				for _, s := range upstream {
					if s == up {
						dup = true
					}
				}
				if !dup {
					upstream = append(upstream, up)
				}
			}
			for _, up := range upstream {
				idx := up[len(up)-3:]
				fmt.Fprintf(&b, "  use %s, only: a0_%s\n", up, idx)
			}
		}
		nv := 3 + r.Intn(cfg.AuxVars)
		// Long modules get extra padding variables so "largest by
		// lines of code" diverges from "most central" (Table 1): in
		// CESM too, the biggest files are not the information hubs.
		long := r.Intn(3) == 0
		pad := 0
		if long {
			pad = cfg.AuxVars * 8
		}
		var names []string
		for v := 0; v < nv+pad; v++ {
			names = append(names, fmt.Sprintf("a%d_%03d", v, i))
		}
		fmt.Fprintf(&b, "  real :: %s(:)", names[0])
		for _, n := range names[1:] {
			fmt.Fprintf(&b, ", %s(:)", n)
		}
		b.WriteString("\n")
		sign := 1.0
		if r.Intn(2) == 0 {
			sign = -1.0
		}
		gain := cfg.AuxFMAGain * (0.5 + r.Float64()) * sign
		fmt.Fprintf(&b, "  real, parameter :: fgain_%03d = %.8g\n", i, gain)
		b.WriteString("contains\n")

		// init: deterministic fields from the pressure profile.
		fmt.Fprintf(&b, "  subroutine aux_init_%03d()\n", i)
		for v, n := range names {
			fmt.Fprintf(&b, "    %s = pref * %.6g\n", n, 1e-5*(1+float64(v%7)))
		}
		fmt.Fprintf(&b, "  end subroutine aux_init_%03d\n", i)

		// run: chained updates reading state and upstream hubs.
		fmt.Fprintf(&b, "  subroutine aux_run_%03d()\n", i)
		fmt.Fprintf(&b, "    real :: pk_%03d, fs_%03d\n", i, i)
		fmt.Fprintf(&b, "    pk_%03d = 1000003.0 * 0.999997 + (-999999.999991)\n", i)
		fmt.Fprintf(&b, "    fs_%03d = pk_%03d * fgain_%03d\n", i, i, i)
		fmt.Fprintf(&b, "    %s = state%%t * %.6g + %s * 0.92 + fs_%03d\n",
			names[0], 0.02*(1+r.Float64()), names[0], i)
		if useTurb {
			fmt.Fprintf(&b, "    %s = %s + turb * %.6g\n", names[0], names[0], 0.01*r.Float64())
		}
		for _, up := range upstream {
			idx := up[len(up)-3:]
			fmt.Fprintf(&b, "    %s = %s + a0_%s * %.6g\n", names[0], names[0], idx, 0.05*r.Float64())
		}
		for v := 1; v < nv; v++ {
			fmt.Fprintf(&b, "    %s = %s * %.6g + shift(%s, 1) * %.6g\n",
				names[v], names[v-1], 0.3+0.5*r.Float64(), names[v-1], 0.02*r.Float64())
		}
		// Padding statements for long modules (peripheral busywork).
		for v := nv; v < nv+pad; v++ {
			fmt.Fprintf(&b, "    %s = %s * 0.999 + pref * 1.0e-9\n", names[v], names[v])
		}
		if coupled {
			fmt.Fprintf(&b, "    auxten = auxten + %s * 0.001\n", names[nv-1])
		}
		if r.Intn(8) == 0 {
			fmt.Fprintf(&b, "    call outfld('AUX%03d', %s)\n", i, names[nv-1])
			c.OutputToInternal[fmt.Sprintf("AUX%03d", i)] = names[nv-1]
		}
		fmt.Fprintf(&b, "  end subroutine aux_run_%03d\n", i)

		// Never-called subprogram: removed by the coverage filter.
		if r.Intn(100) < cfg.UnusedSubprogramPct {
			fmt.Fprintf(&b, "  subroutine aux_unused_%03d()\n", i)
			fmt.Fprintf(&b, "    %s = %s * 1.0001 + 0.0001\n", names[0], names[0])
			fmt.Fprintf(&b, "  end subroutine aux_unused_%03d\n", i)
		}
		fmt.Fprintf(&b, "end module %s\n", name)
		comp := "cam"
		if r.Intn(10) == 0 {
			comp = "lnd"
		}
		c.add(name+".F90", comp, false, b.String())
		c.AuxCalled = append(c.AuxCalled, name)
	}

	// Dead modules: present in the source tree, never referenced — the
	// modules KGen/coverage eliminate before parsing (paper §4.1).
	for i := 0; i < cfg.UnusedModules; i++ {
		name := fmt.Sprintf("aux_dead_%03d", i)
		src := fmt.Sprintf(`
module %s
  use ref_pres
  real :: d0_%03d(:), d1_%03d(:)
contains
  subroutine dead_run_%03d()
    d0_%03d = pref * 1.0e-6
    d1_%03d = d0_%03d * 2.0
  end subroutine dead_run_%03d
end module %s
`, name, i, i, i, i, i, i, i, name)
		c.add(name+".F90", "cam", false, src)
	}
}

// addDriver emits cam_driver, which initializes every live module and
// advances one model step per call (the tphysbc-style call sequence).
func (c *Corpus) addDriver() {
	var b strings.Builder
	b.WriteString("module cam_driver\n")
	for _, m := range []string{
		"physconst", "ref_pres", "physics_types", "chaos_turb",
		"wv_saturation", "microp_aero", "micro_mg", "cldfrc",
		"cloud_rand_lw", "cloud_rand_sw", "dyn3", "cam_diag", "lnd_snow",
		"aux_coupler",
	} {
		fmt.Fprintf(&b, "  use %s\n", m)
	}
	for _, m := range c.AuxCalled {
		fmt.Fprintf(&b, "  use %s\n", m)
	}
	b.WriteString("  real :: nstep\n")
	b.WriteString("contains\n")
	b.WriteString(`  subroutine cam_init()
    integer :: i
    call ref_pres_init()
    do i = 1, size(pref)
      state%t(i) = 288.0 - 1.2 * i
      state%u(i) = 5.0 + 0.4 * i
      state%v(i) = 2.0 - 0.2 * i
      state%ps(i) = 101325.0 - 10.0 * i
      state%omega(i) = 0.01 * i
      state%z3(i) = 1500.0 + 100.0 * i
    end do
    state%q = epsqs * goffgratch_svp(state%t) / (pref * 0.001) * 0.8
    call turb_init()
    call aero_init()
    call lnd_init()
    call coupler_init()
`)
	for _, m := range c.AuxCalled {
		fmt.Fprintf(&b, "    call aux_init_%s()\n", m[len(m)-3:])
	}
	b.WriteString("    nstep = 0.0\n")
	b.WriteString("  end subroutine cam_init\n")
	b.WriteString(`  subroutine cam_step()
    nstep = nstep + 1.0
    call dyn3_hydro()
    call turb_tend()
    call aero_run()
    call micro_mg_tend()
    call cldfrc_run()
    call radlw_run()
    call radsw_run()
`)
	for _, m := range c.AuxCalled {
		fmt.Fprintf(&b, "    call aux_run_%s()\n", m[len(m)-3:])
	}
	b.WriteString("    call coupler_apply()\n    call lnd_run()\n    call diag_run()\n")
	b.WriteString("  end subroutine cam_step\n")
	b.WriteString("end module cam_driver\n")
	c.add("cam_driver.F90", "cam", true, b.String())
}
