// Package corpus synthesizes the CESM-like FortLite source tree the
// reproduction runs on. It stands in for the ~660k coverage-filtered
// lines of CAM/CESM Fortran (paper §4): a compact, hand-modeled core —
// with the paper's actual module and variable names (microp_aero's
// wsub, micro_mg_tend's dum/ratio/tlat/nctend/..., the Goff-Gratch
// saturation vapor pressure function, the dyn3 hydrostatic kernel, the
// PRNG-driven longwave/shortwave cloud modules) — surrounded by a
// configurable number of generated auxiliary physics/diagnostic/land
// modules wired into a hub-heavy dependency structure so the digraph's
// degree distribution is power-law-ish (Figure 4).
//
// The generator is deterministic: the same Config yields byte-identical
// source, so the metagraph and the interpreter always agree.
package corpus

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/rng"
)

// Bug selects a source-level defect to inject (experiments §6). The
// RAND-MT and AVX2 experiments are configuration changes, not source
// edits, and are controlled at the harness level instead.
type Bug int

// Injectable bugs.
const (
	BugNone Bug = iota
	// BugWsub transposes 0.20 to 2.00 in microp_aero's wsub assignment
	// (§6.1 WSUBBUG).
	BugWsub
	// BugGoffGratch changes the water-boiling-temperature coefficient
	// 8.1328e-3 to 8.1828e-3 in the Goff-Gratch elemental function
	// (§6.3 GOFFGRATCH).
	BugGoffGratch
	// BugDyn3 perturbs a coefficient in the dyn3 hydrostatic pressure
	// subroutine (§8.2.2 DYN3BUG).
	BugDyn3
	// BugRandomIdx simulates the RANDOMBUG array-index error in the
	// assignment of the derived-type state variable omega (§8.2.1): the
	// neighbour-coupling shift index is off by one.
	BugRandomIdx
	// BugLand perturbs the land model's snow retention coefficient —
	// the paper notes bugs in the land module were also located
	// successfully (§6).
	BugLand
)

// String names the bug for reports.
func (b Bug) String() string {
	switch b {
	case BugNone:
		return "NONE"
	case BugWsub:
		return "WSUBBUG"
	case BugGoffGratch:
		return "GOFFGRATCH"
	case BugDyn3:
		return "DYN3BUG"
	case BugRandomIdx:
		return "RANDOMBUG"
	case BugLand:
		return "LANDBUG"
	}
	return fmt.Sprintf("Bug(%d)", int(b))
}

// Config sizes and parameterizes the corpus.
type Config struct {
	// AuxModules is the number of generated auxiliary modules (beyond
	// the ~15 hand-modeled core modules). The paper's quotient graph
	// has 561 modules; Default() uses a CI-friendly size and benches
	// scale up.
	AuxModules int
	// VarsPerAux is the mean number of variables per auxiliary module.
	AuxVars int
	// Seed drives the deterministic structure generator.
	Seed uint64
	// Bug is the injected source defect.
	Bug Bug
	// FMAGain scales the fused-multiply-add-sensitive kernel in
	// micro_mg_tend (the deterministic cancellation path that makes
	// FMA statistically visible, §6.4). Zero selects the default.
	FMAGain float64
	// AuxFMAGain scales the weak FMA-sensitive kernels distributed in
	// auxiliary modules. Zero selects the default.
	AuxFMAGain float64
	// TurbCoef couples the chaotic internal-variability field into the
	// temperature tendency (sets the ensemble spread). Zero selects
	// the default.
	TurbCoef float64
	// UnusedModules adds modules that are never called by the driver
	// (grist for the coverage filter). Defaults to AuxModules/4.
	UnusedModules int
	// UnusedSubprograms adds never-called subprograms to auxiliary
	// modules (the subprogram-level coverage reduction). Expressed
	// per-module probability in percent [0,100]. Default 40.
	UnusedSubprogramPct int
}

// Default returns the CI-sized configuration.
func Default() Config {
	return Config{AuxModules: 100, AuxVars: 10, Seed: 1}
}

// PaperScale returns a corpus sized like the paper's quotient graph
// (561 modules).
func PaperScale() Config {
	return Config{AuxModules: 540, AuxVars: 12, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.AuxModules <= 0 {
		c.AuxModules = 100
	}
	if c.AuxVars <= 0 {
		c.AuxVars = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FMAGain == 0 {
		c.FMAGain = 3000.0
	}
	if c.AuxFMAGain == 0 {
		c.AuxFMAGain = 0.01
	}
	if c.TurbCoef == 0 {
		c.TurbCoef = 0.01
	}
	if c.UnusedModules == 0 {
		c.UnusedModules = c.AuxModules / 4
	}
	if c.UnusedSubprogramPct == 0 {
		c.UnusedSubprogramPct = 40
	}
	return c
}

// File is one synthesized source file.
type File struct {
	Name   string // e.g. "micro_mg.F90"
	Source string
	// Component tags the model component ("cam", "lnd", "share") for
	// the CAM-restriction filter the paper applies in §6.
	Component string
	// Core marks hand-modeled core modules (compact but central).
	Core bool
}

// Corpus is the generated source tree plus its manifest.
type Corpus struct {
	Files []File
	cfg   Config
	// DriverModule / StepSub / InitSub name the model entry points.
	DriverModule string
	InitSub      string
	StepSub      string
	// OutputToInternal maps outfld labels to internal canonical names
	// (ground truth for Table 2; the metagraph re-derives it).
	OutputToInternal map[string]string
	// ComponentOf maps module name to component.
	ComponentOf map[string]string
	// AuxCalled lists auxiliary modules actually invoked by the driver.
	AuxCalled []string
}

// Generate synthesizes the corpus for a configuration.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	c := &Corpus{
		cfg:              cfg,
		DriverModule:     "cam_driver",
		InitSub:          "cam_init",
		StepSub:          "cam_step",
		OutputToInternal: make(map[string]string),
		ComponentOf:      make(map[string]string),
	}
	c.addCore()
	c.addAux()
	c.addDriver()
	return c
}

// Config returns the (defaulted) generation configuration.
func (c *Corpus) Config() Config { return c.cfg }

func (c *Corpus) add(name, component string, core bool, src string) {
	modName := strings.TrimSuffix(name, ".F90")
	c.Files = append(c.Files, File{Name: name, Source: src, Component: component, Core: core})
	c.ComponentOf[modName] = component
}

// parseCache memoizes per-file parses by exact source text. Patched
// corpora differ from the clean build in one file, so the other ~hundred
// parse once per process instead of once per source fingerprint; parsed
// modules are immutable (every consumer — metagraph, coverage, both
// execution engines — reads the AST only), so sharing them is safe.
// The cache is capped, not evicted: corpus files are generated from a
// bounded configuration space.
var (
	parseCache     sync.Map // source string → []*fortran.Module
	parseCacheSize atomic.Int64
)

const parseCacheMax = 8192

func parseFileCached(src string) ([]*fortran.Module, error) {
	if v, ok := parseCache.Load(src); ok {
		return v.([]*fortran.Module), nil
	}
	ms, err := fortran.ParseFile(src)
	if err != nil {
		return nil, err
	}
	if parseCacheSize.Load() < parseCacheMax {
		if v, loaded := parseCache.LoadOrStore(src, ms); loaded {
			// A concurrent first parse won the race: return its modules
			// so identical sources always share pointer identity.
			return v.([]*fortran.Module), nil
		}
		parseCacheSize.Add(1)
	}
	return ms, nil
}

// Parse parses every file into FortLite modules, in generation order
// (which is a valid use-dependency order). Per-file results are shared
// through a process-wide content-addressed cache.
func (c *Corpus) Parse() ([]*fortran.Module, error) {
	var mods []*fortran.Module
	for _, f := range c.Files {
		ms, err := parseFileCached(f.Source)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", f.Name, err)
		}
		mods = append(mods, ms...)
	}
	return mods, nil
}

// Modules returns the module names in generation order.
func (c *Corpus) Modules() []string {
	out := make([]string, 0, len(c.Files))
	for _, f := range c.Files {
		out = append(out, strings.TrimSuffix(f.Name, ".F90"))
	}
	return out
}

// LinesOf returns the line count per module (the "largest modules by
// lines of code" ranking in Table 1).
func (c *Corpus) LinesOf() map[string]int {
	out := make(map[string]int, len(c.Files))
	for _, f := range c.Files {
		out[strings.TrimSuffix(f.Name, ".F90")] = strings.Count(f.Source, "\n")
	}
	return out
}

// IsCAM reports whether a module belongs to the atmosphere component.
func (c *Corpus) IsCAM(module string) bool {
	return c.ComponentOf[module] == "cam"
}

// auxRand builds the deterministic structure generator.
func (c *Corpus) auxRand() *rng.LCG { return rng.NewLCG(c.cfg.Seed) }
