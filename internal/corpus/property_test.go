package corpus

import (
	"testing"

	"github.com/climate-rca/rca/internal/metagraph"
)

// TestManySeedsParseAndCompile is the generator's robustness property:
// every seed must yield a corpus that parses completely and compiles
// into a metagraph with zero unparsed statements.
func TestManySeedsParseAndCompile(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		c := Generate(Config{AuxModules: 25, Seed: seed})
		mods, err := c.Parse()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mg, err := metagraph.Build(mods)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if mg.Unparsed != 0 {
			t.Fatalf("seed %d: %d unparsed statements", seed, mg.Unparsed)
		}
	}
}

// TestBugInjectionPreservesStructure: every bug variant must parse and
// produce a graph with the same node count as the clean corpus (bugs
// are value changes, not structural ones — except RANDOMBUG's shift
// index, which is also value-level in the graph).
func TestBugInjectionPreservesStructure(t *testing.T) {
	base := Config{AuxModules: 25, Seed: 3}
	clean := nodeCount(t, base)
	for _, bug := range []Bug{BugWsub, BugGoffGratch, BugDyn3, BugRandomIdx} {
		cfg := base
		cfg.Bug = bug
		if got := nodeCount(t, cfg); got != clean {
			t.Fatalf("%v changed node count: %d vs %d", bug, got, clean)
		}
	}
}

func nodeCount(t *testing.T, cfg Config) int {
	t.Helper()
	c := Generate(cfg)
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	return mg.G.NumNodes()
}

// TestScaleGrowsGraph: more aux modules mean a larger digraph,
// approximately linearly.
func TestScaleGrowsGraph(t *testing.T) {
	small := nodeCount(t, Config{AuxModules: 20, Seed: 5})
	big := nodeCount(t, Config{AuxModules: 80, Seed: 5})
	if big < 2*small {
		t.Fatalf("graph did not scale: %d -> %d", small, big)
	}
}

// TestPaperScaleCorpus compiles the 561-module-scale corpus (gated
// behind -short for CI friendliness).
func TestPaperScaleCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus is slow")
	}
	c := Generate(PaperScale())
	if got := len(c.Modules()); got < 550 {
		t.Fatalf("modules = %d; want ~561", got)
	}
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	st := mg.Stats()
	if st.Nodes < 5000 {
		t.Fatalf("paper-scale graph too small: %+v", st)
	}
	if st.Unparsed != 0 {
		t.Fatalf("unparsed: %d", st.Unparsed)
	}
	// The quotient graph should have one node per module, like the
	// paper's 561-node module digraph.
	part, names := mg.ModulePartition()
	q := mg.G.Quotient(part, len(names))
	if q.NumNodes() != len(c.Modules()) {
		t.Fatalf("quotient nodes = %d; modules = %d", q.NumNodes(), len(c.Modules()))
	}
}
