package ect

import (
	"fmt"
	"math/rand"
	"testing"
)

// makeEnsemble builds n correlated runs over d variables with natural
// variability sigma around per-variable baselines.
func makeEnsemble(rng *rand.Rand, n, d int, sigma float64) []RunOutput {
	base := make([]float64, d)
	for j := range base {
		base[j] = 100 * float64(j+1)
	}
	out := make([]RunOutput, n)
	for i := 0; i < n; i++ {
		r := make(RunOutput, d)
		shared := rng.NormFloat64() // common mode, makes PCA non-trivial
		for j := 0; j < d; j++ {
			r[fmt.Sprintf("v%02d", j)] = base[j] + sigma*(shared+0.5*rng.NormFloat64())
		}
		out[i] = r
	}
	return out
}

func TestNewTestRejectsTinyEnsembles(t *testing.T) {
	if _, err := NewTest([]RunOutput{{"a": 1}, {"a": 2}}, Config{}); err == nil {
		t.Fatal("2-member ensemble accepted")
	}
}

func TestNewTestRejectsNoCommonVars(t *testing.T) {
	ens := []RunOutput{{"a": 1}, {"b": 2}, {"c": 3}}
	if _, err := NewTest(ens, Config{}); err == nil {
		t.Fatal("disjoint variables accepted")
	}
}

func TestEnsembleMembersPass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ens := makeEnsemble(rng, 40, 8, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for _, r := range ens {
		if !test.Evaluate(r).Pass {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/40 ensemble members fail their own test", fails)
	}
}

func TestFreshConsistentRunsPass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ens := makeEnsemble(rng, 60, 8, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := makeEnsemble(rng, 30, 8, 0.01)
	rate := test.FailureRate(fresh)
	if rate > 0.2 {
		t.Fatalf("false-positive rate = %v", rate)
	}
}

func TestShiftedRunsFail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ens := makeEnsemble(rng, 60, 8, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Shift several variables by many sigma: a "bug".
	bad := makeEnsemble(rng, 20, 8, 0.01)
	for _, r := range bad {
		r["v00"] += 1.0
		r["v03"] += 0.5
		r["v05"] -= 0.7
	}
	rate := test.FailureRate(bad)
	if rate < 0.9 {
		t.Fatalf("bug failure rate = %v; want >= 0.9", rate)
	}
}

func TestVerdictReportsFailingPCs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ens := makeEnsemble(rng, 50, 6, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := makeEnsemble(rng, 1, 6, 0.01)[0]
	for k := range run {
		run[k] += 5
	}
	v := test.Evaluate(run)
	if v.Pass {
		t.Fatal("grossly shifted run passed")
	}
	if len(v.FailingPCs) < test.cfg.FailPCs {
		t.Fatalf("failing PCs = %v", v.FailingPCs)
	}
	if len(v.Scores) == 0 {
		t.Fatal("scores missing")
	}
}

func TestEvaluateMissingVariableNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ens := makeEnsemble(rng, 50, 6, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := makeEnsemble(rng, 1, 6, 0.01)[0]
	delete(run, "v02")
	// Missing variable should not by itself cause a wild verdict.
	v := test.Evaluate(run)
	if !v.Pass {
		t.Fatalf("run with one missing variable failed: %+v", v)
	}
}

func TestFailureRateEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ens := makeEnsemble(rng, 10, 4, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rate := test.FailureRate(nil); rate != 0 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestVarsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ens := makeEnsemble(rng, 10, 5, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vars := test.Vars()
	if len(vars) != 5 {
		t.Fatalf("vars = %v", vars)
	}
	for i := 1; i < len(vars); i++ {
		if vars[i-1] >= vars[i] {
			t.Fatalf("vars unsorted: %v", vars)
		}
	}
}
