package ect

import (
	"math"
	"sort"
)

// Contribution measures how much one output variable contributes to a
// set of experimental runs' consistency failures — the quantity the
// paper's earlier manual investigation computed per CAM variable to
// find the most-affected outputs (§6.4's "measuring each CAM output
// variable's contribution to the CAM-ECT failure rate").
type Contribution struct {
	Variable string
	// MeanAbsZ is the mean |standardized deviation| of the variable
	// across the runs (ensemble mean/std standardization).
	MeanAbsZ float64
	// DropPassRate is the fraction of previously failing runs that
	// pass when the variable is neutralized to its ensemble mean — a
	// knock-out measure of the variable's share of the failure.
	DropPassRate float64
}

// VariableContributions ranks variables by their role in the failures
// of runs. Only runs that fail the test contribute; if none fail, the
// result is nil.
func (t *Test) VariableContributions(runs []RunOutput) []Contribution {
	var failing []RunOutput
	for _, r := range runs {
		if !t.Evaluate(r).Pass {
			failing = append(failing, r)
		}
	}
	if len(failing) == 0 {
		return nil
	}
	out := make([]Contribution, 0, len(t.vars))
	for j, v := range t.vars {
		var sumZ float64
		passes := 0
		for _, r := range failing {
			if val, ok := r[v]; ok {
				z := (val - t.model.Mean[j]) / t.model.Std[j]
				sumZ += math.Abs(z)
			}
			// Knock-out: replace the variable with its ensemble mean.
			patched := make(RunOutput, len(r))
			for k, x := range r {
				patched[k] = x
			}
			patched[v] = t.model.Mean[j]
			if t.Evaluate(patched).Pass {
				passes++
			}
		}
		out = append(out, Contribution{
			Variable:     v,
			MeanAbsZ:     sumZ / float64(len(failing)),
			DropPassRate: float64(passes) / float64(len(failing)),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].DropPassRate != out[b].DropPassRate {
			return out[a].DropPassRate > out[b].DropPassRate
		}
		if out[a].MeanAbsZ != out[b].MeanAbsZ {
			return out[a].MeanAbsZ > out[b].MeanAbsZ
		}
		return out[a].Variable < out[b].Variable
	})
	return out
}
