package ect

import (
	"math/rand"
	"testing"
)

func TestVariableContributionsIdentifiesDriver(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ens := makeEnsemble(rng, 50, 6, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Shift only v02 far out of distribution.
	bad := makeEnsemble(rng, 10, 6, 0.01)
	for _, r := range bad {
		r["v02"] += 3.0
	}
	contrib := test.VariableContributions(bad)
	if len(contrib) != 6 {
		t.Fatalf("contributions = %d", len(contrib))
	}
	if contrib[0].Variable != "v02" {
		t.Fatalf("top contributor = %+v", contrib[0])
	}
	// Knocking out the driver should rescue most failing runs.
	if contrib[0].DropPassRate < 0.8 {
		t.Fatalf("knock-out pass rate = %v", contrib[0].DropPassRate)
	}
	// Its standardized deviation dwarfs the others'.
	if contrib[0].MeanAbsZ < 5 {
		t.Fatalf("driver |z| = %v", contrib[0].MeanAbsZ)
	}
}

func TestVariableContributionsNilWhenAllPass(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ens := makeEnsemble(rng, 50, 5, 0.01)
	test, err := NewTest(ens, Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := makeEnsemble(rng, 5, 5, 0.01)
	if c := test.VariableContributions(good); c != nil {
		t.Fatalf("contributions for passing runs: %+v", c)
	}
}
