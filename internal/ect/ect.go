// Package ect implements an ultra-fast ensemble consistency test in the
// style of UF-CAM-ECT (Milroy et al. 2018; Baker et al. 2015), the tool
// whose Fail verdict starts the paper's root cause analysis.
//
// The test fits a PCA to the standardized global means of the output
// variables across an accepted ensemble, derives per-component score
// intervals from the ensemble itself, and fails an experimental run when
// more than FailPCs retained principal-component scores fall outside
// their intervals.
package ect

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/climate-rca/rca/internal/pca"
)

// RunOutput is one simulation's outputs: variable name → global mean.
type RunOutput map[string]float64

// Config tunes the consistency test.
type Config struct {
	// Keep is the number of principal components retained. <=0 keeps
	// min(numVars, (ensembleSize-1)/2): trailing components of a
	// small-ensemble PCA are noise directions whose variance is
	// wildly underestimated, so retaining them inflates the
	// false-positive rate (pyCECT similarly retains 50 PCs from
	// ensembles an order of magnitude larger).
	Keep int
	// EigvalFloor drops retained components whose eigenvalue is below
	// this fraction of the leading eigenvalue (default 1e-8) — they
	// represent roundoff-level directions.
	EigvalFloor float64
	// SigmaMult is the half-width of the per-PC acceptance interval in
	// ensemble score standard deviations. Default 3.29 (two-sided 99.9%
	// under normality), close to pyCECT practice.
	SigmaMult float64
	// FailPCs is the number of out-of-interval PC scores needed to fail
	// a run. Default 3 (UF-CAM-ECT fails at >= 3 failing PCs).
	FailPCs int
}

func (c Config) withDefaults() Config {
	if c.SigmaMult <= 0 {
		c.SigmaMult = 3.29
	}
	if c.FailPCs <= 0 {
		c.FailPCs = 3
	}
	if c.EigvalFloor <= 0 {
		c.EigvalFloor = 1e-8
	}
	return c
}

// Test is a fitted consistency test.
type Test struct {
	cfg      Config
	vars     []string // sorted variable names defining matrix columns
	model    *pca.Model
	scoreMu  []float64 // per-PC ensemble score mean
	scoreSd  []float64 // per-PC ensemble score std
	ensemble [][]float64
}

// Vars returns the ordered variable list the test scores against.
func (t *Test) Vars() []string { return t.vars }

// NewTest fits the consistency test to an accepted ensemble. All runs
// must provide the same variable set; variables missing from any run are
// dropped (with at least one variable required).
func NewTest(ensemble []RunOutput, cfg Config) (*Test, error) {
	cfg = cfg.withDefaults()
	if len(ensemble) < 3 {
		return nil, errors.New("ect: need at least 3 ensemble members")
	}
	// Intersect variable sets for robustness.
	counts := make(map[string]int)
	for _, r := range ensemble {
		for v := range r {
			counts[v]++
		}
	}
	var vars []string
	for v, c := range counts {
		if c == len(ensemble) {
			vars = append(vars, v)
		}
	}
	if len(vars) == 0 {
		return nil, errors.New("ect: no common variables across ensemble")
	}
	sort.Strings(vars)
	n, d := len(ensemble), len(vars)
	x := make([]float64, n*d)
	for i, r := range ensemble {
		for j, v := range vars {
			x[i*d+j] = r[v]
		}
	}
	keep := cfg.Keep
	if keep <= 0 {
		keep = (n - 1) / 2
		if keep < 1 {
			keep = 1
		}
		if keep > d {
			keep = d
		}
	}
	model, err := pca.Fit(x, n, d, keep)
	if err != nil {
		return nil, fmt.Errorf("ect: %w", err)
	}
	// Drop roundoff-level components.
	if len(model.Eigvals) > 0 && model.Eigvals[0] > 0 {
		k := 0
		for k < model.K && model.Eigvals[k] > cfg.EigvalFloor*model.Eigvals[0] {
			k++
		}
		if k < 1 {
			k = 1
		}
		model.K = k
		model.Components = model.Components[:k*d]
	}
	// Ensemble score distribution per PC.
	scores := make([][]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = model.Scores(x[i*d : (i+1)*d])
	}
	mu := make([]float64, model.K)
	sd := make([]float64, model.K)
	for k := 0; k < model.K; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += scores[i][k]
		}
		mu[k] = s / float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := scores[i][k] - mu[k]
			v += dv * dv
		}
		sd[k] = math.Sqrt(v / float64(n-1))
		if sd[k] == 0 {
			sd[k] = 1e-300
		}
	}
	return &Test{cfg: cfg, vars: vars, model: model, scoreMu: mu, scoreSd: sd, ensemble: scores}, nil
}

// Verdict is the result of evaluating one experimental run.
type Verdict struct {
	Pass       bool
	FailingPCs []int     // indices of PCs outside the acceptance interval
	Scores     []float64 // the run's PC scores
}

// Evaluate scores one experimental run against the ensemble. Missing
// variables contribute their ensemble mean (i.e. zero standardized
// signal), so a partial run degrades gracefully.
func (t *Test) Evaluate(run RunOutput) Verdict {
	row := make([]float64, len(t.vars))
	for j, v := range t.vars {
		if val, ok := run[v]; ok {
			row[j] = val
		} else {
			row[j] = t.model.Mean[j]
		}
	}
	scores := t.model.Scores(row)
	var failing []int
	for k, s := range scores {
		if math.Abs(s-t.scoreMu[k]) > t.cfg.SigmaMult*t.scoreSd[k] {
			failing = append(failing, k)
		}
	}
	return Verdict{
		Pass:       len(failing) < t.cfg.FailPCs,
		FailingPCs: failing,
		Scores:     scores,
	}
}

// FailureRate evaluates a set of experimental runs and returns the
// fraction that fail — the quantity reported in the paper's Table 1.
func (t *Test) FailureRate(runs []RunOutput) float64 {
	if len(runs) == 0 {
		return 0
	}
	fails := 0
	for _, r := range runs {
		if !t.Evaluate(r).Pass {
			fails++
		}
	}
	return float64(fails) / float64(len(runs))
}
