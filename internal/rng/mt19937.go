package rng

// MT19937 is the 32-bit Mersenne Twister of Matsumoto & Nishimura
// (1998), implemented from the reference recurrence. It is the
// generator substituted into the model for the RAND-MT experiment.
type MT19937 struct {
	state [624]uint32
	index int
}

const (
	mtN          = 624
	mtM          = 397
	mtMatrixA    = 0x9908b0df
	mtUpperMask  = 0x80000000
	mtLowerMask  = 0x7fffffff
	mtInitMult   = 1812433253
	mtTemperB    = 0x9d2c5680
	mtTemperC    = 0xefc60000
	mtDefaultKey = 5489
)

// NewMT19937 returns a seeded Mersenne Twister. Seed 0 selects the
// reference default seed 5489.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed implements Source using the reference init_genrand procedure on
// the low 32 bits of seed (0 maps to the canonical default 5489).
func (m *MT19937) Seed(seed uint64) {
	s := uint32(seed)
	if s == 0 {
		s = mtDefaultKey
	}
	m.state[0] = s
	for i := 1; i < mtN; i++ {
		m.state[i] = mtInitMult*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint32 returns the next tempered output word.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & mtTemperB
	y ^= (y << 15) & mtTemperC
	y ^= y >> 18
	return y
}

// Float64 implements Source using the reference genrand_res53 method
// (53-bit resolution from two 32-bit words).
func (m *MT19937) Float64() float64 {
	a := m.Uint32() >> 5 // 27 bits
	b := m.Uint32() >> 6 // 26 bits
	return (float64(a)*67108864.0 + float64(b)) / 9007199254740992.0
}

// Name implements Source.
func (m *MT19937) Name() string { return "mt19937" }
