// Package rng provides the pseudorandom number generators used by the
// synthetic climate model: a KISS-style default generator standing in
// for CESM's kissvec PRNG, a from-scratch MT19937 Mersenne Twister for
// the RAND-MT experiment (§6.2), and a minimal LCG for corpus synthesis.
//
// All generators implement Source and produce uniform float64 values in
// [0, 1), matching Fortran's random_number contract.
package rng

// Source is a deterministic uniform generator.
type Source interface {
	// Float64 returns the next uniform variate in [0, 1).
	Float64() float64
	// Seed resets the generator state from a 64-bit seed.
	Seed(seed uint64)
	// Name identifies the generator family (used to label experiments).
	Name() string
}

// KISS is the keep-it-simple-stupid combined generator (Marsaglia), the
// same family as CESM's default kissvec random number generator.
type KISS struct {
	x, y, z, w uint32
}

// NewKISS returns a seeded KISS generator.
func NewKISS(seed uint64) *KISS {
	k := &KISS{}
	k.Seed(seed)
	return k
}

// Seed implements Source.
func (k *KISS) Seed(seed uint64) {
	// Derive four nonzero state words from the seed with splitmix-style
	// mixing so nearby seeds decorrelate.
	s := seed
	next := func() uint32 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return uint32(z ^ (z >> 31))
	}
	k.x = next() | 1
	k.y = next() | 1
	k.z = next() | 1
	k.w = next() | 1
}

func (k *KISS) uint32() uint32 {
	// Linear congruential component.
	k.x = 69069*k.x + 1327217885
	// Xorshift component.
	k.y ^= k.y << 13
	k.y ^= k.y >> 17
	k.y ^= k.y << 5
	// Multiply-with-carry components.
	k.z = 18000*(k.z&65535) + (k.z >> 16)
	k.w = 30903*(k.w&65535) + (k.w >> 16)
	return k.x + k.y + (k.z << 16) + k.w
}

// Float64 implements Source.
func (k *KISS) Float64() float64 {
	// 32 bits of mantissa is plenty for the model's cloud sampling and
	// matches kissvec's single call granularity.
	return float64(k.uint32()) / (1 << 32)
}

// Name implements Source.
func (k *KISS) Name() string { return "kiss" }

// LCG is a 64-bit linear congruential generator (Knuth MMIX constants)
// used for deterministic corpus synthesis, where statistical quality is
// irrelevant but speed and tiny state matter.
type LCG struct {
	state uint64
}

// NewLCG returns a seeded LCG.
func NewLCG(seed uint64) *LCG {
	l := &LCG{}
	l.Seed(seed)
	return l
}

// Seed implements Source.
func (l *LCG) Seed(seed uint64) { l.state = seed*2862933555777941757 + 3037000493 }

func (l *LCG) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// Float64 implements Source.
func (l *LCG) Float64() float64 {
	return float64(l.next()>>11) / (1 << 53)
}

// Uint64 returns the next raw state word (corpus generator helper).
func (l *LCG) Uint64() uint64 { return l.next() }

// Intn returns a uniform int in [0, n). It panics if n <= 0. The high
// bits of the LCG state are used: the low bits of any power-of-two
// modulus LCG are short-period.
func (l *LCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int((l.next() >> 33) % uint64(n))
}

// Name implements Source.
func (l *LCG) Name() string { return "lcg" }
