package rng

import (
	"math"
	"testing"
)

func TestMT19937ReferenceSequence(t *testing.T) {
	// First outputs of the reference mt19937ar.c with init_genrand(5489)
	// (the default seed): 3499211612, 581869302, 3890346734, 3586334585,
	// 545404204.
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d; want %d", i, got, w)
		}
	}
}

func TestMT19937ZeroSeedIsDefault(t *testing.T) {
	a := NewMT19937(0)
	b := NewMT19937(5489)
	for i := 0; i < 10; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("seed 0 diverges from default at %d", i)
		}
	}
}

func TestSourcesInUnitInterval(t *testing.T) {
	sources := []Source{NewKISS(123), NewMT19937(123), NewLCG(123)}
	for _, s := range sources {
		for i := 0; i < 10000; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("%s output %v out of [0,1)", s.Name(), v)
			}
		}
	}
}

func TestSourcesRoughlyUniform(t *testing.T) {
	sources := []Source{NewKISS(9), NewMT19937(9), NewLCG(9)}
	for _, s := range sources {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += s.Float64()
		}
		mean := sum / n
		if math.Abs(mean-0.5) > 0.02 {
			t.Fatalf("%s mean = %v", s.Name(), mean)
		}
	}
}

func TestSeedReproducibility(t *testing.T) {
	for _, mk := range []func(uint64) Source{
		func(s uint64) Source { return NewKISS(s) },
		func(s uint64) Source { return NewMT19937(s) },
		func(s uint64) Source { return NewLCG(s) },
	} {
		a, b := mk(777), mk(777)
		for i := 0; i < 100; i++ {
			if a.Float64() != b.Float64() {
				t.Fatalf("%s not reproducible at %d", a.Name(), i)
			}
		}
		c := mk(778)
		same := true
		a2 := mk(777)
		for i := 0; i < 10; i++ {
			if a2.Float64() != c.Float64() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds give same stream", c.Name())
		}
	}
}

func TestReseedResetsStream(t *testing.T) {
	k := NewKISS(5)
	first := make([]float64, 5)
	for i := range first {
		first[i] = k.Float64()
	}
	k.Seed(5)
	for i := range first {
		if got := k.Float64(); got != first[i] {
			t.Fatalf("reseed mismatch at %d", i)
		}
	}
}

func TestKISSDiffersFromMT(t *testing.T) {
	// The RAND-MT experiment depends on the two generators producing
	// different streams from the same seed.
	k, m := NewKISS(42), NewMT19937(42)
	diff := false
	for i := 0; i < 10; i++ {
		if k.Float64() != m.Float64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("KISS and MT19937 streams identical")
	}
}

func TestLCGIntn(t *testing.T) {
	l := NewLCG(1)
	for i := 0; i < 1000; i++ {
		v := l.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	l.Intn(0)
}

func TestNames(t *testing.T) {
	if NewKISS(1).Name() != "kiss" || NewMT19937(1).Name() != "mt19937" || NewLCG(1).Name() != "lcg" {
		t.Fatal("unexpected generator names")
	}
}
