package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

// metricValue scrapes one counter/gauge from /metrics.
func metricValue(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + name + `(?:\{[^}]*\})? (\d+)$`).FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, data)
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

// waitMetric polls a metric until it reaches want.
func waitMetric(t *testing.T, base, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got := metricValue(t, base, name); got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d", name, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDedupSingleExecution: 16 clients submitting the same scenario
// simultaneously share exactly one underlying pipeline execution
// (observed via the counting RunHook), and every client receives the
// same completed outcome. Run under -race in CI.
func TestDedupSingleExecution(t *testing.T) {
	var execs atomic.Int64
	gate := make(chan struct{})
	srv := serve.New(serve.Config{
		Session: rca.NewSession(e2eCorpus, e2eOptions()...),
		Workers: 4,
		RunHook: func(string) {
			execs.Add(1)
			<-gate // hold the execution open until every client is in
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := rca.ScenarioToJSON(rca.WSUBBUG)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	replies := make([]*jobReply, clients)
	postErrs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replies[c], _, postErrs[c] = postJob(ts.URL, body, true)
		}(c)
	}

	// All 16 must be registered (1 executing + 15 deduped) before the
	// pipeline is allowed to finish — otherwise a fast pipeline could
	// legitimately serve latecomers from the outcome store.
	waitMetric(t, ts.URL, "rcad_jobs_submitted_total", clients)
	if deduped := metricValue(t, ts.URL, "rcad_jobs_deduped_total"); deduped != clients-1 {
		t.Fatalf("deduped = %d, want %d", deduped, clients-1)
	}
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("underlying pipeline executions = %d, want exactly 1", got)
	}
	for c, reply := range replies {
		if postErrs[c] != nil {
			t.Fatalf("client %d: %v", c, postErrs[c])
		}
		if reply.State != "done" || reply.Outcome == nil {
			t.Fatalf("client %d: state %s, error %q", c, reply.State, reply.Error)
		}
		if reply.Outcome.Text != replies[0].Outcome.Text ||
			reply.Fingerprint != replies[0].Fingerprint {
			t.Fatalf("client %d received a different outcome", c)
		}
	}
}

// TestCancelSharedFlightSurvives: two clients share one in-flight
// execution; the first client's disconnect cancels only its own job —
// the execution keeps running for the second client and completes.
// Run under -race in CI.
func TestCancelSharedFlightSurvives(t *testing.T) {
	var execs atomic.Int64
	started := make(chan struct{})
	gate := make(chan struct{})
	srv := serve.New(serve.Config{
		Session: rca.NewSession(e2eCorpus, e2eOptions()...),
		Workers: 2,
		RunHook: func(string) {
			execs.Add(1)
			close(started)
			<-gate
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := rca.ScenarioToJSON(rca.WSUBBUG)
	if err != nil {
		t.Fatal(err)
	}

	// Client A: waiting submission on a cancellable request.
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	aDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(actx, http.MethodPost,
			ts.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
		if err != nil {
			aDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		aDone <- err
		close(aDone)
	}()
	<-started // A's execution is running (and held open by the gate)

	// Client B joins the same in-flight execution.
	type postResult struct {
		reply *jobReply
		err   error
	}
	bReply := make(chan postResult, 1)
	go func() {
		reply, _, err := postJob(ts.URL, body, true)
		bReply <- postResult{reply, err}
	}()
	waitMetric(t, ts.URL, "rcad_jobs_deduped_total", 1)

	// A disconnects; the shared execution must survive for B.
	acancel()
	if err := <-aDone; err == nil {
		t.Fatal("client A's request should have failed with context canceled")
	}
	waitMetric(t, ts.URL, "rcad_jobs_canceled_total", 1)
	close(gate)

	res := <-bReply
	if res.err != nil {
		t.Fatal(res.err)
	}
	reply := res.reply
	if reply.State != "done" || reply.Outcome == nil {
		t.Fatalf("client B: state %s, error %q (shared execution was canceled by A's disconnect?)", reply.State, reply.Error)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}

	// The completed outcome is stored despite A's disconnect.
	resp, err := http.Get(ts.URL + "/v1/outcomes/" + reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcome store after shared completion: status %d", resp.StatusCode)
	}
}

// TestCancelLastSubscriberAbortsExecution: when every subscriber of a
// flight cancels, the underlying execution is aborted — unshared work
// is not run to completion for nobody.
func TestCancelLastSubscriberAbortsExecution(t *testing.T) {
	started := make(chan struct{})
	srv := serve.New(serve.Config{
		Session: rca.NewSession(e2eCorpus, e2eOptions()...),
		Workers: 1,
		RunHook: func(string) { close(started) },
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := rca.ScenarioToJSON(rca.GOFFGRATCH)
	if err != nil {
		t.Fatal(err)
	}
	// Submit without waiting, then cancel via DELETE once running.
	reply, status, err := postJob(ts.URL, body, false)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+reply.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The job reports canceled and the aborted execution stores no
	// outcome.
	var final jobReply
	getJSON(t, ts.URL+"/v1/jobs/"+reply.ID+"?wait=1", &final)
	if final.State != "canceled" {
		t.Fatalf("job state = %s, want canceled", final.State)
	}
	waitMetric(t, ts.URL, "rcad_flights_canceled_total", 1)
	out, err := http.Get(ts.URL + "/v1/outcomes/" + reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	out.Body.Close()
	if out.StatusCode != http.StatusNotFound {
		t.Fatalf("aborted execution stored an outcome (status %d)", out.StatusCode)
	}
}

// TestResubmitAfterLastSubscriberCancel: canceling the only job of a
// still-queued flight kills that flight — but a later identical
// submission must get a fresh execution, not be spuriously canceled by
// subscribing to the dead flight awaiting a worker.
func TestResubmitAfterLastSubscriberCancel(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv := serve.New(serve.Config{
		Session:   rca.NewSession(e2eCorpus, e2eOptions()...),
		Workers:   1,
		QueueSize: 4,
		RunHook:   func(string) { entered <- struct{}{}; <-gate },
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker, err := rca.ScenarioToJSON(rca.RANDMT)
	if err != nil {
		t.Fatal(err)
	}
	body, err := rca.ScenarioToJSON(rca.WSUBBUG)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single worker so later flights stay queued.
	if _, status, err := postJob(ts.URL, blocker, false); err != nil || status != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d, err %v", status, err)
	}
	<-entered

	// Queue the scenario, then cancel its only job while queued.
	first, status, err := postJob(ts.URL, body, false)
	if err != nil || status != http.StatusAccepted {
		t.Fatalf("first submit: status %d, err %v", status, err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Resubmit the identical scenario: it must not join the dead
	// flight.
	second, status, err := postJob(ts.URL, body, false)
	if err != nil || status != http.StatusAccepted {
		t.Fatalf("resubmit: status %d, err %v", status, err)
	}
	close(gate)

	var final jobReply
	getJSON(t, ts.URL+"/v1/jobs/"+second.ID+"?wait=1", &final)
	if final.State != "done" || final.Outcome == nil {
		t.Fatalf("resubmitted job: state %s, error %q — joined the dead flight?", final.State, final.Error)
	}
	var firstFinal jobReply
	getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &firstFinal)
	if firstFinal.State != "canceled" {
		t.Fatalf("canceled job state = %s, want canceled", firstFinal.State)
	}
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
