package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

// TestChaosWorkerCrashHelper is the subprocess body for
// TestChaosWorkerCrashRecovery: it only runs when re-exec'd with
// RCA_CRASH_WORKER_DIR set. It claims the queued job, writes a marker
// file the moment execution starts — the window where it holds both
// the queue lease and the scenario lock — and then stalls until the
// parent SIGKILLs it.
func TestChaosWorkerCrashHelper(t *testing.T) {
	dir := os.Getenv("RCA_CRASH_WORKER_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestChaosWorkerCrashRecovery")
	}
	marker := os.Getenv("RCA_CRASH_MARKER")
	store, err := rca.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Session:   storeSession(t, store),
		Artifacts: store,
		RunHook: func(string) {
			_ = os.WriteFile(marker, []byte("claimed\n"), 0o644)
			time.Sleep(2 * time.Minute) // SIGKILL arrives long before
		},
	})
	_ = srv.ServeQueue(context.Background(), "crasher", nil, 10*time.Millisecond)
}

// TestChaosWorkerCrashRecovery is the crash-tolerance acceptance test
// with a REAL worker process: a subprocess claims a queued scenario,
// is SIGKILLed mid-lease (no deferred cleanup runs — exactly what a
// kernel OOM-kill does), and a surviving peer must steal the stale
// lease, re-run the job with an incremented attempt counter, and
// publish FormatOutcome bytes identical to a never-crashed run.
func TestChaosWorkerCrashRecovery(t *testing.T) {
	scenario := rca.Experiments()[:1]
	reference := referenceTexts(t, scenario)

	dir := t.TempDir()
	marker := filepath.Join(t.TempDir(), "claimed")
	// Short stale timeout so the survivor steals the dead worker's
	// queue lease and scenario lock in test time, not after 2 minutes.
	store, err := rca.OpenArtifactStore(dir, rca.WithStoreLockStale(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Session: storeSession(t, store), Artifacts: store})
	defer srv.Close()

	body, err := rca.ScenarioToJSON(scenario[0])
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := srv.Enqueue(body)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestChaosWorkerCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"RCA_CRASH_WORKER_DIR="+dir,
		"RCA_CRASH_MARKER="+marker,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subprocess worker never claimed the job")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Mid-lease: the subprocess holds the job's lease file right now.
	leaseFiles, err := os.ReadDir(filepath.Join(dir, "queue", "leases"))
	if err != nil || len(leaseFiles) != 1 {
		t.Fatalf("lease files mid-execution = %d (err %v); want 1", len(leaseFiles), err)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The orphaned lease is still on disk — the crash left no tidy
	// state behind, only a file going stale.
	if entries, _ := os.ReadDir(filepath.Join(dir, "queue", "leases")); len(entries) != 1 {
		t.Fatalf("lease files after SIGKILL = %d; want the orphan still present", len(entries))
	}

	// A surviving peer drains the queue: it must steal the stale lease
	// and finish the job.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeQueue(ctx, "survivor", nil, 20*time.Millisecond) }()
	q, err := store.Queue()
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Minute)
	for !q.IsDone(id) {
		if time.Now().After(deadline) {
			t.Fatalf("survivor never completed the crashed job (pending=%d)", q.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("ServeQueue returned %v", err)
	}

	// The crash burned an attempt: the dead worker's claim charged 1,
	// the survivor's re-claim charged 2.
	if got := q.Attempts(id); got != 2 {
		t.Fatalf("attempt counter after crash recovery = %d; want 2", got)
	}
	if steals := store.Stats().Steals; steals == 0 {
		t.Fatal("survivor completed without stealing the stale lease")
	}

	// Exactly-once-effective: the recovered outcome is byte-identical
	// to a run that never crashed.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/queue/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st queueStateReply
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Result == nil || st.Result.State != "done" {
		t.Fatalf("queue result after recovery: %+v; want done", st)
	}
	reply, status, err := postJob(ts.URL, body, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("readback: status %d, err %v", status, err)
	}
	if reply.Outcome == nil || reply.Outcome.Text != reference[scenario[0].Name()] {
		t.Fatalf("recovered outcome diverged from the never-crashed run:\n%s", outcomeText(reply))
	}
}
