package serve

import (
	"sync"
	"time"

	rca "github.com/climate-rca/rca"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle: Queued → Running → one of Done/Failed/Canceled.
// A job whose outcome is served from the store is born Done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a state ends the job.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// StageEvent is one progress event: the job's investigation entered a
// pipeline stage.
type StageEvent struct {
	Stage rca.Stage `json:"stage"`
	At    time.Time `json:"at"`
}

// job is one client submission. Several jobs may share one flight (the
// deduplicated pipeline execution); each job still cancels
// independently — canceling a job only aborts the underlying execution
// once no other job subscribes to it.
type job struct {
	id   string
	name string  // scenario display name
	keys keyView // hashed layered fingerprints
	fl   *flight // nil when served straight from the outcome store
	srv  *Server

	mu      sync.Mutex
	state   State
	stage   rca.Stage
	events  []StageEvent
	outcome *Outcome
	err     error
	done    chan struct{} // closed on the first terminal transition
}

func newJob(id, name string, keys keyView, fl *flight, srv *Server) *job {
	return &job{id: id, name: name, keys: keys, fl: fl, srv: srv,
		state: StateQueued, done: make(chan struct{})}
}

// isTerminal reports whether the job has ended.
func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// setRunning moves a queued job to running (idempotent).
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
	}
}

// setStage records a stage transition (deduplicating repeats).
func (j *job) setStage(st rca.Stage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() || j.stage == st {
		return
	}
	j.stage = st
	j.events = append(j.events, StageEvent{Stage: st, At: time.Now().UTC()})
}

// finish moves the job to a terminal state. The first terminal
// transition wins; later ones (e.g. a flight completing after the job
// was canceled) are ignored.
func (j *job) finish(state State, out *Outcome, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state, j.outcome, j.err = state, out, err
	close(j.done)
	return true
}

// cancel detaches the job from its flight and marks it canceled. The
// flight's context is canceled only if this was its last subscriber —
// one client's disconnect never aborts another client's identical
// in-flight investigation.
func (j *job) cancel() {
	if !j.finish(StateCanceled, nil, nil) {
		return
	}
	j.srv.m.jobsCanceled.Add(1)
	if j.fl != nil {
		j.fl.unsubscribe(j)
	}
}

// snapshot copies the job's mutable state for rendering.
func (j *job) snapshot() (State, rca.Stage, []StageEvent, *Outcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	events := make([]StageEvent, len(j.events))
	copy(events, j.events)
	return j.state, j.stage, events, j.outcome, j.err
}
