package serve

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics are the service counters exposed at /metrics in the
// Prometheus text exposition format.
type metrics struct {
	jobsSubmitted   atomic.Int64 // accepted submissions (all paths)
	jobsDeduped     atomic.Int64 // submissions that joined an in-flight execution
	jobsFromStore   atomic.Int64 // submissions served whole from the outcome store
	jobsCompleted   atomic.Int64 // jobs finished with an outcome
	jobsFailed      atomic.Int64 // jobs finished with a pipeline error
	jobsCanceled    atomic.Int64 // jobs canceled by their client
	jobsRejected    atomic.Int64 // submissions rejected (queue full / shutdown)
	executions      atomic.Int64 // actual underlying pipeline executions
	flightsCanceled atomic.Int64 // executions aborted because every subscriber left
	jobRetries      atomic.Int64 // execution attempts retried after transient failures

	searchesStarted        atomic.Int64 // scenario searches accepted
	searchesCompleted      atomic.Int64 // searches finished with a result
	searchesFailed         atomic.Int64 // searches finished with an error
	searchesCanceled       atomic.Int64 // searches canceled by client or shutdown
	searchNodesExpanded    atomic.Int64 // branch-and-bound nodes evaluated
	searchNodesPruned      atomic.Int64 // subtrees cut by bound/incumbent tests
	searchIncumbentUpdates atomic.Int64 // best-known-solution improvements
}

// write renders the counters plus the gauges the server derives live.
// Every job series carries the session's execution-engine label
// (engine="bytecode" or engine="tree"), and the bytecode program
// cache's hit/miss counters are reported alongside. The lasso series
// additionally carry the session's solver label (solver="cd" or
// solver="ista").
func (m *metrics) write(w io.Writer, engine string, queueDepth, storeSize, inflight int, compileHits, compileMisses uint64, ls lassoStats, as artifactStats, rs robustStats) {
	lbl := fmt.Sprintf(`{engine=%q}`, engine)
	lassoLbl := fmt.Sprintf(`{engine=%q,solver=%q}`, engine, ls.Solver)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP rcad_%s %s\n# TYPE rcad_%s counter\nrcad_%s%s %d\n", name, help, name, name, lbl, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP rcad_%s %s\n# TYPE rcad_%s gauge\nrcad_%s%s %d\n", name, help, name, name, lbl, v)
	}
	counter("jobs_submitted_total", "Accepted job submissions.", m.jobsSubmitted.Load())
	counter("jobs_deduped_total", "Submissions that joined an identical in-flight execution.", m.jobsDeduped.Load())
	counter("jobs_from_store_total", "Submissions served whole from the outcome store.", m.jobsFromStore.Load())
	counter("jobs_completed_total", "Jobs finished with an outcome.", m.jobsCompleted.Load())
	counter("jobs_failed_total", "Jobs finished with a pipeline error.", m.jobsFailed.Load())
	counter("jobs_canceled_total", "Jobs canceled by their client.", m.jobsCanceled.Load())
	counter("jobs_rejected_total", "Submissions rejected by backpressure or shutdown.", m.jobsRejected.Load())
	counter("pipeline_executions_total", "Underlying pipeline executions (post-dedup).", m.executions.Load())
	counter("flights_canceled_total", "Executions aborted because every subscriber left.", m.flightsCanceled.Load())
	counter("compile_cache_hits_total", "Integrations that reused a cached compiled program.", int64(compileHits))
	counter("compile_cache_misses_total", "Bytecode program compilations.", int64(compileMisses))
	lassoCounter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP rcad_%s %s\n# TYPE rcad_%s counter\nrcad_%s%s %d\n", name, help, name, name, lassoLbl, v)
	}
	lassoCounter("lasso_fits_total", "Selection-stage lasso fits across the session.", int64(ls.Fits))
	lassoCounter("lasso_fit_iterations_total", "Proximal-gradient iterations consumed by selection-stage lasso fits.", int64(ls.Iters))
	counter("searches_started_total", "Scenario searches accepted.", m.searchesStarted.Load())
	counter("searches_completed_total", "Scenario searches finished with a result.", m.searchesCompleted.Load())
	counter("searches_failed_total", "Scenario searches finished with an error.", m.searchesFailed.Load())
	counter("searches_canceled_total", "Scenario searches canceled by client or shutdown.", m.searchesCanceled.Load())
	counter("search_nodes_expanded_total", "Branch-and-bound nodes evaluated across searches.", m.searchNodesExpanded.Load())
	counter("search_nodes_pruned_total", "Branch-and-bound subtrees cut by bound or incumbent tests.", m.searchNodesPruned.Load())
	counter("search_incumbent_updates_total", "Best-known-solution improvements across searches.", m.searchIncumbentUpdates.Load())
	counter("artifact_store_hits_total", "Artifact store blob reads that hit.", int64(as.Hits))
	counter("artifact_store_misses_total", "Artifact store blob reads that missed (or failed integrity).", int64(as.Misses))
	counter("artifact_store_evictions_total", "Artifact store blobs evicted by the size cap.", int64(as.Evictions))
	counter("artifact_lock_steals_total", "Stale artifact locks and queue leases stolen from dead holders.", int64(as.Steals))
	counter("fault_injected_total", "Faults fired by the active chaos plane (0 without -faults).", int64(rs.FaultInjected))
	counter("job_retries_total", "Execution attempts retried after transient failures.", m.jobRetries.Load())
	counter("jobs_dead_lettered_total", "Queue jobs retired to the dead-letter directory.", int64(rs.DeadLettered))
	gauge("queue_depth", "Executions waiting for a worker.", queueDepth)
	gauge("outcome_store_size", "Outcomes held by the LRU store.", storeSize)
	gauge("flights_inflight", "Executions queued or running.", inflight)
	gauge("artifact_store_bytes", "Artifact store on-disk payload bytes.", int(as.Bytes))
	degraded := 0
	if rs.Degraded {
		degraded = 1
	}
	gauge("store_degraded", "1 while the artifact store circuit breaker is open (in-memory pass-through).", degraded)
}

// lassoStats is the lasso slice of the metrics page: the session's
// solver label and its cumulative fit/iteration counters.
type lassoStats struct {
	Solver string
	Fits   uint64
	Iters  uint64
}

// artifactStats is the slice of artifact.Stats the metrics page
// renders; zero-valued when the server has no store attached, so the
// series always exist.
type artifactStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Steals    uint64
	Bytes     int64
}

// robustStats is the live robustness slice of the metrics page: the
// chaos plane's injection counter, the dead-letter directory size and
// the circuit breaker's state; zero-valued without a store or plane so
// the series always exist.
type robustStats struct {
	FaultInjected uint64
	DeadLettered  int
	Degraded      bool
}
