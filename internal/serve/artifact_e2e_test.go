package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/serve"
)

// storeSession builds a small session over an artifact store handle.
func storeSession(t *testing.T, store *rca.ArtifactStore) *rca.Session {
	t.Helper()
	return rca.NewSession(rca.CorpusConfig{AuxModules: 10, Seed: 5},
		rca.WithEnsembleSize(8), rca.WithExpSize(3), rca.WithArtifacts(store))
}

// TestWarmRestartE2E is the acceptance scenario: boot a daemon with
// -store, investigate GOFFGRATCH, shut the daemon down, boot a second
// daemon on the same directory, submit the same scenario — it must be
// served warm with ZERO pipeline executions and byte-identical
// FormatOutcome text.
func TestWarmRestartE2E(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"experiment":"GOFFGRATCH"}`)

	boot := func(execs *atomic.Int64) (*serve.Server, *httptest.Server, *rca.ArtifactStore) {
		store, err := rca.OpenArtifactStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(serve.Config{
			Session:   storeSession(t, store),
			Artifacts: store,
			RunHook:   func(string) { execs.Add(1) },
		})
		return srv, httptest.NewServer(srv.Handler()), store
	}

	var coldExecs atomic.Int64
	srv1, ts1, _ := boot(&coldExecs)
	reply1, status, err := postJob(ts1.URL, body, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("cold submit: status %d, err %v", status, err)
	}
	if reply1.Outcome == nil || reply1.Outcome.Text == "" {
		t.Fatalf("cold outcome missing: %+v", reply1)
	}
	if coldExecs.Load() == 0 {
		t.Fatal("cold run executed nothing")
	}
	ts1.Close()
	srv1.Close() // flushes the outcome to the store

	var warmExecs atomic.Int64
	srv2, ts2, store2 := boot(&warmExecs)
	defer srv2.Close()
	defer ts2.Close()
	reply2, status, err := postJob(ts2.URL, body, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("warm submit: status %d, err %v", status, err)
	}
	if n := warmExecs.Load(); n != 0 {
		t.Fatalf("warm restart executed the pipeline %d times; want 0", n)
	}
	if reply2.Outcome == nil || reply2.Outcome.Text != reply1.Outcome.Text {
		t.Fatalf("warm outcome text not byte-identical to cold:\ncold:\n%s\nwarm:\n%s",
			reply1.Outcome.Text, outcomeText(reply2))
	}
	if reply2.Fingerprint != reply1.Fingerprint {
		t.Fatalf("fingerprints differ across restart: %s vs %s", reply1.Fingerprint, reply2.Fingerprint)
	}
	if fromStore := metricValue(t, ts2.URL, "rcad_jobs_from_store_total"); fromStore < 1 {
		t.Fatalf("rcad_jobs_from_store_total = %d; want >= 1", fromStore)
	}
	if hits := store2.Stats().Hits; hits == 0 {
		t.Fatal("warm daemon never hit the artifact store")
	}
	if v := metricValue(t, ts2.URL, "rcad_artifact_store_hits_total"); v < 1 {
		t.Fatalf("rcad_artifact_store_hits_total = %d; want >= 1", v)
	}
	if v := metricValue(t, ts2.URL, "rcad_artifact_store_bytes"); v <= 0 {
		t.Fatalf("rcad_artifact_store_bytes = %d; want > 0", v)
	}
}

func outcomeText(r *jobReply) string {
	if r.Outcome == nil {
		return "<nil>"
	}
	return r.Outcome.Text
}

// TestShutdownFlushesOutcomes pins the graceful-shutdown contract:
// outcome persistence is asynchronous, but Close must not return until
// completed investigations are durable in the store.
func TestShutdownFlushesOutcomes(t *testing.T) {
	dir := t.TempDir()
	store, err := rca.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Session: storeSession(t, store), Artifacts: store})
	ts := httptest.NewServer(srv.Handler())
	reply, status, err := postJob(ts.URL, []byte(`{"experiment":"WSUBBUG"}`), true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("submit: status %d, err %v", status, err)
	}
	ts.Close()
	srv.Close()

	// A completely fresh handle (as a restarted process would open)
	// must find the outcome blob.
	reopened, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get(artifact.ClassOutcome, reply.Fingerprint); !ok {
		t.Fatalf("outcome %s not durable after Close", reply.Fingerprint)
	}
}

// TestQueueEndpointsRequireStore: worker-mode HTTP endpoints answer
// 503 on a daemon without -store.
func TestQueueEndpointsRequireStore(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Post(ts.URL+"/v1/queue", "application/json",
		strings.NewReader(`{"experiment":"WSUBBUG"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /v1/queue without store: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/queue/xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/queue/{id} without store: %d, want 503", resp.StatusCode)
	}
}

// queueStateReply mirrors the GET /v1/queue/{id} JSON.
type queueStateReply struct {
	ID     string `json:"id"`
	Done   bool   `json:"done"`
	Result *struct {
		Fingerprint string `json:"fingerprint"`
		State       string `json:"state"`
		Error       string `json:"error"`
	} `json:"result"`
}

// TestTwoWorkersSharedStore is the multi-worker acceptance scenario:
// two daemons (each its own Session, sharing one store directory)
// drain a 16-scenario catalog from the shared queue. Every scenario
// must execute exactly once across the pair, and every artifact —
// corpus, program, compiled metagraph — must be built exactly once
// across both processes (cross-process singleflight).
func TestTwoWorkersSharedStore(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// 16 scenarios: the full §6+§8 catalog plus eight parameter
	// perturbations. The param scenarios share the clean source build
	// (same sourceKey, distinct buildKeys), so exactly-once sharing is
	// exercised at every fingerprint layer.
	bodies := make([][]byte, 0, 16)
	for _, sc := range rca.AllExperiments() {
		body, err := rca.ScenarioToJSON(sc)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	for i := 0; i < 8; i++ {
		bodies = append(bodies, fmt.Appendf(nil,
			`{"name":"TURB%d","inject":["param:turbcoef=0.0%d1"]}`, i, i))
	}

	peers := []string{"w1", "w2"}
	type worker struct {
		store *rca.ArtifactStore
		srv   *serve.Server
		execs atomic.Int64
		done  chan error
	}
	workers := make([]*worker, 2)
	for i := range workers {
		store, err := rca.OpenArtifactStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		w := &worker{store: store, done: make(chan error, 1)}
		w.srv = serve.New(serve.Config{
			Session:   storeSession(t, store),
			Artifacts: store,
			Workers:   2,
			RunHook:   func(string) { w.execs.Add(1) },
		})
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.srv.Close()
		}
	}()

	// Both daemons enqueue the full catalog (Enqueue is idempotent by
	// fingerprint), as any peer may in production.
	ids := make([]string, 0, len(bodies))
	for i, body := range bodies {
		id, _, err := workers[i%2].srv.Enqueue(body)
		if err != nil {
			t.Fatalf("enqueue %s: %v", body, err)
		}
		ids = append(ids, id)
		if _, _, err := workers[(i+1)%2].srv.Enqueue(body); err != nil {
			t.Fatalf("duplicate enqueue: %v", err)
		}
	}
	distinct := map[string]bool{}
	for _, id := range ids {
		distinct[id] = true
	}
	if len(distinct) != len(bodies) {
		t.Fatalf("%d distinct fingerprints from %d scenarios", len(distinct), len(bodies))
	}

	for i, w := range workers {
		go func(i int, w *worker) {
			w.done <- w.srv.ServeQueue(ctx, peers[i], peers, 20*time.Millisecond)
		}(i, w)
	}

	// Wait until every queued job has a completion marker.
	q, err := workers[0].store.Queue()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for !q.IsDone(id) {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never completed (pending=%d)", id, q.Pending())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	cancel()
	for _, w := range workers {
		if err := <-w.done; err != context.Canceled {
			t.Fatalf("ServeQueue returned %v", err)
		}
	}

	// Every job finished as done, reachable through either daemon.
	ts := httptest.NewServer(workers[1].srv.Handler())
	defer ts.Close()
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/queue/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st queueStateReply
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Done || st.Result == nil {
			t.Fatalf("job %s not done: %+v", id, st)
		}
		if st.Result.State != "done" {
			t.Fatalf("job %s state %q (error %q); want done", id, st.Result.State, st.Result.Error)
		}
	}

	// Exactly-once execution across the pair.
	total := workers[0].execs.Load() + workers[1].execs.Load()
	if total != int64(len(bodies)) {
		t.Fatalf("pipeline executed %d times across both workers; want exactly %d",
			total, len(bodies))
	}

	// Exactly-once artifact builds across the pair: distinct sourceKeys
	// each build a corpus and a program, distinct buildKeys a compiled
	// metagraph — plus the clean control build both catalogs share.
	sources, builds := map[string]bool{}, map[string]bool{}
	keysSession := rca.NewSession(rca.CorpusConfig{AuxModules: 10, Seed: 5})
	for _, body := range bodies {
		sc, err := rca.ScenarioFromJSON(body)
		if err != nil {
			t.Fatal(err)
		}
		keys, err := keysSession.Keys(sc)
		if err != nil {
			t.Fatal(err)
		}
		sources[keys.Source] = true
		builds[keys.Build] = true
	}
	clean, err := keysSession.Keys(rca.NewScenario("CLEAN", rca.ScenarioOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	sources[clean.Source] = true // the control build
	want := uint64(2*len(sources) + len(builds))
	got := workers[0].store.Stats().Builds + workers[1].store.Stats().Builds
	if got != want {
		t.Fatalf("artifact builds across both workers = %d; want exactly %d (%d sources x2 + %d buildKeys)",
			got, want, len(sources), len(builds))
	}
}
