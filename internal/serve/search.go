package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	rca "github.com/climate-rca/rca"
)

// Scenario searches ride the same service discipline as jobs: a
// bounded registry ("s-%06d" ids, oldest terminal entries pruned), a
// semaphore that serializes the heavy exploration instead of letting N
// handler goroutines bypass the worker pool, and ?wait adoption where
// a disconnected waiter cancels its own search. Progress — nodes
// expanded, pruned, incumbent updates — feeds both the /metrics
// counters and the per-search event list clients poll.

// searchEventsCap bounds the retained progress events per search; the
// totals keep counting past it.
const searchEventsCap = 256

// SearchEvent is one retained search progress event (waves and
// incumbent updates; expansions and prunes are counted, not listed).
type SearchEvent struct {
	Kind string    `json:"kind"`
	Wave int       `json:"wave"`
	IDs  []string  `json:"ids,omitempty"`
	Rate float64   `json:"rate,omitempty"`
	By   string    `json:"by,omitempty"`
	At   time.Time `json:"at"`
}

// SearchProgress is the live counter view of a search.
type SearchProgress struct {
	Expanded   int64 `json:"expanded"`
	Pruned     int64 `json:"pruned"`
	Incumbents int64 `json:"incumbents"`
}

// searchJob is one running or finished scenario search.
type searchJob struct {
	id     string
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	progress SearchProgress
	events   []SearchEvent
	result   *rca.SearchResult
	text     string
	err      error
	done     chan struct{}
}

func (j *searchJob) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

func (j *searchJob) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
	}
}

func (j *searchJob) finish(state State, res *rca.SearchResult, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state, j.result, j.err = state, res, err
	if res != nil {
		j.text = rca.FormatSearchResult(res)
	}
	close(j.done)
	return true
}

// abort cancels the search (waiter disconnect); the engine returns
// ErrCanceled and the runner goroutine records the terminal state.
func (j *searchJob) abort() { j.cancel() }

// observe folds one engine progress event into the job and the
// server's metrics. The engine emits events sequentially, so this is
// uncontended in practice; the lock protects concurrent renders.
func (s *Server) observe(j *searchJob, ev rca.SearchEvent) {
	switch ev.Kind {
	case "expanded":
		s.m.searchNodesExpanded.Add(1)
	case "pruned":
		s.m.searchNodesPruned.Add(1)
	case "incumbent":
		s.m.searchIncumbentUpdates.Add(1)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch ev.Kind {
	case "expanded":
		j.progress.Expanded++
		return // counted, not retained: waves can expand many nodes
	case "pruned":
		j.progress.Pruned++
		return
	case "incumbent":
		j.progress.Incumbents++
	}
	if len(j.events) < searchEventsCap {
		j.events = append(j.events, SearchEvent{
			Kind: string(ev.Kind), Wave: ev.Wave, IDs: ev.IDs,
			Rate: ev.Rate, By: ev.By, At: time.Now().UTC(),
		})
	}
}

// startSearch registers and launches one search execution.
func (s *Server) startSearch(req *rca.SearchRequest) (*searchJob, error) {
	// The shutdown check and the waitgroup registration share s.mu
	// with Close (see table1Flight for the race this prevents).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.nextSearchID++
	id := fmt.Sprintf("s-%06d", s.nextSearchID)
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(s.base)
	j := &searchJob{id: id, cancel: cancel, state: StateQueued, done: make(chan struct{})}
	s.registerSearch(j)
	s.m.searchesStarted.Add(1)

	go func() {
		defer s.wg.Done()
		select {
		case s.searchSem <- struct{}{}:
		case <-ctx.Done():
			s.m.searchesCanceled.Add(1)
			j.finish(StateCanceled, nil, rca.ErrCanceled)
			return
		}
		defer func() { <-s.searchSem }()
		j.setRunning()
		opts := req.Options()
		opts.Progress = func(ev rca.SearchEvent) { s.observe(j, ev) }
		res, err := rca.Search(ctx, s.session, opts)
		switch {
		case err == nil:
			s.m.searchesCompleted.Add(1)
			j.finish(StateDone, res, nil)
		case ctx.Err() != nil:
			s.m.searchesCanceled.Add(1)
			j.finish(StateCanceled, nil, rca.ErrCanceled)
		default:
			s.m.searchesFailed.Add(1)
			j.finish(StateFailed, nil, err)
		}
	}()
	return j, nil
}

// registerSearch records a search, pruning the oldest terminal ones
// beyond the registry cap (live searches are never evicted).
func (s *Server) registerSearch(j *searchJob) {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.searches[j.id] = j
	s.searchOrder = append(s.searchOrder, j.id)
	if len(s.searches) <= s.jobsCap {
		return
	}
	keep := make([]string, 0, len(s.searches))
	for _, id := range s.searchOrder {
		old, ok := s.searches[id]
		if !ok {
			continue
		}
		if len(s.searches) > s.jobsCap && old.isTerminal() {
			delete(s.searches, id)
			continue
		}
		keep = append(keep, id)
	}
	s.searchOrder = keep
}

// searchByID looks a search up in the registry.
func (s *Server) searchByID(id string) (*searchJob, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	j, ok := s.searches[id]
	return j, ok
}

// searchJSON is the wire rendering of a search.
type searchJSON struct {
	ID       string            `json:"id"`
	State    State             `json:"state"`
	Progress SearchProgress    `json:"progress"`
	Events   []SearchEvent     `json:"events,omitempty"`
	Result   *rca.SearchResult `json:"result,omitempty"`
	Text     string            `json:"text,omitempty"`
	Error    string            `json:"error,omitempty"`
}

func renderSearch(j *searchJob) searchJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	events := make([]SearchEvent, len(j.events))
	copy(events, j.events)
	sj := searchJSON{
		ID:       j.id,
		State:    j.state,
		Progress: j.progress,
		Events:   events,
		Result:   j.result,
		Text:     j.text,
	}
	if j.err != nil {
		sj.Error = j.err.Error()
	}
	return sj
}
