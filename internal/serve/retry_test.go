package serve

import (
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/artifact"
)

// TestRetryDelayHonorsConfiguredCap is the regression test for the
// duplicated backoff helper: retryDelay used to hardcode a 30s cap, so
// a server configured with a different RetryMax silently kept the old
// ceiling. The delay must now cap at the configured maximum (modulo
// the sub-base jitter), via the same artifact.Backoff schedule the
// work queue uses.
func TestRetryDelayHonorsConfiguredCap(t *testing.T) {
	session := rca.NewSession(rca.CorpusConfig{AuxModules: 5, Seed: 1})
	base := 50 * time.Millisecond
	max := 400 * time.Millisecond
	srv := New(Config{Session: session, RetryBase: base, RetryMax: max})
	defer srv.Close()

	for attempt := 1; attempt <= 12; attempt++ {
		d := srv.retryDelay("fp", attempt)
		want := artifact.Backoff("fp", attempt, base, max)
		if d != want {
			t.Fatalf("attempt %d: retryDelay = %v, artifact.Backoff = %v", attempt, d, want)
		}
		if d >= max+base {
			t.Fatalf("attempt %d: delay %v exceeds configured cap %v (+jitter)", attempt, d, max)
		}
	}
	// Deep attempts must sit exactly at the configured cap plus jitter,
	// not at the old hardcoded 30s.
	if d := srv.retryDelay("fp", 30); d < max || d >= max+base {
		t.Fatalf("attempt 30: delay %v outside [%v, %v)", d, max, max+base)
	}

	// Defaults: a zero-value config still doubles toward the shared
	// default cap.
	srv2 := New(Config{Session: session})
	defer srv2.Close()
	if d := srv2.retryDelay("fp", 30); d < artifact.DefaultBackoffMax {
		t.Fatalf("default cap: attempt 30 delay %v below %v", d, artifact.DefaultBackoffMax)
	}
}
