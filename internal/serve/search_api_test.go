package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

// seededSearchBody is the calibrated minimal-flip request: no single
// injection reaches the 50% threshold and the known minimal flipping
// subset is the pair {tlat*1.00015, pre*1.0003} (see internal/search's
// seededPool). The session must run at ensemble 16 / expSize 6.
const seededSearchBody = `{
 "objective": "minflip",
 "threshold": 0.5,
 "pool": [
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"tlat","factor":1.00015},
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"qsout","factor":1.0001},
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"pre","factor":1.0003},
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"qric","factor":1.0002},
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"pre","factor":1.00025},
  {"kind":"scale","module":"micro_mg","subprogram":"micro_mg_tend","var":"qsout","factor":1.00005}
 ]
}`

// wantMinimalSubset is the known answer for seededSearchBody.
var wantMinimalSubset = []string{
	"scale:micro_mg/micro_mg_tend.tlat*1.00015",
	"scale:micro_mg/micro_mg_tend.pre*1.0003",
}

// searchReply mirrors the /v1/searches wire rendering.
type searchReply struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		Expanded   int64 `json:"expanded"`
		Pruned     int64 `json:"pruned"`
		Incumbents int64 `json:"incumbents"`
	} `json:"progress"`
	Events []serve.SearchEvent `json:"events"`
	Result *rca.SearchResult   `json:"result"`
	Text   string              `json:"text"`
	Error  string              `json:"error"`
}

// searchSession builds a session at the calibrated search sizes.
func searchSession(opts ...rca.Option) *rca.Session {
	opts = append([]rca.Option{rca.WithEnsembleSize(16), rca.WithExpSize(6)}, opts...)
	return rca.NewSession(rca.CorpusConfig{AuxModules: 10, Seed: 5}, opts...)
}

func postSearch(base, body string, wait bool) (*searchReply, int, error) {
	url := base + "/v1/searches"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var reply searchReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, resp.StatusCode, err
	}
	return &reply, resp.StatusCode, nil
}

// TestSearchEndpointSeeded is the service acceptance path: POST the
// seeded minimal-flip search, get the known pair back, and see the
// branch-and-bound counters on /metrics.
func TestSearchEndpointSeeded(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Session: searchSession()})

	reply, status, err := postSearch(ts.URL, seededSearchBody, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("POST /v1/searches?wait=1: status %d, err %v", status, err)
	}
	if reply.State != "done" || reply.Error != "" {
		t.Fatalf("search state %q error %q, want done", reply.State, reply.Error)
	}
	if reply.Result == nil || reply.Result.Best == nil {
		t.Fatalf("no best subset in reply: %+v", reply)
	}
	if got := reply.Result.Best.IDs; !equalStrings(got, wantMinimalSubset) {
		t.Fatalf("best subset %v, want %v", got, wantMinimalSubset)
	}
	if reply.Result.Stats.Evaluations >= int(reply.Result.Stats.Exhaustive) {
		t.Fatalf("evaluated %d of %d subsets: pruning did nothing",
			reply.Result.Stats.Evaluations, reply.Result.Stats.Exhaustive)
	}
	if reply.Progress.Expanded == 0 || reply.Progress.Pruned == 0 || reply.Progress.Incumbents == 0 {
		t.Fatalf("progress counters flat: %+v", reply.Progress)
	}
	if len(reply.Events) == 0 {
		t.Fatal("no retained progress events")
	}
	if !strings.Contains(reply.Text, "best subset") {
		t.Fatalf("text rendering missing: %q", reply.Text)
	}

	// The search is still addressable after completion.
	got, err := http.Get(ts.URL + "/v1/searches/" + reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/searches/%s: %d", reply.ID, got.StatusCode)
	}

	for metric, min := range map[string]int{
		"rcad_searches_started_total":         1,
		"rcad_searches_completed_total":       1,
		"rcad_search_nodes_expanded_total":    1,
		"rcad_search_nodes_pruned_total":      1,
		"rcad_search_incumbent_updates_total": 1,
		"rcad_artifact_lock_steals_total":     0,
	} {
		if v := metricValue(t, ts.URL, metric); v < min {
			t.Fatalf("%s = %d, want >= %d", metric, v, min)
		}
	}
}

func TestSearchEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for name, body := range map[string]string{
		"garbage":           "not json",
		"unknown objective": `{"objective":"wat","pool":["prng=mt"]}`,
		"empty pool":        `{"objective":"minflip"}`,
		"bad pool entry":    `{"pool":["wat"]}`,
		"unknown field":     `{"objective":"minflip","pool":["prng=mt"],"nope":1}`,
	} {
		t.Run(name, func(t *testing.T) {
			reply, status, err := postSearch(ts.URL, body, false)
			if err != nil {
				t.Fatal(err)
			}
			if status != http.StatusBadRequest || reply.Error == "" {
				t.Fatalf("status %d error %q, want 400 with error body", status, reply.Error)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/searches/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown search: %d, want 404", resp.StatusCode)
	}
}

// TestQueuedSearchSharedStore drives a kind-tagged search request
// through the file job queue: worker A enqueues, worker B claims and
// runs it, and the completion marker lands in the shared store.
func TestQueuedSearchSharedStore(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	newWorker := func() (*serve.Server, *rca.ArtifactStore) {
		store, err := rca.OpenArtifactStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(serve.Config{
			Session:   searchSession(rca.WithArtifacts(store)),
			Artifacts: store,
		})
		t.Cleanup(srv.Close)
		return srv, store
	}
	a, store := newWorker()
	b, _ := newWorker()

	envelope := fmt.Sprintf(`{"search": %s}`, seededSearchBody)
	id, _, err := a.Enqueue([]byte(envelope))
	if err != nil {
		t.Fatalf("enqueue search: %v", err)
	}
	// Enqueue is idempotent: the identical request maps to the same id.
	id2, _, err := b.Enqueue([]byte(envelope))
	if err != nil || id2 != id {
		t.Fatalf("duplicate enqueue: id %q vs %q, err %v", id2, id, err)
	}

	done := make(chan error, 1)
	go func() { done <- b.ServeQueue(ctx, "w2", []string{"w2"}, 10*time.Millisecond) }()

	q, err := store.Queue()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !q.IsDone(id) {
		if time.Now().After(deadline) {
			t.Fatalf("queued search %s never completed (pending=%d)", id, q.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
	data, ok := q.Result(id)
	if !ok {
		t.Fatal("done marker without result payload")
	}
	var res struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.State != "done" || res.Error != "" {
		t.Fatalf("queued search result %+v, want done", res)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("ServeQueue returned %v", err)
	}
}

// TestSearchServerDeterministic pins the serve-layer answer against a
// direct engine run: the HTTP result must match rca.Search on an
// identical fresh session, byte for byte through JSON.
func TestSearchServerDeterministic(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Session: searchSession()})
	reply, status, err := postSearch(ts.URL, seededSearchBody, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("POST: status %d, err %v", status, err)
	}

	req, err := rca.SearchRequestFromJSON([]byte(seededSearchBody))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := rca.Search(context.Background(), searchSession(), req.Options())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(reply.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server result diverges from direct run:\n%s\nvs\n%s", got, want)
	}
	if reply.Text != rca.FormatSearchResult(direct) {
		t.Fatalf("text rendering diverges:\n%q\nvs\n%q", reply.Text, rca.FormatSearchResult(direct))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
