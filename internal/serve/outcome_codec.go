package serve

import (
	"fmt"
	"time"

	"github.com/climate-rca/rca/internal/binenc"
)

// outcomeCodecVersion is bumped on any change to the encoding below;
// stale blobs then read as misses and the investigation re-runs.
const outcomeCodecVersion uint32 = 1

// encodeOutcome serializes an outcome record to the deterministic
// artifact format. Text carries the rca.FormatOutcome bytes verbatim,
// so an outcome served from disk is byte-identical to the in-process
// render.
func encodeOutcome(o *Outcome) ([]byte, error) {
	if o == nil {
		return nil, fmt.Errorf("serve: encode nil outcome")
	}
	w := binenc.NewWriter(len(o.Text) + 128)
	w.U32(outcomeCodecVersion)
	w.String(o.Fingerprint)
	w.String(o.Name)
	w.F64(o.FailureRate)
	w.Bool(o.BugLocated)
	w.String(o.Text)
	w.I64(o.CompletedAt.UnixNano())
	return w.Bytes(), nil
}

// decodeOutcome reconstructs an outcome from encodeOutcome bytes.
func decodeOutcome(data []byte) (*Outcome, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != outcomeCodecVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("serve: outcome codec version %d, want %d", v, outcomeCodecVersion)
	}
	o := &Outcome{
		Fingerprint: r.String(),
		Name:        r.String(),
		FailureRate: r.F64(),
		BugLocated:  r.Bool(),
		Text:        r.String(),
	}
	o.CompletedAt = time.Unix(0, r.I64()).UTC()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return o, nil
}
