package serve

import (
	"fmt"
	"testing"
)

func rec(key string) *Outcome { return &Outcome{Fingerprint: key, Name: key} }

func TestStoreLRUEviction(t *testing.T) {
	s := newStore(2)
	s.put("a", rec("a"))
	s.put("b", rec("b"))
	if _, ok := s.get("a"); !ok { // bump a → b is now least recent
		t.Fatal("a missing")
	}
	s.put("c", rec("c"))
	if _, ok := s.get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c"} {
		if out, ok := s.get(k); !ok || out.Fingerprint != k {
			t.Fatalf("%s missing after eviction round", k)
		}
	}
	if s.len() != 2 {
		t.Fatalf("len = %d, want 2", s.len())
	}
}

func TestStoreRefreshKeepsSingleEntry(t *testing.T) {
	s := newStore(2)
	s.put("a", rec("a"))
	s.put("a", &Outcome{Fingerprint: "a", Name: "a2"})
	if s.len() != 1 {
		t.Fatalf("len = %d, want 1 after refresh", s.len())
	}
	out, ok := s.get("a")
	if !ok || out.Name != "a2" {
		t.Fatalf("refresh lost the newer record: %+v", out)
	}
}

func TestStoreManyEvictionsStayBounded(t *testing.T) {
	s := newStore(8)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		s.put(k, rec(k))
	}
	if s.len() != 8 {
		t.Fatalf("len = %d, want 8", s.len())
	}
	// The eight most recent survive.
	for i := 92; i < 100; i++ {
		if _, ok := s.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d evicted", i)
		}
	}
}
