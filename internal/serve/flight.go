package serve

import (
	"context"
	"sync"

	rca "github.com/climate-rca/rca"
)

// flight is one deduplicated pipeline execution: every job submitting
// a scenario with the same scenario fingerprint while the flight is
// queued or running subscribes to it instead of enqueueing a second
// execution (singleflight over the PR-2 layered cache keys). The
// flight's context is derived from the server's base context and is
// canceled only when the last subscriber cancels, so shared work
// survives any individual client's disconnect.
type flight struct {
	key      string // scenario fingerprint hash
	scenario rca.Scenario
	ctx      context.Context
	cancel   context.CancelFunc

	mu       sync.Mutex
	jobs     []*job
	started  bool
	finished bool
	stage    rca.Stage
}

func newFlight(base context.Context, key string, sc rca.Scenario) *flight {
	ctx, cancel := context.WithCancel(base)
	return &flight{key: key, scenario: sc, ctx: ctx, cancel: cancel}
}

// subscribe attaches a job, refusing a flight that is already dead —
// the last-subscriber cancel happens under f.mu, so this check closes
// the race between submit's dead-flight test and a concurrent cancel.
// A job joining a flight that already started is moved straight to
// running and told the current stage.
func (f *flight) subscribe(j *job) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ctx.Err() != nil {
		return false
	}
	f.jobs = append(f.jobs, j)
	if f.started {
		j.setRunning()
		if f.stage != "" {
			j.setStage(f.stage)
		}
	}
	return true
}

// unsubscribe detaches a canceled job; the last job out cancels the
// flight's context, aborting the (now unshared) pipeline work.
func (f *flight) unsubscribe(j *job) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, sub := range f.jobs {
		if sub == j {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			break
		}
	}
	if len(f.jobs) == 0 && !f.finished {
		f.cancel()
	}
}

// start marks the flight running and moves every subscriber with it.
func (f *flight) start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.started = true
	for _, j := range f.jobs {
		j.setRunning()
	}
}

// setStage fans a pipeline stage transition out to every subscriber.
func (f *flight) setStage(st rca.Stage) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stage = st
	for _, j := range f.jobs {
		j.setStage(st)
	}
}

// take marks the flight finished and returns the remaining
// subscribers for completion. The context is canceled to release any
// resources tied to it (nothing is running anymore).
func (f *flight) take() []*job {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.finished = true
	jobs := f.jobs
	f.jobs = nil
	f.cancel()
	return jobs
}
