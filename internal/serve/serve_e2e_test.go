package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

// e2eCorpus sizes the end-to-end harness: big enough that every
// catalog pipeline locates its defect, small enough for -race CI.
var e2eCorpus = rca.CorpusConfig{AuxModules: 25, Seed: 2}

func e2eOptions() []rca.Option {
	return []rca.Option{rca.WithEnsembleSize(16), rca.WithExpSize(4)}
}

// jobReply mirrors the serve job JSON for test decoding.
type jobReply struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	Outcome     *struct {
		Fingerprint string  `json:"fingerprint"`
		Name        string  `json:"name"`
		FailureRate float64 `json:"failureRate"`
		BugLocated  bool    `json:"bugLocated"`
		Text        string  `json:"text"`
	} `json:"outcome"`
	Error string `json:"error"`
}

// postJob submits a scenario body. It returns errors instead of
// failing the test so client goroutines can report through channels
// (t.Fatalf must not be called off the test goroutine).
func postJob(base string, body []byte, wait bool) (*jobReply, int, error) {
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("POST /v1/jobs: %w", err)
	}
	defer resp.Body.Close()
	var reply jobReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("decode job reply (status %d): %w", resp.StatusCode, err)
	}
	return &reply, resp.StatusCode, nil
}

// TestServeE2EGoldenCatalog is the acceptance harness: the full paper
// catalog driven through the HTTP API by 8 concurrent clients must
// produce FormatOutcome bytes identical to a direct in-process
// Session.RunAll — the service layer (queue, dedup, store, JSON
// transport) must not perturb determinism. Run under -race in CI.
func TestServeE2EGoldenCatalog(t *testing.T) {
	ctx := context.Background()
	scenarios := rca.Experiments()

	// The in-process reference.
	direct := rca.NewSession(e2eCorpus, e2eOptions()...)
	outs, err := direct.RunAll(ctx, scenarios)
	if err != nil {
		t.Fatalf("direct RunAll: %v", err)
	}
	want := make(map[string]string, len(outs))
	for _, out := range outs {
		want[out.Name] = rca.FormatOutcome(out)
	}

	// The service under test, on its own independent session.
	srv := serve.New(serve.Config{Session: rca.NewSession(e2eCorpus, e2eOptions()...), Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(scenarios))
	fingerprints := make([][]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fingerprints[c] = make([]string, len(scenarios))
			for i := range scenarios {
				// Stagger the order per client so submissions overlap
				// across different scenarios, not in lockstep.
				sc := scenarios[(i+c)%len(scenarios)]
				body, err := rca.ScenarioToJSON(sc)
				if err != nil {
					errs <- fmt.Errorf("client %d: serialize %s: %v", c, sc.Name(), err)
					return
				}
				reply, status, err := postJob(ts.URL, body, true)
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %w", c, sc.Name(), err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d: %s: status %d (%s)", c, sc.Name(), status, reply.Error)
					return
				}
				if reply.State != "done" || reply.Outcome == nil {
					errs <- fmt.Errorf("client %d: %s: state %s, error %q", c, sc.Name(), reply.State, reply.Error)
					return
				}
				if reply.Outcome.Text != want[sc.Name()] {
					errs <- fmt.Errorf("client %d: %s: outcome bytes diverge from in-process run:\n--- service ---\n%s\n--- direct ---\n%s",
						c, sc.Name(), reply.Outcome.Text, want[sc.Name()])
					return
				}
				fingerprints[c][(i+c)%len(scenarios)] = reply.Fingerprint
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every client saw the same fingerprint per scenario, and the
	// outcome store serves those fingerprints with the same bytes.
	for c := 1; c < clients; c++ {
		for i := range scenarios {
			if fingerprints[c][i] != fingerprints[0][i] {
				t.Fatalf("%s: client %d fingerprint %s != client 0 %s",
					scenarios[i].Name(), c, fingerprints[c][i], fingerprints[0][i])
			}
		}
	}
	for i, sc := range scenarios {
		resp, err := http.Get(ts.URL + "/v1/outcomes/" + fingerprints[0][i])
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Name string `json:"name"`
			Text string `json:"text"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Text != want[sc.Name()] {
			t.Fatalf("outcome store for %s: status %d, bytes match = %v",
				sc.Name(), resp.StatusCode, out.Text == want[sc.Name()])
		}
	}
}
