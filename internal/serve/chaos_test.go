package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/fault"
	"github.com/climate-rca/rca/internal/serve"
)

// installPlane arms a seeded global fault plane for one test.
func installPlane(t *testing.T, spec string, seed uint64) {
	t.Helper()
	p, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	fault.SetGlobal(p)
	t.Cleanup(func() { fault.SetGlobal(nil) })
}

// referenceTexts runs the catalog through a plain in-process session
// (no store, no faults) and returns the golden FormatOutcome bytes the
// chaos runs must reproduce exactly.
func referenceTexts(t *testing.T, scenarios []rca.Scenario) map[string]string {
	t.Helper()
	session := rca.NewSession(rca.CorpusConfig{AuxModules: 10, Seed: 5},
		rca.WithEnsembleSize(8), rca.WithExpSize(3))
	texts := make(map[string]string, len(scenarios))
	for _, sc := range scenarios {
		out, err := session.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("reference run %s: %v", sc.Name(), err)
		}
		texts[sc.Name()] = rca.FormatOutcome(out)
	}
	return texts
}

// TestChaosEIOStormTwoWorkers is the flagship chaos scenario: two
// workers drain the §6+§8 catalog from a shared queue while a seeded
// plane fails 10% of blob writes, 5% of reads and 10% of done-marker
// writes. Every job must still finish as done (exactly-once-effective:
// duplicate executions allowed, lost jobs not), and every outcome's
// FormatOutcome bytes must be identical to a fault-free run.
func TestChaosEIOStormTwoWorkers(t *testing.T) {
	scenarios := rca.AllExperiments()
	reference := referenceTexts(t, scenarios)
	installPlane(t, "artifact.put:eio@0.1;artifact.get:eio@0.05;queue.done:eio@0.1", 42)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	peers := []string{"w1", "w2"}
	servers := make([]*serve.Server, 2)
	doneCh := make([]chan error, 2)
	for i := range servers {
		store, err := rca.OpenArtifactStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = serve.New(serve.Config{
			Session:     storeSession(t, store),
			Artifacts:   store,
			Workers:     2,
			MaxAttempts: 6,
			RetryBase:   10 * time.Millisecond,
		})
		doneCh[i] = make(chan error, 1)
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	ids := make(map[string]string, len(scenarios)) // queue id → scenario name
	for i, sc := range scenarios {
		body, err := rca.ScenarioToJSON(sc)
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := servers[i%2].Enqueue(body)
		if err != nil {
			t.Fatalf("enqueue %s: %v", sc.Name(), err)
		}
		ids[id] = sc.Name()
	}
	for i, srv := range servers {
		go func(i int, srv *serve.Server) {
			doneCh[i] <- srv.ServeQueue(ctx, peers[i], peers, 20*time.Millisecond)
		}(i, srv)
	}

	ts := httptest.NewServer(servers[0].Handler())
	defer ts.Close()
	deadline := time.Now().Add(3 * time.Minute)
	for id, name := range ids {
		for {
			resp, err := http.Get(ts.URL + "/v1/queue/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st queueStateReply
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.Done {
				if st.Result == nil || st.Result.State != "done" {
					t.Fatalf("job %s (%s) finished %+v; want done", id, name, st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s (%s) never completed under the EIO storm", id, name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	cancel()
	for i := range servers {
		if err := <-doneCh[i]; err != context.Canceled {
			t.Fatalf("ServeQueue returned %v", err)
		}
	}

	if injected := metricValue(t, ts.URL, "rcad_fault_injected_total"); injected == 0 {
		t.Fatal("chaos run injected zero faults; the storm never happened")
	}

	// Disarm the plane and read every outcome back through the submit
	// path (disk → LRU promotion): bytes must match the golden run.
	fault.SetGlobal(nil)
	for _, name := range ids {
		var body []byte
		for _, sc := range scenarios {
			if sc.Name() == name {
				b, err := rca.ScenarioToJSON(sc)
				if err != nil {
					t.Fatal(err)
				}
				body = b
			}
		}
		reply, status, err := postJob(ts.URL, body, true)
		if err != nil || status != http.StatusOK {
			t.Fatalf("readback %s: status %d, err %v", name, status, err)
		}
		if reply.Outcome == nil || reply.Outcome.Text != reference[name] {
			t.Fatalf("outcome for %s diverged from the fault-free run:\nchaos:\n%s\ngolden:\n%s",
				name, outcomeText(reply), reference[name])
		}
	}
}

// TestChaosBlobCorruption submits concurrently while half of all blob
// writes are torn by a one-byte flip. Integrity-checked reads must
// detect every tampered blob (delete → miss → rebuild), so results
// stay bit-identical to the fault-free golden run.
func TestChaosBlobCorruption(t *testing.T) {
	scenarios := rca.Experiments()[:4]
	reference := referenceTexts(t, scenarios)
	installPlane(t, "artifact.put:corrupt@0.5", 7)

	store, err := rca.OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Session: storeSession(t, store), Artifacts: store, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, len(scenarios))
	for _, sc := range scenarios {
		body, err := rca.ScenarioToJSON(sc)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(name string, body []byte) {
			defer wg.Done()
			reply, status, err := postJob(ts.URL, body, true)
			if err != nil || status != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d, err %v", name, status, err)
				return
			}
			if reply.Outcome == nil || reply.Outcome.Text != reference[name] {
				errs <- fmt.Errorf("%s: outcome diverged under blob corruption", name)
			}
		}(sc.Name(), body)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDeadLetterSurfacesViaJobsAPI: a job whose every execution hits
// an injected worker.exec fault exhausts its attempt budget, lands in
// queue/failed, and surfaces as a terminal failed job — with its
// structured error and attempt count — through GET /v1/jobs/{id} and
// GET /v1/queue/{id}, plus the dead-letter and retry counters.
func TestDeadLetterSurfacesViaJobsAPI(t *testing.T) {
	installPlane(t, "worker.exec:eio", 1)
	store, err := rca.OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Session:     storeSession(t, store),
		Artifacts:   store,
		MaxAttempts: 2,
		RetryBase:   5 * time.Millisecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, _, err := srv.Enqueue([]byte(`{"experiment":"WSUBBUG"}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeQueue(ctx, "w1", nil, 10*time.Millisecond) }()

	q, err := store.Queue()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if _, failed := q.Failed(id); failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never dead-lettered under a 100% worker.exec fault")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	// GET /v1/jobs/{id} answers for the dead-lettered id even though it
	// never entered this daemon's in-process registry under that name.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var jr struct {
		State    string `json:"state"`
		Error    string `json:"error"`
		Attempts int    `json:"attempts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d, err %v", id, resp.StatusCode, err)
	}
	if jr.State != "failed" || jr.Error == "" || jr.Attempts != 2 {
		t.Fatalf("dead-lettered job rendered %+v; want failed with error and attempts=2", jr)
	}
	if !strings.Contains(jr.Error, "injected") {
		t.Fatalf("dead-letter error %q does not carry the injected cause", jr.Error)
	}

	// The queue-status view agrees.
	resp, err = http.Get(ts.URL + "/v1/queue/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var qs struct {
		Done   bool `json:"done"`
		Failed *struct {
			Error    string `json:"error"`
			Attempts int    `json:"attempts"`
		} `json:"failed"`
	}
	err = json.NewDecoder(resp.Body).Decode(&qs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !qs.Done || qs.Failed == nil || qs.Failed.Attempts != 2 {
		t.Fatalf("queue status %+v; want done with failure record", qs)
	}

	if v := metricValue(t, ts.URL, "rcad_jobs_dead_lettered_total"); v < 1 {
		t.Fatalf("rcad_jobs_dead_lettered_total = %d; want >= 1", v)
	}
	if v := metricValue(t, ts.URL, "rcad_job_retries_total"); v < 1 {
		t.Fatalf("rcad_job_retries_total = %d; want >= 1", v)
	}
	if v := metricValue(t, ts.URL, "rcad_fault_injected_total"); v < 2 {
		t.Fatalf("rcad_fault_injected_total = %d; want >= 2", v)
	}
}

// TestJobTimeoutFailsAttempt: a sleep fault longer than -job-timeout
// turns the attempt into ErrJobTimeout; with a budget of one attempt
// the job fails with a deadline error rather than hanging.
func TestJobTimeoutFailsAttempt(t *testing.T) {
	installPlane(t, "worker.exec:sleep@ms=250", 1)
	_, ts := newTestServer(t, serve.Config{
		JobTimeout:  50 * time.Millisecond,
		MaxAttempts: 1,
	})
	reply, status, err := postJob(ts.URL, []byte(`{"experiment":"WSUBBUG"}`), true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("submit: status %d, err %v", status, err)
	}
	if reply.State != "failed" {
		t.Fatalf("state = %q; want failed", reply.State)
	}
	if !strings.Contains(reply.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", reply.Error)
	}
}

// TestShutdownReleasesLease pins the graceful-shutdown contract for
// worker mode: canceling ServeQueue mid-job releases the queue lease
// immediately (no peer waits out the stale timeout) and leaves the job
// pending for a survivor.
func TestShutdownReleasesLease(t *testing.T) {
	dir := t.TempDir()
	store, err := rca.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv := serve.New(serve.Config{
		Session:   storeSession(t, store),
		Artifacts: store,
		RunHook:   func(string) { entered <- struct{}{}; <-gate },
	})

	id, _, err := srv.Enqueue([]byte(`{"experiment":"GOFFGRATCH"}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeQueue(ctx, "w1", nil, 10*time.Millisecond) }()
	<-entered // the job is claimed and executing

	leases := filepath.Join(dir, "queue", "leases")
	if entries, _ := os.ReadDir(leases); len(entries) != 1 {
		t.Fatalf("%d lease files while running; want 1", len(entries))
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("ServeQueue returned %v", err)
	}
	if entries, _ := os.ReadDir(leases); len(entries) != 0 {
		t.Fatalf("%d lease files after graceful shutdown; want 0 (lease must be released, not left to go stale)", len(entries))
	}
	q, err := store.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 1 || q.IsDone(id) {
		t.Fatalf("job after shutdown: pending=%d done=%v; want retained for a surviving worker", q.Pending(), q.IsDone(id))
	}
	close(gate)
	srv.Close()
}

// TestDegradedModeUnwritableStoreDir is the acceptance criterion: a
// daemon pointed at an uncreatable store directory (a regular file
// blocks the path — chmod is useless when tests run as root) must
// serve jobs in degraded mode with bit-identical results, report
// degraded on /healthz and raise the rcad_store_degraded gauge.
func TestDegradedModeUnwritableStoreDir(t *testing.T) {
	scenarios := rca.Experiments()[:1]
	reference := referenceTexts(t, scenarios)

	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("file, not dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := rca.OpenArtifactStore(filepath.Join(blocker, "store"))
	if err != nil {
		t.Fatalf("degraded open must not error: %v", err)
	}
	if !store.Degraded() {
		t.Fatal("store over an unusable directory opened healthy")
	}
	srv := serve.New(serve.Config{Session: storeSession(t, store), Artifacts: store})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := rca.ScenarioToJSON(scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	reply, status, err := postJob(ts.URL, body, true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("submit on degraded store: status %d, err %v", status, err)
	}
	if reply.Outcome == nil || reply.Outcome.Text != reference[scenarios[0].Name()] {
		t.Fatalf("degraded-mode outcome diverged from the healthy run:\n%s", outcomeText(reply))
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK       bool `json:"ok"`
		Degraded bool `json:"degraded"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !health.OK || !health.Degraded {
		t.Fatalf("healthz = %+v; want ok and degraded", health)
	}
	if v := metricValue(t, ts.URL, "rcad_store_degraded"); v != 1 {
		t.Fatalf("rcad_store_degraded = %d; want 1", v)
	}
}

// TestRetryAfterScalesWithBacklog (satellite): the 503 Retry-After
// hint grows with queue depth instead of the historical constant "1".
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestServer(t, serve.Config{
		QueueSize: 4,
		Workers:   1,
		RunHook:   func(string) { entered <- struct{}{}; <-gate },
	})
	scenario := func(i int) []byte {
		return fmt.Appendf(nil, `{"name":"ra%d","inject":["sub%d.v*=1.5"]}`, i, i)
	}
	if _, status, err := postJob(ts.URL, scenario(0), false); err != nil || status != http.StatusAccepted {
		t.Fatalf("first submit: status %d, err %v", status, err)
	}
	<-entered
	for i := 1; i <= 4; i++ { // fill the queue behind the gated worker
		if _, status, err := postJob(ts.URL, scenario(i), false); err != nil || status != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d, err %v", i, status, err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(string(scenario(5))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, want 503", resp.StatusCode)
	}
	// Four queued flights over one worker: 1 + 4/1 = 5 seconds.
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After = %q with a 4-deep queue and 1 worker; want \"5\"", ra)
	}
}
