package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/artifact"
)

// Worker mode: N rcad processes share one artifact store and drain a
// file-based job queue under it (pkggen-style disposable workers over
// content-addressed intermediates). Any daemon can enqueue (POST
// /v1/queue); every worker claims jobs via lock-file leases, preferring
// jobs whose buildKey rendezvous-hashes to it — so scenarios sharing a
// build land on the worker whose in-process caches are already hot —
// and stealing other workers' backlog when idle. Results are published
// as done markers AND as outcome artifacts, so any process on the
// store (worker or not) serves them warm.

// ErrNoArtifactStore rejects queue operations on a server without a
// configured artifact store.
var ErrNoArtifactStore = errors.New("serve: queue mode requires an artifact store (-store)")

// queueResult is the done-marker payload for a queued job.
type queueResult struct {
	Fingerprint string `json:"fingerprint"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
}

// jobQueue lazily opens the store's shared queue.
func (s *Server) jobQueue() (*artifact.Queue, error) {
	if s.artifacts == nil {
		return nil, ErrNoArtifactStore
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.q == nil {
		q, err := s.artifacts.Queue()
		if err != nil {
			return nil, err
		}
		// The queue's retry policy follows the server's: one -max-attempts
		// budget governs both in-process flight retries and cross-process
		// claim counting.
		q.MaxAttempts = s.maxAttempts
		q.BackoffBase = s.retryBase
		s.q = q
	}
	return s.q, nil
}

// queueEnvelope distinguishes queue payload kinds. A plain scenario
// document is the historical wire format; search requests travel
// kind-tagged as {"search": {...}} so old and new payloads coexist in
// one queue file set.
type queueEnvelope struct {
	Search json.RawMessage `json:"search"`
}

// Enqueue validates a queue payload — a plain scenario document or a
// kind-tagged {"search": {...}} request — and adds it to the shared
// queue, deduplicated by content. It returns the job's queue id and
// its buildKey affinity hash (scenarios and searches over the same
// base build land on the same warm worker).
func (s *Server) Enqueue(body []byte) (id, affinity string, err error) {
	var env queueEnvelope
	if jsonErr := json.Unmarshal(body, &env); jsonErr == nil && len(env.Search) > 0 {
		return s.enqueueSearch(env.Search)
	}
	sc, err := rca.ScenarioFromJSON(body)
	if err != nil {
		return "", "", err
	}
	keys, err := s.session.Keys(sc)
	if err != nil {
		return "", "", err
	}
	q, err := s.jobQueue()
	if err != nil {
		return "", "", err
	}
	kv := hashKeys(keys)
	if err := q.Enqueue(kv.Scenario, kv.Build, body); err != nil {
		return "", "", err
	}
	return kv.Scenario, kv.Build, nil
}

// enqueueSearch validates a search request and adds it, kind-tagged,
// to the shared queue. The queue id is the hash of the canonical
// request JSON (identical searches deduplicate); affinity follows the
// base scenario's buildKey so the worker with the hot build claims it.
func (s *Server) enqueueSearch(raw json.RawMessage) (id, affinity string, err error) {
	req, err := rca.SearchRequestFromJSON(raw)
	if err != nil {
		return "", "", err
	}
	base := req.Base
	if base == nil {
		base = rca.NewScenario("base", rca.ScenarioOptions{})
	}
	keys, err := s.session.Keys(base)
	if err != nil {
		return "", "", err
	}
	canonical, err := rca.SearchRequestToJSON(req)
	if err != nil {
		return "", "", err
	}
	q, err := s.jobQueue()
	if err != nil {
		return "", "", err
	}
	body, err := json.Marshal(queueEnvelope{Search: canonical})
	if err != nil {
		return "", "", err
	}
	id, affinity = hashKey("search|"+string(canonical)), hashKey(keys.Build)
	if err := q.Enqueue(id, affinity, body); err != nil {
		return "", "", err
	}
	return id, affinity, nil
}

// ServeQueue drains the store's shared queue until ctx is done: claim
// the best job (own buildKey affinity first, then steal), run it
// through the normal submit path — so in-flight dedup, the outcome
// stores and the cross-process scenario lease all apply — and publish
// the result marker. Idle polls are spaced by idle (default 200ms).
func (s *Server) ServeQueue(ctx context.Context, workerID string, peers []string, idle time.Duration) error {
	q, err := s.jobQueue()
	if err != nil {
		return err
	}
	if idle <= 0 {
		idle = 200 * time.Millisecond
	}
	if len(peers) == 0 {
		peers = []string{workerID}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		claimed, ok, err := q.Claim(workerID, peers)
		if err != nil {
			return err
		}
		if !ok {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(idle):
			}
			continue
		}
		s.runQueued(ctx, claimed)
	}
}

// runQueued executes one claimed queue job through the submit path.
func (s *Server) runQueued(ctx context.Context, c *artifact.Claimed) {
	finish := func(res queueResult) {
		data, err := json.Marshal(res)
		if err != nil {
			c.Release()
			return
		}
		_ = c.Done(data)
	}
	var env queueEnvelope
	if err := json.Unmarshal(c.Payload, &env); err == nil && len(env.Search) > 0 {
		s.runQueuedSearch(ctx, c, env.Search, finish)
		return
	}
	sc, err := rca.ScenarioFromJSON(c.Payload)
	if err != nil {
		// Malformed payloads are permanent failures: dead-letter them
		// immediately, retrying cannot fix the bytes.
		_ = c.Reject(fmt.Sprintf("bad scenario: %v", err))
		return
	}
	j, err := s.submit(sc)
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
		// Transient local saturation/shutdown: back into the queue for
		// this or another worker.
		c.Release()
		return
	}
	if err != nil {
		// Planner rejection (conflicting injections, unknown parameter):
		// permanent, straight to the dead-letter directory.
		_ = c.Reject(err.Error())
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		j.cancel()
		c.Release()
		return
	}
	state, _, _, _, jerr := j.snapshot()
	res := queueResult{Fingerprint: j.keys.Scenario, State: state}
	if jerr != nil {
		res.Error = jerr.Error()
	}
	if state == StateCanceled {
		// Canceled by shutdown, not by a client: leave it for a
		// surviving worker.
		c.Release()
		return
	}
	if state == StateFailed {
		// Failed after the in-process retry budget. Fail charges the
		// attempt and either schedules a backoff re-claim or, at the
		// cross-process budget, retires the job to queue/failed where
		// GET /v1/jobs/{id} surfaces it as terminal.
		_, _ = c.Fail(res.Error)
		return
	}
	finish(res)
}

// runQueuedSearch executes one claimed kind-tagged search through the
// normal startSearch path, so the node-evaluation artifacts and the
// shared-store incumbent bounds it publishes are visible to every
// worker immediately.
func (s *Server) runQueuedSearch(ctx context.Context, c *artifact.Claimed, raw json.RawMessage, finish func(queueResult)) {
	req, err := rca.SearchRequestFromJSON(raw)
	if err != nil {
		_ = c.Reject(fmt.Sprintf("bad search request: %v", err))
		return
	}
	j, err := s.startSearch(req)
	if errors.Is(err, ErrClosed) {
		c.Release()
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		j.abort()
		c.Release()
		return
	}
	j.mu.Lock()
	state, jerr := j.state, j.err
	j.mu.Unlock()
	if state == StateCanceled {
		// Shutdown, not a client decision: leave it for a survivor.
		c.Release()
		return
	}
	res := queueResult{Fingerprint: c.ID, State: state}
	if jerr != nil {
		res.Error = jerr.Error()
	}
	if state == StateFailed {
		_, _ = c.Fail(res.Error)
		return
	}
	finish(res)
}

// failedJSON is the wire rendering of a dead-letter record.
type failedJSON struct {
	Error    string    `json:"error"`
	Attempts int       `json:"attempts"`
	At       time.Time `json:"at"`
}

// queueState answers GET /v1/queue/{id}. Done reports a terminal
// state: completed with a result, or dead-lettered with a structured
// failure record.
type queueState struct {
	ID       string       `json:"id"`
	Done     bool         `json:"done"`
	Attempts int          `json:"attempts,omitempty"`
	Result   *queueResult `json:"result,omitempty"`
	Failed   *failedJSON  `json:"failed,omitempty"`
}

// queueStatus reports a queued job's completion state and result.
func (s *Server) queueStatus(id string) (queueState, error) {
	q, err := s.jobQueue()
	if err != nil {
		return queueState{}, err
	}
	st := queueState{ID: id, Attempts: q.Attempts(id)}
	if data, ok := q.Result(id); ok {
		st.Done = true
		var res queueResult
		if err := json.Unmarshal(data, &res); err == nil {
			st.Result = &res
		}
		return st, nil
	}
	if fj, ok := q.Failed(id); ok {
		st.Done = true
		st.Attempts = fj.Attempts
		st.Failed = &failedJSON{Error: fj.Error, Attempts: fj.Attempts, At: fj.At}
	}
	return st, nil
}
