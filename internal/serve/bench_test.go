package serve

import (
	"sync/atomic"
	"testing"
	"time"

	rca "github.com/climate-rca/rca"
)

// BenchmarkWarmRestartSixSpecs measures the artifact store's restart
// payoff: one daemon runs the six §6 experiments cold (full pipeline,
// outcomes flushed to a -store directory), then a second daemon on the
// same directory replays them warm (outcome blobs read back, zero
// pipeline executions). The coldms/warmms metric pair is what
// cmd/benchjson records into the BENCH_*.json snapshots.
func BenchmarkWarmRestartSixSpecs(b *testing.B) {
	specs := rca.Experiments()
	var coldTotal, warmTotal time.Duration
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		cold, execs := benchSixSpecs(b, dir, specs)
		if execs != len(specs) {
			b.Fatalf("cold run: %d executions, want %d", execs, len(specs))
		}
		warm, execs := benchSixSpecs(b, dir, specs)
		if execs != 0 {
			b.Fatalf("warm run: %d executions, want 0 (outcomes should come from the store)", execs)
		}
		coldTotal += cold
		warmTotal += warm
	}
	ms := func(d time.Duration) float64 {
		return float64(d) / float64(time.Millisecond) / float64(b.N)
	}
	b.ReportMetric(ms(coldTotal), "coldms")
	b.ReportMetric(ms(warmTotal), "warmms")
}

// benchSixSpecs boots a fresh daemon over the artifact store at dir,
// runs the six experiments through the normal submit path, closes the
// daemon (flushing outcome writes) and reports wall time plus how many
// underlying pipeline executions happened.
func benchSixSpecs(b *testing.B, dir string, specs []rca.Scenario) (time.Duration, int) {
	b.Helper()
	store, err := rca.OpenArtifactStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	session := rca.NewSession(rca.CorpusConfig{AuxModules: 40, Seed: 2},
		rca.WithEnsembleSize(30), rca.WithExpSize(8), rca.WithArtifacts(store))
	var execs atomic.Int64
	srv := New(Config{
		Session:   session,
		Workers:   len(specs),
		Artifacts: store,
		RunHook:   func(string) { execs.Add(1) },
	})
	start := time.Now()
	jobs := make([]*job, 0, len(specs))
	for _, sc := range specs {
		j, err := srv.submit(sc)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.done
		if _, _, _, _, jerr := j.snapshot(); jerr != nil {
			b.Fatal(jerr)
		}
	}
	elapsed := time.Since(start)
	srv.Close() // flushes queued outcome writes to the store
	return elapsed, int(execs.Load())
}
