package serve

import (
	"container/list"
	"sync"
	"time"
)

// Outcome is the service's rendered result record: what GET
// /v1/outcomes/{fingerprint} returns and what completed jobs carry.
// Text is the rca.FormatOutcome report — the byte-identical artifact
// the e2e golden harness pins against the in-process pipeline.
type Outcome struct {
	Fingerprint string    `json:"fingerprint"`
	Name        string    `json:"name"`
	FailureRate float64   `json:"failureRate"`
	BugLocated  bool      `json:"bugLocated"`
	Text        string    `json:"text"`
	CompletedAt time.Time `json:"completedAt"`
}

// store is an LRU cache of completed outcomes keyed by scenario
// fingerprint. Jobs whose fingerprint hits the store complete without
// queueing; evicted outcomes are simply recomputed (the Session's own
// stage caches make that cheap while the session lives).
type store struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // insertion key → element holding *storeEntry
}

// storeEntry carries the insertion key alongside the record so
// eviction is self-contained (the record's Fingerprint field is not
// trusted to equal the key).
type storeEntry struct {
	key string
	out *Outcome
}

func newStore(capacity int) *store {
	return &store{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the outcome for a fingerprint, bumping its recency.
func (s *store) get(key string) (*Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).out, true
}

// put inserts or refreshes an outcome, evicting the least recently
// used entry beyond capacity.
func (s *store) put(key string, out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*storeEntry).out = out
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&storeEntry{key: key, out: out})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).key)
	}
}

// len returns the number of cached outcomes.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
