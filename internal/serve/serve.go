// Package serve implements rcad, the concurrent root-cause-analysis
// service: one long-lived rca.Session per corpus configuration behind
// an HTTP/JSON API. The paper's pipeline is expensive and most of it
// is shared — corpus builds, the control-ensemble ECT fingerprint,
// compiled metagraphs — so the service's job is to make N clients pay
// for it at most once:
//
//   - a bounded job queue feeds a fixed worker pool; submissions
//     beyond the bound are rejected with 503 (backpressure, not
//     unbounded memory);
//   - submissions are deduplicated in flight (singleflight) on the
//     Session's layered scenario fingerprints: clients submitting an
//     identical scenario while one is queued or running subscribe to
//     the same execution;
//   - completed outcomes land in an LRU store keyed by the same
//     fingerprint, so repeat submissions don't even queue;
//   - every job cancels independently (DELETE, or a waiting client
//     disconnecting). The shared execution is aborted only when its
//     last subscriber leaves.
//
// Determinism is untouched: the service renders results with
// rca.FormatOutcome over the same Session API the CLI uses, so the
// bytes a client receives are identical to an in-process run.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/fault"
)

// Config sizes a Server.
type Config struct {
	// Session is the compile-once pipeline the service fronts
	// (required). Its caches are the second deduplication layer behind
	// the in-flight singleflight.
	Session *rca.Session
	// QueueSize bounds executions waiting for a worker (default 64).
	// Submissions beyond it are rejected with ErrQueueFull.
	QueueSize int
	// Workers is the number of concurrent pipeline executions
	// (default 2; each execution parallelizes internally via the
	// session's WithParallelism pool).
	Workers int
	// StoreSize bounds the LRU outcome store (default 128).
	StoreSize int
	// RunHook, when set, is called with the scenario fingerprint once
	// per actual underlying pipeline execution — after dedup, before
	// the run. Tests use it to count executions; it must return
	// quickly unless the test wants to hold the execution window open.
	RunHook func(fingerprint string)
	// JobsCap bounds the job registry (default 4096): once exceeded,
	// the oldest *terminal* jobs are forgotten (their outcomes remain
	// reachable by fingerprint through the store). Live jobs are never
	// evicted.
	JobsCap int
	// Artifacts, when set, is the durable third cache layer behind the
	// in-flight dedup and the in-memory LRU: completed outcomes are
	// persisted under their scenario fingerprint (so a restarted
	// daemon serves them without re-running the pipeline), executions
	// take a cross-process scenario lease (so N daemons sharing the
	// store never run the same investigation concurrently), and the
	// session's corpus/program/metagraph artifacts warm-start from the
	// same directory when the session was built WithArtifacts.
	Artifacts *rca.ArtifactStore
	// FlushTimeout bounds how long Close waits for outcome writes
	// still queued for the artifact store (default 5s). Outcomes are
	// persisted asynchronously so job completion latency never
	// includes disk I/O; the flusher drains on shutdown within this
	// deadline.
	FlushTimeout time.Duration
	// MaxAttempts is the per-job execution budget (default 3): a
	// flight whose failure is transient — an injected fault or a job
	// deadline — retries with exponential backoff up to this many
	// attempts, and the shared work queue dead-letters jobs after the
	// same budget.
	MaxAttempts int
	// JobTimeout bounds one pipeline execution attempt (0 = none). A
	// timed-out attempt counts as transient and retries under the
	// MaxAttempts budget.
	JobTimeout time.Duration
	// RetryBase is the first retry's backoff delay (default 250ms),
	// doubling per attempt with deterministic per-fingerprint jitter.
	// It also seeds the shared queue's backoff policy.
	RetryBase time.Duration
	// RetryMax caps the doubled backoff delay (default 30s, the shared
	// queue's cap).
	RetryMax time.Duration
}

// ErrJobTimeout marks an execution attempt aborted by Config.JobTimeout
// (transient: it retries under the attempt budget).
var ErrJobTimeout = errors.New("serve: job deadline exceeded")

// Typed submission failures the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the job queue is at
	// capacity (HTTP 503).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed rejects a submission during shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server closed")
)

// keyView is the hashed form of a scenario's layered fingerprints.
// Raw keys embed the whole corpus configuration and injection IDs;
// hashes make them URL- and log-safe while preserving the sharing
// structure (equal hash ⇔ equal layer).
type keyView struct {
	Source   string `json:"source"`
	Build    string `json:"build"`
	Scenario string `json:"scenario"`
}

func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

func hashKeys(k rca.ScenarioKeys) keyView {
	return keyView{Source: hashKey(k.Source), Build: hashKey(k.Build), Scenario: hashKey(k.Scenario)}
}

// Server is the RCA service: job registry, in-flight dedup table,
// bounded queue, worker pool and outcome store around one Session.
type Server struct {
	session *rca.Session
	store   *store
	hook    func(string)
	queue   chan *flight
	base    context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	m       metrics

	// Durable outcome layer (nil without Config.Artifacts). Outcome
	// writes flow through flushCh so completion latency excludes disk
	// I/O; each write carries the scenario lease it must release once
	// the blob is on disk, preserving cross-process singleflight.
	artifacts    *rca.ArtifactStore
	flushCh      chan flushReq
	flushDone    chan struct{}
	flushTimeout time.Duration

	// Shared work queue (worker mode), opened lazily on first use.
	qmu sync.Mutex
	q   *artifact.Queue

	jobsCap     int
	workers     int
	maxAttempts int
	jobTimeout  time.Duration
	retryBase   time.Duration
	retryMax    time.Duration

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[string]*job    // job id → job
	jobOrder []string           // insertion order, for registry pruning
	flights  map[string]*flight // scenario fingerprint hash → in-flight execution

	// Table 1 requests go through the same singleflight discipline as
	// jobs: identical concurrent requests share one execution and the
	// semaphore serializes the heavy study instead of letting N
	// handler goroutines bypass the worker pool.
	t1mu  sync.Mutex
	t1    map[string]*t1flight
	t1sem chan struct{}

	// Scenario searches: bounded registry + one-at-a-time semaphore
	// (the engine parallelizes internally; serializing whole searches
	// keeps them from starving the job worker pool).
	nextSearchID int64
	smu          sync.Mutex
	searches     map[string]*searchJob
	searchOrder  []string
	searchSem    chan struct{}
}

// t1flight is one deduplicated Table 1 execution; waiters are
// refcounted like job flights, so the study is aborted only when the
// last interested client disconnects.
type t1flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	subs   int
	done   chan struct{}
	rows   []rca.Table1Row
	err    error
}

// New builds a Server over cfg.Session and starts its worker pool.
// Call Close to stop it.
func New(cfg Config) *Server {
	if cfg.Session == nil {
		panic("serve: Config.Session is required")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.StoreSize <= 0 {
		cfg.StoreSize = 128
	}
	if cfg.JobsCap <= 0 {
		cfg.JobsCap = 4096
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = artifact.DefaultMaxAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = artifact.DefaultBackoffBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = artifact.DefaultBackoffMax
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		session:      cfg.Session,
		store:        newStore(cfg.StoreSize),
		hook:         cfg.RunHook,
		queue:        make(chan *flight, cfg.QueueSize),
		base:         base,
		stop:         stop,
		artifacts:    cfg.Artifacts,
		flushTimeout: cfg.FlushTimeout,
		jobsCap:      cfg.JobsCap,
		workers:      cfg.Workers,
		maxAttempts:  cfg.MaxAttempts,
		jobTimeout:   cfg.JobTimeout,
		retryBase:    cfg.RetryBase,
		retryMax:     cfg.RetryMax,
		jobs:         make(map[string]*job),
		flights:      make(map[string]*flight),
		t1:           make(map[string]*t1flight),
		t1sem:        make(chan struct{}, 1),
		searches:     make(map[string]*searchJob),
		searchSem:    make(chan struct{}, 1),
	}
	if s.artifacts != nil {
		s.flushCh = make(chan flushReq, 256)
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the worker pool, aborting in-flight executions; queued
// and running jobs finish canceled. Outcome writes already queued for
// the artifact store are flushed to disk before returning, bounded by
// the configured FlushTimeout — a completed investigation survives a
// graceful shutdown even if its disk write had not landed yet. Safe
// to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	if s.flushCh != nil {
		// Workers are stopped, so nothing enqueues anymore; drain what
		// remains within the deadline. On timeout the writes are
		// abandoned — their scenario leases go stale and another
		// process steals them, degrading to a cold re-run, never a
		// hang.
		close(s.flushCh)
		select {
		case <-s.flushDone:
		case <-time.After(s.flushTimeout):
		}
	}
}

// flushReq is one asynchronous outcome write; release (if non-nil) is
// the scenario lease to drop once the blob is durable.
type flushReq struct {
	key     string
	data    []byte
	release func()
}

// flusher serializes outcome writes to the artifact store. It runs
// from New until Close drains it; releasing each write's scenario
// lease only after the Put keeps cross-process singleflight airtight
// (a peer that wins the next lease always sees the stored outcome).
func (s *Server) flusher() {
	defer close(s.flushDone)
	for req := range s.flushCh {
		_ = s.artifacts.Put(artifact.ClassOutcome, req.key, req.data)
		if req.release != nil {
			req.release()
		}
	}
}

// submit registers a job for a scenario: served from the outcome
// store, attached to an identical in-flight execution, or enqueued as
// a new one. It returns ErrQueueFull/ErrClosed under backpressure.
func (s *Server) submit(sc rca.Scenario) (*job, error) {
	keys, err := s.session.Keys(sc)
	if err != nil {
		return nil, err
	}
	kv := hashKeys(keys)

	// Disk prefetch happens outside s.mu (it is file I/O): a warm
	// artifact store lets a freshly restarted daemon complete the job
	// without queueing anything, exactly like an in-memory store hit.
	var disk *Outcome
	if s.artifacts != nil {
		if data, ok := s.artifacts.Get(artifact.ClassOutcome, kv.Scenario); ok {
			if o, err := decodeOutcome(data); err == nil {
				disk = o
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.jobsRejected.Add(1)
		return nil, ErrClosed
	}

	// The in-memory LRU wins over the disk copy (it is the same
	// outcome); a disk-only hit is promoted into the LRU.
	if _, ok := s.store.get(kv.Scenario); !ok && disk != nil {
		s.store.put(kv.Scenario, disk)
	}

	// Whole-outcome sharing: a stored outcome completes the job
	// without queueing anything.
	if out, ok := s.store.get(kv.Scenario); ok {
		j := newJob(s.newJobID(), sc.Name(), kv, nil, s)
		j.finish(StateDone, out, nil)
		s.registerJob(j)
		s.m.jobsSubmitted.Add(1)
		s.m.jobsFromStore.Add(1)
		s.m.jobsCompleted.Add(1)
		return j, nil
	}

	// In-flight dedup: identical scenarios share one execution. A
	// flight whose last subscriber already canceled is dead (its
	// context is canceled) even though a worker has not reaped it yet;
	// joining it would spuriously cancel the new job, so it is
	// replaced instead. subscribe re-checks under the flight's own
	// lock, closing the race with a concurrent last-subscriber cancel.
	if fl, ok := s.flights[kv.Scenario]; ok {
		j := newJob(s.newJobID(), sc.Name(), kv, fl, s)
		if fl.subscribe(j) {
			s.registerJob(j)
			s.m.jobsSubmitted.Add(1)
			s.m.jobsDeduped.Add(1)
			return j, nil
		}
	}

	// New execution — subject to the queue bound.
	fl := newFlight(s.base, kv.Scenario, sc)
	select {
	case s.queue <- fl:
	default:
		fl.cancel()
		s.m.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.flights[kv.Scenario] = fl
	j := newJob(s.newJobID(), sc.Name(), kv, fl, s)
	fl.subscribe(j)
	s.registerJob(j)
	s.m.jobsSubmitted.Add(1)
	return j, nil
}

func (s *Server) newJobID() string {
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

// registerJob records a job (caller holds s.mu), pruning the oldest
// terminal jobs beyond the registry cap. Completed outcomes stay
// reachable by fingerprint through the store; only the per-job view
// ages out. Live jobs are never evicted.
func (s *Server) registerJob(j *job) {
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.jobsCap {
		return
	}
	keep := make([]string, 0, len(s.jobs))
	for _, id := range s.jobOrder {
		old, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.jobsCap && old.isTerminal() {
			delete(s.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	s.jobOrder = keep
}

// jobByID looks a job up in the registry.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker drains the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case fl := <-s.queue:
			s.runFlight(fl)
		case <-s.base.Done():
			s.drain()
			return
		}
	}
}

// drain cancels whatever is still queued at shutdown (exactly one
// worker wins each flight; runFlight completes it as canceled).
func (s *Server) drain() {
	for {
		select {
		case fl := <-s.queue:
			s.runFlight(fl)
		default:
			return
		}
	}
}

// runFlight executes one deduplicated investigation. The flight's
// context — alive while any subscriber remains — drives cancellation;
// stage progress fans out to every subscribed job.
func (s *Server) runFlight(fl *flight) {
	if err := fl.ctx.Err(); err != nil {
		// Every subscriber canceled (or the server closed) while the
		// flight was still queued: nothing ran, nothing to store.
		s.m.flightsCanceled.Add(1)
		s.finishFlight(fl, nil, rca.ErrCanceled)
		return
	}

	// Cross-process singleflight: with a shared artifact store, take
	// the scenario's lease before running. A peer daemon holding it is
	// running the same investigation — waiting, then re-checking the
	// store, turns this flight into a warm read instead of a duplicate
	// execution. The lease travels with the outcome write and is
	// released only after the blob is durable.
	var release func()
	if s.artifacts != nil {
		rel, err := s.artifacts.Lock(fl.ctx, "scenario-"+fl.key)
		if err != nil {
			s.m.flightsCanceled.Add(1)
			s.finishFlight(fl, nil, rca.ErrCanceled)
			return
		}
		release = rel
		if data, ok := s.artifacts.Get(artifact.ClassOutcome, fl.key); ok {
			if out, derr := decodeOutcome(data); derr == nil {
				release()
				s.m.jobsFromStore.Add(1)
				s.finishFlight(fl, out, nil)
				return
			}
		}
	}

	fl.start()
	// Execute with a bounded retry budget: failures classified as
	// transient — injected faults from the chaos plane, per-attempt
	// deadline hits — back off (exponential, deterministic jitter) and
	// re-run, as long as a subscriber is still interested. Anything
	// else (pipeline errors, client cancellation) surfaces immediately.
	var out *rca.Outcome
	var err error
	for attempt := 1; ; attempt++ {
		out, err = s.runOnce(fl)
		if err == nil || !transientErr(err) || attempt >= s.maxAttempts || fl.ctx.Err() != nil {
			break
		}
		s.m.jobRetries.Add(1)
		select {
		case <-time.After(s.retryDelay(fl.key, attempt)):
		case <-fl.ctx.Done():
		}
	}
	if err == nil {
		o := &Outcome{
			Fingerprint: fl.key,
			Name:        out.Name,
			FailureRate: out.FailureRate,
			BugLocated:  out.BugLocated,
			Text:        rca.FormatOutcome(out),
			CompletedAt: time.Now().UTC(),
		}
		s.persistOutcome(fl.key, o, release)
		s.finishFlight(fl, o, nil)
		return
	}
	if release != nil {
		release()
	}
	if errors.Is(err, rca.ErrCanceled) {
		s.m.flightsCanceled.Add(1)
	}
	s.finishFlight(fl, nil, err)
}

// runOnce performs a single execution attempt of a flight under the
// per-attempt deadline (Config.JobTimeout) and the worker.exec fault
// point. A deadline hit is converted to ErrJobTimeout — distinguished
// from client cancellation by the flight context staying alive.
func (s *Server) runOnce(fl *flight) (*rca.Outcome, error) {
	runCtx, cancel := fl.ctx, func() {}
	if s.jobTimeout > 0 {
		runCtx, cancel = context.WithTimeout(fl.ctx, s.jobTimeout)
	}
	defer cancel()
	if err := fault.Hook(runCtx, fault.PointWorkerExec); err != nil {
		return nil, err
	}
	// A sleep-action fault may have consumed the whole deadline before
	// the pipeline even starts; classify that as a timeout, not a run.
	if fl.ctx.Err() == nil && runCtx.Err() != nil {
		return nil, fmt.Errorf("%w (%v budget)", ErrJobTimeout, s.jobTimeout)
	}
	s.m.executions.Add(1)
	if s.hook != nil {
		s.hook(fl.key)
	}
	ctx := rca.WithProgress(runCtx, fl.setStage)
	out, err := s.session.Run(ctx, fl.scenario)
	if err != nil && fl.ctx.Err() == nil && runCtx.Err() != nil {
		// The attempt's own deadline, not the client, killed the run.
		// %v (not %w) around the inner error keeps ErrCanceled out of
		// the chain so finishFlight reports failed, not canceled.
		err = fmt.Errorf("%w (%v budget): %v", ErrJobTimeout, s.jobTimeout, err)
	}
	return out, err
}

// transientErr classifies failures worth retrying: injected chaos
// faults and per-attempt deadline hits.
func transientErr(err error) bool {
	return fault.IsInjected(err) || errors.Is(err, ErrJobTimeout)
}

// retryDelay is the backoff before re-running a flight: RetryBase
// doubled per attempt, capped at RetryMax, plus a jitter that is a
// pure function of (fingerprint, attempt), so seeded chaos runs
// replay the same schedule. It delegates to the queue's shared
// artifact.Backoff — one schedule for both retry planes (a local
// duplicate used to hardcode the 30s cap, ignoring any configured
// maximum).
func (s *Server) retryDelay(key string, attempt int) time.Duration {
	return artifact.Backoff(key, attempt, s.retryBase, s.retryMax)
}

// persistOutcome queues an asynchronous durable write of a completed
// outcome, handing the scenario lease to the flusher so it is dropped
// only once the blob is on disk. Without a store it just releases.
func (s *Server) persistOutcome(key string, out *Outcome, release func()) {
	if s.artifacts == nil {
		if release != nil {
			release()
		}
		return
	}
	data, err := encodeOutcome(out)
	if err != nil {
		if release != nil {
			release()
		}
		return
	}
	s.flushCh <- flushReq{key: key, data: data, release: release}
}

// finishFlight publishes a flight's result: the outcome (if any) goes
// to the LRU store and the flight leaves the dedup table under one
// lock — a submission always sees either the in-flight entry or the
// stored outcome, never a gap — then the remaining subscribers finish.
func (s *Server) finishFlight(fl *flight, out *Outcome, err error) {
	s.mu.Lock()
	if out != nil {
		s.store.put(fl.key, out)
	}
	// Identity check: a dead flight may already have been replaced in
	// the table by a fresh execution of the same scenario.
	if cur, ok := s.flights[fl.key]; ok && cur == fl {
		delete(s.flights, fl.key)
	}
	s.mu.Unlock()

	for _, j := range fl.take() {
		switch {
		case out != nil:
			if j.finish(StateDone, out, nil) {
				s.m.jobsCompleted.Add(1)
			}
		case errors.Is(err, rca.ErrCanceled):
			if j.finish(StateCanceled, nil, err) {
				s.m.jobsCanceled.Add(1)
			}
		default:
			if j.finish(StateFailed, nil, err) {
				s.m.jobsFailed.Add(1)
			}
		}
	}
}

// inflight counts flights queued or running.
func (s *Server) inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flights)
}

// table1Flight joins (or starts) the deduplicated execution for one
// parameter set. A dead flight — every waiter left, context canceled,
// goroutine not yet reaped — is replaced, not joined; the last-out
// cancel in table1Leave happens under t1mu, so the liveness check here
// is race-free.
func (s *Server) table1Flight(key string, setup rca.Table1Setup) (*t1flight, error) {
	s.t1mu.Lock()
	defer s.t1mu.Unlock()
	if fl, ok := s.t1[key]; ok && fl.ctx.Err() == nil {
		fl.subs++
		return fl, nil
	}
	// New execution: the shutdown check and the waitgroup registration
	// share s.mu with Close, so Close cannot observe a zero counter
	// between them (sync.WaitGroup forbids Add racing Wait).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	ctx, cancel := context.WithCancel(s.base)
	fl := &t1flight{ctx: ctx, cancel: cancel, subs: 1, done: make(chan struct{})}
	s.t1[key] = fl
	go func() {
		defer s.wg.Done()
		select {
		case s.t1sem <- struct{}{}:
			fl.rows, fl.err = s.session.Table1(ctx, setup)
			<-s.t1sem
		case <-ctx.Done():
			fl.err = rca.ErrCanceled
		}
		s.t1mu.Lock()
		if cur, ok := s.t1[key]; ok && cur == fl {
			delete(s.t1, key)
		}
		s.t1mu.Unlock()
		close(fl.done)
	}()
	return fl, nil
}

// table1Leave drops one waiter; the last one out aborts the study
// (under t1mu, so a concurrent join cannot slip in between).
func (s *Server) table1Leave(fl *t1flight) {
	s.t1mu.Lock()
	defer s.t1mu.Unlock()
	fl.subs--
	if fl.subs == 0 {
		fl.cancel()
	}
}
