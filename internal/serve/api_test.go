package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/serve"
)

// newTestServer builds a small service for API-shape tests.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Session == nil {
		cfg.Session = rca.NewSession(rca.CorpusConfig{AuxModules: 10, Seed: 5},
			rca.WithEnsembleSize(8), rca.WithExpSize(3))
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func TestSubmitRejectsBadScenarios(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name, body string
	}{
		{"garbage", "not json"},
		{"missing name", `{"inject":["prng=mt"]}`},
		{"unknown experiment", `{"experiment":"NOPE"}`},
		{"experiment with inject", `{"experiment":"AVX2","inject":["prng=mt"]}`},
		{"bad injection", `{"name":"X","inject":["wat"]}`},
		{"bad patch kind", `{"name":"X","inject":[{"kind":"wat","subprogram":"s","var":"v"}]}`},
		{"conflicting injections", `{"name":"X","inject":["prng=mt","prng=mt"]}`},
		{"unknown parameter", `{"name":"X","inject":["param:bogus=1"]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reply, status, err := postJob(ts.URL, []byte(tc.body), false)
			if err != nil {
				t.Fatal(err)
			}
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (reply %+v)", status, reply)
			}
			if reply.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
}

func TestQueueFullRejectsWith503(t *testing.T) {
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestServer(t, serve.Config{
		QueueSize: 1,
		Workers:   1,
		RunHook:   func(string) { entered <- struct{}{}; <-gate },
	})

	scenario := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"name":"q%d","inject":["sub%d.v*=1.5"]}`, i, i))
	}
	// First submission occupies the worker (held by the gate)…
	if _, status, err := postJob(ts.URL, scenario(0), false); err != nil || status != http.StatusAccepted {
		t.Fatalf("first submit: status %d, err %v", status, err)
	}
	<-entered
	// …second fills the queue's single slot…
	if _, status, err := postJob(ts.URL, scenario(1), false); err != nil || status != http.StatusAccepted {
		t.Fatalf("second submit: status %d, err %v", status, err)
	}
	// …third bounces with 503 + Retry-After.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(scenario(2))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Identical resubmission of a queued scenario still dedups instead
	// of bouncing: backpressure applies to new work only.
	if _, status, err := postJob(ts.URL, scenario(1), false); err != nil || status != http.StatusAccepted {
		t.Fatalf("dedup submit during backpressure: status %d, err %v", status, err)
	}
}

func TestUnknownJobAndOutcome404(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/outcomes/deadbeef"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	for _, metric := range []string{
		"rcad_jobs_submitted_total", "rcad_jobs_deduped_total",
		"rcad_jobs_from_store_total", "rcad_pipeline_executions_total",
		"rcad_queue_depth", "rcad_outcome_store_size", "rcad_flights_inflight",
		"rcad_compile_cache_hits_total", "rcad_compile_cache_misses_total",
		"rcad_artifact_store_hits_total", "rcad_artifact_store_misses_total",
		"rcad_artifact_store_evictions_total", "rcad_artifact_store_bytes",
		"rcad_fault_injected_total", "rcad_job_retries_total",
		"rcad_jobs_dead_lettered_total", "rcad_store_degraded",
		"rcad_lasso_fits_total", "rcad_lasso_fit_iterations_total",
	} {
		metricValue(t, ts.URL, metric) // fails the test if absent
	}
	// Every job series carries the session's engine label, and the
	// lasso series carry the session's solver label too.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `rcad_jobs_submitted_total{engine="bytecode"}`) {
		t.Fatalf("engine label missing from job counters:\n%s", body)
	}
	if !strings.Contains(string(body), `rcad_lasso_fit_iterations_total{engine="bytecode",solver="cd"}`) {
		t.Fatalf("solver label missing from lasso counters:\n%s", body)
	}
}

// TestMetricsCompileCacheCounts pins the compile-cache observability:
// after one executed job, the session has compiled at least one
// program (misses >= 1) and reused it across the scenario's
// integrations (hits > misses).
func TestMetricsCompileCacheCounts(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"experiment":"WSUBBUG"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status %d", resp.StatusCode)
	}
	misses := metricValue(t, ts.URL, "rcad_compile_cache_misses_total")
	hits := metricValue(t, ts.URL, "rcad_compile_cache_hits_total")
	if hits < 1 {
		t.Fatalf("compile cache hits = %d, want >= 1 (every integration after the first reuses the program)", hits)
	}
	// A process-global cache may serve this session's sources without a
	// fresh compile (misses can be 0), but reuse must dominate.
	if misses > hits {
		t.Fatalf("compile cache misses = %d > hits = %d: compiled programs not reused", misses, hits)
	}
}

// TestMetricsLassoCounts pins the lasso observability: after one
// executed job whose selection stage goes through the §3 lasso
// (GOFFGRATCH's first-step diff is inconclusive), the session has run
// at least one fit and its iterations are accounted.
func TestMetricsLassoCounts(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"experiment":"GOFFGRATCH"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status %d", resp.StatusCode)
	}
	fits := metricValue(t, ts.URL, "rcad_lasso_fits_total")
	iters := metricValue(t, ts.URL, "rcad_lasso_fit_iterations_total")
	if fits < 1 {
		t.Fatalf("lasso fits = %d, want >= 1 (bisection probes the lambda path)", fits)
	}
	if iters < fits {
		t.Fatalf("lasso iterations = %d < fits = %d: iterations not accounted", iters, fits)
	}
}

func TestTable1BadParams(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/v1/table1?topk=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
