package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	rca "github.com/climate-rca/rca"
	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/fault"
)

// maxScenarioBytes bounds a POST /v1/jobs body.
const maxScenarioBytes = 1 << 20

// jobJSON is the wire rendering of a job.
type jobJSON struct {
	ID          string       `json:"id"`
	Name        string       `json:"name"`
	Fingerprint string       `json:"fingerprint"`
	Keys        keyView      `json:"keys"`
	State       State        `json:"state"`
	Stage       rca.Stage    `json:"stage,omitempty"`
	Events      []StageEvent `json:"events,omitempty"`
	Outcome     *Outcome     `json:"outcome,omitempty"`
	Error       string       `json:"error,omitempty"`
	Attempts    int          `json:"attempts,omitempty"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                  submit a scenario (wire JSON body);
//	                                 ?wait=1 blocks until the job ends
//	                                 and ties the job to the request —
//	                                 disconnecting cancels it
//	GET    /v1/jobs/{id}             job state + staged progress;
//	                                 ?wait=1 blocks (without adopting)
//	DELETE /v1/jobs/{id}             cancel a job (shared work survives
//	                                 while other subscribers remain)
//	GET    /v1/outcomes/{fingerprint} completed outcome from the store
//	POST   /v1/queue                 enqueue a scenario on the shared
//	                                 artifact-store queue (worker mode);
//	                                 503 without a -store
//	GET    /v1/queue/{id}            queued job completion + result
//	POST   /v1/searches              start a branch-and-bound scenario
//	                                 search (search request JSON body);
//	                                 ?wait=1 blocks until it ends and
//	                                 ties the search to the request —
//	                                 disconnecting aborts it
//	GET    /v1/searches/{id}         search state, progress counters,
//	                                 retained events, and result;
//	                                 ?wait=1 blocks (without adopting)
//	GET    /v1/table1                the §6.5 selective-FMA study
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/outcomes/{fingerprint}", s.handleOutcome)
	mux.HandleFunc("POST /v1/queue", s.handleEnqueue)
	mux.HandleFunc("GET /v1/queue/{id}", s.handleQueueStatus)
	mux.HandleFunc("POST /v1/searches", s.handleSearchSubmit)
	mux.HandleFunc("GET /v1/searches/{id}", s.handleSearch)
	mux.HandleFunc("GET /v1/table1", s.handleTable1)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func renderJob(j *job) jobJSON {
	state, stage, events, out, err := j.snapshot()
	jj := jobJSON{
		ID:          j.id,
		Name:        j.name,
		Fingerprint: j.keys.Scenario,
		Keys:        j.keys,
		State:       state,
		Stage:       stage,
		Events:      events,
		Outcome:     out,
	}
	if err != nil {
		jj.Error = err.Error()
	}
	return jj
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxScenarioBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "scenario body over %d bytes", maxScenarioBytes)
		return
	}
	sc, err := rca.ScenarioFromJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.submit(sc)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		// Scenario rejected by the planner (conflicting injections,
		// unknown subprogram, unknown parameter).
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if !boolParam(r, "wait") {
		writeJSON(w, http.StatusAccepted, renderJob(j))
		return
	}
	// A waiting submitter owns its job: disconnecting cancels it (and
	// aborts the shared execution only if no other job subscribes).
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, renderJob(j))
	case <-r.Context().Done():
		j.cancel()
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		// Not in the in-process registry: a dead-lettered queue job is
		// still addressable here, surfacing as a terminal failed job
		// with its structured error payload.
		if fj, found := s.deadLettered(r.PathValue("id")); found {
			writeJSON(w, http.StatusOK, jobJSON{
				ID:          fj.ID,
				Fingerprint: fj.ID,
				State:       StateFailed,
				Error:       fj.Error,
				Attempts:    fj.Attempts,
			})
			return
		}
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if boolParam(r, "wait") {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return // observer disconnect never cancels the job
		}
	}
	writeJSON(w, http.StatusOK, renderJob(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, renderJob(j))
}

func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	out, ok := s.store.get(r.PathValue("fingerprint"))
	if !ok {
		writeError(w, http.StatusNotFound, "no stored outcome for this fingerprint")
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// queuedJSON acknowledges a queue submission.
type queuedJSON struct {
	ID       string `json:"id"`
	Affinity string `json:"affinity"`
}

func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxScenarioBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "scenario body over %d bytes", maxScenarioBytes)
		return
	}
	id, affinity, err := s.Enqueue(body)
	switch {
	case errors.Is(err, ErrNoArtifactStore):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, queuedJSON{ID: id, Affinity: affinity})
}

func (s *Server) handleQueueStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.queueStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxScenarioBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "search body over %d bytes", maxScenarioBytes)
		return
	}
	req, err := rca.SearchRequestFromJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.startSearch(req)
	if errors.Is(err, ErrClosed) {
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	if !boolParam(r, "wait") {
		writeJSON(w, http.StatusAccepted, renderSearch(j))
		return
	}
	// A waiting submitter owns its search: disconnecting aborts it.
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, renderSearch(j))
	case <-r.Context().Done():
		j.abort()
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	j, ok := s.searchByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such search")
		return
	}
	if boolParam(r, "wait") {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return // observer disconnect never cancels the search
		}
	}
	writeJSON(w, http.StatusOK, renderSearch(j))
}

// table1JSON is the wire rendering of the selective-FMA study.
type table1JSON struct {
	Rows []rca.Table1Row `json:"rows"`
	Text string          `json:"text"`
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	var setup rca.Table1Setup
	var err error
	if setup.EnsembleSize, err = intParam(r, "ensemble", 0); err == nil {
		if setup.ExpSize, err = intParam(r, "runs", 0); err == nil {
			if setup.TopK, err = intParam(r, "topk", 0); err == nil {
				setup.RandomSamples, err = intParam(r, "random", 0)
			}
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := fmt.Sprintf("e=%d;r=%d;k=%d;s=%d", setup.EnsembleSize, setup.ExpSize, setup.TopK, setup.RandomSamples)
	fl, err := s.table1Flight(key, setup)
	if err != nil {
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	select {
	case <-r.Context().Done():
		s.table1Leave(fl)
		return // client gone; the study survives while others wait
	case <-fl.done:
	}
	if fl.err != nil {
		if errors.Is(fl.err, rca.ErrCanceled) {
			// Only reachable at server shutdown: a live waiter never
			// lets the flight's own refcount hit zero.
			writeError(w, http.StatusServiceUnavailable, "%v", fl.err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", fl.err)
		return
	}
	writeJSON(w, http.StatusOK, table1JSON{Rows: fl.rows, Text: rca.FormatTable1(fl.rows)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// degraded=true means the artifact store's circuit breaker is open
	// (disk bypassed, in-memory pass-through serving): alive and
	// answering, but without durability until the disk recovers.
	degraded := s.artifacts != nil && s.artifacts.Degraded()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "degraded": degraded})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	hits, misses := s.session.CompileCacheStats()
	var as artifactStats
	rs := robustStats{FaultInjected: fault.InjectedTotal()}
	if s.artifacts != nil {
		st := s.artifacts.Stats()
		as = artifactStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Steals: st.Steals, Bytes: st.Bytes}
		rs.Degraded = st.Degraded
		if q, err := s.jobQueue(); err == nil {
			rs.DeadLettered = q.FailedCount()
		}
	}
	lfits, liters := s.session.LassoStats()
	ls := lassoStats{Solver: s.session.LassoSolver(), Fits: lfits, Iters: liters}
	s.m.write(w, s.session.Engine(), len(s.queue), s.store.len(), s.inflight(), hits, misses, ls, as, rs)
}

// deadLettered looks an id up in the shared queue's dead-letter
// directory (nil store or no record: not found).
func (s *Server) deadLettered(id string) (*artifact.FailedJob, bool) {
	if s.artifacts == nil {
		return nil, false
	}
	q, err := s.jobQueue()
	if err != nil {
		return nil, false
	}
	return q.Failed(id)
}

// retryAfterSecs scales the 503 Retry-After hint with the backlog:
// an empty queue suggests 1s, a deep one (relative to the worker
// pool) proportionally more, capped at 60s.
func (s *Server) retryAfterSecs() string {
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	secs := 1 + len(s.queue)/workers
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// boolParam reads a truthy query parameter ("1", "true", "yes").
func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// intParam reads a non-negative integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s=%q (want a non-negative integer)", name, v)
	}
	return n, nil
}
