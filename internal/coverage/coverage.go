// Package coverage implements the dynamic half of the paper's hybrid
// slicing (§2.1, §4.1): it records which modules and subprograms
// actually execute during the first model steps (standing in for the
// Intel compiler's codecov tool) and filters the parsed source down to
// executed code before the metagraph is built.
//
// The paper reports this filtering removes ~30% of modules and ~60% of
// subprograms; the synthetic corpus's dead modules and never-called
// subprograms give the filter real work to do.
package coverage

import (
	"sort"

	"github.com/climate-rca/rca/internal/fortran"
)

// Trace accumulates executed (module, subprogram) pairs.
type Trace struct {
	executed map[string]map[string]bool
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{executed: make(map[string]map[string]bool)}
}

// Record marks a subprogram as executed. It is the callback to wire
// into the interpreter's Trace hook.
func (t *Trace) Record(module, subprogram string) {
	subs := t.executed[module]
	if subs == nil {
		subs = make(map[string]bool)
		t.executed[module] = subs
	}
	subs[subprogram] = true
}

// Executed reports whether the subprogram ran.
func (t *Trace) Executed(module, subprogram string) bool {
	return t.executed[module][subprogram]
}

// ModuleExecuted reports whether any subprogram of the module ran.
func (t *Trace) ModuleExecuted(module string) bool {
	return len(t.executed[module]) > 0
}

// Modules returns the sorted list of executed modules.
func (t *Trace) Modules() []string {
	out := make([]string, 0, len(t.executed))
	for m := range t.executed {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Report summarizes a filtering pass.
type Report struct {
	ModulesBefore     int
	ModulesAfter      int
	SubprogramsBefore int
	SubprogramsAfter  int
}

// ModuleReductionPct returns the percentage of modules removed.
func (r Report) ModuleReductionPct() float64 {
	if r.ModulesBefore == 0 {
		return 0
	}
	return 100 * float64(r.ModulesBefore-r.ModulesAfter) / float64(r.ModulesBefore)
}

// SubprogramReductionPct returns the percentage of subprograms removed.
func (r Report) SubprogramReductionPct() float64 {
	if r.SubprogramsBefore == 0 {
		return 0
	}
	return 100 * float64(r.SubprogramsBefore-r.SubprogramsAfter) / float64(r.SubprogramsBefore)
}

// Filter returns a copy of mods restricted to executed modules, with
// never-executed subprograms removed ("commented out", §4.1). Module
// variable declarations, types, and interfaces are retained because
// executed code may reference them. Modules that declare variables but
// were never traced are kept only if some executed module uses them
// (conservative: we keep modules with no subprograms at all, e.g. pure
// declaration modules, since codecov has nothing to say about them).
func Filter(mods []*fortran.Module, t *Trace) ([]*fortran.Module, Report) {
	var rep Report
	rep.ModulesBefore = len(mods)
	var out []*fortran.Module
	for _, m := range mods {
		rep.SubprogramsBefore += len(m.Subprograms)
		declOnly := len(m.Subprograms) == 0
		if !declOnly && !t.ModuleExecuted(m.Name) {
			continue
		}
		fm := &fortran.Module{
			Name:       m.Name,
			Uses:       m.Uses,
			Types:      m.Types,
			Decls:      m.Decls,
			Interfaces: m.Interfaces,
			Line:       m.Line,
		}
		for _, sub := range m.Subprograms {
			if t.Executed(m.Name, sub.Name) {
				fm.Subprograms = append(fm.Subprograms, sub)
			}
		}
		rep.SubprogramsAfter += len(fm.Subprograms)
		rep.ModulesAfter++
		out = append(out, fm)
	}
	return out, rep
}
