package coverage

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/model"
)

func TestTraceRecordAndQuery(t *testing.T) {
	tr := NewTrace()
	if tr.ModuleExecuted("m") {
		t.Fatal("empty trace reports execution")
	}
	tr.Record("m", "s")
	if !tr.Executed("m", "s") || !tr.ModuleExecuted("m") {
		t.Fatal("record not visible")
	}
	if tr.Executed("m", "other") {
		t.Fatal("phantom subprogram")
	}
	if mods := tr.Modules(); len(mods) != 1 || mods[0] != "m" {
		t.Fatalf("modules = %v", mods)
	}
}

func TestFilterRemovesUnexecuted(t *testing.T) {
	mods, err := fortran.ParseFile(`
module live
  real :: x
contains
  subroutine used()
    x = 1.0
  end subroutine
  subroutine unused()
    x = 2.0
  end subroutine
end module

module dead
  real :: y
contains
  subroutine never()
    y = 1.0
  end subroutine
end module

module declsonly
  real, parameter :: k = 2.0
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	tr.Record("live", "used")
	out, rep := Filter(mods, tr)
	byName := map[string]*fortran.Module{}
	for _, m := range out {
		byName[m.Name] = m
	}
	if byName["dead"] != nil {
		t.Fatal("dead module survived")
	}
	if byName["declsonly"] == nil {
		t.Fatal("declaration-only module removed")
	}
	live := byName["live"]
	if live == nil || len(live.Subprograms) != 1 || live.Subprograms[0].Name != "used" {
		t.Fatalf("live module filtered wrong: %+v", live)
	}
	if rep.ModulesBefore != 3 || rep.ModulesAfter != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.SubprogramsBefore != 3 || rep.SubprogramsAfter != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.SubprogramReductionPct() < 60 {
		t.Fatalf("subprogram reduction = %v", rep.SubprogramReductionPct())
	}
}

// TestCorpusCoverageReduction runs the real model for two steps (as
// the paper does) and checks the filter removes a substantial share of
// modules and subprograms.
func TestCorpusCoverageReduction(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 40, Seed: 3})
	r, err := model.NewRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := r.Run(model.RunConfig{StopAfter: 2, Trace: tr.Record}); err != nil {
		t.Fatal(err)
	}
	filtered, rep := Filter(r.Modules, tr)
	if rep.ModuleReductionPct() < 10 {
		t.Fatalf("module reduction only %.1f%%", rep.ModuleReductionPct())
	}
	if rep.SubprogramReductionPct() < 10 {
		t.Fatalf("subprogram reduction only %.1f%%", rep.SubprogramReductionPct())
	}
	// Filtered corpus must still contain the core path.
	names := map[string]bool{}
	for _, m := range filtered {
		names[m.Name] = true
	}
	for _, want := range []string{"micro_mg", "dyn3", "cldfrc", "cam_driver"} {
		if !names[want] {
			t.Fatalf("core module %s filtered away", want)
		}
	}
	for _, m := range filtered {
		if len(m.Name) >= 8 && m.Name[:8] == "aux_dead" {
			t.Fatalf("dead module %s survived", m.Name)
		}
	}
}
