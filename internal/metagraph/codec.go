package metagraph

import (
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/binenc"
	"github.com/climate-rca/rca/internal/graph"
)

// mgCodecVersion is bumped on any change to the encoding below; the
// artifact store then treats older blobs as misses.
const mgCodecVersion uint32 = 1

// Encode serializes the metagraph to the deterministic artifact
// format. The symbol tables used only during Build (per-module scopes)
// are reduced to the module-name list — the only part the post-build
// queries (ModulePartition, Stats) consult — so a decoded metagraph
// answers every pipeline query identically to the freshly built one.
func (mg *Metagraph) Encode() ([]byte, error) {
	if mg == nil {
		return nil, fmt.Errorf("metagraph: encode nil metagraph")
	}
	if mg.G.NumNodes() != len(mg.Nodes) {
		return nil, fmt.Errorf("metagraph: %d graph nodes vs %d metadata nodes", mg.G.NumNodes(), len(mg.Nodes))
	}
	w := binenc.NewWriter(1 << 16)
	w.U32(mgCodecVersion)

	w.Len(len(mg.Nodes))
	for i := range mg.Nodes {
		n := &mg.Nodes[i]
		w.String(n.Key)
		w.String(n.Display)
		w.String(n.Canonical)
		w.String(n.Module)
		w.String(n.Subprogram)
		w.Int(n.Line)
		w.Bool(n.Intrinsic)
	}

	// Edges in the digraph's canonical iteration order (source id
	// ascending, out-neighbors in insertion order); replaying AddEdge
	// in this order on decode reproduces the adjacency byte for byte.
	w.Len(mg.G.NumEdges())
	mg.G.Edges(func(u, v int) {
		w.Int(u)
		w.Int(v)
	})

	labels := make([]string, 0, len(mg.OutputMap))
	for k := range mg.OutputMap {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	w.Len(len(labels))
	for _, k := range labels {
		w.String(k)
		w.String(mg.OutputMap[k])
	}

	w.Int(mg.Unparsed)

	names := make([]string, 0, len(mg.modules))
	for name := range mg.modules {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Len(len(names))
	for _, name := range names {
		w.String(name)
	}
	return w.Bytes(), nil
}

// Decode reconstructs a metagraph from Encode bytes. byKey and
// byCanonical are rebuilt from the node list exactly as Build interns
// them (creation order, intrinsics excluded from byCanonical), so
// lookup-based queries are unchanged.
func Decode(data []byte) (*Metagraph, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != mgCodecVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("metagraph: codec version %d, want %d", v, mgCodecVersion)
	}
	nNodes := r.Len()
	mg := &Metagraph{
		G:           graph.New(nNodes),
		byKey:       make(map[string]int, nNodes),
		byCanonical: make(map[string][]int, nNodes),
		OutputMap:   make(map[string]string),
		modules:     make(map[string]*moduleScope),
	}
	mg.Nodes = make([]Node, nNodes)
	for i := range mg.Nodes {
		mg.Nodes[i] = Node{
			Key:        r.String(),
			Display:    r.String(),
			Canonical:  r.String(),
			Module:     r.String(),
			Subprogram: r.String(),
			Line:       r.Int(),
			Intrinsic:  r.Bool(),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		mg.G.AddNode()
		mg.byKey[mg.Nodes[i].Key] = i
		if !mg.Nodes[i].Intrinsic {
			mg.byCanonical[mg.Nodes[i].Canonical] = append(mg.byCanonical[mg.Nodes[i].Canonical], i)
		}
	}
	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		u, v := r.Int(), r.Int()
		if u < 0 || u >= nNodes || v < 0 || v >= nNodes {
			return nil, binenc.ErrMalformed
		}
		mg.G.AddEdge(u, v)
	}
	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		k := r.String()
		mg.OutputMap[k] = r.String()
	}
	mg.Unparsed = r.Int()
	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		// Build-time symbol scopes are not needed after construction;
		// only the module-name partition survives the round trip.
		mg.modules[r.String()] = &moduleScope{}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return mg, nil
}
