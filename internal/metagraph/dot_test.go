package metagraph

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: a, b, out
contains
  subroutine s()
    b = a * 2.0
    out = b + 1.0
  end subroutine
end module
`)
	targets := mg.ByCanonical("out")
	nodes := mg.G.Ancestors(targets)
	sub, nodeMap := mg.G.Subgraph(nodes)

	var sb strings.Builder
	err := mg.WriteDot(&sb, sub, nodeMap, DotOptions{
		Name:        "wsub",
		Communities: [][]int{nodes},
		Highlight:   mg.ByCanonical("a"),
		Secondary:   targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		`digraph "wsub"`, `label="a__m"`, `label="out__m"`,
		"color=red", "color=orange", "->", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteDotMaxNodes(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: a, b, c, d, e
contains
  subroutine s()
    b = a
    c = b
    d = c
    e = d
  end subroutine
end module
`)
	all := make([]int, mg.G.NumNodes())
	for i := range all {
		all[i] = i
	}
	sub, nodeMap := mg.G.Subgraph(all)
	var sb strings.Builder
	if err := mg.WriteDot(&sb, sub, nodeMap, DotOptions{MaxNodes: 2}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "label="); got != 2 {
		t.Fatalf("node count = %d; want 2", got)
	}
}
