package metagraph

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/fortran"
)

func BenchmarkBuildFromCorpus(b *testing.B) {
	c := corpus.Generate(corpus.Config{AuxModules: 60, Seed: 1})
	var mods []*fortran.Module
	for _, f := range c.Files {
		ms, err := fortran.ParseFile(f.Source)
		if err != nil {
			b.Fatal(err)
		}
		mods = append(mods, ms...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(mods); err != nil {
			b.Fatal(err)
		}
	}
}
