package metagraph

import (
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
)

func mustBuild(t *testing.T, srcs ...string) *Metagraph {
	t.Helper()
	var mods []*fortran.Module
	for _, s := range srcs {
		ms, err := fortran.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, ms...)
	}
	mg, err := Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

// hasEdge checks for a directed edge between nodes identified by key.
func hasEdge(mg *Metagraph, from, to string) bool {
	u, ok1 := mg.NodeID(from)
	v, ok2 := mg.NodeID(to)
	return ok1 && ok2 && mg.G.HasEdge(u, v)
}

func TestSimpleAssignmentEdges(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: x, a, b
contains
  subroutine s()
    x = a + b
  end subroutine
end module
`)
	if !hasEdge(mg, "m::::a", "m::::x") || !hasEdge(mg, "m::::b", "m::::x") {
		t.Fatalf("assignment edges missing; nodes=%v", mg.Nodes)
	}
	if hasEdge(mg, "m::::x", "m::::a") {
		t.Fatal("reverse edge should not exist")
	}
}

func TestLocalsScopedToSubprogram(t *testing.T) {
	mg := mustBuild(t, `
module m
contains
  subroutine s1()
    real :: tmp
    tmp = 1.0
    tmp = tmp * 2.0
  end subroutine
  subroutine s2()
    real :: tmp
    tmp = 3.0
  end subroutine
end module
`)
	if _, ok := mg.NodeID("m::s1::tmp"); !ok {
		t.Fatal("s1 tmp missing")
	}
	if _, ok := mg.NodeID("m::s2::tmp"); !ok {
		t.Fatal("s2 tmp missing")
	}
	// Two distinct nodes with shared canonical name.
	if len(mg.ByCanonical("tmp")) != 2 {
		t.Fatalf("ByCanonical(tmp) = %v", mg.ByCanonical("tmp"))
	}
}

func TestSelfLoopSkipped(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: x
contains
  subroutine s()
    x = x + 1.0
  end subroutine
end module
`)
	id, _ := mg.NodeID("m::::x")
	if mg.G.HasEdge(id, id) {
		t.Fatal("self loop created")
	}
}

func TestDerivedTypeCanonicalName(t *testing.T) {
	mg := mustBuild(t, `
module m
  type physstate
    real :: omega(:)
  end type
  type(physstate) :: state
  real :: w(:)
contains
  subroutine s(ie)
    integer :: ie
    w = state%omega * 2.0
    state%omega = w + 1.0
  end subroutine
end module
`)
	// Node canonical name is "omega", homed in the module scope.
	ids := mg.ByCanonical("omega")
	if len(ids) != 1 {
		t.Fatalf("ByCanonical(omega) = %v", ids)
	}
	if !hasEdge(mg, "m::::omega", "m::::w") {
		t.Fatal("state omega -> w edge missing")
	}
	if !hasEdge(mg, "m::::w", "m::::omega") {
		t.Fatal("w -> state omega edge missing")
	}
}

func TestIntrinsicLocalized(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: x, y, a, b
contains
  subroutine s()
    x = min(a, b)
    y = min(a, b)
  end subroutine
end module
`)
	// Two separate min nodes (per line), not one hub.
	var minNodes []Node
	for _, n := range mg.Nodes {
		if n.Intrinsic {
			minNodes = append(minNodes, n)
		}
	}
	if len(minNodes) != 2 {
		t.Fatalf("intrinsic nodes = %+v", minNodes)
	}
	// a and b feed each min; min feeds x and y respectively.
	xid, _ := mg.NodeID("m::::x")
	aid, _ := mg.NodeID("m::::a")
	dist := mg.G.BFSFrom(aid)
	if dist[xid] != 2 {
		t.Fatalf("a->min->x distance = %d", dist[xid])
	}
	// Intrinsic nodes are excluded from canonical lookup.
	if got := mg.ByCanonical(minNodes[0].Canonical); got != nil {
		t.Fatalf("intrinsic in canonical index: %v", got)
	}
}

func TestFunctionCallArgumentMapping(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: out, g, h
contains
  subroutine s()
    out = f(g + h)
  end subroutine
  function f(x) result(y)
    real :: x, y
    y = x * 2.0
  end function
end module
`)
	// g -> x (dummy), x -> y (inside f), y -> out.
	if !hasEdge(mg, "m::::g", "m::f::x") || !hasEdge(mg, "m::::h", "m::f::x") {
		t.Fatal("actual -> dummy edges missing")
	}
	if !hasEdge(mg, "m::f::x", "m::f::y") {
		t.Fatal("function-internal edge missing")
	}
	if !hasEdge(mg, "m::f::y", "m::::out") {
		t.Fatal("result -> consumer edge missing")
	}
}

func TestCompositeFunctionMapping(t *testing.T) {
	// The paper's ω = α(b(c,d) * e(f(g+h))) example (§4.2): check the
	// full chain h -> f -> e -> alpha -> omega exists as directed paths.
	mg := mustBuild(t, `
module m
  real :: omega, c, d, e0, g, h
contains
  subroutine s()
    omega = alpha(b(c, d) * e(f(g + h)))
  end subroutine
  function alpha(x) result(y)
    real :: x, y
    y = x
  end function
  function b(p, q) result(y)
    real :: p, q, y
    y = p + q
  end function
  function e(x) result(y)
    real :: x, y
    y = x
  end function
  function f(x) result(y)
    real :: x, y
    y = x
  end function
end module
`)
	hid, _ := mg.NodeID("m::::h")
	oid, _ := mg.NodeID("m::::omega")
	dist := mg.G.BFSFrom(hid)
	// h -> f.x -> f.y -> e.x -> e.y -> alpha.x -> alpha.y -> omega = 7 hops.
	if dist[oid] != 7 {
		t.Fatalf("h to omega distance = %d; want 7", dist[oid])
	}
	cid, _ := mg.NodeID("m::::c")
	dist = mg.G.BFSFrom(cid)
	// c -> b.p -> b.y -> alpha.x -> alpha.y -> omega = 5 hops.
	if dist[oid] != 5 {
		t.Fatalf("c to omega distance = %d; want 5", dist[oid])
	}
}

func TestSubroutineIntentDirections(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: a, b, c
contains
  subroutine s()
    call helper(a, b, c)
  end subroutine
  subroutine helper(x, y, z)
    real, intent(in) :: x
    real, intent(out) :: y
    real, intent(inout) :: z
    y = x
    z = z + x
  end subroutine
end module
`)
	if !hasEdge(mg, "m::::a", "m::helper::x") {
		t.Fatal("intent(in) edge missing")
	}
	if hasEdge(mg, "m::helper::x", "m::::a") {
		t.Fatal("intent(in) produced reverse edge")
	}
	if !hasEdge(mg, "m::helper::y", "m::::b") {
		t.Fatal("intent(out) edge missing")
	}
	if hasEdge(mg, "m::::b", "m::helper::y") {
		t.Fatal("intent(out) produced forward edge")
	}
	if !hasEdge(mg, "m::::c", "m::helper::z") || !hasEdge(mg, "m::helper::z", "m::::c") {
		t.Fatal("intent(inout) should be bidirectional")
	}
}

func TestSubroutineUnknownIntentBidirectional(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: a
contains
  subroutine s()
    call helper(a)
  end subroutine
  subroutine helper(x)
    real :: x
    x = x * 2.0
  end subroutine
end module
`)
	if !hasEdge(mg, "m::::a", "m::helper::x") || !hasEdge(mg, "m::helper::x", "m::::a") {
		t.Fatal("unknown intent should map both directions")
	}
}

func TestUseOnlyAndRenames(t *testing.T) {
	mg := mustBuild(t, `
module src
  real :: shared, hidden, orig
end module
`, `
module dst
  use src, only: shared, alias => orig
  real :: y, z
contains
  subroutine s()
    y = shared * 2.0
    z = alias + 1.0
  end subroutine
end module
`)
	// shared resolves to src's node — one node total.
	if len(mg.ByCanonical("shared")) != 1 {
		t.Fatalf("shared nodes = %v", mg.ByCanonical("shared"))
	}
	if !hasEdge(mg, "src::::shared", "dst::::y") {
		t.Fatal("use-imported edge missing")
	}
	// alias => orig: edge from src::orig.
	if !hasEdge(mg, "src::::orig", "dst::::z") {
		t.Fatal("renamed import edge missing")
	}
	// hidden was not imported: a reference would have created a local
	// node; no node for it should exist outside src.
	if _, ok := mg.NodeID("dst::s::hidden"); ok {
		t.Fatal("unimported name leaked")
	}
}

func TestBareUseImportsAll(t *testing.T) {
	mg := mustBuild(t, `
module src
  real :: alpha
end module
`, `
module dst
  use src
  real :: y
contains
  subroutine s()
    y = alpha
  end subroutine
end module
`)
	if !hasEdge(mg, "src::::alpha", "dst::::y") {
		t.Fatal("bare use import missing")
	}
}

func TestChainedUseNotFollowed(t *testing.T) {
	// c uses b, b uses a: c must NOT see a's variables through b.
	mg := mustBuild(t, `
module a
  real :: deep
end module
`, `
module b
  use a
  real :: mid
end module
`, `
module c
  use b
  real :: y
contains
  subroutine s()
    y = deep
  end subroutine
end module
`)
	// deep in c resolves to a *local* implicit node, not a::deep.
	if hasEdge(mg, "a::::deep", "c::::y") {
		t.Fatal("chained use was followed")
	}
	if !hasEdge(mg, "c::s::deep", "c::::y") {
		t.Fatal("implicit local fallback missing")
	}
}

func TestInterfaceFansOutToAllProcedures(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: out, tin
  interface svp
    module procedure svp_water, svp_ice
  end interface
contains
  subroutine s()
    out = svp(tin)
  end subroutine
  function svp_water(t) result(es)
    real :: t, es
    es = t * 2.0
  end function
  function svp_ice(t) result(es)
    real :: t, es
    es = t * 3.0
  end function
end module
`)
	// Conservative mapping: tin feeds both candidates, both results
	// feed out.
	for _, fn := range []string{"svp_water", "svp_ice"} {
		if !hasEdge(mg, "m::::tin", "m::"+fn+"::t") {
			t.Fatalf("interface arg edge to %s missing", fn)
		}
		if !hasEdge(mg, "m::"+fn+"::es", "m::::out") {
			t.Fatalf("interface result edge from %s missing", fn)
		}
	}
}

func TestArrayVsFunctionDisambiguation(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: q(:), y, z
  integer :: i
contains
  subroutine s()
    y = q(i)
    z = f(i)
  end subroutine
  function f(n) result(r)
    integer :: n
    real :: r
    r = 1.0
  end function
end module
`)
	// q(i) is an array element: direct edge q -> y, and no edge i -> y
	// (indices atomic).
	if !hasEdge(mg, "m::::q", "m::::y") {
		t.Fatal("array element edge missing")
	}
	if !hasEdge(mg, "m::::i", "m::::y") == false {
		// i must NOT feed y.
		if hasEdge(mg, "m::::i", "m::::y") {
			t.Fatal("array index leaked into dataflow")
		}
	}
	// f(i) is a call: i -> f.n and f.r -> z.
	if !hasEdge(mg, "m::::i", "m::f::n") || !hasEdge(mg, "m::f::r", "m::::z") {
		t.Fatal("function call edges missing")
	}
}

func TestOutfldMapping(t *testing.T) {
	mg := mustBuild(t, `
module m
  type ps
    real :: omega(:)
  end type
  type(ps) :: state
  real :: flwds(:)
contains
  subroutine s()
    flwds = 1.0
    call outfld('FLDS', flwds)
    call outfld('OMEGA', state%omega)
  end subroutine
end module
`)
	if mg.OutputMap["FLDS"] != "flwds" {
		t.Fatalf("OutputMap[FLDS] = %q", mg.OutputMap["FLDS"])
	}
	if mg.OutputMap["OMEGA"] != "omega" {
		t.Fatalf("OutputMap[OMEGA] = %q", mg.OutputMap["OMEGA"])
	}
}

func TestRandomNumberIsSource(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: r(:), cld(:)
contains
  subroutine s()
    call random_number(r)
    cld = r * 0.5
  end subroutine
end module
`)
	rid, _ := mg.NodeID("m::::r")
	if mg.G.InDegree(rid) != 1 {
		t.Fatalf("r in-degree = %d; want 1 (PRNG source)", mg.G.InDegree(rid))
	}
	src := int(mg.G.In(rid)[0])
	if !mg.Nodes[src].Intrinsic {
		t.Fatal("PRNG source not marked intrinsic")
	}
	if !hasEdge(mg, "m::::r", "m::::cld") {
		t.Fatal("r -> cld missing")
	}
}

func TestModulePartition(t *testing.T) {
	mg := mustBuild(t, `
module aa
  real :: x, y
contains
  subroutine s()
    y = x
  end subroutine
end module
`, `
module bb
  use aa
  real :: z
contains
  subroutine s2()
    z = x
  end subroutine
end module
`)
	part, names := mg.ModulePartition()
	if len(names) != 2 || names[0] != "aa" || names[1] != "bb" {
		t.Fatalf("names = %v", names)
	}
	if len(part) != mg.G.NumNodes() {
		t.Fatalf("partition size %d != nodes %d", len(part), mg.G.NumNodes())
	}
	q := mg.G.Quotient(part, 2)
	// x (aa) feeds z (bb): quotient edge aa -> bb.
	if !q.HasEdge(0, 1) {
		t.Fatal("quotient edge missing")
	}
}

func TestDuplicateModulesRejected(t *testing.T) {
	mods, err := fortran.ParseFile(`
module m
  real :: x
end module
module m
  real :: y
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(mods); err == nil {
		t.Fatal("duplicate modules accepted")
	}
}

func TestStats(t *testing.T) {
	mg := mustBuild(t, `
module m
  real :: x, a
contains
  subroutine s()
    x = a
  end subroutine
end module
`)
	st := mg.Stats()
	if st.Modules != 1 || st.Nodes != 2 || st.Edges != 1 || st.Unparsed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDoLoopBoundsFeedLoopVar(t *testing.T) {
	mg := mustBuild(t, `
module m
  integer :: n
  real :: acc
contains
  subroutine s()
    integer :: i
    do i = 1, n
      acc = acc + 1.0
    end do
  end subroutine
end module
`)
	if !hasEdge(mg, "m::::n", "m::s::i") {
		t.Fatal("loop bound edge missing")
	}
}
