// Package metagraph compiles FortLite modules into the directed graph
// of variable dependencies described in §4 of Milroy et al. (HPDC
// 2019): nodes are variables appearing in assignment statements (with
// module/subprogram/line metadata and derived-type canonical names) and
// edges express "value of X affects value of Y" through assignments,
// function and subroutine argument mappings, generic interfaces, use
// statements (with renames and only-lists), and localized intrinsics.
package metagraph

import (
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/graph"
)

// Node is the metadata attached to one digraph node.
type Node struct {
	// Key uniquely identifies the node: module::subprogram::canonical
	// (subprogram empty for module-level variables).
	Key string
	// Display is the paper-style name, e.g. "dum__micro_mg_tend".
	Display string
	// Canonical is the variable name before uniquification — for
	// derived types, the final component (paper §4.2).
	Canonical  string
	Module     string
	Subprogram string // "" for module-level variables
	Line       int    // first line the variable was seen on
	Intrinsic  bool   // true for localized intrinsic nodes (min_104__mod)
}

// Metagraph is the digraph plus metadata and symbol tables.
type Metagraph struct {
	G     *graph.Digraph
	Nodes []Node

	byKey map[string]int
	// byCanonical maps canonical names to all node ids sharing them —
	// the lookup slicing uses to find path targets (§5.1).
	byCanonical map[string][]int
	// OutputMap maps outfld labels (as written to history files) to the
	// canonical name of the internal variable passed to the call — the
	// instrumentation of §5.1 that links file outputs to code.
	OutputMap map[string]string
	// Unparsed counts assignment statements the builder could not
	// process (the paper reports 10 of 660k lines).
	Unparsed int

	modules map[string]*moduleScope
}

// moduleScope holds per-module symbol tables.
type moduleScope struct {
	mod *fortran.Module
	// vars maps a locally visible module-level name to its node key
	// (which may live in another module via use).
	vars map[string]string
	// funcs and subs map locally visible procedure names to candidate
	// targets (module, subprogram). Interfaces fan out to several.
	funcs map[string][]procTarget
	subs  map[string][]procTarget
	// arrays marks locally visible module-level array variables, used
	// to disambiguate name(args) forms.
	arrays map[string]bool
}

type procTarget struct {
	module string
	sub    *fortran.Subprogram
}

// intrinsics recognized as value-transforming built-ins; they become
// localized nodes rather than shared hubs (§4.2).
var intrinsics = map[string]bool{
	"min": true, "max": true, "abs": true, "sqrt": true, "exp": true,
	"log": true, "sum": true, "size": true, "mod": true, "shift": true,
	"sign": true, "floor": true,
}

// Build compiles modules into a Metagraph. Modules must have unique
// names; use statements referencing unknown modules are ignored (the
// coverage filter legitimately removes whole modules).
func Build(modules []*fortran.Module) (*Metagraph, error) {
	mg := &Metagraph{
		G:           graph.New(1024),
		byKey:       make(map[string]int, 4096),
		byCanonical: make(map[string][]int, 4096),
		OutputMap:   make(map[string]string),
		modules:     make(map[string]*moduleScope, len(modules)),
	}
	for _, m := range modules {
		if _, dup := mg.modules[m.Name]; dup {
			return nil, fmt.Errorf("metagraph: duplicate module %q", m.Name)
		}
		mg.modules[m.Name] = &moduleScope{
			mod:    m,
			vars:   make(map[string]string),
			funcs:  make(map[string][]procTarget),
			subs:   make(map[string][]procTarget),
			arrays: make(map[string]bool),
		}
	}
	// Pass 1: own declarations (module vars, own procedures, own
	// interfaces). Must complete before use resolution.
	for _, m := range modules {
		mg.declareOwn(m)
	}
	// Pass 2: use statements (renames, only-lists, whole-module
	// imports). Chained use is deliberately not followed (§4.2): each
	// use statement is connected independently.
	for _, m := range modules {
		mg.resolveUses(m)
	}
	// Pass 3: process all statements now that the function hash tables
	// exist (the paper defers call parsing until all files are read).
	for _, m := range modules {
		for _, sub := range m.Subprograms {
			mg.processSubprogram(m, sub)
		}
	}
	return mg, nil
}

func key(module, sub, canonical string) string {
	return module + "::" + sub + "::" + canonical
}

// node interns the node for (module, sub, canonical), creating it on
// first use.
func (mg *Metagraph) node(module, sub, canonical string, line int, intrinsic bool) int {
	k := key(module, sub, canonical)
	if id, ok := mg.byKey[k]; ok {
		return id
	}
	id := mg.G.AddNode()
	display := canonical
	if sub != "" {
		display = canonical + "__" + sub
	} else {
		display = canonical + "__" + module
	}
	mg.Nodes = append(mg.Nodes, Node{
		Key: k, Display: display, Canonical: canonical,
		Module: module, Subprogram: sub, Line: line, Intrinsic: intrinsic,
	})
	mg.byKey[k] = id
	if !intrinsic {
		mg.byCanonical[canonical] = append(mg.byCanonical[canonical], id)
	}
	return id
}

// nodeByKey returns the interned id for a fully resolved key, creating
// the node from the key's parts if needed.
func (mg *Metagraph) nodeByKeyParts(k string, line int) int {
	if id, ok := mg.byKey[k]; ok {
		return id
	}
	// Parse module::sub::canonical back out.
	var module, sub, canon string
	first, rest := split2(k)
	module = first
	sub, canon = split2(rest)
	return mg.node(module, sub, canon, line, false)
}

func split2(s string) (string, string) {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == ':' && s[i+1] == ':' {
			return s[:i], s[i+2:]
		}
	}
	return s, ""
}

func (mg *Metagraph) declareOwn(m *fortran.Module) {
	sc := mg.modules[m.Name]
	for _, d := range m.Decls {
		for i, n := range d.Names {
			sc.vars[n] = key(m.Name, "", n)
			if d.ArrayAt(i) {
				sc.arrays[n] = true
			}
		}
	}
	for _, sub := range m.Subprograms {
		t := procTarget{module: m.Name, sub: sub}
		if sub.Kind == fortran.KindFunction {
			sc.funcs[sub.Name] = append(sc.funcs[sub.Name], t)
		} else {
			sc.subs[sub.Name] = append(sc.subs[sub.Name], t)
		}
	}
	for _, iface := range m.Interfaces {
		for _, proc := range iface.Procedures {
			// Interface procedures resolve within the defining module;
			// the generic name maps to every candidate (conservative
			// all-possible-connections handling, §4.2).
			for _, sub := range m.Subprograms {
				if sub.Name != proc {
					continue
				}
				t := procTarget{module: m.Name, sub: sub}
				if sub.Kind == fortran.KindFunction {
					sc.funcs[iface.Name] = append(sc.funcs[iface.Name], t)
				} else {
					sc.subs[iface.Name] = append(sc.subs[iface.Name], t)
				}
			}
		}
	}
}

func (mg *Metagraph) resolveUses(m *fortran.Module) {
	sc := mg.modules[m.Name]
	for _, u := range m.Uses {
		src, ok := mg.modules[u.Module]
		if !ok {
			continue // module compiled out (coverage/config filtering)
		}
		imports := u.Only
		if len(imports) == 0 {
			// Whole-surface import: all module vars and procedures
			// declared in (not imported by) the source module.
			for _, d := range src.mod.Decls {
				for _, n := range d.Names {
					imports = append(imports, fortran.Rename{Local: n, Remote: n})
				}
			}
			for _, sub := range src.mod.Subprograms {
				imports = append(imports, fortran.Rename{Local: sub.Name, Remote: sub.Name})
			}
			for _, iface := range src.mod.Interfaces {
				imports = append(imports, fortran.Rename{Local: iface.Name, Remote: iface.Name})
			}
		}
		for _, r := range imports {
			// Variable import: map local name to the source module's
			// node key so both modules share one node.
			if vk, ok := src.ownVarKey(r.Remote); ok {
				if _, shadowed := sc.vars[r.Local]; !shadowed {
					sc.vars[r.Local] = vk
				}
				if src.arrays[r.Remote] {
					sc.arrays[r.Local] = true
				}
			}
			if fs := src.ownFuncs(r.Remote); len(fs) > 0 {
				sc.funcs[r.Local] = append(sc.funcs[r.Local], fs...)
			}
			if ss := src.ownSubs(r.Remote); len(ss) > 0 {
				sc.subs[r.Local] = append(sc.subs[r.Local], ss...)
			}
		}
	}
}

// ownVarKey reports the node key of a variable declared in this module
// itself (not re-exported imports — chained use is not followed).
func (sc *moduleScope) ownVarKey(name string) (string, bool) {
	for _, d := range sc.mod.Decls {
		for _, n := range d.Names {
			if n == name {
				return key(sc.mod.Name, "", n), true
			}
		}
	}
	return "", false
}

func (sc *moduleScope) ownFuncs(name string) []procTarget {
	var out []procTarget
	for _, t := range sc.funcs[name] {
		if t.module == sc.mod.Name {
			out = append(out, t)
		}
	}
	return out
}

func (sc *moduleScope) ownSubs(name string) []procTarget {
	var out []procTarget
	for _, t := range sc.subs[name] {
		if t.module == sc.mod.Name {
			out = append(out, t)
		}
	}
	return out
}

// scope is the name-resolution environment inside one subprogram.
type scope struct {
	mg      *Metagraph
	modName string
	sub     *fortran.Subprogram
	locals  map[string]bool // declared locals and dummy args
	arrays  map[string]bool
	msc     *moduleScope
}

func (mg *Metagraph) newScope(m *fortran.Module, sub *fortran.Subprogram) *scope {
	s := &scope{
		mg:      mg,
		modName: m.Name,
		sub:     sub,
		locals:  make(map[string]bool),
		arrays:  make(map[string]bool),
		msc:     mg.modules[m.Name],
	}
	for _, a := range sub.Args {
		s.locals[a] = true
	}
	for _, d := range sub.Decls {
		for i, n := range d.Names {
			s.locals[n] = true
			if d.ArrayAt(i) {
				s.arrays[n] = true
			}
		}
	}
	if sub.Kind == fortran.KindFunction {
		s.locals[sub.ResultVar()] = true
	}
	return s
}

// resolveVar returns the node id for a plain variable reference.
func (s *scope) resolveVar(r *fortran.Ref) int {
	canon := r.Canonical()
	if s.locals[r.Name] {
		return s.mg.node(s.modName, s.sub.Name, canon, r.Line, false)
	}
	if vk, ok := s.msc.vars[r.Name]; ok {
		if len(r.Components) == 0 {
			return s.mg.nodeByKeyParts(vk, r.Line)
		}
		// Derived-type module variable: canonical name is the final
		// component but the node lives in the variable's home module.
		home, _ := split2(vk)
		return s.mg.node(home, "", canon, r.Line, false)
	}
	// Implicitly declared: local to the subprogram.
	return s.mg.node(s.modName, s.sub.Name, canon, r.Line, false)
}

// isArray reports whether name(args) is an array reference rather than
// a call, via the declared-array tables (hash-table disambiguation).
func (s *scope) isArray(name string) bool {
	if s.arrays[name] {
		return true
	}
	if s.locals[name] {
		return false
	}
	return s.msc.arrays[name]
}

func (s *scope) funcTargets(name string) []procTarget {
	return s.msc.funcs[name]
}

func (s *scope) subTargets(name string) []procTarget {
	return s.msc.subs[name]
}

// processSubprogram walks every statement, adding nodes and edges.
func (mg *Metagraph) processSubprogram(m *fortran.Module, sub *fortran.Subprogram) {
	s := mg.newScope(m, sub)
	fortran.WalkStmts(sub.Body, func(st fortran.Stmt) {
		switch x := st.(type) {
		case *fortran.AssignStmt:
			s.processAssign(x)
		case *fortran.CallStmt:
			s.processCall(x)
		case *fortran.DoStmt:
			// Loop bounds feed the loop variable.
			iv := s.mg.node(s.modName, s.sub.Name, x.Var, x.Line, false)
			for _, src := range s.exprOutputs(x.From) {
				s.mg.G.AddEdge(src, iv)
			}
			for _, src := range s.exprOutputs(x.To) {
				s.mg.G.AddEdge(src, iv)
			}
		}
	})
}

func (s *scope) processAssign(a *fortran.AssignStmt) {
	defer func() {
		if recover() != nil {
			// Statements beyond the builder (the paper's "all but 10
			// assignment statements") are counted, not fatal.
			s.mg.Unparsed++
		}
	}()
	lhs := s.resolveVar(a.LHS)
	for _, src := range s.exprOutputs(a.RHS) {
		if src != lhs {
			s.mg.G.AddEdge(src, lhs)
		}
	}
}

// exprOutputs returns the node ids whose values feed the expression —
// the "output" layer that gets edges to whatever consumes e.
func (s *scope) exprOutputs(e fortran.Expr) []int {
	switch x := e.(type) {
	case nil:
		return nil
	case *fortran.NumLit, *fortran.StrLit:
		return nil
	case *fortran.UnaryExpr:
		return s.exprOutputs(x.X)
	case *fortran.BinaryExpr:
		return append(s.exprOutputs(x.L), s.exprOutputs(x.R)...)
	case *fortran.Ref:
		return s.refOutputs(x)
	}
	return nil
}

func (s *scope) refOutputs(r *fortran.Ref) []int {
	if !r.HasParens || len(r.Components) > 0 {
		// Plain variable or derived-type access (indices atomic).
		return []int{s.resolveVar(r)}
	}
	// name(args): function call, intrinsic, or array element.
	if intrinsics[r.Name] {
		// Localized intrinsic node: min_104__modname style (§4.2).
		canon := fmt.Sprintf("%s_%d", r.Name, r.Line)
		in := s.mg.node(s.modName, s.sub.Name, canon, r.Line, true)
		for _, a := range r.Args {
			for _, src := range s.exprOutputs(a) {
				s.mg.G.AddEdge(src, in)
			}
		}
		return []int{in}
	}
	if targets := s.funcTargets(r.Name); len(targets) > 0 {
		var outs []int
		for _, t := range targets {
			outs = append(outs, s.callFunction(t, r.Args)...)
		}
		return outs
	}
	if s.isArray(r.Name) {
		// Array element: indices are ignored (arrays are atomic).
		return []int{s.resolveVar(r)}
	}
	// Unknown name(args): could be an array we failed to see declared;
	// treat as a variable (conservative) — matches the paper's custom
	// string-parsing fallback.
	return []int{s.resolveVar(r)}
}

// callFunction wires actual arguments into the function's dummy
// arguments and returns the function's result node.
func (s *scope) callFunction(t procTarget, args []fortran.Expr) []int {
	f := t.sub
	for i, a := range args {
		if i >= len(f.Args) {
			break
		}
		dummy := s.mg.node(t.module, f.Name, f.Args[i], f.Line, false)
		for _, src := range s.exprOutputs(a) {
			s.mg.G.AddEdge(src, dummy)
		}
	}
	res := s.mg.node(t.module, f.Name, f.ResultVar(), f.Line, false)
	return []int{res}
}

func (s *scope) processCall(c *fortran.CallStmt) {
	defer func() {
		if recover() != nil {
			s.mg.Unparsed++
		}
	}()
	switch c.Name {
	case "outfld":
		// call outfld('LABEL', var): record the label → canonical-name
		// mapping used by slicing to tie outputs to internal variables.
		if len(c.Args) == 2 {
			lbl, ok1 := c.Args[0].(*fortran.StrLit)
			v, ok2 := c.Args[1].(*fortran.Ref)
			if ok1 && ok2 {
				s.mg.OutputMap[lbl.Value] = v.Canonical()
			}
		}
		return
	case "random_number":
		// The PRNG is an information source: a localized node feeding
		// the argument.
		if len(c.Args) == 1 {
			if v, ok := c.Args[0].(*fortran.Ref); ok {
				src := s.mg.node(s.modName, s.sub.Name,
					fmt.Sprintf("random_number_%d", c.Line), c.Line, true)
				s.mg.G.AddEdge(src, s.resolveVar(v))
			}
		}
		return
	}
	targets := s.subTargets(c.Name)
	for _, t := range targets {
		sub := t.sub
		intentOf := func(arg string) fortran.Intent {
			for _, d := range sub.Decls {
				for _, n := range d.Names {
					if n == arg {
						return d.Intent
					}
				}
			}
			return fortran.IntentUnknown
		}
		for i, a := range c.Args {
			if i >= len(sub.Args) {
				break
			}
			dummyName := sub.Args[i]
			dummy := s.mg.node(t.module, sub.Name, dummyName, sub.Line, false)
			intent := intentOf(dummyName)
			if ref, ok := a.(*fortran.Ref); ok && !ref.HasParens || isPlainDerived(a) {
				actual := s.resolveVar(a.(*fortran.Ref))
				if intent == fortran.IntentIn || intent == fortran.IntentInOut || intent == fortran.IntentUnknown {
					s.mg.G.AddEdge(actual, dummy)
				}
				if intent == fortran.IntentOut || intent == fortran.IntentInOut || intent == fortran.IntentUnknown {
					s.mg.G.AddEdge(dummy, actual)
				}
				continue
			}
			// Expression actual: value flows in only.
			if intent != fortran.IntentOut {
				for _, src := range s.exprOutputs(a) {
					s.mg.G.AddEdge(src, dummy)
				}
			}
		}
	}
}

// isPlainDerived reports whether a is a derived-type reference like
// state%omega (indexed or not) — passed by reference like any variable.
func isPlainDerived(a fortran.Expr) bool {
	r, ok := a.(*fortran.Ref)
	return ok && len(r.Components) > 0
}

// --- Queries -------------------------------------------------------

// NodeID returns the node id for a key, if present.
func (mg *Metagraph) NodeID(k string) (int, bool) {
	id, ok := mg.byKey[k]
	return id, ok
}

// ByCanonical returns all (non-intrinsic) node ids with the canonical
// name, in creation order.
func (mg *Metagraph) ByCanonical(name string) []int {
	return mg.byCanonical[name]
}

// ByDisplay returns the node ids whose Display name matches.
func (mg *Metagraph) ByDisplay(display string) []int {
	var out []int
	for i := range mg.Nodes {
		if mg.Nodes[i].Display == display {
			out = append(out, i)
		}
	}
	return out
}

// ModulePartition returns a partition of nodes by module (for the
// quotient graph of §6.5) along with the ordered module names.
func (mg *Metagraph) ModulePartition() ([]int, []string) {
	names := make([]string, 0, len(mg.modules))
	for name := range mg.modules {
		names = append(names, name)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	part := make([]int, len(mg.Nodes))
	for i := range mg.Nodes {
		part[i] = idx[mg.Nodes[i].Module]
	}
	return part, names
}

// NodesInModules returns ids of nodes whose module satisfies keep.
func (mg *Metagraph) NodesInModules(keep func(module string) bool) []int {
	var out []int
	for i := range mg.Nodes {
		if keep(mg.Nodes[i].Module) {
			out = append(out, i)
		}
	}
	return out
}

// ModuleNames returns the sorted module list.
func (mg *Metagraph) ModuleNames() []string {
	_, names := mg.ModulePartition()
	return names
}

// Stats summarizes the metagraph.
type Stats struct {
	Modules  int
	Nodes    int
	Edges    int
	Unparsed int
}

// Stats returns summary counts.
func (mg *Metagraph) Stats() Stats {
	return Stats{
		Modules:  len(mg.modules),
		Nodes:    mg.G.NumNodes(),
		Edges:    mg.G.NumEdges(),
		Unparsed: mg.Unparsed,
	}
}
