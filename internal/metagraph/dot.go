package metagraph

import (
	"fmt"
	"io"
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// DotOptions styles a Graphviz export of a (sub)graph — the rendering
// behind the paper's Figures 5-8 and 12-15.
type DotOptions struct {
	// Name is the graph name.
	Name string
	// Communities colors nodes by community membership (metagraph
	// ids); nodes outside any community are gray.
	Communities [][]int
	// Highlight draws the listed nodes (metagraph ids) enlarged and
	// red — the bug-location styling.
	Highlight []int
	// Secondary draws the listed nodes enlarged and orange — the
	// sampled-central-node styling.
	Secondary []int
	// MaxNodes truncates huge graphs (0 = no limit).
	MaxNodes int
}

var dotPalette = []string{
	"lightblue", "palegreen", "khaki", "plum", "lightsalmon",
	"lightcyan", "wheat", "thistle",
}

// WriteDot renders the subgraph sub (node i = metagraph node
// nodeMap[i]) in Graphviz dot syntax.
func (mg *Metagraph) WriteDot(w io.Writer, sub *graph.Digraph, nodeMap []int, opt DotOptions) error {
	name := opt.Name
	if name == "" {
		name = "slice"
	}
	color := map[int]string{}
	for ci, comm := range opt.Communities {
		for _, n := range comm {
			color[n] = dotPalette[ci%len(dotPalette)]
		}
	}
	hi := map[int]bool{}
	for _, n := range opt.Highlight {
		hi[n] = true
	}
	sec := map[int]bool{}
	for _, n := range opt.Secondary {
		sec[n] = true
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse, style=filled, fontsize=10];\n", name); err != nil {
		return err
	}
	limit := sub.NumNodes()
	if opt.MaxNodes > 0 && opt.MaxNodes < limit {
		limit = opt.MaxNodes
	}
	// Deterministic node order.
	order := make([]int, sub.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return mg.Nodes[nodeMap[order[a]]].Display < mg.Nodes[nodeMap[order[b]]].Display
	})
	kept := map[int]bool{}
	for _, i := range order[:limit] {
		kept[i] = true
		g := nodeMap[i]
		fill := color[g]
		if fill == "" {
			fill = "gray90"
		}
		extra := ""
		switch {
		case hi[g]:
			extra = ", color=red, penwidth=3, width=1.2, height=0.8"
		case sec[g]:
			extra = ", color=orange, penwidth=3"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, fillcolor=%q%s];\n",
			i, mg.Nodes[g].Display, fill, extra); err != nil {
			return err
		}
	}
	var err error
	sub.Edges(func(u, v int) {
		if err != nil || !kept[u] || !kept[v] {
			return
		}
		_, err = fmt.Fprintf(w, "  n%d -> n%d;\n", u, v)
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}
