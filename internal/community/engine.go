package community

import (
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// This file is the parallel graph-kernel engine behind EdgeBetweenness
// and GirvanNewman. The kernels operate on a frozen graph.CSR snapshot
// — flat offsets/targets and stable edge ids — instead of the mutable
// adjacency-list Digraph, so the hot loops touch no maps and allocate
// nothing per BFS.
//
// Determinism is a hard invariant: for a given graph the engine
// produces bit-identical results at every parallelism level. Brandes
// accumulation is sharded by BFS source into a FIXED number of shards
// (a function of the source count only — graph.NumShards), each shard
// sums its sources in order into its own flat accumulator, and shard
// accumulators merge into the global score array in shard-index order.
// The floating-point reduction tree therefore never depends on the
// worker count; workers only decide which goroutine executes a shard.
// Tie-breaks when selecting removal edges are ordered by (score desc,
// canonical endpoints asc), a total order.

// brandesWS is one worker's scratch state for Brandes BFS passes. All
// slices are reused across sources and across recomputations.
type brandesWS struct {
	dist    []int32   // BFS level per node (-1 unvisited)
	sigma   []float64 // shortest-path counts
	delta   []float64 // dependency accumulation
	predCnt []int32   // predecessor count per node
	predBuf []int32   // flat predecessor storage: out-slot (edge id) per entry,
	// region of node w is [inOff[w], inOff[w]+predCnt[w])
	stack []int32 // nodes in BFS dequeue order
	queue []int32 // ring-cursor BFS queue
}

func newBrandesWS(n, m int) *brandesWS {
	return &brandesWS{
		dist:    make([]int32, n),
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		predCnt: make([]int32, n),
		predBuf: make([]int32, m),
		stack:   make([]int32, 0, n),
		queue:   make([]int32, 0, n),
	}
}

// source runs one Brandes BFS from s and accumulates undirected-edge
// dependencies into acc, which is indexed by the engine's current
// compact edge position (pos). Dead edges (alive[undirID] == false)
// are skipped.
func (w *brandesWS) source(c *graph.CSR, alive []bool, pos []int32, s int32, acc []float64) {
	n := c.NumNodes()
	w.stack = w.stack[:0]
	w.queue = w.queue[:0]
	for i := 0; i < n; i++ {
		w.dist[i] = -1
		w.sigma[i] = 0
		w.delta[i] = 0
		w.predCnt[i] = 0
	}
	w.dist[s] = 0
	w.sigma[s] = 1
	w.queue = append(w.queue, s)
	for head := 0; head < len(w.queue); head++ {
		v := w.queue[head]
		w.stack = append(w.stack, v)
		slot := c.OutStart(int(v))
		for _, t := range c.Out(int(v)) {
			k := slot
			slot++
			if alive != nil && !alive[c.UndirID(k)] {
				continue
			}
			if w.dist[t] < 0 {
				w.dist[t] = w.dist[v] + 1
				w.queue = append(w.queue, t)
			}
			if w.dist[t] == w.dist[v]+1 {
				w.sigma[t] += w.sigma[v]
				w.predBuf[c.InStart(int(t))+w.predCnt[t]] = k
				w.predCnt[t]++
			}
		}
	}
	for i := len(w.stack) - 1; i >= 0; i-- {
		t := w.stack[i]
		base := c.InStart(int(t))
		for j := int32(0); j < w.predCnt[t]; j++ {
			k := w.predBuf[base+j]
			v, _ := c.Endpoints(k)
			cc := w.sigma[v] / w.sigma[t] * (1 + w.delta[t])
			w.delta[v] += cc
			acc[pos[c.UndirID(k)]] += cc
		}
	}
}

// engine carries the frozen snapshot plus all reusable scratch for one
// betweenness/Girvan-Newman computation. It is not safe for concurrent
// use; the parallelism lives inside compute.
type engine struct {
	csr     *graph.CSR
	alive   []bool    // by undirected edge id; nil = all alive
	live    int       // alive edge count
	score   []float64 // by undirected edge id
	edgeGen []int32   // heap-entry generation per undirected edge id

	pos      []int32 // undirected edge id -> compact index in the current edge list
	posStamp []int32 // stamp per undirected edge id
	posGen   int32
	acc      []float64
	workers  []*brandesWS

	// Component scratch (stamp-marked so no per-query clearing).
	mark    []int32
	markGen int32
	queue   []int32

	allNodes []int32
	edges    []int32 // reusable edge-list buffer
}

func newEngine(c *graph.CSR) *engine {
	n := c.NumNodes()
	e := &engine{
		csr:      c,
		score:    make([]float64, c.NumUndirEdges()),
		edgeGen:  make([]int32, c.NumUndirEdges()),
		pos:      make([]int32, c.NumUndirEdges()),
		posStamp: make([]int32, c.NumUndirEdges()),
		mark:     make([]int32, n),
		queue:    make([]int32, 0, n),
		allNodes: make([]int32, n),
	}
	for i := range e.allNodes {
		e.allNodes[i] = int32(i)
	}
	return e
}

// compute runs Brandes over the given BFS sources and overwrites the
// scores of the given undirected edges (every other edge's score is
// untouched). sources and edges must be deterministic inputs (callers
// pass them in ascending/first-seen order); par only bounds the worker
// pool and never changes the result.
func (e *engine) compute(sources, edges []int32, par int) {
	if len(edges) == 0 {
		return
	}
	e.posGen++
	for j, id := range edges {
		e.pos[id] = int32(j)
		e.posStamp[id] = e.posGen
		e.score[id] = 0
	}
	shards := graph.NumShards(len(sources))
	L := len(edges)
	need := shards * L
	if cap(e.acc) < need {
		e.acc = make([]float64, need)
	}
	e.acc = e.acc[:need]
	for i := range e.acc {
		e.acc[i] = 0
	}
	nw := par
	if nw > shards {
		nw = shards
	}
	if nw < 1 {
		nw = 1
	}
	for len(e.workers) < nw {
		e.workers = append(e.workers, newBrandesWS(e.csr.NumNodes(), e.csr.NumEdges()))
	}
	graph.ParallelShards(par, shards, func(shard, worker int) {
		acc := e.acc[shard*L : (shard+1)*L]
		lo, hi := graph.ShardRange(len(sources), shards, shard)
		ws := e.workers[worker]
		for i := lo; i < hi; i++ {
			ws.source(e.csr, e.alive, e.pos, sources[i], acc)
		}
	})
	// Deterministic merge: shard-index order, then halve (each
	// undirected edge was reached from both BFS orientations).
	for s := 0; s < shards; s++ {
		acc := e.acc[s*L : (s+1)*L]
		for j, id := range edges {
			e.score[id] += acc[j]
		}
	}
	for _, id := range edges {
		e.score[id] /= 2
	}
}

// componentOf collects the component of s over alive edges, in BFS
// discovery order, marking nodes with the current stamp. The caller
// reads membership via marked and must not run two traversals at once.
func (e *engine) componentOf(s int32) []int32 {
	e.markGen++
	e.queue = e.queue[:0]
	e.queue = append(e.queue, s)
	e.mark[s] = e.markGen
	for head := 0; head < len(e.queue); head++ {
		u := e.queue[head]
		slot := e.csr.OutStart(int(u))
		for _, v := range e.csr.Out(int(u)) {
			k := slot
			slot++
			if e.alive != nil && !e.alive[e.csr.UndirID(k)] {
				continue
			}
			if e.mark[v] != e.markGen {
				e.mark[v] = e.markGen
				e.queue = append(e.queue, v)
			}
		}
	}
	return e.queue
}

// marked reports whether v was reached by the latest componentOf.
func (e *engine) marked(v int32) bool { return e.mark[v] == e.markGen }

// aliveEdgesAll returns every alive undirected edge id in ascending
// order, reusing the engine's edge buffer.
func (e *engine) aliveEdgesAll() []int32 {
	e.edges = e.edges[:0]
	for id := 0; id < e.csr.NumUndirEdges(); id++ {
		if e.alive == nil || e.alive[id] {
			e.edges = append(e.edges, int32(id))
		}
	}
	return e.edges
}

// aliveEdgesIn returns the alive undirected edges with both endpoints
// inside comp (which must be closed under alive edges), in first-seen
// order walking comp's nodes ascending. comp must be sorted.
func (e *engine) aliveEdgesIn(comp []int32) []int32 {
	e.posGen++
	e.edges = e.edges[:0]
	for _, u := range comp {
		slot := e.csr.OutStart(int(u))
		for range e.csr.Out(int(u)) {
			k := slot
			slot++
			id := e.csr.UndirID(k)
			if e.alive != nil && !e.alive[id] {
				continue
			}
			if e.posStamp[id] != e.posGen {
				e.posStamp[id] = e.posGen
				e.edges = append(e.edges, id)
			}
		}
	}
	return e.edges
}

// communities returns the connected components of the alive graph as
// sorted node-id slices, largest first (ties by first node), dropping
// components smaller than minSize.
func (e *engine) communities(minSize int) [][]int {
	n := e.csr.NumNodes()
	seen := make([]bool, n)
	var out [][]int
	stack := e.queue[:0]
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], int32(s))
		members := []int{s}
		for head := 0; head < len(stack); head++ {
			u := stack[head]
			slot := e.csr.OutStart(int(u))
			for _, v := range e.csr.Out(int(u)) {
				k := slot
				slot++
				if e.alive != nil && !e.alive[e.csr.UndirID(k)] {
					continue
				}
				if !seen[v] {
					seen[v] = true
					members = append(members, int(v))
					stack = append(stack, v)
				}
			}
		}
		if len(members) >= minSize {
			sort.Ints(members)
			out = append(out, members)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// --- removal heap -----------------------------------------------------

// gnEntry is a lazy max-heap entry: edges are never deleted in place;
// rescored edges get a new generation and stale entries are skipped at
// pop time.
type gnEntry struct {
	score float64
	u, v  int32 // canonical endpoints (tie-break)
	id    int32 // undirected edge id
	gen   int32
}

// beats is the total order the removal loop pops by: higher score
// first, then lexicographically smaller canonical endpoints — the same
// tie-break the map-based scan used.
func (a gnEntry) beats(b gnEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

type gnHeap []gnEntry

func (h *gnHeap) push(x gnEntry) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].beats((*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *gnHeap) pop() gnEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && old[l].beats(old[best]) {
			best = l
		}
		if r < last && old[r].beats(old[best]) {
			best = r
		}
		if best == i {
			break
		}
		old[i], old[best] = old[best], old[i]
		i = best
	}
	return top
}
