package community

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/climate-rca/rca/internal/graph"
)

// twoCliquesBridge builds two k-cliques joined by a single bridge edge,
// symmetrized. Returns the graph and the two expected communities.
func twoCliquesBridge(k int) (*graph.Digraph, [][]int) {
	g := graph.New(2 * k)
	g.AddNodes(2 * k)
	addClique := func(offset int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(offset+i, offset+j)
				g.AddEdge(offset+j, offset+i)
			}
		}
	}
	addClique(0)
	addClique(k)
	g.AddEdge(k-1, k)
	g.AddEdge(k, k-1)
	a := make([]int, k)
	b := make([]int, k)
	for i := 0; i < k; i++ {
		a[i] = i
		b[i] = k + i
	}
	return g, [][]int{a, b}
}

func TestEdgeBetweennessBridgeDominates(t *testing.T) {
	g, _ := twoCliquesBridge(4)
	eb := EdgeBetweenness(g)
	bridge := eb[[2]int32{3, 4}]
	for e, s := range eb {
		if e == ([2]int32{3, 4}) {
			continue
		}
		if s >= bridge {
			t.Fatalf("edge %v betweenness %v >= bridge %v", e, s, bridge)
		}
	}
	// Exact value: bridge carries all 4*4=16 cross pairs once.
	if math.Abs(bridge-16) > 1e-9 {
		t.Fatalf("bridge betweenness = %v; want 16", bridge)
	}
}

func TestEdgeBetweennessPathGraph(t *testing.T) {
	// Path a-b-c (undirected): edge (a,b) carries pairs {a-b, a-c} = 2.
	g := graph.New(3)
	g.AddNodes(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	eb := EdgeBetweenness(g)
	if math.Abs(eb[[2]int32{0, 1}]-2) > 1e-9 {
		t.Fatalf("eb(0,1) = %v; want 2", eb[[2]int32{0, 1}])
	}
}

func TestGirvanNewmanSplitsCliques(t *testing.T) {
	g, want := twoCliquesBridge(5)
	got := GirvanNewman(g, 1, 0)
	if len(got) != 2 {
		t.Fatalf("communities = %d; want 2: %v", len(got), got)
	}
	// Order: largest first, tie broken by first node; both size 5 so
	// community containing node 0 first.
	if !reflect.DeepEqual(got[0], want[0]) || !reflect.DeepEqual(got[1], want[1]) {
		t.Fatalf("got %v; want %v", got, want)
	}
}

func TestGirvanNewmanDoesNotMutateInput(t *testing.T) {
	g, _ := twoCliquesBridge(4)
	edges := g.NumEdges()
	GirvanNewman(g, 1, 0)
	if g.NumEdges() != edges {
		t.Fatalf("input mutated: %d -> %d edges", edges, g.NumEdges())
	}
}

func TestGirvanNewmanMinSize(t *testing.T) {
	g, _ := twoCliquesBridge(3)
	iso := g.AddNode() // singleton community
	_ = iso
	got := GirvanNewman(g, 1, 3)
	for _, c := range got {
		if len(c) < 3 {
			t.Fatalf("community below min size: %v", c)
		}
	}
}

func TestGirvanNewmanEmptyGraph(t *testing.T) {
	g := graph.New(0)
	if got := GirvanNewman(g, 3, 0); len(got) != 0 {
		t.Fatalf("empty graph communities = %v", got)
	}
}

func TestGirvanNewmanDeeper(t *testing.T) {
	// Three cliques in a chain; two G-N iterations should yield >= 3
	// communities.
	k := 4
	g := graph.New(3 * k)
	g.AddNodes(3 * k)
	clique := func(off int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(off+i, off+j)
				g.AddEdge(off+j, off+i)
			}
		}
	}
	clique(0)
	clique(k)
	clique(2 * k)
	g.AddEdge(k-1, k)
	g.AddEdge(k, k-1)
	g.AddEdge(2*k-1, 2*k)
	g.AddEdge(2*k, 2*k-1)
	got := GirvanNewman(g, 2, 0)
	if len(got) < 3 {
		t.Fatalf("after 2 iterations, %d communities: %v", len(got), got)
	}
}

func TestModularityCliquePartitionBeatsRandom(t *testing.T) {
	g, want := twoCliquesBridge(5)
	good := Modularity(g, want)
	// A deliberately bad partition mixing the cliques.
	bad := Modularity(g, [][]int{{0, 5, 1, 6}, {2, 7, 3, 8}, {4, 9}})
	if good <= bad {
		t.Fatalf("modularity good=%v <= bad=%v", good, bad)
	}
	if good <= 0 {
		t.Fatalf("clique partition modularity %v; want > 0", good)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	if q := Modularity(graph.New(0), nil); q != 0 {
		t.Fatalf("modularity = %v", q)
	}
}

func TestLabelPropagationCliques(t *testing.T) {
	g, _ := twoCliquesBridge(6)
	got := LabelPropagation(g, 50)
	if len(got) > 3 {
		t.Fatalf("too many communities: %v", got)
	}
	// All of clique A should share a community.
	lbl := make(map[int]int)
	for ci, c := range got {
		for _, v := range c {
			lbl[v] = ci
		}
	}
	for i := 1; i < 6; i++ {
		if lbl[i] != lbl[0] {
			t.Fatalf("clique A split: %v", got)
		}
	}
}

// Property: G-N output is a partition of a subset of nodes (disjoint).
func TestGirvanNewmanDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := graph.New(n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
				g.AddEdge(v, u)
			}
		}
		comms := GirvanNewman(g, 1, 0)
		seen := make(map[int]bool)
		total := 0
		for _, c := range comms {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: modularity of any partition is within [-1, 1].
func TestModularityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := graph.New(n)
		g.AddNodes(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
				g.AddEdge(v, u)
			}
		}
		comms := LabelPropagation(g, 20)
		q := Modularity(g, comms)
		return q >= -1.0001 && q <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
