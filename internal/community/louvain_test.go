package community

import (
	"testing"

	"github.com/climate-rca/rca/internal/graph"
)

func TestLouvainSeparatesCliques(t *testing.T) {
	g, want := twoCliquesBridge(6)
	comms := Louvain(g, 0, 0)
	if len(comms) != 2 {
		t.Fatalf("communities = %d: %v", len(comms), comms)
	}
	// Each clique must land in one community (order may differ).
	lbl := map[int]int{}
	for ci, c := range comms {
		for _, v := range c {
			lbl[v] = ci
		}
	}
	for _, clique := range want {
		for _, v := range clique[1:] {
			if lbl[v] != lbl[clique[0]] {
				t.Fatalf("clique split: %v", comms)
			}
		}
	}
}

func TestLouvainModularityPositive(t *testing.T) {
	g, _ := twoCliquesBridge(5)
	comms := Louvain(g, 0, 0)
	if q := Modularity(g, comms); q <= 0.2 {
		t.Fatalf("modularity = %v", q)
	}
}

func TestLouvainEmptyAndEdgeless(t *testing.T) {
	if got := Louvain(newEmpty(0), 0, 0); got != nil {
		t.Fatalf("empty graph: %v", got)
	}
	g := newEmpty(4)
	comms := Louvain(g, 0, 0)
	if len(comms) != 4 {
		t.Fatalf("edgeless: %v", comms)
	}
	if got := Louvain(g, 0, 2); len(got) != 0 {
		t.Fatalf("minSize filter: %v", got)
	}
}

func TestLouvainAgreesWithGNOnCliques(t *testing.T) {
	g, _ := twoCliquesBridge(5)
	gn := GirvanNewman(g, 1, 0)
	lv := Louvain(g, 0, 0)
	if len(gn) != len(lv) {
		t.Fatalf("G-N %d communities vs Louvain %d", len(gn), len(lv))
	}
	if Modularity(g, lv) < Modularity(g, gn)-0.05 {
		t.Fatalf("Louvain modularity much worse: %v vs %v",
			Modularity(g, lv), Modularity(g, gn))
	}
}

func newEmpty(n int) *graph.Digraph {
	g := graph.New(n)
	g.AddNodes(n)
	return g
}
