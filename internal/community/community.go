// Package community implements community detection for the refinement
// procedure: Brandes edge betweenness, the Girvan-Newman algorithm the
// paper uses (§5.2), modularity scoring, and asynchronous label
// propagation as a fast alternative for ablation studies.
//
// All algorithms treat the input graph as undirected; callers pass the
// symmetrized view (graph.Digraph.Undirected), which the paper notes is
// equivalent to working on the weakly connected graph.
package community

import (
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// EdgeBetweenness computes Brandes betweenness centrality for every
// undirected edge of g. g must be symmetric (u->v implies v->u); the
// result maps the canonical orientation (min(u,v), max(u,v)) to its
// score. BFS shortest paths are used, matching Girvan-Newman step 1.
//
// This is the map-shaped convenience wrapper; the kernel itself is
// EdgeBetweennessFlat, which works on a frozen graph.CSR snapshot and
// returns flat scores indexed by undirected edge id.
func EdgeBetweenness(g *graph.Digraph) map[[2]int32]float64 {
	return EdgeBetweennessPar(g, 1)
}

// EdgeBetweennessPar is EdgeBetweenness with a bounded worker pool.
// Results are bit-identical for every par, including 1.
func EdgeBetweennessPar(g *graph.Digraph, par int) map[[2]int32]float64 {
	csr := graph.Freeze(g)
	flat := EdgeBetweennessFlat(csr, par)
	scores := make(map[[2]int32]float64, len(flat))
	for id, s := range flat {
		u, v := csr.UndirEndpoints(int32(id))
		if u == v {
			continue // self-loops carry no shortest paths
		}
		scores[[2]int32{u, v}] = s
	}
	return scores
}

// EdgeBetweennessFlat computes Brandes edge betweenness on a frozen
// CSR snapshot of a symmetric graph, sharding BFS sources across a
// bounded worker pool. The result is indexed by undirected edge id.
// Accumulation uses per-shard flat []float64 accumulators merged in
// fixed shard order, so the result is bit-identical at every
// parallelism level.
func EdgeBetweennessFlat(c *graph.CSR, par int) []float64 {
	e := newEngine(c)
	e.compute(e.allNodes, e.aliveEdgesAll(), par)
	return e.score
}

func canonEdge(u, v int32) [2]int32 {
	if u < v {
		return [2]int32{u, v}
	}
	return [2]int32{v, u}
}

// GirvanNewman runs `iterations` rounds of the Girvan-Newman procedure
// on the symmetric graph g. One round removes highest-betweenness edges
// until the number of connected components increases (the practical
// formulation of Newman & Girvan 2004 that the paper adopts). It
// returns the final communities as sorted node-id slices, largest
// first. minSize filters out communities smaller than minSize nodes
// (the paper omits communities smaller than 3-4 nodes); pass 0 to keep
// everything.
//
// The graph g is not modified: the procedure freezes a CSR snapshot
// once and tracks removals in a flat alive mask.
func GirvanNewman(g *graph.Digraph, iterations, minSize int) [][]int {
	return GirvanNewmanPar(g, iterations, minSize, 1)
}

// GirvanNewmanPar is GirvanNewman with a bounded worker pool sharding
// the betweenness recomputations. Results are bit-identical for every
// par, including 1.
func GirvanNewmanPar(g *graph.Digraph, iterations, minSize, par int) [][]int {
	if g.NumNodes() == 0 {
		return nil
	}
	e := newEngine(graph.Freeze(g))
	e.alive = make([]bool, e.csr.NumUndirEdges())
	for i := range e.alive {
		e.alive[i] = true
	}
	e.live = len(e.alive)
	for it := 0; it < iterations; it++ {
		if !splitOnce(e, par) {
			break // no edges left to remove
		}
	}
	return e.communities(minSize)
}

// splitOnce removes maximum-betweenness edges until a component splits.
// It reports false when the graph has no edges left to remove.
//
// Instead of re-scanning a score map and re-deriving the global
// component count per removal, the engine keeps a lazy max-heap over
// edge scores (score desc, canonical endpoints asc — the same ordered
// tie-break the map scan applied) and answers "did this removal split
// a component?" with a single incremental u→v reachability check over
// the alive mask. Betweenness is then recomputed only on the touched
// component (the other components' scores cannot change — the paper's
// step 3 note), with BFS sources restricted to the component's nodes.
func splitOnce(e *engine, par int) bool {
	if e.live == 0 {
		return false
	}
	edges := e.aliveEdgesAll()
	e.compute(e.allNodes, edges, par)
	var h gnHeap
	for _, id := range edges {
		u, v := e.csr.UndirEndpoints(id)
		h.push(gnEntry{score: e.score[id], u: u, v: v, id: id, gen: e.edgeGen[id]})
	}
	for len(h) > 0 {
		top := h.pop()
		if !e.alive[top.id] || top.gen != e.edgeGen[top.id] {
			continue // removed or rescored since it was pushed
		}
		e.alive[top.id] = false
		e.live--
		if top.u == top.v {
			continue // self-loop: removal cannot split anything
		}
		// Incremental connectivity: the removal splits a component iff
		// the removed edge's endpoints are no longer connected.
		comp := e.componentOf(top.u)
		if !e.marked(top.v) {
			return true
		}
		// Recompute betweenness restricted to the touched component:
		// sources are its nodes (ascending, matching the old subgraph
		// extraction order), scores overwrite its surviving edges, and
		// fresh heap entries supersede the stale generation.
		sorted := append([]int32(nil), comp...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		compEdges := e.aliveEdgesIn(sorted)
		e.compute(sorted, compEdges, par)
		for _, id := range compEdges {
			e.edgeGen[id]++
			u, v := e.csr.UndirEndpoints(id)
			h.push(gnEntry{score: e.score[id], u: u, v: v, id: id, gen: e.edgeGen[id]})
		}
	}
	return false
}

// Modularity computes Newman's modularity Q of the given partition of
// the symmetric graph g. communities holds disjoint node-id slices; any
// node not listed forms its own singleton community.
func Modularity(g *graph.Digraph, communities [][]int) float64 {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	for ci, c := range communities {
		for _, v := range c {
			label[v] = ci
		}
	}
	next := len(communities)
	for i := range label {
		if label[i] == -1 {
			label[i] = next
			next++
		}
	}
	m2 := float64(g.NumEdges()) // symmetric graph: NumEdges == 2m
	if m2 == 0 {
		return 0
	}
	var q float64
	degSum := make([]float64, next)
	inSum := make([]float64, next)
	for u := 0; u < n; u++ {
		degSum[label[u]] += float64(g.OutDegree(u))
		for _, v := range g.Out(u) {
			if label[v] == label[u] {
				inSum[label[u]]++
			}
		}
	}
	for c := 0; c < next; c++ {
		q += inSum[c]/m2 - (degSum[c]/m2)*(degSum[c]/m2)
	}
	return q
}

// LabelPropagation runs deterministic asynchronous label propagation on
// the symmetric graph g: every node adopts the most frequent label among
// its neighbors (ties broken by smallest label) until a fixed point or
// maxRounds. It is the fast community-detection alternative used by the
// ablation benches.
func LabelPropagation(g *graph.Digraph, maxRounds int) [][]int {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	counts := make(map[int]int)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if g.OutDegree(u) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, v := range g.Out(u) {
				counts[label[v]]++
			}
			best, bestCount := label[u], 0
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != label[u] {
				label[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	groups := make(map[int][]int)
	for u, l := range label {
		groups[l] = append(groups[l], u)
	}
	out := make([][]int, 0, len(groups))
	for _, c := range groups {
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
