// Package community implements community detection for the refinement
// procedure: Brandes edge betweenness, the Girvan-Newman algorithm the
// paper uses (§5.2), modularity scoring, and asynchronous label
// propagation as a fast alternative for ablation studies.
//
// All algorithms treat the input graph as undirected; callers pass the
// symmetrized view (graph.Digraph.Undirected), which the paper notes is
// equivalent to working on the weakly connected graph.
package community

import (
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// EdgeBetweenness computes Brandes betweenness centrality for every
// undirected edge of g. g must be symmetric (u->v implies v->u); the
// result maps the canonical orientation (min(u,v), max(u,v)) to its
// score. BFS shortest paths are used, matching Girvan-Newman step 1.
func EdgeBetweenness(g *graph.Digraph) map[[2]int32]float64 {
	n := g.NumNodes()
	scores := make(map[[2]int32]float64, g.NumEdges()/2)

	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Out(int(v)) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				c := sigma[v] / sigma[w] * (1 + delta[w])
				delta[v] += c
				key := canonEdge(v, w)
				scores[key] += c
			}
		}
	}
	// Each undirected edge was counted from both BFS "directions"
	// (source s reaching it as (v,w)); halve to get the undirected
	// betweenness convention.
	for k := range scores {
		scores[k] /= 2
	}
	return scores
}

func canonEdge(u, v int32) [2]int32 {
	if u < v {
		return [2]int32{u, v}
	}
	return [2]int32{v, u}
}

// GirvanNewman runs `iterations` rounds of the Girvan-Newman procedure
// on the symmetric graph g. One round removes highest-betweenness edges
// until the number of connected components increases (the practical
// formulation of Newman & Girvan 2004 that the paper adopts). It
// returns the final communities as sorted node-id slices, largest
// first. minSize filters out communities smaller than minSize nodes
// (the paper omits communities smaller than 3-4 nodes); pass 0 to keep
// everything.
//
// The graph g is not modified; work happens on a clone.
func GirvanNewman(g *graph.Digraph, iterations, minSize int) [][]int {
	work := g.Clone()
	for it := 0; it < iterations; it++ {
		if !splitOnce(work) {
			break // no edges left to remove
		}
	}
	comps := work.WeaklyConnectedComponents()
	var out [][]int
	for _, c := range comps {
		if len(c) >= minSize {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// splitOnce removes maximum-betweenness edges until the component count
// increases. It reports false when the graph has no edges left.
// Betweenness is recomputed after each removal, restricted to the
// component containing the removed edge (the other components'
// betweenness cannot change — the paper's step 3 note).
func splitOnce(g *graph.Digraph) bool {
	if g.NumEdges() == 0 {
		return false
	}
	before := len(g.WeaklyConnectedComponents())
	scores := EdgeBetweenness(g)
	for g.NumEdges() > 0 {
		// Pick the max-betweenness edge, deterministic tie-break.
		var best [2]int32
		bestScore := -1.0
		for e, s := range scores {
			if s > bestScore || (s == bestScore && less(e, best)) {
				best, bestScore = e, s
			}
		}
		if bestScore < 0 {
			return false
		}
		u, v := int(best[0]), int(best[1])
		g.RemoveEdge(u, v)
		g.RemoveEdge(v, u)
		if len(g.WeaklyConnectedComponents()) > before {
			return true
		}
		// Recompute betweenness on the component containing u; merge
		// back into the global map for edges of that component.
		comp := componentOf(g, u)
		sub, mapping := g.Subgraph(comp)
		delete(scores, best)
		// Remove stale entries belonging to this component.
		inComp := make(map[int32]bool, len(comp))
		for _, c := range comp {
			inComp[int32(c)] = true
		}
		for e := range scores {
			if inComp[e[0]] && inComp[e[1]] {
				delete(scores, e)
			}
		}
		for e, s := range EdgeBetweenness(sub) {
			scores[canonEdge(int32(mapping[e[0]]), int32(mapping[e[1]]))] = s
		}
	}
	return false
}

func less(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func componentOf(g *graph.Digraph, s int) []int {
	seen := make(map[int]bool)
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if !seen[int(v)] {
				seen[int(v)] = true
				queue = append(queue, int(v))
			}
		}
		for _, v := range g.In(u) {
			if !seen[int(v)] {
				seen[int(v)] = true
				queue = append(queue, int(v))
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Modularity computes Newman's modularity Q of the given partition of
// the symmetric graph g. communities holds disjoint node-id slices; any
// node not listed forms its own singleton community.
func Modularity(g *graph.Digraph, communities [][]int) float64 {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	for ci, c := range communities {
		for _, v := range c {
			label[v] = ci
		}
	}
	next := len(communities)
	for i := range label {
		if label[i] == -1 {
			label[i] = next
			next++
		}
	}
	m2 := float64(g.NumEdges()) // symmetric graph: NumEdges == 2m
	if m2 == 0 {
		return 0
	}
	var q float64
	degSum := make([]float64, next)
	inSum := make([]float64, next)
	for u := 0; u < n; u++ {
		degSum[label[u]] += float64(g.OutDegree(u))
		for _, v := range g.Out(u) {
			if label[v] == label[u] {
				inSum[label[u]]++
			}
		}
	}
	for c := 0; c < next; c++ {
		q += inSum[c]/m2 - (degSum[c]/m2)*(degSum[c]/m2)
	}
	return q
}

// LabelPropagation runs deterministic asynchronous label propagation on
// the symmetric graph g: every node adopts the most frequent label among
// its neighbors (ties broken by smallest label) until a fixed point or
// maxRounds. It is the fast community-detection alternative used by the
// ablation benches.
func LabelPropagation(g *graph.Digraph, maxRounds int) [][]int {
	n := g.NumNodes()
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	counts := make(map[int]int)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if g.OutDegree(u) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, v := range g.Out(u) {
				counts[label[v]]++
			}
			best, bestCount := label[u], 0
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != label[u] {
				label[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	groups := make(map[int][]int)
	for u, l := range label {
		groups[l] = append(groups[l], u)
	}
	out := make([][]int, 0, len(groups))
	for _, c := range groups {
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
