package community

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/climate-rca/rca/internal/graph"
)

// clusteredGraph builds k dense clusters of size s with sparse
// inter-cluster bridges, symmetrized — the shape G-N is good at.
func clusteredGraph(k, s int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(k * s)
	g.AddNodes(k * s)
	for c := 0; c < k; c++ {
		off := c * s
		for i := 0; i < 3*s; i++ {
			u, v := off+rng.Intn(s), off+rng.Intn(s)
			if u != v {
				g.AddEdge(u, v)
				g.AddEdge(v, u)
			}
		}
		if c > 0 {
			u, v := (c-1)*s+rng.Intn(s), off+rng.Intn(s)
			g.AddEdge(u, v)
			g.AddEdge(v, u)
		}
	}
	return g
}

func BenchmarkEdgeBetweenness(b *testing.B) {
	g := clusteredGraph(4, 60, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g)
	}
}

// BenchmarkEdgeBetweennessFlat measures the CSR kernel alone (frozen
// once, no map materialization) at full parallelism.
func BenchmarkEdgeBetweennessFlat(b *testing.B) {
	g := clusteredGraph(4, 60, 1)
	csr := graph.Freeze(g)
	par := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweennessFlat(csr, par)
	}
}

func BenchmarkGirvanNewmanOneRound(b *testing.B) {
	g := clusteredGraph(3, 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GirvanNewman(g, 1, 3)
	}
}

// BenchmarkGirvanNewmanOneRoundPar is the same round with the worker
// pool at GOMAXPROCS; output is bit-identical to the sequential bench.
func BenchmarkGirvanNewmanOneRoundPar(b *testing.B) {
	g := clusteredGraph(3, 50, 2)
	par := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GirvanNewmanPar(g, 1, 3, par)
	}
}

func BenchmarkLabelPropagation(b *testing.B) {
	g := clusteredGraph(8, 100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LabelPropagation(g, 30)
	}
}

func BenchmarkModularity(b *testing.B) {
	g := clusteredGraph(8, 100, 4)
	comms := LabelPropagation(g, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Modularity(g, comms)
	}
}
