package community

import (
	"sort"

	"github.com/climate-rca/rca/internal/graph"
)

// Louvain runs a single-level Louvain-style greedy modularity
// optimization on the symmetric graph g: nodes start in singleton
// communities and repeatedly move to the neighboring community with
// the greatest positive modularity gain until a fixed point (or
// maxRounds). It is orders of magnitude faster than Girvan-Newman on
// paper-scale subgraphs and serves as the scalable alternative in the
// refinement options.
//
// minSize filters the returned communities like GirvanNewman does.
func Louvain(g *graph.Digraph, maxRounds, minSize int) [][]int {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if maxRounds <= 0 {
		maxRounds = 20
	}
	label := make([]int, n)
	deg := make([]float64, n)
	for i := range label {
		label[i] = i
		deg[i] = float64(g.OutDegree(i)) // symmetric: out == in
	}
	var m2 float64 // 2m in undirected terms == directed edge count here
	for i := 0; i < n; i++ {
		m2 += deg[i]
	}
	if m2 == 0 {
		return filterComms(groupByLabel(label), minSize)
	}
	// degSum[c] is the total degree of community c.
	degSum := make([]float64, n)
	for i := 0; i < n; i++ {
		degSum[label[i]] += deg[i]
	}
	neighWeight := make(map[int]float64)
	for round := 0; round < maxRounds; round++ {
		moved := false
		for u := 0; u < n; u++ {
			if g.OutDegree(u) == 0 {
				continue
			}
			for k := range neighWeight {
				delete(neighWeight, k)
			}
			for _, v := range g.Out(u) {
				if int(v) != u {
					neighWeight[label[v]]++
				}
			}
			cu := label[u]
			// Remove u from its community.
			degSum[cu] -= deg[u]
			bestC, bestGain := cu, 0.0
			// Gain of joining community c:
			//   k_{u,c}/m - deg(u)*degSum[c]/(2m^2)   (times 2/m2 const)
			base := neighWeight[cu] - deg[u]*degSum[cu]/m2
			keys := make([]int, 0, len(neighWeight))
			for c := range neighWeight {
				keys = append(keys, c)
			}
			sort.Ints(keys) // deterministic iteration
			for _, c := range keys {
				if c == cu {
					continue
				}
				gain := neighWeight[c] - deg[u]*degSum[c]/m2 - base
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && gain > 0 && c < bestC) {
					bestC, bestGain = c, gain
				}
			}
			degSum[bestC] += deg[u]
			if bestC != cu {
				label[u] = bestC
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return filterComms(groupByLabel(label), minSize)
}

func groupByLabel(label []int) [][]int {
	groups := make(map[int][]int)
	for u, l := range label {
		groups[l] = append(groups[l], u)
	}
	out := make([][]int, 0, len(groups))
	for _, c := range groups {
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

func filterComms(comms [][]int, minSize int) [][]int {
	if minSize <= 1 {
		return comms
	}
	var out [][]int
	for _, c := range comms {
		if len(c) >= minSize {
			out = append(out, c)
		}
	}
	return out
}
