package fault

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

// Spec grammar (the -faults flag / RCAD_FAULTS value):
//
//	spec    = clause *( ";" clause )
//	clause  = point ":" action [ "@" param *( "," param ) ]
//	point   = lowercase dotted identifier, e.g. "artifact.put"
//	action  = "eio" | "crash" | "corrupt" | "sleep"
//	param   = probability (bare float in (0,1], default 1)
//	        | "after=" N   (first N calls at the point pass; default 0)
//	        | "times=" N   (max fires; default unlimited)
//	        | "ms=" N      (sleep duration; sleep only, default 100)
//
// Examples:
//
//	artifact.put:eio@0.1                 10% of blob writes fail
//	worker.exec:crash@after=2            the 3rd execution kills the worker
//	artifact.get:corrupt@0.05,times=3    flip a byte in 5% of reads, 3 max
//	worker.exec:sleep@ms=500             every execution stalls 500ms
//
// Parse is strict — a malformed clause is an error, never a silently
// adjusted rule — because a chaos plan that half-applies is worse than
// one that refuses to run.

// Parse builds a plane from a spec string and a seed. An empty spec
// returns an empty plane (hooks never fire).
func Parse(spec string, seed uint64) (*Plane, error) {
	rules, err := ParseRules(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules), nil
}

// ParseRules parses a spec into its rule list without binding a seed.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("fault: empty clause in spec %q", spec)
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseClause(clause string) (Rule, error) {
	head, params, hasParams := strings.Cut(clause, "@")
	point, action, ok := strings.Cut(head, ":")
	if !ok {
		return Rule{}, fmt.Errorf("fault: clause %q: want point:action", clause)
	}
	if err := checkPoint(point); err != nil {
		return Rule{}, err
	}
	r := Rule{Point: point, Prob: 1}
	switch action {
	case "eio":
		r.Action = ActEIO
	case "crash":
		r.Action = ActCrash
	case "corrupt":
		r.Action = ActCorrupt
	case "sleep":
		r.Action = ActSleep
		r.Sleep = 100 * time.Millisecond
	default:
		return Rule{}, fmt.Errorf("fault: clause %q: unknown action %q (want eio, crash, corrupt or sleep)", clause, action)
	}
	if !hasParams {
		return r, nil
	}
	if params == "" {
		return Rule{}, fmt.Errorf("fault: clause %q: empty parameter list after '@'", clause)
	}
	seen := map[string]bool{}
	for _, param := range strings.Split(params, ",") {
		key, val, isKV := strings.Cut(param, "=")
		if !isKV {
			key = "prob"
			val = param
		}
		if seen[key] {
			return Rule{}, fmt.Errorf("fault: clause %q: duplicate %s parameter", clause, key)
		}
		seen[key] = true
		switch key {
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 || p > 1 {
				return Rule{}, fmt.Errorf("fault: clause %q: probability %q not in (0, 1]", clause, val)
			}
			r.Prob = p
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("fault: clause %q: after=%q not a non-negative integer", clause, val)
			}
			r.After = n
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("fault: clause %q: times=%q not a positive integer", clause, val)
			}
			r.Times = n
		case "ms":
			if r.Action != ActSleep {
				return Rule{}, fmt.Errorf("fault: clause %q: ms= only applies to sleep", clause)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("fault: clause %q: ms=%q not a positive integer", clause, val)
			}
			r.Sleep = time.Duration(n) * time.Millisecond
		default:
			return Rule{}, fmt.Errorf("fault: clause %q: unknown parameter %q", clause, key)
		}
	}
	return r, nil
}

// checkPoint validates a point name: dot-separated lowercase labels,
// each starting with a letter ([a-z][a-z0-9_]*).
func checkPoint(point string) error {
	if point == "" {
		return fmt.Errorf("fault: empty fault point")
	}
	for _, label := range strings.Split(point, ".") {
		if label == "" {
			return fmt.Errorf("fault: point %q: empty dotted label", point)
		}
		for i := 0; i < len(label); i++ {
			c := label[i]
			switch {
			case c >= 'a' && c <= 'z':
			case c == '_', c >= '0' && c <= '9':
				if i == 0 {
					return fmt.Errorf("fault: point %q: label %q must start with a letter", point, label)
				}
			default:
				return fmt.Errorf("fault: point %q: bad character %q", point, c)
			}
		}
	}
	return nil
}

// Format renders rules back to the canonical spec string; Parse of the
// result yields the same rules (the fuzz-pinned round-trip property).
func Format(rules []Rule) string {
	clauses := make([]string, 0, len(rules))
	for _, r := range rules {
		var b strings.Builder
		b.WriteString(r.Point)
		b.WriteByte(':')
		b.WriteString(r.Action.String())
		var params []string
		if r.Prob < 1 {
			params = append(params, strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.After > 0 {
			params = append(params, "after="+strconv.Itoa(r.After))
		}
		if r.Times > 0 {
			params = append(params, "times="+strconv.Itoa(r.Times))
		}
		if r.Action == ActSleep {
			params = append(params, "ms="+strconv.Itoa(int(r.Sleep/time.Millisecond)))
		}
		if len(params) > 0 {
			b.WriteByte('@')
			b.WriteString(strings.Join(params, ","))
		}
		clauses = append(clauses, b.String())
	}
	return strings.Join(clauses, ";")
}

// FromEnv builds the process plane from RCAD_FAULTS / RCAD_FAULT_SEED
// (seed defaults to 1). An unset RCAD_FAULTS returns (nil, nil).
func FromEnv() (*Plane, error) {
	spec := os.Getenv("RCAD_FAULTS")
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if s := os.Getenv("RCAD_FAULT_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: RCAD_FAULT_SEED=%q: %v", s, err)
		}
		seed = n
	}
	return Parse(spec, seed)
}
