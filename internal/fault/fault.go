// Package fault is the deterministic fault-injection plane: named
// fault points threaded through the artifact store's filesystem ops,
// the shared queue's lease lifecycle and worker job execution, driven
// by a scripted/probabilistic plan parsed from a compact spec
// ("artifact.put:eio@0.1;worker.exec:crash@after=2") plus a seed.
//
// The plane exists so the service layer's failure handling — retry
// with backoff, the dead-letter queue, the store's degraded mode,
// stale-lease stealing — is testable on demand instead of only under
// real hardware trouble: chaos runs reproduce from (spec, seed)
// because every probabilistic rule draws from its own splitmix64
// stream keyed by (seed, point, rule index), independent of what any
// other fault point does.
//
// Production code calls Hook (control points) or HookData (points
// that carry a byte payload, where the "corrupt" action can tamper
// with it) with a point name; with no plane installed both are
// near-free (one atomic pointer load). Tests and the CLIs install a
// plane process-wide with SetGlobal (the -faults flag / RCAD_FAULTS
// env var), or scope one to a call tree with With.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The named fault points wired through the stack. Specs may name
// points outside this list (they parse fine and never fire), so new
// hooks don't invalidate old plans.
const (
	// PointArtifactPut fires inside Store.Put, before the blob write.
	PointArtifactPut = "artifact.put"
	// PointArtifactGet fires inside Store.Get, after the blob read.
	PointArtifactGet = "artifact.get"
	// PointQueueLease fires inside the queue's lease acquisition.
	PointQueueLease = "queue.lease"
	// PointQueueDone fires inside the queue's completion marker write.
	PointQueueDone = "queue.done"
	// PointWorkerExec fires at the top of each job execution attempt.
	PointWorkerExec = "worker.exec"
)

// ErrInjected marks every error returned by a fired fault rule.
// Callers classify injected failures as transient (retryable) with
// IsInjected / errors.Is.
var ErrInjected = errors.New("fault: injected I/O error")

// IsInjected reports whether err originates from a fired fault rule.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Action is what a fired rule does to the hooked operation.
type Action uint8

// The fault actions a rule can carry.
const (
	// ActEIO fails the operation with ErrInjected.
	ActEIO Action = iota
	// ActCrash kills the process immediately (os.Exit(137), the
	// SIGKILL convention): no defers, no lease releases, no flushes —
	// exactly what a crashed worker leaves behind.
	ActCrash
	// ActCorrupt flips one deterministically chosen byte of the
	// payload at a HookData point (simulated torn write / disk rot).
	// Ignored at payload-less Hook points.
	ActCorrupt
	// ActSleep delays the operation (deadline/timeout testing).
	ActSleep
)

func (a Action) String() string {
	switch a {
	case ActEIO:
		return "eio"
	case ActCrash:
		return "crash"
	case ActCorrupt:
		return "corrupt"
	case ActSleep:
		return "sleep"
	}
	return fmt.Sprintf("action(%d)", a)
}

// Rule is one parsed fault clause: at Point, perform Action with
// probability Prob per call, arming only after the first After calls
// and firing at most Times times (0 = unlimited).
type Rule struct {
	Point  string
	Action Action
	Prob   float64       // (0, 1]; 1 = every armed call
	After  int           // calls at the point that pass before arming
	Times  int           // max fires; 0 = unlimited
	Sleep  time.Duration // ActSleep delay
}

// ruleState is a rule plus its mutable firing state.
type ruleState struct {
	Rule
	fired int
	rng   uint64 // per-rule splitmix64 stream
}

// Plane is a set of armed fault rules with deterministic per-rule
// randomness. Safe for concurrent use; the zero value and the nil
// plane inject nothing.
type Plane struct {
	seed  uint64
	rules []*ruleState

	mu       sync.Mutex
	byPoint  map[string][]*ruleState
	calls    map[string]uint64
	injected map[string]uint64
	total    atomic.Uint64
}

// New builds a plane from parsed rules. Each rule's random stream is
// seeded by (seed, point, index-in-spec), so streams are independent
// of call interleaving across points.
func New(seed uint64, rules []Rule) *Plane {
	p := &Plane{
		seed:     seed,
		byPoint:  make(map[string][]*ruleState),
		calls:    make(map[string]uint64),
		injected: make(map[string]uint64),
	}
	for i, r := range rules {
		rs := &ruleState{Rule: r, rng: ruleSeed(seed, r.Point, i)}
		p.rules = append(p.rules, rs)
		p.byPoint[r.Point] = append(p.byPoint[r.Point], rs)
	}
	return p
}

// Seed returns the seed the plane was built with.
func (p *Plane) Seed() uint64 { return p.seed }

// Rules returns the plane's rules in spec order.
func (p *Plane) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	for i, rs := range p.rules {
		out[i] = rs.Rule
	}
	return out
}

// ruleSeed folds the point name and rule index into the plan seed
// (FNV-1a over the identity, xored into a splitmix64 warmup).
func ruleSeed(seed uint64, point string, idx int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= prime64
	}
	h ^= uint64(idx) + 0x9e3779b97f4a7c15
	h *= prime64
	s := seed ^ h
	// One splitmix64 round so adjacent seeds decorrelate.
	s += 0x9e3779b97f4a7c15
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	s = (s ^ (s >> 27)) * 0x94d049bb133111eb
	return s ^ (s >> 31)
}

// next advances a splitmix64 state and returns the next value.
func next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a draw onto [0, 1).
func u01(v uint64) float64 { return float64(v>>11) / (1 << 53) }

// hook runs the point's rules in spec order; the first rule that fires
// decides the outcome. data is non-nil only at HookData points.
func (p *Plane) hook(point string, data []byte) ([]byte, error) {
	if p == nil {
		return data, nil
	}
	p.mu.Lock()
	p.calls[point]++
	call := p.calls[point]
	var fire *ruleState
	for _, rs := range p.byPoint[point] {
		if rs.Action == ActCorrupt && data == nil {
			continue // corrupt needs a payload to tamper with
		}
		if rs.Times > 0 && rs.fired >= rs.Times {
			continue
		}
		if call <= uint64(rs.After) {
			continue
		}
		if rs.Prob < 1 && u01(next(&rs.rng)) >= rs.Prob {
			continue
		}
		rs.fired++
		p.injected[point]++
		p.total.Add(1)
		fire = rs
		break
	}
	var out []byte
	if fire != nil && fire.Action == ActCorrupt {
		out = make([]byte, len(data))
		copy(out, data)
		if len(out) > 0 {
			out[next(&fire.rng)%uint64(len(out))] ^= 0xff
		}
	}
	p.mu.Unlock()

	if fire == nil {
		return data, nil
	}
	switch fire.Action {
	case ActCrash:
		fmt.Fprintf(os.Stderr, "fault: injected crash at %s\n", point)
		os.Exit(137)
	case ActSleep:
		time.Sleep(fire.Sleep)
		return data, nil
	case ActCorrupt:
		return out, nil
	}
	return nil, fmt.Errorf("%s: %w", point, ErrInjected)
}

// Injected returns how many faults the plane has fired at a point.
func (p *Plane) Injected(point string) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[point]
}

// Calls returns how many times a point has been hooked.
func (p *Plane) Calls(point string) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[point]
}

// Total returns the plane's total fired-fault count.
func (p *Plane) Total() uint64 {
	if p == nil {
		return 0
	}
	return p.total.Load()
}

// The process-wide plane (nil = no injection). SetGlobal installs the
// -faults plan; a ctx plane from With overrides it for a call tree.
var global atomic.Pointer[Plane]

// SetGlobal installs (or with nil, clears) the process-wide plane.
func SetGlobal(p *Plane) { global.Store(p) }

// Global returns the process-wide plane, or nil.
func Global() *Plane { return global.Load() }

type ctxKey struct{}

// With scopes a plane to a context subtree, overriding the global one.
func With(ctx context.Context, p *Plane) context.Context {
	return context.WithValue(ctx, ctxKey{}, p)
}

// from resolves the active plane: context first, then global.
func from(ctx context.Context) *Plane {
	if ctx != nil {
		if p, ok := ctx.Value(ctxKey{}).(*Plane); ok {
			return p
		}
	}
	return global.Load()
}

// Hook evaluates the active plane at a control point. It returns
// ErrInjected-wrapped errors for eio rules, sleeps for sleep rules,
// exits the process for crash rules, and nil when nothing fires (or no
// plane is installed).
func Hook(ctx context.Context, point string) error {
	p := from(ctx)
	if p == nil {
		return nil
	}
	_, err := p.hook(point, nil)
	return err
}

// HookData evaluates the active plane at a payload-carrying point:
// like Hook, but corrupt rules can return a tampered copy of data.
// With no plane installed it returns data unchanged.
func HookData(ctx context.Context, point string, data []byte) ([]byte, error) {
	p := from(ctx)
	if p == nil {
		return data, nil
	}
	return p.hook(point, data)
}

// InjectedTotal returns the global plane's total fired-fault count
// (0 with no plane installed) — the /metrics fault_injected_total feed.
func InjectedTotal() uint64 { return global.Load().Total() }
