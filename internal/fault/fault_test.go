package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestParseClauses(t *testing.T) {
	rules, err := ParseRules("artifact.put:eio@0.1;worker.exec:crash@after=2;artifact.get:corrupt@0.05,times=3;worker.exec:sleep@ms=500")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Point: "artifact.put", Action: ActEIO, Prob: 0.1},
		{Point: "worker.exec", Action: ActCrash, Prob: 1, After: 2},
		{Point: "artifact.get", Action: ActCorrupt, Prob: 0.05, Times: 3},
		{Point: "worker.exec", Action: ActSleep, Prob: 1, Sleep: 500 * time.Millisecond},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("rules = %+v\nwant    %+v", rules, want)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"artifact.put",              // no action
		"artifact.put:explode",      // unknown action
		"artifact.put:eio@2",        // probability out of range
		"artifact.put:eio@0",        // zero probability
		"artifact.put:eio@nan",      // non-numeric probability
		"artifact.put:eio@",         // empty params
		"artifact.put:eio@after=-1", // negative after
		"artifact.put:eio@times=0",  // zero times
		"artifact.put:eio@ms=10",    // ms on a non-sleep action
		"artifact.put:eio@0.1,0.2",  // duplicate probability
		"Artifact.put:eio",          // uppercase point
		".put:eio",                  // empty label
		"artifact..put:eio",         // empty label
		"9put:eio",                  // label starts with a digit
		"a b:eio",                   // bad character
		"artifact.put:eio;;",        // empty clause
		"artifact.put:eio@wat=1",    // unknown parameter
	}
	for _, spec := range bad {
		if _, err := ParseRules(spec); err == nil {
			t.Errorf("ParseRules(%q) accepted; want error", spec)
		}
	}
	if rules, err := ParseRules("  "); err != nil || rules != nil {
		t.Fatalf("blank spec: rules=%v err=%v; want nil, nil", rules, err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec := "artifact.put:eio@0.1;worker.exec:crash@after=2;artifact.get:corrupt@0.05,times=3;worker.exec:sleep@ms=500;queue.done:eio"
	rules, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(rules)
	again, err := ParseRules(formatted)
	if err != nil {
		t.Fatalf("Format output %q does not re-parse: %v", formatted, err)
	}
	if !reflect.DeepEqual(rules, again) {
		t.Fatalf("round trip changed rules:\n%+v\n%+v", rules, again)
	}
}

// TestDeterministicFiring pins the seeded reproducibility contract:
// the exact sequence of fire/pass decisions at a point is a pure
// function of (seed, spec, call index).
func TestDeterministicFiring(t *testing.T) {
	run := func(seed uint64) []bool {
		p, err := Parse("artifact.put:eio@0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.hookErr(PointArtifactPut) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different firing sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 over 200 calls fired %d times; want roughly 60", fired)
	}
	if reflect.DeepEqual(a, run(43)) {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

// hookErr is a test shorthand for a payload-less hook on a specific plane.
func (p *Plane) hookErr(point string) error {
	_, err := p.hook(point, nil)
	return err
}

// TestPointStreamsIndependent: interleaving calls at another point
// must not perturb a point's firing sequence (per-rule streams).
func TestPointStreamsIndependent(t *testing.T) {
	seq := func(interleave bool) []bool {
		p, err := Parse("artifact.put:eio@0.5;artifact.get:eio@0.5", 7)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			if interleave {
				p.hookErr(PointArtifactGet)
				p.hookErr(PointArtifactGet)
			}
			out[i] = p.hookErr(PointArtifactPut) != nil
		}
		return out
	}
	if !reflect.DeepEqual(seq(false), seq(true)) {
		t.Fatal("artifact.get traffic perturbed artifact.put's firing sequence")
	}
}

func TestAfterAndTimes(t *testing.T) {
	p, err := Parse("worker.exec:eio@after=2,times=3", 1)
	if err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 10; i++ {
		if p.hookErr(PointWorkerExec) != nil {
			fires = append(fires, i)
		}
	}
	if want := []int{3, 4, 5}; !reflect.DeepEqual(fires, want) {
		t.Fatalf("after=2,times=3 fired on calls %v; want %v", fires, want)
	}
	if got := p.Injected(PointWorkerExec); got != 3 {
		t.Fatalf("Injected = %d; want 3", got)
	}
	if got := p.Calls(PointWorkerExec); got != 10 {
		t.Fatalf("Calls = %d; want 10", got)
	}
	if got := p.Total(); got != 3 {
		t.Fatalf("Total = %d; want 3", got)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	p, err := Parse("artifact.get:corrupt", 9)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	out, err := p.hook(PointArtifactGet, data)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range data {
		if data[i] != byte(i) {
			t.Fatal("corrupt mutated the caller's slice")
		}
		if out[i] != data[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("corrupt changed %d bytes; want exactly 1", diffs)
	}
	// The payload-less Hook skips corrupt rules entirely.
	if err := p.hookErr(PointArtifactGet); err != nil {
		t.Fatalf("corrupt fired at a payload-less hook: %v", err)
	}
}

func TestGlobalAndContextPlanes(t *testing.T) {
	if err := Hook(context.Background(), PointWorkerExec); err != nil {
		t.Fatalf("no plane installed, got %v", err)
	}
	p, err := Parse("worker.exec:eio", 1)
	if err != nil {
		t.Fatal(err)
	}
	SetGlobal(p)
	defer SetGlobal(nil)
	err = Hook(context.Background(), PointWorkerExec)
	if !IsInjected(err) {
		t.Fatalf("global plane: err = %v; want injected", err)
	}
	// A ctx-scoped plane overrides the global one — here, with an
	// empty plane that never fires.
	quiet := New(1, nil)
	if err := Hook(With(context.Background(), quiet), PointWorkerExec); err != nil {
		t.Fatalf("ctx override: %v", err)
	}
	if got := InjectedTotal(); got != 1 {
		t.Fatalf("InjectedTotal = %d; want 1", got)
	}
}

func TestErrInjectedClassification(t *testing.T) {
	p, err := Parse("queue.done:eio", 1)
	if err != nil {
		t.Fatal(err)
	}
	hookErr := p.hookErr(PointQueueDone)
	if !errors.Is(hookErr, ErrInjected) || !IsInjected(hookErr) {
		t.Fatalf("err %v does not classify as injected", hookErr)
	}
}
