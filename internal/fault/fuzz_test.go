package fault

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzFaultPlan pins the parser's two safety properties: it never
// panics on arbitrary input, and anything it accepts re-parses from
// its canonical Format to the same rules (reject-don't-misparse — a
// spec either means exactly one plan or is an error).
func FuzzFaultPlan(f *testing.F) {
	f.Add("artifact.put:eio@0.1;worker.exec:crash@after=2")
	f.Add("artifact.get:corrupt@0.05,times=3")
	f.Add("worker.exec:sleep@ms=500")
	f.Add("queue.lease:eio")
	f.Add("queue.done:eio@0.25,after=1,times=7")
	f.Add("a.b.c:eio@1e-3")
	f.Add("")
	f.Add(";;;")
	f.Add("artifact.put:eio@0.1;")
	f.Add("p:eio@prob=0.5")
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseRules(spec)
		if err != nil {
			return
		}
		for _, r := range rules {
			if r.Prob <= 0 || r.Prob > 1 {
				t.Fatalf("accepted probability %v outside (0, 1] from %q", r.Prob, spec)
			}
			if r.After < 0 || r.Times < 0 || r.Sleep < 0 {
				t.Fatalf("accepted negative rule field from %q: %+v", spec, r)
			}
			if strings.ContainsAny(r.Point, " \t\n;:@,") {
				t.Fatalf("accepted point with delimiter bytes from %q: %q", spec, r.Point)
			}
		}
		canonical := Format(rules)
		again, err := ParseRules(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, spec, err)
		}
		if !reflect.DeepEqual(rules, again) {
			t.Fatalf("round trip diverged for %q:\nfirst  %+v\nsecond %+v", spec, rules, again)
		}
		// A plane over the accepted rules must evaluate without
		// panicking (crash rules aside, which Parse accepts but a unit
		// fuzz target must not execute).
		for _, r := range rules {
			if r.Action == ActCrash || r.Action == ActSleep {
				return
			}
		}
		p := New(1, rules)
		for i := 0; i < 4; i++ {
			p.hook("artifact.put", []byte("payload"))
			p.hook("artifact.get", nil)
		}
	})
}
