package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("Std of singleton != 0")
	}
	// Sample std of {2,4,4,4,5,5,7,9} = sqrt(32/7).
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("Std = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v; want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) not NaN")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestIQROverlap(t *testing.T) {
	a := IQR{Q1: 0, Q3: 1}
	b := IQR{Q1: 0.5, Q3: 2}
	c := IQR{Q1: 1.5, Q3: 3}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping IQRs reported disjoint")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint IQRs reported overlapping")
	}
	// Touching endpoints count as overlap.
	d := IQR{Q1: 1, Q3: 2}
	if !a.Overlaps(d) {
		t.Fatal("touching IQRs should overlap")
	}
}

func TestStandardize(t *testing.T) {
	got := Standardize([]float64{1, 2, 3}, 2, 1)
	if got[0] != -1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("Standardize = %v", got)
	}
	if got := Standardize([]float64{1, 2}, 5, 0); got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero-std should yield zeros, got %v", got)
	}
}

func TestMedianDistanceRankingOrdersBuggiestFirst(t *testing.T) {
	// wsub is shifted far away; cld slightly; t unchanged.
	ens := map[string][]float64{
		"wsub": {1.00, 1.01, 0.99, 1.02, 0.98},
		"cld":  {0.50, 0.51, 0.49, 0.52, 0.48},
		"t":    {280, 280.1, 279.9, 280.05, 279.95},
	}
	exp := map[string][]float64{
		"wsub": {10.0, 10.1, 9.9, 10.05, 9.95},
		"cld":  {0.56, 0.57, 0.55, 0.58, 0.54},
		"t":    {280, 280.1, 279.9, 280.05, 279.95},
	}
	ranking := MedianDistanceRanking(ens, exp)
	if ranking[0].Name != "wsub" {
		t.Fatalf("top variable = %s", ranking[0].Name)
	}
	if ranking[0].IQROverlap {
		t.Fatal("wsub IQRs should not overlap")
	}
	// Mirrors §6.1: the top distance dwarfs the runner-up.
	if ranking[0].Distance < 10*ranking[1].Distance {
		t.Fatalf("wsub distance %v not dominant over %v", ranking[0].Distance, ranking[1].Distance)
	}
	// Unaffected variable ranks last and overlaps.
	last := ranking[len(ranking)-1]
	if last.Name != "t" || !last.IQROverlap {
		t.Fatalf("last = %+v", last)
	}
}

func TestSelectAffected(t *testing.T) {
	ranking := []VariableDistance{
		{Name: "a", Distance: 9, IQROverlap: false},
		{Name: "b", Distance: 5, IQROverlap: false},
		{Name: "c", Distance: 1, IQROverlap: true},
	}
	if got := SelectAffected(ranking, 10); len(got) != 2 || got[0] != "a" {
		t.Fatalf("SelectAffected = %v", got)
	}
	if got := SelectAffected(ranking, 1); len(got) != 1 {
		t.Fatalf("maxVars ignored: %v", got)
	}
}

func TestMedianDistanceRankingSkipsMissing(t *testing.T) {
	ens := map[string][]float64{"a": {1, 2, 3}, "b": {1, 2, 3}}
	exp := map[string][]float64{"a": {4, 5, 6}}
	ranking := MedianDistanceRanking(ens, exp)
	if len(ranking) != 1 || ranking[0].Name != "a" {
		t.Fatalf("ranking = %+v", ranking)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, 4}); !almost(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMS = %v", got)
	}
}

func TestNormalizedRMSDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := NormalizedRMSDiff(a, a); got != 0 {
		t.Fatalf("identical arrays diff = %v", got)
	}
	b := []float64{1 + 1e-13, 2, 3}
	got := NormalizedRMSDiff(a, b)
	if got <= 0 || got > 1e-12 {
		t.Fatalf("tiny diff = %v", got)
	}
	if !math.IsNaN(NormalizedRMSDiff(a, []float64{1})) {
		t.Fatal("shape mismatch should be NaN")
	}
}

// Property: standardized data has ~zero mean and ~unit std when
// standardized by its own moments.
func TestStandardizeMomentsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*7 + 3
		}
		z := Standardize(xs, Mean(xs), Std(xs))
		return almost(Mean(z), 0, 1e-9) && almost(Std(z), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
