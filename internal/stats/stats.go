// Package stats provides the descriptive statistics and the
// median-distance variable-selection method of Milroy et al. §3:
// standardization by ensemble mean/std, medians and interquartile
// ranges, IQR-overlap filtering and ranking by standardized median
// distance.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR holds the first and third quartiles of a sample.
type IQR struct {
	Q1, Q3 float64
}

// ComputeIQR returns the interquartile range bounds of xs.
func ComputeIQR(xs []float64) IQR {
	return IQR{Q1: Quantile(xs, 0.25), Q3: Quantile(xs, 0.75)}
}

// Overlaps reports whether two interquartile ranges intersect.
func (a IQR) Overlaps(b IQR) bool {
	return a.Q1 <= b.Q3 && b.Q1 <= a.Q3
}

// Standardize returns (xs - mean) / std elementwise, using the supplied
// reference mean and std (the ensemble's, per the paper). A zero std
// yields zeros to avoid NaN propagation from constant variables.
func Standardize(xs []float64, mean, std float64) []float64 {
	out := make([]float64, len(xs))
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out
}

// VariableDistance is the result of the median-distance selection method
// for one output variable.
type VariableDistance struct {
	Name string
	// Distance is |median(exp) - median(ens)| after standardizing both
	// samples by the ensemble mean and std.
	Distance float64
	// IQROverlap reports whether the standardized ensemble and
	// experimental interquartile ranges overlap. Variables with
	// overlapping IQRs are not considered "affected".
	IQROverlap bool
}

// MedianDistanceRanking implements selection method 1 of §3. ens and exp
// map variable name to the per-run sample of (global-mean) values for
// the ensemble and the experimental set respectively. Variables whose
// standardized IQRs do not overlap are returned ranked by descending
// standardized median distance; overlapping variables are appended
// afterwards (still ranked) with IQROverlap set, so callers can inspect
// the full ordering.
func MedianDistanceRanking(ens, exp map[string][]float64) []VariableDistance {
	out := make([]VariableDistance, 0, len(ens))
	for name, e := range ens {
		x, ok := exp[name]
		if !ok || len(e) == 0 || len(x) == 0 {
			continue
		}
		m, s := Mean(e), Std(e)
		se := Standardize(e, m, s)
		sx := Standardize(x, m, s)
		d := math.Abs(Median(sx) - Median(se))
		out = append(out, VariableDistance{
			Name:       name,
			Distance:   d,
			IQROverlap: ComputeIQR(se).Overlaps(ComputeIQR(sx)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		// Non-overlapping (affected) variables first, then by distance.
		if out[i].IQROverlap != out[j].IQROverlap {
			return !out[i].IQROverlap
		}
		if out[i].Distance != out[j].Distance {
			return out[i].Distance > out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SelectAffected returns the names of up to maxVars variables whose
// standardized IQRs do not overlap, in descending distance order — the
// paper's "not more than 10" working set.
func SelectAffected(ranking []VariableDistance, maxVars int) []string {
	var names []string
	for _, v := range ranking {
		if v.IQROverlap {
			break
		}
		names = append(names, v.Name)
		if len(names) == maxVars {
			break
		}
	}
	return names
}

// RMS returns the root mean square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// NormalizedRMSDiff returns RMS(a-b) / max(RMS(a), tiny): the normalized
// root-mean-square difference KGen uses to flag variables (§6.4), with
// the 1e-12 threshold applied by the caller.
func NormalizedRMSDiff(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	diff := make([]float64, len(a))
	for i := range a {
		diff[i] = a[i] - b[i]
	}
	den := RMS(a)
	if den == 0 {
		den = 1e-300
	}
	return RMS(diff) / den
}
