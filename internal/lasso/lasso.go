// Package lasso implements L1-penalized (lasso) logistic regression via
// proximal gradient descent (ISTA with backtracking-free fixed step from
// a Lipschitz bound), plus a regularization-path search that tunes the
// penalty to select approximately k variables — the paper's second
// variable-selection method (§3), which classifies ensemble vs.
// experimental runs and keeps the ~5 best-separating output variables.
package lasso

import (
	"errors"
	"math"
	"sort"
)

// Problem is a binary classification design: X is n×d row-major, y holds
// labels in {0,1} (0 = ensemble member, 1 = experimental run).
type Problem struct {
	X []float64
	Y []float64
	N int
	D int
}

// Result is a fitted lasso logistic model.
type Result struct {
	Weights   []float64 // d coefficients (standardized feature space)
	Intercept float64
	Lambda    float64
	Iters     int
}

// standardize returns a standardized copy of X together with the means
// and stds used, so selection is scale-invariant.
func standardize(x []float64, n, d int) ([]float64, []float64, []float64) {
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i*d+j]
		}
		mean[j] = s / float64(n)
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			dv := x[i*d+j] - mean[j]
			s += dv * dv
		}
		std[j] = math.Sqrt(s / float64(n))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	z := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z[i*d+j] = (x[i*d+j] - mean[j]) / std[j]
		}
	}
	return z, mean, std
}

func sigmoid(t float64) float64 {
	if t >= 0 {
		e := math.Exp(-t)
		return 1 / (1 + e)
	}
	e := math.Exp(t)
	return e / (1 + e)
}

// Fit minimizes the L1-penalized mean logistic loss
//
//	(1/n) Σ log(1+exp(-ỹ(w·x+b))) + λ‖w‖₁   (ỹ ∈ {-1,+1})
//
// by proximal gradient descent. The intercept is unpenalized.
func Fit(p Problem, lambda float64, maxIter int, tol float64) (*Result, error) {
	if p.N == 0 || p.D == 0 || len(p.X) != p.N*p.D || len(p.Y) != p.N {
		return nil, errors.New("lasso: bad problem shape")
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	if tol <= 0 {
		tol = 1e-7
	}
	z, _, _ := standardize(p.X, p.N, p.D)
	return fitStandardized(z, p.Y, p.N, p.D, lambda, maxIter, tol, false), nil
}

// fitStandardized is the ISTA loop over an already-standardized design
// (SelectK's path search shares one standardization across every
// lambda). The inner loops are tuned — sparse dot products over the
// iterate's support, one sigmoid per distinct dot, an unrolled
// gradient update — but every floating-point operation and its order
// is exactly the original dense loop's, so fitted weights are
// bit-identical (TestSparseDotMatchesDense pins this).
func fitStandardized(z, y []float64, n, d int, lambda float64, maxIter int, tol float64, forceDense bool) *Result {
	w := make([]float64, d)
	grad := make([]float64, d)
	var b float64
	// Sparse dot products: skipping exact-zero weights is bit-identical
	// to the dense sum — a +0 weight contributes a signed-zero product,
	// and x + ±0 == x for every accumulator this loop can produce (it
	// starts at +0 and signed-zero additions keep it there) — except
	// when a non-finite feature would turn 0·±Inf or 0·NaN into NaN, so
	// non-finite designs take the dense path.
	finite := !forceDense
	for _, v := range z {
		if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
			finite = false
			break
		}
	}
	nz := make([]int, 0, d)
	// Lipschitz constant of the logistic gradient: L <= max row norm² / 4.
	var lip float64
	for i := 0; i < n; i++ {
		var rn float64
		for _, xv := range z[i*d : (i+1)*d] {
			rn += xv * xv
		}
		rn = (rn + 1) / 4 // +1 for intercept column
		if rn > lip {
			lip = rn
		}
	}
	if lip == 0 {
		lip = 1
	}
	step := 1 / lip
	inv := 1 / float64(n)
	var iters int
	for iters = 0; iters < maxIter; iters++ {
		for j := range grad {
			grad[j] = 0
		}
		sparse := false
		if finite {
			nz = nz[:0]
			for j, wj := range w {
				if wj != 0 {
					nz = append(nz, j)
				}
			}
			sparse = len(nz)*2 < d
		}
		var gradB float64
		// Equal dots share one sigmoid: during the (long) pure-intercept
		// phase every row's dot is exactly b, so one exp serves all n
		// rows. Bitwise equality makes the reuse exact; NaN never
		// matches itself, so NaN dots recompute.
		lastDot := math.NaN()
		var lastSig float64
		for i := 0; i < n; i++ {
			var dot float64
			row := z[i*d : (i+1)*d]
			if sparse {
				for _, j := range nz {
					dot += w[j] * row[j]
				}
			} else {
				wr := w
				if len(wr) > len(row) {
					wr = wr[:len(row)]
				}
				for j, wv := range wr {
					dot += wv * row[j]
				}
			}
			dot += b
			// p(y=1|x) - y.
			sig := lastSig
			if dot != lastDot {
				sig = sigmoid(dot)
				lastDot, lastSig = dot, sig
			}
			resid := sig - y[i]
			// Each grad[j] is its own accumulator, so unrolling over j
			// reorders nothing.
			gr := grad
			if len(gr) > len(row) {
				gr = gr[:len(row)]
			}
			j := 0
			for ; j+4 <= len(row) && j+4 <= len(gr); j += 4 {
				gr[j] += resid * row[j]
				gr[j+1] += resid * row[j+1]
				gr[j+2] += resid * row[j+2]
				gr[j+3] += resid * row[j+3]
			}
			for ; j < len(row); j++ {
				gr[j] += resid * row[j]
			}
			gradB += resid
		}
		var maxDelta float64
		for j := 0; j < d; j++ {
			nw := softThreshold(w[j]-step*grad[j]*inv, step*lambda)
			if dd := math.Abs(nw - w[j]); dd > maxDelta {
				maxDelta = dd
			}
			w[j] = nw
		}
		nb := b - step*gradB*inv
		if dd := math.Abs(nb - b); dd > maxDelta {
			maxDelta = dd
		}
		b = nb
		if maxDelta < tol {
			break
		}
	}
	return &Result{Weights: w, Intercept: b, Lambda: lambda, Iters: iters}
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

// Support returns the indices of nonzero weights, by descending |w|.
func (r *Result) Support() []int {
	var idx []int
	for j, wj := range r.Weights {
		if wj != 0 {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := math.Abs(r.Weights[idx[a]]), math.Abs(r.Weights[idx[b]])
		if wa != wb {
			return wa > wb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// SelectK tunes lambda by bisection on the regularization path so that
// the fitted support has approximately k variables (the paper tunes to
// "about five"). It returns the selected indices ranked by |weight| and
// the final fit. If the support cannot be driven exactly to k (the path
// may jump, as in the GOFFGRATCH experiment where 10 variables come out)
// the closest achievable support with size >= k is returned.
func SelectK(p Problem, k int, maxIter int) ([]int, *Result, error) {
	if k <= 0 {
		return nil, nil, errors.New("lasso: k must be positive")
	}
	// λ_max: smallest λ with empty support = max |Xᵀ(y - ȳ)| / n.
	z, _, _ := standardize(p.X, p.N, p.D)
	var ybar float64
	for _, yv := range p.Y {
		ybar += yv
	}
	ybar /= float64(p.N)
	lamMax := 0.0
	for j := 0; j < p.D; j++ {
		var s float64
		for i := 0; i < p.N; i++ {
			s += z[i*p.D+j] * (p.Y[i] - ybar)
		}
		s = math.Abs(s) / float64(p.N)
		if s > lamMax {
			lamMax = s
		}
	}
	if lamMax == 0 {
		lamMax = 1
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	lo, hi := lamMax*1e-4, lamMax
	var best *Result
	bestGap := math.MaxInt32
	for iter := 0; iter < 30; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection
		// The standardized design and the ISTA trajectory per lambda are
		// identical to a fresh Fit call; only the standardization work is
		// shared across the path.
		res := fitStandardized(z, p.Y, p.N, p.D, mid, maxIter, 1e-7, false)
		sup := len(res.Support())
		gap := sup - k
		if gap < 0 {
			gap = -gap
		}
		// Prefer exact k; then the smallest overshoot; never settle for
		// an undershoot if an overshoot was seen (paper keeps >= k).
		better := false
		switch {
		case best == nil:
			better = true
		case sup == k:
			better = true
		case len(best.Support()) < k && sup > len(best.Support()):
			better = true
		case sup >= k && gap < bestGap:
			better = true
		}
		if better {
			best = res
			bestGap = gap
		}
		if sup == k {
			break
		}
		if sup > k {
			lo = mid // need more penalty
		} else {
			hi = mid
		}
	}
	return best.Support(), best, nil
}
