// Package lasso implements L1-penalized (lasso) logistic regression via
// proximal gradient descent (ISTA with backtracking-free fixed step from
// a Lipschitz bound), plus a regularization-path search that tunes the
// penalty to select approximately k variables — the paper's second
// variable-selection method (§3), which classifies ensemble vs.
// experimental runs and keeps the ~5 best-separating output variables.
package lasso

import (
	"errors"
	"math"
	"sort"
)

// Problem is a binary classification design: X is n×d row-major, y holds
// labels in {0,1} (0 = ensemble member, 1 = experimental run).
type Problem struct {
	X []float64
	Y []float64
	N int
	D int
}

// Result is a fitted lasso logistic model.
type Result struct {
	Weights   []float64 // d coefficients (standardized feature space)
	Intercept float64
	Lambda    float64
	Iters     int
}

// standardize returns a standardized copy of X together with the means
// and stds used, so selection is scale-invariant.
func standardize(x []float64, n, d int) ([]float64, []float64, []float64) {
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i*d+j]
		}
		mean[j] = s / float64(n)
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			dv := x[i*d+j] - mean[j]
			s += dv * dv
		}
		std[j] = math.Sqrt(s / float64(n))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	z := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z[i*d+j] = (x[i*d+j] - mean[j]) / std[j]
		}
	}
	return z, mean, std
}

func sigmoid(t float64) float64 {
	if t >= 0 {
		e := math.Exp(-t)
		return 1 / (1 + e)
	}
	e := math.Exp(t)
	return e / (1 + e)
}

// Fit minimizes the L1-penalized mean logistic loss
//
//	(1/n) Σ log(1+exp(-ỹ(w·x+b))) + λ‖w‖₁   (ỹ ∈ {-1,+1})
//
// by proximal gradient descent. The intercept is unpenalized.
func Fit(p Problem, lambda float64, maxIter int, tol float64) (*Result, error) {
	if p.N == 0 || p.D == 0 || len(p.X) != p.N*p.D || len(p.Y) != p.N {
		return nil, errors.New("lasso: bad problem shape")
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	if tol <= 0 {
		tol = 1e-7
	}
	z, _, _ := standardize(p.X, p.N, p.D)
	return fitStandardized(z, p.Y, p.N, p.D, lambda, maxIter, tol, false), nil
}

// design is the per-path state every fit over one standardized design
// shares: the design itself plus the two O(n·d) scans — the finiteness
// check gating the sparse-dot fast path and the Lipschitz row-norm
// bound fixing the ISTA step — that used to be recomputed inside every
// one of SelectK's ~30 bisection probes. Hoisting them is a pure move:
// the loops are byte-for-byte the ones fitFrom ran, so the computed
// step and finiteness flag (and therefore every fit) are bit-identical
// (TestDesignHoistBitIdentical pins this).
type design struct {
	z, y      []float64
	n, d      int
	step, inv float64
	finite    bool
}

// newDesign runs the hoisted scans once. forceDense pins the dense
// gradient path regardless of finiteness (the differential knob
// TestSparseDotMatchesDense uses).
func newDesign(z, y []float64, n, d int, forceDense bool) *design {
	ds := &design{z: z, y: y, n: n, d: d}
	// Sparse dot products: skipping exact-zero weights is bit-identical
	// to the dense sum — a +0 weight contributes a signed-zero product,
	// and x + ±0 == x for every accumulator this loop can produce (it
	// starts at +0 and signed-zero additions keep it there) — except
	// when a non-finite feature would turn 0·±Inf or 0·NaN into NaN, so
	// non-finite designs take the dense path.
	ds.finite = !forceDense
	for _, v := range z {
		if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
			ds.finite = false
			break
		}
	}
	// Lipschitz constant of the logistic gradient: L <= max row norm² / 4.
	var lip float64
	for i := 0; i < n; i++ {
		var rn float64
		for _, xv := range z[i*d : (i+1)*d] {
			rn += xv * xv
		}
		rn = (rn + 1) / 4 // +1 for intercept column
		if rn > lip {
			lip = rn
		}
	}
	if lip == 0 {
		lip = 1
	}
	ds.step = 1 / lip
	ds.inv = 1 / float64(n)
	return ds
}

// fitStandardized starts the ISTA loop from the zero iterate.
func fitStandardized(z, y []float64, n, d int, lambda float64, maxIter int, tol float64, forceDense bool) *Result {
	return fitFrom(newDesign(z, y, n, d, forceDense), lambda, maxIter, tol, make([]float64, d), 0, 0)
}

// fitFrom is the ISTA loop over an already-standardized design
// (SelectK's path search shares one standardization across every
// lambda), continuing from iterate (w, b) at iteration count start —
// the warm path resumes here after skipping the shared pure-intercept
// prefix, and because the loop body is byte-for-byte the cold path's,
// a continuation from a bit-exact cold iterate reproduces the cold
// trajectory bit-for-bit. The inner loops are tuned — sparse dot
// products over the iterate's support, one sigmoid per distinct dot,
// an unrolled gradient update — but every floating-point operation and
// its order is exactly the original dense loop's, so fitted weights
// are bit-identical (TestSparseDotMatchesDense pins this). w is
// retained as the result's weight slice.
func fitFrom(ds *design, lambda float64, maxIter int, tol float64, w []float64, b float64, start int) *Result {
	z, y, n, d := ds.z, ds.y, ds.n, ds.d
	finite, step, inv := ds.finite, ds.step, ds.inv
	grad := make([]float64, d)
	nz := make([]int, 0, d)
	var iters int
	for iters = start; iters < maxIter; iters++ {
		for j := range grad {
			grad[j] = 0
		}
		sparse := false
		if finite {
			nz = nz[:0]
			for j, wj := range w {
				if wj != 0 {
					nz = append(nz, j)
				}
			}
			sparse = len(nz)*2 < d
		}
		var gradB float64
		// Equal dots share one sigmoid: during the (long) pure-intercept
		// phase every row's dot is exactly b, so one exp serves all n
		// rows. Bitwise equality makes the reuse exact; NaN never
		// matches itself, so NaN dots recompute.
		lastDot := math.NaN()
		var lastSig float64
		for i := 0; i < n; i++ {
			var dot float64
			row := z[i*d : (i+1)*d]
			if sparse {
				for _, j := range nz {
					dot += w[j] * row[j]
				}
			} else {
				wr := w
				if len(wr) > len(row) {
					wr = wr[:len(row)]
				}
				for j, wv := range wr {
					dot += wv * row[j]
				}
			}
			dot += b
			// p(y=1|x) - y.
			sig := lastSig
			if dot != lastDot {
				sig = sigmoid(dot)
				lastDot, lastSig = dot, sig
			}
			resid := sig - y[i]
			// Each grad[j] is its own accumulator, so unrolling over j
			// reorders nothing.
			gr := grad
			if len(gr) > len(row) {
				gr = gr[:len(row)]
			}
			j := 0
			for ; j+4 <= len(row) && j+4 <= len(gr); j += 4 {
				gr[j] += resid * row[j]
				gr[j+1] += resid * row[j+1]
				gr[j+2] += resid * row[j+2]
				gr[j+3] += resid * row[j+3]
			}
			for ; j < len(row); j++ {
				gr[j] += resid * row[j]
			}
			gradB += resid
		}
		var maxDelta float64
		for j := 0; j < d; j++ {
			nw := softThreshold(w[j]-step*grad[j]*inv, step*lambda)
			if dd := math.Abs(nw - w[j]); dd > maxDelta {
				maxDelta = dd
			}
			w[j] = nw
		}
		nb := b - step*gradB*inv
		if dd := math.Abs(nb - b); dd > maxDelta {
			maxDelta = dd
		}
		b = nb
		if maxDelta < tol {
			break
		}
	}
	return &Result{Weights: w, Intercept: b, Lambda: lambda, Iters: iters}
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}

// Support returns the indices of nonzero weights, by descending |w|.
func (r *Result) Support() []int {
	var idx []int
	for j, wj := range r.Weights {
		if wj != 0 {
			idx = append(idx, j)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := math.Abs(r.Weights[idx[a]]), math.Abs(r.Weights[idx[b]])
		if wa != wb {
			return wa > wb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// pathCache shares the pure-intercept prefix of the cold ISTA
// trajectory across every lambda on the regularization path. While the
// weight iterate is all-zero, the trajectory is lambda-independent:
// every row's dot is exactly b, the full gradient at iterate t depends
// only on b_t, and the intercept update never touches lambda. So the
// cache computes, once per SelectK, the sequence of (b_t, gradient_t)
// pairs — bit-for-bit the iterates the cold loop would produce — and
// each lambda's fit fast-forwards along it until the exact KKT
// condition softThreshold(w_j - step·grad_j/n, step·λ) ≠ 0 admits its
// first coordinate (the same proximal expression the dense update
// applies, so the departure iteration is exactly where the cold
// trajectory's support first becomes nonempty). From that bit-exact
// iterate the ordinary ISTA loop (fitFrom) finishes the fit, making
// every warm fit bit-identical to its cold counterpart while the
// shared prefix — the long stretch the cold path burns re-deriving the
// same intercept for every lambda — is paid once instead of ~30 times.
type pathCache struct {
	ds     *design
	bs     []float64   // bs[t] = intercept entering iteration t (bs[0] = 0)
	grads  [][]float64 // grads[t][j] = full gradient at iterate t
	gradBs []float64   // intercept gradient at iterate t
}

// newPathCache wraps the shared per-path design state (finiteness and
// the Lipschitz step are the hoisted scans, computed once in
// newDesign — the same values the cold loop used to derive per fit).
func newPathCache(ds *design) *pathCache {
	c := &pathCache{ds: ds}
	c.bs = append(c.bs, 0)
	return c
}

// ensure extends the cached trajectory through iteration t. The
// gradient accumulation mirrors the cold loop's arithmetic exactly:
// one sigmoid serves all rows (every dot equals b), residuals
// accumulate per column in row order (each grad[j] is an independent
// accumulator, so the cold loop's unrolling changes nothing), and the
// intercept update is the same expression.
func (c *pathCache) ensure(t int) {
	ds := c.ds
	for len(c.grads) <= t {
		b := c.bs[len(c.grads)]
		grad := make([]float64, ds.d)
		var gradB float64
		sig := sigmoid(b)
		for i := 0; i < ds.n; i++ {
			resid := sig - ds.y[i]
			row := ds.z[i*ds.d : (i+1)*ds.d]
			for j, xv := range row {
				grad[j] += resid * xv
			}
			gradB += resid
		}
		c.grads = append(c.grads, grad)
		c.gradBs = append(c.gradBs, gradB)
		c.bs = append(c.bs, b-ds.step*gradB*ds.inv)
	}
}

// fit runs one lambda's cold-equivalent fit, fast-forwarding through
// the shared prefix.
func (c *pathCache) fit(lambda float64, maxIter int, tol float64) *Result {
	res, w, nb, t := c.prefix(lambda, maxIter, tol)
	if res != nil {
		return res
	}
	return fitFrom(c.ds, lambda, maxIter, tol, w, nb, t+1)
}

// prefix fast-forwards one lambda through the shared pure-intercept
// trajectory. When the fit completes inside the prefix (tolerance or
// maxIter hit before any coordinate activates) it returns the finished
// Result; otherwise it returns a nil Result plus the bit-exact iterate
// (w, b) after the activating iteration t — the state both engine
// tails (the dense ISTA loop and the screened loop) resume from.
func (c *pathCache) prefix(lambda float64, maxIter int, tol float64) (*Result, []float64, float64, int) {
	ds := c.ds
	lamStep := ds.step * lambda
	t := 0
	for t < maxIter {
		c.ensure(t)
		g := c.grads[t]
		activated := false
		for j := 0; j < ds.d; j++ {
			if softThreshold(0-ds.step*g[j]*ds.inv, lamStep) != 0 {
				activated = true
				break
			}
		}
		if activated {
			break
		}
		// No weight moves this iteration, so the cold loop's maxDelta
		// is exactly the intercept move.
		if math.Abs(c.bs[t+1]-c.bs[t]) < tol {
			return &Result{Weights: make([]float64, ds.d), Intercept: c.bs[t+1], Lambda: lambda, Iters: t}, nil, 0, 0
		}
		t++
	}
	if t >= maxIter {
		return &Result{Weights: make([]float64, ds.d), Intercept: c.bs[t], Lambda: lambda, Iters: t}, nil, 0, 0
	}
	// Iteration t activates the support: apply the cold loop's own
	// update expressions to the cached iterate, then hand the state to
	// the engine's tail loop.
	g := c.grads[t]
	w := make([]float64, ds.d)
	var maxDelta float64
	for j := 0; j < ds.d; j++ {
		nw := softThreshold(w[j]-ds.step*g[j]*ds.inv, lamStep)
		if dd := math.Abs(nw - w[j]); dd > maxDelta {
			maxDelta = dd
		}
		w[j] = nw
	}
	nb := c.bs[t] - ds.step*c.gradBs[t]*ds.inv
	if dd := math.Abs(nb - c.bs[t]); dd > maxDelta {
		maxDelta = dd
	}
	if maxDelta < tol {
		return &Result{Weights: w, Intercept: nb, Lambda: lambda, Iters: t}, nil, 0, 0
	}
	return nil, w, nb, t
}

// PathStats aggregates solver effort over one SelectK path search:
// the number of lambda fits the bisection ran and the total iteration
// count they consumed (ISTA proximal-gradient iterations, or CD outer
// quadratic-approximation iterations). rcad surfaces the totals at
// /metrics and the benchmarks record them per stage.
type PathStats struct {
	Fits  int
	Iters int
}

// SelectK tunes lambda by bisection on the regularization path so that
// the fitted support has approximately k variables (the paper tunes to
// "about five"). It returns the selected indices ranked by |weight| and
// the final fit. If the support cannot be driven exactly to k (the path
// may jump, as in the GOFFGRATCH experiment where 10 variables come out)
// the closest achievable support with size >= k is returned.
//
// SelectK runs the warm-started ISTA path (the reference oracle; see
// SelectKSolver for the coordinate-descent default the pipeline uses):
// the lambda-independent pure-intercept prefix of the ISTA trajectory
// is computed once and shared across every bisection fit, each of
// which fast-forwards along it to its exact KKT departure point (see
// pathCache). SelectKCold runs the same search with cold from-zero
// fits and is the differential oracle the tests compare against —
// fits, supports and the tuned lambda are all bit-identical between
// the two.
func SelectK(p Problem, k int, maxIter int) ([]int, *Result, error) {
	sel, res, _, err := selectK(p, k, maxIter, SolverISTA, true)
	return sel, res, err
}

// SelectKCold is SelectK without warm starts: every lambda on the
// bisection path is fitted from the zero iterate by the dense ISTA
// loop. It exists as the differential oracle for the warm-started
// path — selections must agree bit-for-bit.
func SelectKCold(p Problem, k int, maxIter int) ([]int, *Result, error) {
	sel, res, _, err := selectK(p, k, maxIter, SolverISTA, false)
	return sel, res, err
}

// SelectKSolver is SelectK with an explicit solver engine, returning
// path statistics alongside the selection. SolverCD (the pipeline
// default) runs the coordinate-screened descent engine; SolverISTA
// runs the warm-started dense proximal-gradient oracle (identical to
// SelectK). The engines emit bit-identical iterates — ranked
// selections, tuned lambdas, fitted weights, intercepts and iteration
// counts all match exactly (TestSolverCDBitIdentical and
// FuzzLassoSolvers pin this).
func SelectKSolver(p Problem, k, maxIter int, solver Solver) ([]int, *Result, PathStats, error) {
	return selectK(p, k, maxIter, solver, true)
}

func selectK(p Problem, k int, maxIter int, solver Solver, warm bool) ([]int, *Result, PathStats, error) {
	var st PathStats
	if k <= 0 {
		return nil, nil, st, errors.New("lasso: k must be positive")
	}
	if p.N == 0 || p.D == 0 || len(p.X) != p.N*p.D || len(p.Y) != p.N {
		return nil, nil, st, errors.New("lasso: bad problem shape")
	}
	// λ_max: smallest λ with empty support = max |Xᵀ(y - ȳ)| / n.
	z, _, _ := standardize(p.X, p.N, p.D)
	var ybar float64
	for _, yv := range p.Y {
		ybar += yv
	}
	ybar /= float64(p.N)
	lamMax := 0.0
	for j := 0; j < p.D; j++ {
		var s float64
		for i := 0; i < p.N; i++ {
			s += z[i*p.D+j] * (p.Y[i] - ybar)
		}
		s = math.Abs(s) / float64(p.N)
		if s > lamMax {
			lamMax = s
		}
	}
	if lamMax == 0 {
		lamMax = 1
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	// The hoisted per-path state: finiteness and the Lipschitz step are
	// computed once here and shared by every probe (satellite of the
	// same scan fitFrom used to repeat ~30 times).
	ds := newDesign(z, p.Y, p.N, p.D, false)
	lo, hi := lamMax*1e-4, lamMax
	var best *Result
	var bestSup []int
	bestGap := math.MaxInt32
	var cache *pathCache
	var cd *cdPath
	if solver == SolverCD && ds.finite {
		// Non-finite designs fall back to the dense ISTA oracle: the
		// CD recurrences assume finite Gram columns.
		cd = newCDPath(ds)
	} else if warm && ds.finite {
		cache = newPathCache(ds) // non-finite designs keep the dense cold path
	}
	for iter := 0; iter < 30; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection
		var res *Result
		switch {
		case cd != nil:
			res = cd.fit(mid, maxIter, 1e-7)
		case cache != nil:
			res = cache.fit(mid, maxIter, 1e-7)
		default:
			// The standardized design and the ISTA trajectory per lambda
			// are identical to a fresh Fit call; only the standardization
			// and the hoisted scans are shared across the path.
			res = fitFrom(ds, mid, maxIter, 1e-7, make([]float64, ds.d), 0, 0)
		}
		st.Fits++
		st.Iters += res.Iters
		// Each fit's support is computed (and sorted) once; the ranked
		// slice is reused for the gap comparisons and the final return.
		sup := res.Support()
		gap := len(sup) - k
		if gap < 0 {
			gap = -gap
		}
		// Prefer exact k; then the smallest overshoot; never settle for
		// an undershoot if an overshoot was seen (paper keeps >= k).
		better := false
		switch {
		case best == nil:
			better = true
		case len(sup) == k:
			better = true
		case len(bestSup) < k && len(sup) > len(bestSup):
			better = true
		case len(sup) >= k && gap < bestGap:
			better = true
		}
		if better {
			best = res
			bestSup = sup
			bestGap = gap
		}
		if len(sup) == k {
			break
		}
		if len(sup) > k {
			lo = mid // need more penalty
		} else {
			hi = mid
		}
	}
	return bestSup, best, st, nil
}
