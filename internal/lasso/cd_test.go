package lasso

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestParseSolver(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Solver
		ok   bool
	}{
		{"", SolverCD, true},
		{"cd", SolverCD, true},
		{"ista", SolverISTA, true},
		{"glmnet", SolverCD, false},
	} {
		got, err := ParseSolver(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SolverCD.String() != "cd" || SolverISTA.String() != "ista" {
		t.Errorf("solver labels: %q, %q", SolverCD, SolverISTA)
	}
}

// requireSameFit asserts two results agree to the bit: weights,
// intercept, lambda and iteration count.
func requireSameFit(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if math.Float64bits(a.Intercept) != math.Float64bits(b.Intercept) ||
		a.Iters != b.Iters || a.Lambda != b.Lambda {
		t.Fatalf("%s: intercept/iters/lambda diverge: %v/%d/%v vs %v/%d/%v",
			label, a.Intercept, a.Iters, a.Lambda, b.Intercept, b.Iters, b.Lambda)
	}
	for j := range a.Weights {
		if math.Float64bits(a.Weights[j]) != math.Float64bits(b.Weights[j]) {
			t.Fatalf("%s: w[%d]: %v vs %v", label, j, a.Weights[j], b.Weights[j])
		}
	}
}

// TestDesignHoistBitIdentical pins satellite invariant 1: the O(n·d)
// finiteness and Lipschitz scans hoisted into newDesign are shared by
// every fit on the path, and sharing them changes nothing — a design
// reused across many lambdas produces exactly the fits of a fresh
// design (fresh scans) per lambda.
func TestDesignHoistBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := synthProblem(rng, 40, 12, 4, 2.5)
	z, _, _ := standardize(p.X, p.N, p.D)
	shared := newDesign(z, p.Y, p.N, p.D, false)
	for _, lam := range []float64{0.5, 0.1, 0.02, 0.004} {
		fresh := newDesign(z, p.Y, p.N, p.D, false)
		if fresh.step != shared.step || fresh.finite != shared.finite {
			t.Fatalf("lam %v: hoisted scans diverge: step %v/%v finite %v/%v",
				lam, shared.step, fresh.step, shared.finite, fresh.finite)
		}
		a := fitFrom(shared, lam, 600, 1e-7, make([]float64, p.D), 0, 0)
		b := fitFrom(fresh, lam, 600, 1e-7, make([]float64, p.D), 0, 0)
		requireSameFit(t, "hoist", a, b)
	}
}

// TestSupportTieBreakExact pins the Support ranking contract on exact
// ties: |w| descending, index ascending. Both solver engines inherit
// the ranking from this single implementation, so degenerate designs
// (duplicated or symmetric columns, which produce bitwise-equal
// weights) rank identically everywhere.
func TestSupportTieBreakExact(t *testing.T) {
	r := &Result{Weights: []float64{0.5, -0.5, 0, 0.25, 0.5, -0.25}}
	want := []int{0, 1, 4, 3, 5}
	if got := r.Support(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Support() = %v, want %v", got, want)
	}

	// A fitted design with a duplicated column: the duplicate tracks
	// its twin through the whole trajectory (identical gradient
	// entries), so the tie is exact and the ranking must fall back to
	// index order.
	rng := rand.New(rand.NewSource(11))
	p := synthProblem(rng, 60, 6, 2, 4)
	for i := 0; i < p.N; i++ {
		p.X[i*p.D+3] = p.X[i*p.D+0] // column 3 duplicates column 0
	}
	res, err := Fit(p, 0.01, 800, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Weights[0]) != math.Float64bits(res.Weights[3]) {
		t.Fatalf("duplicated columns fit different weights: %v vs %v",
			res.Weights[0], res.Weights[3])
	}
	sup := res.Support()
	pos := map[int]int{}
	for rank, j := range sup {
		pos[j] = rank
	}
	if _, ok := pos[0]; ok && res.Weights[0] != 0 {
		if pos[0] > pos[3] {
			t.Fatalf("tie not broken by index: support %v weights %v", sup, res.Weights)
		}
	}
}

// TestSolverCDBitIdentical sweeps randomized designs — separable,
// noisy, and ill-posed ones where k exceeds the informative count, so
// selections sit right at the activation threshold — and checks the
// coordinate-screened engine against the dense ISTA oracle in every
// observable: ranked selection, tuned lambda, fitted weights,
// intercept, iteration counts and path statistics. The screen only
// ever skips work it has certified to be a bitwise no-op, so nothing
// may differ.
func TestSolverCDBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(50)
		d := 2 + rng.Intn(24)
		informative := rng.Intn(d + 1)
		gap := rng.Float64() * 4
		p := synthProblem(rng, n, d, informative, gap)
		k := 1 + rng.Intn(6)

		istaSel, istaRes, istaSt, istaErr := SelectKSolver(p, k, 700, SolverISTA)
		cdSel, cdRes, cdSt, cdErr := SelectKSolver(p, k, 700, SolverCD)
		if (istaErr == nil) != (cdErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, istaErr, cdErr)
		}
		if istaErr != nil {
			continue
		}
		if !reflect.DeepEqual(istaSel, cdSel) {
			t.Fatalf("trial %d (n=%d d=%d k=%d): selections differ: ista %v cd %v",
				trial, n, d, k, istaSel, cdSel)
		}
		if istaSt != cdSt {
			t.Fatalf("trial %d: path stats differ: ista %+v cd %+v", trial, istaSt, cdSt)
		}
		requireSameFit(t, "selectK", istaRes, cdRes)
	}
}

// TestSolverCDBitIdenticalCatalog runs the same differential on the
// real GOFFGRATCH catalog design (numerically degenerate: flat KKT
// valley, near-duplicate columns, truncation-limited fits) — the
// problem class the pipeline actually feeds the lasso.
func TestSolverCDBitIdenticalCatalog(t *testing.T) {
	p, k := catalogProblem(t)
	istaSel, istaRes, istaSt, err := SelectKSolver(p, k, 1500, SolverISTA)
	if err != nil {
		t.Fatal(err)
	}
	cdSel, cdRes, cdSt, err := SelectKSolver(p, k, 1500, SolverCD)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(istaSel, cdSel) {
		t.Fatalf("selections differ: ista %v cd %v", istaSel, cdSel)
	}
	if istaSt != cdSt {
		t.Fatalf("path stats differ: ista %+v cd %+v", istaSt, cdSt)
	}
	requireSameFit(t, "catalog", istaRes, cdRes)
}

// FuzzLassoSolvers is the differential fuzzer for the two lasso
// engines: arbitrary design shapes, seeds and separations, with the
// full bit-equality contract asserted on every probe — the screened
// engine's inertness certificates must hold on whatever degenerate
// geometry the fuzzer finds.
func FuzzLassoSolvers(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(8), uint8(3), 2.0, uint8(3))
	f.Add(int64(42), uint8(60), uint8(20), uint8(0), 0.0, uint8(1))
	f.Add(int64(7), uint8(12), uint8(30), uint8(30), 5.0, uint8(5))
	f.Add(int64(99), uint8(45), uint8(16), uint8(2), 0.3, uint8(4))
	f.Add(int64(-5), uint8(20), uint8(2), uint8(1), 8.0, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw, infRaw uint8, gap float64, kRaw uint8) {
		n := 8 + int(nRaw)%56
		d := 2 + int(dRaw)%30
		informative := int(infRaw) % (d + 1)
		if math.IsNaN(gap) || math.IsInf(gap, 0) {
			gap = 1
		}
		gap = math.Mod(math.Abs(gap), 8)
		k := 1 + int(kRaw)%6
		rng := rand.New(rand.NewSource(seed))
		p := synthProblem(rng, n, d, informative, gap)

		istaSel, istaRes, istaSt, istaErr := SelectKSolver(p, k, 400, SolverISTA)
		cdSel, cdRes, cdSt, cdErr := SelectKSolver(p, k, 400, SolverCD)
		if (istaErr == nil) != (cdErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", istaErr, cdErr)
		}
		if istaErr != nil {
			return
		}
		if !reflect.DeepEqual(istaSel, cdSel) {
			t.Fatalf("selections differ: ista %v cd %v", istaSel, cdSel)
		}
		if istaSt != cdSt {
			t.Fatalf("path stats differ: ista %+v cd %+v", istaSt, cdSt)
		}
		requireSameFit(t, "fuzz", istaRes, cdRes)
	})
}
