package lasso

import (
	"fmt"
	"math"
)

// Solver selects the engine SelectKSolver fits each lambda with. Both
// engines compute the exact same proximal-gradient iterate sequence —
// fitted weights, supports and iteration counts are bit-identical —
// but the coordinate-screened engine (SolverCD, the default) certifies
// most inactive coordinates as inert and skips their per-iteration
// gradient work, where the dense reference engine (SolverISTA) pays
// the full O(n·d) accumulation every iteration.
type Solver int

const (
	// SolverCD is the coordinate-screened descent engine (the pipeline
	// default). It runs the same fixed-step proximal descent as the
	// ISTA oracle, organized around per-coordinate screening: cached
	// column norms plus a Cauchy–Schwarz bound on the residual drift
	// since the last full gradient certify that a zero coordinate's
	// proximal update stays exactly zero, so its gradient entry need
	// not be computed at all. When the drift budget is exhausted, a
	// full-gradient refresh — a complete KKT pass over every
	// coordinate — re-certifies the screen. Skipped work is provably a
	// no-op, so the emitted iterates are bit-identical to the dense
	// loop's.
	SolverCD Solver = iota
	// SolverISTA is the dense fixed-step proximal-gradient engine —
	// the original solver, retained as the differential reference
	// oracle.
	SolverISTA
)

// String reports the flag/metrics label for the solver.
func (s Solver) String() string {
	if s == SolverISTA {
		return "ista"
	}
	return "cd"
}

// ParseSolver maps CLI flag values onto solver engines.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "cd":
		return SolverCD, nil
	case "ista":
		return SolverISTA, nil
	}
	return SolverCD, fmt.Errorf("lasso: unknown solver %q (want cd or ista)", s)
}

// cdPath is the per-SelectK state the screened engine shares across
// every bisection probe: the hoisted design scans, the shared
// pure-intercept prefix cache, and the column l2 norms the screening
// bound consumes — all lambda-independent, paid once per path.
type cdPath struct {
	ds      *design
	pc      *pathCache
	colNorm []float64 // ‖z_j‖₂, the Cauchy–Schwarz column factors

	// Scratch reused across probes (the path runs on one goroutine).
	grad    []float64 // full-gradient scratch for refresh passes
	gradRef []float64 // full gradient at the last refresh
	budget  []float64 // per-screened-coordinate drift allowance
	r, rref []float64 // residuals: current iterate / last refresh
	live    []int     // coordinates whose gradient is tracked exactly
	state   []int8    // cdScreened / cdLive per coordinate

	// Packed panels: gathering strided z columns per row is what ate
	// the screening win, so the live columns are copied into a
	// contiguous n×|live| panel at each refresh (lz, accumulating into
	// lg), and the active columns into n×|nzCols| (az, with weights
	// packed into aw each iteration) whenever the support set changes.
	// Packing changes neither the multiplicands nor the accumulation
	// order, so every emitted float is unchanged.
	lz, lg []float64
	az, aw []float64
	nzCols []int
}

const (
	cdScreened int8 = iota
	cdLive
)

func newCDPath(ds *design) *cdPath {
	c := &cdPath{
		ds:      ds,
		pc:      newPathCache(ds),
		colNorm: make([]float64, ds.d),
		grad:    make([]float64, ds.d),
		gradRef: make([]float64, ds.d),
		budget:  make([]float64, ds.d),
		r:       make([]float64, ds.n),
		rref:    make([]float64, ds.n),
		live:    make([]int, 0, ds.d),
		state:   make([]int8, ds.d),
		lz:      make([]float64, 0, ds.n*ds.d),
		lg:      make([]float64, 0, ds.d),
		az:      make([]float64, 0, ds.n*ds.d),
		aw:      make([]float64, 0, ds.d),
		nzCols:  make([]int, 0, ds.d),
	}
	for i := 0; i < ds.n; i++ {
		row := ds.z[i*ds.d : (i+1)*ds.d]
		for j, v := range row {
			c.colNorm[j] += v * v
		}
	}
	for j, s := range c.colNorm {
		c.colNorm[j] = math.Sqrt(s)
	}
	return c
}

// fit runs one lambda's cold-equivalent fit: the shared prefix
// fast-forward, then the screened tail loop.
func (c *cdPath) fit(lambda float64, maxIter int, tol float64) *Result {
	res, w, nb, t := c.pc.prefix(lambda, maxIter, tol)
	if res != nil {
		return res
	}
	return c.screenedFrom(lambda, maxIter, tol, w, nb, t+1)
}

// screenThreshold is the inactivity certificate for coordinate j: a
// zero weight's proximal update softThreshold(−step·grad_j/n, step·λ)
// is exactly zero whenever |grad_j| ≤ n·λ (the float expression is a
// monotone image of that comparison). The screen certifies the real
// quantity with margin to spare for the float error of an O(n)
// gradient accumulation, so the certified float update is zero too.
func screenSafety(n int, lambda float64) float64 {
	return 1e-9*float64(n)*lambda + 1e-10*float64(n)
}

// refresh recomputes the exact full gradient from the stored residuals
// (bit-identical to the dense loop: each grad[j] accumulates resid·z
// in row order, an independent accumulator per column), then rebuilds
// the screen: every zero-weight coordinate with slack against n·λ is
// screened with a drift budget of slack/‖z_j‖; active and
// near-threshold coordinates stay live. Returns the minimum budget —
// the residual-drift radius within which every screened certificate
// remains valid.
func (c *cdPath) refresh(w []float64, lambda float64) (ddrLimit float64) {
	ds := c.ds
	n, d := ds.n, ds.d
	for j := 0; j < d; j++ {
		c.grad[j] = 0
	}
	for i := 0; i < n; i++ {
		resid := c.r[i]
		row := ds.z[i*d : (i+1)*d]
		gr := c.grad
		if len(gr) > len(row) {
			gr = gr[:len(row)]
		}
		j := 0
		for ; j+4 <= len(row) && j+4 <= len(gr); j += 4 {
			gr[j] += resid * row[j]
			gr[j+1] += resid * row[j+1]
			gr[j+2] += resid * row[j+2]
			gr[j+3] += resid * row[j+3]
		}
		for ; j < len(row); j++ {
			gr[j] += resid * row[j]
		}
	}
	copy(c.gradRef, c.grad)
	copy(c.rref, c.r)

	nLam := float64(n) * lambda
	safety := screenSafety(n, lambda)
	ddrLimit = math.Inf(1)
	c.live = c.live[:0]
	for j := 0; j < d; j++ {
		if w[j] == 0 {
			slack := nLam - math.Abs(c.gradRef[j]) - safety
			if slack > 0 && c.colNorm[j] > 0 {
				c.state[j] = cdScreened
				c.budget[j] = slack / c.colNorm[j]
				if c.budget[j] < ddrLimit {
					ddrLimit = c.budget[j]
				}
				continue
			}
		}
		c.state[j] = cdLive
		c.live = append(c.live, j)
	}

	// Pack the live columns into a contiguous panel and seed the packed
	// gradient accumulators with the exact entries just computed.
	nl := len(c.live)
	c.lz = c.lz[:n*nl]
	c.lg = c.lg[:nl]
	for jj, j := range c.live {
		c.lg[jj] = c.grad[j]
	}
	for i := 0; i < n; i++ {
		row := ds.z[i*d : (i+1)*d]
		lrow := c.lz[i*nl : i*nl+nl]
		for jj, j := range c.live {
			lrow[jj] = row[j]
		}
	}
	return ddrLimit
}

// screenedFrom is the screened engine's tail loop. Its emitted floats
// — dots, sigmoids, residuals, live gradient entries, the proximal
// updates and the convergence test — are computed by exactly the
// expressions fitFrom uses, in the same order; the only difference is
// that screened coordinates' gradient entries are never accumulated
// and their (provably zero) updates never applied. The screen is
// maintained conservatively on the side: per iteration one O(n)
// residual-drift norm against the refresh point, and a full refresh
// whenever the smallest budget is exceeded.
func (c *cdPath) screenedFrom(lambda float64, maxIter int, tol float64, w []float64, b float64, start int) *Result {
	ds := c.ds
	z, y, n, d := ds.z, ds.y, ds.n, ds.d
	step, inv := ds.step, ds.inv
	nz := make([]int, 0, d)
	ddrLimit := -1.0 // force a refresh on the first iteration
	var iters int
	for iters = start; iters < maxIter; iters++ {
		// Active-set maintenance: the packed dot panel is rebuilt only
		// when the support set changes (rare between consecutive
		// iterations); the packed weights track every iteration.
		nz = nz[:0]
		for j, wj := range w {
			if wj != 0 {
				nz = append(nz, j)
			}
		}
		sparse := len(nz)*2 < d
		na := len(nz)
		if sparse {
			if !intsEqual(nz, c.nzCols) {
				c.nzCols = append(c.nzCols[:0], nz...)
				c.az = c.az[:n*na]
				for jj, j := range nz {
					for i := 0; i < n; i++ {
						c.az[i*na+jj] = z[i*d+j]
					}
				}
			}
			c.aw = c.aw[:na]
			for jj, j := range nz {
				c.aw[jj] = w[j]
			}
		}

		// Residual pass: identical to the dense loop's per-row dot,
		// deduplicated sigmoid and residual arithmetic, with the live
		// coordinates' gradient entries accumulated in the same row
		// order the dense loop uses (each is an independent
		// accumulator, so restricting the column set reorders nothing,
		// and the packed panels change neither multiplicands nor
		// order). Residuals are stored for a possible refresh; the
		// drift norm against the refresh point rides the same pass.
		nl := len(c.live)
		lg := c.lg
		for jj := range lg {
			lg[jj] = 0
		}
		var gradB, drift float64
		lastDot := math.NaN()
		var lastSig float64
		for i := 0; i < n; i++ {
			var dot float64
			if sparse {
				arow := c.az[i*na : i*na+na]
				for jj, v := range arow {
					dot += c.aw[jj] * v
				}
			} else {
				row := z[i*d : (i+1)*d]
				wr := w
				if len(wr) > len(row) {
					wr = wr[:len(row)]
				}
				for j, wv := range wr {
					dot += wv * row[j]
				}
			}
			dot += b
			sig := lastSig
			if dot != lastDot {
				sig = sigmoid(dot)
				lastDot, lastSig = dot, sig
			}
			resid := sig - y[i]
			c.r[i] = resid
			dr := resid - c.rref[i]
			drift += dr * dr
			lrow := c.lz[i*nl : i*nl+nl]
			for jj, v := range lrow {
				lg[jj] += resid * v
			}
			gradB += resid
		}

		// Screen maintenance: the certificates cover any iterate whose
		// residual drift from the refresh point stays inside the
		// smallest budget (Cauchy–Schwarz: |Δgrad_j| ≤ ‖Δr‖·‖z_j‖).
		// The drift norm is measured conservatively; past the limit the
		// refresh recomputes every gradient entry exactly — the full
		// KKT pass that keeps screening safe. A refresh recomputes the
		// live entries too, to the same bits the fused pass just
		// produced.
		if ddrLimit >= 0 && !math.IsInf(ddrLimit, 1) {
			if math.Sqrt(drift)*(1+1e-9) >= ddrLimit {
				ddrLimit = -1
			}
		}
		if ddrLimit < 0 {
			ddrLimit = c.refresh(w, lambda)
		}

		// Proximal updates over the live coordinates only: a screened
		// coordinate's update is certified to be exactly zero, so it
		// contributes nothing to the iterate or to maxDelta.
		var maxDelta float64
		for jj, j := range c.live {
			nw := softThreshold(w[j]-step*c.lg[jj]*inv, step*lambda)
			if dd := math.Abs(nw - w[j]); dd > maxDelta {
				maxDelta = dd
			}
			w[j] = nw
		}
		nb := b - step*gradB*inv
		if dd := math.Abs(nb - b); dd > maxDelta {
			maxDelta = dd
		}
		b = nb
		if maxDelta < tol {
			break
		}
	}
	return &Result{Weights: w, Intercept: b, Lambda: lambda, Iters: iters}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
