package lasso

import (
	"math"
	"math/rand"
	"testing"
)

// synthProblem builds a classification problem where only the first
// `informative` of d features separate the classes.
func synthProblem(rng *rand.Rand, n, d, informative int, gap float64) Problem {
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := float64(i % 2)
		y[i] = label
		for j := 0; j < d; j++ {
			v := rng.NormFloat64()
			if j < informative && label == 1 {
				v += gap
			}
			x[i*d+j] = v
		}
	}
	return Problem{X: x, Y: y, N: n, D: d}
}

func TestFitSeparatesObviousFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := synthProblem(rng, 80, 5, 1, 6)
	res, err := Fit(p, 0.01, 2000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] <= 0 {
		t.Fatalf("informative weight = %v; want > 0", res.Weights[0])
	}
	for j := 1; j < 5; j++ {
		if math.Abs(res.Weights[j]) > math.Abs(res.Weights[0]) {
			t.Fatalf("noise weight %d (%v) exceeds informative (%v)", j, res.Weights[j], res.Weights[0])
		}
	}
}

func TestFitHighLambdaZeroesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := synthProblem(rng, 40, 4, 2, 3)
	res, err := Fit(p, 100, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support()) != 0 {
		t.Fatalf("support = %v; want empty", res.Support())
	}
}

func TestFitShapeErrors(t *testing.T) {
	if _, err := Fit(Problem{}, 0.1, 10, 0); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Fit(Problem{X: []float64{1}, Y: []float64{1, 0}, N: 2, D: 1}, 0.1, 10, 0); err == nil {
		t.Fatal("mismatched X accepted")
	}
}

func TestSupportOrdering(t *testing.T) {
	r := &Result{Weights: []float64{0, -3, 1, 0, 2}}
	got := r.Support()
	want := []int{1, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v; want %v", got, want)
		}
	}
}

func TestSelectKFindsInformativeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 12 features, 5 informative; ask for 5 (paper's target).
	p := synthProblem(rng, 120, 12, 5, 4)
	sel, res, err := SelectK(p, 5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) < 5 {
		t.Fatalf("selected %d variables; want >= 5 (got %v)", len(sel), sel)
	}
	// The 5 informative features must dominate the selection.
	informative := 0
	for _, j := range sel[:5] {
		if j < 5 {
			informative++
		}
	}
	if informative < 4 {
		t.Fatalf("only %d of top-5 selections are informative: %v (lambda %v)", informative, sel, res.Lambda)
	}
}

func TestSelectKRejectsBadK(t *testing.T) {
	if _, _, err := SelectK(Problem{X: []float64{1}, Y: []float64{1}, N: 1, D: 1}, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ x, t, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.x, c.t); got != c.want {
			t.Fatalf("softThreshold(%v,%v) = %v; want %v", c.x, c.t, got, c.want)
		}
	}
}

func TestFitMonotoneSupportInLambda(t *testing.T) {
	// Support size should (weakly) shrink as lambda grows.
	rng := rand.New(rand.NewSource(3))
	p := synthProblem(rng, 60, 8, 3, 3)
	prev := math.MaxInt32
	for _, lam := range []float64{0.001, 0.01, 0.05, 0.2, 1.0} {
		res, err := Fit(p, lam, 1500, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		s := len(res.Support())
		if s > prev+1 { // allow slack of 1 for path non-monotonicity
			t.Fatalf("support grew sharply with lambda: %d -> %d at %v", prev, s, lam)
		}
		if s < prev {
			prev = s
		}
	}
}

// TestSelectKWarmMatchesCold sweeps randomized designs — including
// ill-posed ones where k exceeds the informative feature count, so
// noise picks sit right at the activation threshold — and checks the
// warm-started path search is bit-identical to the cold oracle in
// every respect: ranked selection, tuned lambda, fitted weights,
// intercept and iteration count. Warm fits fast-forward through the
// shared pure-intercept prefix but reproduce the cold trajectory
// exactly, so nothing may differ.
func TestSelectKWarmMatchesCold(t *testing.T) {
	rng := uint64(12345)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / (1 << 53)
	}
	for trial := 0; trial < 20; trial++ {
		n := 20 + trial
		d := 5 + trial%12
		informative := 1 + trial%4
		x := make([]float64, n*d)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			if i >= n/2 {
				y[i] = 1
			}
			for j := 0; j < d; j++ {
				v := next() - 0.5
				if j < informative {
					v += y[i] * (0.5 + float64(j)*0.3)
				}
				x[i*d+j] = v
			}
		}
		p := Problem{X: x, Y: y, N: n, D: d}
		k := 1 + trial%5
		warmSel, warmRes, err := SelectK(p, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		coldSel, coldRes, err := SelectKCold(p, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(warmSel) != len(coldSel) {
			t.Fatalf("trial %d: warm %v cold %v", trial, warmSel, coldSel)
		}
		for i := range warmSel {
			if warmSel[i] != coldSel[i] {
				t.Fatalf("trial %d rank %d: warm %v cold %v", trial, i, warmSel, coldSel)
			}
		}
		if math.Float64bits(warmRes.Lambda) != math.Float64bits(coldRes.Lambda) {
			t.Fatalf("trial %d: lambda warm %v cold %v", trial, warmRes.Lambda, coldRes.Lambda)
		}
		if math.Float64bits(warmRes.Intercept) != math.Float64bits(coldRes.Intercept) {
			t.Fatalf("trial %d: intercept warm %v cold %v", trial, warmRes.Intercept, coldRes.Intercept)
		}
		if warmRes.Iters != coldRes.Iters {
			t.Fatalf("trial %d: iters warm %d cold %d", trial, warmRes.Iters, coldRes.Iters)
		}
		for j := range warmRes.Weights {
			if math.Float64bits(warmRes.Weights[j]) != math.Float64bits(coldRes.Weights[j]) {
				t.Fatalf("trial %d: weight %d warm %v cold %v",
					trial, j, warmRes.Weights[j], coldRes.Weights[j])
			}
		}
	}
}
