package lasso

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"
)

// pipelineShapedProblem mirrors the selection-stage design the §3
// lasso sees: ~38 runs over ~34 standardized output variables with a
// handful of separating features.
func pipelineShapedProblem() Problem {
	n, d := 38, 34
	x := make([]float64, n*d)
	y := make([]float64, n)
	s := 1.0
	for i := range x {
		s = math.Mod(s*1.1283791670955126+0.7071, 1)
		x[i] = s * 3.0
	}
	for i := 30; i < n; i++ {
		y[i] = 1
		for j := 0; j < 5; j++ {
			x[i*d+j] += 0.7
		}
	}
	return Problem{X: x, Y: y, N: n, D: d}
}

func BenchmarkSelectK(b *testing.B) {
	p := pipelineShapedProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SelectK(p, 5, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

// catalogProblem loads the real GOFFGRATCH selection design exported
// from internal/experiments (see TestExportLassoFixture there): the
// exact (X, y) the §3 selection stage hands the lasso, with the small
// true support and near-duplicate columns the synthetic design lacks.
func catalogProblem(tb testing.TB) (Problem, int) {
	buf, err := os.ReadFile("testdata/goffgratch.json")
	if err != nil {
		tb.Fatalf("catalog fixture (regenerate with RCA_EXPORT_FIXTURE=1 go test ./internal/experiments -run TestExportLassoFixture): %v", err)
	}
	var fix struct {
		N, D, K int
		X, Y    []float64
	}
	if err := json.Unmarshal(buf, &fix); err != nil {
		tb.Fatal(err)
	}
	return Problem{X: fix.X, Y: fix.Y, N: fix.N, D: fix.D}, fix.K
}

func benchSelectKSolver(b *testing.B, solver Solver) {
	p, k := catalogProblem(b)
	b.ReportAllocs()
	var iters int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_, _, st, err := SelectKSolver(p, k, 1500, solver)
		if err != nil {
			b.Fatal(err)
		}
		iters += st.Iters
	}
	b.ReportMetric(float64(time.Since(start).Milliseconds())/float64(b.N), "lassoms")
	b.ReportMetric(float64(iters)/float64(b.N), "lassoiters")
}

func BenchmarkSelectKCD(b *testing.B)   { benchSelectKSolver(b, SolverCD) }
func BenchmarkSelectKISTA(b *testing.B) { benchSelectKSolver(b, SolverISTA) }

// TestSparseDotMatchesDense pins the bit-identity of the sparse-dot
// fast path against a dense reference fit.
func TestSparseDotMatchesDense(t *testing.T) {
	p := pipelineShapedProblem()
	z, _, _ := standardize(p.X, p.N, p.D)
	fast := fitStandardized(z, p.Y, p.N, p.D, 0.02, 800, 1e-7, false)
	slow := fitStandardized(z, p.Y, p.N, p.D, 0.02, 800, 1e-7, true)
	if fast.Intercept != slow.Intercept || fast.Iters != slow.Iters {
		t.Fatalf("intercept/iters diverge: %v/%d vs %v/%d",
			fast.Intercept, fast.Iters, slow.Intercept, slow.Iters)
	}
	for j := range fast.Weights {
		if math.Float64bits(fast.Weights[j]) != math.Float64bits(slow.Weights[j]) {
			t.Fatalf("w[%d]: %v vs %v", j, fast.Weights[j], slow.Weights[j])
		}
	}
}
