package bytecode

import "github.com/climate-rca/rca/internal/fortran"

func (f *pcomp) stmts(body []fortran.Stmt) {
	for _, s := range body {
		f.stmt(s)
	}
}

func (f *pcomp) stmt(s fortran.Stmt) {
	switch x := s.(type) {
	case *fortran.AssignStmt:
		f.assign(x)
	case *fortran.CallStmt:
		f.callStmt(x)
	case *fortran.ReturnStmt:
		f.emit(instr{op: opRet})
	case *fortran.IfStmt:
		f.ifStmt(x)
	case *fortran.DoStmt:
		f.doStmt(x)
	default:
		f.emitErr("unknown statement %T", s)
	}
}

func (f *pcomp) ifStmt(x *fortran.IfStmt) {
	co := f.expr(x.Cond)
	switch co.kind {
	case kErr:
		return
	case kDrv:
		// truthy(derived) is false in the walker: else branch always.
		f.release(co)
		f.stmts(x.Else)
		return
	case kArr:
		t := f.allocS()
		f.emit(instr{op: opAnyV, d: t, a: co.reg})
		f.release(co)
		co = opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	default:
		co = f.matS(co)
	}
	j := f.emit(instr{op: opJZ, a: co.reg})
	f.release(co)
	f.stmts(x.Then)
	if len(x.Else) > 0 {
		jend := f.emit(instr{op: opJmp})
		f.code[j].b = int32(len(f.code))
		f.stmts(x.Else)
		f.code[jend].b = int32(len(f.code))
		return
	}
	f.code[j].b = int32(len(f.code))
}

// storeScal writes an S register into a scalar cell.
func (f *pcomp) storeScal(cr cellRef, src int32) {
	if cr.isField {
		f.emit(instr{op: opStoreDF, d: cr.dreg, b: cr.fslot, a: src})
		return
	}
	switch cr.space {
	case vsScal:
		if cr.reg != src {
			f.emit(instr{op: opMovS, d: cr.reg, a: src})
		}
	case vsPtr:
		f.emit(instr{op: opStoreP, d: cr.reg, a: src})
	case vsGScal:
		f.emit(instr{op: opStoreG, d: cr.reg, a: src})
	}
}

func (f *pcomp) assign(a *fortran.AssignStmt) {
	cr := f.walkRef(a.LHS)
	if cr.bad {
		return
	}
	if a.LHS.HasParens && cr.kind == kArr && len(a.LHS.Args) == 1 {
		ik, _ := f.kindOf(a.LHS.Args[0])
		switch ik {
		case kErr:
			f.releaseCell(cr)
			f.expr(a.LHS.Args[0])
			return
		case kScal:
			io := f.expr(a.LHS.Args[0])
			im := f.matS(io)
			ao := f.arrOpnd(cr)
			ireg := f.allocI()
			f.emit(instr{op: opIdx, d: ireg, a: ao.reg, b: im.reg, e: f.c.str(a.LHS.Name)})
			f.release(im)
			ro := f.expr(a.RHS)
			switch ro.kind {
			case kErr:
				f.freeIReg(ireg)
				f.release(ao)
				f.releaseCell(cr)
				return
			case kDrv:
				f.release(ro)
				f.emitErr("derived value used as scalar")
			case kArr:
				t := f.allocS()
				f.emit(instr{op: opCollapse, d: t, a: ro.reg})
				f.release(ro)
				f.emit(instr{op: opStoreElem, a: ao.reg, b: ireg, c: t})
				f.freeSReg(t)
			default:
				rm := f.matS(ro)
				f.emit(instr{op: opStoreElem, a: ao.reg, b: ireg, c: rm.reg})
				f.release(rm)
			}
			f.freeIReg(ireg)
			f.release(ao)
			f.releaseCell(cr)
			return
		default:
			// Array/derived index: evaluated and discarded; whole-cell
			// assignment follows.
			io := f.expr(a.LHS.Args[0])
			f.release(io)
		}
	}
	f.wholeAssign(cr, a.RHS)
	f.releaseCell(cr)
}

func (f *pcomp) wholeAssign(cr cellRef, rhs fortran.Expr) {
	switch cr.kind {
	case kScal:
		var d dst
		if !cr.isField && cr.space == vsScal {
			d = dst{ok: true, kind: kScal, reg: cr.reg}
		}
		ro := f.exprD(rhs, d)
		switch ro.kind {
		case kErr:
			return
		case kDrv:
			f.release(ro)
			f.emitErr("derived value used as scalar")
		case kArr:
			t := f.allocS()
			f.emit(instr{op: opCollapse, d: t, a: ro.reg})
			f.release(ro)
			f.storeScal(cr, t)
			f.freeSReg(t)
		default:
			if d.ok && ro.ok == oVarS && ro.reg == d.reg {
				return // written in place
			}
			if d.ok && ro.ok == oConst {
				f.emit(instr{op: opConst, d: d.reg, a: ro.cidx})
				return
			}
			rm := f.matS(ro)
			f.storeScal(cr, rm.reg)
			f.release(rm)
		}
	case kArr:
		ao := f.arrOpnd(cr)
		ro := f.exprD(rhs, dst{ok: true, kind: kArr, reg: ao.reg})
		switch ro.kind {
		case kErr:
			f.release(ao)
			return
		case kScal:
			rm := f.matS(ro)
			f.emit(instr{op: opBroadV, d: ao.reg, a: rm.reg})
			f.release(rm)
		case kArr:
			if ro.reg != ao.reg {
				f.emit(instr{op: opCopyV, d: ao.reg, a: ro.reg})
			}
			f.release(ro)
		case kDrv:
			f.release(ro) // assignInto array ← derived is a no-op
		}
		f.release(ao)
	case kDrv:
		ro := f.expr(rhs)
		if ro.kind == kDrv {
			f.copyDerived(cr, ro)
		}
		f.release(ro)
	}
}

// copyDerived compiles the field-by-field assignInto of one derived
// value into another, matching fields by name. The phantom .f is left
// untouched, as the walker leaves Value.F.
func (f *pcomp) copyDerived(cr cellRef, src opnd) {
	dstReg, dstTmp := f.drvReg(&vslot{kind: kDrv, space: cr.space, reg: cr.reg, dt: cr.dt})
	for _, sf := range src.dt.fields {
		di, ok := cr.dt.fidx[sf.name]
		if !ok {
			continue
		}
		df := cr.dt.fields[di]
		switch {
		case !sf.arr && !df.arr:
			t := f.allocS()
			f.emit(instr{op: opLoadDF, d: t, a: src.reg, b: sf.slot})
			f.emit(instr{op: opStoreDF, d: dstReg, b: df.slot, a: t})
			f.freeSReg(t)
		case sf.arr && df.arr:
			sa := f.allocAAlias()
			da := f.allocAAlias()
			f.emit(instr{op: opBindDF, d: sa, a: src.reg, b: sf.slot})
			f.emit(instr{op: opBindDF, d: da, a: dstReg, b: df.slot})
			f.emit(instr{op: opCopyV, d: da, a: sa})
			f.freeAAliasReg(sa)
			f.freeAAliasReg(da)
		case sf.arr && !df.arr: // scalar ← array collapses to element 0
			sa := f.allocAAlias()
			f.emit(instr{op: opBindDF, d: sa, a: src.reg, b: sf.slot})
			t := f.allocS()
			f.emit(instr{op: opCollapse, d: t, a: sa})
			f.emit(instr{op: opStoreDF, d: dstReg, b: df.slot, a: t})
			f.freeSReg(t)
			f.freeAAliasReg(sa)
		default: // array ← scalar broadcasts
			t := f.allocS()
			f.emit(instr{op: opLoadDF, d: t, a: src.reg, b: sf.slot})
			da := f.allocAAlias()
			f.emit(instr{op: opBindDF, d: da, a: dstReg, b: df.slot})
			f.emit(instr{op: opBroadV, d: da, a: t})
			f.freeSReg(t)
			f.freeAAliasReg(da)
		}
	}
	if dstTmp {
		f.freeDAliasReg(dstReg)
	}
}

func (f *pcomp) doStmt(x *fortran.DoStmt) {
	fo := f.expr(x.From)
	if fo.kind == kErr {
		return
	}
	to := f.expr(x.To)
	if to.kind == kErr {
		f.release(fo)
		return
	}
	bound := func(o opnd) (opnd, bool) {
		switch o.kind {
		case kArr:
			t := f.allocS()
			f.emit(instr{op: opCollapse, d: t, a: o.reg})
			f.release(o)
			return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}, true
		case kDrv:
			f.release(o)
			f.emitErr("derived value used as loop bound")
			return opnd{}, false
		}
		return o, true
	}
	// Both bounds evaluate fully before either is read as a scalar.
	fb, ok := bound(fo)
	if !ok {
		f.release(to)
		return
	}
	tb, ok := bound(to)
	if !ok {
		f.release(fb)
		return
	}
	fm := f.matS(fb)
	tm := f.matS(tb)
	vs := f.resolveVar(x.Var) // created (and touched) after bound evals
	ip := f.allocI2()
	f.emit(instr{op: opLoopInit, d: ip, a: fm.reg, b: tm.reg})
	f.release(fm)
	f.release(tm)
	ctr := f.allocS()
	head := len(f.code)
	cond := f.emit(instr{op: opLoopCond, d: ctr, a: ip})
	switch vs.kind {
	case kScal:
		cr := cellRef{kind: kScal, space: vs.space, reg: vs.reg}
		f.storeScal(cr, ctr)
	case kDrv:
		dreg, dtmp := f.drvReg(vs)
		f.emit(instr{op: opStoreDF0, d: dreg, a: ctr})
		if dtmp {
			f.freeDAliasReg(dreg)
		}
		// Arrays: the walker writes the invisible Value.F; no-op here.
	}
	f.stmts(x.Body)
	f.emit(instr{op: opLoopInc, a: ip, b: int32(head)})
	f.code[cond].b = int32(len(f.code))
	f.freeSReg(ctr)
}

func (f *pcomp) callStmt(cst *fortran.CallStmt) {
	switch cst.Name {
	case "outfld":
		if len(cst.Args) != 2 {
			f.emitErr("outfld wants 2 args")
			return
		}
		lbl, ok := cst.Args[0].(*fortran.StrLit)
		if !ok {
			f.emitErr("outfld label must be a literal")
			return
		}
		vo := f.expr(cst.Args[1])
		switch vo.kind {
		case kErr:
			return
		case kArr:
			f.emit(instr{op: opOutV, a: f.c.str(lbl.Value), b: vo.reg})
			f.release(vo)
		case kScal:
			vm := f.matS(vo)
			f.emit(instr{op: opOutS, a: f.c.str(lbl.Value), b: vm.reg})
			f.release(vm)
		case kDrv:
			f.release(vo)
			f.emitErr("outfld of derived value")
		}
		return
	case "random_number":
		if len(cst.Args) != 1 {
			f.emitErr("random_number wants 1 arg")
			return
		}
		ref, ok := cst.Args[0].(*fortran.Ref)
		if !ok {
			f.emitErr("random_number needs a variable")
			return
		}
		cr := f.walkRef(ref)
		if cr.bad {
			return
		}
		if ref.HasParens && cr.kind == kArr && len(ref.Args) == 1 {
			ik, _ := f.kindOf(ref.Args[0])
			switch ik {
			case kErr:
				f.releaseCell(cr)
				f.expr(ref.Args[0])
				return
			case kScal:
				io := f.expr(ref.Args[0])
				im := f.matS(io)
				ao := f.arrOpnd(cr)
				ireg := f.allocI()
				f.emit(instr{op: opIdx, d: ireg, a: ao.reg, b: im.reg, e: f.c.str(ref.Name)})
				f.release(im)
				t := f.allocS()
				f.emit(instr{op: opRandS, d: t})
				f.emit(instr{op: opStoreElem, a: ao.reg, b: ireg, c: t})
				f.freeSReg(t)
				f.freeIReg(ireg)
				f.release(ao)
				f.releaseCell(cr)
				return
			default:
				io := f.expr(ref.Args[0])
				f.release(io)
			}
		}
		switch cr.kind {
		case kArr:
			ao := f.arrOpnd(cr)
			f.emit(instr{op: opRandV, d: ao.reg})
			f.release(ao)
		case kScal:
			t := f.allocS()
			f.emit(instr{op: opRandS, d: t})
			f.storeScal(cr, t)
			f.freeSReg(t)
		case kDrv:
			dreg, dtmp := f.drvReg(&vslot{kind: kDrv, space: cr.space, reg: cr.reg, dt: cr.dt})
			t := f.allocS()
			f.emit(instr{op: opRandS, d: t})
			f.emit(instr{op: opStoreDF0, d: dreg, a: t})
			f.freeSReg(t)
			if dtmp {
				f.freeDAliasReg(dreg)
			}
		}
		f.releaseCell(cr)
		return
	}
	targets := f.l.subs[f.t.module+"::"+cst.Name]
	if len(targets) == 0 {
		f.emitErr("no subroutine %q visible in %s", cst.Name, f.t.module)
		return
	}
	t := resolveOverload(targets, len(cst.Args))
	sig := make([]sigArg, len(t.sub.Args))
	for i := range sig {
		sig[i] = sigArg{mode: 'u'}
	}
	var moves []argMove
	var holds []opnd
	for i, ae := range cst.Args {
		sa, mv, hold, ok := f.subArg(ae)
		if !ok {
			for _, h := range holds {
				f.release(h)
			}
			return
		}
		holds = append(holds, hold...)
		if i < len(t.sub.Args) {
			sig[i] = sa
			moves = append(moves, mv)
		}
	}
	callee := f.c.spec(t, sig)
	cs := f.c.addCall(&callSite{proc: callee, args: moves})
	f.emit(instr{op: opCallSub, a: cs})
	for _, h := range holds {
		f.release(h)
	}
}

// subArg lowers one subroutine-call argument, mirroring execCall:
// whole references bind by reference, element views copy in, and a
// parenthesized non-array name falls back to expression evaluation —
// intrinsic or function first, else the cell itself by reference.
func (f *pcomp) subArg(ae fortran.Expr) (sigArg, argMove, []opnd, bool) {
	fail := func() (sigArg, argMove, []opnd, bool) { return sigArg{}, argMove{}, nil, false }
	fromOpnd := func(o opnd) (sigArg, argMove, []opnd, bool) {
		switch o.kind {
		case kErr:
			return fail()
		case kScal:
			m := f.matS(o)
			return sigArg{mode: 'S'}, argMove{mode: amValScalS, a: m.reg}, []opnd{m}, true
		case kArr:
			return sigArg{mode: 'a'}, argMove{mode: amRefArr, a: o.reg}, []opnd{o}, true
		default:
			return sigArg{mode: 'd', dt: o.dt}, argMove{mode: amRefDrv, a: o.reg}, []opnd{o}, true
		}
	}
	ref, isRef := ae.(*fortran.Ref)
	if !isRef {
		return fromOpnd(f.expr(ae))
	}
	cr := f.walkRef(ref)
	if cr.bad {
		return fail()
	}
	if ref.HasParens && cr.kind == kArr && len(ref.Args) == 1 {
		ik, _ := f.kindOf(ref.Args[0])
		switch ik {
		case kErr:
			f.releaseCell(cr)
			f.expr(ref.Args[0])
			return fail()
		case kScal:
			// Element view: copy-in only.
			io := f.expr(ref.Args[0])
			im := f.matS(io)
			ao := f.arrOpnd(cr)
			ireg := f.allocI()
			f.emit(instr{op: opIdx, d: ireg, a: ao.reg, b: im.reg, e: f.c.str(ref.Name)})
			f.release(im)
			t := f.allocS()
			f.emit(instr{op: opLoadElem, d: t, a: ao.reg, b: ireg})
			f.freeIReg(ireg)
			f.release(ao)
			f.releaseCell(cr)
			return sigArg{mode: 'S'}, argMove{mode: amValScalS, a: t},
				[]opnd{{kind: kScal, ok: oTempS, reg: t, sTmp: true}}, true
		default:
			io := f.expr(ref.Args[0])
			f.release(io)
			ao := f.arrOpnd(cr)
			f.releaseCell(cr)
			return sigArg{mode: 'a'}, argMove{mode: amRefArr, a: ao.reg}, []opnd{ao}, true
		}
	}
	if ref.HasParens && cr.kind != kArr && len(ref.Components) == 0 {
		// The walker re-evaluates such arguments as expressions:
		// intrinsics and visible functions win; otherwise the (scalar
		// or derived) cell itself is passed by reference.
		if intrinsicNames[ref.Name] {
			return fromOpnd(f.intrinsic(ref, dst{}))
		}
		if ts := f.l.funcs[f.t.module+"::"+ref.Name]; len(ts) > 0 {
			return fromOpnd(f.callFunc(ts, ref.Args, dst{}))
		}
	}
	// Whole-cell by-reference binding.
	switch cr.kind {
	case kScal:
		if cr.isField {
			return sigArg{mode: 's'}, argMove{mode: amRefScalDF, a: cr.dreg, b: cr.fslot},
				[]opnd{{kind: kScal, ok: oFieldS, reg: cr.dreg, f: cr.fslot, dAliasTmp: cr.dregTmp}}, true
		}
		switch cr.space {
		case vsScal:
			return sigArg{mode: 's'}, argMove{mode: amRefScalS, a: cr.reg}, nil, true
		case vsPtr:
			return sigArg{mode: 's'}, argMove{mode: amRefScalP, a: cr.reg}, nil, true
		default:
			return sigArg{mode: 's'}, argMove{mode: amRefScalG, a: cr.reg}, nil, true
		}
	case kArr:
		ao := f.arrOpnd(cr)
		f.releaseCell(cr)
		return sigArg{mode: 'a'}, argMove{mode: amRefArr, a: ao.reg}, []opnd{ao}, true
	default:
		do := f.cellOpnd(cr)
		return sigArg{mode: 'd', dt: cr.dt}, argMove{mode: amRefDrv, a: do.reg}, []opnd{do}, true
	}
}
