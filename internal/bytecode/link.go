package bytecode

import (
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/fortran"
)

// linker replays interp.NewMachine's construction — module storage
// allocation with initializers, procedure and interface registration,
// use-import aliasing — so the compiled program's symbol resolution is
// the tree walker's, phase for phase. The phase ORDER is semantic:
// module-level declarations see only their module's own derived types
// (imports are processed afterwards), procedure imports chain in
// module order, and import aliasing never shadows a module's own
// declarations.
type linker struct {
	mods      []*fortran.Module
	modByName map[string]*fortran.Module

	types   map[string]map[string]fortran.DerivedType
	storage map[string]map[string]gref
	funcs   map[string][]target
	subs    map[string][]target

	dtypes map[string]*dtype // layout key → interned type

	prog *Program
}

func newLinker(mods []*fortran.Module, prog *Program) *linker {
	return &linker{
		mods:      mods,
		modByName: make(map[string]*fortran.Module, len(mods)),
		types:     make(map[string]map[string]fortran.DerivedType),
		storage:   make(map[string]map[string]gref),
		funcs:     make(map[string][]target),
		subs:      make(map[string][]target),
		dtypes:    make(map[string]*dtype),
		prog:      prog,
	}
}

// link runs every construction phase; a non-nil error is the
// NewMachine-equivalent failure the VM must report at creation.
func (l *linker) link() error {
	p := l.prog
	// Phase 1: module registry.
	for _, mod := range l.mods {
		if _, dup := l.modByName[mod.Name]; dup {
			return errf("duplicate module %q", mod.Name)
		}
		l.modByName[mod.Name] = mod
		p.moduleIdx[mod.Name] = len(p.modules)
		p.modules = append(p.modules, mod.Name)
	}
	// Phase 2: own derived types.
	for _, mod := range l.mods {
		l.types[mod.Name] = make(map[string]fortran.DerivedType)
		for _, dt := range mod.Types {
			l.types[mod.Name][dt.Name] = dt
		}
	}
	// Phase 3: module-level storage with initializers. Later
	// declarations of the same name rebind it (the walker's map
	// overwrite); initializer failures abort construction.
	for _, mod := range l.mods {
		store := make(map[string]gref)
		l.storage[mod.Name] = store
		for _, d := range mod.Decls {
			for _, name := range d.Names {
				g, err := l.allocate(mod.Name, d, name)
				if err != nil {
					return errf("%s: %v", mod.Name, err)
				}
				if d.Init != nil {
					v, err := constEval(d.Init)
					if err != nil {
						return errf("%s: %s: %v", mod.Name, name, err)
					}
					switch g.kind {
					case kScal:
						p.scalInit = append(p.scalInit, struct {
							idx int32
							val float64
						}{g.idx, v})
					case kArr:
						p.arrInit = append(p.arrInit, struct {
							idx int32
							val float64
						}{g.idx, v})
						// Derived targets: assignInto is a no-op.
					}
				}
				store[name] = g
			}
		}
	}
	// Phase 4: own procedures, then interfaces.
	for _, mod := range l.mods {
		for _, sub := range mod.Subprograms {
			t := target{module: mod.Name, sub: sub}
			k := mod.Name + "::" + sub.Name
			if sub.Kind == fortran.KindFunction {
				l.funcs[k] = append(l.funcs[k], t)
			} else {
				l.subs[k] = append(l.subs[k], t)
			}
		}
		for _, iface := range mod.Interfaces {
			k := mod.Name + "::" + iface.Name
			for _, procName := range iface.Procedures {
				for _, sub := range mod.Subprograms {
					if sub.Name != procName {
						continue
					}
					t := target{module: mod.Name, sub: sub}
					if sub.Kind == fortran.KindFunction {
						l.funcs[k] = append(l.funcs[k], t)
					} else {
						l.subs[k] = append(l.subs[k], t)
					}
				}
			}
		}
	}
	// Phase 5: use imports — storage aliasing (own names shadow),
	// procedure appends (chained imports follow module order) and type
	// imports (which overwrite without a shadow check, as the walker's
	// do).
	for _, mod := range l.mods {
		for _, u := range mod.Uses {
			src, ok := l.modByName[u.Module]
			if !ok {
				continue
			}
			imports := u.Only
			if len(imports) == 0 {
				for _, d := range src.Decls {
					for _, n := range d.Names {
						imports = append(imports, fortran.Rename{Local: n, Remote: n})
					}
				}
				for _, sub := range src.Subprograms {
					imports = append(imports, fortran.Rename{Local: sub.Name, Remote: sub.Name})
				}
				for _, iface := range src.Interfaces {
					imports = append(imports, fortran.Rename{Local: iface.Name, Remote: iface.Name})
				}
				for _, dt := range src.Types {
					imports = append(imports, fortran.Rename{Local: dt.Name, Remote: dt.Name})
				}
			}
			for _, r := range imports {
				if g, ok := l.storage[src.Name][r.Remote]; ok && declaredIn(src, r.Remote) {
					if _, shadow := l.storage[mod.Name][r.Local]; !shadow {
						l.storage[mod.Name][r.Local] = g
					}
				}
				srcKey := src.Name + "::" + r.Remote
				dstKey := mod.Name + "::" + r.Local
				if fs, ok := l.funcs[srcKey]; ok {
					l.funcs[dstKey] = append(l.funcs[dstKey], fs...)
				}
				if ss, ok := l.subs[srcKey]; ok {
					l.subs[dstKey] = append(l.subs[dstKey], ss...)
				}
				if dt, ok := l.types[src.Name][r.Remote]; ok {
					l.types[mod.Name][r.Local] = dt
				}
			}
		}
	}
	// Export the resolved symbol tables the VM serves at runtime.
	p.moduleVars = make(map[string]map[string]gref, len(l.mods))
	for m, store := range l.storage {
		p.moduleVars[m] = store
	}
	l.buildModuleSnaps()
	return nil
}

func declaredIn(mod *fortran.Module, name string) bool {
	for _, d := range mod.Decls {
		for _, n := range d.Names {
			if n == name {
				return true
			}
		}
	}
	return false
}

// allocate assigns a global cell for one module-level variable,
// mirroring Machine.allocate.
func (l *linker) allocate(module string, d fortran.VarDecl, name string) (gref, error) {
	p := l.prog
	if d.IsType {
		fdt, ok := l.types[module][d.BaseType]
		if !ok {
			return gref{}, fmt.Errorf("unknown derived type %q", d.BaseType)
		}
		dt := l.internType(fdt)
		g := gref{kind: kDrv, idx: int32(len(p.gdrvs)), dt: dt}
		p.gdrvs = append(p.gdrvs, dt)
		return g, nil
	}
	if d.IsArrayName(name) {
		g := gref{kind: kArr, idx: int32(p.nGArr)}
		p.nGArr++
		return g, nil
	}
	g := gref{kind: kScal, idx: int32(p.nGScal)}
	p.nGScal++
	return g, nil
}

// internType resolves a parsed derived type to an interned layout.
// Duplicate field names keep their first position with the later
// declaration's shape, matching the walker's map-overwrite allocation.
func (l *linker) internType(fdt fortran.DerivedType) *dtype {
	var names []string
	shapes := map[string]bool{}
	for _, f := range fdt.Fields {
		for fi, fn := range f.Names {
			if _, seen := shapes[fn]; !seen {
				names = append(names, fn)
			}
			shapes[fn] = f.ArrayAt(fi)
		}
	}
	var key strings.Builder
	for _, n := range names {
		key.WriteString(n)
		if shapes[n] {
			key.WriteString(":a;")
		} else {
			key.WriteString(":s;")
		}
	}
	if dt, ok := l.dtypes[key.String()]; ok {
		return dt
	}
	dt := &dtype{id: len(l.dtypes), fidx: make(map[string]int, len(names))}
	for _, n := range names {
		f := dfield{name: n, arr: shapes[n]}
		if f.arr {
			f.slot = int32(dt.nArr)
			dt.nArr++
		} else {
			f.slot = int32(dt.nScal)
			dt.nScal++
		}
		dt.fidx[n] = len(dt.fields)
		dt.fields = append(dt.fields, f)
	}
	l.dtypes[key.String()] = dt
	return dt
}

// constEval mirrors Machine.evalConst: literals and arithmetic over
// literals; the unary case always negates (including .not., exactly as
// the walker does).
func constEval(e fortran.Expr) (float64, error) {
	switch x := e.(type) {
	case *fortran.NumLit:
		return x.Value, nil
	case *fortran.UnaryExpr:
		v, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *fortran.BinaryExpr:
		lv, err := constEval(x.L)
		if err != nil {
			return 0, err
		}
		rv, err := constEval(x.R)
		if err != nil {
			return 0, err
		}
		return applyScalarOp(x.Op, lv, rv)
	}
	return 0, fmt.Errorf("non-constant initializer")
}

// buildModuleSnaps precomputes the SnapshotModuleVars entries: every
// module's own (declared) variables under the module::::name key
// convention, derived instances flattened by component.
func (l *linker) buildModuleSnaps() {
	p := l.prog
	p.snapModules = make([]moduleSnap, len(l.mods))
	for mi, mod := range l.mods {
		seen := map[string]bool{}
		var ms moduleSnap
		for _, d := range mod.Decls {
			for _, name := range d.Names {
				if seen[name] {
					continue
				}
				seen[name] = true
				g := l.storage[mod.Name][name]
				prefix := mod.Name + "::::"
				switch g.kind {
				case kScal:
					ms.entries = append(ms.entries, snapEntry{key: prefix + name, space: ssGScal, reg: g.idx, touch: -1})
				case kArr:
					ms.entries = append(ms.entries, snapEntry{key: prefix + name, space: ssGArr, reg: g.idx, touch: -1})
				case kDrv:
					for _, f := range g.dt.fields {
						sp, fs := ssGDrvF, f.slot
						if f.arr {
							sp = ssGDrvA
						}
						ms.entries = append(ms.entries, snapEntry{key: prefix + f.name, space: sp, reg: g.idx, f: fs, touch: -1})
					}
				}
			}
		}
		p.snapModules[mi] = ms
	}
}
