package bytecode

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/climate-rca/rca/internal/binenc"
)

// progCodecVersion is bumped whenever the Program encoding below
// changes shape. The artifact store folds it into the blob, so stale
// on-disk programs from an older binary simply miss and recompile.
const progCodecVersion uint32 = 1

// EncodeProgram serializes a compiled program to the deterministic
// binary artifact format: encoding the same program twice — or a
// DecodeProgram result — yields identical bytes. Programs whose
// construction failed (Err() != nil) are not cacheable artifacts and
// refuse to encode; callers fall back to compiling from source.
func EncodeProgram(p *Program) ([]byte, error) {
	if p == nil {
		return nil, errors.New("bytecode: encode nil program")
	}
	if p.initErr != nil {
		return nil, fmt.Errorf("bytecode: refusing to encode failed program: %w", p.initErr)
	}
	w := binenc.NewWriter(1 << 16)
	w.U32(progCodecVersion)

	w.Len(len(p.modules))
	for _, m := range p.modules {
		w.String(m)
	}
	w.Int(p.nGScal)
	w.Int(p.nGArr)

	// Derived-type intern table, collected by pointer in a fixed
	// traversal order (gdrvs, moduleVars sorted by module then name,
	// then each proc's ownDrv and retDt). The order is a function of
	// the program alone, so re-encoding a decoded program reproduces
	// the table — the bit-exactness the content addresses rely on.
	table, ref := collectDtypes(p)
	w.Len(len(table))
	for _, dt := range table {
		w.Int(dt.id)
		w.Len(len(dt.fields))
		for _, f := range dt.fields {
			w.String(f.name)
			w.Bool(f.arr)
			w.I32(f.slot)
		}
		w.Int(dt.nScal)
		w.Int(dt.nArr)
	}

	w.Len(len(p.gdrvs))
	for _, dt := range p.gdrvs {
		w.I32(ref[dt])
	}

	w.Len(len(p.scalInit))
	for _, si := range p.scalInit {
		w.I32(si.idx)
		w.F64(si.val)
	}
	w.Len(len(p.arrInit))
	for _, ai := range p.arrInit {
		w.I32(ai.idx)
		w.F64(ai.val)
	}

	w.Len(len(p.consts))
	for _, c := range p.consts {
		w.F64(c)
	}
	w.Len(len(p.labels))
	for _, l := range p.labels {
		w.String(l)
	}
	w.Len(len(p.errs))
	for _, e := range p.errs {
		w.String(e.Error())
	}

	w.Len(len(p.procs))
	for i, pr := range p.procs {
		if pr.id != i {
			return nil, fmt.Errorf("bytecode: proc %q id %d at index %d", pr.fullName, pr.id, i)
		}
		encodeProc(w, pr, ref)
	}

	w.Len(len(p.calls))
	for _, cs := range p.calls {
		w.Int(cs.proc.id)
		w.Len(len(cs.args))
		for _, a := range cs.args {
			w.U8(uint8(a.mode))
			w.I32(a.a)
			w.I32(a.b)
		}
		w.Len(len(cs.elem))
		for _, e := range cs.elem {
			w.U8(uint8(e.space))
			w.I32(e.a)
			w.I32(e.b)
		}
	}

	entryKeys := sortedKeys(p.entries)
	w.Len(len(entryKeys))
	for _, k := range entryKeys {
		w.String(k)
		w.Int(p.entries[k].id)
	}

	modKeys := sortedKeys(p.moduleVars)
	w.Len(len(modKeys))
	for _, mod := range modKeys {
		vars := p.moduleVars[mod]
		w.String(mod)
		names := sortedKeys(vars)
		w.Len(len(names))
		for _, name := range names {
			g := vars[name]
			w.String(name)
			w.U8(uint8(g.kind))
			w.I32(g.idx)
			if g.dt == nil {
				w.I32(-1)
			} else {
				w.I32(ref[g.dt])
			}
		}
	}

	w.Len(len(p.snapModules))
	for _, ms := range p.snapModules {
		w.Len(len(ms.entries))
		for _, se := range ms.entries {
			encodeSnap(w, se)
		}
	}
	return w.Bytes(), nil
}

// DecodeProgram reconstructs a program from EncodeProgram bytes. The
// result is runnable and re-encodes to the identical payload. Any
// structural damage returns an error; the artifact store treats that
// as a miss and rebuilds from source.
func DecodeProgram(data []byte) (*Program, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != progCodecVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("bytecode: program codec version %d, want %d", v, progCodecVersion)
	}
	p := &Program{
		moduleIdx:  make(map[string]int),
		entries:    make(map[string]*proc),
		moduleVars: make(map[string]map[string]gref),
	}
	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		name := r.String()
		p.moduleIdx[name] = len(p.modules)
		p.modules = append(p.modules, name)
	}
	p.nGScal = r.Int()
	p.nGArr = r.Int()

	table := make([]*dtype, r.Len())
	for i := range table {
		dt := &dtype{id: r.Int()}
		dt.fields = make([]dfield, r.Len())
		dt.fidx = make(map[string]int, len(dt.fields))
		for j := range dt.fields {
			dt.fields[j] = dfield{name: r.String(), arr: r.Bool(), slot: r.I32()}
			dt.fidx[dt.fields[j].name] = j
		}
		dt.nScal = r.Int()
		dt.nArr = r.Int()
		table[i] = dt
	}
	deref := func(i int32) (*dtype, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || int(i) >= len(table) {
			return nil, binenc.ErrMalformed
		}
		return table[i], nil
	}

	p.gdrvs = make([]*dtype, r.Len())
	for i := range p.gdrvs {
		dt, err := deref(r.I32())
		if err != nil || dt == nil {
			return nil, binenc.ErrMalformed
		}
		p.gdrvs[i] = dt
	}

	p.scalInit = make([]struct {
		idx int32
		val float64
	}, r.Len())
	for i := range p.scalInit {
		p.scalInit[i].idx = r.I32()
		p.scalInit[i].val = r.F64()
	}
	p.arrInit = make([]struct {
		idx int32
		val float64
	}, r.Len())
	for i := range p.arrInit {
		p.arrInit[i].idx = r.I32()
		p.arrInit[i].val = r.F64()
	}

	p.consts = make([]float64, r.Len())
	for i := range p.consts {
		p.consts[i] = r.F64()
	}
	p.labels = make([]string, r.Len())
	for i := range p.labels {
		p.labels[i] = r.String()
	}
	p.errs = make([]error, r.Len())
	for i := range p.errs {
		p.errs[i] = errors.New(r.String())
	}

	p.procs = make([]*proc, r.Len())
	for i := range p.procs {
		pr, err := decodeProc(r, i, deref)
		if err != nil {
			return nil, err
		}
		p.procs[i] = pr
	}
	procRef := func() (*proc, error) {
		id := r.Int()
		if r.Err() != nil || id < 0 || id >= len(p.procs) {
			return nil, binenc.ErrMalformed
		}
		return p.procs[id], nil
	}

	p.calls = make([]*callSite, r.Len())
	for i := range p.calls {
		pr, err := procRef()
		if err != nil {
			return nil, err
		}
		cs := &callSite{proc: pr}
		cs.args = make([]argMove, r.Len())
		for j := range cs.args {
			cs.args[j] = argMove{mode: amode(r.U8()), a: r.I32(), b: r.I32()}
		}
		cs.elem = make([]elemArg, r.Len())
		for j := range cs.elem {
			cs.elem[j] = elemArg{space: elemSpace(r.U8()), a: r.I32(), b: r.I32()}
		}
		p.calls[i] = cs
	}

	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		k := r.String()
		pr, err := procRef()
		if err != nil {
			return nil, err
		}
		p.entries[k] = pr
	}

	for n := r.Len(); n > 0 && r.Err() == nil; n-- {
		mod := r.String()
		vars := make(map[string]gref)
		for m := r.Len(); m > 0 && r.Err() == nil; m-- {
			name := r.String()
			g := gref{kind: vkind(r.U8()), idx: r.I32()}
			dt, err := deref(r.I32())
			if err != nil {
				return nil, err
			}
			g.dt = dt
			vars[name] = g
		}
		p.moduleVars[mod] = vars
	}

	p.snapModules = make([]moduleSnap, r.Len())
	for i := range p.snapModules {
		entries := make([]snapEntry, r.Len())
		for j := range entries {
			entries[j] = decodeSnap(r)
		}
		p.snapModules[i].entries = entries
	}

	if err := r.Done(); err != nil {
		return nil, err
	}
	p.pools = make([]sync.Pool, len(p.procs))
	return p, nil
}

func encodeProc(w *binenc.Writer, pr *proc, ref map[*dtype]int32) {
	w.String(pr.module)
	w.I32(pr.modIdx)
	w.String(pr.name)
	w.String(pr.fullName)
	w.Bool(pr.isFunc)

	w.Len(len(pr.code))
	for _, in := range pr.code {
		w.U32(uint32(in.op))
		w.I32(in.a)
		w.I32(in.b)
		w.I32(in.c)
		w.I32(in.d)
		w.I32(in.e)
	}

	w.Int(pr.nScal)
	w.Int(pr.nPtr)
	w.Int(pr.nArr)
	w.Int(pr.nDrv)
	w.Int(pr.nInt)
	w.Int(pr.nTouch)

	w.Len(len(pr.ownArr))
	for _, a := range pr.ownArr {
		w.I32(a)
	}
	w.Len(len(pr.zeroArr))
	for _, a := range pr.zeroArr {
		w.I32(a)
	}
	w.Len(len(pr.ownDrv))
	for _, od := range pr.ownDrv {
		w.I32(od.reg)
		w.I32(ref[od.dt])
	}

	w.Len(len(pr.argBind))
	for _, ab := range pr.argBind {
		w.U8(ab.mode)
		w.I32(ab.reg)
	}

	w.U8(uint8(pr.ret.kind))
	w.U8(uint8(pr.ret.space))
	w.I32(pr.ret.reg)
	if pr.retDt == nil {
		w.I32(-1)
	} else {
		w.I32(ref[pr.retDt])
	}

	w.Len(len(pr.snap))
	for _, se := range pr.snap {
		encodeSnap(w, se)
	}
}

func decodeProc(r *binenc.Reader, id int, deref func(int32) (*dtype, error)) (*proc, error) {
	pr := &proc{
		id:       id,
		module:   r.String(),
		modIdx:   r.I32(),
		name:     r.String(),
		fullName: r.String(),
		isFunc:   r.Bool(),
	}
	pr.code = make([]instr, r.Len())
	for i := range pr.code {
		pr.code[i] = instr{
			op: opcode(r.U32()),
			a:  r.I32(), b: r.I32(), c: r.I32(), d: r.I32(), e: r.I32(),
		}
	}
	pr.nScal = r.Int()
	pr.nPtr = r.Int()
	pr.nArr = r.Int()
	pr.nDrv = r.Int()
	pr.nInt = r.Int()
	pr.nTouch = r.Int()

	pr.ownArr = make([]int32, r.Len())
	for i := range pr.ownArr {
		pr.ownArr[i] = r.I32()
	}
	pr.zeroArr = make([]int32, r.Len())
	for i := range pr.zeroArr {
		pr.zeroArr[i] = r.I32()
	}
	pr.ownDrv = make([]struct {
		reg int32
		dt  *dtype
	}, r.Len())
	for i := range pr.ownDrv {
		pr.ownDrv[i].reg = r.I32()
		dt, err := deref(r.I32())
		if err != nil || dt == nil {
			return nil, binenc.ErrMalformed
		}
		pr.ownDrv[i].dt = dt
	}

	pr.argBind = make([]argSlot, r.Len())
	for i := range pr.argBind {
		pr.argBind[i] = argSlot{mode: r.U8(), reg: r.I32()}
	}

	pr.ret.kind = vkind(r.U8())
	pr.ret.space = snapSpace(r.U8())
	pr.ret.reg = r.I32()
	dt, err := deref(r.I32())
	if err != nil {
		return nil, err
	}
	pr.retDt = dt

	pr.snap = make([]snapEntry, r.Len())
	for i := range pr.snap {
		pr.snap[i] = decodeSnap(r)
	}
	return pr, r.Err()
}

func encodeSnap(w *binenc.Writer, se snapEntry) {
	w.String(se.name)
	w.String(se.key)
	w.U8(uint8(se.space))
	w.I32(se.reg)
	w.I32(se.f)
	w.Bool(se.fromDerived)
	w.I32(se.touch)
}

func decodeSnap(r *binenc.Reader) snapEntry {
	return snapEntry{
		name:        r.String(),
		key:         r.String(),
		space:       snapSpace(r.U8()),
		reg:         r.I32(),
		f:           r.I32(),
		fromDerived: r.Bool(),
		touch:       r.I32(),
	}
}

// collectDtypes builds the encode-side derived-type intern table by
// walking every *dtype reference in a fixed order. Interning is by
// pointer: distinct layouts — and distinct instances of an identical
// layout — each get one slot, assigned at first encounter.
func collectDtypes(p *Program) ([]*dtype, map[*dtype]int32) {
	var table []*dtype
	ref := make(map[*dtype]int32)
	add := func(dt *dtype) {
		if dt == nil {
			return
		}
		if _, ok := ref[dt]; ok {
			return
		}
		ref[dt] = int32(len(table))
		table = append(table, dt)
	}
	for _, dt := range p.gdrvs {
		add(dt)
	}
	for _, mod := range sortedKeys(p.moduleVars) {
		vars := p.moduleVars[mod]
		for _, name := range sortedKeys(vars) {
			add(vars[name].dt)
		}
	}
	for _, pr := range p.procs {
		for _, od := range pr.ownDrv {
			add(od.dt)
		}
		add(pr.retDt)
	}
	return table, ref
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
