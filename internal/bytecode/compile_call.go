package bytecode

import "github.com/climate-rca/rca/internal/fortran"

// intrinsic compiles a built-in call. Mirroring evalIntrinsic, every
// argument is evaluated eagerly first; arity and shape failures error
// after those evaluations.
func (f *pcomp) intrinsic(r *fortran.Ref, d dst) opnd {
	var os []opnd
	for _, a := range r.Args {
		o := f.expr(a)
		if o.kind == kErr {
			for _, p := range os {
				f.release(p)
			}
			return o
		}
		os = append(os, o)
	}
	bail := func(format string, args ...interface{}) opnd {
		for _, p := range os {
			f.release(p)
		}
		return f.emitErr(format, args...)
	}
	switch r.Name {
	case "abs", "sqrt", "exp", "log", "floor":
		if len(os) != 1 {
			return bail("intrinsic wants 1 arg, got %d", len(os))
		}
		o := os[0]
		var sOp, vOp opcode
		switch r.Name {
		case "abs":
			sOp, vOp = opAbsS, opAbsV
		case "sqrt":
			sOp, vOp = opSqrtS, opSqrtV
		case "exp":
			sOp, vOp = opExpS, opExpV
		case "log":
			sOp, vOp = opLogS, opLogV
		case "floor":
			sOp, vOp = opFloorS, opFloorV
		}
		switch o.kind {
		case kDrv:
			return bail("intrinsic on derived value")
		case kScal:
			om := f.matS(o)
			rd := f.pickS(d)
			f.emit(instr{op: sOp, d: rd.reg, a: om.reg})
			f.release(om)
			return rd
		default:
			rd := f.pickA(d)
			f.emit(instr{op: vOp, d: rd.reg, a: o.reg})
			f.release(o)
			return rd
		}
	case "mod", "sign":
		if len(os) != 2 {
			return bail("intrinsic wants 2 args, got %d", len(os))
		}
		sOp, vOp := opModS, opModV
		if r.Name == "sign" {
			sOp, vOp = opSignS, opSignV
		}
		a, b := os[0], os[1]
		if a.kind != kArr && b.kind != kArr {
			am := f.matSF(a)
			bm := f.matSF(b)
			rd := f.pickS(d)
			f.emit(instr{op: sOp, d: rd.reg, a: am.reg, b: bm.reg})
			f.release(am)
			f.release(bm)
			return rd
		}
		rd := f.pickA(d)
		switch {
		case a.kind == kArr && b.kind == kArr:
			f.emit(instr{op: vOp, d: rd.reg, a: a.reg, b: b.reg, e: 0})
			f.release(a)
			f.release(b)
		case a.kind == kArr:
			bm := f.matSF(b)
			f.emit(instr{op: vOp, d: rd.reg, a: a.reg, b: bm.reg, e: 1})
			f.release(a)
			f.release(bm)
		default:
			am := f.matSF(a)
			f.emit(instr{op: vOp, d: rd.reg, a: am.reg, b: b.reg, e: 2})
			f.release(am)
			f.release(b)
		}
		return rd
	case "min", "max":
		if len(os) < 2 {
			return bail("min/max want >= 2 args")
		}
		sOp, vOp := opMinS, opMinV
		if r.Name == "max" {
			sOp, vOp = opMaxS, opMaxV
		}
		anyArr := false
		for _, o := range os {
			if o.kind == kArr {
				anyArr = true
			}
		}
		// Materialize scalar operands now — the walker reads every cell
		// inside the intrinsic, after all evaluations.
		mats := make([]opnd, len(os))
		for i, o := range os {
			if o.kind == kArr {
				mats[i] = o
			} else {
				mats[i] = f.matSF(o)
			}
		}
		if !anyArr {
			// Fold left in a temp; the last op may target the hint.
			acc := mats[0]
			for i := 1; i < len(mats); i++ {
				var rd opnd
				if i == len(mats)-1 {
					rd = f.pickS(d)
				} else {
					rd = opnd{kind: kScal, ok: oTempS, reg: f.allocS(), sTmp: true}
				}
				f.emit(instr{op: sOp, d: rd.reg, a: acc.reg, b: mats[i].reg})
				if i > 1 {
					f.release(acc)
				} else {
					f.release(mats[0])
				}
				f.release(mats[i])
				acc = rd
			}
			return acc
		}
		acc := mats[0]
		for i := 1; i < len(mats); i++ {
			var rd opnd
			if i == len(mats)-1 {
				rd = f.pickA(d)
			} else {
				rd = f.tmpA()
			}
			b := mats[i]
			var shape int32
			var ar, br int32
			switch {
			case acc.kind == kArr && b.kind == kArr:
				shape, ar, br = 0, acc.reg, b.reg
			case acc.kind == kArr:
				shape, ar, br = 1, acc.reg, b.reg
			default:
				shape, ar, br = 2, acc.reg, b.reg
			}
			f.emit(instr{op: vOp, d: rd.reg, a: ar, b: br, e: shape})
			f.release(acc)
			f.release(b)
			acc = rd
		}
		return acc
	case "sum":
		if len(os) != 1 {
			return bail("sum wants 1 arg")
		}
		o := os[0]
		switch o.kind {
		case kDrv:
			return bail("sum of derived value")
		case kArr:
			rd := f.pickS(d)
			f.emit(instr{op: opSumV, d: rd.reg, a: o.reg})
			f.release(o)
			return rd
		default:
			// sum(scalar) is a fresh copy of the value at this point.
			m := f.matS(o)
			if m.ok == oTempS {
				return m
			}
			t := f.allocS()
			f.emit(instr{op: opMovS, d: t, a: m.reg})
			return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
		}
	case "size":
		if len(os) != 1 {
			return bail("size wants 1 arg")
		}
		o := os[0]
		rd := f.pickS(d)
		if o.kind == kArr {
			f.emit(instr{op: opNcol, d: rd.reg})
		} else {
			f.emit(instr{op: opConst, d: rd.reg, a: f.c.constant(1)})
		}
		f.release(o)
		return rd
	case "shift":
		if len(os) != 2 {
			return bail("shift wants 2 args")
		}
		v, kv := os[0], os[1]
		if v.kind != kArr {
			// Non-arrays pass through — including the walker's aliasing
			// of the first operand's cell.
			f.release(kv)
			return v
		}
		if kv.kind == kDrv {
			return bail("shift count is a derived value")
		}
		var km opnd
		if kv.kind == kArr {
			t := f.allocS()
			f.emit(instr{op: opCollapse, d: t, a: kv.reg})
			f.release(kv)
			km = opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
		} else {
			km = f.matS(kv)
		}
		rd := f.tmpA() // rotation is never safe in place
		f.emit(instr{op: opShiftV, d: rd.reg, a: v.reg, b: km.reg})
		f.release(v)
		f.release(km)
		return rd
	}
	return bail("unknown intrinsic %q", r.Name)
}

// callFunc compiles a user function call: arguments evaluate eagerly
// left to right, then clone (by-value binding) at call time — or, for
// elemental targets with any array argument, broadcast per column.
func (f *pcomp) callFunc(ts []target, args []fortran.Expr, d dst) opnd {
	t := resolveOverload(ts, len(args))
	var os []opnd
	for _, a := range args {
		o := f.expr(a)
		if o.kind == kErr {
			for _, p := range os {
				f.release(p)
			}
			return o
		}
		os = append(os, o)
	}
	anyArr := false
	for _, o := range os {
		if o.kind == kArr {
			anyArr = true
		}
	}
	if t.sub.Elemental && anyArr {
		return f.elemCall(t, os, d)
	}
	sig := make([]sigArg, len(t.sub.Args))
	var moves []argMove
	for i := range sig {
		if i >= len(os) {
			sig[i] = sigArg{mode: 'u'}
			continue
		}
		o := os[i]
		switch o.kind {
		case kScal:
			sig[i] = sigArg{mode: 'S'}
			switch o.ok {
			case oConst:
				m := f.matS(o)
				os[i] = m
				moves = append(moves, argMove{mode: amValScalS, a: m.reg})
			case oTempS, oVarS:
				moves = append(moves, argMove{mode: amValScalS, a: o.reg})
			case oGlobS:
				moves = append(moves, argMove{mode: amValScalG, a: o.reg})
			case oPtrS:
				moves = append(moves, argMove{mode: amValScalP, a: o.reg})
			case oFieldS:
				moves = append(moves, argMove{mode: amValScalDF, a: o.reg, b: o.f})
			}
		case kArr:
			sig[i] = sigArg{mode: 'A'}
			moves = append(moves, argMove{mode: amValArr, a: o.reg})
		case kDrv:
			sig[i] = sigArg{mode: 'D', dt: o.dt}
			moves = append(moves, argMove{mode: amValDrv, a: o.reg})
		}
	}
	callee := f.c.spec(t, sig)
	cs := f.c.addCall(&callSite{proc: callee, args: moves})
	var rd opnd
	switch callee.ret.kind {
	case kArr:
		rd = f.pickA(d)
		f.emit(instr{op: opCallFunV, a: cs, d: rd.reg})
	case kDrv:
		dreg := f.allocDOwn(callee.retDt)
		f.emit(instr{op: opCallFunD, a: cs, d: dreg})
		rd = opnd{kind: kDrv, ok: oDrv, reg: dreg, dt: callee.retDt}
	default:
		rd = f.pickS(d)
		f.emit(instr{op: opCallFunS, a: cs, d: rd.reg})
	}
	for _, o := range os {
		f.release(o)
	}
	return rd
}

// elemCall compiles the elemental broadcast: the callee is invoked per
// column on scalar views, operands read live per column like the
// walker's at(v, i).
func (f *pcomp) elemCall(t target, os []opnd, d dst) opnd {
	sig := make([]sigArg, len(t.sub.Args))
	for i := range sig {
		if i < len(os) {
			sig[i] = sigArg{mode: 'S'}
		} else {
			sig[i] = sigArg{mode: 'u'}
		}
	}
	callee := f.c.spec(t, sig)
	if callee.ret.kind == kDrv {
		for _, o := range os {
			f.release(o)
		}
		return f.emitErr("derived result in elemental broadcast")
	}
	var eargs []elemArg
	for i, o := range os {
		switch o.kind {
		case kScal:
			switch o.ok {
			case oConst:
				m := f.matS(o)
				os[i] = m
				eargs = append(eargs, elemArg{space: esTempS, a: m.reg})
			case oTempS, oVarS:
				eargs = append(eargs, elemArg{space: esTempS, a: o.reg})
			case oGlobS:
				eargs = append(eargs, elemArg{space: esGlobS, a: o.reg})
			case oPtrS:
				eargs = append(eargs, elemArg{space: esPtrS, a: o.reg})
			case oFieldS:
				eargs = append(eargs, elemArg{space: esFieldS, a: o.reg, b: o.f})
			}
		case kArr:
			eargs = append(eargs, elemArg{space: esArr, a: o.reg})
		case kDrv:
			eargs = append(eargs, elemArg{space: esDrvF, a: o.reg})
		}
	}
	cs := f.c.addCall(&callSite{proc: callee, elem: eargs})
	rd := f.tmpA() // accumulated per column; never written in place
	f.emit(instr{op: opCallElem, a: cs, d: rd.reg})
	for _, o := range os {
		f.release(o)
	}
	return rd
}

func (c *compiler) addCall(cs *callSite) int32 {
	c.prog.calls = append(c.prog.calls, cs)
	return int32(len(c.prog.calls) - 1)
}
