package bytecode

import (
	"sort"
	"sync"

	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// BatchVM runs N ensemble members ("lanes") in lockstep over one
// compiled program: one instruction decode is amortized across the
// batch, and every register file is struct-of-arrays — scalar register
// r, lane l lives at the flat index r*nl+l, while array registers are
// lane-major: lane l's columns form the contiguous block
// [l*ncol, (l+1)*ncol), so every elementwise vector opcode runs one
// tight solo-speed loop per lane with its lane scalars hoisted into
// registers, for any group shape.
//
// Divergence is handled by group splitting: execution always acts on a
// sorted group of live lanes, and a conditional whose lanes disagree
// partitions the group — the taken subset runs the branch target to
// the end of the proc recursively while the fall-through subset
// continues in place, rejoining only in the caller. A lane that raises
// a runtime error retires from its group with the error recorded
// (sticky, per lane) and its registers frozen, exactly as a solo run
// would abort. Per-lane PRNG sources and per-lane capture maps keep
// every lane bit-identical to a solo VM (and hence tree-walker) run of
// the same member; see DESIGN.md "Batched execution".
type BatchVM struct {
	prog        *Program
	ncol        int
	nl          int
	rngs        []rng.Source
	kernelWatch string
	snapshotAll bool
	fma         []bool

	gscal []float64
	garr  [][]float64
	gdrv  []*bdval

	results []interp.Results
	errs    []error

	depth int
	pools []sync.Pool
	all   []int
}

// bdval is the lane-striped counterpart of dval: the phantom scalar
// and scalar fields are per-lane (slot-striped); array fields are
// lane-major like every other array register.
type bdval struct {
	t    *dtype
	f    []float64   // phantom scalar, one per lane
	scal []float64   // scalar fields, slot s lane l at s*nl+l
	arr  [][]float64 // array fields, each ncol*nl lane-major
}

func newBdval(t *dtype, ncol, nl int) *bdval {
	d := &bdval{t: t, f: make([]float64, nl)}
	if t.nScal > 0 {
		d.scal = make([]float64, t.nScal*nl)
	}
	if t.nArr > 0 {
		d.arr = make([][]float64, t.nArr)
		sz := ncol * nl
		backing := make([]float64, t.nArr*sz)
		for i := 0; i < t.nArr; i++ {
			d.arr[i] = backing[i*sz : (i+1)*sz]
		}
	}
	return d
}

func (d *bdval) reset() {
	for i := range d.f {
		d.f[i] = 0
	}
	for i := range d.scal {
		d.scal[i] = 0
	}
	for _, a := range d.arr {
		for i := range a {
			a[i] = 0
		}
	}
}

// bframe is one batched activation record. Pointer registers become
// lane windows: a by-reference scalar argument binds the contiguous
// nl-float window of the referenced cell, so *ptr reads/writes are
// ptr[l] per lane.
type bframe struct {
	ncol    int
	nl      int
	scal    []float64
	ptrs    [][]float64
	arr     [][]float64
	drv     []*bdval
	ints    []int64
	touched []bool
	arena   []float64
	zero    [][]float64
	ownD    []*bdval
}

func newBframe(p *proc, ncol, nl int) *bframe {
	fr := &bframe{
		ncol:    ncol,
		nl:      nl,
		scal:    make([]float64, p.nScal*nl),
		ptrs:    make([][]float64, p.nPtr),
		arr:     make([][]float64, p.nArr),
		drv:     make([]*bdval, p.nDrv),
		ints:    make([]int64, p.nInt*nl),
		touched: make([]bool, p.nTouch*nl),
		arena:   make([]float64, len(p.ownArr)*ncol*nl),
	}
	sz := ncol * nl
	for i, reg := range p.ownArr {
		fr.arr[reg] = fr.arena[i*sz : (i+1)*sz]
	}
	for _, reg := range p.zeroArr {
		fr.zero = append(fr.zero, fr.arr[reg])
	}
	for _, od := range p.ownDrv {
		d := newBdval(od.dt, ncol, nl)
		fr.drv[od.reg] = d
		fr.ownD = append(fr.ownD, d)
	}
	return fr
}

func (fr *bframe) reset() {
	for i := range fr.scal {
		fr.scal[i] = 0
	}
	for _, a := range fr.zero {
		for i := range a {
			a[i] = 0
		}
	}
	for i := range fr.touched {
		fr.touched[i] = false
	}
	for _, d := range fr.ownD {
		d.reset()
	}
}

// NewBatchVM instantiates the program with len(rngs) lanes, one
// independent PRNG source per lane (each lane's draw order matches its
// solo run's). It mirrors NewVM's defaults and failure modes; Trace is
// unsupported because per-call trace ordering is a solo-run notion.
func (p *Program) NewBatchVM(cfg interp.Config, rngs []rng.Source) (*BatchVM, error) {
	if p.initErr != nil {
		return nil, p.initErr
	}
	if cfg.Trace != nil {
		return nil, errf("batched execution does not support Trace")
	}
	nl := len(rngs)
	if nl < 1 {
		return nil, errf("batched execution needs at least one lane")
	}
	for i, src := range rngs {
		if src == nil {
			return nil, errf("batched execution: nil RNG for lane %d", i)
		}
	}
	ncol := cfg.Ncol
	if ncol <= 0 {
		ncol = 16
	}
	vm := &BatchVM{
		prog:        p,
		ncol:        ncol,
		nl:          nl,
		rngs:        rngs,
		kernelWatch: cfg.KernelWatch,
		snapshotAll: cfg.SnapshotAll,
		gscal:       make([]float64, p.nGScal*nl),
		garr:        make([][]float64, p.nGArr),
		gdrv:        make([]*bdval, len(p.gdrvs)),
		results:     make([]interp.Results, nl),
		errs:        make([]error, nl),
		pools:       make([]sync.Pool, len(p.procs)),
		all:         make([]int, nl),
	}
	sz := ncol * nl
	backing := make([]float64, p.nGArr*sz)
	for i := 0; i < p.nGArr; i++ {
		vm.garr[i] = backing[i*sz : (i+1)*sz]
	}
	for i, dt := range p.gdrvs {
		vm.gdrv[i] = newBdval(dt, ncol, nl)
	}
	for _, si := range p.scalInit {
		base := int(si.idx) * nl
		for l := 0; l < nl; l++ {
			vm.gscal[base+l] = si.val
		}
	}
	for _, ai := range p.arrInit {
		a := vm.garr[ai.idx]
		for i := range a {
			a[i] = ai.val
		}
	}
	vm.fma = make([]bool, len(p.modules))
	if cfg.FMA != nil {
		for i, m := range p.modules {
			vm.fma[i] = cfg.FMA(m)
		}
	}
	for l := range vm.all {
		vm.all[l] = l
	}
	for l := range vm.results {
		vm.results[l] = interp.NewResults()
	}
	return vm, nil
}

// Lanes returns the batch width.
func (vm *BatchVM) Lanes() int { return vm.nl }

// Ncol returns the column count the batch was configured with.
func (vm *BatchVM) Ncol() int { return vm.ncol }

// LaneResults exposes one lane's capture maps, bit-identical to the
// solo VM's Captured() for the same member.
func (vm *BatchVM) LaneResults(l int) *interp.Results { return &vm.results[l] }

// LaneErrs returns the per-lane sticky errors: once a lane errs, its
// registers freeze and subsequent CallAll invocations skip it. The
// slice is live — callers must not mutate it.
func (vm *BatchVM) LaneErrs() []error { return vm.errs }

// liveLanes returns the sorted group of lanes with no sticky error.
func (vm *BatchVM) liveLanes() []int {
	g := make([]int, 0, vm.nl)
	for l := 0; l < vm.nl; l++ {
		if vm.errs[l] == nil {
			g = append(g, l)
		}
	}
	return g
}

// CallAll invokes a zero-argument entry subroutine on every live lane
// in lockstep and returns the per-lane sticky errors.
func (vm *BatchVM) CallAll(module, name string) []error {
	p, ok := vm.prog.entries[module+"::"+name]
	if !ok {
		err := errf("no subroutine %s in %s", name, module)
		for l := range vm.errs {
			if vm.errs[l] == nil {
				vm.errs[l] = err
			}
		}
		return vm.errs
	}
	g := vm.liveLanes()
	if len(g) == 0 {
		return vm.errs
	}
	if vm.depth >= maxDepth {
		err := errf("call depth exceeded at %s", p.fullName)
		for _, l := range g {
			vm.errs[l] = err
		}
		return vm.errs
	}
	vm.depth++
	fr := vm.getFrame(p)
	vm.exec(p, fr, g, 0)
	vm.exitSnapshotsBatch(p, fr, g)
	vm.depth--
	vm.putFrame(p, fr)
	return vm.errs
}

// LaneArray resolves a module-level array variable to one lane's
// contiguous block view — the batched counterpart of
// Engine.ModuleArray, used by the model's per-member
// initial-condition perturbations.
func (vm *BatchVM) LaneArray(lane int, module string, path ...string) (interp.LaneSlice, bool) {
	if len(path) == 0 || lane < 0 || lane >= vm.nl {
		return interp.LaneSlice{}, false
	}
	g, ok := vm.prog.moduleVars[module][path[0]]
	if !ok {
		return interp.LaneSlice{}, false
	}
	rest := path[1:]
	laneBlock := func(a []float64) interp.LaneSlice {
		n := len(a) / vm.nl
		return interp.LaneSlice{Data: a[lane*n : (lane+1)*n], Stride: 1, Off: 0}
	}
	switch g.kind {
	case kArr:
		if len(rest) != 0 {
			return interp.LaneSlice{}, false
		}
		return laneBlock(vm.garr[g.idx]), true
	case kDrv:
		if len(rest) != 1 {
			return interp.LaneSlice{}, false
		}
		fi, ok := g.dt.fidx[rest[0]]
		if !ok || !g.dt.fields[fi].arr {
			return interp.LaneSlice{}, false
		}
		return laneBlock(vm.gdrv[g.idx].arr[g.dt.fields[fi].slot]), true
	}
	return interp.LaneSlice{}, false
}

// SnapshotModuleVarsAll records module-level variables into every live
// lane's AllValues map, mirroring Engine.SnapshotModuleVars per lane.
func (vm *BatchVM) SnapshotModuleVarsAll() {
	for l := 0; l < vm.nl; l++ {
		if vm.errs[l] != nil {
			continue
		}
		for _, ms := range vm.prog.snapModules {
			for i := range ms.entries {
				vm.snapIntoLane(vm.results[l].AllValues, ms.entries[i].key, nil, &ms.entries[i], l)
			}
		}
	}
}

func (vm *BatchVM) getFrame(p *proc) *bframe {
	if v := vm.pools[p.id].Get(); v != nil {
		fr := v.(*bframe)
		fr.reset()
		return fr
	}
	return newBframe(p, vm.ncol, vm.nl)
}

func (vm *BatchVM) putFrame(p *proc, fr *bframe) {
	vm.pools[p.id].Put(fr)
}

// mergeDone joins the lanes that completed in place with those that
// completed through recursive branch subgroups, restoring the sorted
// group invariant.
func mergeDone(g, merged []int) []int {
	if len(merged) == 0 {
		return g
	}
	out := make([]int, 0, len(g)+len(merged))
	out = append(out, g...)
	out = append(out, merged...)
	sort.Ints(out)
	return out
}

// callBatch runs one activation bound from a call site for a group of
// lanes, returning the callee frame (for result reads) and the lanes
// that completed without error. Exit snapshots cover the entire
// entering group — an erred lane's registers are frozen from its
// retirement point, so the deferred capture reads exactly the state a
// solo run would have snapshotted while unwinding.
func (vm *BatchVM) callBatch(cs *callSite, caller *bframe, g []int) (*bframe, []int) {
	p := cs.proc
	if vm.depth >= maxDepth {
		err := errf("call depth exceeded at %s", p.fullName)
		for _, l := range g {
			vm.errs[l] = err
		}
		return nil, nil
	}
	vm.depth++
	fr := vm.getFrame(p)
	nl := vm.nl
	for i, mv := range cs.args {
		slot := p.argBind[i]
		if slot.mode == 'u' || mv.mode == amNone {
			continue
		}
		switch mv.mode {
		case amRefScalS:
			a := int(mv.a) * nl
			fr.ptrs[slot.reg] = caller.scal[a : a+nl]
		case amRefScalG:
			a := int(mv.a) * nl
			fr.ptrs[slot.reg] = vm.gscal[a : a+nl]
		case amRefScalP:
			fr.ptrs[slot.reg] = caller.ptrs[mv.a]
		case amRefScalDF:
			b := int(mv.b) * nl
			fr.ptrs[slot.reg] = caller.drv[mv.a].scal[b : b+nl]
		case amRefArr:
			fr.arr[slot.reg] = caller.arr[mv.a]
		case amRefDrv:
			fr.drv[slot.reg] = caller.drv[mv.a]
		case amValScalS:
			a, d := int(mv.a)*nl, int(slot.reg)*nl
			copy(fr.scal[d:d+nl], caller.scal[a:a+nl])
		case amValScalG:
			a, d := int(mv.a)*nl, int(slot.reg)*nl
			copy(fr.scal[d:d+nl], vm.gscal[a:a+nl])
		case amValScalP:
			d := int(slot.reg) * nl
			copy(fr.scal[d:d+nl], caller.ptrs[mv.a])
		case amValScalDF:
			b, d := int(mv.b)*nl, int(slot.reg)*nl
			copy(fr.scal[d:d+nl], caller.drv[mv.a].scal[b:b+nl])
		case amValArr:
			copy(fr.arr[slot.reg], caller.arr[mv.a])
		case amValDrv:
			cloneBdval(fr.drv[slot.reg], caller.drv[mv.a])
		}
	}
	done := vm.exec(p, fr, g, 0)
	vm.exitSnapshotsBatch(p, fr, g)
	vm.depth--
	return fr, done
}

// cloneBdval mirrors cloneDval across all lanes (argument binding into
// a fresh callee frame — lanes outside the group are never read).
func cloneBdval(dst, src *bdval) {
	for i := range dst.f {
		dst.f[i] = 0
	}
	copy(dst.scal, src.scal)
	for i := range src.arr {
		copy(dst.arr[i], src.arr[i])
	}
}

// cloneBdvalLane mirrors cloneDval for one lane only (function results
// copied back for surviving lanes).
func cloneBdvalLane(dst, src *bdval, nl, l int) {
	dst.f[l] = 0
	for s := l; s < len(src.scal); s += nl {
		dst.scal[s] = src.scal[s]
	}
	for i := range src.arr {
		sa, da := src.arr[i], dst.arr[i]
		n := len(sa) / nl
		copy(da[l*n:(l+1)*n], sa[l*n:(l+1)*n])
	}
}

// retScalLane reads lane l of a function result as a scalar (array
// results collapse to their first element, as Value.Scalar does).
func retScalLane(p *proc, fr *bframe, nl, l int) float64 {
	switch p.ret.kind {
	case kArr:
		a := fr.arr[p.ret.reg]
		return a[l*(len(a)/nl)]
	default:
		if p.ret.space == ssPtr {
			return fr.ptrs[p.ret.reg][l]
		}
		return fr.scal[int(p.ret.reg)*nl+l]
	}
}

// exitSnapshotsBatch mirrors exitSnapshots per lane over the entire
// entering group, including lanes that erred inside the activation.
func (vm *BatchVM) exitSnapshotsBatch(p *proc, fr *bframe, g []int) {
	watch := vm.kernelWatch != "" && vm.kernelWatch == p.fullName
	if !watch && !vm.snapshotAll {
		return
	}
	nl := vm.nl
	for _, l := range g {
		if watch {
			for i := range p.snap {
				e := &p.snap[i]
				if e.fromDerived {
					continue // snapshotKernel skips derived variables
				}
				if e.touch >= 0 && !fr.touched[int(e.touch)*nl+l] {
					continue
				}
				vm.snapIntoLane(vm.results[l].Kernel, e.name, fr, e, l)
			}
		}
		if vm.snapshotAll {
			for i := range p.snap {
				e := &p.snap[i]
				if e.touch >= 0 && !fr.touched[int(e.touch)*nl+l] {
					continue
				}
				vm.snapIntoLane(vm.results[l].AllValues, e.key, fr, e, l)
			}
		}
	}
}

// snapIntoLane stores one lane's snapshot with the same
// overwrite-in-place, last-call-wins contract as snapInto.
func (vm *BatchVM) snapIntoLane(m map[string][]float64, key string, fr *bframe, e *snapEntry, l int) {
	nl := vm.nl
	var src []float64 // lane-major: lane l's elements contiguous
	var v float64
	scalar := false
	switch e.space {
	case ssScal:
		v, scalar = fr.scal[int(e.reg)*nl+l], true
	case ssPtr:
		v, scalar = fr.ptrs[e.reg][l], true
	case ssArr:
		src = fr.arr[e.reg]
	case ssDrvF:
		v, scalar = fr.drv[e.reg].scal[int(e.f)*nl+l], true
	case ssDrvA:
		src = fr.drv[e.reg].arr[e.f]
	case ssGScal:
		v, scalar = vm.gscal[int(e.reg)*nl+l], true
	case ssGArr:
		src = vm.garr[e.reg]
	case ssGDrvF:
		v, scalar = vm.gdrv[e.reg].scal[int(e.f)*nl+l], true
	case ssGDrvA:
		src = vm.gdrv[e.reg].arr[e.f]
	}
	if scalar {
		if dst, ok := m[key]; ok && len(dst) == 1 {
			dst[0] = v
			return
		}
		m[key] = []float64{v}
		return
	}
	n := len(src) / nl
	dst, ok := m[key]
	if !ok || len(dst) != n {
		dst = make([]float64, n)
		m[key] = dst
	}
	copy(dst, src[l*n:(l+1)*n])
}
