package bytecode

import (
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// sameBits compares float slices bit for bit (NaN payloads and signed
// zeros included — the engines must agree exactly).
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func diffMaps(t *testing.T, label string, want, got map[string][]float64) {
	t.Helper()
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s: key %q missing from VM", label, k)
			continue
		}
		if !sameBits(wv, gv) {
			t.Errorf("%s: key %q differs: tree=%v vm=%v", label, k, wv, gv)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: VM has extra key %q", label, k)
		}
	}
}

// runBoth executes the same entry calls on both engines and requires
// bit-identical captures. Config instances are cloned so each engine
// gets its own PRNG stream.
func runBoth(t *testing.T, mkCfg func() interp.Config, srcs []string, calls ...[2]string) (*interp.Machine, *VM) {
	t.Helper()
	var mods []*fortran.Module
	for _, s := range srcs {
		ms, err := fortran.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, ms...)
	}
	m, merr := interp.NewMachine(mods, mkCfg())
	prog := Compile(mods)
	vm, verr := prog.NewVM(mkCfg())
	if (merr == nil) != (verr == nil) {
		t.Fatalf("construction disagreement: tree=%v vm=%v", merr, verr)
	}
	if merr != nil {
		return nil, nil
	}
	for _, c := range calls {
		em := m.Call(c[0], c[1])
		ev := vm.Call(c[0], c[1])
		if (em == nil) != (ev == nil) {
			t.Fatalf("call %s::%s disagreement: tree=%v vm=%v", c[0], c[1], em, ev)
		}
		if em != nil {
			break
		}
	}
	m.SnapshotModuleVars()
	vm.SnapshotModuleVars()
	diffMaps(t, "Outputs", m.Outputs, vm.Outputs)
	diffMaps(t, "Kernel", m.Kernel, vm.Kernel)
	diffMaps(t, "AllValues", m.AllValues, vm.AllValues)
	return m, vm
}

func plainCfg(ncol int) func() interp.Config {
	return func() interp.Config {
		return interp.Config{Ncol: ncol, SnapshotAll: true, RNG: rng.NewKISS(7)}
	}
}

func TestVMScalarAndArrayBasics(t *testing.T) {
	runBoth(t, plainCfg(4), []string{`
module m
  real :: x, a(:), b(:), c(:)
  real, parameter :: p = 2.5 * 2.0
contains
  subroutine s()
    integer :: i
    x = 2.0 + 3.0 * 4.0 ** 2.0
    do i = 1, 4
      a(i) = i * p
      b(i) = 10.0 - i
    end do
    c = a * b + 1.0
    c = max(0.0, min(9000.0, c)) + sqrt(abs(a)) * 0.01
    c = shift(c, 1) + shift(c, -1)
    call outfld('C', c)
    call outfld('X', x)
  end subroutine
end module
`}, [2]string{"m", "s"})
}

func TestVMDerivedAndInterfaces(t *testing.T) {
	runBoth(t, plainCfg(3), []string{`
module phys
  type ps
    real :: t(:)
    real :: q(:)
    real :: scale
  end type
  type(ps) :: state
contains
  subroutine init()
    state%t = 280.0
    state%q = 0.01
    state%scale = 3.5
  end subroutine
  subroutine s()
    type(ps) :: other
    state%t = state%t + state%q * 100.0
    state%t(2) = 99.5
    other = state
    other%q = other%q * 2.0
    call outfld('T', state%t)
    call outfld('OQ', other%q)
    call outfld('SC', other%scale)
  end subroutine
end module
`}, [2]string{"phys", "init"}, [2]string{"phys", "s"})
}

func TestVMFunctionsElementalAndRecursion(t *testing.T) {
	runBoth(t, plainCfg(4), []string{`
module m
  real :: a(:), out(:), acc
contains
  elemental function square(v) result(r)
    real, intent(in) :: v
    real :: r
    r = v * v + 0.5
  end function
  function fact(n) result(r)
    real :: n, r
    if (n <= 1.0) then
      r = 1.0
    else
      r = n * fact(n - 1.0)
    end if
  end function
  subroutine s()
    integer :: i
    do i = 1, 4
      a(i) = 0.5 * i
    end do
    out = square(a) + square(2.0)
    acc = fact(6.0)
    call outfld('OUT', out)
    call outfld('ACC', acc)
  end subroutine
end module
`}, [2]string{"m", "s"})
}

func TestVMByRefArgsAndUseImports(t *testing.T) {
	runBoth(t, plainCfg(3), []string{`
module base
  real :: shared(:), gain
contains
  subroutine bump(v, amount)
    real :: v(:), amount
    v = v + amount
    amount = amount * 2.0
  end subroutine
end module
`, `
module top
  use base
  real :: local(:)
contains
  subroutine s()
    real :: amt
    gain = 1.5
    shared = 3.0
    amt = 0.25
    call bump(shared, amt)
    call bump(shared, gain)
    local = shared * amt + gain
    call outfld('L', local)
    call outfld('S', shared)
  end subroutine
end module
`}, [2]string{"top", "s"})
}

func TestVMFMABranchesMatchWalker(t *testing.T) {
	src := []string{`
module hot
  real :: x, y(:), z(:)
contains
  subroutine s()
    real :: a, b
    a = 1000003.0
    b = 0.999997
    x = a * b - 999999.999991
    y = 0.001
    z = y * 3.0 + x
    z = x - y * z
    z = z + y * y
    call outfld('Z', z)
    call outfld('X', x)
  end subroutine
end module
`}
	for _, fma := range []bool{false, true} {
		fma := fma
		mk := func() interp.Config {
			return interp.Config{Ncol: 4, SnapshotAll: true,
				FMA: func(string) bool { return fma }}
		}
		runBoth(t, mk, src, [2]string{"hot", "s"})
	}
}

func TestVMRandomAndKernelWatch(t *testing.T) {
	mk := func() interp.Config {
		return interp.Config{Ncol: 4, SnapshotAll: true, RNG: rng.NewKISS(42),
			KernelWatch: "m::s"}
	}
	runBoth(t, mk, []string{`
module m
  real :: r(:), v, e(:)
contains
  subroutine s()
    call random_number(r)
    call random_number(v)
    call random_number(e(2))
    call outfld('R', r)
    call outfld('V', v)
    call outfld('E', e)
  end subroutine
end module
`}, [2]string{"m", "s"})
}

func TestVMImplicitLocalsOnlySnapshotWhenTouched(t *testing.T) {
	m, vm := runBoth(t, plainCfg(2), []string{`
module m
  real :: g
contains
  subroutine s()
    g = 1.0
    if (g > 2.0) then
      phantom = 5.0
    end if
    seen = 2.0
    g = seen
  end subroutine
end module
`}, [2]string{"m", "s"})
	if m == nil {
		t.Fatal("construction failed")
	}
	if _, ok := vm.AllValues["m::s::phantom"]; ok {
		t.Fatal("untouched implicit local snapshotted")
	}
	if _, ok := vm.AllValues["m::s::seen"]; !ok {
		t.Fatal("touched implicit local missing")
	}
}

func TestVMErrorParity(t *testing.T) {
	cases := []string{
		// Arithmetic on derived.
		`module m
  type tt
    real :: f(:)
  end type
  type(tt) :: x
  real :: y
contains
  subroutine s()
    y = x + 1.0
  end subroutine
end module`,
		// Out-of-bounds element.
		`module m
  real :: a(:), y
contains
  subroutine s()
    y = a(99)
  end subroutine
end module`,
		// Unknown subroutine.
		`module m
  real :: y
contains
  subroutine s()
    call nothere(y)
  end subroutine
end module`,
		// Intrinsic arity.
		`module m
  real :: y
contains
  subroutine s()
    y = sqrt(1.0, 2.0)
  end subroutine
end module`,
		// outfld label.
		`module m
  real :: lbl, v(:)
contains
  subroutine s()
    call outfld(lbl, v)
  end subroutine
end module`,
	}
	for i, src := range cases {
		runBoth(t, plainCfg(2), []string{src}, [2]string{"m", "s"})
		_ = i
	}
}

// TestVMCorpusStepsBitIdentical is the heavyweight pin: the full
// generated corpus, init + nine steps, FMA on in two modules,
// KernelWatch and SnapshotAll active — byte-for-byte equal captures.
func TestVMCorpusStepsBitIdentical(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 25, Seed: 3})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() interp.Config {
		return interp.Config{
			Ncol:        16,
			RNG:         rng.NewKISS(777),
			SnapshotAll: true,
			KernelWatch: "micro_mg::micro_mg_tend",
			FMA: func(m string) bool {
				return m == "micro_mg" || m == "chaos_turb"
			},
		}
	}
	m, merr := interp.NewMachine(mods, mk())
	prog := Compile(mods)
	vm, verr := prog.NewVM(mk())
	if merr != nil || verr != nil {
		t.Fatalf("construction: tree=%v vm=%v", merr, verr)
	}
	calls := [][2]string{{c.DriverModule, c.InitSub}}
	for i := 0; i < 9; i++ {
		calls = append(calls, [2]string{c.DriverModule, c.StepSub})
	}
	for _, call := range calls {
		if err := m.Call(call[0], call[1]); err != nil {
			t.Fatal(err)
		}
		if err := vm.Call(call[0], call[1]); err != nil {
			t.Fatal(err)
		}
	}
	m.SnapshotModuleVars()
	vm.SnapshotModuleVars()
	diffMaps(t, "Outputs", m.Outputs, vm.Outputs)
	diffMaps(t, "Kernel", m.Kernel, vm.Kernel)
	diffMaps(t, "AllValues", m.AllValues, vm.AllValues)
	if len(vm.Outputs) == 0 || len(vm.AllValues) == 0 {
		t.Fatal("no captures recorded")
	}
}
