package bytecode

import (
	"strconv"
	"strings"
	"sync"

	"github.com/climate-rca/rca/internal/fortran"
)

// Compile lowers parsed FortLite modules to a bytecode Program. The
// result is immutable and safe for concurrent NewVM use; construction
// failures the tree walker would report from NewMachine are recorded
// in the program and surfaced by NewVM, so the two engines agree on
// which programs run at all.
func Compile(mods []*fortran.Module) *Program {
	prog := &Program{
		moduleIdx: make(map[string]int),
		entries:   make(map[string]*proc),
	}
	l := newLinker(mods, prog)
	if err := l.link(); err != nil {
		prog.initErr = err
		return prog
	}
	c := &compiler{
		link:     l,
		prog:     prog,
		specs:    make(map[*fortran.Subprogram]map[string]*proc),
		constIdx: make(map[float64]int32),
		strIdx:   make(map[string]int32),
	}
	// Entry points: every subroutine key resolvable at arity zero (the
	// driver's Call path), compiled with all arguments unbound.
	var keys []string
	for k := range l.subs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		t := resolveOverload(l.subs[k], 0)
		p := c.spec(t, unboundSig(t.sub))
		prog.entries[k] = p
	}
	if c.err != nil {
		prog.initErr = c.err
	}
	prog.pools = make([]sync.Pool, len(prog.procs))
	return prog
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// resolveOverload mirrors Machine.resolveOverload: first arity match,
// else the first candidate.
func resolveOverload(ts []target, arity int) target {
	for _, t := range ts {
		if len(t.sub.Args) == arity {
			return t
		}
	}
	return ts[0]
}

// sigArg is one argument's binding mode in a specialization signature.
type sigArg struct {
	mode byte // 'u','s','S','a','A','d','D'
	dt   *dtype
}

func unboundSig(sub *fortran.Subprogram) []sigArg {
	return make([]sigArg, len(sub.Args)) // zero mode → normalized below
}

func sigKey(sig []sigArg) string {
	var b strings.Builder
	for _, a := range sig {
		m := a.mode
		if m == 0 {
			m = 'u'
		}
		b.WriteByte(m)
		if a.dt != nil {
			b.WriteString(strconv.Itoa(a.dt.id))
		}
		b.WriteByte(';')
	}
	return b.String()
}

type compiler struct {
	link     *linker
	prog     *Program
	specs    map[*fortran.Subprogram]map[string]*proc
	constIdx map[float64]int32
	strIdx   map[string]int32
	err      error
}

func (c *compiler) constant(v float64) int32 {
	// NaN never equals itself; give each NaN literal its own slot.
	if v == v {
		if i, ok := c.constIdx[v]; ok {
			return i
		}
	}
	i := int32(len(c.prog.consts))
	c.prog.consts = append(c.prog.consts, v)
	if v == v {
		c.constIdx[v] = i
	}
	return i
}

func (c *compiler) str(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.labels))
	c.prog.labels = append(c.prog.labels, s)
	c.strIdx[s] = i
	return i
}

func (c *compiler) errIdx(format string, args ...interface{}) int32 {
	c.prog.errs = append(c.prog.errs, errf(format, args...))
	return int32(len(c.prog.errs) - 1)
}

// spec returns (compiling on first request) the specialization of a
// target for one argument-binding signature. Recursive requests see
// the registered shell; its code is filled before any VM runs.
func (c *compiler) spec(t target, sig []sigArg) *proc {
	for i := range sig {
		if sig[i].mode == 0 {
			sig[i].mode = 'u'
		}
	}
	m := c.specs[t.sub]
	if m == nil {
		m = make(map[string]*proc)
		c.specs[t.sub] = m
	}
	key := sigKey(sig)
	if p, ok := m[key]; ok {
		return p
	}
	mi := c.prog.moduleIdx[t.module]
	p := &proc{
		id:       len(c.prog.procs),
		module:   t.module,
		modIdx:   int32(mi),
		name:     t.sub.Name,
		fullName: t.module + "::" + t.sub.Name,
		isFunc:   t.sub.Kind == fortran.KindFunction,
	}
	c.prog.procs = append(c.prog.procs, p)
	m[key] = p
	f := &pcomp{c: c, l: c.link, p: p, t: t, sub: t.sub, sig: sig,
		vars:     make(map[string]*vslot),
		gArrBind: make(map[int32]int32),
		gDrvBind: make(map[int32]int32),
		dfBind:   make(map[[2]int32]int32)}
	f.compile()
	return p
}

// vspace addresses a resolved variable at compile time.
type vspace uint8

const (
	vsScal vspace = iota // frame scal
	vsPtr                // frame ptr (by-ref scalar arg)
	vsArr                // frame array reg
	vsDrv                // frame derived reg
	vsGScal
	vsGArr
	vsGDrv
)

type vslot struct {
	kind  vkind
	space vspace
	reg   int32
	dt    *dtype
	touch int32 // >= 0: implicit local liveness bit
}

// pcomp compiles one proc specialization.
type pcomp struct {
	c      *compiler
	l      *linker
	p      *proc
	t      target
	sub    *fortran.Subprogram
	sig    []sigArg
	vars   map[string]*vslot
	code   []instr
	dead   bool // a guaranteed construction error was emitted
	nTouch int  // implicit locals allocated so far

	// Hoisted bindings: globals and derived-field arrays referenced by
	// the body bind once per activation in the prologue instead of at
	// every use (binding is identity-only, so over-binding is
	// unobservable). Maps give O(1) reuse; orders keep codegen
	// deterministic.
	gArrBind  map[int32]int32 // global array → fixed A reg
	gArrOrder []int32
	gDrvBind  map[int32]int32 // global derived → fixed D reg
	gDrvOrder []int32
	dfBind    map[[2]int32]int32 // (fixed D reg, slot) → fixed A reg
	dfOrder   [][2]int32

	freeS      []int32
	freeI      []int32
	freeAOwn   []int32
	freeAAlias []int32
	freeDAlias []int32
}

func (f *pcomp) emit(in instr) int {
	f.code = append(f.code, in)
	return len(f.code) - 1
}

func (f *pcomp) allocS() int32 {
	if n := len(f.freeS); n > 0 {
		r := f.freeS[n-1]
		f.freeS = f.freeS[:n-1]
		return r
	}
	r := int32(f.p.nScal)
	f.p.nScal++
	return r
}
func (f *pcomp) freeSReg(r int32) { f.freeS = append(f.freeS, r) }

func (f *pcomp) allocI2() int32 {
	r := int32(f.p.nInt)
	f.p.nInt += 2
	return r
}
func (f *pcomp) allocI() int32 {
	if n := len(f.freeI); n > 0 {
		r := f.freeI[n-1]
		f.freeI = f.freeI[:n-1]
		return r
	}
	r := int32(f.p.nInt)
	f.p.nInt++
	return r
}
func (f *pcomp) freeIReg(r int32) { f.freeI = append(f.freeI, r) }

func (f *pcomp) allocAOwn() int32 {
	if n := len(f.freeAOwn); n > 0 {
		r := f.freeAOwn[n-1]
		f.freeAOwn = f.freeAOwn[:n-1]
		return r
	}
	r := int32(f.p.nArr)
	f.p.nArr++
	f.p.ownArr = append(f.p.ownArr, r)
	return r
}
func (f *pcomp) freeAOwnReg(r int32) { f.freeAOwn = append(f.freeAOwn, r) }

func (f *pcomp) allocAAlias() int32 {
	if n := len(f.freeAAlias); n > 0 {
		r := f.freeAAlias[n-1]
		f.freeAAlias = f.freeAAlias[:n-1]
		return r
	}
	r := int32(f.p.nArr)
	f.p.nArr++
	return r
}
func (f *pcomp) freeAAliasReg(r int32) { f.freeAAlias = append(f.freeAAlias, r) }

func (f *pcomp) allocDAlias() int32 {
	if n := len(f.freeDAlias); n > 0 {
		r := f.freeDAlias[n-1]
		f.freeDAlias = f.freeDAlias[:n-1]
		return r
	}
	r := int32(f.p.nDrv)
	f.p.nDrv++
	return r
}
func (f *pcomp) freeDAliasReg(r int32) { f.freeDAlias = append(f.freeDAlias, r) }

func (f *pcomp) allocDOwn(dt *dtype) int32 {
	r := int32(f.p.nDrv)
	f.p.nDrv++
	f.p.ownDrv = append(f.p.ownDrv, struct {
		reg int32
		dt  *dtype
	}{r, dt})
	return r
}

func (f *pcomp) fixedA() int32 {
	r := int32(f.p.nArr)
	f.p.nArr++
	return r
}
func (f *pcomp) fixedD() int32 {
	r := int32(f.p.nDrv)
	f.p.nDrv++
	return r
}

// compile builds the var table (mirroring invoke's frame setup), the
// prologue (local initializers) and the body.
func (f *pcomp) compile() {
	p, sub := f.p, f.sub
	// Arguments. Later duplicate names rebind, as the walker's
	// f.vars[an] = args[i] overwrite does.
	p.argBind = make([]argSlot, len(sub.Args))
	for i, an := range sub.Args {
		sa := f.sig[i]
		var vs *vslot
		switch sa.mode {
		case 'u':
			p.argBind[i] = argSlot{mode: 'u'}
			continue
		case 's':
			r := int32(p.nPtr)
			p.nPtr++
			vs = &vslot{kind: kScal, space: vsPtr, reg: r, touch: -1}
		case 'S':
			vs = &vslot{kind: kScal, space: vsScal, reg: f.allocS(), touch: -1}
		case 'a':
			vs = &vslot{kind: kArr, space: vsArr, reg: f.fixedA(), touch: -1}
		case 'A':
			r := f.fixedA()
			p.ownArr = append(p.ownArr, r)
			vs = &vslot{kind: kArr, space: vsArr, reg: r, touch: -1}
		case 'd':
			vs = &vslot{kind: kDrv, space: vsDrv, reg: f.fixedD(), dt: sa.dt, touch: -1}
		case 'D':
			vs = &vslot{kind: kDrv, space: vsDrv, reg: f.allocDOwn(sa.dt), dt: sa.dt, touch: -1}
		}
		p.argBind[i] = argSlot{mode: sa.mode, reg: vs.reg}
		f.vars[an] = vs
		f.addSnap(an, vs)
	}
	// Locals: first declaration of a name wins (names already present —
	// arguments or earlier declarations — are skipped); initializer and
	// type failures abort the activation at this point.
	for _, d := range sub.Decls {
		for _, n := range d.Names {
			if _, present := f.vars[n]; present {
				continue
			}
			var vs *vslot
			if d.IsType {
				fdt, ok := f.l.types[f.t.module][d.BaseType]
				if !ok {
					f.emit(instr{op: opErr, a: f.c.errIdx("%s::%s: unknown derived type %q", f.t.module, sub.Name, d.BaseType)})
					f.dead = true
					break
				}
				dt := f.l.internType(fdt)
				vs = &vslot{kind: kDrv, space: vsDrv, reg: f.allocDOwn(dt), dt: dt, touch: -1}
			} else if d.IsArrayName(n) {
				r := f.allocAOwn()
				f.p.zeroArr = append(f.p.zeroArr, r)
				vs = &vslot{kind: kArr, space: vsArr, reg: r, touch: -1}
				// Owned locals stay allocated (and zeroed) per activation.
			} else {
				vs = &vslot{kind: kScal, space: vsScal, reg: f.allocS(), touch: -1}
			}
			if d.Init != nil {
				v, err := constEval(d.Init)
				if err != nil {
					f.emit(instr{op: opErr, a: f.c.errIdx("%s::%s: %s: %v", f.t.module, sub.Name, n, err)})
					f.dead = true
					break
				}
				switch vs.kind {
				case kScal:
					f.emit(instr{op: opConst, d: vs.reg, a: f.c.constant(v)})
				case kArr:
					t := f.allocS()
					f.emit(instr{op: opConst, d: t, a: f.c.constant(v)})
					f.emit(instr{op: opBroadV, d: vs.reg, a: t})
					f.freeSReg(t)
					// Derived: assignInto from a scalar is a no-op.
				}
			}
			f.vars[n] = vs
			f.addSnap(n, vs)
		}
		if f.dead {
			break
		}
	}
	// Function result variable.
	if !f.dead && sub.Kind == fortran.KindFunction {
		rv := sub.ResultVar()
		if _, ok := f.vars[rv]; !ok {
			vs := &vslot{kind: kScal, space: vsScal, reg: f.allocS(), touch: -1}
			f.vars[rv] = vs
			f.addSnap(rv, vs)
		}
		vs := f.vars[rv]
		p.ret = retLoc{kind: vs.kind, reg: vs.reg}
		switch vs.space {
		case vsScal:
			p.ret.space = ssScal
		case vsPtr:
			p.ret.space = ssPtr
		case vsArr:
			p.ret.space = ssArr
		case vsDrv:
			p.ret.space = ssDrvF // marker: whole derived; reg is the dreg
		}
		p.retDt = vs.dt
	}
	if !f.dead {
		f.stmts(sub.Body)
	}
	f.emit(instr{op: opRet})
	p.code = f.assemble()
	p.nTouch = f.nTouch
}

// assemble prepends the hoisted bind prologue to the compiled body,
// shifting every absolute branch target by the prologue length.
func (f *pcomp) assemble() []instr {
	var pro []instr
	for _, g := range f.gArrOrder {
		pro = append(pro, instr{op: opBindG, d: f.gArrBind[g], a: g})
	}
	for _, g := range f.gDrvOrder {
		pro = append(pro, instr{op: opBindGD, d: f.gDrvBind[g], a: g})
	}
	for _, k := range f.dfOrder {
		pro = append(pro, instr{op: opBindDF, d: f.dfBind[k], a: k[0], b: k[1]})
	}
	if len(pro) == 0 {
		return f.code
	}
	off := int32(len(pro))
	for i := range f.code {
		switch f.code[i].op {
		case opJmp, opJZ, opBrNoFMA, opLoopCond, opLoopInc:
			f.code[i].b += off
		}
	}
	return append(pro, f.code...)
}

// hoistGArr returns the fixed A register a global array binds to.
func (f *pcomp) hoistGArr(g int32) int32 {
	if r, ok := f.gArrBind[g]; ok {
		return r
	}
	r := f.fixedA()
	f.gArrBind[g] = r
	f.gArrOrder = append(f.gArrOrder, g)
	return r
}

// hoistGDrv returns the fixed D register a global derived binds to.
func (f *pcomp) hoistGDrv(g int32) int32 {
	if r, ok := f.gDrvBind[g]; ok {
		return r
	}
	r := f.fixedD()
	f.gDrvBind[g] = r
	f.gDrvOrder = append(f.gDrvOrder, g)
	return r
}

// hoistDF returns the fixed A register a (fixed dreg, slot) field
// array binds to.
func (f *pcomp) hoistDF(dreg, slot int32) int32 {
	k := [2]int32{dreg, slot}
	if r, ok := f.dfBind[k]; ok {
		return r
	}
	r := f.fixedA()
	f.dfBind[k] = r
	f.dfOrder = append(f.dfOrder, k)
	return r
}

// addSnap records a frame variable for the KernelWatch / SnapshotAll
// exit snapshots, flattening derived components.
func (f *pcomp) addSnap(name string, vs *vslot) {
	prefix := f.t.module + "::" + f.sub.Name + "::"
	touch := vs.touch
	switch vs.kind {
	case kScal:
		sp := ssScal
		if vs.space == vsPtr {
			sp = ssPtr
		}
		f.p.snap = append(f.p.snap, snapEntry{name: name, key: prefix + name, space: sp, reg: vs.reg, touch: touch})
	case kArr:
		f.p.snap = append(f.p.snap, snapEntry{name: name, key: prefix + name, space: ssArr, reg: vs.reg, touch: touch})
	case kDrv:
		for _, fd := range vs.dt.fields {
			sp := ssDrvF
			if fd.arr {
				sp = ssDrvA
			}
			f.p.snap = append(f.p.snap, snapEntry{name: fd.name, key: prefix + fd.name, space: sp, reg: vs.reg, f: fd.slot, fromDerived: true, touch: touch})
		}
	}
}

func (f *pcomp) resolveQuiet(name string) *vslot {
	if v, ok := f.vars[name]; ok {
		return v
	}
	if g, ok := f.l.storage[f.t.module][name]; ok {
		switch g.kind {
		case kScal:
			return &vslot{kind: kScal, space: vsGScal, reg: g.idx, touch: -1}
		case kArr:
			return &vslot{kind: kArr, space: vsGArr, reg: g.idx, touch: -1}
		case kDrv:
			return &vslot{kind: kDrv, space: vsGDrv, reg: g.idx, dt: g.dt, touch: -1}
		}
	}
	// Implicit local: a fresh scalar created on first touch at runtime.
	vs := &vslot{kind: kScal, space: vsScal, reg: f.allocS(), touch: int32(f.nTouch)}
	f.nTouch++
	f.vars[name] = vs
	f.addSnap(name, vs)
	return vs
}

// resolveVar is the lvalue resolution point: implicit locals are
// marked live here, exactly where the walker would create them.
func (f *pcomp) resolveVar(name string) *vslot {
	vs := f.resolveQuiet(name)
	if vs.touch >= 0 {
		f.emit(instr{op: opTouch, a: vs.touch})
	}
	return vs
}
