package bytecode

import "github.com/climate-rca/rca/internal/fortran"

// intrinsicNames mirrors interp's intrinsicFns table.
var intrinsicNames = map[string]bool{
	"min": true, "max": true, "abs": true, "sqrt": true, "exp": true,
	"log": true, "floor": true, "mod": true, "sign": true, "sum": true,
	"size": true, "shift": true,
}

// kindOf infers an expression's static shape without emitting code.
// kErr marks expressions whose evaluation the walker rejects at
// runtime. It may pre-create implicit locals (harmless: liveness is
// tracked by opTouch at the walker's creation points, not by slot
// existence).
func (f *pcomp) kindOf(e fortran.Expr) (vkind, *dtype) {
	switch x := e.(type) {
	case *fortran.NumLit, *fortran.StrLit:
		return kScal, nil
	case *fortran.UnaryExpr:
		k, _ := f.kindOf(x.X)
		if k == kDrv {
			return kErr, nil
		}
		return k, nil
	case *fortran.BinaryExpr:
		if x.Op == fortran.PLUS || x.Op == fortran.MINUS {
			var ae, be, ce fortran.Expr
			if mul, ok := x.L.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
				ae, be, ce = mul.L, mul.R, x.R
			} else if mul, ok := x.R.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
				ae, be, ce = mul.L, mul.R, x.L
			}
			if ae != nil {
				ak, _ := f.kindOf(ae)
				bk, _ := f.kindOf(be)
				ck, _ := f.kindOf(ce)
				fk := kScal
				switch {
				case ak == kErr || bk == kErr || ck == kErr:
					fk = kErr
				case ak == kArr || bk == kArr || ck == kArr:
					fk = kArr
				}
				if fk != kErr {
					return fk, nil
				}
				return f.plainKind(x), nil
			}
		}
		return f.plainKind(x), nil
	case *fortran.Ref:
		return f.kindOfRef(x)
	}
	return kErr, nil
}

func (f *pcomp) kindOfRef(r *fortran.Ref) (vkind, *dtype) {
	if r.HasParens && len(r.Components) == 0 {
		if intrinsicNames[r.Name] {
			return f.kindOfIntrinsic(r)
		}
		if ts := f.l.funcs[f.t.module+"::"+r.Name]; len(ts) > 0 {
			return f.kindOfCall(ts, r.Args)
		}
	}
	vs := f.resolveQuiet(r.Name)
	kind, dt := vs.kind, vs.dt
	for _, comp := range r.Components {
		if kind != kDrv {
			return kErr, nil
		}
		fi, ok := dt.fidx[comp]
		if !ok {
			return kErr, nil
		}
		if dt.fields[fi].arr {
			kind = kArr
		} else {
			kind = kScal
		}
		dt = nil
	}
	if r.HasParens && kind == kArr && len(r.Args) == 1 {
		ik, _ := f.kindOf(r.Args[0])
		switch ik {
		case kScal:
			return kScal, nil
		case kErr:
			return kErr, nil
		default:
			return kArr, nil
		}
	}
	return kind, dt
}

func (f *pcomp) kindOfIntrinsic(r *fortran.Ref) (vkind, *dtype) {
	ks := make([]vkind, len(r.Args))
	var dt0 *dtype
	for i, a := range r.Args {
		k, dt := f.kindOf(a)
		if k == kErr {
			return kErr, nil
		}
		ks[i] = k
		if i == 0 {
			dt0 = dt
		}
	}
	anyArr := false
	for _, k := range ks {
		if k == kArr {
			anyArr = true
		}
	}
	switch r.Name {
	case "min", "max":
		if len(ks) < 2 {
			return kErr, nil
		}
		if anyArr {
			return kArr, nil
		}
		return kScal, nil
	case "abs", "sqrt", "exp", "log", "floor":
		if len(ks) != 1 || ks[0] == kDrv {
			return kErr, nil
		}
		return ks[0], nil
	case "mod", "sign":
		if len(ks) != 2 {
			return kErr, nil
		}
		if anyArr {
			return kArr, nil
		}
		return kScal, nil
	case "sum":
		if len(ks) != 1 || ks[0] == kDrv {
			return kErr, nil
		}
		return kScal, nil
	case "size":
		if len(ks) != 1 {
			return kErr, nil
		}
		return kScal, nil
	case "shift":
		if len(ks) != 2 {
			return kErr, nil
		}
		if ks[0] == kArr && ks[1] == kDrv {
			return kErr, nil // the walker panics reading the shift count
		}
		return ks[0], dt0
	}
	return kErr, nil
}

func (f *pcomp) kindOfCall(ts []target, args []fortran.Expr) (vkind, *dtype) {
	t := resolveOverload(ts, len(args))
	anyArr := false
	sig := make([]sigArg, len(t.sub.Args))
	for i := range sig {
		sig[i].mode = 'u'
	}
	for i, a := range args {
		k, dt := f.kindOf(a)
		if k == kErr {
			return kErr, nil
		}
		if k == kArr {
			anyArr = true
		}
		if i < len(sig) {
			switch k {
			case kScal:
				sig[i] = sigArg{mode: 'S'}
			case kArr:
				sig[i] = sigArg{mode: 'A'}
			case kDrv:
				sig[i] = sigArg{mode: 'D', dt: dt}
			}
		}
	}
	if t.sub.Elemental && anyArr {
		return kArr, nil
	}
	return f.resultKind(t, sig)
}

// resultKind computes a function specialization's result shape: the
// bound argument slot if the result variable collides with an
// argument name, else its first declaration, else a fresh scalar.
func (f *pcomp) resultKind(t target, sig []sigArg) (vkind, *dtype) {
	rv := t.sub.ResultVar()
	var bound *sigArg
	for i, an := range t.sub.Args {
		if an == rv && i < len(sig) && sig[i].mode != 'u' {
			sa := sig[i]
			bound = &sa
		}
	}
	if bound != nil {
		switch bound.mode {
		case 'a', 'A':
			return kArr, nil
		case 'd', 'D':
			return kDrv, bound.dt
		default:
			return kScal, nil
		}
	}
	for _, d := range t.sub.Decls {
		for _, n := range d.Names {
			if n != rv {
				continue
			}
			if d.IsType {
				if fdt, ok := f.l.types[t.module][d.BaseType]; ok {
					return kDrv, f.l.internType(fdt)
				}
				return kScal, nil // activation fails before the result is read
			}
			if d.IsArrayName(rv) {
				return kArr, nil
			}
			return kScal, nil
		}
	}
	return kScal, nil
}

// cellRef is a resolved storage cell (possibly a derived component).
type cellRef struct {
	kind    vkind
	space   vspace // base space for non-field cells
	reg     int32
	dt      *dtype
	isField bool
	dreg    int32 // bound frame derived register holding the parent
	dregTmp bool
	fslot   int32
	bad     bool
}

// drvReg resolves a derived cell to a frame D register: frame cells
// directly, globals through their hoisted prologue binding.
func (f *pcomp) drvReg(vs *vslot) (int32, bool) {
	if vs.space == vsDrv {
		return vs.reg, false
	}
	return f.hoistGDrv(vs.reg), false
}

// walkRef is the lvalue resolution point: base variable (creating and
// touching implicit locals), then the derived component chain. On a
// resolution failure the walker reports, the error is emitted and
// bad is set.
func (f *pcomp) walkRef(r *fortran.Ref) cellRef {
	vs := f.resolveVar(r.Name)
	cr := cellRef{kind: vs.kind, space: vs.space, reg: vs.reg, dt: vs.dt}
	for _, comp := range r.Components {
		if cr.kind != kDrv {
			f.emitErr("%s is not derived (component %s)", r.Name, comp)
			return cellRef{bad: true}
		}
		fi, ok := cr.dt.fidx[comp]
		if !ok {
			f.emitErr("no component %s", comp)
			return cellRef{bad: true}
		}
		var dreg int32
		var dtmp bool
		if cr.isField {
			// Unreachable: fields are never derived (flat types).
			f.emitErr("nested derived component %s", comp)
			return cellRef{bad: true}
		}
		dreg, dtmp = f.drvReg(&vslot{kind: kDrv, space: cr.space, reg: cr.reg, dt: cr.dt})
		fd := cr.dt.fields[fi]
		kind := kScal
		if fd.arr {
			kind = kArr
		}
		cr = cellRef{kind: kind, isField: true, dreg: dreg, dregTmp: dtmp, fslot: fd.slot}
	}
	return cr
}

// releaseCell frees any alias register a cell resolution bound.
func (f *pcomp) releaseCell(cr cellRef) {
	if cr.isField && cr.dregTmp {
		f.freeDAliasReg(cr.dreg)
	}
}

// arrOpnd resolves an array cell to an A register operand: frame
// cells directly, globals and derived-field arrays through hoisted
// prologue bindings.
func (f *pcomp) arrOpnd(cr cellRef) opnd {
	if cr.isField {
		if !cr.dregTmp {
			return opnd{kind: kArr, ok: oArr, reg: f.hoistDF(cr.dreg, cr.fslot)}
		}
		t := f.allocAAlias()
		f.emit(instr{op: opBindDF, d: t, a: cr.dreg, b: cr.fslot})
		return opnd{kind: kArr, ok: oArr, reg: t, aAliasTmp: true}
	}
	switch cr.space {
	case vsArr:
		return opnd{kind: kArr, ok: oArr, reg: cr.reg}
	case vsGArr:
		return opnd{kind: kArr, ok: oArr, reg: f.hoistGArr(cr.reg)}
	}
	panic("bytecode: arrOpnd on non-array cell")
}

// cellOpnd converts a resolved cell to a (deferred, live) operand.
func (f *pcomp) cellOpnd(cr cellRef) opnd {
	switch cr.kind {
	case kScal:
		if cr.isField {
			return opnd{kind: kScal, ok: oFieldS, reg: cr.dreg, f: cr.fslot, dAliasTmp: cr.dregTmp}
		}
		switch cr.space {
		case vsScal:
			return opnd{kind: kScal, ok: oVarS, reg: cr.reg}
		case vsPtr:
			return opnd{kind: kScal, ok: oPtrS, reg: cr.reg}
		case vsGScal:
			return opnd{kind: kScal, ok: oGlobS, reg: cr.reg}
		}
	case kArr:
		return f.arrOpnd(cr)
	case kDrv:
		if cr.space == vsDrv {
			return opnd{kind: kDrv, ok: oDrv, reg: cr.reg, dt: cr.dt}
		}
		return opnd{kind: kDrv, ok: oDrv, reg: f.hoistGDrv(cr.reg), dt: cr.dt}
	}
	panic("bytecode: cellOpnd on bad cell")
}

// ref compiles a reference in expression position, mirroring evalRef:
// intrinsics first, then visible functions, then variable access with
// the walker's element/whole-cell selection.
func (f *pcomp) ref(r *fortran.Ref, d dst) opnd {
	if r.HasParens && len(r.Components) == 0 {
		if intrinsicNames[r.Name] {
			return f.intrinsic(r, d)
		}
		if ts := f.l.funcs[f.t.module+"::"+r.Name]; len(ts) > 0 {
			return f.callFunc(ts, r.Args, d)
		}
	}
	cr := f.walkRef(r)
	if cr.bad {
		return errOpnd()
	}
	if r.HasParens && cr.kind == kArr && len(r.Args) == 1 {
		ik, _ := f.kindOf(r.Args[0])
		switch ik {
		case kErr:
			f.releaseCell(cr)
			return f.expr(r.Args[0])
		case kScal:
			io := f.expr(r.Args[0])
			im := f.matS(io)
			ao := f.arrOpnd(cr)
			ireg := f.allocI()
			f.emit(instr{op: opIdx, d: ireg, a: ao.reg, b: im.reg, e: f.c.str(r.Name)})
			f.release(im)
			rd := f.pickS(d)
			f.emit(instr{op: opLoadElem, d: rd.reg, a: ao.reg, b: ireg})
			f.freeIReg(ireg)
			f.release(ao)
			return rd
		default:
			io := f.expr(r.Args[0])
			f.release(io)
			return f.cellOpnd(cr)
		}
	}
	return f.cellOpnd(cr)
}
