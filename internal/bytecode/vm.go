package bytecode

import (
	"fmt"
	"math"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

const maxDepth = 200

// applyScalarOp mirrors interp's scalar semantics exactly (shared by
// the linker's constant evaluator).
func applyScalarOp(op fortran.Kind, a, b float64) (float64, error) {
	switch op {
	case fortran.PLUS:
		return a + b, nil
	case fortran.MINUS:
		return a - b, nil
	case fortran.STAR:
		return a * b, nil
	case fortran.SLASH:
		return a / b, nil
	case fortran.POW:
		return math.Pow(a, b), nil
	case fortran.EQ:
		return b2f(a == b), nil
	case fortran.NE:
		return b2f(a != b), nil
	case fortran.LT:
		return b2f(a < b), nil
	case fortran.LE:
		return b2f(a <= b), nil
	case fortran.GT:
		return b2f(a > b), nil
	case fortran.GE:
		return b2f(a >= b), nil
	case fortran.AND:
		return b2f(a != 0 && b != 0), nil
	case fortran.OR:
		return b2f(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("bad binary op %v", op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// frame is one activation record: flat register files, an arena
// backing the frame-owned arrays, and the implicit-local liveness
// bits the snapshots consult.
type frame struct {
	ncol    int
	scal    []float64
	ptrs    []*float64
	arr     [][]float64
	drv     []*dval
	ints    []int64
	touched []bool
	arena   []float64
	zero    [][]float64 // local arrays zeroed per activation
	ownD    []*dval
}

func newFrame(p *proc, ncol int) *frame {
	fr := &frame{
		ncol:    ncol,
		scal:    make([]float64, p.nScal),
		ptrs:    make([]*float64, p.nPtr),
		arr:     make([][]float64, p.nArr),
		drv:     make([]*dval, p.nDrv),
		ints:    make([]int64, p.nInt),
		touched: make([]bool, p.nTouch),
		arena:   make([]float64, len(p.ownArr)*ncol),
	}
	for i, reg := range p.ownArr {
		fr.arr[reg] = fr.arena[i*ncol : (i+1)*ncol]
	}
	for _, reg := range p.zeroArr {
		fr.zero = append(fr.zero, fr.arr[reg])
	}
	for _, od := range p.ownDrv {
		d := newDval(od.dt, ncol)
		fr.drv[od.reg] = d
		fr.ownD = append(fr.ownD, d)
	}
	return fr
}

func (fr *frame) reset() {
	for i := range fr.scal {
		fr.scal[i] = 0
	}
	for _, a := range fr.zero {
		for i := range a {
			a[i] = 0
		}
	}
	for i := range fr.touched {
		fr.touched[i] = false
	}
	for _, d := range fr.ownD {
		d.reset()
	}
}

// VM executes one compiled Program instance. It implements
// interp.Engine; a fresh VM per integration matches the walker's
// fresh-Machine-per-run life cycle.
type VM struct {
	interp.Results

	prog        *Program
	ncol        int
	rng         rng.Source
	trace       func(module, subprogram string)
	kernelWatch string
	snapshotAll bool
	fma         []bool

	gscal []float64
	garr  [][]float64
	gdrv  []*dval

	depth int
}

// NewVM instantiates the program under one run configuration,
// mirroring interp.NewMachine's defaults and failure modes.
func (p *Program) NewVM(cfg interp.Config) (*VM, error) {
	if p.initErr != nil {
		return nil, p.initErr
	}
	ncol := cfg.Ncol
	if ncol <= 0 {
		ncol = 16
	}
	src := cfg.RNG
	if src == nil {
		src = rng.NewKISS(1)
	}
	vm := &VM{
		Results:     interp.NewResults(),
		prog:        p,
		ncol:        ncol,
		rng:         src,
		trace:       cfg.Trace,
		kernelWatch: cfg.KernelWatch,
		snapshotAll: cfg.SnapshotAll,
		gscal:       make([]float64, p.nGScal),
		garr:        make([][]float64, p.nGArr),
		gdrv:        make([]*dval, len(p.gdrvs)),
	}
	backing := make([]float64, p.nGArr*ncol)
	for i := 0; i < p.nGArr; i++ {
		vm.garr[i] = backing[i*ncol : (i+1)*ncol]
	}
	for i, dt := range p.gdrvs {
		vm.gdrv[i] = newDval(dt, ncol)
	}
	for _, si := range p.scalInit {
		vm.gscal[si.idx] = si.val
	}
	for _, ai := range p.arrInit {
		a := vm.garr[ai.idx]
		for i := range a {
			a[i] = ai.val
		}
	}
	vm.fma = make([]bool, len(p.modules))
	if cfg.FMA != nil {
		for i, m := range p.modules {
			vm.fma[i] = cfg.FMA(m)
		}
	}
	return vm, nil
}

// Ncol implements interp.Engine.
func (vm *VM) Ncol() int { return vm.ncol }

// Captured implements interp.Engine.
func (vm *VM) Captured() *interp.Results { return &vm.Results }

// ModuleArray implements interp.Engine.
func (vm *VM) ModuleArray(module string, path ...string) ([]float64, bool) {
	if len(path) == 0 {
		return nil, false
	}
	g, ok := vm.prog.moduleVars[module][path[0]]
	if !ok {
		return nil, false
	}
	rest := path[1:]
	switch g.kind {
	case kArr:
		if len(rest) != 0 {
			return nil, false
		}
		return vm.garr[g.idx], true
	case kDrv:
		if len(rest) != 1 {
			return nil, false
		}
		fi, ok := g.dt.fidx[rest[0]]
		if !ok || !g.dt.fields[fi].arr {
			return nil, false
		}
		return vm.gdrv[g.idx].arr[g.dt.fields[fi].slot], true
	}
	return nil, false
}

// ModuleScalar returns a module-level scalar's address (tests and the
// Engine-parity helpers use it).
func (vm *VM) ModuleScalar(module, name string) (*float64, bool) {
	g, ok := vm.prog.moduleVars[module][name]
	if !ok || g.kind != kScal {
		return nil, false
	}
	return &vm.gscal[g.idx], true
}

// SnapshotModuleVars implements interp.Engine.
func (vm *VM) SnapshotModuleVars() {
	for _, ms := range vm.prog.snapModules {
		for _, e := range ms.entries {
			vm.snapInto(vm.AllValues, e.key, nil, e)
		}
	}
}

// snapInto stores a snapshot, overwriting an existing same-length
// slice in place — the map's final contents are what a fresh copy per
// exit would leave (last call wins), without the per-exit allocation.
func (vm *VM) snapInto(m map[string][]float64, key string, fr *frame, e snapEntry) {
	var src []float64
	var v float64
	scalar := false
	switch e.space {
	case ssScal:
		v, scalar = fr.scal[e.reg], true
	case ssPtr:
		v, scalar = *fr.ptrs[e.reg], true
	case ssArr:
		src = fr.arr[e.reg]
	case ssDrvF:
		v, scalar = fr.drv[e.reg].scal[e.f], true
	case ssDrvA:
		src = fr.drv[e.reg].arr[e.f]
	case ssGScal:
		v, scalar = vm.gscal[e.reg], true
	case ssGArr:
		src = vm.garr[e.reg]
	case ssGDrvF:
		v, scalar = vm.gdrv[e.reg].scal[e.f], true
	case ssGDrvA:
		src = vm.gdrv[e.reg].arr[e.f]
	}
	if scalar {
		if dst, ok := m[key]; ok && len(dst) == 1 {
			dst[0] = v
			return
		}
		m[key] = []float64{v}
		return
	}
	if dst, ok := m[key]; ok && len(dst) == len(src) {
		copy(dst, src)
		return
	}
	m[key] = append([]float64(nil), src...)
}

// snapValue copies one snapshot source (frame entries pass fr).
func (vm *VM) snapValue(fr *frame, e snapEntry) []float64 {
	switch e.space {
	case ssScal:
		return []float64{fr.scal[e.reg]}
	case ssPtr:
		return []float64{*fr.ptrs[e.reg]}
	case ssArr:
		return append([]float64(nil), fr.arr[e.reg]...)
	case ssDrvF:
		return []float64{fr.drv[e.reg].scal[e.f]}
	case ssDrvA:
		return append([]float64(nil), fr.drv[e.reg].arr[e.f]...)
	case ssGScal:
		return []float64{vm.gscal[e.reg]}
	case ssGArr:
		return append([]float64(nil), vm.garr[e.reg]...)
	case ssGDrvF:
		return []float64{vm.gdrv[e.reg].scal[e.f]}
	case ssGDrvA:
		return append([]float64(nil), vm.gdrv[e.reg].arr[e.f]...)
	}
	return nil
}

// exitSnapshots mirrors the walker's invoke-exit captures, including
// on error paths.
func (vm *VM) exitSnapshots(p *proc, fr *frame) {
	if vm.kernelWatch != "" && vm.kernelWatch == p.fullName {
		for _, e := range p.snap {
			if e.fromDerived {
				continue // snapshotKernel skips derived variables
			}
			if e.touch >= 0 && !fr.touched[e.touch] {
				continue
			}
			vm.snapInto(vm.Kernel, e.name, fr, e)
		}
	}
	if vm.snapshotAll {
		for _, e := range p.snap {
			if e.touch >= 0 && !fr.touched[e.touch] {
				continue
			}
			vm.snapInto(vm.AllValues, e.key, fr, e)
		}
	}
}

// Call implements interp.Engine: invoke a zero-argument entry
// subroutine by its visible name.
func (vm *VM) Call(module, name string) error {
	p, ok := vm.prog.entries[module+"::"+name]
	if !ok {
		return errf("no subroutine %s in %s", name, module)
	}
	fr, err := vm.enter(p)
	if fr != nil {
		vm.putFrame(p, fr)
	}
	return err
}

func (vm *VM) getFrame(p *proc) *frame {
	if v := vm.prog.pools[p.id].Get(); v != nil {
		fr := v.(*frame)
		if fr.ncol == vm.ncol {
			fr.reset()
			return fr
		}
	}
	return newFrame(p, vm.ncol)
}

func (vm *VM) putFrame(p *proc, fr *frame) {
	vm.prog.pools[p.id].Put(fr)
}

// enter runs one activation with no argument binding (entry calls).
func (vm *VM) enter(p *proc) (*frame, error) {
	if vm.depth >= maxDepth {
		return nil, errf("call depth exceeded at %s", p.fullName)
	}
	vm.depth++
	if vm.trace != nil {
		vm.trace(p.module, p.name)
	}
	fr := vm.getFrame(p)
	err := vm.exec(p, fr)
	vm.exitSnapshots(p, fr)
	vm.depth--
	return fr, err
}

// callSiteInvoke runs one activation bound from a call site.
func (vm *VM) callSiteInvoke(cs *callSite, caller *frame) (*frame, error) {
	p := cs.proc
	if vm.depth >= maxDepth {
		return nil, errf("call depth exceeded at %s", p.fullName)
	}
	vm.depth++
	if vm.trace != nil {
		vm.trace(p.module, p.name)
	}
	fr := vm.getFrame(p)
	for i, mv := range cs.args {
		slot := p.argBind[i]
		if slot.mode == 'u' || mv.mode == amNone {
			continue
		}
		switch mv.mode {
		case amRefScalS:
			fr.ptrs[slot.reg] = &caller.scal[mv.a]
		case amRefScalG:
			fr.ptrs[slot.reg] = &vm.gscal[mv.a]
		case amRefScalP:
			fr.ptrs[slot.reg] = caller.ptrs[mv.a]
		case amRefScalDF:
			fr.ptrs[slot.reg] = &caller.drv[mv.a].scal[mv.b]
		case amRefArr:
			fr.arr[slot.reg] = caller.arr[mv.a]
		case amRefDrv:
			fr.drv[slot.reg] = caller.drv[mv.a]
		case amValScalS:
			fr.scal[slot.reg] = caller.scal[mv.a]
		case amValScalG:
			fr.scal[slot.reg] = vm.gscal[mv.a]
		case amValScalP:
			fr.scal[slot.reg] = *caller.ptrs[mv.a]
		case amValScalDF:
			fr.scal[slot.reg] = caller.drv[mv.a].scal[mv.b]
		case amValArr:
			copy(fr.arr[slot.reg], caller.arr[mv.a])
		case amValDrv:
			cloneDval(fr.drv[slot.reg], caller.drv[mv.a])
		}
	}
	err := vm.exec(p, fr)
	vm.exitSnapshots(p, fr)
	vm.depth--
	return fr, err
}

// cloneDval mirrors Value.Clone on derived values: fields copied, the
// phantom scalar reset to zero.
func cloneDval(dst, src *dval) {
	dst.f = 0
	copy(dst.scal, src.scal)
	for i := range src.arr {
		copy(dst.arr[i], src.arr[i])
	}
}

// retScal reads a function result as a scalar (array results collapse
// to their first element, as Value.Scalar does).
func (vm *VM) retScal(p *proc, fr *frame) float64 {
	switch p.ret.kind {
	case kArr:
		return fr.arr[p.ret.reg][0]
	default:
		if p.ret.space == ssPtr {
			return *fr.ptrs[p.ret.reg]
		}
		return fr.scal[p.ret.reg]
	}
}
