package bytecode

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// progGen derives a syntactically valid FortLite program from a fuzz
// byte stream: module variables (scalars, fields, a derived type),
// parameters, an elemental and a plain function, helper subroutines
// and a zero-argument entry — with statements and expressions chosen
// byte by byte. Loops are bounded and calls only target previously
// defined subprograms, so every generated program terminates.
type progGen struct {
	data []byte
	pos  int
	sb   strings.Builder
	tmp  int
}

func (g *progGen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *progGen) pick(n int) int { return int(g.byte()) % n }

func (g *progGen) lit() string {
	v := float64(int(g.byte())-128) / 16
	return fmt.Sprintf("%.4f", v)
}

// Scalar-valued variables visible in every subprogram.
var fzScal = []string{"s0", "s1", "s2", "st%mass"}

// Array-valued variables visible in every subprogram.
var fzArr = []string{"a0", "a1", "a2", "st%t", "st%q"}

// expr emits an expression of bounded depth; array controls shape.
func (g *progGen) expr(depth int, array bool) string {
	if depth <= 0 {
		return g.atom(array)
	}
	switch g.pick(8) {
	case 0:
		return g.atom(array)
	case 1:
		return fmt.Sprintf("(-%s)", g.expr(depth-1, array))
	case 2: // FMA candidate a*b + c
		return fmt.Sprintf("%s * %s + %s", g.atom(array), g.atom(false), g.expr(depth-1, array))
	case 3: // c - a*b
		return fmt.Sprintf("%s - %s * %s", g.expr(depth-1, array), g.atom(array), g.atom(false))
	case 4:
		op := []string{"+", "-", "*", "/"}[g.pick(4)]
		return fmt.Sprintf("%s %s %s", g.expr(depth-1, array), op, g.atom(array))
	case 5:
		fn := []string{"abs", "sqrt", "exp", "log", "floor"}[g.pick(5)]
		return fmt.Sprintf("%s(%s)", fn, g.expr(depth-1, array))
	case 6:
		fn := []string{"min", "max", "mod", "sign"}[g.pick(4)]
		return fmt.Sprintf("%s(%s, %s)", fn, g.expr(depth-1, array), g.atom(array))
	default:
		if array {
			switch g.pick(3) {
			case 0:
				return fmt.Sprintf("shift(%s, %d)", g.atom(true), g.pick(7)-3)
			case 1:
				return fmt.Sprintf("efn(%s)", g.atom(true)) // elemental broadcast
			default:
				return g.atom(true)
			}
		}
		switch g.pick(4) {
		case 0:
			return fmt.Sprintf("sum(%s)", g.atom(true))
		case 1:
			return fmt.Sprintf("size(%s)", g.atom(true))
		case 2:
			return fmt.Sprintf("ffn(%s, %s)", g.atom(false), g.atom(false))
		default:
			return g.atom(false)
		}
	}
}

func (g *progGen) atom(array bool) string {
	if array {
		return fzArr[g.pick(len(fzArr))]
	}
	switch g.pick(4) {
	case 0:
		return g.lit()
	case 1: // element read with a small in-bounds index
		return fmt.Sprintf("%s(%d)", fzArr[g.pick(3)], 1+g.pick(4))
	default:
		return fzScal[g.pick(len(fzScal))]
	}
}

func (g *progGen) stmt(depth int) {
	switch g.pick(9) {
	case 0, 1: // array assignment
		fmt.Fprintf(&g.sb, "    %s = %s\n", fzArr[g.pick(len(fzArr))], g.expr(2, true))
	case 2: // scalar assignment
		fmt.Fprintf(&g.sb, "    %s = %s\n", fzScal[g.pick(3)], g.expr(2, false))
	case 3: // element assignment
		fmt.Fprintf(&g.sb, "    %s(%d) = %s\n", fzArr[g.pick(3)], 1+g.pick(4), g.expr(2, false))
	case 4:
		if depth > 0 {
			fmt.Fprintf(&g.sb, "    if (%s > %s) then\n", g.expr(1, false), g.lit())
			g.stmt(depth - 1)
			g.sb.WriteString("    else\n")
			g.stmt(depth - 1)
			g.sb.WriteString("    end if\n")
			return
		}
		fmt.Fprintf(&g.sb, "    %s = %s\n", fzScal[g.pick(3)], g.expr(1, false))
	case 5:
		if depth > 0 {
			g.tmp++
			v := fmt.Sprintf("i%d", g.tmp)
			fmt.Fprintf(&g.sb, "    do %s = 1, %d\n", v, 1+g.pick(3))
			g.stmt(depth - 1)
			fmt.Fprintf(&g.sb, "    end do\n")
			return
		}
		fmt.Fprintf(&g.sb, "    %s = %s\n", fzArr[g.pick(3)], g.expr(1, true))
	case 6:
		fmt.Fprintf(&g.sb, "    call random_number(%s)\n", fzArr[g.pick(3)])
	case 7:
		fmt.Fprintf(&g.sb, "    call helper(%s, %s)\n", fzArr[g.pick(len(fzArr))], fzScal[g.pick(3)])
	default:
		fmt.Fprintf(&g.sb, "    call outfld('F%d', %s)\n", g.pick(4), fzArr[g.pick(len(fzArr))])
	}
}

func (g *progGen) source() string {
	g.sb.WriteString(`module fz
  type cell
    real :: t(:)
    real :: q(:)
    real :: mass
  end type
  type(cell) :: st
  real :: a0(:), a1(:), a2(:)
  real :: s0, s1, s2
  real, parameter :: pconst = `)
	g.sb.WriteString(g.lit())
	g.sb.WriteString(`
contains
  elemental function efn(v) result(r)
    real, intent(in) :: v
    real :: r
    r = v * `)
	g.sb.WriteString(g.lit())
	g.sb.WriteString(` + `)
	g.sb.WriteString(g.lit())
	g.sb.WriteString(`
  end function
  function ffn(x, y) result(r)
    real :: x, y, r
    r = x * y - pconst
  end function
  subroutine helper(v, amt)
    real :: v(:), amt
    v = v * 0.5 + amt
    amt = amt + 1.0
  end subroutine
  subroutine fzinit()
    integer :: i
    do i = 1, size(a0)
      a0(i) = 0.1 * i
      a1(i) = 1.0 - 0.05 * i
      a2(i) = pconst * i
      st%t(i) = 270.0 + i
      st%q(i) = 0.01 * i
    end do
    st%mass = 5.5
    s0 = 1.5
    s1 = -0.25
    s2 = pconst
  end subroutine
  subroutine main()
`)
	n := 3 + g.pick(8)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.sb.WriteString("  end subroutine\nend module fz\n")
	return g.sb.String()
}

// FuzzBytecodeVsTree generates FortLite programs and asserts the
// bytecode VM and the tree walker produce bit-identical Outputs,
// Kernel and AllValues maps — the differential pin behind making the
// VM the default engine.
func FuzzBytecodeVsTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("fma patterns and shifts everywhere, please"))
	f.Add([]byte{0xff, 0x00, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01,
		0xaa, 0x55, 0xcc, 0x33, 0x99, 0x66, 0xf0, 0x0f, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &progGen{data: data}
		fmaMode := g.pick(3)
		src := g.source()
		mods, err := fortran.ParseFile(src)
		if err != nil {
			t.Fatalf("generator produced unparsable source: %v\n%s", err, src)
		}
		mk := func() interp.Config {
			var fma func(string) bool
			switch fmaMode {
			case 1:
				fma = func(string) bool { return true }
			case 2:
				fma = func(m string) bool { return m == "fz" }
			}
			return interp.Config{Ncol: 6, RNG: rng.NewKISS(99),
				SnapshotAll: true, KernelWatch: "fz::main", FMA: fma}
		}
		m, merr := interp.NewMachine(mods, mk())
		vm, verr := Compile(mods).NewVM(mk())
		if (merr == nil) != (verr == nil) {
			t.Fatalf("construction disagreement: tree=%v vm=%v\n%s", merr, verr, src)
		}
		if merr != nil {
			return
		}
		for _, call := range [][2]string{{"fz", "fzinit"}, {"fz", "main"}} {
			em := m.Call(call[0], call[1])
			ev := vm.Call(call[0], call[1])
			if (em == nil) != (ev == nil) {
				t.Fatalf("call %s disagreement: tree=%v vm=%v\n%s", call[1], em, ev, src)
			}
			if em != nil {
				return
			}
		}
		m.SnapshotModuleVars()
		vm.SnapshotModuleVars()
		for label, pair := range map[string][2]map[string][]float64{
			"Outputs":   {m.Outputs, vm.Outputs},
			"Kernel":    {m.Kernel, vm.Kernel},
			"AllValues": {m.AllValues, vm.AllValues},
		} {
			want, got := pair[0], pair[1]
			if len(want) != len(got) {
				t.Fatalf("%s: key counts differ (%d vs %d)\n%s", label, len(want), len(got), src)
			}
			for k, wv := range want {
				gv, ok := got[k]
				if !ok {
					t.Fatalf("%s: key %q missing from VM\n%s", label, k, src)
				}
				if len(wv) != len(gv) {
					t.Fatalf("%s[%s]: lengths differ\n%s", label, k, src)
				}
				for i := range wv {
					if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
						t.Fatalf("%s[%s][%d]: tree=%x vm=%x\n%s",
							label, k, i, math.Float64bits(wv[i]), math.Float64bits(gv[i]), src)
					}
				}
			}
		}
	})
}
