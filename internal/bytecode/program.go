// Package bytecode compiles FortLite modules into a register-based
// bytecode program and executes it on a stack-of-frames VM. It is the
// default execution engine behind interp.Engine: semantic analysis
// resolves every variable, derived-type field and call target to an
// integer slot at compile time, scalars live unboxed in flat []float64
// register files, and column fields in preallocated flat arrays — so
// the hot path runs with no map lookups and no per-expression heap
// boxing.
//
// The tree-walking interpreter (internal/interp) remains the reference
// oracle: the compiler's hard requirement is bit-identical Outputs,
// Kernel and AllValues maps for every program both engines accept. The
// paper's verdicts hang on exact floating-point semantics — FMA fusion
// patterns, PRNG draw order, evaluation order — so the lowering
// preserves the walker's evaluation order exactly, including its
// corner cases (live whole-variable reads at consumption time, eager
// element and intrinsic materialization, per-module FMA selecting
// between two compiled operand orders). See DESIGN.md "Execution
// engine" for the ISA sketch and the determinism contract.
package bytecode

import (
	"fmt"
	"sync"

	"github.com/climate-rca/rca/internal/fortran"
)

// vkind classifies a value's static shape.
type vkind uint8

const (
	kScal vkind = iota
	kArr
	kDrv
	kErr // expression whose evaluation the walker rejects at runtime
)

// dtype is an interned derived-type layout: field order and shapes
// resolved at compile time so component access is slot arithmetic.
type dtype struct {
	id     int
	fields []dfield
	fidx   map[string]int // field name → index into fields
	nScal  int
	nArr   int
}

// dfield is one derived-type component.
type dfield struct {
	name string
	arr  bool
	slot int32 // index into dval.scal or dval.arr
}

// dval is a runtime derived-type instance: scalar fields flat in scal,
// column fields in arr. f mirrors the tree walker's Value.F phantom on
// derived values (written by random_number, read by at()).
type dval struct {
	t    *dtype
	f    float64
	scal []float64
	arr  [][]float64
}

// newDval allocates a zeroed instance.
func newDval(t *dtype, ncol int) *dval {
	d := &dval{t: t}
	if t.nScal > 0 {
		d.scal = make([]float64, t.nScal)
	}
	if t.nArr > 0 {
		d.arr = make([][]float64, t.nArr)
		backing := make([]float64, t.nArr*ncol)
		for i := 0; i < t.nArr; i++ {
			d.arr[i] = backing[i*ncol : (i+1)*ncol]
		}
	}
	return d
}

// reset zeroes an owned instance for a fresh frame activation.
func (d *dval) reset() {
	d.f = 0
	for i := range d.scal {
		d.scal[i] = 0
	}
	for _, a := range d.arr {
		for i := range a {
			a[i] = 0
		}
	}
}

// gref addresses one global (module-level) cell.
type gref struct {
	kind vkind
	idx  int32
	dt   *dtype
}

// target mirrors interp's procKeyTarget: a subprogram plus the module
// whose storage it executes against.
type target struct {
	module string
	sub    *fortran.Subprogram
}

// argMove describes how one caller operand binds to a callee arg slot.
type amode uint8

const (
	amNone      amode = iota // unbound (arity mismatch)
	amRefScalS               // pass &fr.scal[a]
	amRefScalG               // pass &vm.gscal[a]
	amRefScalP               // forward fr.ptrs[a]
	amRefScalDF              // pass &fr.drv[a].scal[b]
	amRefArr                 // pass fr.arr[a] (slice alias)
	amRefDrv                 // pass fr.drv[a]
	amValScalS               // copy scal value (read at call time)
	amValScalG
	amValScalP
	amValScalDF
	amValArr // copy contents of fr.arr[a] into callee-owned array
	amValDrv // deep-copy fr.drv[a] into callee-owned dval
)

type argMove struct {
	mode amode
	a, b int32
}

// elemSpace addresses one elemental-broadcast operand, read live per
// column exactly as the walker's at(v, i) reads its cells.
type elemSpace uint8

const (
	esTempS  elemSpace = iota // fr.scal[a], fixed temp or live frame var
	esGlobS                   // vm.gscal[a]
	esPtrS                    // *fr.ptrs[a]
	esFieldS                  // fr.drv[a].scal[b]
	esDrvF                    // fr.drv[a].f
	esArr                     // fr.arr[a][i]
)

type elemArg struct {
	space elemSpace
	a, b  int32
}

// callSite is one resolved static call.
type callSite struct {
	proc *proc
	args []argMove // regular calls
	elem []elemArg // elemental broadcasts
}

// snapSpace addresses a snapshot source.
type snapSpace uint8

const (
	ssScal  snapSpace = iota // fr.scal[reg]
	ssPtr                    // *fr.ptrs[reg]
	ssArr                    // fr.arr[reg]
	ssDrvF                   // fr.drv[reg].scal[f] (scalar field)
	ssDrvA                   // fr.drv[reg].arr[f] (array field)
	ssGScal                  // vm.gscal[reg]
	ssGArr                   // vm.garr[reg]
	ssGDrvF                  // vm.gdrv[reg].scal[f]
	ssGDrvA                  // vm.gdrv[reg].arr[f]
)

// snapEntry records one variable (or flattened derived component) for
// the KernelWatch / SnapshotAll / module-level snapshots.
type snapEntry struct {
	name        string // frame: variable name (Kernel map key)
	key         string // AllValues key (prefix applied at build time)
	space       snapSpace
	reg, f      int32
	fromDerived bool  // KernelWatch skips derived components
	touch       int32 // implicit-local liveness bit, -1 if always live
}

// retLoc locates a function's result variable in its frame.
type retLoc struct {
	kind  vkind
	space snapSpace // ssScal / ssPtr / ssArr / ssDrvF... reuse addressing
	reg   int32
}

// proc is one compiled subprogram specialization.
type proc struct {
	id       int
	module   string
	modIdx   int32
	name     string
	fullName string // module::name, the Trace/KernelWatch identity
	isFunc   bool

	code []instr

	nScal, nPtr, nArr, nDrv, nInt, nTouch int

	// ownArr lists frame-owned (arena-backed) array registers; zeroArr
	// marks the subset that must be zeroed per activation (declared
	// local arrays — scratch temporaries are always written before
	// read and by-value arguments are overwritten at bind); ownDrv
	// lists frame-owned derived registers with their layouts.
	ownArr  []int32
	zeroArr []int32
	ownDrv  []struct {
		reg int32
		dt  *dtype
	}

	// argBind maps positional arguments onto frame slots.
	argBind []argSlot

	ret   retLoc
	retDt *dtype
	snap  []snapEntry
}

// argSlot is where a callee binds argument i.
type argSlot struct {
	mode byte // 'u' unbound, 's' ptr, 'S' scal, 'a'/'A' arr, 'd'/'D' drv
	reg  int32
}

// moduleSnap is the SnapshotModuleVars metadata for one module.
type moduleSnap struct {
	entries []snapEntry
}

// Program is an immutable compiled FortLite program, safe for
// concurrent NewVM use. It is the Session's cached build artifact:
// model.Runner compiles it once per source fingerprint and every
// ensemble member runs it on a fresh VM.
type Program struct {
	modules   []string
	moduleIdx map[string]int

	nGScal int
	nGArr  int
	gdrvs  []*dtype // layout per global derived cell

	// Module-level initialization resolved at compile time.
	scalInit []struct {
		idx int32
		val float64
	}
	arrInit []struct {
		idx int32
		val float64
	}

	consts []float64
	labels []string
	errs   []error
	calls  []*callSite
	procs  []*proc

	// entries maps "module::name" to the zero-argument specialization
	// the driver's Call resolves to.
	entries map[string]*proc

	// moduleVars resolves ModuleArray lookups: module → name → gref.
	moduleVars map[string]map[string]gref

	snapModules []moduleSnap

	// initErr is the construction failure the tree walker's NewMachine
	// would report (duplicate modules, bad module-level initializers,
	// unknown derived types); NewVM returns it.
	initErr error

	// pools recycle activation frames per proc across every VM of this
	// program — an ensemble's members run the same procs over and over,
	// and a frame is fully reset (or rebound) before any use.
	pools []sync.Pool
}

// Errors returns program construction state — nil when the program is
// runnable.
func (p *Program) Err() error { return p.initErr }

func (p *Program) moduleOf(name string) (int, bool) {
	i, ok := p.moduleIdx[name]
	return i, ok
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("bytecode: "+format, args...)
}
