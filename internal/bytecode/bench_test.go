package bytecode

import (
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
)

// The VM-level counterparts of interp's BenchmarkInterpreterStep*:
// identical source, identical configuration, so engine-level speedups
// are tracked independently of the pipeline.
const benchSrc = `
module bench
  real :: a(:), c(:), acc(:)
contains
  subroutine init()
    integer :: i
    do i = 1, size(a)
      a(i) = 0.001 * i
      c(i) = 1.0 - 0.0001 * i
    end do
    acc = 0.0
  end subroutine
  subroutine step()
    integer :: k
    do k = 1, 50
      acc = a * c + acc * 0.999
      acc = max(0.0, min(10.0, acc)) + sqrt(abs(a)) * 0.01
    end do
  end subroutine
end module
`

func benchVM(b *testing.B, fma bool) *VM {
	b.Helper()
	mods, err := fortran.ParseFile(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	var fmaFn func(string) bool
	if fma {
		fmaFn = func(string) bool { return true }
	}
	prog := Compile(mods)
	vm, err := prog.NewVM(interp.Config{Ncol: 64, FMA: fmaFn})
	if err != nil {
		b.Fatal(err)
	}
	if err := vm.Call("bench", "init"); err != nil {
		b.Fatal(err)
	}
	return vm
}

func BenchmarkVMStep(b *testing.B) {
	vm := benchVM(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Call("bench", "step"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMStepFMA(b *testing.B) {
	vm := benchVM(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Call("bench", "step"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMCompile tracks the compile cost amortized by the
// Session's program cache.
func BenchmarkVMCompile(b *testing.B) {
	mods, err := fortran.ParseFile(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := Compile(mods); p.Err() != nil {
			b.Fatal(p.Err())
		}
	}
}
