package bytecode

import "math"

// exec runs one proc's code against its frame. Jump targets are
// absolute; opRet (or falling off the end) returns.
func (vm *VM) exec(p *proc, fr *frame) error {
	code := p.code
	scal := fr.scal
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		switch in.op {
		case opNop:
		case opJmp:
			pc = int(in.b)
			continue
		case opJZ:
			if scal[in.a] == 0 {
				pc = int(in.b)
				continue
			}
		case opAnyV:
			v := 0.0
			for _, x := range fr.arr[in.a] {
				if x != 0 {
					v = 1
					break
				}
			}
			scal[in.d] = v
		case opRet:
			return nil
		case opErr:
			return vm.prog.errs[in.a]
		case opBrNoFMA:
			if !vm.fma[p.modIdx] {
				pc = int(in.b)
				continue
			}

		case opConst:
			scal[in.d] = vm.prog.consts[in.a]
		case opMovS:
			scal[in.d] = scal[in.a]
		case opLoadG:
			scal[in.d] = vm.gscal[in.a]
		case opStoreG:
			vm.gscal[in.d] = scal[in.a]
		case opLoadP:
			scal[in.d] = *fr.ptrs[in.a]
		case opStoreP:
			*fr.ptrs[in.d] = scal[in.a]
		case opLoadDF:
			scal[in.d] = fr.drv[in.a].scal[in.b]
		case opStoreDF:
			fr.drv[in.d].scal[in.b] = scal[in.a]
		case opLoadDF0:
			scal[in.d] = fr.drv[in.a].f
		case opStoreDF0:
			fr.drv[in.d].f = scal[in.a]
		case opBindG:
			fr.arr[in.d] = vm.garr[in.a]
		case opBindGD:
			fr.drv[in.d] = vm.gdrv[in.a]
		case opBindDF:
			fr.arr[in.d] = fr.drv[in.a].arr[in.b]
		case opIdx:
			idx := int(scal[in.b]) - 1
			a := fr.arr[in.a]
			if idx < 0 || idx >= len(a) {
				return errf("index %d out of bounds [1,%d] on %s", idx+1, len(a), vm.prog.labels[in.e])
			}
			fr.ints[in.d] = int64(idx)
		case opLoadElem:
			scal[in.d] = fr.arr[in.a][fr.ints[in.b]]
		case opStoreElem:
			fr.arr[in.a][fr.ints[in.b]] = scal[in.c]
		case opBroadV:
			v := scal[in.a]
			out := fr.arr[in.d]
			for i := range out {
				out[i] = v
			}
		case opCopyV:
			copy(fr.arr[in.d], fr.arr[in.a])
		case opCollapse:
			scal[in.d] = fr.arr[in.a][0]

		case opAddS:
			scal[in.d] = scal[in.a] + scal[in.b]
		case opSubS:
			scal[in.d] = scal[in.a] - scal[in.b]
		case opMulS:
			scal[in.d] = scal[in.a] * scal[in.b]
		case opDivS:
			scal[in.d] = scal[in.a] / scal[in.b]
		case opPowS:
			scal[in.d] = math.Pow(scal[in.a], scal[in.b])
		case opEqS:
			scal[in.d] = b2f(scal[in.a] == scal[in.b])
		case opNeS:
			scal[in.d] = b2f(scal[in.a] != scal[in.b])
		case opLtS:
			scal[in.d] = b2f(scal[in.a] < scal[in.b])
		case opLeS:
			scal[in.d] = b2f(scal[in.a] <= scal[in.b])
		case opGtS:
			scal[in.d] = b2f(scal[in.a] > scal[in.b])
		case opGeS:
			scal[in.d] = b2f(scal[in.a] >= scal[in.b])
		case opAndS:
			scal[in.d] = b2f(scal[in.a] != 0 && scal[in.b] != 0)
		case opOrS:
			scal[in.d] = b2f(scal[in.a] != 0 || scal[in.b] != 0)
		case opModS:
			scal[in.d] = math.Mod(scal[in.a], scal[in.b])
		case opSignS:
			scal[in.d] = math.Copysign(scal[in.a], scal[in.b])
		case opMinS:
			scal[in.d] = math.Min(scal[in.a], scal[in.b])
		case opMaxS:
			scal[in.d] = math.Max(scal[in.a], scal[in.b])
		case opNegS:
			scal[in.d] = -scal[in.a]
		case opNotS:
			scal[in.d] = b2f(scal[in.a] == 0)
		case opAbsS:
			scal[in.d] = math.Abs(scal[in.a])
		case opSqrtS:
			scal[in.d] = math.Sqrt(scal[in.a])
		case opExpS:
			scal[in.d] = math.Exp(scal[in.a])
		case opLogS:
			scal[in.d] = math.Log(scal[in.a])
		case opFloorS:
			scal[in.d] = math.Floor(scal[in.a])
		case opFMAS:
			a, c := scal[in.a], scal[in.c]
			if in.e&1 != 0 {
				a = -a
			}
			if in.e&2 != 0 {
				c = -c
			}
			scal[in.d] = math.FMA(a, scal[in.b], c)

		case opAddV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = a[i] + b[i]
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = a[i] + s
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = s + b[i]
				}
			}
		case opSubV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = a[i] - b[i]
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = a[i] - s
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = s - b[i]
				}
			}
		case opMulV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = a[i] * b[i]
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = a[i] * s
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = s * b[i]
				}
			}
		case opDivV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = a[i] / b[i]
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = a[i] / s
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = s / b[i]
				}
			}
		case opMinV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = math.Min(a[i], b[i])
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = math.Min(a[i], s)
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = math.Min(s, b[i])
				}
			}
		case opMaxV:
			out := fr.arr[in.d]
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = math.Max(a[i], b[i])
				}
			case 1:
				a, s := fr.arr[in.a], scal[in.b]
				for i := range out {
					out[i] = math.Max(a[i], s)
				}
			default:
				s, b := scal[in.a], fr.arr[in.b]
				for i := range out {
					out[i] = math.Max(s, b[i])
				}
			}
		case opPowV, opEqV, opNeV, opLtV, opLeV, opGtV, opGeV, opAndV, opOrV, opModV, opSignV:
			vm.slowBinV(in, fr)
		case opNegV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = -a[i]
			}
		case opNotV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = b2f(a[i] == 0)
			}
		case opAbsV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = math.Abs(a[i])
			}
		case opSqrtV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = math.Sqrt(a[i])
			}
		case opExpV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = math.Exp(a[i])
			}
		case opLogV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = math.Log(a[i])
			}
		case opFloorV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			for i := range out {
				out[i] = math.Floor(a[i])
			}
		case opFMAV:
			out := fr.arr[in.d]
			var av, bv, cv []float64
			var af, bf, cf float64
			if in.e&4 != 0 {
				av = fr.arr[in.a]
			} else {
				af = scal[in.a]
			}
			if in.e&8 != 0 {
				bv = fr.arr[in.b]
			} else {
				bf = scal[in.b]
			}
			if in.e&16 != 0 {
				cv = fr.arr[in.c]
			} else {
				cf = scal[in.c]
			}
			sa, sc := 1.0, 1.0
			if in.e&1 != 0 {
				sa = -1
			}
			if in.e&2 != 0 {
				sc = -1
			}
			for i := range out {
				x, y, z := af, bf, cf
				if av != nil {
					x = av[i]
				}
				if bv != nil {
					y = bv[i]
				}
				if cv != nil {
					z = cv[i]
				}
				out[i] = math.FMA(sa*x, y, sc*z)
			}
		case opSumV:
			var s float64
			for _, x := range fr.arr[in.a] {
				s += x
			}
			scal[in.d] = s
		case opNcol:
			scal[in.d] = float64(vm.ncol)
		case opShiftV:
			out, src := fr.arr[in.d], fr.arr[in.a]
			n := len(src)
			k := int(scal[in.b]) % n
			if k < 0 {
				k += n
			}
			// out[i] = src[(i+k)%n], as two straight copies.
			copy(out, src[k:])
			copy(out[n-k:], src[:k])

		case opRandS:
			scal[in.d] = vm.rng.Float64()
		case opRandV:
			out := fr.arr[in.d]
			for i := range out {
				out[i] = vm.rng.Float64()
			}
		case opOutS:
			lbl := vm.prog.labels[in.a]
			if dst, ok := vm.Outputs[lbl]; ok && len(dst) == 1 {
				dst[0] = scal[in.b]
			} else {
				vm.Outputs[lbl] = []float64{scal[in.b]}
			}
		case opOutV:
			lbl := vm.prog.labels[in.a]
			src := fr.arr[in.b]
			if dst, ok := vm.Outputs[lbl]; ok && len(dst) == len(src) {
				copy(dst, src)
			} else {
				vm.Outputs[lbl] = append([]float64(nil), src...)
			}
		case opTouch:
			fr.touched[in.a] = true

		case opLoopInit:
			fr.ints[in.d] = int64(int(scal[in.a]))
			fr.ints[in.d+1] = int64(int(scal[in.b]))
		case opLoopCond:
			if fr.ints[in.a] > fr.ints[in.a+1] {
				pc = int(in.b)
				continue
			}
			scal[in.d] = float64(fr.ints[in.a])
		case opLoopInc:
			fr.ints[in.a]++
			pc = int(in.b)
			continue

		case opCallSub:
			cs := vm.prog.calls[in.a]
			cf, err := vm.callSiteInvoke(cs, fr)
			if cf != nil {
				vm.putFrame(cs.proc, cf)
			}
			if err != nil {
				return err
			}
		case opCallFunS:
			cs := vm.prog.calls[in.a]
			cf, err := vm.callSiteInvoke(cs, fr)
			if err != nil {
				if cf != nil {
					vm.putFrame(cs.proc, cf)
				}
				return err
			}
			scal[in.d] = vm.retScal(cs.proc, cf)
			vm.putFrame(cs.proc, cf)
		case opCallFunV:
			cs := vm.prog.calls[in.a]
			cf, err := vm.callSiteInvoke(cs, fr)
			if err != nil {
				if cf != nil {
					vm.putFrame(cs.proc, cf)
				}
				return err
			}
			copy(fr.arr[in.d], cf.arr[cs.proc.ret.reg])
			vm.putFrame(cs.proc, cf)
		case opCallFunD:
			cs := vm.prog.calls[in.a]
			cf, err := vm.callSiteInvoke(cs, fr)
			if err != nil {
				if cf != nil {
					vm.putFrame(cs.proc, cf)
				}
				return err
			}
			cloneDval(fr.drv[in.d], cf.drv[cs.proc.ret.reg])
			vm.putFrame(cs.proc, cf)
		case opCallElem:
			if err := vm.elemBroadcast(vm.prog.calls[in.a], fr, fr.arr[in.d]); err != nil {
				return err
			}

		default:
			return errf("bad opcode %d", in.op)
		}
		pc++
	}
	return nil
}

// slowBinV covers the colder elementwise binaries with one generic
// loop body per op.
func (vm *VM) slowBinV(in *instr, fr *frame) {
	var fn func(a, b float64) float64
	switch in.op {
	case opPowV:
		fn = math.Pow
	case opEqV:
		fn = func(a, b float64) float64 { return b2f(a == b) }
	case opNeV:
		fn = func(a, b float64) float64 { return b2f(a != b) }
	case opLtV:
		fn = func(a, b float64) float64 { return b2f(a < b) }
	case opLeV:
		fn = func(a, b float64) float64 { return b2f(a <= b) }
	case opGtV:
		fn = func(a, b float64) float64 { return b2f(a > b) }
	case opGeV:
		fn = func(a, b float64) float64 { return b2f(a >= b) }
	case opAndV:
		fn = func(a, b float64) float64 { return b2f(a != 0 && b != 0) }
	case opOrV:
		fn = func(a, b float64) float64 { return b2f(a != 0 || b != 0) }
	case opModV:
		fn = math.Mod
	case opSignV:
		fn = math.Copysign
	}
	out := fr.arr[in.d]
	switch in.e {
	case 0:
		a, b := fr.arr[in.a], fr.arr[in.b]
		for i := range out {
			out[i] = fn(a[i], b[i])
		}
	case 1:
		a, s := fr.arr[in.a], fr.scal[in.b]
		for i := range out {
			out[i] = fn(a[i], s)
		}
	default:
		s, b := fr.scal[in.a], fr.arr[in.b]
		for i := range out {
			out[i] = fn(s, b[i])
		}
	}
}

// elemBroadcast invokes an elemental function once per column, binding
// scalar views read live per column, exactly as callFunction's
// broadcast loop does.
func (vm *VM) elemBroadcast(cs *callSite, caller *frame, out []float64) error {
	p := cs.proc
	for col := 0; col < vm.ncol; col++ {
		if vm.depth >= maxDepth {
			return errf("call depth exceeded at %s", p.fullName)
		}
		vm.depth++
		if vm.trace != nil {
			vm.trace(p.module, p.name)
		}
		fr := vm.getFrame(p)
		for ai, ea := range cs.elem {
			if ai >= len(p.argBind) {
				break
			}
			slot := p.argBind[ai]
			if slot.mode == 'u' {
				continue
			}
			var v float64
			switch ea.space {
			case esTempS:
				v = caller.scal[ea.a]
			case esGlobS:
				v = vm.gscal[ea.a]
			case esPtrS:
				v = *caller.ptrs[ea.a]
			case esFieldS:
				v = caller.drv[ea.a].scal[ea.b]
			case esDrvF:
				v = caller.drv[ea.a].f
			case esArr:
				v = caller.arr[ea.a][col]
			}
			fr.scal[slot.reg] = v
		}
		err := vm.exec(p, fr)
		vm.exitSnapshots(p, fr)
		vm.depth--
		if err != nil {
			vm.putFrame(p, fr)
			return err
		}
		out[col] = vm.retScal(p, fr)
		vm.putFrame(p, fr)
	}
	return nil
}
