package bytecode

import "github.com/climate-rca/rca/internal/fortran"

// okind classifies an operand's location. Whole-variable references
// stay "deferred" (oVarS/oGlobS/oPtrS/oFieldS): their loads are emitted
// when the consuming operation is, reproducing the walker's live-cell
// reads at zip time. Temporaries (oTempS) are values materialized at
// the position the walker would allocate a fresh Value.
type okind uint8

const (
	oNone okind = iota
	oTempS
	oVarS
	oConst
	oGlobS
	oPtrS
	oFieldS // reg = derived frame reg, f = scalar field slot
	oArr    // reg = frame array reg
	oDrv    // reg = frame derived reg
)

type opnd struct {
	kind      vkind
	ok        okind
	reg, f    int32
	cidx      int32
	dt        *dtype
	sTmp      bool
	aOwnTmp   bool
	aAliasTmp bool
	dAliasTmp bool
}

func errOpnd() opnd { return opnd{kind: kErr} }

func (f *pcomp) release(o opnd) {
	if o.sTmp {
		f.freeSReg(o.reg)
	}
	if o.aOwnTmp {
		f.freeAOwnReg(o.reg)
	}
	if o.aAliasTmp {
		f.freeAAliasReg(o.reg)
	}
	if o.dAliasTmp {
		f.freeDAliasReg(o.reg)
	}
}

// matS materializes a scalar operand into an S register, emitting the
// deferred load at the call site (i.e. at consumption time).
func (f *pcomp) matS(o opnd) opnd {
	switch o.ok {
	case oTempS, oVarS:
		return o
	case oConst:
		t := f.allocS()
		f.emit(instr{op: opConst, d: t, a: o.cidx})
		return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	case oGlobS:
		t := f.allocS()
		f.emit(instr{op: opLoadG, d: t, a: o.reg})
		return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	case oPtrS:
		t := f.allocS()
		f.emit(instr{op: opLoadP, d: t, a: o.reg})
		return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	case oFieldS:
		t := f.allocS()
		f.emit(instr{op: opLoadDF, d: t, a: o.reg, b: o.f})
		if o.dAliasTmp {
			f.freeDAliasReg(o.reg)
		}
		return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	}
	panic("bytecode: matS on non-scalar operand")
}

// matSF is matS extended with the walker's at() phantom read on
// derived values (v.F, i.e. dval.f).
func (f *pcomp) matSF(o opnd) opnd {
	if o.kind == kDrv {
		t := f.allocS()
		f.emit(instr{op: opLoadDF0, d: t, a: o.reg})
		if o.dAliasTmp {
			f.freeDAliasReg(o.reg)
		}
		return opnd{kind: kScal, ok: oTempS, reg: t, sTmp: true}
	}
	return f.matS(o)
}

// dst is an optional destination hint applied only to the final
// operation of a right-hand side (element-local writes make in-place
// targets safe there and only there).
type dst struct {
	ok   bool
	kind vkind
	reg  int32
}

func (f *pcomp) pickS(d dst) opnd {
	if d.ok && d.kind == kScal {
		return opnd{kind: kScal, ok: oVarS, reg: d.reg}
	}
	return opnd{kind: kScal, ok: oTempS, reg: f.allocS(), sTmp: true}
}

func (f *pcomp) pickA(d dst) opnd {
	if d.ok && d.kind == kArr {
		return opnd{kind: kArr, ok: oArr, reg: d.reg}
	}
	return opnd{kind: kArr, ok: oArr, reg: f.allocAOwn(), aOwnTmp: true}
}

func (f *pcomp) tmpA() opnd {
	return opnd{kind: kArr, ok: oArr, reg: f.allocAOwn(), aOwnTmp: true}
}

func (f *pcomp) emitErr(format string, args ...interface{}) opnd {
	f.emit(instr{op: opErr, a: f.c.errIdx(format, args...)})
	return errOpnd()
}

var binOpS = map[fortran.Kind]opcode{
	fortran.PLUS: opAddS, fortran.MINUS: opSubS, fortran.STAR: opMulS,
	fortran.SLASH: opDivS, fortran.POW: opPowS, fortran.EQ: opEqS,
	fortran.NE: opNeS, fortran.LT: opLtS, fortran.LE: opLeS,
	fortran.GT: opGtS, fortran.GE: opGeS, fortran.AND: opAndS,
	fortran.OR: opOrS,
}

var binOpV = map[fortran.Kind]opcode{
	fortran.PLUS: opAddV, fortran.MINUS: opSubV, fortran.STAR: opMulV,
	fortran.SLASH: opDivV, fortran.POW: opPowV, fortran.EQ: opEqV,
	fortran.NE: opNeV, fortran.LT: opLtV, fortran.LE: opLeV,
	fortran.GT: opGtV, fortran.GE: opGeV, fortran.AND: opAndV,
	fortran.OR: opOrV,
}

func (f *pcomp) expr(e fortran.Expr) opnd { return f.exprD(e, dst{}) }

func (f *pcomp) exprD(e fortran.Expr, d dst) opnd {
	switch x := e.(type) {
	case *fortran.NumLit:
		return opnd{kind: kScal, ok: oConst, cidx: f.c.constant(x.Value)}
	case *fortran.StrLit:
		return opnd{kind: kScal, ok: oConst, cidx: f.c.constant(0)}
	case *fortran.UnaryExpr:
		return f.unary(x, d)
	case *fortran.BinaryExpr:
		return f.binary(x, d)
	case *fortran.Ref:
		return f.ref(x, d)
	}
	return f.emitErr("unknown expression %T", e)
}

func (f *pcomp) unary(x *fortran.UnaryExpr, d dst) opnd {
	o := f.expr(x.X)
	switch o.kind {
	case kErr:
		return o
	case kDrv:
		f.release(o)
		return f.emitErr("unary op on derived value")
	case kScal:
		om := f.matS(o)
		rd := f.pickS(d)
		op := opNegS
		if x.Op == fortran.NOT {
			op = opNotS
		}
		f.emit(instr{op: op, d: rd.reg, a: om.reg})
		f.release(om)
		return rd
	default:
		rd := f.pickA(d)
		op := opNegV
		if x.Op == fortran.NOT {
			op = opNotV
		}
		f.emit(instr{op: op, d: rd.reg, a: o.reg})
		f.release(o)
		return rd
	}
}

// binary mirrors evalBinary, including its FMA pattern precedence:
// a*b±c fuses via the left operand first; under PLUS, c+a*b fuses via
// the right; under MINUS, c-a*b fuses as FMA(-a, b, c).
func (f *pcomp) binary(b *fortran.BinaryExpr, d dst) opnd {
	if b.Op == fortran.PLUS || b.Op == fortran.MINUS {
		if mul, ok := b.L.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
			return f.fmaNode(b, mul.L, mul.R, b.R, b.Op == fortran.MINUS, false, d)
		}
		if b.Op == fortran.PLUS {
			if mul, ok := b.R.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
				return f.fmaNode(b, mul.L, mul.R, b.L, false, false, d)
			}
		} else if mul, ok := b.R.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
			return f.fmaNode(b, mul.L, mul.R, b.L, false, true, d)
		}
	}
	return f.plainBinary(b, d)
}

func (f *pcomp) plainBinary(b *fortran.BinaryExpr, d dst) opnd {
	lo := f.expr(b.L)
	if lo.kind == kErr {
		return lo
	}
	ro := f.expr(b.R)
	if ro.kind == kErr {
		f.release(lo)
		return ro
	}
	if lo.kind == kDrv || ro.kind == kDrv {
		f.release(lo)
		f.release(ro)
		return f.emitErr("arithmetic on derived value")
	}
	if lo.kind == kScal && ro.kind == kScal {
		lm := f.matS(lo)
		rm := f.matS(ro)
		rd := f.pickS(d)
		f.emit(instr{op: binOpS[b.Op], d: rd.reg, a: lm.reg, b: rm.reg})
		f.release(lm)
		f.release(rm)
		return rd
	}
	rd := f.pickA(d)
	switch {
	case lo.kind == kArr && ro.kind == kArr:
		f.emit(instr{op: binOpV[b.Op], d: rd.reg, a: lo.reg, b: ro.reg, e: 0})
		f.release(lo)
		f.release(ro)
	case lo.kind == kArr:
		rm := f.matS(ro)
		f.emit(instr{op: binOpV[b.Op], d: rd.reg, a: lo.reg, b: rm.reg, e: 1})
		f.release(lo)
		f.release(rm)
	default:
		lm := f.matS(lo)
		f.emit(instr{op: binOpV[b.Op], d: rd.reg, a: lm.reg, b: ro.reg, e: 2})
		f.release(lm)
		f.release(ro)
	}
	return rd
}

// fmaNode compiles both evaluation orders of an FMA-fusable pattern
// behind a per-module runtime branch: the fused path evaluates a, b, c
// and applies math.FMA; the unfused path is the ordinary binary
// evaluation. The tree walker picks between these at every node per
// cfg.FMA(module); the VM picks per compiled branch flag.
func (f *pcomp) fmaNode(whole *fortran.BinaryExpr, ae, be, ce fortran.Expr, negC, negA bool, d dst) opnd {
	ak, _ := f.kindOf(ae)
	bk, _ := f.kindOf(be)
	ck, _ := f.kindOf(ce)
	fk := kScal
	switch {
	case ak == kErr || bk == kErr || ck == kErr:
		fk = kErr
	case ak == kArr || bk == kArr || ck == kArr:
		fk = kArr
	}
	uk := f.plainKind(whole)
	rk := fk
	if rk == kErr {
		rk = uk
	}
	if rk == kErr {
		// Both paths fail at runtime; compile them faithfully anyway.
		br := f.emit(instr{op: opBrNoFMA})
		f.fusedPath(ae, be, ce, negC, negA, opnd{}, kErr)
		f.code[br].b = int32(len(f.code))
		f.plainBinary(whole, dst{})
		return errOpnd()
	}
	var rd opnd
	if rk == kScal {
		rd = f.pickS(d)
	} else {
		rd = f.pickA(d)
	}
	br := f.emit(instr{op: opBrNoFMA})
	completed := f.fusedPath(ae, be, ce, negC, negA, rd, rk)
	jend := -1
	if completed {
		jend = f.emit(instr{op: opJmp})
	}
	f.code[br].b = int32(len(f.code))
	f.plainBinary(whole, dst{ok: true, kind: rk, reg: rd.reg})
	if jend >= 0 {
		f.code[jend].b = int32(len(f.code))
	}
	return rd
}

// plainKind is kindOf for the non-fused evaluation of a binary node.
func (f *pcomp) plainKind(b *fortran.BinaryExpr) vkind {
	lk, _ := f.kindOf(b.L)
	rk, _ := f.kindOf(b.R)
	if lk == kErr || rk == kErr || lk == kDrv || rk == kDrv {
		return kErr
	}
	if lk == kArr || rk == kArr {
		return kArr
	}
	return kScal
}

// fusedPath emits the a,b,c evaluation and the FMA op; returns false
// when the path ends in a guaranteed runtime error.
func (f *pcomp) fusedPath(ae, be, ce fortran.Expr, negC, negA bool, rd opnd, rk vkind) bool {
	oa := f.expr(ae)
	if oa.kind == kErr {
		return false
	}
	ob := f.expr(be)
	if ob.kind == kErr {
		f.release(oa)
		return false
	}
	oc := f.expr(ce)
	if oc.kind == kErr {
		f.release(oa)
		f.release(ob)
		return false
	}
	var signs int32
	if negA {
		signs |= 1
	}
	if negC {
		signs |= 2
	}
	if rk == kScal {
		am := f.matSF(oa)
		bm := f.matSF(ob)
		cm := f.matSF(oc)
		f.emit(instr{op: opFMAS, d: rd.reg, a: am.reg, b: bm.reg, c: cm.reg, e: signs})
		f.release(am)
		f.release(bm)
		f.release(cm)
		return true
	}
	e := signs
	var rel []opnd
	prep := func(o opnd, bit int32) int32 {
		if o.kind == kArr {
			e |= 1 << (2 + bit)
			rel = append(rel, o)
			return o.reg
		}
		m := f.matSF(o)
		rel = append(rel, m)
		return m.reg
	}
	ar := prep(oa, 0)
	br := prep(ob, 1)
	cr := prep(oc, 2)
	f.emit(instr{op: opFMAV, d: rd.reg, a: ar, b: br, c: cr, e: e})
	for _, o := range rel {
		f.release(o)
	}
	return true
}
