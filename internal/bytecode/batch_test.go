package bytecode

import (
	"fmt"
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/interp"
	"github.com/climate-rca/rca/internal/rng"
)

// compareLane asserts one lane's capture maps are bit-identical to a
// solo run's.
func compareLane(t *testing.T, lane int, solo, batch *interp.Results, src string) {
	t.Helper()
	for label, pair := range map[string][2]map[string][]float64{
		"Outputs":   {solo.Outputs, batch.Outputs},
		"Kernel":    {solo.Kernel, batch.Kernel},
		"AllValues": {solo.AllValues, batch.AllValues},
	} {
		want, got := pair[0], pair[1]
		if len(want) != len(got) {
			t.Fatalf("lane %d %s: key counts differ (%d vs %d)\n%s", lane, label, len(want), len(got), src)
		}
		for k, wv := range want {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("lane %d %s: key %q missing from batch\n%s", lane, label, k, src)
			}
			if len(wv) != len(gv) {
				t.Fatalf("lane %d %s[%s]: lengths differ\n%s", lane, label, k, src)
			}
			for i := range wv {
				if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
					t.Fatalf("lane %d %s[%s][%d]: solo=%x batch=%x\n%s",
						lane, label, k, i, math.Float64bits(wv[i]), math.Float64bits(gv[i]), src)
				}
			}
		}
	}
}

// FuzzBatchVsSolo generates FortLite programs and runs them on N solo
// VMs and one N-lane BatchVM with per-lane PRNG seeds. Distinct seeds
// drive the data-dependent branches apart, so the group-splitting
// divergence machinery is exercised continuously; every lane must stay
// bit-identical to its solo run — the same contract FuzzBytecodeVsTree
// pins between the solo VM and the tree walker.
func FuzzBatchVsSolo(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("fma patterns and shifts everywhere, please"))
	f.Add([]byte{0xff, 0x00, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01,
		0xaa, 0x55, 0xcc, 0x33, 0x99, 0x66, 0xf0, 0x0f, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &progGen{data: data}
		fmaMode := g.pick(3)
		lanes := 2 + g.pick(7) // 2..8
		src := g.source()
		mods, err := fortran.ParseFile(src)
		if err != nil {
			t.Fatalf("generator produced unparsable source: %v\n%s", err, src)
		}
		mk := func() interp.Config {
			var fma func(string) bool
			switch fmaMode {
			case 1:
				fma = func(string) bool { return true }
			case 2:
				fma = func(m string) bool { return m == "fz" }
			}
			return interp.Config{Ncol: 6, SnapshotAll: true, KernelWatch: "fz::main", FMA: fma}
		}
		prog := Compile(mods)

		// Solo reference runs, one VM per lane seed.
		soloErrs := make([]error, lanes)
		soloRes := make([]*interp.Results, lanes)
		for l := 0; l < lanes; l++ {
			cfg := mk()
			cfg.RNG = rng.NewKISS(uint64(100 + l))
			vm, err := prog.NewVM(cfg)
			if err != nil {
				t.Fatalf("solo NewVM: %v\n%s", err, src)
			}
			for _, call := range [][2]string{{"fz", "fzinit"}, {"fz", "main"}} {
				if err := vm.Call(call[0], call[1]); err != nil {
					soloErrs[l] = err
					break
				}
			}
			if soloErrs[l] == nil {
				vm.SnapshotModuleVars()
			}
			soloRes[l] = vm.Captured()
		}

		// One batched run over the same per-lane seeds.
		rngs := make([]rng.Source, lanes)
		for l := range rngs {
			rngs[l] = rng.NewKISS(uint64(100 + l))
		}
		bvm, err := prog.NewBatchVM(mk(), rngs)
		if err != nil {
			t.Fatalf("NewBatchVM: %v\n%s", err, src)
		}
		bvm.CallAll("fz", "fzinit")
		bvm.CallAll("fz", "main")
		bvm.SnapshotModuleVarsAll()

		for l := 0; l < lanes; l++ {
			berr := bvm.LaneErrs()[l]
			if (soloErrs[l] == nil) != (berr == nil) {
				t.Fatalf("lane %d error disagreement: solo=%v batch=%v\n%s", l, soloErrs[l], berr, src)
			}
			if soloErrs[l] != nil {
				if soloErrs[l].Error() != berr.Error() {
					t.Fatalf("lane %d error text: solo=%q batch=%q\n%s", l, soloErrs[l], berr, src)
				}
				continue
			}
			compareLane(t, l, soloRes[l], bvm.LaneResults(l), src)
		}
	})
}

// TestBatchLaneRetirement pins per-lane error retirement: a
// data-dependent out-of-bounds index must retire exactly the lanes a
// solo run would abort, with identical error text, while surviving
// lanes keep running bit-identically.
func TestBatchLaneRetirement(t *testing.T) {
	src := `module fz
  real :: a0(:), a1(:)
  real :: s0
contains
  subroutine fzinit()
    integer :: i
    do i = 1, size(a0)
      a1(i) = 0.5 * i
    end do
  end subroutine
  subroutine main()
    real :: x
    call random_number(a0)
    x = floor(a0(1) * 12.0) + 1.0
    s0 = a1(x)
    a1 = a1 + s0
    call outfld('F0', a1)
  end subroutine
end module fz
`
	mods, err := fortran.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog := Compile(mods)
	const lanes = 8
	cfg := interp.Config{Ncol: 6, SnapshotAll: true}

	soloErrs := make([]error, lanes)
	soloRes := make([]*interp.Results, lanes)
	for l := 0; l < lanes; l++ {
		c := cfg
		c.RNG = rng.NewKISS(uint64(1 + l))
		vm, err := prog.NewVM(c)
		if err != nil {
			t.Fatalf("NewVM: %v", err)
		}
		for _, call := range [][2]string{{"fz", "fzinit"}, {"fz", "main"}} {
			if err := vm.Call(call[0], call[1]); err != nil {
				soloErrs[l] = err
				break
			}
		}
		if soloErrs[l] == nil {
			vm.SnapshotModuleVars()
		}
		soloRes[l] = vm.Captured()
	}

	rngs := make([]rng.Source, lanes)
	for l := range rngs {
		rngs[l] = rng.NewKISS(uint64(1 + l))
	}
	bvm, err := prog.NewBatchVM(cfg, rngs)
	if err != nil {
		t.Fatalf("NewBatchVM: %v", err)
	}
	bvm.CallAll("fz", "fzinit")
	bvm.CallAll("fz", "main")
	bvm.SnapshotModuleVarsAll()

	retired, survived := 0, 0
	for l := 0; l < lanes; l++ {
		berr := bvm.LaneErrs()[l]
		if (soloErrs[l] == nil) != (berr == nil) {
			t.Fatalf("lane %d error disagreement: solo=%v batch=%v", l, soloErrs[l], berr)
		}
		if soloErrs[l] != nil {
			retired++
			if soloErrs[l].Error() != berr.Error() {
				t.Fatalf("lane %d error text: solo=%q batch=%q", l, soloErrs[l], berr)
			}
			continue
		}
		survived++
		compareLane(t, l, soloRes[l], bvm.LaneResults(l), src)
	}
	if retired == 0 || survived == 0 {
		t.Fatalf("want a mix of retired and surviving lanes, got retired=%d survived=%d", retired, survived)
	}
}

// TestBatchLaneArrayPerturbation pins the LaneSlice accessor the model
// layer perturbs through: writing through one lane's strided view must
// be invisible to every other lane and match a solo ModuleArray write.
func TestBatchLaneArrayPerturbation(t *testing.T) {
	src := `module fz
  type cell
    real :: t(:)
  end type
  type(cell) :: st
  real :: w(:)
contains
  subroutine fzinit()
    integer :: i
    do i = 1, size(w)
      w(i) = 1.0 * i
      st%t(i) = 270.0 + i
    end do
  end subroutine
  subroutine main()
    call outfld('T', st%t)
    call outfld('W', w)
  end subroutine
end module fz
`
	mods, err := fortran.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog := Compile(mods)
	const lanes = 3
	cfg := interp.Config{Ncol: 4}

	soloRes := make([]*interp.Results, lanes)
	for l := 0; l < lanes; l++ {
		c := cfg
		c.RNG = rng.NewKISS(7)
		vm, err := prog.NewVM(c)
		if err != nil {
			t.Fatalf("NewVM: %v", err)
		}
		if err := vm.Call("fz", "fzinit"); err != nil {
			t.Fatalf("fzinit: %v", err)
		}
		tt, ok := vm.ModuleArray("fz", "st", "t")
		if !ok {
			t.Fatal("solo ModuleArray state temperature missing")
		}
		for i := range tt {
			tt[i] += float64(l+1) * 0.25
		}
		ww, ok := vm.ModuleArray("fz", "w")
		if !ok {
			t.Fatal("solo ModuleArray w missing")
		}
		for i := range ww {
			ww[i] += float64(l+1) * 0.5
		}
		if err := vm.Call("fz", "main"); err != nil {
			t.Fatalf("main: %v", err)
		}
		soloRes[l] = vm.Captured()
	}

	rngs := make([]rng.Source, lanes)
	for l := range rngs {
		rngs[l] = rng.NewKISS(7)
	}
	bvm, err := prog.NewBatchVM(cfg, rngs)
	if err != nil {
		t.Fatalf("NewBatchVM: %v", err)
	}
	bvm.CallAll("fz", "fzinit")
	for l := 0; l < lanes; l++ {
		ts, ok := bvm.LaneArray(l, "fz", "st", "t")
		if !ok {
			t.Fatal("LaneArray state temperature missing")
		}
		for i := 0; i < ts.Len(); i++ {
			ts.Add(i, float64(l+1)*0.25)
		}
		ws, ok := bvm.LaneArray(l, "fz", "w")
		if !ok {
			t.Fatal("LaneArray w missing")
		}
		if ws.Len() != 4 {
			t.Fatalf("LaneArray w Len = %d, want 4", ws.Len())
		}
		for i := 0; i < ws.Len(); i++ {
			ws.Add(i, float64(l+1)*0.5)
		}
	}
	bvm.CallAll("fz", "main")
	for l := 0; l < lanes; l++ {
		if err := bvm.LaneErrs()[l]; err != nil {
			t.Fatalf("lane %d err: %v", l, err)
		}
		compareLane(t, l, soloRes[l], bvm.LaneResults(l), src)
	}
}

// TestBatchVMConfig pins constructor failure modes.
func TestBatchVMConfig(t *testing.T) {
	mods, err := fortran.ParseFile("module m\n  real :: x\ncontains\n  subroutine init()\n    x = 1.0\n  end subroutine\nend module m\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog := Compile(mods)
	if _, err := prog.NewBatchVM(interp.Config{}, nil); err == nil {
		t.Fatal("want error for zero lanes")
	}
	if _, err := prog.NewBatchVM(interp.Config{Trace: func(string, string) {}},
		[]rng.Source{rng.NewKISS(1)}); err == nil {
		t.Fatal("want error for Trace")
	}
	if _, err := prog.NewBatchVM(interp.Config{}, []rng.Source{nil}); err == nil {
		t.Fatal("want error for nil lane RNG")
	}
	bvm, err := prog.NewBatchVM(interp.Config{}, []rng.Source{rng.NewKISS(1), rng.NewKISS(2)})
	if err != nil {
		t.Fatalf("NewBatchVM: %v", err)
	}
	if bvm.Lanes() != 2 || bvm.Ncol() != 16 {
		t.Fatalf("Lanes=%d Ncol=%d, want 2, 16", bvm.Lanes(), bvm.Ncol())
	}
	errs := bvm.CallAll("m", "missing")
	for l, e := range errs {
		if e == nil {
			t.Fatalf("lane %d: want error for missing subroutine", l)
		}
	}
	_ = fmt.Sprintf("%v", errs[0])
}
