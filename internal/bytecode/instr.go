package bytecode

// The instruction set of the register VM. Each proc specialization
// compiles to a flat []instr over five frame register files — float64
// scalars (S), *float64 indirections for by-reference scalar arguments
// (P), []float64 array bindings (A), *dval derived bindings (D) and
// int64 loop/index registers (I) — plus the VM-level global cell
// stores. Opcodes are grouped by operand shape; the e operand carries
// shape/sign bits where one opcode covers several broadcast forms.
//
// The compiler's contract with the tree-walking oracle is *temporal*:
// a whole-variable reference is a live cell in the walker, read when
// the consuming operation executes, so loads from globals, pointers
// and derived fields are emitted immediately before their consumer —
// after every operand's side-effecting code — while element reads,
// intrinsic reductions and function results materialize eagerly, at
// the position the walker materializes its temporaries.
type opcode uint16

const (
	opNop opcode = iota

	// Control flow. Jump targets are absolute instruction indices.
	opJmp     // jmp b
	opJZ      // if scal[a] == 0: jmp b
	opAnyV    // scal[d] = 1 if any arr[a][i] != 0 else 0
	opRet     // return from proc
	opErr     // return prog.errs[a]
	opBrNoFMA // if !frame fma: jmp b

	// Moves and loads/stores.
	opConst     // scal[d] = consts[a]
	opMovS      // scal[d] = scal[a]
	opLoadG     // scal[d] = gscal[a]
	opStoreG    // gscal[d] = scal[a]
	opLoadP     // scal[d] = *ptrs[a]
	opStoreP    // *ptrs[d] = scal[a]
	opLoadDF    // scal[d] = drv[a].scal[b]
	opStoreDF   // drv[d].scal[b] = scal[a]
	opLoadDF0   // scal[d] = drv[a].f  (the derived cell's phantom scalar)
	opStoreDF0  // drv[d].f = scal[a]
	opBindG     // arr[d] = garr[a]
	opBindGD    // drv[d] = gdrv[a]
	opBindDF    // arr[d] = drv[a].arr[b]
	opIdx       // ints[d] = int(scal[b]) - 1, bounds-checked against arr[a]
	opLoadElem  // scal[d] = arr[a][ints[b]]
	opStoreElem // arr[a][ints[b]] = scal[c]
	opBroadV    // arr[d][i] = scal[a] for all i
	opCopyV     // copy(arr[d], arr[a])
	opCollapse  // scal[d] = arr[a][0]

	// Scalar arithmetic: scal[d] = scal[a] op scal[b].
	opAddS
	opSubS
	opMulS
	opDivS
	opPowS
	opEqS
	opNeS
	opLtS
	opLeS
	opGtS
	opGeS
	opAndS
	opOrS
	opModS
	opSignS
	opMinS
	opMaxS
	// Scalar unary: scal[d] = op scal[a].
	opNegS
	opNotS
	opAbsS
	opSqrtS
	opExpS
	opLogS
	opFloorS
	// scal[d] = FMA(±scal[a], scal[b], ±scal[c]); e bit0 negates a,
	// bit1 negates c.
	opFMAS

	// Array elementwise binary: arr[d][i] = x op y with e selecting the
	// broadcast shape — 0: arr[a] op arr[b]; 1: arr[a] op scal[b];
	// 2: scal[a] op arr[b].
	opAddV
	opSubV
	opMulV
	opDivV
	opPowV
	opEqV
	opNeV
	opLtV
	opLeV
	opGtV
	opGeV
	opAndV
	opOrV
	opModV
	opSignV
	opMinV
	opMaxV
	// Array unary: arr[d][i] = op arr[a][i].
	opNegV
	opNotV
	opAbsV
	opSqrtV
	opExpV
	opLogV
	opFloorV
	// arr[d][i] = FMA(±x_i, y_i, ±z_i); e bit0 negates x, bit1 negates
	// z, bits 2..4 mark a/b/c as arrays (else scalar regs).
	opFMAV
	opSumV   // scal[d] = sum(arr[a])
	opNcol   // scal[d] = float64(ncol)
	opShiftV // arr[d][i] = arr[a][(i+k)%n], k = int(scal[b]) mod n

	// Experiment hooks.
	opRandS // scal[d] = rng.Float64()
	opRandV // arr[d][i] = rng.Float64() in index order
	opOutS  // Outputs[labels[a]] = []float64{scal[b]}
	opOutV  // Outputs[labels[a]] = copy of arr[b]
	opTouch // mark implicit local a as live for snapshots

	// Counted do loops: LoopInit loads int bounds into ints[d],
	// ints[d+1]; LoopCond exits to b when done, else deposits the
	// counter into scal[d]; LoopInc advances ints[a] and jumps to b.
	opLoopInit
	opLoopCond
	opLoopInc

	// Calls: a = call-site index. Fun variants copy the callee's result
	// into scal[d] / arr[d] / drv[d]; Elem broadcasts an elemental
	// function over the columns into arr[d].
	opCallSub
	opCallFunS
	opCallFunV
	opCallFunD
	opCallElem
)

// instr is one instruction. d is conventionally the destination.
type instr struct {
	op            opcode
	a, b, c, d, e int32
}
