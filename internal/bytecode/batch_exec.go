package bytecode

import "math"

// exec runs one proc's code for a sorted group of live lanes starting
// at pc. It returns the lanes that completed the proc (reached opRet
// or fell off the end); lanes that erred retire with vm.errs[l] set
// and are absent from the return.
//
// Divergent conditionals (opJZ, opLoopCond — opBrNoFMA is uniform
// because the FMA configuration is shared) partition the group: the
// jumping subset recurses from the branch target to the end of the
// proc while the staying subset continues in place, and the completed
// subsets are merged sorted on return. Each split strictly shrinks
// the recursing group, so the extra Go-stack depth per activation is
// bounded by the lane count.
func (vm *BatchVM) exec(p *proc, fr *bframe, g []int, pc int) []int {
	code := p.code
	scal := fr.scal
	nl := vm.nl
	ncol := vm.ncol
	var merged []int // lanes completed via recursive branch subgroups
	for pc < len(code) {
		in := &code[pc]
		switch in.op {
		case opNop:
		case opJmp:
			pc = int(in.b)
			continue
		case opJZ:
			base := int(in.a) * nl
			nz := 0
			for _, l := range g {
				if scal[base+l] != 0 {
					nz++
				}
			}
			if nz == 0 {
				pc = int(in.b)
				continue
			}
			if nz != len(g) {
				taken := make([]int, 0, len(g)-nz)
				stay := make([]int, 0, nz)
				for _, l := range g {
					if scal[base+l] == 0 {
						taken = append(taken, l)
					} else {
						stay = append(stay, l)
					}
				}
				merged = append(merged, vm.exec(p, fr, taken, int(in.b))...)
				g = stay
			}
		case opAnyV:
			a := fr.arr[in.a]
			n := len(a) / nl
			dbase := int(in.d) * nl
			for _, l := range g {
				v := 0.0
				for _, x := range a[l*n : l*n+n] {
					if x != 0 {
						v = 1
						break
					}
				}
				scal[dbase+l] = v
			}
		case opRet:
			return mergeDone(g, merged)
		case opErr:
			err := vm.prog.errs[in.a]
			for _, l := range g {
				vm.errs[l] = err
			}
			return mergeDone(nil, merged)
		case opBrNoFMA:
			if !vm.fma[p.modIdx] {
				pc = int(in.b)
				continue
			}

		case opConst:
			v := vm.prog.consts[in.a]
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = v
			}
		case opMovS:
			abase, dbase := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[dbase+l] = scal[abase+l]
			}
		case opLoadG:
			abase, dbase := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[dbase+l] = vm.gscal[abase+l]
			}
		case opStoreG:
			abase, dbase := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				vm.gscal[dbase+l] = scal[abase+l]
			}
		case opLoadP:
			ptr := fr.ptrs[in.a]
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = ptr[l]
			}
		case opStoreP:
			ptr := fr.ptrs[in.d]
			abase := int(in.a) * nl
			for _, l := range g {
				ptr[l] = scal[abase+l]
			}
		case opLoadDF:
			src := fr.drv[in.a].scal
			bbase, dbase := int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[dbase+l] = src[bbase+l]
			}
		case opStoreDF:
			dst := fr.drv[in.d].scal
			abase, bbase := int(in.a)*nl, int(in.b)*nl
			for _, l := range g {
				dst[bbase+l] = scal[abase+l]
			}
		case opLoadDF0:
			f := fr.drv[in.a].f
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = f[l]
			}
		case opStoreDF0:
			f := fr.drv[in.d].f
			abase := int(in.a) * nl
			for _, l := range g {
				f[l] = scal[abase+l]
			}
		case opBindG:
			fr.arr[in.d] = vm.garr[in.a]
		case opBindGD:
			fr.drv[in.d] = vm.gdrv[in.a]
		case opBindDF:
			fr.arr[in.d] = fr.drv[in.a].arr[in.b]
		case opIdx:
			a := fr.arr[in.a]
			alen := len(a) / nl
			bbase, dbase := int(in.b)*nl, int(in.d)*nl
			bad := false
			for _, l := range g {
				idx := int(scal[bbase+l]) - 1
				if idx < 0 || idx >= alen {
					bad = true
					break
				}
			}
			if !bad {
				for _, l := range g {
					fr.ints[dbase+l] = int64(int(scal[bbase+l]) - 1)
				}
			} else {
				ok := make([]int, 0, len(g))
				for _, l := range g {
					idx := int(scal[bbase+l]) - 1
					if idx < 0 || idx >= alen {
						vm.errs[l] = errf("index %d out of bounds [1,%d] on %s", idx+1, alen, vm.prog.labels[in.e])
						continue
					}
					fr.ints[dbase+l] = int64(idx)
					ok = append(ok, l)
				}
				g = ok
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}
		case opLoadElem:
			a := fr.arr[in.a]
			n := len(a) / nl
			bbase, dbase := int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[dbase+l] = a[l*n+int(fr.ints[bbase+l])]
			}
		case opStoreElem:
			a := fr.arr[in.a]
			n := len(a) / nl
			bbase, cbase := int(in.b)*nl, int(in.c)*nl
			for _, l := range g {
				a[l*n+int(fr.ints[bbase+l])] = scal[cbase+l]
			}
		case opBroadV:
			out := fr.arr[in.d]
			n := len(out) / nl
			abase := int(in.a) * nl
			for _, l := range g {
				s := scal[abase+l]
				ob := out[l*n : l*n+n]
				for i := range ob {
					ob[i] = s
				}
			}
		case opCopyV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				copy(out, a)
			} else {
				n := len(out) / nl
				for _, l := range g {
					copy(out[l*n:l*n+n], a[l*n:l*n+n])
				}
			}
		case opCollapse:
			a := fr.arr[in.a]
			n := len(a) / nl
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = a[l*n]
			}

		case opAddS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = scal[ab+l] + scal[bb+l]
			}
		case opSubS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = scal[ab+l] - scal[bb+l]
			}
		case opMulS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = scal[ab+l] * scal[bb+l]
			}
		case opDivS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = scal[ab+l] / scal[bb+l]
			}
		case opPowS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Pow(scal[ab+l], scal[bb+l])
			}
		case opEqS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] == scal[bb+l])
			}
		case opNeS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] != scal[bb+l])
			}
		case opLtS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] < scal[bb+l])
			}
		case opLeS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] <= scal[bb+l])
			}
		case opGtS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] > scal[bb+l])
			}
		case opGeS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] >= scal[bb+l])
			}
		case opAndS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] != 0 && scal[bb+l] != 0)
			}
		case opOrS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] != 0 || scal[bb+l] != 0)
			}
		case opModS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Mod(scal[ab+l], scal[bb+l])
			}
		case opSignS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Copysign(scal[ab+l], scal[bb+l])
			}
		case opMinS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Min(scal[ab+l], scal[bb+l])
			}
		case opMaxS:
			ab, bb, db := int(in.a)*nl, int(in.b)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Max(scal[ab+l], scal[bb+l])
			}
		case opNegS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = -scal[ab+l]
			}
		case opNotS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = b2f(scal[ab+l] == 0)
			}
		case opAbsS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Abs(scal[ab+l])
			}
		case opSqrtS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Sqrt(scal[ab+l])
			}
		case opExpS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Exp(scal[ab+l])
			}
		case opLogS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Log(scal[ab+l])
			}
		case opFloorS:
			ab, db := int(in.a)*nl, int(in.d)*nl
			for _, l := range g {
				scal[db+l] = math.Floor(scal[ab+l])
			}
		case opFMAS:
			ab, bb, cb, db := int(in.a)*nl, int(in.b)*nl, int(in.c)*nl, int(in.d)*nl
			sa, sc := 1.0, 1.0
			if in.e&1 != 0 {
				sa = -1
			}
			if in.e&2 != 0 {
				sc = -1
			}
			for _, l := range g {
				scal[db+l] = math.FMA(sa*scal[ab+l], scal[bb+l], sc*scal[cb+l])
			}

		case opAddV:
			out := fr.arr[in.d]
			n := len(out) / nl
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				if len(g) == nl {
					for i := range out {
						out[i] = a[i] + b[i]
					}
				} else {
					for _, l := range g {
						ob := out[l*n : l*n+n]
						ab := a[l*n : l*n+n][:len(ob)]
						bb := b[l*n : l*n+n][:len(ob)]
						for i := range ob {
							ob[i] = ab[i] + bb[i]
						}
					}
				}
			case 1:
				a, sb := fr.arr[in.a], int(in.b)*nl
				for _, l := range g {
					s := scal[sb+l]
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = ab[i] + s
					}
				}
			default:
				sa, b := int(in.a)*nl, fr.arr[in.b]
				for _, l := range g {
					s := scal[sa+l]
					ob := out[l*n : l*n+n]
					ab := b[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = s + ab[i]
					}
				}
			}
		case opSubV:
			out := fr.arr[in.d]
			n := len(out) / nl
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				if len(g) == nl {
					for i := range out {
						out[i] = a[i] - b[i]
					}
				} else {
					for _, l := range g {
						ob := out[l*n : l*n+n]
						ab := a[l*n : l*n+n][:len(ob)]
						bb := b[l*n : l*n+n][:len(ob)]
						for i := range ob {
							ob[i] = ab[i] - bb[i]
						}
					}
				}
			case 1:
				a, sb := fr.arr[in.a], int(in.b)*nl
				for _, l := range g {
					s := scal[sb+l]
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = ab[i] - s
					}
				}
			default:
				sa, b := int(in.a)*nl, fr.arr[in.b]
				for _, l := range g {
					s := scal[sa+l]
					ob := out[l*n : l*n+n]
					ab := b[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = s - ab[i]
					}
				}
			}
		case opMulV:
			out := fr.arr[in.d]
			n := len(out) / nl
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				if len(g) == nl {
					for i := range out {
						out[i] = a[i] * b[i]
					}
				} else {
					for _, l := range g {
						ob := out[l*n : l*n+n]
						ab := a[l*n : l*n+n][:len(ob)]
						bb := b[l*n : l*n+n][:len(ob)]
						for i := range ob {
							ob[i] = ab[i] * bb[i]
						}
					}
				}
			case 1:
				a, sb := fr.arr[in.a], int(in.b)*nl
				for _, l := range g {
					s := scal[sb+l]
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = ab[i] * s
					}
				}
			default:
				sa, b := int(in.a)*nl, fr.arr[in.b]
				for _, l := range g {
					s := scal[sa+l]
					ob := out[l*n : l*n+n]
					ab := b[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = s * ab[i]
					}
				}
			}
		case opDivV:
			out := fr.arr[in.d]
			n := len(out) / nl
			switch in.e {
			case 0:
				a, b := fr.arr[in.a], fr.arr[in.b]
				if len(g) == nl {
					for i := range out {
						out[i] = a[i] / b[i]
					}
				} else {
					for _, l := range g {
						ob := out[l*n : l*n+n]
						ab := a[l*n : l*n+n][:len(ob)]
						bb := b[l*n : l*n+n][:len(ob)]
						for i := range ob {
							ob[i] = ab[i] / bb[i]
						}
					}
				}
			case 1:
				a, sb := fr.arr[in.a], int(in.b)*nl
				for _, l := range g {
					s := scal[sb+l]
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = ab[i] / s
					}
				}
			default:
				sa, b := int(in.a)*nl, fr.arr[in.b]
				for _, l := range g {
					s := scal[sa+l]
					ob := out[l*n : l*n+n]
					ab := b[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = s / ab[i]
					}
				}
			}
		case opMinV, opMaxV, opPowV, opEqV, opNeV, opLtV, opLeV, opGtV, opGeV, opAndV, opOrV, opModV, opSignV:
			vm.batchSlowBinV(in, fr, g)
		case opNegV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = -a[i]
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = -ab[i]
					}
				}
			}
		case opNotV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = b2f(a[i] == 0)
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = b2f(ab[i] == 0)
					}
				}
			}
		case opAbsV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = math.Abs(a[i])
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = math.Abs(ab[i])
					}
				}
			}
		case opSqrtV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = math.Sqrt(a[i])
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = math.Sqrt(ab[i])
					}
				}
			}
		case opExpV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = math.Exp(a[i])
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = math.Exp(ab[i])
					}
				}
			}
		case opLogV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = math.Log(a[i])
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = math.Log(ab[i])
					}
				}
			}
		case opFloorV:
			out, a := fr.arr[in.d], fr.arr[in.a]
			if len(g) == nl {
				for i := range out {
					out[i] = math.Floor(a[i])
				}
			} else {
				n := len(out) / nl
				for _, l := range g {
					ob := out[l*n : l*n+n]
					ab := a[l*n : l*n+n][:len(ob)]
					for i := range ob {
						ob[i] = math.Floor(ab[i])
					}
				}
			}
		case opFMAV:
			out := fr.arr[in.d]
			var av, bv, cv []float64
			var ab, bb, cb int
			if in.e&4 != 0 {
				av = fr.arr[in.a]
			} else {
				ab = int(in.a) * nl
			}
			if in.e&8 != 0 {
				bv = fr.arr[in.b]
			} else {
				bb = int(in.b) * nl
			}
			if in.e&16 != 0 {
				cv = fr.arr[in.c]
			} else {
				cb = int(in.c) * nl
			}
			sa, sc := 1.0, 1.0
			if in.e&1 != 0 {
				sa = -1
			}
			if in.e&2 != 0 {
				sc = -1
			}
			n := len(out) / nl
			for _, l := range g {
				ob := out[l*n : l*n+n]
				var xa, ya, za []float64
				var xs, ys, zs float64
				if av != nil {
					xa = av[l*n : l*n+n][:len(ob)]
				} else {
					xs = scal[ab+l]
				}
				if bv != nil {
					ya = bv[l*n : l*n+n][:len(ob)]
				} else {
					ys = scal[bb+l]
				}
				if cv != nil {
					za = cv[l*n : l*n+n][:len(ob)]
				} else {
					zs = scal[cb+l]
				}
				for i := range ob {
					x, y, z := xs, ys, zs
					if xa != nil {
						x = xa[i]
					}
					if ya != nil {
						y = ya[i]
					}
					if za != nil {
						z = za[i]
					}
					ob[i] = math.FMA(sa*x, y, sc*z)
				}
			}
		case opSumV:
			a := fr.arr[in.a]
			n := len(a) / nl
			dbase := int(in.d) * nl
			for _, l := range g {
				var s float64
				for _, x := range a[l*n : l*n+n] {
					s += x
				}
				scal[dbase+l] = s
			}
		case opNcol:
			v := float64(ncol)
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = v
			}
		case opShiftV:
			out, src := fr.arr[in.d], fr.arr[in.a]
			bbase := int(in.b) * nl
			n := len(src) / nl
			for _, l := range g {
				k := int(scal[bbase+l]) % n
				if k < 0 {
					k += n
				}
				sv := src[l*n : l*n+n]
				ob := out[l*n : l*n+n]
				for i := range ob {
					ob[i] = sv[(i+k)%n]
				}
			}

		case opRandS:
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = vm.rngs[l].Float64()
			}
		case opRandV:
			out := fr.arr[in.d]
			n := len(out) / nl
			for _, l := range g {
				r := vm.rngs[l]
				ob := out[l*n : l*n+n]
				for i := range ob {
					ob[i] = r.Float64()
				}
			}
		case opOutS:
			lbl := vm.prog.labels[in.a]
			bbase := int(in.b) * nl
			for _, l := range g {
				m := vm.results[l].Outputs
				if dst, ok := m[lbl]; ok && len(dst) == 1 {
					dst[0] = scal[bbase+l]
				} else {
					m[lbl] = []float64{scal[bbase+l]}
				}
			}
		case opOutV:
			lbl := vm.prog.labels[in.a]
			src := fr.arr[in.b]
			n := len(src) / nl
			for _, l := range g {
				m := vm.results[l].Outputs
				dst, ok := m[lbl]
				if !ok || len(dst) != n {
					dst = make([]float64, n)
					m[lbl] = dst
				}
				copy(dst, src[l*n:l*n+n])
			}
		case opTouch:
			abase := int(in.a) * nl
			for _, l := range g {
				fr.touched[abase+l] = true
			}

		case opLoopInit:
			abase, bbase := int(in.a)*nl, int(in.b)*nl
			dbase := int(in.d) * nl
			for _, l := range g {
				fr.ints[dbase+l] = int64(int(scal[abase+l]))
				fr.ints[dbase+nl+l] = int64(int(scal[bbase+l]))
			}
		case opLoopCond:
			abase := int(in.a) * nl
			nex := 0
			for _, l := range g {
				if fr.ints[abase+l] > fr.ints[abase+nl+l] {
					nex++
				}
			}
			if nex == len(g) {
				pc = int(in.b)
				continue
			}
			if nex > 0 {
				exit := make([]int, 0, nex)
				stay := make([]int, 0, len(g)-nex)
				for _, l := range g {
					if fr.ints[abase+l] > fr.ints[abase+nl+l] {
						exit = append(exit, l)
					} else {
						stay = append(stay, l)
					}
				}
				merged = append(merged, vm.exec(p, fr, exit, int(in.b))...)
				g = stay
			}
			dbase := int(in.d) * nl
			for _, l := range g {
				scal[dbase+l] = float64(fr.ints[abase+l])
			}
		case opLoopInc:
			abase := int(in.a) * nl
			for _, l := range g {
				fr.ints[abase+l]++
			}
			pc = int(in.b)
			continue

		case opCallSub:
			cs := vm.prog.calls[in.a]
			cf, done := vm.callBatch(cs, fr, g)
			if cf != nil {
				vm.putFrame(cs.proc, cf)
			}
			if len(done) != len(g) {
				g = done
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}
		case opCallFunS:
			cs := vm.prog.calls[in.a]
			cf, done := vm.callBatch(cs, fr, g)
			if cf != nil {
				dbase := int(in.d) * nl
				for _, l := range done {
					scal[dbase+l] = retScalLane(cs.proc, cf, nl, l)
				}
				vm.putFrame(cs.proc, cf)
			}
			if len(done) != len(g) {
				g = done
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}
		case opCallFunV:
			cs := vm.prog.calls[in.a]
			cf, done := vm.callBatch(cs, fr, g)
			if cf != nil {
				src := cf.arr[cs.proc.ret.reg]
				dst := fr.arr[in.d]
				if len(done) == nl {
					copy(dst, src)
				} else {
					n := len(dst) / nl
					for _, l := range done {
						copy(dst[l*n:l*n+n], src[l*n:l*n+n])
					}
				}
				vm.putFrame(cs.proc, cf)
			}
			if len(done) != len(g) {
				g = done
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}
		case opCallFunD:
			cs := vm.prog.calls[in.a]
			cf, done := vm.callBatch(cs, fr, g)
			if cf != nil {
				src := cf.drv[cs.proc.ret.reg]
				dst := fr.drv[in.d]
				if len(done) == nl {
					cloneBdval(dst, src)
				} else {
					for _, l := range done {
						cloneBdvalLane(dst, src, nl, l)
					}
				}
				vm.putFrame(cs.proc, cf)
			}
			if len(done) != len(g) {
				g = done
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}
		case opCallElem:
			done := vm.elemBroadcastBatch(vm.prog.calls[in.a], fr, fr.arr[in.d], g)
			if len(done) != len(g) {
				g = done
				if len(g) == 0 {
					return mergeDone(nil, merged)
				}
			}

		default:
			err := errf("bad opcode %d", in.op)
			for _, l := range g {
				vm.errs[l] = err
			}
			return mergeDone(nil, merged)
		}
		pc++
	}
	return mergeDone(g, merged)
}

// batchSlowBinV covers the colder elementwise binaries with one
// generic lane loop per shape, mirroring slowBinV.
func (vm *BatchVM) batchSlowBinV(in *instr, fr *bframe, g []int) {
	var fn func(a, b float64) float64
	switch in.op {
	case opMinV:
		fn = math.Min
	case opMaxV:
		fn = math.Max
	case opPowV:
		fn = math.Pow
	case opEqV:
		fn = func(a, b float64) float64 { return b2f(a == b) }
	case opNeV:
		fn = func(a, b float64) float64 { return b2f(a != b) }
	case opLtV:
		fn = func(a, b float64) float64 { return b2f(a < b) }
	case opLeV:
		fn = func(a, b float64) float64 { return b2f(a <= b) }
	case opGtV:
		fn = func(a, b float64) float64 { return b2f(a > b) }
	case opGeV:
		fn = func(a, b float64) float64 { return b2f(a >= b) }
	case opAndV:
		fn = func(a, b float64) float64 { return b2f(a != 0 && b != 0) }
	case opOrV:
		fn = func(a, b float64) float64 { return b2f(a != 0 || b != 0) }
	case opModV:
		fn = math.Mod
	case opSignV:
		fn = math.Copysign
	}
	nl := vm.nl
	out := fr.arr[in.d]
	n := len(out) / nl
	switch in.e {
	case 0:
		a, b := fr.arr[in.a], fr.arr[in.b]
		if len(g) == nl {
			for i := range out {
				out[i] = fn(a[i], b[i])
			}
		} else {
			for _, l := range g {
				ob := out[l*n : l*n+n]
				ab := a[l*n : l*n+n][:len(ob)]
				bb := b[l*n : l*n+n][:len(ob)]
				for i := range ob {
					ob[i] = fn(ab[i], bb[i])
				}
			}
		}
	case 1:
		a, sb := fr.arr[in.a], int(in.b)*nl
		for _, l := range g {
			s := fr.scal[sb+l]
			ob := out[l*n : l*n+n]
			ab := a[l*n : l*n+n][:len(ob)]
			for i := range ob {
				ob[i] = fn(ab[i], s)
			}
		}
	default:
		sa, b := int(in.a)*nl, fr.arr[in.b]
		for _, l := range g {
			s := fr.scal[sa+l]
			ob := out[l*n : l*n+n]
			ab := b[l*n : l*n+n][:len(ob)]
			for i := range ob {
				ob[i] = fn(s, ab[i])
			}
		}
	}
}

// elemBroadcastBatch invokes an elemental function once per column for
// a group of lanes, binding per-lane scalar views read live per column
// exactly as elemBroadcast does, and returns the surviving lanes.
func (vm *BatchVM) elemBroadcastBatch(cs *callSite, caller *bframe, out []float64, g []int) []int {
	p := cs.proc
	nl := vm.nl
	for col := 0; col < vm.ncol && len(g) > 0; col++ {
		if vm.depth >= maxDepth {
			err := errf("call depth exceeded at %s", p.fullName)
			for _, l := range g {
				vm.errs[l] = err
			}
			return nil
		}
		vm.depth++
		fr := vm.getFrame(p)
		for ai, ea := range cs.elem {
			if ai >= len(p.argBind) {
				break
			}
			slot := p.argBind[ai]
			if slot.mode == 'u' {
				continue
			}
			d := int(slot.reg) * nl
			dst := fr.scal[d : d+nl]
			switch ea.space {
			case esTempS:
				a := int(ea.a) * nl
				copy(dst, caller.scal[a:a+nl])
			case esGlobS:
				a := int(ea.a) * nl
				copy(dst, vm.gscal[a:a+nl])
			case esPtrS:
				copy(dst, caller.ptrs[ea.a])
			case esFieldS:
				b := int(ea.b) * nl
				copy(dst, caller.drv[ea.a].scal[b:b+nl])
			case esDrvF:
				copy(dst, caller.drv[ea.a].f)
			case esArr:
				a := caller.arr[ea.a]
				an := len(a) / nl
				for l := 0; l < nl; l++ {
					dst[l] = a[l*an+col]
				}
			}
		}
		done := vm.exec(p, fr, g, 0)
		vm.exitSnapshotsBatch(p, fr, g)
		vm.depth--
		on := len(out) / nl
		for _, l := range done {
			out[l*on+col] = retScalLane(p, fr, nl, l)
		}
		vm.putFrame(p, fr)
		g = done
	}
	return g
}
