package kgen

import (
	"reflect"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/model"
)

func TestCompareKernelsFlagsAndRanks(t *testing.T) {
	a := map[string][]float64{
		"same":  {1, 2, 3},
		"small": {1, 2, 3},
		"big":   {1, 2, 3},
		"short": {1},
	}
	b := map[string][]float64{
		"same":  {1, 2, 3},
		"small": {1 + 1e-10, 2, 3},
		"big":   {2, 2, 3},
		"short": {1, 2}, // shape mismatch: skipped
	}
	got := CompareKernels(a, b, 1e-12)
	if len(got) != 2 {
		t.Fatalf("flagged = %+v", got)
	}
	if got[0].Variable != "big" || got[1].Variable != "small" {
		t.Fatalf("rank order = %+v", got)
	}
	if names := Names(got); !reflect.DeepEqual(names, []string{"big", "small"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestCompareKernelsDefaultThreshold(t *testing.T) {
	a := map[string][]float64{"x": {1}, "y": {1}}
	b := map[string][]float64{"x": {1 + 1e-11}, "y": {1 + 1e-13}}
	got := CompareKernels(a, b, 0)
	if len(got) != 1 || got[0].Variable != "x" {
		t.Fatalf("default threshold: %v", got)
	}
}

func TestBuiltModules(t *testing.T) {
	uses := map[string][]string{
		"driver": {"a", "b"},
		"a":      {"c"},
		"orphan": {"c"},
	}
	got := BuiltModules("driver", uses)
	want := []string{"a", "b", "c", "driver"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("built = %v", got)
	}
}

// TestAVX2KernelFlagging reproduces the §6.4 KGen workflow: run the
// Morrison-Gettelman-style kernel with FMA off and on and flag
// variables whose normalized RMS values differ beyond 1e-12. The
// paper's headline variables must be among them.
func TestAVX2KernelFlagging(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 15, Seed: 2})
	r, err := model.NewRunner(c)
	if err != nil {
		t.Fatal(err)
	}
	watch := "micro_mg::micro_mg_tend"
	off, err := r.Run(model.RunConfig{KernelWatch: watch})
	if err != nil {
		t.Fatal(err)
	}
	on, err := r.Run(model.RunConfig{KernelWatch: watch, FMA: func(string) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	flagged := CompareKernels(off.Engine.Captured().Kernel, on.Engine.Captured().Kernel, RMSThreshold)
	if len(flagged) < 5 {
		t.Fatalf("only %d variables flagged: %+v", len(flagged), flagged)
	}
	set := map[string]bool{}
	for _, f := range flagged {
		set[f.Variable] = true
	}
	for _, want := range []string{"nctend", "qvlat", "tlat", "nitend", "qsout"} {
		if !set[want] {
			t.Fatalf("paper variable %s not flagged (flagged: %v)", want, Names(flagged))
		}
	}
}
