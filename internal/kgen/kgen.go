// Package kgen reproduces the KGen workflow the paper leans on twice
// (§4.1, §6.4): identifying the modules actually built into the
// executable configuration, and extracting a subprogram "kernel" whose
// variable values are compared between two build configurations via
// normalized root-mean-square differences, flagging variables that
// exceed a threshold (1e-12 in the paper's AVX2 experiment).
package kgen

import (
	"sort"

	"github.com/climate-rca/rca/internal/stats"
)

// RMSThreshold is the paper's flagging threshold.
const RMSThreshold = 1e-12

// Flagged is one variable whose kernel values differ between the two
// configurations.
type Flagged struct {
	Variable string
	// NormRMS is RMS(a-b)/RMS(a).
	NormRMS float64
}

// CompareKernels diffs two kernel snapshots (variable → values, as
// captured by the interpreter's KernelWatch hook) and returns the
// variables whose normalized RMS difference exceeds threshold, sorted
// by descending difference. Variables missing from either snapshot or
// with mismatched shapes are skipped (KGen skips unresolvable state).
func CompareKernels(a, b map[string][]float64, threshold float64) []Flagged {
	if threshold <= 0 {
		threshold = RMSThreshold
	}
	var out []Flagged
	for name, av := range a {
		bv, ok := b[name]
		if !ok || len(bv) != len(av) || len(av) == 0 {
			continue
		}
		d := stats.NormalizedRMSDiff(av, bv)
		if d > threshold {
			out = append(out, Flagged{Variable: name, NormRMS: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NormRMS != out[j].NormRMS {
			return out[i].NormRMS > out[j].NormRMS
		}
		return out[i].Variable < out[j].Variable
	})
	return out
}

// Names extracts the flagged variable names in rank order.
func Names(fs []Flagged) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Variable
	}
	return out
}

// BuiltModules performs KGen's build-configuration filtering (§4.1):
// starting from the driver module, it keeps every module reachable
// through use statements — the modules "compiled into the executable
// model". uses maps module → used modules.
func BuiltModules(driver string, uses map[string][]string) []string {
	seen := map[string]bool{driver: true}
	queue := []string{driver}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, u := range uses[m] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
