package experiments

import "testing"

func TestLANDBUGPipeline(t *testing.T) {
	out, err := Run(LANDBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("LANDBUG failure rate = %v", out.FailureRate)
	}
	// SNOWHLND (or SOILW, fed by the same coefficient) must be
	// selected.
	hasLand := false
	for _, v := range out.SelectedOutputs {
		if v == "SNOWHLND" || v == "SOILW" {
			hasLand = true
		}
	}
	if !hasLand {
		t.Fatalf("land variables not selected: %v", out.SelectedOutputs)
	}
	if !out.BugInSlice {
		t.Fatal("land bug not in slice")
	}
	if !out.BugLocated {
		t.Fatalf("land bug not located: %+v", out.Refine.Iterations)
	}
}

func TestFirstStepSelection(t *testing.T) {
	// WSUBBUG's influence is so localized that the direct first-step
	// comparison is conclusive — the paper's preferred situation.
	out, err := Run(WSUBBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FirstStep == nil {
		t.Fatal("first-step comparison missing")
	}
	if !out.FirstStep.Conclusive() {
		t.Fatalf("WSUBBUG first-step inconclusive: %d of %d differ",
			len(out.FirstStep.Differing), out.FirstStep.Total)
	}
	if out.FirstStep.Differing[0] != "WSUB" {
		t.Fatalf("first-step top = %v", out.FirstStep.Differing)
	}
	// GOFFGRATCH propagates everywhere by step 1 — inconclusive, the
	// distribution methods take over (the paper's common case).
	gg, err := Run(GOFFGRATCH, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if gg.FirstStep != nil && gg.FirstStep.Conclusive() {
		t.Fatalf("GOFFGRATCH first-step unexpectedly conclusive: %v",
			gg.FirstStep.Differing)
	}
}
