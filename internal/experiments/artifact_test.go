package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/bytecode"
	"github.com/climate-rca/rca/internal/corpus"
)

// corruptAllBlobs flips one payload byte in every blob under the
// store directory.
func corruptAllBlobs(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)-1] ^= 0xff
		n++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no blobs to corrupt; store empty")
	}
}

// testCfg is the small corpus every artifact test shares.
func artifactTestCfg() corpus.Config { return corpus.Config{AuxModules: 10, Seed: 5} }

// TestProgramCodecRoundTripCatalog proves the bytecode codec is
// bit-exact for every program in the §6+§8 catalog: encode, decode,
// re-encode, and require identical bytes. Bit-exactness is what makes
// store blobs stable identities — two processes encoding the same
// build must produce the same artifact.
func TestProgramCodecRoundTripCatalog(t *testing.T) {
	ctx := context.Background()
	cfg := artifactTestCfg()
	s := NewSession(cfg, WithEnsembleSize(4), WithExpSize(2))
	for _, spec := range catalogSpecs {
		t.Run(spec.Name, func(t *testing.T) {
			p, err := buildPlan(cfg, spec.Scenario())
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.runnerFor(ctx, p.sourceKey(), p.cfg, p.patches)
			if err != nil {
				t.Fatal(err)
			}
			prog := r.Program()
			if prog == nil {
				t.Fatal("no bytecode program (tree engine?)")
			}
			enc1, err := bytecode.EncodeProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := bytecode.DecodeProgram(enc1)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := bytecode.EncodeProgram(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("program codec not bit-exact: %d vs %d bytes", len(enc1), len(enc2))
			}
		})
	}
}

// TestCorpusCodecRoundTripCatalog does the same for the corpus codec,
// over every distinct patched source tree the catalog produces.
func TestCorpusCodecRoundTripCatalog(t *testing.T) {
	cfg := artifactTestCfg()
	seen := map[string]bool{}
	for _, spec := range catalogSpecs {
		p, err := buildPlan(cfg, spec.Scenario())
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.sourceKey()] {
			continue
		}
		seen[p.sourceKey()] = true
		base := corpus.Generate(p.cfg)
		if len(p.patches) > 0 {
			if base, err = corpus.Apply(base, p.patches...); err != nil {
				t.Fatal(err)
			}
		}
		enc1, err := base.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := corpus.Decode(enc1)
		if err != nil {
			t.Fatal(err)
		}
		enc2, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: corpus codec not bit-exact", spec.Name)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("catalog produced %d distinct source trees; test vacuous", len(seen))
	}
}

// outcomeDigest reduces an outcome to the fields a warm restore must
// reproduce exactly.
func outcomeDigest(o *Outcome) string {
	return fmt.Sprintf("%s|%.17g|%v|%v|%v|g=%d,%d|s=%d,%d|cov=%+v|located=%v|ranked=%v",
		o.Name, o.FailureRate, o.SelectedOutputs, o.Internals, o.BugDisplays,
		o.GraphNodes, o.GraphEdges, o.SliceNodes, o.SliceEdges,
		o.Coverage, o.BugLocated, o.MedianRanking[:min(3, len(o.MedianRanking))])
}

// TestSessionWarmStartFromStore runs three catalog scenarios on a
// store-backed session, then replays them on a brand-new session over
// a fresh handle to the same directory: every artifact class must be
// served from disk (zero builds in the second session) and the
// outcomes must match the cold run exactly.
func TestSessionWarmStartFromStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := artifactTestCfg()
	specs := []Spec{WSUBBUG, GOFFGRATCH, AVX2}

	run := func(store *artifact.Store) map[string]string {
		s := NewSession(cfg, WithEnsembleSize(6), WithExpSize(2), WithArtifacts(store))
		digests := map[string]string{}
		for _, spec := range specs {
			out, err := s.Run(ctx, spec.Scenario())
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			digests[spec.Name] = outcomeDigest(out)
		}
		return digests
	}

	cold, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldDigests := run(cold)
	if cold.Stats().Builds == 0 {
		t.Fatal("cold session built nothing; store not wired")
	}

	warm, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmDigests := run(warm)
	if n := warm.Stats().Builds; n != 0 {
		t.Fatalf("warm session ran %d artifact builds; want 0 (everything from disk)", n)
	}
	for name, d := range coldDigests {
		if warmDigests[name] != d {
			t.Errorf("%s outcome changed across warm restore:\ncold: %s\nwarm: %s", name, d, warmDigests[name])
		}
	}
}

// TestSessionStoreCorruptionRebuilds damages every stored blob and
// checks a fresh session still produces the identical outcome by
// rebuilding from source (integrity failure degrades to a miss).
func TestSessionStoreCorruptionRebuilds(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := artifactTestCfg()
	sc := GOFFGRATCH.Scenario()

	cold, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSession(cfg, WithEnsembleSize(6), WithExpSize(2), WithArtifacts(cold))
	out1, err := s1.Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	corruptAllBlobs(t, dir)

	warm, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(cfg, WithEnsembleSize(6), WithExpSize(2), WithArtifacts(warm))
	out2, err := s2.Run(ctx, sc)
	if err != nil {
		t.Fatalf("session did not survive blob corruption: %v", err)
	}
	if warm.Stats().Builds == 0 {
		t.Fatal("corrupted store served hits; integrity check not applied")
	}
	if outcomeDigest(out1) != outcomeDigest(out2) {
		t.Errorf("rebuild after corruption changed the outcome:\n%s\n%s",
			outcomeDigest(out1), outcomeDigest(out2))
	}
}
