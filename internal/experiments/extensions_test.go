package experiments

import (
	"strings"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/model"
)

func TestMagnitudeRefinementVariant(t *testing.T) {
	s := testSetup()
	s.Magnitudes = true
	out, err := Run(DYN3BUG, s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.BugLocated {
		t.Fatal("magnitude refinement lost the bug")
	}
	// The graded contraction should shrink past the plain fixed point:
	// the final subgraph is no larger than the plain run's.
	plain, err := Run(DYN3BUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Refine.Final) > len(plain.Refine.Final) {
		t.Fatalf("graded final %d > plain final %d",
			len(out.Refine.Final), len(plain.Refine.Final))
	}
}

func TestWriteSliceDot(t *testing.T) {
	out, err := Run(WSUBBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := out.WriteSliceDot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "wsub__microp_aero") {
		t.Fatalf("dot output:\n%s", dot)
	}
	if !strings.Contains(dot, "color=red") {
		t.Fatal("bug highlight missing")
	}
}

// TestVariableContributionsOnModel exercises the §6.4-motivation
// measurement on real model output: the WSUB bug's contribution
// dominates.
func TestVariableContributionsOnModel(t *testing.T) {
	ctlCorpus := corpus.Generate(corpus.Config{AuxModules: 25, Seed: 2})
	control, err := model.NewRunner(ctlCorpus)
	if err != nil {
		t.Fatal(err)
	}
	bugCfg := corpus.Config{AuxModules: 25, Seed: 2, Bug: corpus.BugWsub}
	bugged, err := model.NewRunner(corpus.Generate(bugCfg))
	if err != nil {
		t.Fatal(err)
	}
	ens, err := control.Ensemble(30, model.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	test, err := ect.NewTest(ens, ect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := bugged.ExperimentalSet(6, 1000, model.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	contrib := test.VariableContributions(runs)
	if len(contrib) == 0 {
		t.Fatal("no contributions (no failures?)")
	}
	if contrib[0].Variable != "WSUB" {
		t.Fatalf("top contributor = %+v", contrib[0])
	}
}

func TestFigure11OnSlice(t *testing.T) {
	out, err := Run(GOFFGRATCH, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	curve := Figure11(out.Slice.Sub)
	if len(curve.Eigen) != out.SliceNodes {
		t.Fatalf("eigen curve length = %d", len(curve.Eigen))
	}
	// Rank curves are non-increasing.
	for i := 1; i < len(curve.Eigen); i++ {
		if curve.Eigen[i] > curve.Eigen[i-1]+1e-12 {
			t.Fatal("eigen curve not sorted")
		}
	}
	if curve.NBRanked > out.SliceNodes {
		t.Fatalf("NBRanked = %d of %d", curve.NBRanked, out.SliceNodes)
	}
}

func TestDegreeDistributionAndExponent(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 40, Seed: 2})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(WSUBBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	_ = mods
	points := DegreeDistribution(out.Metagraph.G)
	if len(points) < 5 {
		t.Fatalf("too few degree classes: %v", points)
	}
	total := 0
	for _, p := range points {
		total += p.Count
	}
	if total != out.GraphNodes {
		t.Fatalf("histogram total %d != nodes %d", total, out.GraphNodes)
	}
	if exp := PowerLawExponent(points); exp <= 0 {
		t.Fatalf("exponent = %v", exp)
	}
	// Heavy tail: degree-1 nodes dominate.
	if points[0].Degree > 1 || points[0].Count < total/3 {
		low := 0
		for _, p := range points {
			if p.Degree <= 2 {
				low += p.Count
			}
		}
		if low < total/3 {
			t.Fatalf("no heavy low-degree tail: %v", points[:3])
		}
	}
}

func TestCommunityInCentralityNoBugs(t *testing.T) {
	out, err := Run(GOFFGRATCH, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if got := CommunityInCentrality(out.Metagraph, out.Refine.Iterations[0].Communities, nil, 5); got != nil {
		t.Fatalf("expected nil for empty bug set, got %v", got)
	}
}

func TestAVX2FullSliceLarger(t *testing.T) {
	restricted, err := Run(AVX2, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(AVX2Full, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if full.SliceNodes < restricted.SliceNodes {
		t.Fatalf("unrestricted slice smaller: %d < %d", full.SliceNodes, restricted.SliceNodes)
	}
	if !full.BugLocated {
		t.Fatal("unrestricted variant lost the bug")
	}
}
