package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/centrality"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
	"github.com/climate-rca/rca/internal/rng"
)

// Table1Row is one row of the paper's Table 1: an AVX2/FMA
// configuration and its UF-ECT failure rate.
type Table1Row struct {
	Config      string
	FailureRate float64
}

// Table1Setup sizes the selective-disablement study (§6.5).
type Table1Setup struct {
	Corpus       corpus.Config
	EnsembleSize int // default 40
	ExpSize      int // default 12
	// TopK modules to disable per strategy (paper: 50 of 561).
	TopK int
	// RandomSamples is the number of random-module-set repetitions to
	// average (paper: 10).
	RandomSamples int
	Seed          uint64
}

func (s Table1Setup) withDefaults() Table1Setup {
	if s.EnsembleSize == 0 {
		s.EnsembleSize = 40
	}
	if s.ExpSize == 0 {
		s.ExpSize = 12
	}
	if s.TopK == 0 {
		s.TopK = 50
	}
	if s.RandomSamples == 0 {
		s.RandomSamples = 10
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// ModuleCentralityRanking ranks modules of the quotient (graph-minor)
// digraph by the sum of eigenvector in- and out-centrality — the §6.5
// "(in and out) centrality of the modules themselves".
func ModuleCentralityRanking(mg *metagraph.Metagraph) []string {
	part, names := mg.ModulePartition()
	q := mg.G.Quotient(part, len(names))
	in := centrality.EigenvectorIn(q, centrality.Options{})
	out := centrality.Eigenvector(q, centrality.Options{})
	type mc struct {
		name  string
		score float64
	}
	ranked := make([]mc, len(names))
	for i, n := range names {
		ranked[i] = mc{name: n, score: in[i] + out[i]}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].name < ranked[b].name
	})
	outNames := make([]string, len(ranked))
	for i, r := range ranked {
		outNames[i] = r.name
	}
	return outNames
}

// Table1 reproduces the selective AVX2 disablement study: the ensemble
// is generated with FMA disabled everywhere; experimental sets enable
// FMA everywhere except the modules in each strategy's disable set.
//
// Deprecated: Table1 regenerates the corpus, the ensemble and the
// metagraph on every call. Use Session.Table1 to share them with the
// rest of a session's pipeline.
func Table1(setup Table1Setup) ([]Table1Row, error) {
	setup = setup.withDefaults()
	c := corpus.Generate(setup.Corpus)
	runner, err := model.NewRunner(c)
	if err != nil {
		return nil, err
	}
	ens, err := runner.Ensemble(setup.EnsembleSize, model.RunConfig{})
	if err != nil {
		return nil, err
	}
	test, err := ect.NewTest(ens, ect.Config{})
	if err != nil {
		return nil, err
	}
	mg, err := metagraph.Build(runner.Modules)
	if err != nil {
		return nil, err
	}
	return table1Rows(context.Background(), runner, test, mg, setup, 1, DefaultBatch)
}

// table1Rows runs the five disablement strategies against
// already-built state (a clean runner, a fitted ECT test and the full
// metagraph) — shared by the one-shot Table1 and Session.Table1. The
// context is honored between ensemble members, so a canceled study
// stops mid-strategy rather than running all five sweeps.
func table1Rows(ctx context.Context, runner *model.Runner, test *ect.Test, mg *metagraph.Metagraph,
	setup Table1Setup, par, batch int) ([]Table1Row, error) {
	c := runner.Corpus
	rate := func(disabled map[string]bool) (float64, error) {
		fma := func(module string) bool { return !disabled[module] }
		runs, err := runSet(ctx, runner, setup.ExpSize, 1000, par, batch, model.RunConfig{FMA: fma})
		if err != nil {
			return 0, err
		}
		return test.FailureRate(runs), nil
	}
	toSet := func(names []string) map[string]bool {
		s := make(map[string]bool, len(names))
		for _, n := range names {
			s[n] = true
		}
		return s
	}
	allModules := c.Modules()
	k := setup.TopK
	if k > len(allModules) {
		k = len(allModules)
	}

	var rows []Table1Row

	// Row 1: AVX2 enabled, all modules.
	r1, err := rate(nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{"AVX2 enabled, all modules", r1})

	// Row 2: disabled on the K largest modules by lines of code.
	lines := c.LinesOf()
	byLines := append([]string(nil), allModules...)
	sort.Slice(byLines, func(a, b int) bool {
		if lines[byLines[a]] != lines[byLines[b]] {
			return lines[byLines[a]] > lines[byLines[b]]
		}
		return byLines[a] < byLines[b]
	})
	r2, err := rate(toSet(byLines[:k]))
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{fmt.Sprintf("AVX2 disabled, %d largest modules", k), r2})

	// Row 3: disabled on K random modules, averaged.
	gen := rng.NewLCG(setup.Seed)
	var sum float64
	for s := 0; s < setup.RandomSamples; s++ {
		perm := append([]string(nil), allModules...)
		for i := len(perm) - 1; i > 0; i-- {
			j := gen.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		rr, err := rate(toSet(perm[:k]))
		if err != nil {
			return nil, err
		}
		sum += rr
	}
	rows = append(rows, Table1Row{
		fmt.Sprintf("AVX2 disabled, %d rand mods (%d sample avg)", k, setup.RandomSamples),
		sum / float64(setup.RandomSamples)})

	// Row 4: disabled on the K most central modules (quotient graph).
	central := ModuleCentralityRanking(mg)
	if k > len(central) {
		k = len(central)
	}
	r4, err := rate(toSet(central[:k]))
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{fmt.Sprintf("AVX2 disabled, %d central modules", k), r4})

	// Row 5: disabled everywhere (false-positive rate).
	r5, err := rate(toSet(allModules))
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{"AVX2 disabled, all modules", r5})
	return rows, nil
}
