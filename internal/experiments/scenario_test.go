package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/model"
	"github.com/climate-rca/rca/internal/rng"
)

// assignTarget names one assignment statement of the corpus.
type assignTarget struct {
	module, sub, varName string
	occurrence           int
}

// enumerateAssignments walks the whole generated corpus and returns
// every assignment as a patchable target, in deterministic order.
func enumerateAssignments(t testing.TB, c *corpus.Corpus) []assignTarget {
	t.Helper()
	var out []assignTarget
	for _, f := range c.Files {
		mods, err := fortran.ParseFile(f.Source)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, m := range mods {
			for _, sub := range m.Subprograms {
				counts := map[string]int{}
				fortran.WalkStmts(sub.Body, func(s fortran.Stmt) {
					as, ok := s.(*fortran.AssignStmt)
					if !ok {
						return
					}
					v := as.LHS.Canonical()
					out = append(out, assignTarget{
						module: m.Name, sub: sub.Name, varName: v,
						occurrence: counts[v],
					})
					counts[v]++
				})
			}
		}
	}
	return out
}

// TestArbitraryPatchInjectionsProperty is the open-world property the
// Scenario API rests on: an arbitrary single-subprogram scale
// injection over ANY assignment in the corpus must (a) build a plan,
// (b) produce a patched source tree that still parses and interprets,
// and (c) yield a deterministic corpus fingerprint — equal across
// independent applications, different from the clean tree.
func TestArbitraryPatchInjectionsProperty(t *testing.T) {
	cfg := corpus.Config{AuxModules: 10, Seed: 5}
	clean := corpus.Generate(cfg)
	targets := enumerateAssignments(t, clean)
	if len(targets) < 50 {
		t.Fatalf("only %d assignments enumerated", len(targets))
	}

	// A seeded sample keeps the property run fast while ranging over
	// the whole corpus (drivers, physics, aux modules alike).
	gen := rng.NewLCG(99)
	const samples = 25
	for i := 0; i < samples; i++ {
		tgt := targets[gen.Intn(len(targets))]
		factor := 1.0 + float64(gen.Intn(2000)-1000)/1e6 // 1 ± 0.001
		if factor == 1.0 {
			factor = 1.000001
		}
		name := fmt.Sprintf("%s/%s.%s#%d*=%g", tgt.module, tgt.sub, tgt.varName, tgt.occurrence, factor)
		t.Run(name, func(t *testing.T) {
			inj := ScaleAssignment{Module: tgt.module, Subprogram: tgt.sub,
				Var: tgt.varName, Occurrence: tgt.occurrence, Factor: factor}
			sc := NewScenario(name, ScenarioOptions{}, inj)

			p, err := buildPlan(cfg, sc)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			patched, err := corpus.Apply(clean, p.patches...)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}

			// Still parses and interprets: one short run of the
			// patched model must execute.
			r, err := model.NewRunner(patched)
			if err != nil {
				t.Fatalf("parse patched corpus: %v", err)
			}
			if _, err := r.Run(model.RunConfig{Member: 0, StopAfter: 1}); err != nil {
				t.Fatalf("interpret patched corpus: %v", err)
			}

			// Deterministic fingerprint, distinct from clean.
			again, err := corpus.Apply(clean, p.patches...)
			if err != nil {
				t.Fatal(err)
			}
			if patched.Fingerprint() != again.Fingerprint() {
				t.Fatal("fingerprint not deterministic across applications")
			}
			if patched.Fingerprint() == clean.Fingerprint() {
				t.Fatal("patch did not change the corpus fingerprint")
			}

			// The scenario cache key is equally stable.
			k1, err := ScenarioFingerprint(cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			k2, err := ScenarioFingerprint(cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			if k1 != k2 {
				t.Fatalf("scenario fingerprint unstable: %q vs %q", k1, k2)
			}
		})
	}
}

// FuzzParseInjection: the CLI injection grammar must never panic, and
// anything it accepts must carry a stable, non-empty fingerprint and
// lower onto a plan without panicking.
func FuzzParseInjection(f *testing.F) {
	for _, seed := range []string{
		"micro_mg_tend.ratio*=1.0001",
		"aero_run.wsub:0.20=>2.00",
		"microp_aero/aero_run.wsub#1:0.20=>2.00",
		"prng=mt",
		"fma=all",
		"fma=micro_mg,dyn3",
		"param:turbcoef=0.02",
		"", "x", "a.b", "a.b*=", "a.b:=>", "param:=1", "fma=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		inj, err := ParseInjection(s)
		if err != nil {
			return
		}
		if inj.ID() == "" {
			t.Fatalf("accepted injection %q has empty fingerprint", s)
		}
		if inj.ID() != inj.ID() {
			t.Fatalf("unstable fingerprint for %q", s)
		}
		p := &plan{params: map[string]bool{}, patchTargets: map[string]bool{}}
		_ = inj.apply(p) // must not panic; errors are fine
	})
}

func TestParseInjectionGrammar(t *testing.T) {
	cases := []struct {
		in, id string
	}{
		{"micro_mg_tend.ratio*=1.0001", "scale:micro_mg_tend.ratio*1.0001"},
		{"aero_run.wsub:0.20=>2.00", "patch:aero_run.wsub:0.20=>2.00"},
		{"microp_aero/aero_run.wsub:0.20=>2.00", "patch:microp_aero/aero_run.wsub:0.20=>2.00"},
		{"dyn3_hydro.pint#2*=1.01", "scale:dyn3_hydro.pint#2*1.01"},
		{"prng=mt", "prng:mt19937"},
		{"fma=all", "fma:*"},
		{"fma=dyn3,micro_mg", "fma:dyn3,micro_mg"},
		{"param:turbcoef=0.02", "param:turbcoef=0.02"},
	}
	for _, c := range cases {
		inj, err := ParseInjection(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if inj.ID() != c.id {
			t.Errorf("%q: ID = %q, want %q", c.in, inj.ID(), c.id)
		}
	}
	for _, bad := range []string{"", "nonsense", "a.b*=x", "param:bogus=1",
		"prng=xorshift", "fma=", "a:old=>new"} {
		if _, err := ParseInjection(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}

func TestScenarioFromJSON(t *testing.T) {
	sc, err := ScenarioFromJSON([]byte(`{
		"name": "WSUB+MT", "camonly": true, "selectk": 3,
		"inject": ["aero_run.wsub:0.20=>2.00", "prng=mt"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "WSUB+MT" {
		t.Fatalf("name = %q", sc.Name())
	}
	if got := sc.Options(); !got.CAMOnly || got.SelectK != 3 {
		t.Fatalf("options = %+v", got)
	}
	if n := len(sc.Injections()); n != 2 {
		t.Fatalf("injections = %d", n)
	}
	for _, bad := range []string{
		`{`,
		`{"inject": ["prng=mt"]}`,
		`{"name": "X", "inject": ["nope"]}`,
	} {
		if _, err := ScenarioFromJSON([]byte(bad)); err == nil {
			t.Errorf("%s: expected error", bad)
		}
	}
}

// TestSpecScenarioConversion pins the deprecated adapter: every
// prewired Spec converts to a scenario with the same name, options
// and the catalog injection set.
func TestSpecScenarioConversion(t *testing.T) {
	sc := RANDMT.Scenario()
	if sc.Name() != "RAND-MT" {
		t.Fatalf("name = %q", sc.Name())
	}
	injs := sc.Injections()
	if len(injs) != 1 || injs[0].ID() != "prng:mt19937" {
		t.Fatalf("injections = %v", injs)
	}
	if o := sc.Options(); !o.CAMOnly || o.SelectK != 5 {
		t.Fatalf("options = %+v", o)
	}

	multi := Spec{Name: "ALL", Bug: corpus.BugWsub, Mersenne: true, FMA: true, SelectK: 2}.Scenario()
	var ids []string
	for _, inj := range multi.Injections() {
		ids = append(ids, inj.ID())
	}
	joined := strings.Join(ids, "+")
	for _, want := range []string{"patch:", "prng:mt19937", "fma:*"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("converted injections %q missing %s", joined, want)
		}
	}
}

// TestSessionRejectsCanceledMemoization: a canceled stage is retried,
// not served from cache, when called again with a live context.
func TestSessionRejectsCanceledMemoization(t *testing.T) {
	s := NewSession(corpus.Config{AuxModules: 10, Seed: 5},
		WithEnsembleSize(8), WithExpSize(3))
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Fingerprint(canceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if _, err := s.Fingerprint(context.Background()); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// TestCellWaiterHonorsOwnContext: a getter blocked behind another
// caller's in-flight build returns promptly when its own context is
// canceled, instead of riding out the foreign build.
func TestCellWaiterHonorsOwnContext(t *testing.T) {
	var c cell[int]
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.get(context.Background(), func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.get(ctx, func() (int, error) { return 0, nil }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("waiter err = %v, want ErrCanceled", err)
	}

	// The original build completes and memoizes; a live-context getter
	// sees it without rebuilding.
	close(release)
	v, err := c.get(context.Background(), func() (int, error) {
		t.Fatal("rebuilt a memoized cell")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("got %d, %v", v, err)
	}
}

// TestVerdictSharedAcrossSlicingOptions: verdicts key on the build
// fingerprint, so scenarios differing only in slicing options (AVX2
// vs AVX2-FULL) share one experimental set.
func TestVerdictSharedAcrossSlicingOptions(t *testing.T) {
	s := NewSession(corpus.Config{AuxModules: 10, Seed: 5},
		WithEnsembleSize(8), WithExpSize(3))
	ctx := context.Background()
	a, err := s.Verdict(ctx, AVX2.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Verdict(ctx, AVX2Full.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("AVX2 and AVX2-FULL did not share the cached verdict")
	}
}

// TestCacheKeysResistIDCollisions: injection fields are user-controlled
// strings, so the fingerprint join is length-prefixed — one injection
// whose ID spells out the concatenation of two others must not share a
// cache key with them.
func TestCacheKeysResistIDCollisions(t *testing.T) {
	cfg := corpus.Config{AuxModules: 5, Seed: 1}
	one := NewScenario("one", ScenarioOptions{},
		SourceReplace{Subprogram: "sub", Var: "v", Old: "o", New: "a+scale:s.t*2.0"})
	two := NewScenario("two", ScenarioOptions{},
		SourceReplace{Subprogram: "sub", Var: "v", Old: "o", New: "a"},
		ScaleAssignment{Subprogram: "s", Var: "t", Factor: 2.0})
	k1, err := ScenarioFingerprint(cfg, one)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ScenarioFingerprint(cfg, two)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatalf("crafted injection collides with a two-injection scenario: %q", k1)
	}
}

// TestSiteOverrideSharesBuildCaches: Site steers defect-site
// resolution only, so scenarios differing only in Site share corpus
// runners and compiled metagraphs while keeping distinct
// investigation-layer keys.
func TestSiteOverrideSharesBuildCaches(t *testing.T) {
	cfg := corpus.Config{AuxModules: 10, Seed: 5}
	s := NewSession(cfg, WithEnsembleSize(8), WithExpSize(3))
	ctx := context.Background()

	plain := NewScenario("plain", ScenarioOptions{}, fromBugPatch(corpus.BugWsub, ""))
	sited := NewScenario("sited", ScenarioOptions{}, WsubDefect()) // Site: "wsub"

	a, err := s.Compile(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Compile(ctx, sited)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Site override forced a metagraph recompile")
	}

	k1, err := ScenarioFingerprint(cfg, plain)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ScenarioFingerprint(cfg, sited)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("differing Site overrides share a scenario fingerprint")
	}
}
