// The pipeline's typed stages. experiments.Run used to be one
// monolithic function; each paper step is now a stage function with
// typed inputs and outputs so a Session can cache and recombine them:
//
//	Builds      — control + experimental model builds (corpus parse)
//	Fingerprint — control ensemble + its ECT PCA fingerprint
//	Verdict     — experimental set + UF-ECT failure rate      (step 0)
//	Selection   — affected output variables                   (§3)
//	Compiled    — coverage filter + metagraph                 (§4)
//	Sliced      — internal names, induced subgraph, bug sites (§5.1-5.3)
//	core.Result — Algorithm 5.4 refinement trace              (§5.4)
package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/coverage"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/lasso"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
	"github.com/climate-rca/rca/internal/slicing"
	"github.com/climate-rca/rca/internal/stats"
)

// Builds pairs the control and experimental model builds for one
// scenario. The runners cache the parsed corpus; RunCfg/ExpRunCfg
// carry the scenario's configuration injections (PRNG swap, FMA
// policy).
type Builds struct {
	Control, Exper    *model.Runner
	RunCfg, ExpRunCfg model.RunConfig
}

// Fingerprint is the cached ensemble state every experiment shares:
// the control ensemble outputs and the ECT PCA fingerprint fitted to
// them (the accept/reject machinery of §2.1).
type Fingerprint struct {
	Ensemble []ect.RunOutput
	Test     *ect.Test
}

// Verdict is the stage-0 result: the experimental set and its UF-ECT
// failure rate — the Pass/Fail verdict that starts an investigation.
// It carries no scenario identity on purpose: verdicts are cached per
// build fingerprint and shared by every scenario with that build.
type Verdict struct {
	FailureRate float64
	ExpRuns     []ect.RunOutput
}

// Selection is the §3 result: the affected output variables, the
// median-distance ranking, and the first-time-step comparison.
type Selection struct {
	Outputs       []string
	MedianRanking []stats.VariableDistance
	FirstStep     *FirstStepResult
}

// Compiled is the §4 result: the dynamic coverage filter report and
// the metagraph compiled from the filtered experimental source tree.
type Compiled struct {
	Coverage  coverage.Report
	Metagraph *metagraph.Metagraph
}

// Sliced is the §5.1-5.3 result: internal canonical names for the
// selected outputs, the induced subgraph, and the known defect sites.
type Sliced struct {
	Internals   []string
	Slice       *slicing.Slice
	BugNodes    []int
	BugDisplays []string
	KGenFlagged []string
	BugInSlice  bool
}

// verdictStage runs the experimental set and scores it against the
// ensemble fingerprint: members fan out across the session's bounded
// worker pool, honoring the context between members.
func verdictStage(ctx context.Context, fp *Fingerprint, b *Builds, expSize, par, batch int) (*Verdict, error) {
	runs, err := runSet(ctx, b.Exper, expSize, 1000, par, batch, b.ExpRunCfg)
	if err != nil {
		return nil, err
	}
	return &Verdict{FailureRate: fp.Test.FailureRate(runs), ExpRuns: runs}, nil
}

// selectStage applies §3: the direct first-step comparison is tried
// first (the paper's recommendation); when it is inconclusive — the
// common case, since changes propagate to most variables — the
// distribution methods (lasso, median distances) take over.
func selectStage(sc Scenario, fp *Fingerprint, b *Builds, v *Verdict, solver lasso.Solver) (*Selection, lasso.PathStats, error) {
	sel := &Selection{}
	var st lasso.PathStats
	sel.MedianRanking = stats.MedianDistanceRanking(group(fp.Ensemble), group(v.ExpRuns))
	sel.FirstStep, _ = FirstStepDiff(b.Control, b.Exper, b.ExpRunCfg, 1e-12)
	if sel.FirstStep != nil && sel.FirstStep.Conclusive() {
		sel.Outputs = sel.FirstStep.Differing
		if max := sc.Options().SelectK; max > 0 && len(sel.Outputs) > max {
			sel.Outputs = sel.Outputs[:max]
		}
		return sel, st, nil
	}
	var err error
	sel.Outputs, st, err = selectOutputs(sc.Options().SelectK, fp.Test.Vars(), fp.Ensemble, v.ExpRuns, sel.MedianRanking, solver)
	if err != nil {
		return nil, st, err
	}
	return sel, st, nil
}

// compileStage runs the two-step coverage trace (§2.1) on the
// experimental build, filters the source tree, and compiles the
// metagraph.
func compileStage(b *Builds) (*Compiled, error) {
	tr := coverage.NewTrace()
	if _, err := b.Exper.Run(model.RunConfig{StopAfter: 2, Trace: tr.Record,
		RNG: b.ExpRunCfg.RNG, FMA: b.ExpRunCfg.FMA}); err != nil {
		return nil, err
	}
	filtered, rep := coverage.Filter(b.Exper.Modules, tr)
	mg, err := metagraph.Build(filtered)
	if err != nil {
		return nil, err
	}
	return &Compiled{Coverage: rep, Metagraph: mg}, nil
}

// sliceStage maps selected outputs to internal canonical names (§5.1),
// induces the hybrid slice (step 4), and locates the scenario's known
// defect nodes (the union over its injections' sites) for the success
// check.
func sliceStage(sc Scenario, b *Builds, comp *Compiled, sel *Selection) (*Sliced, error) {
	mg := comp.Metagraph
	out := &Sliced{}
	for _, lbl := range sel.Outputs {
		if internal, ok := mg.OutputMap[lbl]; ok {
			out.Internals = append(out.Internals, internal)
		}
	}
	if len(out.Internals) == 0 {
		return nil, fmt.Errorf("experiments: no internal mappings for %v", sel.Outputs)
	}

	opt := slicing.Options{MinClusterSize: 4}
	if sc.Options().CAMOnly {
		c := b.Exper.Corpus
		opt.ModuleFilter = func(m string) bool { return c.IsCAM(m) }
	}
	sl, err := slicing.FromInternals(mg, out.Internals, opt)
	if err != nil {
		return nil, err
	}
	out.Slice = sl

	out.BugNodes, out.KGenFlagged, err = defectSites(sc, siteInput{
		mg: mg, control: b.Control, exper: b.Exper, expRun: b.ExpRunCfg})
	if err != nil {
		return nil, err
	}
	for _, bn := range out.BugNodes {
		out.BugDisplays = append(out.BugDisplays, mg.Nodes[bn].Display)
	}
	out.BugInSlice = len(sl.LocalIDs(out.BugNodes)) > 0
	return out, nil
}

// defectSites unions the defect locations of every injection in the
// scenario, deduplicated and sorted, so multi-defect scenarios check
// success against all their sites.
func defectSites(sc Scenario, in siteInput) ([]int, []string, error) {
	seen := map[int]bool{}
	var ids []int
	var names []string
	for _, inj := range sc.Injections() {
		if inj == nil {
			continue
		}
		is, ns, err := inj.sites(in)
		if err != nil {
			return nil, nil, fmt.Errorf("injection %s: %w", inj.ID(), err)
		}
		for _, id := range is {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		names = append(names, ns...)
	}
	sort.Ints(ids)
	return ids, names, nil
}

// refineStage runs Algorithm 5.4 with the chosen sampler strategy,
// wiring the per-call context into the refinement loop's checkpoint so
// cancellation lands between iterations.
func refineStage(ctx context.Context, b *Builds, comp *Compiled, sl *Sliced, sampler Sampler, opts core.Options) (*core.Result, error) {
	opts.Checkpoint = func() error { return ctxErr(ctx) }
	return sampler.Refine(RefineInput{
		Metagraph: comp.Metagraph,
		Slice:     sl.Slice,
		Control:   b.Control,
		Exper:     b.Exper,
		RunCfg:    b.RunCfg,
		ExpRunCfg: b.ExpRunCfg,
		BugNodes:  sl.BugNodes,
		Options:   opts,
	})
}

// assembleOutcome flattens the stage results into the monolithic
// Outcome the one-shot API has always returned.
func assembleOutcome(sc Scenario, v *Verdict, sel *Selection, comp *Compiled, sl *Sliced, ref *core.Result) *Outcome {
	out := &Outcome{
		Name:            sc.Name(),
		Scenario:        sc,
		FailureRate:     v.FailureRate,
		SelectedOutputs: sel.Outputs,
		Internals:       sl.Internals,
		MedianRanking:   sel.MedianRanking,
		FirstStep:       sel.FirstStep,
		Coverage:        comp.Coverage,
		GraphNodes:      comp.Metagraph.G.NumNodes(),
		GraphEdges:      comp.Metagraph.G.NumEdges(),
		SliceNodes:      sl.Slice.Sub.NumNodes(),
		SliceEdges:      sl.Slice.Sub.NumEdges(),
		BugNodes:        sl.BugNodes,
		BugDisplays:     sl.BugDisplays,
		KGenFlagged:     sl.KGenFlagged,
		Refine:          ref,
		BugInSlice:      sl.BugInSlice,
		Metagraph:       comp.Metagraph,
		Slice:           sl.Slice,
	}
	out.BugLocated = ref.BugInstrumented
	if !out.BugLocated {
		bugSet := map[int]bool{}
		for _, b := range sl.BugNodes {
			bugSet[b] = true
		}
		for _, n := range ref.Final {
			if bugSet[n] {
				out.BugLocated = true
			}
		}
	}
	return out
}
