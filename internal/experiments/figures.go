package experiments

import (
	"math"
	"sort"

	"github.com/climate-rca/rca/internal/centrality"
	"github.com/climate-rca/rca/internal/graph"
	"github.com/climate-rca/rca/internal/metagraph"
)

// DegreePoint is one (degree, count) pair of a degree distribution
// (Figures 4, 9, 10).
type DegreePoint struct {
	Degree int
	Count  int
}

// DegreeDistribution returns the sorted degree histogram of g.
func DegreeDistribution(g *graph.Digraph) []DegreePoint {
	hist := g.DegreeDistribution()
	out := make([]DegreePoint, 0, len(hist))
	for d, c := range hist {
		out = append(out, DegreePoint{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// PowerLawExponent fits log(count) ~ alpha * log(degree) by least
// squares over nonzero-degree points, returning the slope magnitude.
// The paper observes the CESM digraph approximately follows a power
// law (Figure 4); this gives a single-number summary for EXPERIMENTS.md.
func PowerLawExponent(points []DegreePoint) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.Degree > 0 && p.Count > 0 {
			xs = append(xs, math.Log(float64(p.Degree)))
			ys = append(ys, math.Log(float64(p.Count)))
		}
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / den
	return math.Abs(slope)
}

// CentralityCurve is the log-rank/log-score comparison of Figure 11.
type CentralityCurve struct {
	// Eigen and NonBacktracking are |centrality| values sorted
	// descending (rank order).
	Eigen           []float64
	NonBacktracking []float64
	// NBRanked is the number of nodes the non-backtracking centrality
	// assigns nonzero scores (the curve's early termination).
	NBRanked int
}

// Figure11 computes both centralities on the (undirected view of the)
// subgraph and returns the rank curves.
func Figure11(sub *graph.Digraph) CentralityCurve {
	und := sub.Undirected()
	ev := centrality.EigenvectorIn(sub, centrality.Options{})
	nb := centrality.NonBacktracking(und, centrality.Options{})
	sortDesc := func(xs []float64) []float64 {
		out := append([]float64(nil), xs...)
		for i := range out {
			out[i] = math.Abs(out[i])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(out)))
		return out
	}
	e := sortDesc(ev)
	n := sortDesc(nb)
	ranked := 0
	for _, v := range n {
		if v > 0 {
			ranked++
		}
	}
	return CentralityCurve{Eigen: e, NonBacktracking: n, NBRanked: ranked}
}

// CentralNode pairs a display name with an in-centrality score (the
// §6.4 REPL listing).
type CentralNode struct {
	Display string
	Score   float64
}

// CommunityInCentrality computes the eigenvector in-centrality listing
// of the community (metagraph ids) containing the most bug nodes,
// returning the top-k (the avx2_bluecommunity_incentrality[:16] output
// of §6.4). It returns nil when no community contains a bug node.
func CommunityInCentrality(mg *metagraph.Metagraph, communities [][]int, bugs []int, k int) []CentralNode {
	bugSet := make(map[int]bool, len(bugs))
	for _, b := range bugs {
		bugSet[b] = true
	}
	best, bestCount := -1, 0
	for i, comm := range communities {
		count := 0
		for _, n := range comm {
			if bugSet[n] {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = i, count
		}
	}
	if best < 0 {
		return nil
	}
	sub, nodeMap := mg.G.Subgraph(communities[best])
	scores := centrality.EigenvectorIn(sub, centrality.Options{})
	top := centrality.TopK(scores, k)
	out := make([]CentralNode, len(top))
	for i, r := range top {
		out[i] = CentralNode{Display: mg.Nodes[nodeMap[r.Node]].Display, Score: r.Score}
	}
	return out
}
