// Stage progress: a per-call callback carried on the context, so one
// Session.Run can report which pipeline stage it is entering without
// the Session growing per-job state. The service layer (internal/serve)
// uses this to stream verdict→select→compile→slice→refine progress to
// HTTP clients; library callers can log or trace the same way.
package experiments

import "context"

// Stage names one pipeline stage of Session.Run, in execution order.
type Stage string

// The pipeline stages Session.Run reports, in order.
const (
	StageVerdict Stage = "verdict" // experimental set + UF-ECT verdict
	StageSelect  Stage = "select"  // §3 affected-variable selection
	StageCompile Stage = "compile" // §4 coverage filter + metagraph
	StageSlice   Stage = "slice"   // §5.1-5.3 hybrid slice
	StageRefine  Stage = "refine"  // §5.4 iterative refinement
)

// Stages lists the pipeline stages in execution order.
func Stages() []Stage {
	return []Stage{StageVerdict, StageSelect, StageCompile, StageSlice, StageRefine}
}

// progressKey carries the callback on a context.
type progressKey struct{}

// WithProgress returns a context that makes Session.Run (and RunAll,
// which composes it) report each stage transition to f before entering
// the stage. Cached stages still report — the callback narrates the
// investigation's logical progress, not the cache misses. f must be
// safe for concurrent use when the context is shared across
// goroutines (RunAll fan-out).
func WithProgress(ctx context.Context, f func(Stage)) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, f)
}

// reportStage invokes the context's progress callback, if any.
func reportStage(ctx context.Context, st Stage) {
	if ctx == nil {
		return
	}
	if f, ok := ctx.Value(progressKey{}).(func(Stage)); ok {
		f(st)
	}
}
