package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/lasso"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
)

// Session is the compile-once, run-many entry point to the pipeline.
// Constructed once per corpus configuration, it lazily generates and
// caches everything scenarios share — the parsed corpus builds, the
// control-ensemble ECT fingerprint, the coverage-filtered metagraphs —
// and exposes the pipeline as typed stages (Verdict, SelectVariables,
// Compile, Slice, Refine) plus Run/RunAll/Table1 composing them.
//
// Cache keys are scenario fingerprints (the concatenated injection
// IDs), so user-defined and multi-defect scenarios are cached exactly
// like the prewired catalog: two scenarios injecting the same source
// patches share a corpus build; two scenarios with the same build and
// coverage configuration share a compiled metagraph.
//
// Every stage takes a context.Context. Cancellation is honored at
// stage entry, between ensemble members, and between refinement
// iterations; it surfaces as an error matching both ErrCanceled and
// the context's own error. A canceled result is never memoized — the
// session stays fully reusable afterwards.
type Session struct {
	cfg      corpus.Config
	ensemble int
	expSize  int
	sampler  Sampler
	refine   core.Options
	base     context.Context // deprecated WithContext, checked alongside per-call contexts
	workers  int
	parallel int
	batch    int
	engine   model.EngineKind
	solver   lasso.Solver
	store    *artifact.Store // optional on-disk artifact layer (WithArtifacts)

	// lassoFits/lassoIters count §3 selection-stage lasso fits and
	// their proximal-gradient iterations across the session — the
	// /metrics counters behind lasso_fits_total and
	// lasso_fit_iterations_total.
	lassoFits  atomic.Uint64
	lassoIters atomic.Uint64

	// runnerList tracks built runners for compile-cache statistics.
	runnerMu   sync.Mutex
	runnerList []*model.Runner

	mu         sync.Mutex
	fp         cell[*Fingerprint]
	fullMG     cell[*metagraph.Metagraph]
	runners    map[string]*cell[*model.Runner] // per source fingerprint
	compiled   map[string]*cell[*Compiled]     // per build fingerprint
	verdicts   map[string]*cell[*Verdict]      // per build fingerprint
	selections map[string]*cell[*Selection]    // per scenario fingerprint
	slices     map[string]*cell[*Sliced]
	refined    map[string]*cell[*core.Result]
}

// cell is a build-at-most-once slot; concurrent getters block on the
// first builder and then share its result. A canceled build is not
// memoized: the next getter retries with its own context, so one
// canceled investigation never poisons the session's caches. Waiters
// watch their own context too — a caller whose context is canceled
// while somebody else's build is in flight returns ErrCanceled
// immediately instead of riding out the foreign build.
type cell[T any] struct {
	mu       sync.Mutex
	done     bool
	building bool
	waitCh   chan struct{} // closed when the in-flight build finishes
	val      T
	err      error
}

func (c *cell[T]) get(ctx context.Context, build func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		if c.done {
			v, err := c.val, c.err
			c.mu.Unlock()
			return v, err
		}
		if !c.building {
			c.building = true
			c.waitCh = make(chan struct{})
			ch := c.waitCh
			c.mu.Unlock()

			v, err := build()

			c.mu.Lock()
			c.building = false
			if !isCanceled(err) {
				c.done, c.val, c.err = true, v, err
			}
			close(ch)
			c.mu.Unlock()
			return v, err
		}
		ch := c.waitCh
		c.mu.Unlock()
		if ctx == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
			// Re-check: the build either memoized or was canceled
			// (in which case this waiter becomes the next builder).
		case <-ctx.Done():
			var zero T
			return zero, ctxErr(ctx)
		}
	}
}

// keyedCell returns (creating if needed) the cell for key k. Only the
// map access is serialized; building happens outside the lock.
func keyedCell[T any](mu *sync.Mutex, m map[string]*cell[T], k string) *cell[T] {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[k]
	if !ok {
		c = &cell[T]{}
		m[k] = c
	}
	return c
}

// Option configures a Session.
type Option func(*Session)

// WithEnsembleSize sets the control-ensemble size (default 40).
func WithEnsembleSize(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.ensemble = n
		}
	}
}

// WithExpSize sets the experimental-set size (default 10).
func WithExpSize(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.expSize = n
		}
	}
}

// WithSampler sets the step-7 instrumentation strategy (default
// ValueSampling).
func WithSampler(sampler Sampler) Option {
	return func(s *Session) {
		if sampler != nil {
			s.sampler = sampler
		}
	}
}

// WithRefineOptions sets the Algorithm 5.4 knobs.
func WithRefineOptions(o core.Options) Option {
	return func(s *Session) { s.refine = o }
}

// WithContext attaches a constructor-scoped cancellation context,
// checked alongside the per-call contexts.
//
// Deprecated: pass a context to each call instead (Run, RunAll,
// Table1, and every stage take one); constructor-scoped cancellation
// cannot distinguish between investigations.
func WithContext(ctx context.Context) Option {
	return func(s *Session) {
		if ctx != nil {
			s.base = ctx
		}
	}
}

// WithWorkers bounds RunAll's concurrent fan-out (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithEngine selects the execution engine for every integration the
// session runs: the bytecode register VM (the default — each source
// fingerprint compiles once, under the same cache layer rcad's
// singleflight dedup reuses across jobs) or the tree-walking
// interpreter (the reference oracle). The engines are pinned
// bit-identical, so this is purely a throughput knob.
func WithEngine(k model.EngineKind) Option {
	return func(s *Session) { s.engine = k }
}

// WithLassoSolver selects the solver engine behind the §3 lasso
// selection stage: the coordinate-screened engine (the default) or the
// dense ISTA reference oracle. The engines emit bit-identical iterates
// — fitted weights, supports and iteration counts all match — so like
// WithEngine this is purely a throughput knob.
func WithLassoSolver(sv lasso.Solver) Option {
	return func(s *Session) { s.solver = sv }
}

// WithParallelism bounds the worker pool used *inside* one
// investigation (default GOMAXPROCS): ensemble and experimental-set
// members integrate concurrently, and the refinement loop's graph
// kernels — edge betweenness, Girvan-Newman recomputation,
// eigenvector matvecs — shard their work across it. Kernel results
// are bit-identical at every parallelism level (fixed shard counts
// and merge order; see DESIGN.md), so WithParallelism(1) is the
// sequential reference the determinism tests compare against.
// Contexts are honored between work units. A Parallelism set
// explicitly on WithRefineOptions wins for the refinement kernels.
func WithParallelism(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.parallel = n
		}
	}
}

// DefaultBatch is the ensemble batching width sessions use unless
// WithBatch overrides it: members fan into lockstep groups of this
// many SIMD-style lanes on the batched bytecode VM.
const DefaultBatch = 8

// WithBatch sets how many ensemble/experimental members integrate in
// lockstep on one batched VM (default DefaultBatch). WithBatch(1)
// disables batching — every member runs on its own solo VM, the
// differential reference. Outputs are pinned bit-identical at every
// batch width, so like WithParallelism this is purely a throughput
// knob.
func WithBatch(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.batch = n
		}
	}
}

// NewSession builds a Session for one corpus configuration. Nothing is
// generated until a stage needs it. The configuration's Bug field is
// ignored: the control build is always clean and each scenario's
// injections define its own defects.
func NewSession(cfg corpus.Config, opts ...Option) *Session {
	s := &Session{
		cfg:        cfg,
		ensemble:   40,
		expSize:    10,
		sampler:    ValueSampling(0),
		base:       context.Background(),
		runners:    make(map[string]*cell[*model.Runner]),
		compiled:   make(map[string]*cell[*Compiled]),
		verdicts:   make(map[string]*cell[*Verdict]),
		selections: make(map[string]*cell[*Selection]),
		slices:     make(map[string]*cell[*Sliced]),
		refined:    make(map[string]*cell[*core.Result]),
	}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.parallel <= 0 {
		s.parallel = runtime.GOMAXPROCS(0)
	}
	if s.batch <= 0 {
		s.batch = DefaultBatch
	}
	if s.refine.Parallelism <= 0 {
		s.refine.Parallelism = s.parallel
	}
	return s
}

// check enforces both the per-call context and the deprecated
// constructor-scoped one.
func (s *Session) check(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return ctxErr(s.base)
}

// plan lowers a scenario over the session's corpus configuration.
func (s *Session) plan(sc Scenario) (*plan, error) {
	return buildPlan(s.cfg, sc)
}

// cleanPlan is the control build's (injection-free) plan.
func (s *Session) cleanPlan() *plan {
	cfg := s.cfg
	cfg.Bug = corpus.BugNone
	return &plan{cfg: cfg}
}

// runnerFor returns the cached model build for one source fingerprint,
// generating, patching and parsing the corpus on first use.
func (s *Session) runnerFor(ctx context.Context, key string, cfg corpus.Config, patches []corpus.Patch) (*model.Runner, error) {
	c := keyedCell(&s.mu, s.runners, key)
	return c.get(ctx, func() (*model.Runner, error) {
		base, err := s.corpusFor(ctx, key, cfg, patches)
		if err != nil {
			return nil, err
		}
		r, err := model.NewRunnerEngine(base, s.engine)
		if err != nil {
			return nil, err
		}
		s.restoreProgram(ctx, key, r)
		s.runnerMu.Lock()
		s.runnerList = append(s.runnerList, r)
		s.runnerMu.Unlock()
		return r, nil
	})
}

// Engine reports the session's execution engine name ("bytecode" or
// "tree") — the label rcad's metrics attach to its job counters.
func (s *Session) Engine() string { return s.engine.String() }

// LassoSolver reports the session's lasso engine name ("cd" or
// "ista") — the label rcad's metrics attach to the lasso counters.
func (s *Session) LassoSolver() string { return s.solver.String() }

// LassoStats reports how many §3 selection-stage lasso fits the
// session has run and the total proximal-gradient iterations they
// consumed. rcad reports both at /metrics.
func (s *Session) LassoStats() (fits, iters uint64) {
	return s.lassoFits.Load(), s.lassoIters.Load()
}

// Sizes reports the session's control-ensemble and experimental-set
// sizes. A scenario's UF-ECT failure rate depends on both, so durable
// caches of verdicts (the search service's node evaluations) key on
// them alongside the build fingerprint.
func (s *Session) Sizes() (ensemble, expSize int) { return s.ensemble, s.expSize }

// CompileCacheStats aggregates bytecode program-cache hits and misses
// across the session's runners: a hit is an integration that reused a
// compiled program, a miss an actual compilation. rcad reports both at
// /metrics.
func (s *Session) CompileCacheStats() (hits, misses uint64) {
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	for _, r := range s.runnerList {
		h, m := r.CompileStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// control returns the clean control build.
func (s *Session) control(ctx context.Context) (*model.Runner, error) {
	p := s.cleanPlan()
	return s.runnerFor(ctx, p.sourceKey(), p.cfg, nil)
}

// buildsFor assembles the control and experimental builds for a plan.
// Runners are cached per source fingerprint, so scenarios without
// source injections (PRNG swap, FMA) share the clean build with the
// control.
func (s *Session) buildsFor(ctx context.Context, p *plan) (*Builds, error) {
	control, err := s.control(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: control: %w", err)
	}
	exper, err := s.runnerFor(ctx, p.sourceKey(), p.cfg, p.patches)
	if err != nil {
		return nil, fmt.Errorf("experiments: experiment: %w", err)
	}
	return &Builds{Control: control, Exper: exper, ExpRunCfg: p.expRun}, nil
}

// Builds returns the control and experimental model builds for a
// scenario.
func (s *Session) Builds(ctx context.Context, sc Scenario) (*Builds, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	return s.buildsFor(ctx, p)
}

// Sources returns the scenario's (patched) experimental source tree —
// the corpus the interpreter runs and the metagraph compiles. The
// build is cached like any other stage.
func (s *Session) Sources(ctx context.Context, sc Scenario) ([]corpus.File, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	r, err := s.runnerFor(ctx, p.sourceKey(), p.cfg, p.patches)
	if err != nil {
		return nil, err
	}
	return r.Corpus.Files, nil
}

// runSet integrates members offset..offset+n-1 across a bounded pool
// of par workers, checking the context between work units so a
// canceled investigation stops promptly instead of finishing the
// whole set. The set is cut into fixed contiguous chunks of batch
// members — each chunk runs in lockstep on one batched VM
// (Runner.RunBatchMeans; batch 1 degenerates to solo integrations) —
// and the chunk boundaries depend only on n and batch, never on par,
// so outputs are stored by member index and the result is identical
// at every parallelism level.
func runSet(ctx context.Context, r *model.Runner, n, offset, par, batch int, base model.RunConfig) ([]ect.RunOutput, error) {
	if batch < 1 {
		batch = 1
	}
	nc := (n + batch - 1) / batch
	if par > nc {
		par = nc
	}
	if par < 1 {
		par = 1
	}
	out := make([]ect.RunOutput, n)
	errs := make([]error, nc)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc || failed.Load() {
					return
				}
				if err := ctxErr(ctx); err != nil {
					errs[c] = err
					failed.Store(true)
					return
				}
				lo := c * batch
				hi := lo + batch
				if hi > n {
					hi = n
				}
				members := make([]int, hi-lo)
				for i := range members {
					members[i] = offset + lo + i
				}
				res, err := r.RunBatchMeans(base, members)
				if err != nil {
					errs[c] = err
					failed.Store(true)
					return
				}
				copy(out[lo:hi], res)
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: the lowest failing chunk wins, and
	// RunBatchMeans already surfaces its lowest failing member.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fingerprint returns the cached control ensemble and its ECT PCA
// fingerprint — the scenario-independent state every Verdict shares.
func (s *Session) Fingerprint(ctx context.Context) (*Fingerprint, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	return s.fp.get(ctx, func() (*Fingerprint, error) {
		control, err := s.control(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: control: %w", err)
		}
		ens, err := runSet(ctx, control, s.ensemble, 0, s.parallel, s.batch, model.RunConfig{})
		if err != nil {
			return nil, err
		}
		test, err := ect.NewTest(ens, ect.Config{})
		if err != nil {
			return nil, err
		}
		return &Fingerprint{Ensemble: ens, Test: test}, nil
	})
}

// Verdict runs the scenario's experimental set against the cached
// ensemble fingerprint and returns the UF-ECT failure rate (step 0).
// Verdicts are cached per build fingerprint — slicing options play no
// part in the experimental runs, so AVX2 and AVX2-FULL share one
// experimental set.
func (s *Session) Verdict(ctx context.Context, sc Scenario) (*Verdict, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.verdicts, p.buildKey())
	return c.get(ctx, func() (*Verdict, error) {
		fp, err := s.Fingerprint(ctx)
		if err != nil {
			return nil, err
		}
		b, err := s.buildsFor(ctx, p)
		if err != nil {
			return nil, err
		}
		return verdictStage(ctx, fp, b, s.expSize, s.parallel, s.batch)
	})
}

// SelectVariables applies the §3 variable selection to the scenario's
// verdict (first-step comparison, then lasso/median distances).
func (s *Session) SelectVariables(ctx context.Context, sc Scenario) (*Selection, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.selections, p.scenarioKey())
	return c.get(ctx, func() (*Selection, error) {
		v, err := s.Verdict(ctx, sc)
		if err != nil {
			return nil, err
		}
		fp, err := s.Fingerprint(ctx)
		if err != nil {
			return nil, err
		}
		b, err := s.buildsFor(ctx, p)
		if err != nil {
			return nil, err
		}
		sel, st, err := selectStage(sc, fp, b, v, s.solver)
		if err != nil {
			return nil, err
		}
		if st.Fits > 0 {
			s.lassoFits.Add(uint64(st.Fits))
			s.lassoIters.Add(uint64(st.Iters))
		}
		return sel, nil
	})
}

// Compile returns the coverage-filtered metagraph for the scenario's
// build configuration. The result is cached per build fingerprint
// (source injections plus coverage-affecting configuration), so
// scenarios sharing a source tree compile once.
func (s *Session) Compile(ctx context.Context, sc Scenario) (*Compiled, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.compiled, p.buildKey())
	return c.get(ctx, func() (*Compiled, error) {
		return s.compiledFor(ctx, p)
	})
}

// Slice induces the hybrid slice for the scenario from its compiled
// metagraph and selected variables (§5.1-5.3).
func (s *Session) Slice(ctx context.Context, sc Scenario) (*Sliced, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.slices, p.scenarioKey())
	return c.get(ctx, func() (*Sliced, error) {
		sel, err := s.SelectVariables(ctx, sc)
		if err != nil {
			return nil, err
		}
		comp, err := s.Compile(ctx, sc)
		if err != nil {
			return nil, err
		}
		b, err := s.buildsFor(ctx, p)
		if err != nil {
			return nil, err
		}
		return sliceStage(sc, b, comp, sel)
	})
}

// Refine runs the Algorithm 5.4 iterative refinement over the
// scenario's slice with the session's sampler strategy, checking the
// context between refinement iterations.
func (s *Session) Refine(ctx context.Context, sc Scenario) (*core.Result, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	p, err := s.plan(sc)
	if err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.refined, p.scenarioKey())
	return c.get(ctx, func() (*core.Result, error) {
		sl, err := s.Slice(ctx, sc)
		if err != nil {
			return nil, err
		}
		comp, err := s.Compile(ctx, sc)
		if err != nil {
			return nil, err
		}
		b, err := s.buildsFor(ctx, p)
		if err != nil {
			return nil, err
		}
		return refineStage(ctx, b, comp, sl, s.sampler, s.refine)
	})
}

// Run composes the stages end to end for one scenario. Stage results
// are cached, so repeated runs (and stage calls before or after) reuse
// all shared work. Each stage transition is reported to the context's
// WithProgress callback, if any, before the stage is entered.
func (s *Session) Run(ctx context.Context, sc Scenario) (*Outcome, error) {
	reportStage(ctx, StageVerdict)
	v, err := s.Verdict(ctx, sc)
	if err != nil {
		return nil, err
	}
	reportStage(ctx, StageSelect)
	sel, err := s.SelectVariables(ctx, sc)
	if err != nil {
		return nil, err
	}
	reportStage(ctx, StageCompile)
	comp, err := s.Compile(ctx, sc)
	if err != nil {
		return nil, err
	}
	reportStage(ctx, StageSlice)
	sl, err := s.Slice(ctx, sc)
	if err != nil {
		return nil, err
	}
	reportStage(ctx, StageRefine)
	ref, err := s.Refine(ctx, sc)
	if err != nil {
		return nil, err
	}
	return assembleOutcome(sc, v, sel, comp, sl, ref), nil
}

// RunAll runs every scenario concurrently over the shared cached state
// with bounded worker goroutines, returning outcomes in input order.
// The ensemble fingerprint is built once up front so workers start
// from warm shared state. Cancellation aborts the fan-out promptly and
// leaves the session reusable.
func (s *Session) RunAll(ctx context.Context, scs []Scenario) ([]*Outcome, error) {
	if len(scs) == 0 {
		return nil, nil
	}
	if _, err := s.Fingerprint(ctx); err != nil {
		return nil, err
	}
	outs := make([]*Outcome, len(scs))
	errs := make([]error, len(scs))
	workers := s.workers
	if workers > len(scs) {
		workers = len(scs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				outs[i], errs[i] = s.Run(ctx, scs[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range scs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if isCanceled(err) {
				return nil, err
			}
			return nil, fmt.Errorf("%s: %w", scs[i].Name(), err)
		}
	}
	return outs, nil
}

// FullMetagraph compiles (once) the unfiltered metagraph of the clean
// corpus — the full variable digraph behind Figure 4 and the §6.5
// module quotient graph.
func (s *Session) FullMetagraph(ctx context.Context) (*metagraph.Metagraph, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	return s.fullMG.get(ctx, func() (*metagraph.Metagraph, error) {
		control, err := s.control(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: control: %w", err)
		}
		return metagraph.Build(control.Modules)
	})
}

// EnsembleOutputs returns the cached control-ensemble outputs.
func (s *Session) EnsembleOutputs(ctx context.Context) ([]ect.RunOutput, error) {
	fp, err := s.Fingerprint(ctx)
	if err != nil {
		return nil, err
	}
	return fp.Ensemble, nil
}

// ExperimentalOutputs integrates n experimental members (perturbation
// seeds offset..offset+n-1) under the scenario's configuration,
// reusing the cached corpus builds. Negative or overflowing bounds are
// rejected with ErrInvalidBounds before any model work happens.
func (s *Session) ExperimentalOutputs(ctx context.Context, sc Scenario, n, offset int) ([]ect.RunOutput, error) {
	if n < 0 || offset < 0 || offset > math.MaxInt-n {
		return nil, fmt.Errorf("%w: n=%d, offset=%d", ErrInvalidBounds, n, offset)
	}
	b, err := s.Builds(ctx, sc)
	if err != nil {
		return nil, err
	}
	return runSet(ctx, b.Exper, n, offset, s.parallel, s.batch, b.ExpRunCfg)
}

// Keys are the layered cache fingerprints of one scenario over the
// session's corpus configuration — the identities the Session caches
// key on, from coarsest sharing to finest:
//
//	Source   — generation parameters + source-level injections;
//	           scenarios sharing it share a parsed corpus build.
//	Build    — Source plus run-configuration injections (PRNG, FMA);
//	           scenarios sharing it share a verdict and a compiled
//	           metagraph.
//	Scenario — Build plus defect-site overrides and slicing options;
//	           scenarios sharing it share selections, slices,
//	           refinements — whole outcomes. Display names do not
//	           participate.
type Keys struct {
	Source   string
	Build    string
	Scenario string
}

// Keys returns the scenario's layered cache fingerprints over the
// session's corpus configuration without running anything. External
// caching and deduplication layers (e.g. the rcad service) key on
// these.
func (s *Session) Keys(sc Scenario) (Keys, error) {
	p, err := s.plan(sc)
	if err != nil {
		return Keys{}, err
	}
	return Keys{Source: p.sourceKey(), Build: p.buildKey(), Scenario: p.scenarioKey()}, nil
}

// Table1 reproduces the paper's Table 1 selective-FMA study over the
// session's cached state: the clean build, the ensemble fingerprint
// (when the sizes agree) and the full metagraph are all reused.
// setup.Corpus is ignored — the session's corpus configuration
// applies; a zero EnsembleSize inherits the session's.
func (s *Session) Table1(ctx context.Context, setup Table1Setup) ([]Table1Row, error) {
	if err := s.check(ctx); err != nil {
		return nil, err
	}
	if setup.EnsembleSize == 0 {
		setup.EnsembleSize = s.ensemble
	}
	setup = setup.withDefaults()

	runner, err := s.control(ctx)
	if err != nil {
		return nil, err
	}
	var test *ect.Test
	if setup.EnsembleSize == s.ensemble {
		fp, err := s.Fingerprint(ctx)
		if err != nil {
			return nil, err
		}
		test = fp.Test
	} else {
		ens, err := runSet(ctx, runner, setup.EnsembleSize, 0, s.parallel, s.batch, model.RunConfig{})
		if err != nil {
			return nil, err
		}
		test, err = ect.NewTest(ens, ect.Config{})
		if err != nil {
			return nil, err
		}
	}
	mg, err := s.FullMetagraph(ctx)
	if err != nil {
		return nil, err
	}
	return table1Rows(ctx, runner, test, mg, setup, s.parallel, s.batch)
}
