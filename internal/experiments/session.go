package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
)

// Session is the compile-once, run-many entry point to the pipeline.
// Constructed once per corpus configuration, it lazily generates and
// caches everything the experiments share — the parsed corpus builds,
// the control-ensemble ECT fingerprint, the coverage-filtered
// metagraphs — and exposes the pipeline as typed stages (Verdict,
// SelectVariables, Compile, Slice, Refine) plus Run/RunAll/Table1
// composing them. Every cache is built at most once (sync.Once per
// entry) and all cached state is immutable after construction, so one
// Session may be shared by concurrent goroutines; RunAll fans out over
// it with bounded workers.
type Session struct {
	cfg      corpus.Config
	ensemble int
	expSize  int
	sampler  Sampler
	refine   core.Options
	ctx      context.Context
	workers  int

	mu         sync.Mutex
	fp         cell[*Fingerprint]
	fullMG     cell[*metagraph.Metagraph]
	runners    map[corpus.Bug]*cell[*model.Runner]
	compiled   map[buildKey]*cell[*Compiled]
	verdicts   map[Spec]*cell[*Verdict]
	selections map[Spec]*cell[*Selection]
	slices     map[Spec]*cell[*Sliced]
	refined    map[Spec]*cell[*core.Result]
}

// buildKey identifies the stage state two specs may share: the
// compiled metagraph depends only on the injected bug and the
// configuration changes that alter the coverage trace.
type buildKey struct {
	bug      corpus.Bug
	mersenne bool
	fma      bool
}

// cell is a build-at-most-once slot; concurrent getters block on the
// first builder and then share its result.
type cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *cell[T]) get(build func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = build() })
	return c.val, c.err
}

// keyedCell returns (creating if needed) the cell for key k. Only the
// map access is serialized; building happens outside the lock.
func keyedCell[K comparable, T any](mu *sync.Mutex, m map[K]*cell[T], k K) *cell[T] {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[k]
	if !ok {
		c = &cell[T]{}
		m[k] = c
	}
	return c
}

// Option configures a Session.
type Option func(*Session)

// WithEnsembleSize sets the control-ensemble size (default 40).
func WithEnsembleSize(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.ensemble = n
		}
	}
}

// WithExpSize sets the experimental-set size (default 10).
func WithExpSize(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.expSize = n
		}
	}
}

// WithSampler sets the step-7 instrumentation strategy (default
// ValueSampling).
func WithSampler(sampler Sampler) Option {
	return func(s *Session) {
		if sampler != nil {
			s.sampler = sampler
		}
	}
}

// WithRefineOptions sets the Algorithm 5.4 knobs.
func WithRefineOptions(o core.Options) Option {
	return func(s *Session) { s.refine = o }
}

// WithContext attaches a cancellation context. Each stage checks it
// on entry, so cancellation aborts between stages; a stage already
// integrating the model (e.g. an in-flight ensemble) runs to
// completion first.
func WithContext(ctx context.Context) Option {
	return func(s *Session) {
		if ctx != nil {
			s.ctx = ctx
		}
	}
}

// WithWorkers bounds RunAll's concurrent fan-out (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Session) {
		if n > 0 {
			s.workers = n
		}
	}
}

// NewSession builds a Session for one corpus configuration. Nothing is
// generated until a stage needs it. The configuration's Bug field is
// ignored: the control build always uses BugNone and each Spec selects
// its own defect.
func NewSession(cfg corpus.Config, opts ...Option) *Session {
	s := &Session{
		cfg:        cfg,
		ensemble:   40,
		expSize:    10,
		sampler:    ValueSampling(0),
		ctx:        context.Background(),
		runners:    make(map[corpus.Bug]*cell[*model.Runner]),
		compiled:   make(map[buildKey]*cell[*Compiled]),
		verdicts:   make(map[Spec]*cell[*Verdict]),
		selections: make(map[Spec]*cell[*Selection]),
		slices:     make(map[Spec]*cell[*Sliced]),
		refined:    make(map[Spec]*cell[*core.Result]),
	}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// runner returns the cached model build for one injected bug,
// generating and parsing the corpus on first use.
func (s *Session) runner(bug corpus.Bug) (*model.Runner, error) {
	c := keyedCell(&s.mu, s.runners, bug)
	return c.get(func() (*model.Runner, error) {
		cfg := s.cfg
		cfg.Bug = bug
		return model.NewRunner(corpus.Generate(cfg))
	})
}

// Builds returns the control and experimental model builds for a spec.
// Runners are cached per injected bug (RAND-MT and AVX2 share the
// clean build with the control).
func (s *Session) Builds(spec Spec) (*Builds, error) {
	control, err := s.runner(corpus.BugNone)
	if err != nil {
		return nil, fmt.Errorf("experiments: control: %w", err)
	}
	exper, err := s.runner(spec.Bug)
	if err != nil {
		return nil, fmt.Errorf("experiments: experiment: %w", err)
	}
	b := &Builds{Control: control, Exper: exper}
	if spec.Mersenne {
		b.ExpRunCfg.RNG = model.RNGMersenne
	}
	if spec.FMA {
		b.ExpRunCfg.FMA = func(string) bool { return true }
	}
	return b, nil
}

// Fingerprint returns the cached control ensemble and its ECT PCA
// fingerprint — the spec-independent state every Verdict shares.
func (s *Session) Fingerprint() (*Fingerprint, error) {
	return s.fp.get(func() (*Fingerprint, error) {
		control, err := s.runner(corpus.BugNone)
		if err != nil {
			return nil, fmt.Errorf("experiments: control: %w", err)
		}
		ens, err := control.Ensemble(s.ensemble, model.RunConfig{})
		if err != nil {
			return nil, err
		}
		test, err := ect.NewTest(ens, ect.Config{})
		if err != nil {
			return nil, err
		}
		return &Fingerprint{Ensemble: ens, Test: test}, nil
	})
}

// Verdict runs the spec's experimental set against the cached ensemble
// fingerprint and returns the UF-ECT failure rate (pipeline step 0).
func (s *Session) Verdict(spec Spec) (*Verdict, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.verdicts, spec)
	return c.get(func() (*Verdict, error) {
		fp, err := s.Fingerprint()
		if err != nil {
			return nil, err
		}
		b, err := s.Builds(spec)
		if err != nil {
			return nil, err
		}
		return verdictStage(spec, fp, b, s.expSize)
	})
}

// SelectVariables applies the §3 variable selection to the spec's
// verdict (first-step comparison, then lasso/median distances).
func (s *Session) SelectVariables(spec Spec) (*Selection, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.selections, spec)
	return c.get(func() (*Selection, error) {
		v, err := s.Verdict(spec)
		if err != nil {
			return nil, err
		}
		fp, err := s.Fingerprint()
		if err != nil {
			return nil, err
		}
		b, err := s.Builds(spec)
		if err != nil {
			return nil, err
		}
		return selectStage(spec, fp, b, v)
	})
}

// Compile returns the coverage-filtered metagraph for the spec's
// source configuration. The result is cached per (bug, PRNG, FMA)
// tuple, so specs sharing a source tree (e.g. AVX2 and AVX2-FULL)
// compile once.
func (s *Session) Compile(spec Spec) (*Compiled, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.compiled, buildKey{spec.Bug, spec.Mersenne, spec.FMA})
	return c.get(func() (*Compiled, error) {
		b, err := s.Builds(spec)
		if err != nil {
			return nil, err
		}
		return compileStage(b)
	})
}

// Slice induces the hybrid slice for the spec from its compiled
// metagraph and selected variables (§5.1-5.3).
func (s *Session) Slice(spec Spec) (*Sliced, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.slices, spec)
	return c.get(func() (*Sliced, error) {
		sel, err := s.SelectVariables(spec)
		if err != nil {
			return nil, err
		}
		comp, err := s.Compile(spec)
		if err != nil {
			return nil, err
		}
		b, err := s.Builds(spec)
		if err != nil {
			return nil, err
		}
		return sliceStage(spec, b, comp, sel)
	})
}

// Refine runs the Algorithm 5.4 iterative refinement over the spec's
// slice with the session's sampler strategy.
func (s *Session) Refine(spec Spec) (*core.Result, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	c := keyedCell(&s.mu, s.refined, spec)
	return c.get(func() (*core.Result, error) {
		sl, err := s.Slice(spec)
		if err != nil {
			return nil, err
		}
		comp, err := s.Compile(spec)
		if err != nil {
			return nil, err
		}
		b, err := s.Builds(spec)
		if err != nil {
			return nil, err
		}
		return refineStage(b, comp, sl, s.sampler, s.refine)
	})
}

// Run composes the stages end to end for one experiment. Stage results
// are cached, so repeated runs (and stage calls before or after) reuse
// all shared work.
func (s *Session) Run(spec Spec) (*Outcome, error) {
	v, err := s.Verdict(spec)
	if err != nil {
		return nil, err
	}
	sel, err := s.SelectVariables(spec)
	if err != nil {
		return nil, err
	}
	comp, err := s.Compile(spec)
	if err != nil {
		return nil, err
	}
	sl, err := s.Slice(spec)
	if err != nil {
		return nil, err
	}
	ref, err := s.Refine(spec)
	if err != nil {
		return nil, err
	}
	return assembleOutcome(spec, v, sel, comp, sl, ref), nil
}

// RunAll runs every spec concurrently over the shared cached state
// with bounded worker goroutines, returning outcomes in spec order.
// The ensemble fingerprint is built once up front so workers start
// from warm shared state.
func (s *Session) RunAll(specs []Spec) ([]*Outcome, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if _, err := s.Fingerprint(); err != nil {
		return nil, err
	}
	outs := make([]*Outcome, len(specs))
	errs := make([]error, len(specs))
	workers := s.workers
	if workers > len(specs) {
		workers = len(specs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				outs[i], errs[i] = s.Run(specs[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Name, err)
		}
	}
	return outs, nil
}

// FullMetagraph compiles (once) the unfiltered metagraph of the clean
// corpus — the full variable digraph behind Figure 4 and the §6.5
// module quotient graph.
func (s *Session) FullMetagraph() (*metagraph.Metagraph, error) {
	return s.fullMG.get(func() (*metagraph.Metagraph, error) {
		control, err := s.runner(corpus.BugNone)
		if err != nil {
			return nil, fmt.Errorf("experiments: control: %w", err)
		}
		return metagraph.Build(control.Modules)
	})
}

// EnsembleOutputs returns the cached control-ensemble outputs.
func (s *Session) EnsembleOutputs() ([]ect.RunOutput, error) {
	fp, err := s.Fingerprint()
	if err != nil {
		return nil, err
	}
	return fp.Ensemble, nil
}

// ExperimentalOutputs integrates n experimental members (perturbation
// seeds offset..offset+n-1) under the spec's configuration, reusing
// the cached corpus builds.
func (s *Session) ExperimentalOutputs(spec Spec, n, offset int) ([]ect.RunOutput, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	b, err := s.Builds(spec)
	if err != nil {
		return nil, err
	}
	return b.Exper.ExperimentalSet(n, offset, b.ExpRunCfg)
}

// Table1 reproduces the paper's Table 1 selective-FMA study over the
// session's cached state: the clean build, the ensemble fingerprint
// (when the sizes agree) and the full metagraph are all reused.
// setup.Corpus is ignored — the session's corpus configuration
// applies; a zero EnsembleSize inherits the session's.
func (s *Session) Table1(setup Table1Setup) ([]Table1Row, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if setup.EnsembleSize == 0 {
		setup.EnsembleSize = s.ensemble
	}
	setup = setup.withDefaults()

	runner, err := s.runner(corpus.BugNone)
	if err != nil {
		return nil, err
	}
	var test *ect.Test
	if setup.EnsembleSize == s.ensemble {
		fp, err := s.Fingerprint()
		if err != nil {
			return nil, err
		}
		test = fp.Test
	} else {
		ens, err := runner.Ensemble(setup.EnsembleSize, model.RunConfig{})
		if err != nil {
			return nil, err
		}
		test, err = ect.NewTest(ens, ect.Config{})
		if err != nil {
			return nil, err
		}
	}
	mg, err := s.FullMetagraph()
	if err != nil {
		return nil, err
	}
	return table1Rows(runner, test, mg, setup)
}
