package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestExportLassoFixture regenerates internal/lasso/testdata's catalog
// selection design: the exact standardizable (X, y) matrix selectOutputs
// hands the lasso for the GOFFGRATCH scenario. The fixture lets the
// lasso package benchmark its engines on a real catalog problem —
// small true support, degenerate near-duplicate columns — instead of
// only the synthetic pipeline-shaped design. Guarded by an env var so
// a normal test run never rewrites testdata:
//
//	RCA_EXPORT_FIXTURE=1 go test ./internal/experiments -run TestExportLassoFixture
func TestExportLassoFixture(t *testing.T) {
	if os.Getenv("RCA_EXPORT_FIXTURE") == "" {
		t.Skip("set RCA_EXPORT_FIXTURE=1 to regenerate internal/lasso/testdata")
	}
	setup := testSetup()
	s := NewSession(setup.Corpus,
		WithEnsembleSize(setup.EnsembleSize),
		WithExpSize(setup.ExpSize))
	ctx := context.Background()
	fp, err := s.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vars := fp.Test.Vars()
	spec := GOFFGRATCH
	v, err := s.Verdict(ctx, spec.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	n := len(fp.Ensemble) + len(v.ExpRuns)
	d := len(vars)
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i, r := range fp.Ensemble {
		for j, name := range vars {
			x[i*d+j] = r[name]
		}
	}
	for i, r := range v.ExpRuns {
		row := len(fp.Ensemble) + i
		y[row] = 1
		for j, name := range vars {
			x[row*d+j] = r[name]
		}
	}
	k := spec.SelectK
	if k <= 0 {
		k = 5
	}
	fix := struct {
		Name string    `json:"name"`
		N    int       `json:"n"`
		D    int       `json:"d"`
		K    int       `json:"k"`
		Vars []string  `json:"vars"`
		X    []float64 `json:"x"`
		Y    []float64 `json:"y"`
	}{Name: spec.Name, N: n, D: d, K: k, Vars: vars, X: x, Y: y}
	buf, err := json.Marshal(&fix)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("..", "lasso", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "goffgratch.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: n=%d d=%d k=%d", path, n, d, k)
}
