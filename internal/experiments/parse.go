package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseInjection parses the compact injection syntax the rca and
// corpusgen CLIs accept (-inject) and JSON scenario files embed:
//
//	sub.var*=FACTOR           scale an assignment's RHS
//	                          (micro_mg_tend.ratio*=1.0001)
//	sub.var:OLD=>NEW          replace text inside an assignment
//	                          (aero_run.wsub:0.20=>2.00)
//	prng=mt                   swap the PRNG to Mersenne Twister
//	fma=all | fma=m1,m2       enable FMA everywhere / per module
//	param:NAME=VALUE          perturb an ensemble parameter
//	                          (param:turbcoef=0.02)
//
// Patch targets accept two optional refinements: a module qualifier
// (module/sub.var) and an assignment occurrence (sub.var#2 targets the
// third assignment to var).
func ParseInjection(s string) (Injection, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, fmt.Errorf("experiments: empty injection")
	case strings.HasPrefix(s, "prng="):
		switch v := strings.TrimPrefix(s, "prng="); v {
		case "mt", "mt19937", "mersenne":
			return MersennePRNG(), nil
		default:
			return nil, fmt.Errorf("experiments: unknown PRNG %q (want mt)", v)
		}
	case strings.HasPrefix(s, "fma="):
		v := strings.TrimPrefix(s, "fma=")
		if v == "all" || v == "*" {
			return EnableFMA(), nil
		}
		mods := strings.Split(v, ",")
		for i := range mods {
			mods[i] = strings.TrimSpace(mods[i])
			if mods[i] == "" {
				return nil, fmt.Errorf("experiments: empty module in %q", s)
			}
		}
		return EnableFMA(mods...), nil
	case strings.HasPrefix(s, "param:"):
		body := strings.TrimPrefix(s, "param:")
		name, val, ok := strings.Cut(body, "=")
		if !ok {
			return nil, fmt.Errorf("experiments: want param:NAME=VALUE, got %q", s)
		}
		f, err := parseFinite(val)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad parameter value in %q: %v", s, err)
		}
		// Validate the parameter name eagerly: a typo should fail at
		// flag-parse time, not mid-ensemble.
		inj := PerturbParameter(strings.TrimSpace(name), f)
		if err := inj.apply(&plan{params: map[string]bool{}}); err != nil {
			return nil, fmt.Errorf("experiments: %v", err)
		}
		return inj, nil
	case strings.Contains(s, "*="):
		tgt, val, _ := strings.Cut(s, "*=")
		f, err := parseFinite(val)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad scale factor in %q: %v", s, err)
		}
		module, sub, v, occ, err := parseTarget(tgt)
		if err != nil {
			return nil, err
		}
		return ScaleAssignment{Module: module, Subprogram: sub, Var: v,
			Occurrence: occ, Factor: f}, nil
	case strings.Contains(s, ":") && strings.Contains(s, "=>"):
		tgt, repl, _ := strings.Cut(s, ":")
		old, newText, _ := strings.Cut(repl, "=>")
		if old == "" {
			return nil, fmt.Errorf("experiments: empty old text in %q", s)
		}
		module, sub, v, occ, err := parseTarget(tgt)
		if err != nil {
			return nil, err
		}
		return SourceReplace{Module: module, Subprogram: sub, Var: v,
			Occurrence: occ, Old: old, New: newText}, nil
	}
	return nil, fmt.Errorf("experiments: cannot parse injection %q (see -help for the syntax)", s)
}

// parseTarget parses [module/]sub.var[#occurrence].
func parseTarget(s string) (module, sub, varName string, occ int, err error) {
	s = strings.TrimSpace(s)
	if m, rest, ok := strings.Cut(s, "/"); ok {
		module, s = m, rest
	}
	if t, n, ok := strings.Cut(s, "#"); ok {
		occ, err = strconv.Atoi(n)
		if err != nil || occ < 0 {
			return "", "", "", 0, fmt.Errorf("experiments: bad occurrence in %q", s)
		}
		s = t
	}
	sub, varName, ok := strings.Cut(s, ".")
	if !ok || sub == "" || varName == "" {
		return "", "", "", 0, fmt.Errorf("experiments: want [module/]sub.var, got %q", s)
	}
	return module, sub, varName, occ, nil
}

// parseFinite parses a float and rejects NaN/Inf: non-finite factors
// would break the JSON wire format (encoding/json cannot encode them)
// and make no sense as defects.
func parseFinite(s string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("non-finite value %v", f)
	}
	return f, nil
}

// scenarioJSON is the scenario wire format: the on-disk format of
// `rca -scenario` and the request body of rcad's POST /v1/jobs. Each
// inject entry is either a compact-syntax string (see ParseInjection)
// or a structured patch object (see patchJSON) for source patches that
// need fields the compact grammar cannot express (defect-site
// overrides). Alternatively, "experiment" names a prewired catalog
// scenario (WSUBBUG, RAND-MT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG,
// AVX2-FULL, LANDBUG) and excludes inject/camonly/selectk.
type scenarioJSON struct {
	Name       string            `json:"name,omitempty"`
	Experiment string            `json:"experiment,omitempty"`
	CAMOnly    bool              `json:"camonly,omitempty"`
	SelectK    int               `json:"selectk,omitempty"`
	Inject     []json.RawMessage `json:"inject,omitempty"`
}

// patchJSON is the structured wire form of a source-patch injection —
// lossless where the compact string grammar is not (Site overrides,
// replacement text containing grammar metacharacters).
type patchJSON struct {
	Kind       string  `json:"kind"` // "replace" | "scale"
	Module     string  `json:"module,omitempty"`
	Subprogram string  `json:"subprogram"`
	Var        string  `json:"var"`
	Occurrence int     `json:"occurrence,omitempty"`
	Old        string  `json:"old,omitempty"`
	New        string  `json:"new,omitempty"`
	Factor     float64 `json:"factor,omitempty"`
	Site       string  `json:"site,omitempty"`
}

func (p patchJSON) injection() (Injection, error) {
	if p.Subprogram == "" || p.Var == "" {
		return nil, fmt.Errorf("patch needs subprogram and var")
	}
	if p.Occurrence < 0 {
		return nil, fmt.Errorf("negative occurrence %d", p.Occurrence)
	}
	switch p.Kind {
	case "replace":
		if p.Old == "" {
			return nil, fmt.Errorf("replace patch needs old text")
		}
		return SourceReplace{Module: p.Module, Subprogram: p.Subprogram, Var: p.Var,
			Occurrence: p.Occurrence, Old: p.Old, New: p.New, Site: p.Site}, nil
	case "scale":
		if math.IsNaN(p.Factor) || math.IsInf(p.Factor, 0) {
			return nil, fmt.Errorf("non-finite factor")
		}
		return ScaleAssignment{Module: p.Module, Subprogram: p.Subprogram, Var: p.Var,
			Occurrence: p.Occurrence, Factor: p.Factor, Site: p.Site}, nil
	}
	return nil, fmt.Errorf("unknown patch kind %q (want replace or scale)", p.Kind)
}

// catalogScenario resolves a prewired experiment by display name.
func catalogScenario(name string) (Scenario, bool) {
	for _, spec := range catalogSpecs {
		if strings.EqualFold(spec.Name, name) {
			return spec.Scenario(), true
		}
	}
	return nil, false
}

// ScenarioFromJSON decodes a scenario definition:
//
//	{"name": "WSUB+GG", "camonly": true, "selectk": 5,
//	 "inject": ["aero_run.wsub:0.20=>2.00", "prng=mt",
//	            {"kind": "scale", "subprogram": "micro_mg_tend",
//	             "var": "ratio", "factor": 1.0001, "site": "ratio"}]}
//
// or a prewired catalog reference, optionally renamed:
//
//	{"experiment": "GOFFGRATCH"}
func ScenarioFromJSON(data []byte) (Scenario, error) {
	var def scenarioJSON
	if err := json.Unmarshal(data, &def); err != nil {
		return nil, fmt.Errorf("experiments: scenario JSON: %w", err)
	}
	if def.Experiment != "" {
		if len(def.Inject) > 0 || def.CAMOnly || def.SelectK != 0 {
			return nil, fmt.Errorf("experiments: scenario JSON: experiment %q excludes inject/camonly/selectk (the catalog fixes them)", def.Experiment)
		}
		sc, ok := catalogScenario(def.Experiment)
		if !ok {
			return nil, fmt.Errorf("experiments: scenario JSON: unknown experiment %q", def.Experiment)
		}
		if def.Name != "" && def.Name != sc.Name() {
			return NewScenario(def.Name, sc.Options(), sc.Injections()...), nil
		}
		return sc, nil
	}
	if def.Name == "" {
		return nil, fmt.Errorf("experiments: scenario JSON: missing name")
	}
	injs := make([]Injection, 0, len(def.Inject))
	for _, raw := range def.Inject {
		inj, err := InjectionFromWire(raw)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", def.Name, err)
		}
		injs = append(injs, inj)
	}
	return NewScenario(def.Name, ScenarioOptions{CAMOnly: def.CAMOnly, SelectK: def.SelectK}, injs...), nil
}

// ScenarioToJSON serializes a scenario to the wire format, the inverse
// of ScenarioFromJSON: parsing the result yields a scenario with the
// same name, options and injection fingerprints. Source patches are
// emitted in structured form (lossless); configuration injections use
// the compact syntax. Injection implementations outside this package
// cannot be serialized and return an error.
func ScenarioToJSON(sc Scenario) ([]byte, error) {
	def := scenarioJSON{
		Name:    sc.Name(),
		CAMOnly: sc.Options().CAMOnly,
		SelectK: sc.Options().SelectK,
	}
	for _, inj := range sc.Injections() {
		if inj == nil {
			continue
		}
		entry, err := injectionWire(inj)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", sc.Name(), err)
		}
		raw, err := json.Marshal(entry)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: injection %s: %w", sc.Name(), inj.ID(), err)
		}
		def.Inject = append(def.Inject, raw)
	}
	return json.Marshal(def)
}

// InjectionFromWire decodes one inject-array entry of the wire format:
// a compact-syntax string (see ParseInjection) or a structured patch
// object (see patchJSON). The search wire format reuses these entries
// for its candidate pool.
func InjectionFromWire(raw json.RawMessage) (Injection, error) {
	if len(raw) > 0 && raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return ParseInjection(s)
	}
	var p patchJSON
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, err
	}
	return p.injection()
}

// InjectionToWire serializes one injection to its wire entry, the
// inverse of InjectionFromWire.
func InjectionToWire(inj Injection) (json.RawMessage, error) {
	entry, err := injectionWire(inj)
	if err != nil {
		return nil, err
	}
	return json.Marshal(entry)
}

// injectionWire maps an injection to its wire entry: a patchJSON for
// source patches, a compact string for configuration injections.
func injectionWire(inj Injection) (any, error) {
	switch v := inj.(type) {
	case SourceReplace:
		return patchJSON{Kind: "replace", Module: v.Module, Subprogram: v.Subprogram,
			Var: v.Var, Occurrence: v.Occurrence, Old: v.Old, New: v.New, Site: v.Site}, nil
	case ScaleAssignment:
		return patchJSON{Kind: "scale", Module: v.Module, Subprogram: v.Subprogram,
			Var: v.Var, Occurrence: v.Occurrence, Factor: v.Factor, Site: v.Site}, nil
	case prngInjection:
		return "prng=mt", nil
	case fmaInjection:
		if len(v.modules) == 0 {
			return "fma=all", nil
		}
		// A single module literally named "all" or "*" would read back
		// as enable-everywhere, changing the fingerprint.
		if len(v.modules) == 1 && (v.modules[0] == "all" || v.modules[0] == "*") {
			return nil, fmt.Errorf("FMA module %q is not expressible in the wire syntax", v.modules[0])
		}
		for _, m := range v.modules {
			// The compact syntax splits on "," and trims each module:
			// anything that split-and-trim would not map back to
			// itself has no faithful wire form.
			if m == "" || m != strings.TrimSpace(m) || strings.Contains(m, ",") {
				return nil, fmt.Errorf("FMA module %q is not expressible in the wire syntax", m)
			}
		}
		return "fma=" + strings.Join(v.modules, ","), nil
	case paramInjection:
		if strings.Contains(v.name, "=") || math.IsNaN(v.value) || math.IsInf(v.value, 0) {
			return nil, fmt.Errorf("parameter injection %s is not expressible in the wire syntax", v.ID())
		}
		return fmt.Sprintf("param:%s=%s", v.name, strconv.FormatFloat(v.value, 'g', -1, 64)), nil
	}
	return nil, fmt.Errorf("injection %s (%T) has no wire form", inj.ID(), inj)
}
