package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ParseInjection parses the compact injection syntax the rca and
// corpusgen CLIs accept (-inject) and JSON scenario files embed:
//
//	sub.var*=FACTOR           scale an assignment's RHS
//	                          (micro_mg_tend.ratio*=1.0001)
//	sub.var:OLD=>NEW          replace text inside an assignment
//	                          (aero_run.wsub:0.20=>2.00)
//	prng=mt                   swap the PRNG to Mersenne Twister
//	fma=all | fma=m1,m2       enable FMA everywhere / per module
//	param:NAME=VALUE          perturb an ensemble parameter
//	                          (param:turbcoef=0.02)
//
// Patch targets accept two optional refinements: a module qualifier
// (module/sub.var) and an assignment occurrence (sub.var#2 targets the
// third assignment to var).
func ParseInjection(s string) (Injection, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, fmt.Errorf("experiments: empty injection")
	case strings.HasPrefix(s, "prng="):
		switch v := strings.TrimPrefix(s, "prng="); v {
		case "mt", "mt19937", "mersenne":
			return MersennePRNG(), nil
		default:
			return nil, fmt.Errorf("experiments: unknown PRNG %q (want mt)", v)
		}
	case strings.HasPrefix(s, "fma="):
		v := strings.TrimPrefix(s, "fma=")
		if v == "all" || v == "*" {
			return EnableFMA(), nil
		}
		mods := strings.Split(v, ",")
		for i := range mods {
			mods[i] = strings.TrimSpace(mods[i])
			if mods[i] == "" {
				return nil, fmt.Errorf("experiments: empty module in %q", s)
			}
		}
		return EnableFMA(mods...), nil
	case strings.HasPrefix(s, "param:"):
		body := strings.TrimPrefix(s, "param:")
		name, val, ok := strings.Cut(body, "=")
		if !ok {
			return nil, fmt.Errorf("experiments: want param:NAME=VALUE, got %q", s)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad parameter value in %q: %v", s, err)
		}
		// Validate the parameter name eagerly: a typo should fail at
		// flag-parse time, not mid-ensemble.
		inj := PerturbParameter(strings.TrimSpace(name), f)
		if err := inj.apply(&plan{params: map[string]bool{}}); err != nil {
			return nil, fmt.Errorf("experiments: %v", err)
		}
		return inj, nil
	case strings.Contains(s, "*="):
		tgt, val, _ := strings.Cut(s, "*=")
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad scale factor in %q: %v", s, err)
		}
		module, sub, v, occ, err := parseTarget(tgt)
		if err != nil {
			return nil, err
		}
		return ScaleAssignment{Module: module, Subprogram: sub, Var: v,
			Occurrence: occ, Factor: f}, nil
	case strings.Contains(s, ":") && strings.Contains(s, "=>"):
		tgt, repl, _ := strings.Cut(s, ":")
		old, newText, _ := strings.Cut(repl, "=>")
		if old == "" {
			return nil, fmt.Errorf("experiments: empty old text in %q", s)
		}
		module, sub, v, occ, err := parseTarget(tgt)
		if err != nil {
			return nil, err
		}
		return SourceReplace{Module: module, Subprogram: sub, Var: v,
			Occurrence: occ, Old: old, New: newText}, nil
	}
	return nil, fmt.Errorf("experiments: cannot parse injection %q (see -help for the syntax)", s)
}

// parseTarget parses [module/]sub.var[#occurrence].
func parseTarget(s string) (module, sub, varName string, occ int, err error) {
	s = strings.TrimSpace(s)
	if m, rest, ok := strings.Cut(s, "/"); ok {
		module, s = m, rest
	}
	if t, n, ok := strings.Cut(s, "#"); ok {
		occ, err = strconv.Atoi(n)
		if err != nil || occ < 0 {
			return "", "", "", 0, fmt.Errorf("experiments: bad occurrence in %q", s)
		}
		s = t
	}
	sub, varName, ok := strings.Cut(s, ".")
	if !ok || sub == "" || varName == "" {
		return "", "", "", 0, fmt.Errorf("experiments: want [module/]sub.var, got %q", s)
	}
	return module, sub, varName, occ, nil
}

// scenarioJSON is the on-disk scenario format of `rca -scenario`.
type scenarioJSON struct {
	Name    string   `json:"name"`
	CAMOnly bool     `json:"camonly"`
	SelectK int      `json:"selectk"`
	Inject  []string `json:"inject"`
}

// ScenarioFromJSON decodes a scenario definition:
//
//	{"name": "WSUB+GG", "camonly": true, "selectk": 5,
//	 "inject": ["aero_run.wsub:0.20=>2.00", "prng=mt"]}
func ScenarioFromJSON(data []byte) (Scenario, error) {
	var def scenarioJSON
	if err := json.Unmarshal(data, &def); err != nil {
		return nil, fmt.Errorf("experiments: scenario JSON: %w", err)
	}
	if def.Name == "" {
		return nil, fmt.Errorf("experiments: scenario JSON: missing name")
	}
	injs := make([]Injection, 0, len(def.Inject))
	for _, s := range def.Inject {
		inj, err := ParseInjection(s)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", def.Name, err)
		}
		injs = append(injs, inj)
	}
	return NewScenario(def.Name, ScenarioOptions{CAMOnly: def.CAMOnly, SelectK: def.SelectK}, injs...), nil
}
