package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/kgen"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
)

// Injection is one composable element of a scenario: a source patch
// over a named corpus subprogram, a PRNG swap, a per-module FMA
// toggle, or an ensemble-parameter perturbation. Implementations are
// provided by this package (the interface is sealed through its
// unexported methods) but the provided kinds are open-ended in what
// they target: any subprogram, any assignment, any module set.
type Injection interface {
	// ID is the injection's stable fingerprint. Scenario cache keys
	// are derived from it, so equal IDs must imply identical builds
	// and identical defect sites.
	ID() string
	// apply lowers the injection onto a build plan.
	apply(p *plan) error
	// sites locates the injection's known defect nodes in the compiled
	// metagraph (used by the reachability simulation and the step-9
	// success check) plus any KGen-flagged kernel variable names.
	sites(in siteInput) ([]int, []string, error)
}

// siteInput is what defect-site resolution may consult.
type siteInput struct {
	mg             *metagraph.Metagraph
	control, exper *model.Runner
	expRun         model.RunConfig
}

// KernelWatch is the module::subprogram the KGen workflow (§6.4)
// extracts and compares under both FMA configurations.
const KernelWatch = "micro_mg::micro_mg_tend"

// --- Source patches ------------------------------------------------

// SourceReplace injects a defect by replacing Old with New inside the
// Occurrence'th assignment to Var in Subprogram — the §6 defect family
// (transposed digits, wrong coefficients, off-by-one indices).
type SourceReplace struct {
	Module     string // optional; "" searches every module
	Subprogram string
	Var        string
	Occurrence int
	Old, New   string
	// Site optionally overrides the metagraph defect-site locator:
	// either a full node key ("module::subprogram::variable") or a
	// bare canonical variable name. When empty the patched
	// assignment's left-hand side is used.
	Site string
}

func (i SourceReplace) patch() corpus.Patch {
	return corpus.ReplaceInAssign{Module: i.Module, Subprogram: i.Subprogram,
		Var: i.Var, Occurrence: i.Occurrence, Old: i.Old, New: i.New}
}

// ID is the injection fingerprint.
func (i SourceReplace) ID() string { return patchID(i.patch(), i.Site) }

func (i SourceReplace) apply(p *plan) error {
	return applyPatch(p, i.patch(), i.Site,
		targetKey(i.Module, i.Subprogram, i.Var, i.Occurrence))
}

func (i SourceReplace) sites(in siteInput) ([]int, []string, error) {
	ids, err := resolveSite(in.mg, i.Module, i.Subprogram, i.Var, i.Site)
	return ids, nil, err
}

// ScaleAssignment injects a defect by multiplying the right-hand side
// of the targeted assignment by Factor — e.g. micro_mg_tend.ratio *=
// 1.0001, the ensemble-parameter-perturbation defect family.
type ScaleAssignment struct {
	Module     string
	Subprogram string
	Var        string
	Occurrence int
	Factor     float64
	// Site overrides the defect-site locator; see SourceReplace.Site.
	Site string
}

func (i ScaleAssignment) patch() corpus.Patch {
	return corpus.ScaleAssign{Module: i.Module, Subprogram: i.Subprogram,
		Var: i.Var, Occurrence: i.Occurrence, Factor: i.Factor}
}

// ID is the injection fingerprint.
func (i ScaleAssignment) ID() string { return patchID(i.patch(), i.Site) }

func (i ScaleAssignment) apply(p *plan) error {
	return applyPatch(p, i.patch(), i.Site,
		targetKey(i.Module, i.Subprogram, i.Var, i.Occurrence))
}

func (i ScaleAssignment) sites(in siteInput) ([]int, []string, error) {
	ids, err := resolveSite(in.mg, i.Module, i.Subprogram, i.Var, i.Site)
	return ids, nil, err
}

func patchID(p corpus.Patch, site string) string {
	id := p.ID()
	if site != "" {
		id += "@" + site
	}
	return id
}

// targetKey canonicalizes the assignment a patch edits, for conflict
// detection. The module is deliberately excluded: subprogram names are
// unique in the corpus, so a module-qualified and an unqualified patch
// of the same assignment still collide.
func targetKey(module, sub, varName string, occ int) string {
	_ = module
	return fmt.Sprintf("%s.%s#%d", strings.ToLower(sub), strings.ToLower(varName), occ)
}

// applyPatch registers a source patch on the plan, rejecting a second
// patch of the same assignment (order-dependent double edits would
// make fingerprints ambiguous). The Site override joins the
// scenario-layer fingerprint only: it steers defect-site resolution,
// not the build, so scenarios differing only in Site still share
// corpus runners and compiled metagraphs.
func applyPatch(p *plan, patch corpus.Patch, site, target string) error {
	if p.patchTargets[target] {
		return conflictf("assignment %s patched twice", target)
	}
	p.patchTargets[target] = true
	p.patches = append(p.patches, patch)
	p.sourceIDs = append(p.sourceIDs, patch.ID())
	if site != "" {
		p.siteIDs = append(p.siteIDs, patchID(patch, site))
	}
	return nil
}

// resolveSite maps a patch target onto metagraph defect nodes: an
// explicit Site wins (node key, else canonical name); otherwise the
// assignment's LHS is resolved as subprogram-local, then module-level,
// then by canonical name.
func resolveSite(mg *metagraph.Metagraph, module, sub, varName, site string) ([]int, error) {
	if site != "" {
		if strings.Contains(site, "::") {
			if id, ok := mg.NodeID(site); ok {
				return []int{id}, nil
			}
			return nil, fmt.Errorf("%w: defect site %q not in metagraph",
				corpus.ErrUnknownSubprogram, site)
		}
		if ids := mg.ByCanonical(strings.ToLower(site)); len(ids) > 0 {
			return ids, nil
		}
		return nil, fmt.Errorf("%w: defect site %q not in metagraph",
			corpus.ErrUnknownSubprogram, site)
	}
	v := strings.ToLower(varName)
	if module != "" {
		m := strings.ToLower(module)
		if id, ok := mg.NodeID(m + "::" + strings.ToLower(sub) + "::" + v); ok {
			return []int{id}, nil
		}
		if id, ok := mg.NodeID(m + "::::" + v); ok {
			return []int{id}, nil
		}
	}
	if ids := mg.ByCanonical(v); len(ids) > 0 {
		return ids, nil
	}
	return nil, fmt.Errorf("%w: defect variable %q not in metagraph",
		corpus.ErrUnknownSubprogram, varName)
}

// --- PRNG swap -----------------------------------------------------

type prngInjection struct{}

// MersennePRNG swaps the model's random_number generator from the
// CESM-like KISS default to Mersenne Twister (§6.2 RAND-MT).
func MersennePRNG() Injection { return prngInjection{} }

// ID is the injection fingerprint.
func (prngInjection) ID() string { return "prng:mt19937" }

func (prngInjection) apply(p *plan) error {
	if p.prngSet {
		return conflictf("two PRNG swaps")
	}
	p.prngSet = true
	p.expRun.RNG = model.RNGMersenne
	p.runIDs = append(p.runIDs, "prng:mt19937")
	return nil
}

// sites are the variables immediately defined by PRNG output (§6.2).
func (prngInjection) sites(in siteInput) ([]int, []string, error) {
	var out []int
	for i := range in.mg.Nodes {
		n := in.mg.Nodes[i]
		if n.Intrinsic && strings.HasPrefix(n.Canonical, "random_number_") {
			for _, v := range in.mg.G.Out(i) {
				out = append(out, int(v))
			}
		}
	}
	sort.Ints(out)
	return out, nil, nil
}

// --- FMA toggles ---------------------------------------------------

type fmaInjection struct {
	modules []string // sorted, deduplicated; empty = every module
}

// EnableFMA enables fused multiply-add in the named modules — or, with
// no arguments, everywhere (the §6.4 AVX2 port). Defect sites come
// from the KGen kernel comparison: the Morrison-Gettelman variables
// whose values diverge between the FMA-off and FMA-on builds.
func EnableFMA(modules ...string) Injection {
	set := map[string]bool{}
	for _, m := range modules {
		set[strings.ToLower(m)] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return fmaInjection{modules: out}
}

// ID is the injection fingerprint.
func (i fmaInjection) ID() string {
	if len(i.modules) == 0 {
		return "fma:*"
	}
	return "fma:" + strings.Join(i.modules, ",")
}

func (i fmaInjection) apply(p *plan) error {
	if p.fmaSet {
		return conflictf("two FMA policies")
	}
	p.fmaSet = true
	if len(i.modules) == 0 {
		p.expRun.FMA = func(string) bool { return true }
	} else {
		set := make(map[string]bool, len(i.modules))
		for _, m := range i.modules {
			set[m] = true
		}
		p.expRun.FMA = func(m string) bool { return set[m] }
	}
	p.runIDs = append(p.runIDs, i.ID())
	return nil
}

func (i fmaInjection) sites(in siteInput) ([]int, []string, error) {
	off, err := in.control.Run(model.RunConfig{KernelWatch: KernelWatch})
	if err != nil {
		return nil, nil, err
	}
	on, err := in.exper.Run(model.RunConfig{KernelWatch: KernelWatch, FMA: in.expRun.FMA})
	if err != nil {
		return nil, nil, err
	}
	flagged := kgen.CompareKernels(off.Engine.Captured().Kernel, on.Engine.Captured().Kernel, kgen.RMSThreshold)
	var ids []int
	var names []string
	for _, f := range flagged {
		names = append(names, f.Variable)
		if id, ok := in.mg.NodeID(KernelWatch + "::" + f.Variable); ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, names, nil
}

// --- Ensemble-parameter perturbations ------------------------------

type paramInjection struct {
	name  string
	value float64
}

// PerturbParameter perturbs one of the corpus generation parameters
// that shape the ensemble: "turbcoef" (internal-variability coupling),
// "fmagain" (the deterministic FMA-sensitive cancellation gain) or
// "auxfmagain" (the distributed weak FMA kernels).
func PerturbParameter(name string, value float64) Injection {
	return paramInjection{name: strings.ToLower(name), value: value}
}

// ID is the injection fingerprint.
func (i paramInjection) ID() string {
	return fmt.Sprintf("param:%s=%s", i.name, corpus.FormatFactor(i.value))
}

func (i paramInjection) apply(p *plan) error {
	if p.params[i.name] {
		return conflictf("parameter %s perturbed twice", i.name)
	}
	p.params[i.name] = true
	switch i.name {
	case "turbcoef":
		p.cfg.TurbCoef = i.value
	case "fmagain":
		p.cfg.FMAGain = i.value
	case "auxfmagain":
		p.cfg.AuxFMAGain = i.value
	default:
		return fmt.Errorf("unknown ensemble parameter %q (want turbcoef, fmagain or auxfmagain)", i.name)
	}
	p.sourceIDs = append(p.sourceIDs, i.ID())
	return nil
}

// Parameter perturbations change coefficients woven through the whole
// generated tree; they have no single defect node.
func (paramInjection) sites(siteInput) ([]int, []string, error) { return nil, nil, nil }

// --- The prewired catalog ------------------------------------------

// fromBugPatch lifts a legacy corpus.BugPatch definition into a
// SourceReplace injection, so the corpus package stays the single
// source of truth for the catalog's patch literals.
func fromBugPatch(b corpus.Bug, site string) Injection {
	p, ok := corpus.BugPatch(b)
	if !ok {
		panic(fmt.Sprintf("experiments: no patch for bug %v", b))
	}
	r := p.(corpus.ReplaceInAssign)
	return SourceReplace{Module: r.Module, Subprogram: r.Subprogram,
		Var: r.Var, Occurrence: r.Occurrence, Old: r.Old, New: r.New, Site: site}
}

// WsubDefect transposes 0.20 to 2.00 in microp_aero's wsub assignment
// (§6.1 WSUBBUG). The defect site is every node with canonical name
// wsub — the paper counts the whole near-isolated wsub region.
func WsubDefect() Injection { return fromBugPatch(corpus.BugWsub, "wsub") }

// GoffGratchDefect changes the water-boiling-temperature coefficient
// 8.1328e-3 to 8.1828e-3 in the Goff-Gratch elemental function (§6.3).
// The paper's defect site is the function result es, not the edited
// intermediate e2.
func GoffGratchDefect() Injection {
	return fromBugPatch(corpus.BugGoffGratch, "wv_saturation::goffgratch_svp::es")
}

// Dyn3Defect perturbs a coefficient in the dyn3 hydrostatic pressure
// subroutine (§8.2.2 DYN3BUG).
func Dyn3Defect() Injection { return fromBugPatch(corpus.BugDyn3, "") }

// RandomIdxDefect is the RANDOMBUG array-index error feeding the
// derived-type state variable omega (§8.2.1).
func RandomIdxDefect() Injection { return fromBugPatch(corpus.BugRandomIdx, "") }

// LandDefect perturbs the land model's snow retention coefficient
// (§6's land-module defect).
func LandDefect() Injection { return fromBugPatch(corpus.BugLand, "") }

// BugInjection maps a legacy Bug enum value to its catalog injection.
func BugInjection(b corpus.Bug) (Injection, bool) {
	switch b {
	case corpus.BugWsub:
		return WsubDefect(), true
	case corpus.BugGoffGratch:
		return GoffGratchDefect(), true
	case corpus.BugDyn3:
		return Dyn3Defect(), true
	case corpus.BugRandomIdx:
		return RandomIdxDefect(), true
	case corpus.BugLand:
		return LandDefect(), true
	}
	return nil, false
}
