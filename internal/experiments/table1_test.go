package experiments

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/metagraph"
)

func TestModuleCentralityRanking(t *testing.T) {
	c := corpus.Generate(corpus.Config{AuxModules: 30, Seed: 2})
	mods, err := c.Parse()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := metagraph.Build(mods)
	if err != nil {
		t.Fatal(err)
	}
	ranked := ModuleCentralityRanking(mg)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	pos := map[string]int{}
	for i, m := range ranked {
		pos[m] = i
	}
	// The state-bearing and microphysics modules must rank well above
	// the median: they are the information-flow hubs.
	mid := len(ranked) / 2
	for _, hub := range []string{"physics_types", "micro_mg"} {
		if pos[hub] > mid {
			t.Fatalf("%s ranked %d of %d; want hub position", hub, pos[hub], len(ranked))
		}
	}
}

// TestTable1Shape verifies the ordering of the paper's Table 1:
// enabled >= largest-K >= random-K >> central-K and disabled (both
// near the false-positive floor).
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 sweep is slow")
	}
	rows, err := Table1(Table1Setup{
		Corpus:        corpus.Config{AuxModules: 40, Seed: 2},
		EnsembleSize:  30,
		ExpSize:       8,
		TopK:          8,
		RandomSamples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	enabled, largest, random, central, disabled :=
		rows[0].FailureRate, rows[1].FailureRate, rows[2].FailureRate,
		rows[3].FailureRate, rows[4].FailureRate
	t.Logf("enabled=%.2f largest=%.2f random=%.2f central=%.2f disabled=%.2f",
		enabled, largest, random, central, disabled)
	if enabled < 0.8 {
		t.Fatalf("all-enabled rate = %v; want high", enabled)
	}
	if central > 0.25 {
		t.Fatalf("central-disabled rate = %v; want near floor", central)
	}
	if disabled > 0.25 {
		t.Fatalf("all-disabled rate = %v; want near floor", disabled)
	}
	if largest < central || random < central {
		t.Fatalf("ordering violated: largest=%v random=%v central=%v",
			largest, random, central)
	}
	// Largest/random keep most of the failure signal (the paper's
	// 86%/83% vs 8%).
	if largest < 0.5 || random < 0.5 {
		t.Fatalf("largest=%v random=%v; want majority failures", largest, random)
	}
}
