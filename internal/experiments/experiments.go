// Package experiments wires the full pipeline of the paper end to end
// for each of the six experiments of §6 and the supplement: build the
// (bugged) corpus, run ensemble and experimental sets, confirm the
// consistency-test failure, select the affected output variables,
// coverage-filter and compile the source into the metagraph, slice,
// and run the Algorithm 5.4 refinement with either simulated
// (reachability) or real (value-snapshot) sampling.
//
// The pipeline is exposed two ways: the staged, compile-once Session
// (see session.go) that caches the corpus, the ensemble ECT
// fingerprint and the compiled metagraphs across experiments, and the
// original one-shot Run/Table1 functions, now thin wrappers over a
// single-use Session.
package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/coverage"
	"github.com/climate-rca/rca/internal/ect"
	"github.com/climate-rca/rca/internal/lasso"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/slicing"
	"github.com/climate-rca/rca/internal/stats"
)

// Spec names one experiment configuration over the closed defect
// catalog.
//
// Deprecated: Spec is the closed-world predecessor of the Scenario
// interface — it can only express the prewired defects. New code
// should compose a Scenario from Injections (see NewScenario); legacy
// Specs convert losslessly with Scenario().
type Spec struct {
	Name string
	// Bug is the injected source defect (source-change experiments).
	Bug corpus.Bug
	// Mersenne swaps the model PRNG (RAND-MT).
	Mersenne bool
	// FMA enables fused multiply-add in every module (AVX2).
	FMA bool
	// CAMOnly restricts the slice to atmosphere-component modules
	// (the paper's default; Figure 15 lifts it).
	CAMOnly bool
	// SelectK is the lasso target support (paper: ~5).
	SelectK int
}

// Scenario converts the legacy closed-world Spec into an open-world
// Scenario: the Bug enum maps to its catalog injection, Mersenne to
// MersennePRNG, FMA to EnableFMA everywhere. For the prewired catalog
// (one injection per Spec) the conversion reproduces the legacy
// pipeline bit-identically. A Spec combining several fields becomes a
// true multi-defect scenario, whose defect sites are the union over
// all injections — the legacy path reported only the highest-priority
// field's sites (Bug over Mersenne over FMA).
func (s Spec) Scenario() Scenario {
	var injs []Injection
	if inj, ok := BugInjection(s.Bug); ok {
		injs = append(injs, inj)
	}
	if s.Mersenne {
		injs = append(injs, MersennePRNG())
	}
	if s.FMA {
		injs = append(injs, EnableFMA())
	}
	return NewScenario(s.Name, ScenarioOptions{CAMOnly: s.CAMOnly, SelectK: s.SelectK}, injs...)
}

// Standard experiment specs (§6 and supplement §8.2).
var (
	WSUBBUG    = Spec{Name: "WSUBBUG", Bug: corpus.BugWsub, CAMOnly: true, SelectK: 1}
	RANDMT     = Spec{Name: "RAND-MT", Mersenne: true, CAMOnly: true, SelectK: 5}
	GOFFGRATCH = Spec{Name: "GOFFGRATCH", Bug: corpus.BugGoffGratch, CAMOnly: true, SelectK: 5}
	AVX2       = Spec{Name: "AVX2", FMA: true, CAMOnly: true, SelectK: 5}
	RANDOMBUG  = Spec{Name: "RANDOMBUG", Bug: corpus.BugRandomIdx, CAMOnly: true, SelectK: 1}
	DYN3BUG    = Spec{Name: "DYN3BUG", Bug: corpus.BugDyn3, CAMOnly: true, SelectK: 5}
	// AVX2Full is Figure 15: AVX2 without the CAM restriction.
	AVX2Full = Spec{Name: "AVX2-FULL", FMA: true, CAMOnly: false, SelectK: 5}
	// LANDBUG is the land-module defect the paper mentions locating
	// (§6, "we have successfully located bugs in the land module as
	// well"); the slice is necessarily unrestricted.
	LANDBUG = Spec{Name: "LANDBUG", Bug: corpus.BugLand, CAMOnly: false, SelectK: 2}
)

// catalogSpecs is the single list of every prewired spec (§6 order,
// then the supplement): the wire format's {"experiment": NAME}
// references resolve against it. A new prewired Spec must be added
// here too — TestExperimentCatalogWireParity (root package) pins
// parity with rca.AllExperiments.
var catalogSpecs = []Spec{WSUBBUG, RANDMT, GOFFGRATCH, AVX2, RANDOMBUG, DYN3BUG, AVX2Full, LANDBUG}

// Setup sizes the one-shot harness.
type Setup struct {
	Corpus       corpus.Config
	EnsembleSize int // default 40
	ExpSize      int // default 10
	// Sampler selects the step-7 instrumentation strategy; nil maps
	// the deprecated SamplerKind/Magnitudes fields (default
	// ValueSampling).
	Sampler Sampler
	// SamplerKind selects step-7 instrumentation: "value" (real
	// runtime snapshots), "reach" (the paper's reachability
	// simulation) or "graded" (magnitude-ranked). Default "value".
	// Unrecognized kinds are rejected with an error (they used to fall
	// back to value sampling silently).
	//
	// Deprecated: set the typed Sampler field instead.
	SamplerKind string
	// Magnitudes enables the §6.3 future-work extension: graded
	// sampling that contracts to the greatest-difference node when
	// plain contraction would hit a fixed point. Requires value
	// sampling.
	//
	// Deprecated: set Sampler to GradedSampling() instead.
	Magnitudes bool
	Refine     core.Options
}

func (s Setup) withDefaults() Setup {
	if s.EnsembleSize == 0 {
		s.EnsembleSize = 40
	}
	if s.ExpSize == 0 {
		s.ExpSize = 10
	}
	if s.SamplerKind == "" {
		s.SamplerKind = "value"
	}
	return s
}

// Outcome is everything an experiment produces.
type Outcome struct {
	// Name labels the investigation (the scenario's display name).
	Name string
	// Scenario is the investigation definition that produced this
	// outcome (a converted Spec for the deprecated one-shot path).
	Scenario Scenario
	// FailureRate is the UF-ECT failure rate of the experimental set.
	FailureRate float64
	// SelectedOutputs are the output labels picked by the lasso (or
	// median-distance fallback), most important first.
	SelectedOutputs []string
	// Internals are the corresponding internal canonical names
	// (Table 2's right column).
	Internals []string
	// MedianRanking is the §3 distribution-based ranking for
	// comparison.
	MedianRanking []stats.VariableDistance
	// FirstStep is the §3 direct first-time-step comparison, tried
	// before the distribution methods (nil if it errored).
	FirstStep *FirstStepResult
	// Coverage is the hybrid-slicing dynamic filter report.
	Coverage coverage.Report
	// GraphNodes/GraphEdges size the full metagraph; SliceNodes/
	// SliceEdges the induced subgraph of Algorithm 5.4 step 4.
	GraphNodes, GraphEdges int
	SliceNodes, SliceEdges int
	// BugNodes are the known defect locations (metagraph ids);
	// BugDisplays their paper-style names.
	BugNodes    []int
	BugDisplays []string
	// KGenFlagged lists the KGen-flagged kernel variables (AVX2 only).
	KGenFlagged []string
	// Refine is the Algorithm 5.4 trace.
	Refine *core.Result
	// BugInSlice reports whether the slice contains a bug node.
	BugInSlice bool
	// BugLocated: refinement instrumented a bug node or retained one
	// in the final (small) subgraph.
	BugLocated bool
	// Metagraph gives callers access for follow-on analysis.
	Metagraph *metagraph.Metagraph
	// Slice is the induced subgraph.
	Slice *slicing.Slice
}

// Run executes the full pipeline for one legacy experiment spec.
//
// Deprecated: Run builds a single-use Session per call, regenerating
// the corpus, the ensemble and the metagraph every time, and cannot
// express scenarios beyond the closed Spec fields. Use NewSession and
// Session.Run (or Session.RunAll) with a Scenario to amortize that
// work across investigations.
func Run(spec Spec, setup Setup) (*Outcome, error) {
	return RunScenario(spec.Scenario(), setup)
}

// RunScenario executes the full pipeline for one scenario on a
// single-use Session.
//
// Deprecated: RunScenario regenerates the corpus, the ensemble and the
// metagraph every call. Use NewSession and Session.Run to amortize
// that work across investigations.
func RunScenario(sc Scenario, setup Setup) (*Outcome, error) {
	s, err := sessionForSetup(setup)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background(), sc)
}

// sessionForSetup translates the legacy Setup into a Session.
func sessionForSetup(setup Setup) (*Session, error) {
	setup = setup.withDefaults()
	sampler, err := SamplerForSetup(setup)
	if err != nil {
		return nil, err
	}
	return NewSession(setup.Corpus,
		WithEnsembleSize(setup.EnsembleSize),
		WithExpSize(setup.ExpSize),
		WithSampler(sampler),
		WithRefineOptions(setup.Refine)), nil
}

// group transposes runs into per-variable samples.
func group(runs []ect.RunOutput) map[string][]float64 {
	out := make(map[string][]float64)
	for _, r := range runs {
		for k, v := range r {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// selectOutputs applies §3: try the lasso with the scenario's target
// K; when the problem is degenerate (e.g. a single wildly affected
// variable) fall back to the median-distance ranking.
func selectOutputs(k int, vars []string, ens, exp []ect.RunOutput,
	ranking []stats.VariableDistance, solver lasso.Solver) ([]string, lasso.PathStats, error) {
	if k <= 0 {
		k = 5
	}
	n := len(ens) + len(exp)
	d := len(vars)
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i, r := range ens {
		for j, v := range vars {
			x[i*d+j] = r[v]
		}
	}
	for i, r := range exp {
		row := len(ens) + i
		y[row] = 1
		for j, v := range vars {
			x[row*d+j] = r[v]
		}
	}
	sel, _, st, err := lasso.SelectKSolver(lasso.Problem{X: x, Y: y, N: n, D: d}, k, 1500, solver)
	if err == nil && len(sel) > 0 {
		var labels []string
		for _, j := range sel {
			labels = append(labels, vars[j])
		}
		// The lasso can latch onto sampling accidents when one
		// variable separates perfectly; intersect sanity: ensure the
		// top median-distance variable is present, prepending it when
		// missing (both methods "mostly coincide", §3).
		if len(ranking) > 0 && !ranking[0].IQROverlap {
			top := ranking[0].Name
			if !contains(labels, top) {
				labels = append([]string{top}, labels...)
			}
		}
		if len(labels) > 10 {
			labels = labels[:10]
		}
		return labels, st, nil
	}
	// Fallback: median-distance selection.
	names := stats.SelectAffected(ranking, 10)
	if len(names) == 0 {
		return nil, st, fmt.Errorf("experiments: variable selection found nothing")
	}
	if len(names) > k {
		names = names[:k]
	}
	return names, st, nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// WriteSliceDot renders the induced subgraph with the first
// iteration's communities, the bug locations highlighted in red, and
// the sampled central nodes in orange — the styling of Figures 5-8.
func (o *Outcome) WriteSliceDot(w io.Writer) error {
	opt := metagraph.DotOptions{Name: o.Name, Highlight: o.BugNodes}
	if len(o.Refine.Iterations) > 0 {
		opt.Communities = o.Refine.Iterations[0].Communities
		opt.Secondary = o.Refine.Iterations[0].Sampled
	}
	return o.Metagraph.WriteDot(w, o.Slice.Sub, o.Slice.NodeMap, opt)
}
