package experiments

import (
	"context"

	"github.com/climate-rca/rca/internal/artifact"
	"github.com/climate-rca/rca/internal/binenc"
	"github.com/climate-rca/rca/internal/bytecode"
	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/coverage"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
)

// WithArtifacts attaches a content-addressed artifact store to the
// session: the expensive build artifacts — generated+patched corpora
// (per source fingerprint), compiled bytecode programs (per source
// fingerprint) and coverage-filtered metagraphs (per build
// fingerprint) — gain a write-through/read-back disk layer under
// their cache keys. A fresh session (or a fresh process) pointed at a
// warm store skips corpus generation, bytecode compilation and the
// coverage trace entirely; builds are deduplicated across every
// process sharing the store via its lock-file singleflight.
func WithArtifacts(store *artifact.Store) Option {
	return func(s *Session) { s.store = store }
}

// ArtifactStore returns the session's attached store, or nil.
func (s *Session) ArtifactStore() *artifact.Store { return s.store }

// corpusFor builds (or restores) the generated+patched corpus for one
// source fingerprint. With a store attached, the corpus is built at
// most once across every process sharing the store; without one, it is
// built in-process. Decode failures (a stale codec version survives on
// disk across a binary upgrade) rebuild cleanly and refresh the blob.
func (s *Session) corpusFor(ctx context.Context, key string, cfg corpus.Config, patches []corpus.Patch) (*corpus.Corpus, error) {
	build := func() (*corpus.Corpus, error) {
		base := corpus.Generate(cfg)
		if len(patches) > 0 {
			patched, err := corpus.Apply(base, patches...)
			if err != nil {
				return nil, err
			}
			base = patched
		}
		return base, nil
	}
	if s.store == nil {
		return build()
	}
	var fresh *corpus.Corpus
	data, built, err := s.store.GetOrBuild(ctx, artifact.ClassCorpus, key, func() ([]byte, error) {
		c, err := build()
		if err != nil {
			return nil, err
		}
		fresh = c
		return c.Encode()
	})
	if err != nil {
		return nil, err
	}
	if built {
		return fresh, nil
	}
	if c, err := corpus.Decode(data); err == nil {
		return c, nil
	}
	c, err := build()
	if err != nil {
		return nil, err
	}
	if enc, eerr := c.Encode(); eerr == nil {
		_ = s.store.Put(artifact.ClassCorpus, key, enc)
	}
	return c, nil
}

// restoreProgram gives the runner its compiled bytecode program from
// the store, or compiles and persists it — at most one compile per
// source fingerprint across every process on the store. Best-effort:
// any store trouble just leaves the runner to compile lazily as
// before. Tree-engine sessions never touch program artifacts.
func (s *Session) restoreProgram(ctx context.Context, key string, r *model.Runner) {
	if s.store == nil || s.engine == model.EngineTree {
		return
	}
	data, built, err := s.store.GetOrBuild(ctx, artifact.ClassProgram, key, func() ([]byte, error) {
		return bytecode.EncodeProgram(r.Program())
	})
	if err != nil || built {
		return
	}
	if p, err := bytecode.DecodeProgram(data); err == nil {
		r.SetProgram(p)
		return
	}
	// Stale codec version on disk: recompile and refresh the blob.
	if enc, err := bytecode.EncodeProgram(r.Program()); err == nil {
		_ = s.store.Put(artifact.ClassProgram, key, enc)
	}
}

// compiledFor wraps compileStage with the store layer: the §4
// coverage report + metagraph artifact is keyed by the build
// fingerprint, so a warm store skips the two-step coverage trace and
// the metagraph construction.
func (s *Session) compiledFor(ctx context.Context, p *plan) (*Compiled, error) {
	build := func() (*Compiled, error) {
		b, err := s.buildsFor(ctx, p)
		if err != nil {
			return nil, err
		}
		return compileStage(b)
	}
	if s.store == nil {
		return build()
	}
	var fresh *Compiled
	data, built, err := s.store.GetOrBuild(ctx, artifact.ClassCompiled, p.buildKey(), func() ([]byte, error) {
		comp, err := build()
		if err != nil {
			return nil, err
		}
		fresh = comp
		return EncodeCompiled(comp)
	})
	if err != nil {
		return nil, err
	}
	if built {
		return fresh, nil
	}
	if comp, err := DecodeCompiled(data); err == nil {
		return comp, nil
	}
	comp, err := build()
	if err != nil {
		return nil, err
	}
	if enc, eerr := EncodeCompiled(comp); eerr == nil {
		_ = s.store.Put(artifact.ClassCompiled, p.buildKey(), enc)
	}
	return comp, nil
}

// compiledCodecVersion versions the Compiled artifact framing (the
// embedded metagraph payload carries its own codec version).
const compiledCodecVersion uint32 = 1

// EncodeCompiled serializes a §4 Compiled artifact (coverage report +
// metagraph) to the deterministic artifact format.
func EncodeCompiled(c *Compiled) ([]byte, error) {
	mg, err := c.Metagraph.Encode()
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter(len(mg) + 64)
	w.U32(compiledCodecVersion)
	w.Int(c.Coverage.ModulesBefore)
	w.Int(c.Coverage.ModulesAfter)
	w.Int(c.Coverage.SubprogramsBefore)
	w.Int(c.Coverage.SubprogramsAfter)
	w.Raw(mg)
	return w.Bytes(), nil
}

// DecodeCompiled reconstructs a Compiled artifact from EncodeCompiled
// bytes.
func DecodeCompiled(data []byte) (*Compiled, error) {
	r := binenc.NewReader(data)
	if v := r.U32(); v != compiledCodecVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, binenc.ErrMalformed
	}
	rep := coverage.Report{
		ModulesBefore:     r.Int(),
		ModulesAfter:      r.Int(),
		SubprogramsBefore: r.Int(),
		SubprogramsAfter:  r.Int(),
	}
	payload := r.Raw()
	if err := r.Done(); err != nil {
		return nil, err
	}
	mg, err := metagraph.Decode(payload)
	if err != nil {
		return nil, err
	}
	return &Compiled{Coverage: rep, Metagraph: mg}, nil
}
