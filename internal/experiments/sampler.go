package experiments

import (
	"fmt"

	"github.com/climate-rca/rca/internal/core"
	"github.com/climate-rca/rca/internal/metagraph"
	"github.com/climate-rca/rca/internal/model"
	"github.com/climate-rca/rca/internal/slicing"
)

// RefineInput is everything a Sampler needs to run the Algorithm 5.4
// refinement over one compiled, sliced experiment.
type RefineInput struct {
	Metagraph *metagraph.Metagraph
	Slice     *slicing.Slice
	// Control and Exper are the two model builds; RunCfg/ExpRunCfg are
	// their base run configurations (RNG and FMA settings).
	Control, Exper    *model.Runner
	RunCfg, ExpRunCfg model.RunConfig
	// BugNodes are the known defect locations (metagraph ids), used by
	// the reachability simulation and the step-9 success check.
	BugNodes []int
	Options  core.Options
}

// Sampler selects the step-7 instrumentation strategy for the
// refinement loop. It replaces the stringly-typed Setup.SamplerKind:
// the three paper variants are ValueSampling (real runtime snapshots),
// ReachSampling (the paper's reachability simulation) and
// GradedSampling (the §6.3 magnitude-ranked extension).
type Sampler interface {
	// Kind is the strategy's stable name ("value", "reach", "graded").
	Kind() string
	// Refine runs Algorithm 5.4 with this strategy's instrumentation.
	Refine(in RefineInput) (*core.Result, error)
}

// snapshotRuns integrates both builds once with full variable
// snapshots on the same perturbation member — the instrumented pair
// every value-based sampler compares.
func snapshotRuns(in RefineInput) (ens, exp map[string][]float64, err error) {
	ctl := in.RunCfg
	ctl.Member = 1000
	ctl.SnapshotAll = true
	cres, err := in.Control.Run(ctl)
	if err != nil {
		return nil, nil, err
	}
	ex := in.ExpRunCfg
	ex.Member = 1000
	ex.SnapshotAll = true
	eres, err := in.Exper.Run(ex)
	if err != nil {
		return nil, nil, err
	}
	return cres.Engine.Captured().AllValues, eres.Engine.Captured().AllValues, nil
}

type valueSampler struct{ tol float64 }

// ValueSampling instruments nodes with real runtime value snapshots
// and compares per-node values between the builds; tol <= 0 selects
// the default normalized-RMS tolerance (1e-12).
func ValueSampling(tol float64) Sampler { return valueSampler{tol: tol} }

func (valueSampler) Kind() string { return "value" }

func (v valueSampler) Refine(in RefineInput) (*core.Result, error) {
	ens, exp, err := snapshotRuns(in)
	if err != nil {
		return nil, err
	}
	keyOf := func(n int) string { return in.Metagraph.Nodes[n].Key }
	s := core.ValueSampler(keyOf, ens, exp, v.tol)
	return core.Refine(in.Slice.Sub, in.Slice.NodeMap, s, in.BugNodes, in.Options)
}

type reachSampler struct{}

// ReachSampling simulates instrumentation the way the paper does
// (§5.2): a node registers a difference iff it is reachable from a
// known bug node in the full metagraph.
func ReachSampling() Sampler { return reachSampler{} }

func (reachSampler) Kind() string { return "reach" }

func (reachSampler) Refine(in RefineInput) (*core.Result, error) {
	s := core.ReachabilitySampler(in.Metagraph.G, in.BugNodes)
	return core.Refine(in.Slice.Sub, in.Slice.NodeMap, s, in.BugNodes, in.Options)
}

type gradedSampler struct{}

// GradedSampling is the §6.3 future-work extension: value snapshots
// ranked by difference magnitude, contracting to the
// greatest-difference node when plain contraction would hit a fixed
// point.
func GradedSampling() Sampler { return gradedSampler{} }

func (gradedSampler) Kind() string { return "graded" }

func (gradedSampler) Refine(in RefineInput) (*core.Result, error) {
	ens, exp, err := snapshotRuns(in)
	if err != nil {
		return nil, err
	}
	keyOf := func(n int) string { return in.Metagraph.Nodes[n].Key }
	g := core.MagnitudeSampler(keyOf, ens, exp)
	return core.RefineWithMagnitudes(in.Slice.Sub, in.Slice.NodeMap, g, in.BugNodes, in.Options)
}

// SamplerForSetup resolves a Setup's sampler: the typed Sampler field
// wins; otherwise the deprecated SamplerKind/Magnitudes strings are
// mapped onto the strategy implementations.
func SamplerForSetup(s Setup) (Sampler, error) {
	if s.Sampler != nil {
		return s.Sampler, nil
	}
	kind := s.SamplerKind
	if kind == "" {
		kind = "value"
	}
	switch kind {
	case "value":
		if s.Magnitudes {
			return GradedSampling(), nil
		}
		return ValueSampling(0), nil
	case "reach":
		return ReachSampling(), nil
	case "graded":
		return GradedSampling(), nil
	}
	return nil, fmt.Errorf("experiments: unknown sampler kind %q (want value, reach, or graded)", s.SamplerKind)
}
