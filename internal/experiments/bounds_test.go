package experiments

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
)

// TestExperimentalOutputsBounds: negative or overflowing n/offset must
// return ErrInvalidBounds before any model work, never slice-panic.
func TestExperimentalOutputsBounds(t *testing.T) {
	ctx := context.Background()
	s := NewSession(corpus.Config{AuxModules: 10, Seed: 5},
		WithEnsembleSize(4), WithExpSize(2))
	sc := NewScenario("CLEAN", ScenarioOptions{})

	cases := []struct {
		name      string
		n, offset int
		wantErr   bool
		wantLen   int
	}{
		{"negative n", -1, 0, true, 0},
		{"negative offset", 1, -1, true, 0},
		{"both negative", -3, -7, true, 0},
		{"min int n", math.MinInt, 0, true, 0},
		{"min int offset", 1, math.MinInt, true, 0},
		{"overflowing sum", 2, math.MaxInt - 1, true, 0},
		{"max int n", math.MaxInt, 1, true, 0},
		{"empty set", 0, 0, false, 0},
		{"empty set at offset", 0, 5, false, 0},
		{"small set", 2, 3, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outs, err := s.ExperimentalOutputs(ctx, sc, tc.n, tc.offset)
			if tc.wantErr {
				if !errors.Is(err, ErrInvalidBounds) {
					t.Fatalf("err = %v, want ErrInvalidBounds", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(outs) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(outs), tc.wantLen)
			}
		})
	}
}

// TestExperimentalOutputsBoundsDoNotPoisonSession: a rejected request
// must leave the session fully usable.
func TestExperimentalOutputsBoundsDoNotPoisonSession(t *testing.T) {
	ctx := context.Background()
	s := NewSession(corpus.Config{AuxModules: 10, Seed: 5},
		WithEnsembleSize(4), WithExpSize(2))
	sc := NewScenario("CLEAN", ScenarioOptions{})
	if _, err := s.ExperimentalOutputs(ctx, sc, -1, -1); !errors.Is(err, ErrInvalidBounds) {
		t.Fatalf("err = %v, want ErrInvalidBounds", err)
	}
	outs, err := s.ExperimentalOutputs(ctx, sc, 1, 0)
	if err != nil || len(outs) != 1 {
		t.Fatalf("session unusable after rejected bounds: %v (len %d)", err, len(outs))
	}
}
