package experiments

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
)

// TestPaperScalePipeline runs one full experiment on the 561-module
// corpus — the scale of the paper's quotient graph. Skipped under
// -short; the default run keeps it because it is the headline
// demonstration that the pipeline works beyond toy sizes.
func TestPaperScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale pipeline is slow")
	}
	out, err := Run(GOFFGRATCH, Setup{
		Corpus:       corpus.PaperScale(),
		EnsembleSize: 25,
		ExpSize:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if out.GraphNodes < 10000 {
		t.Fatalf("graph suspiciously small: %d", out.GraphNodes)
	}
	// The slice must shrink the search space by at least an order of
	// magnitude (the paper's 660k LoC → 4k-node subgraph story).
	if out.SliceNodes*10 > out.GraphNodes {
		t.Fatalf("slice %d not ≪ graph %d", out.SliceNodes, out.GraphNodes)
	}
	if !out.BugInSlice || !out.BugLocated {
		t.Fatalf("paper-scale bug missed: inSlice=%v located=%v",
			out.BugInSlice, out.BugLocated)
	}
	t.Logf("paper scale: graph %dn/%de, slice %dn/%de, iterations %d",
		out.GraphNodes, out.GraphEdges, out.SliceNodes, out.SliceEdges,
		len(out.Refine.Iterations))
}
