package experiments

import (
	"testing"

	"github.com/climate-rca/rca/internal/corpus"
)

// testSetup keeps CI runtimes modest while retaining the shape of the
// paper's experiments.
func testSetup() Setup {
	return Setup{
		Corpus:       corpus.Config{AuxModules: 40, Seed: 2},
		EnsembleSize: 30,
		ExpSize:      8,
	}
}

func TestWSUBBUGPipeline(t *testing.T) {
	out, err := Run(WSUBBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("WSUBBUG failure rate = %v", out.FailureRate)
	}
	// §6.1: wsub dominates the median-distance ranking by a wide
	// margin.
	if out.MedianRanking[0].Name != "WSUB" {
		t.Fatalf("top ranked variable = %s", out.MedianRanking[0].Name)
	}
	if len(out.MedianRanking) > 1 && out.MedianRanking[1].Distance > 0 {
		ratio := out.MedianRanking[0].Distance / out.MedianRanking[1].Distance
		if ratio < 1000 {
			t.Fatalf("wsub distance ratio = %v; want > 1000 (paper §6.1)", ratio)
		}
	}
	// The induced subgraph is tiny and contains the bug.
	if out.SliceNodes > 25 {
		t.Fatalf("WSUBBUG slice = %d nodes; want tiny", out.SliceNodes)
	}
	if !out.BugInSlice {
		t.Fatal("bug not contained in slice")
	}
	if !out.BugLocated {
		t.Fatal("refinement failed to locate bug")
	}
}

func TestGOFFGRATCHPipeline(t *testing.T) {
	out, err := Run(GOFFGRATCH, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if out.SliceNodes < 30 {
		t.Fatalf("GOFFGRATCH slice suspiciously small: %d", out.SliceNodes)
	}
	if !out.BugInSlice {
		t.Fatalf("goffgratch es not in slice (selected %v -> %v)",
			out.SelectedOutputs, out.Internals)
	}
	if !out.BugLocated {
		t.Fatalf("refinement lost the bug: %+v", out.Refine.Iterations)
	}
	// Cloud/snow variables should dominate the selection (Table 2).
	cloudy := 0
	for _, v := range out.SelectedOutputs {
		switch v {
		case "CLOUD", "CLDLOW", "CLDMED", "CLDHGH", "CLDTOT", "AQSNOW",
			"ANSNOW", "FREQS", "PRECSL", "CCN3":
			cloudy++
		}
	}
	if cloudy == 0 {
		t.Fatalf("no cloud/snow variables selected: %v", out.SelectedOutputs)
	}
}

func TestRANDMTPipeline(t *testing.T) {
	out, err := Run(RANDMT, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if len(out.BugNodes) == 0 {
		t.Fatal("no PRNG-defined bug nodes identified")
	}
	if !out.BugLocated && !out.BugInSlice {
		t.Fatalf("RAND-MT sources entirely missed; selected %v", out.SelectedOutputs)
	}
}

func TestAVX2Pipeline(t *testing.T) {
	out, err := Run(AVX2, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if len(out.KGenFlagged) < 5 {
		t.Fatalf("KGen flagged only %v", out.KGenFlagged)
	}
	if len(out.BugNodes) == 0 {
		t.Fatal("no KGen-flagged nodes in graph")
	}
	if !out.BugInSlice {
		t.Fatal("no flagged variable in slice")
	}
	if !out.BugLocated {
		t.Fatal("refinement failed to reach flagged variables")
	}
}

func TestDYN3BUGPipeline(t *testing.T) {
	out, err := Run(DYN3BUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if !out.BugInSlice || !out.BugLocated {
		t.Fatalf("dyn3 bug missed: inSlice=%v located=%v selected=%v",
			out.BugInSlice, out.BugLocated, out.SelectedOutputs)
	}
}

func TestRANDOMBUGPipeline(t *testing.T) {
	out, err := Run(RANDOMBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.FailureRate < 0.8 {
		t.Fatalf("failure rate = %v", out.FailureRate)
	}
	if !out.BugInSlice || !out.BugLocated {
		t.Fatalf("randombug missed: inSlice=%v located=%v selected=%v",
			out.BugInSlice, out.BugLocated, out.SelectedOutputs)
	}
}

func TestCoverageReportedInOutcome(t *testing.T) {
	out, err := Run(WSUBBUG, testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if out.Coverage.ModulesBefore == 0 || out.Coverage.ModuleReductionPct() <= 0 {
		t.Fatalf("coverage report empty: %+v", out.Coverage)
	}
	if out.GraphNodes == 0 || out.SliceNodes == 0 {
		t.Fatalf("graph sizes missing: %+v", out)
	}
}

func TestReachabilitySamplerVariant(t *testing.T) {
	s := testSetup()
	s.SamplerKind = "reach"
	out, err := Run(GOFFGRATCH, s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.BugLocated {
		t.Fatal("reachability-sampled refinement lost the bug")
	}
}
