// The typed error model of the Scenario API. Callers classify
// failures with errors.Is/errors.As instead of string matching:
//
//	ErrCanceled                — a per-call context was canceled or
//	                             timed out (also matches ctx.Err())
//	ErrConflictingInjections   — a scenario composes injections that
//	                             contradict each other
//	corpus.ErrUnknownSubprogram — an injection targets a subprogram,
//	                             assignment or metagraph node the
//	                             corpus does not contain
package experiments

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports a pipeline call aborted by its context. Errors
// wrapping it also unwrap to the underlying context error, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
// hold for a canceled run.
var ErrCanceled = errors.New("experiments: canceled")

// ErrConflictingInjections reports a scenario whose injections
// contradict each other (two PRNG swaps, two FMA policies, two
// perturbations of the same parameter, or two patches of the same
// assignment).
var ErrConflictingInjections = errors.New("experiments: conflicting injections")

// ErrInvalidBounds reports a run-set request with negative or
// overflowing count/offset bounds.
var ErrInvalidBounds = errors.New("experiments: invalid experimental-set bounds")

// canceledError adapts a context error into the typed model.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return "experiments: canceled: " + e.cause.Error() }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }
func (e *canceledError) Unwrap() error        { return e.cause }

// ctxErr returns the context's error wrapped as an ErrCanceled, or nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &canceledError{cause: err}
	}
	return nil
}

// isCanceled reports whether err is a cancellation of any flavor —
// the class of errors the session caches must never memoize.
func isCanceled(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// conflictf builds an ErrConflictingInjections with detail.
func conflictf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrConflictingInjections, fmt.Sprintf(format, args...))
}
