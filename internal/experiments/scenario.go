// The Scenario model: an experiment is no longer one of six prewired
// Spec values but an ordered set of composable Injections — source
// patches over named corpus subprograms, a PRNG swap, per-module FMA
// toggles, ensemble-parameter perturbations — plus slicing options.
// Every injection carries a stable fingerprint ID(); the concatenated
// fingerprint replaces the closed (Bug, Mersenne, FMA) tuple as the
// Session cache key, so user-defined and multi-defect scenarios get
// the same compile-once caching as the paper's catalog.
package experiments

import (
	"fmt"
	"strings"

	"github.com/climate-rca/rca/internal/corpus"
	"github.com/climate-rca/rca/internal/model"
)

// ScenarioOptions control how the investigation slices, independent of
// what the scenario injects.
type ScenarioOptions struct {
	// CAMOnly restricts the slice to atmosphere-component modules
	// (the paper's default; Figure 15 lifts it).
	CAMOnly bool
	// SelectK is the lasso target support (paper: ~5; 0 defaults to 5).
	SelectK int
}

// Scenario is one root-cause investigation: a name, an ordered set of
// injections defining the experimental configuration, and slicing
// options. Implementations beyond NewScenario are welcome — the
// Session only reads these three accessors.
type Scenario interface {
	// Name labels reports; it does not participate in cache keys.
	Name() string
	// Injections returns the composed defects/configuration changes,
	// applied in order.
	Injections() []Injection
	// Options returns the slicing options.
	Options() ScenarioOptions
}

// scenarioDef is the value NewScenario builds.
type scenarioDef struct {
	name string
	opts ScenarioOptions
	injs []Injection
}

func (s *scenarioDef) Name() string            { return s.name }
func (s *scenarioDef) Injections() []Injection { return append([]Injection(nil), s.injs...) }
func (s *scenarioDef) Options() ScenarioOptions {
	return s.opts
}

// NewScenario composes injections into a runnable scenario.
func NewScenario(name string, opts ScenarioOptions, injs ...Injection) Scenario {
	return &scenarioDef{name: name, opts: opts, injs: append([]Injection(nil), injs...)}
}

// plan is a scenario lowered onto the build layers: corpus generation
// parameters, source patches, and the experimental run configuration.
// It also carries the layered fingerprints the Session caches key on.
type plan struct {
	scenario Scenario
	cfg      corpus.Config  // generation parameters (perturbed)
	patches  []corpus.Patch // source patches, in injection order
	expRun   model.RunConfig

	sourceIDs []string // injections that alter the generated source
	runIDs    []string // injections that alter the run configuration
	siteIDs   []string // defect-site overrides (resolution only, not builds)

	// conflict bookkeeping
	prngSet      bool
	fmaSet       bool
	params       map[string]bool
	patchTargets map[string]bool
}

// buildPlan lowers a scenario over the session's base corpus
// configuration, validating injection compatibility.
func buildPlan(base corpus.Config, sc Scenario) (*plan, error) {
	p := &plan{
		scenario:     sc,
		cfg:          base,
		params:       make(map[string]bool),
		patchTargets: make(map[string]bool),
	}
	p.cfg.Bug = corpus.BugNone // the enum is dead; defects are patches
	for _, inj := range sc.Injections() {
		if inj == nil {
			continue
		}
		if err := inj.apply(p); err != nil {
			return nil, fmt.Errorf("scenario %s: injection %s: %w", sc.Name(), inj.ID(), err)
		}
	}
	return p, nil
}

// joinIDs concatenates injection fingerprints unambiguously: each ID
// is length-prefixed, so no crafted ID (injection fields are
// user-controlled strings) can collide with the join of two others.
func joinIDs(ids []string) string {
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d:%s+", len(id), id)
	}
	return b.String()
}

// sourceKey fingerprints everything that determines the experimental
// source tree: the generation parameters and the source-level
// injections. Runners are cached per sourceKey, so scenarios sharing a
// source tree (e.g. a PRNG swap and an FMA toggle) share the clean
// build with the control.
func (p *plan) sourceKey() string {
	return fmt.Sprintf("%+v|%s", p.cfg, joinIDs(p.sourceIDs))
}

// buildKey fingerprints the compiled-metagraph state: the source tree
// plus the configuration changes that alter the coverage trace (PRNG,
// FMA). Compiled metagraphs are cached per buildKey.
func (p *plan) buildKey() string {
	return p.sourceKey() + "|" + joinIDs(p.runIDs)
}

// scenarioKey fingerprints a full investigation: the build, the
// defect-site overrides (they steer slicing's success check but not
// the build, so they live in this layer only), and the slicing
// options. Selections, slices and refinements are cached per
// scenarioKey; the scenario's display name deliberately does not
// participate, so renamed but identical scenarios share all cached
// stages.
func (p *plan) scenarioKey() string {
	o := p.scenario.Options()
	return fmt.Sprintf("%s|%s|cam=%v;k=%d", p.buildKey(), joinIDs(p.siteIDs), o.CAMOnly, o.SelectK)
}

// ScenarioFingerprint returns a scenario's stable cache identity — the
// value that replaces the (Bug, Mersenne, FMA) tuple. Exposed for
// tests, diagnostics and external caching layers.
func ScenarioFingerprint(base corpus.Config, sc Scenario) (string, error) {
	p, err := buildPlan(base, sc)
	if err != nil {
		return "", err
	}
	return p.scenarioKey(), nil
}
