package experiments

import (
	"context"
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/lasso"
)

// TestLassoWarmMatchesColdOnCatalog pins the warm-started lasso path
// against its cold differential oracle on the real §6 designs: for
// every catalog scenario, the classification problem selectOutputs
// hands to lasso.SelectK (control ensemble vs experimental runs over
// the ECT variables) must produce a bit-identical result — ranked
// indices, tuned lambda and fitted weights — whether each lambda on
// the bisection path fast-forwards through the shared warm prefix or
// is fitted cold from zero.
func TestLassoWarmMatchesColdOnCatalog(t *testing.T) {
	setup := testSetup()
	s := NewSession(setup.Corpus,
		WithEnsembleSize(setup.EnsembleSize),
		WithExpSize(setup.ExpSize))
	ctx := context.Background()
	fp, err := s.Fingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vars := fp.Test.Vars()
	for _, spec := range catalogSpecs {
		sc := spec.Scenario()
		v, err := s.Verdict(ctx, sc)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		n := len(fp.Ensemble) + len(v.ExpRuns)
		d := len(vars)
		x := make([]float64, n*d)
		y := make([]float64, n)
		for i, r := range fp.Ensemble {
			for j, name := range vars {
				x[i*d+j] = r[name]
			}
		}
		for i, r := range v.ExpRuns {
			row := len(fp.Ensemble) + i
			y[row] = 1
			for j, name := range vars {
				x[row*d+j] = r[name]
			}
		}
		k := spec.SelectK
		if k <= 0 {
			k = 5
		}
		p := lasso.Problem{X: x, Y: y, N: n, D: d}
		warmSel, warmRes, err := lasso.SelectK(p, k, 1500)
		if err != nil {
			t.Fatalf("%s: warm: %v", spec.Name, err)
		}
		coldSel, coldRes, err := lasso.SelectKCold(p, k, 1500)
		if err != nil {
			t.Fatalf("%s: cold: %v", spec.Name, err)
		}
		if len(warmSel) != len(coldSel) {
			t.Fatalf("%s: warm selected %d vars, cold %d (warm %v cold %v)",
				spec.Name, len(warmSel), len(coldSel), warmSel, coldSel)
		}
		for i := range warmSel {
			if warmSel[i] != coldSel[i] {
				t.Fatalf("%s: selection differs at rank %d: warm %v cold %v",
					spec.Name, i, warmSel, coldSel)
			}
		}
		if math.Float64bits(warmRes.Lambda) != math.Float64bits(coldRes.Lambda) {
			t.Fatalf("%s: tuned lambda differs: warm %v cold %v",
				spec.Name, warmRes.Lambda, coldRes.Lambda)
		}
		if warmRes.Iters != coldRes.Iters {
			t.Fatalf("%s: iteration count differs: warm %d cold %d",
				spec.Name, warmRes.Iters, coldRes.Iters)
		}
		for j := range warmRes.Weights {
			if math.Float64bits(warmRes.Weights[j]) != math.Float64bits(coldRes.Weights[j]) {
				t.Fatalf("%s: weight %d differs: warm %v cold %v",
					spec.Name, j, warmRes.Weights[j], coldRes.Weights[j])
			}
		}
	}
}
