package experiments

import (
	"math"
	"sort"

	"github.com/climate-rca/rca/internal/model"
)

// FirstStepDiff implements the first variable-selection approach of
// §3: a straightforward normalized comparison of output values at the
// first model time step between a single ensemble member and a single
// experimental run. The paper recommends trying it first because it is
// the direct measure of difference — but observes that in CESM "most
// often all CAM output variables are different at time step zero", in
// which case the method is unhelpful and the distribution-based
// methods take over.
//
// It returns the variables whose normalized first-step difference
// exceeds tol (relative), sorted by descending difference, along with
// the total number of differing variables (callers treat the method
// as inconclusive when most variables differ).
type FirstStepResult struct {
	// Differing lists variables with |exp-ens|/max(|ens|,tiny) > tol,
	// biggest first.
	Differing []string
	// Total is the number of compared variables.
	Total int
}

// FirstStepDiff runs both models for a single step and compares.
func FirstStepDiff(control, exper *model.Runner, expCfg model.RunConfig, tol float64) (*FirstStepResult, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	ctl := model.RunConfig{Member: 0, StopAfter: 1}
	cres, err := control.Run(ctl)
	if err != nil {
		return nil, err
	}
	ex := expCfg
	ex.Member = 0
	ex.StopAfter = 1
	eres, err := exper.Run(ex)
	if err != nil {
		return nil, err
	}
	type vd struct {
		name string
		d    float64
	}
	var diffs []vd
	total := 0
	for name, cv := range cres.Means {
		ev, ok := eres.Means[name]
		if !ok {
			continue
		}
		total++
		den := math.Abs(cv)
		if den < 1e-300 {
			den = 1e-300
		}
		if d := math.Abs(ev-cv) / den; d > tol {
			diffs = append(diffs, vd{name, d})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].d != diffs[j].d {
			return diffs[i].d > diffs[j].d
		}
		return diffs[i].name < diffs[j].name
	})
	out := &FirstStepResult{Total: total}
	for _, d := range diffs {
		out.Differing = append(out.Differing, d.name)
	}
	return out, nil
}

// Conclusive reports whether the first-step comparison isolates a
// small set (the paper wants "not more than 10" and clearly fewer
// than "all variables different").
func (r *FirstStepResult) Conclusive() bool {
	return len(r.Differing) > 0 && len(r.Differing) <= 10 &&
		len(r.Differing)*4 <= r.Total
}
