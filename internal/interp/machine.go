package interp

import (
	"fmt"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/rng"
)

// Config configures a Machine.
type Config struct {
	// Ncol is the number of model columns (field length).
	Ncol int
	// RNG backs random_number calls. Defaults to KISS seeded with 1.
	RNG rng.Source
	// FMA reports whether a module evaluates a*b+c fused. nil = never.
	FMA func(module string) bool
	// Trace, when non-nil, receives every subprogram entry.
	Trace func(module, subprogram string)
	// KernelWatch names a module::subprogram whose variable state is
	// snapshotted at each exit (last call wins) — the KGen hook.
	KernelWatch string
	// SnapshotAll captures every subprogram's variables at each exit
	// (last call wins) into Machine.AllValues, keyed by
	// module::subprogram::variable, and module-level variables as
	// module::::variable. This implements the runtime sampling the
	// paper simulates (§5.4) — instrumenting chosen digraph nodes and
	// comparing values between runs.
	SnapshotAll bool
}

type procKey struct{ module, name string }

// Machine executes a set of FortLite modules by walking the AST. It is
// the reference Engine: the bytecode VM is required to reproduce its
// outputs bit for bit, and the differential tests compare against it.
type Machine struct {
	// Results embeds Outputs/Kernel/AllValues, the capture surface
	// shared with the bytecode engine.
	Results

	cfg     Config
	modules map[string]*fortran.Module
	order   []string // deterministic module order
	// storage[module][name] is the module-level variable store. Use
	// imports alias the *Value pointers of the source module.
	storage map[string]map[string]*Value
	// arrays/types track declared shapes for allocation.
	types map[string]map[string]fortran.DerivedType
	funcs map[string][]procKeyTarget
	subs  map[string][]procKeyTarget

	depth      int
	lastResult *Value // most recent function result (set by invoke)
}

type procKeyTarget struct {
	module string
	sub    *fortran.Subprogram
}

// NewMachine loads modules and allocates module-level storage. Modules
// are initialized in the given order (use-dependency order is the
// caller's responsibility; the corpus generator emits a valid order).
func NewMachine(mods []*fortran.Module, cfg Config) (*Machine, error) {
	if cfg.Ncol <= 0 {
		cfg.Ncol = 16
	}
	if cfg.RNG == nil {
		cfg.RNG = rng.NewKISS(1)
	}
	m := &Machine{
		Results: NewResults(),
		cfg:     cfg,
		modules: make(map[string]*fortran.Module, len(mods)),
		storage: make(map[string]map[string]*Value, len(mods)),
		types:   make(map[string]map[string]fortran.DerivedType, len(mods)),
		funcs:   make(map[string][]procKeyTarget),
		subs:    make(map[string][]procKeyTarget),
	}
	for _, mod := range mods {
		if _, dup := m.modules[mod.Name]; dup {
			return nil, fmt.Errorf("interp: duplicate module %q", mod.Name)
		}
		m.modules[mod.Name] = mod
		m.order = append(m.order, mod.Name)
	}
	// Own declarations.
	for _, mod := range mods {
		m.types[mod.Name] = make(map[string]fortran.DerivedType)
		for _, dt := range mod.Types {
			m.types[mod.Name][dt.Name] = dt
		}
	}
	for _, mod := range mods {
		store := make(map[string]*Value)
		m.storage[mod.Name] = store
		for _, d := range mod.Decls {
			for _, name := range d.Names {
				v, err := m.allocate(mod.Name, d, name)
				if err != nil {
					return nil, fmt.Errorf("interp: %s: %w", mod.Name, err)
				}
				if d.Init != nil {
					ev, err := m.evalConst(d.Init)
					if err != nil {
						return nil, fmt.Errorf("interp: %s: %s: %w", mod.Name, name, err)
					}
					assignInto(v, ev)
				}
				store[name] = v
			}
		}
	}
	// Procedures: own then interfaces.
	for _, mod := range mods {
		for _, sub := range mod.Subprograms {
			t := procKeyTarget{module: mod.Name, sub: sub}
			k := mod.Name + "::" + sub.Name
			if sub.Kind == fortran.KindFunction {
				m.funcs[k] = append(m.funcs[k], t)
			} else {
				m.subs[k] = append(m.subs[k], t)
			}
		}
		for _, iface := range mod.Interfaces {
			k := mod.Name + "::" + iface.Name
			for _, proc := range iface.Procedures {
				for _, sub := range mod.Subprograms {
					if sub.Name != proc {
						continue
					}
					t := procKeyTarget{module: mod.Name, sub: sub}
					if sub.Kind == fortran.KindFunction {
						m.funcs[k] = append(m.funcs[k], t)
					} else {
						m.subs[k] = append(m.subs[k], t)
					}
				}
			}
		}
	}
	// Use imports: alias storage pointers, import procedures. Chained
	// use is not followed (matching the metagraph).
	for _, mod := range mods {
		for _, u := range mod.Uses {
			src, ok := m.modules[u.Module]
			if !ok {
				continue
			}
			imports := u.Only
			if len(imports) == 0 {
				for _, d := range src.Decls {
					for _, n := range d.Names {
						imports = append(imports, fortran.Rename{Local: n, Remote: n})
					}
				}
				for _, sub := range src.Subprograms {
					imports = append(imports, fortran.Rename{Local: sub.Name, Remote: sub.Name})
				}
				for _, iface := range src.Interfaces {
					imports = append(imports, fortran.Rename{Local: iface.Name, Remote: iface.Name})
				}
				for _, dt := range src.Types {
					imports = append(imports, fortran.Rename{Local: dt.Name, Remote: dt.Name})
				}
			}
			for _, r := range imports {
				if v, ok := m.storage[src.Name][r.Remote]; ok && declaredIn(src, r.Remote) {
					if _, shadow := m.storage[mod.Name][r.Local]; !shadow {
						m.storage[mod.Name][r.Local] = v
					}
				}
				srcKey := src.Name + "::" + r.Remote
				dstKey := mod.Name + "::" + r.Local
				if fs, ok := m.funcs[srcKey]; ok {
					m.funcs[dstKey] = append(m.funcs[dstKey], fs...)
				}
				if ss, ok := m.subs[srcKey]; ok {
					m.subs[dstKey] = append(m.subs[dstKey], ss...)
				}
				if dt, ok := m.types[src.Name][r.Remote]; ok {
					m.types[mod.Name][r.Local] = dt
				}
			}
		}
	}
	return m, nil
}

func declaredIn(mod *fortran.Module, name string) bool {
	for _, d := range mod.Decls {
		for _, n := range d.Names {
			if n == name {
				return true
			}
		}
	}
	return false
}

// allocate builds a zero value for the named variable of a declaration.
func (m *Machine) allocate(module string, d fortran.VarDecl, name string) (*Value, error) {
	if d.IsType {
		dt, ok := m.lookupType(module, d.BaseType)
		if !ok {
			return nil, fmt.Errorf("unknown derived type %q", d.BaseType)
		}
		v := &Value{Kind: KindDerived, D: make(map[string]*Value)}
		for _, f := range dt.Fields {
			for fi, fn := range f.Names {
				if f.ArrayAt(fi) {
					v.D[fn] = NewArray(m.cfg.Ncol)
				} else {
					v.D[fn] = NewScalar(0)
				}
			}
		}
		return v, nil
	}
	if d.IsArrayName(name) {
		return NewArray(m.cfg.Ncol), nil
	}
	return NewScalar(0), nil
}

func (m *Machine) lookupType(module, name string) (fortran.DerivedType, bool) {
	if dt, ok := m.types[module][name]; ok {
		return dt, true
	}
	return fortran.DerivedType{}, false
}

// evalConst evaluates a parameter initializer (literals and arithmetic
// over literals only).
func (m *Machine) evalConst(e fortran.Expr) (*Value, error) {
	switch x := e.(type) {
	case *fortran.NumLit:
		return NewScalar(x.Value), nil
	case *fortran.UnaryExpr:
		v, err := m.evalConst(x.X)
		if err != nil {
			return nil, err
		}
		return NewScalar(-v.Scalar()), nil
	case *fortran.BinaryExpr:
		l, err := m.evalConst(x.L)
		if err != nil {
			return nil, err
		}
		r, err := m.evalConst(x.R)
		if err != nil {
			return nil, err
		}
		out, err := applyScalarOp(x.Op, l.Scalar(), r.Scalar())
		if err != nil {
			return nil, err
		}
		return NewScalar(out), nil
	}
	return nil, fmt.Errorf("non-constant initializer")
}

// Ncol returns the configured column count.
func (m *Machine) Ncol() int { return m.cfg.Ncol }

// ModuleVar returns the module-level variable, if present.
func (m *Machine) ModuleVar(module, name string) (*Value, bool) {
	v, ok := m.storage[module][name]
	return v, ok
}

// SetModuleVar overwrites a module-level variable (used to perturb
// initial conditions for ensemble members).
func (m *Machine) SetModuleVar(module, name string, v *Value) error {
	if _, ok := m.storage[module][name]; !ok {
		return fmt.Errorf("interp: no variable %s in module %s", name, module)
	}
	assignInto(m.storage[module][name], v)
	return nil
}

// Captured implements Engine, exposing the run's capture maps.
func (m *Machine) Captured() *Results { return &m.Results }

// ModuleArray implements Engine: the mutable backing slice of a
// module-level array variable, walking derived-type components.
func (m *Machine) ModuleArray(module string, path ...string) ([]float64, bool) {
	if len(path) == 0 {
		return nil, false
	}
	v, ok := m.storage[module][path[0]]
	if !ok {
		return nil, false
	}
	for _, comp := range path[1:] {
		if v.Kind != KindDerived {
			return nil, false
		}
		v, ok = v.D[comp]
		if !ok {
			return nil, false
		}
	}
	if v.Kind != KindArray {
		return nil, false
	}
	return v.A, true
}
