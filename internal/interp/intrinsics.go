package interp

import (
	"fmt"
	"math"
)

// intrinsicFn evaluates an intrinsic over already-evaluated arguments.
type intrinsicFn func(m *Machine, args []*Value) (*Value, error)

// intrinsicFns is the table of FortLite built-ins. min/max/abs/sqrt/
// exp/log/mod/sign/floor apply elementwise; sum and size reduce; shift
// cyclically rotates a field (the corpus' inter-column coupling).
var intrinsicFns = map[string]intrinsicFn{
	"min":   minMax(math.Min),
	"max":   minMax(math.Max),
	"abs":   unary1(math.Abs),
	"sqrt":  unary1(math.Sqrt),
	"exp":   unary1(math.Exp),
	"log":   unary1(math.Log),
	"floor": unary1(math.Floor),
	"mod":   binary1(math.Mod),
	"sign":  binary1(math.Copysign),
	"sum":   sumIntrinsic,
	"size":  sizeIntrinsic,
	"shift": shiftIntrinsic,
}

func unary1(fn func(float64) float64) intrinsicFn {
	return func(_ *Machine, args []*Value) (*Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("interp: intrinsic wants 1 arg, got %d", len(args))
		}
		v := args[0]
		if v.Kind == KindScalar {
			return NewScalar(fn(v.F)), nil
		}
		if v.Kind != KindArray {
			return nil, fmt.Errorf("interp: intrinsic on derived value")
		}
		out := NewArray(len(v.A))
		for i, x := range v.A {
			out.A[i] = fn(x)
		}
		return out, nil
	}
}

func binary1(fn func(a, b float64) float64) intrinsicFn {
	return func(_ *Machine, args []*Value) (*Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("interp: intrinsic wants 2 args, got %d", len(args))
		}
		a, b := args[0], args[1]
		n, anyArr := broadcastLen(a, b)
		if !anyArr {
			return NewScalar(fn(a.F, b.F)), nil
		}
		out := NewArray(n)
		for i := 0; i < n; i++ {
			out.A[i] = fn(at(a, i), at(b, i))
		}
		return out, nil
	}
}

// minMax handles 2-or-more arguments, Fortran style.
func minMax(fn func(a, b float64) float64) intrinsicFn {
	return func(_ *Machine, args []*Value) (*Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("interp: min/max want >= 2 args")
		}
		n, anyArr := broadcastLen(args...)
		if !anyArr {
			acc := args[0].F
			for _, v := range args[1:] {
				acc = fn(acc, v.F)
			}
			return NewScalar(acc), nil
		}
		out := NewArray(n)
		for i := 0; i < n; i++ {
			acc := at(args[0], i)
			for _, v := range args[1:] {
				acc = fn(acc, at(v, i))
			}
			out.A[i] = acc
		}
		return out, nil
	}
}

func sumIntrinsic(_ *Machine, args []*Value) (*Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("interp: sum wants 1 arg")
	}
	v := args[0]
	if v.Kind == KindScalar {
		return NewScalar(v.F), nil
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("interp: sum of derived value")
	}
	var s float64
	for _, x := range v.A {
		s += x
	}
	return NewScalar(s), nil
}

func sizeIntrinsic(_ *Machine, args []*Value) (*Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("interp: size wants 1 arg")
	}
	if args[0].Kind != KindArray {
		return NewScalar(1), nil
	}
	return NewScalar(float64(len(args[0].A))), nil
}

// shiftIntrinsic cyclically rotates a field by k columns: the corpus'
// stand-in for advection/neighbor coupling (CESM's cshift).
func shiftIntrinsic(_ *Machine, args []*Value) (*Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("interp: shift wants 2 args")
	}
	v, kv := args[0], args[1]
	if v.Kind != KindArray {
		return v, nil
	}
	n := len(v.A)
	if n == 0 {
		return v, nil
	}
	k := int(kv.Scalar()) % n
	if k < 0 {
		k += n
	}
	out := NewArray(n)
	for i := 0; i < n; i++ {
		out.A[i] = v.A[(i+k)%n]
	}
	return out, nil
}
