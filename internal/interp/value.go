// Package interp executes FortLite modules as a time-stepping column
// model. It is the runtime substrate standing in for running CESM on a
// supercomputer: the same source the metagraph is built from is
// executed to produce ensemble and experimental outputs, so information
// flow in the digraph corresponds to information flow at runtime — the
// property the paper's experiments validate.
//
// The interpreter supports the experiment hooks the paper needs:
//
//   - per-module FMA semantics (a*b+c evaluated with math.FMA when the
//     module is FMA-enabled), for the AVX2 experiments (§6.4-6.5);
//   - a pluggable PRNG behind random_number, for RAND-MT (§6.2);
//   - outfld capture (history output), feeding the ECT;
//   - execution tracing of subprograms, feeding the coverage filter
//     (the dynamic half of hybrid slicing);
//   - kernel watchpoints that snapshot a subprogram's variables, the
//     KGen-style extraction used to flag FMA-sensitive variables.
package interp

import "fmt"

// ValueKind tags a runtime value.
type ValueKind int

// Value kinds.
const (
	KindScalar ValueKind = iota
	KindArray
	KindDerived
)

// Value is a runtime value: a scalar, a field over the model columns,
// or a derived-type instance. Integers and logicals are represented as
// scalars (FortLite semantics).
type Value struct {
	Kind ValueKind
	F    float64
	A    []float64
	D    map[string]*Value
}

// NewScalar returns a scalar value.
func NewScalar(f float64) *Value { return &Value{Kind: KindScalar, F: f} }

// NewArray returns a field of n columns initialized to zero.
func NewArray(n int) *Value { return &Value{Kind: KindArray, A: make([]float64, n)} }

// Clone returns a deep copy of v.
func (v *Value) Clone() *Value {
	switch v.Kind {
	case KindScalar:
		return NewScalar(v.F)
	case KindArray:
		c := &Value{Kind: KindArray, A: append([]float64(nil), v.A...)}
		return c
	case KindDerived:
		d := make(map[string]*Value, len(v.D))
		for k, f := range v.D {
			d[k] = f.Clone()
		}
		return &Value{Kind: KindDerived, D: d}
	}
	panic("interp: unknown value kind")
}

// Scalar returns the scalar payload; for a 1-element view of an array
// it returns the first element. It panics on derived values.
func (v *Value) Scalar() float64 {
	switch v.Kind {
	case KindScalar:
		return v.F
	case KindArray:
		if len(v.A) > 0 {
			return v.A[0]
		}
		return 0
	}
	panic("interp: derived value used as scalar")
}

func (v *Value) String() string {
	switch v.Kind {
	case KindScalar:
		return fmt.Sprintf("%g", v.F)
	case KindArray:
		return fmt.Sprintf("array[%d]", len(v.A))
	default:
		return fmt.Sprintf("derived{%d fields}", len(v.D))
	}
}
