package interp

import (
	"math"
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
	"github.com/climate-rca/rca/internal/rng"
)

func machineFor(t *testing.T, cfg Config, srcs ...string) *Machine {
	t.Helper()
	var mods []*fortran.Module
	for _, s := range srcs {
		ms, err := fortran.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, ms...)
	}
	m, err := NewMachine(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScalarArithmetic(t *testing.T) {
	m := machineFor(t, Config{Ncol: 4}, `
module m
  real :: x
contains
  subroutine s()
    x = 2.0 + 3.0 * 4.0 ** 2.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	v, _ := m.ModuleVar("m", "x")
	if v.F != 50 {
		t.Fatalf("x = %v; want 50", v.F)
	}
}

func TestArrayElementwiseAndBroadcast(t *testing.T) {
	m := machineFor(t, Config{Ncol: 3}, `
module m
  real :: a(:), b(:), c(:)
contains
  subroutine init()
    integer :: i
    do i = 1, 3
      a(i) = i
      b(i) = 10.0 * i
    end do
  end subroutine
  subroutine s()
    c = a * b + 1.0
  end subroutine
end module
`)
	if err := m.Call("m", "init"); err != nil {
		t.Fatal(err)
	}
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	c, _ := m.ModuleVar("m", "c")
	want := []float64{11, 41, 91}
	for i, w := range want {
		if c.A[i] != w {
			t.Fatalf("c = %v; want %v", c.A, want)
		}
	}
}

func TestIfControlFlow(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: x, y
contains
  subroutine s()
    x = 5.0
    if (x > 3.0) then
      y = 1.0
    else
      y = 2.0
    end if
    if (x > 10.0) y = 99.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	y, _ := m.ModuleVar("m", "y")
	if y.F != 1.0 {
		t.Fatalf("y = %v", y.F)
	}
}

func TestDoLoopAndReturn(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: acc
contains
  subroutine s()
    integer :: i
    acc = 0.0
    do i = 1, 10
      acc = acc + i
      if (i == 4) return
    end do
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.ModuleVar("m", "acc")
	if acc.F != 10 { // 1+2+3+4
		t.Fatalf("acc = %v; want 10", acc.F)
	}
}

func TestFunctionCallsAndResult(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: x
contains
  subroutine s()
    x = twice(4.0) + 1.0
  end subroutine
  function twice(a) result(r)
    real :: a, r
    r = a * 2.0
  end function
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	x, _ := m.ModuleVar("m", "x")
	if x.F != 9 {
		t.Fatalf("x = %v; want 9", x.F)
	}
}

func TestElementalFunctionBroadcast(t *testing.T) {
	m := machineFor(t, Config{Ncol: 3}, `
module m
  real :: q(:), es(:)
contains
  subroutine init()
    integer :: i
    do i = 1, 3
      q(i) = i
    end do
  end subroutine
  subroutine s()
    es = svp(q)
  end subroutine
  elemental function svp(t) result(e)
    real :: t, e
    e = t * t
  end function
end module
`)
	if err := m.Call("m", "init"); err != nil {
		t.Fatal(err)
	}
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	es, _ := m.ModuleVar("m", "es")
	want := []float64{1, 4, 9}
	for i, w := range want {
		if es.A[i] != w {
			t.Fatalf("es = %v", es.A)
		}
	}
}

func TestSubroutineByReference(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module m
  real :: a(:)
contains
  subroutine s()
    a = 1.0
    call bump(a)
  end subroutine
  subroutine bump(x)
    real, intent(inout) :: x(:)
    x = x + 5.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	a, _ := m.ModuleVar("m", "a")
	if a.A[0] != 6 || a.A[1] != 6 {
		t.Fatalf("a = %v", a.A)
	}
}

func TestDerivedTypeStateFlow(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module phys
  type pstate
    real :: t(:)
    real :: omega(:)
  end type
  type(pstate) :: state
contains
  subroutine init()
    state%t = 280.0
  end subroutine
  subroutine s()
    state%omega = state%t * 0.01
  end subroutine
end module
`)
	if err := m.Call("phys", "init"); err != nil {
		t.Fatal(err)
	}
	if err := m.Call("phys", "s"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.ModuleVar("phys", "state")
	if math.Abs(st.D["omega"].A[0]-2.8) > 1e-12 {
		t.Fatalf("omega = %v", st.D["omega"].A)
	}
}

func TestUseImportAliasesStorage(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module a
  real :: shared
end module
`, `
module b
  use a, only: shared
  real :: y
contains
  subroutine s()
    shared = 7.0
    y = shared + 1.0
  end subroutine
end module
`)
	if err := m.Call("b", "s"); err != nil {
		t.Fatal(err)
	}
	sh, _ := m.ModuleVar("a", "shared")
	if sh.F != 7 {
		t.Fatalf("a::shared = %v (aliasing broken)", sh.F)
	}
	y, _ := m.ModuleVar("b", "y")
	if y.F != 8 {
		t.Fatalf("y = %v", y.F)
	}
}

func TestIntrinsics(t *testing.T) {
	m := machineFor(t, Config{Ncol: 4}, `
module m
  real :: a(:), total, n, mn, mx, sh(:)
contains
  subroutine s()
    integer :: i
    do i = 1, 4
      a(i) = i
    end do
    total = sum(a)
    n = size(a)
    mn = min(3.0, 1.0, 2.0)
    mx = max(a(1), a(4))
    sh = shift(a, 1)
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	get := func(name string) *Value {
		v, _ := m.ModuleVar("m", name)
		return v
	}
	if get("total").F != 10 || get("n").F != 4 || get("mn").F != 1 || get("mx").F != 4 {
		t.Fatalf("intrinsics: sum=%v size=%v min=%v max=%v",
			get("total").F, get("n").F, get("mn").F, get("mx").F)
	}
	sh := get("sh")
	if sh.A[0] != 2 || sh.A[3] != 1 {
		t.Fatalf("shift = %v", sh.A)
	}
}

func TestOutfldCapture(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module m
  real :: flwds(:)
contains
  subroutine s()
    flwds = 3.5
    call outfld('FLDS', flwds)
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	got := m.Outputs["FLDS"]
	if len(got) != 2 || got[0] != 3.5 {
		t.Fatalf("FLDS = %v", got)
	}
	means := m.OutputMeans()
	if means["FLDS"] != 3.5 {
		t.Fatalf("mean = %v", means["FLDS"])
	}
	if names := m.OutputNames(); len(names) != 1 || names[0] != "FLDS" {
		t.Fatalf("names = %v", names)
	}
}

func TestRandomNumberPluggable(t *testing.T) {
	src := `
module m
  real :: r(:)
contains
  subroutine s()
    call random_number(r)
  end subroutine
end module
`
	m1 := machineFor(t, Config{Ncol: 4, RNG: rng.NewKISS(42)}, src)
	m2 := machineFor(t, Config{Ncol: 4, RNG: rng.NewMT19937(42)}, src)
	if err := m1.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	r1, _ := m1.ModuleVar("m", "r")
	r2, _ := m2.ModuleVar("m", "r")
	same := true
	for i := range r1.A {
		if r1.A[i] != r2.A[i] {
			same = false
		}
		if r1.A[i] < 0 || r1.A[i] >= 1 {
			t.Fatalf("out of range: %v", r1.A)
		}
	}
	if same {
		t.Fatal("KISS and MT19937 gave identical fields")
	}
}

func TestFMAModeChangesRounding(t *testing.T) {
	// x = a*b + c with values chosen so fused and unfused rounding
	// differ: classic cancellation a*b ≈ -c.
	src := `
module mg
  real :: a, b, c, x
contains
  subroutine s()
    a = 1.0000000000000004
    b = 1.0000000000000004
    c = -1.0
    x = a * b + c
  end subroutine
end module
`
	run := func(fma bool) float64 {
		m := machineFor(t, Config{Ncol: 1, FMA: func(string) bool { return fma }}, src)
		if err := m.Call("mg", "s"); err != nil {
			t.Fatal(err)
		}
		v, _ := m.ModuleVar("mg", "x")
		return v.F
	}
	unfused, fused := run(false), run(true)
	if unfused == fused {
		t.Fatalf("FMA mode made no difference: %v", fused)
	}
	// The fused result keeps the (2eps)^2 term that unfused rounding
	// discards: (1+2eps)^2 - 1 = 4eps + 4eps^2.
	if fused <= unfused {
		t.Fatalf("fused %v <= unfused %v", fused, unfused)
	}
}

func TestFMAPerModuleSelectivity(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1, FMA: func(mod string) bool { return mod == "hot" }}, `
module hot
  real :: x
contains
  subroutine s()
    x = 1.0000000000000004 * 1.0000000000000004 + (-1.0)
  end subroutine
end module
`, `
module cold
  real :: y
contains
  subroutine s()
    y = 1.0000000000000004 * 1.0000000000000004 + (-1.0)
  end subroutine
end module
`)
	if err := m.Call("hot", "s"); err != nil {
		t.Fatal(err)
	}
	if err := m.Call("cold", "s"); err != nil {
		t.Fatal(err)
	}
	x, _ := m.ModuleVar("hot", "x")
	y, _ := m.ModuleVar("cold", "y")
	if x.F == y.F {
		t.Fatalf("per-module FMA not selective: %v == %v", x.F, y.F)
	}
}

func TestTraceRecordsSubprograms(t *testing.T) {
	var calls []string
	m := machineFor(t, Config{Ncol: 1, Trace: func(mod, sub string) {
		calls = append(calls, mod+"::"+sub)
	}}, `
module m
  real :: x
contains
  subroutine s()
    x = helper(1.0)
  end subroutine
  function helper(a) result(r)
    real :: a, r
    r = a
  end function
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "m::s" || calls[1] != "m::helper" {
		t.Fatalf("trace = %v", calls)
	}
}

func TestKernelWatchSnapshots(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2, KernelWatch: "mg::micro_mg_tend"}, `
module mg
  real :: q(:)
contains
  subroutine driver()
    q = 2.0
    call micro_mg_tend(q)
  end subroutine
  subroutine micro_mg_tend(qin)
    real, intent(in) :: qin(:)
    real :: dum(:)
    dum = qin * 3.0
  end subroutine
end module
`)
	if err := m.Call("mg", "driver"); err != nil {
		t.Fatal(err)
	}
	dum := m.Kernel["dum"]
	if len(dum) != 2 || dum[0] != 6 {
		t.Fatalf("kernel dum = %v", dum)
	}
	if _, ok := m.Kernel["qin"]; !ok {
		t.Fatal("kernel missed argument")
	}
}

func TestArrayElementAccess(t *testing.T) {
	m := machineFor(t, Config{Ncol: 3}, `
module m
  real :: a(:), x
contains
  subroutine s()
    a(1) = 5.0
    a(2) = a(1) * 2.0
    x = a(2)
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	x, _ := m.ModuleVar("m", "x")
	if x.F != 10 {
		t.Fatalf("x = %v", x.F)
	}
}

func TestIndexOutOfBoundsError(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module m
  real :: a(:)
contains
  subroutine s()
    a(5) = 1.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
}

func TestUnknownSubroutineError(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: x
contains
  subroutine s()
    call nosuch(x)
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err == nil {
		t.Fatal("unknown call accepted")
	}
	if err := m.Call("m", "alsonothere"); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: x
contains
  subroutine s()
    call s()
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err == nil {
		t.Fatal("infinite recursion not caught")
	}
}

func TestInterfaceDispatchByArity(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: x, y
  interface combine
    module procedure one, two
  end interface
contains
  subroutine s()
    x = combine(3.0)
    y = combine(3.0, 4.0)
  end subroutine
  function one(a) result(r)
    real :: a, r
    r = a
  end function
  function two(a, b) result(r)
    real :: a, b, r
    r = a + b
  end function
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	x, _ := m.ModuleVar("m", "x")
	y, _ := m.ModuleVar("m", "y")
	if x.F != 3 || y.F != 7 {
		t.Fatalf("x=%v y=%v", x.F, y.F)
	}
}

func TestSetModuleVar(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module m
  real :: t(:)
end module
`)
	nv := NewArray(2)
	nv.A[0], nv.A[1] = 1, 2
	if err := m.SetModuleVar("m", "t", nv); err != nil {
		t.Fatal(err)
	}
	v, _ := m.ModuleVar("m", "t")
	if v.A[1] != 2 {
		t.Fatalf("t = %v", v.A)
	}
	if err := m.SetModuleVar("m", "nope", nv); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestParameterInitEvaluated(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real, parameter :: k = 2.0 * 3.0 + 1.0
  real :: x
contains
  subroutine s()
    x = k
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	x, _ := m.ModuleVar("m", "x")
	if x.F != 7 {
		t.Fatalf("x = %v", x.F)
	}
}
