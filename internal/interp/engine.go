package interp

import "sort"

// Engine is the execution substrate contract shared by the tree-walking
// Machine (this package, the reference oracle) and the bytecode VM
// (internal/bytecode, the default hot path). The model driver runs
// entirely against this interface, so the two engines are drop-in
// replacements for each other; the differential tests in
// internal/bytecode pin them bit-identical.
type Engine interface {
	// Call invokes module::name, a zero-argument entry subroutine (the
	// driver's init/step calls).
	Call(module, name string) error
	// Captured exposes the run's captured state: outfld outputs, the
	// KernelWatch snapshot and the SnapshotAll value map.
	Captured() *Results
	// ModuleArray returns the mutable backing slice of a module-level
	// array variable — path is the name followed by derived-type
	// component names (e.g. "state", "t"). The model's ensemble
	// perturbations write through it.
	ModuleArray(module string, path ...string) ([]float64, bool)
	// SnapshotModuleVars records module-level variables into
	// Captured().AllValues under the module::::name key convention.
	SnapshotModuleVars()
	// Ncol returns the column count the engine was configured with.
	Ncol() int
}

// LaneSlice is a strided view of one lane's elements inside a batched
// engine's struct-of-arrays storage: element i lives at
// Data[i*Stride+Off]. It is the batched counterpart of the mutable
// []float64 Engine.ModuleArray returns — the model's per-member
// initial-condition perturbations write through it.
type LaneSlice struct {
	Data   []float64
	Stride int
	Off    int
}

// Len returns the number of lane elements.
func (s LaneSlice) Len() int {
	if s.Stride <= 0 {
		return 0
	}
	return len(s.Data) / s.Stride
}

// At reads element i of the lane.
func (s LaneSlice) At(i int) float64 { return s.Data[i*s.Stride+s.Off] }

// Add adds dv to element i of the lane in place.
func (s LaneSlice) Add(i int, dv float64) { s.Data[i*s.Stride+s.Off] += dv }

// Results collects everything one integration captures, shared by both
// engines. The maps are keyed exactly alike so downstream consumers
// (ECT means, KGen kernel comparison, runtime-sampling refinement)
// cannot tell the engines apart.
type Results struct {
	// Outputs captures outfld calls: label → field (copied).
	Outputs map[string][]float64
	// Kernel holds the last KernelWatch snapshot: variable → values.
	Kernel map[string][]float64
	// AllValues holds SnapshotAll captures keyed by the metagraph's
	// node-key convention (module::subprogram::variable, and
	// module::::variable for module-level state).
	AllValues map[string][]float64
}

// NewResults allocates the capture maps.
func NewResults() Results {
	return Results{
		Outputs:   make(map[string][]float64),
		Kernel:    make(map[string][]float64),
		AllValues: make(map[string][]float64),
	}
}

// OutputMeans returns the global mean of each captured output field —
// the "global means" the ECT consumes.
func (r *Results) OutputMeans() map[string]float64 {
	out := make(map[string]float64, len(r.Outputs))
	for k, field := range r.Outputs {
		var s float64
		for _, v := range field {
			s += v
		}
		if len(field) > 0 {
			s /= float64(len(field))
		}
		out[k] = s
	}
	return out
}

// OutputNames returns the sorted captured output labels.
func (r *Results) OutputNames() []string {
	names := make([]string, 0, len(r.Outputs))
	for k := range r.Outputs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
