package interp

import (
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
)

func benchMachine(b *testing.B, fma bool) *Machine {
	b.Helper()
	mods, err := fortran.ParseFile(`
module bench
  real :: a(:), c(:), acc(:)
contains
  subroutine init()
    integer :: i
    do i = 1, size(a)
      a(i) = 0.001 * i
      c(i) = 1.0 - 0.0001 * i
    end do
    acc = 0.0
  end subroutine
  subroutine step()
    integer :: k
    do k = 1, 50
      acc = a * c + acc * 0.999
      acc = max(0.0, min(10.0, acc)) + sqrt(abs(a)) * 0.01
    end do
  end subroutine
end module
`)
	if err != nil {
		b.Fatal(err)
	}
	var fmaFn func(string) bool
	if fma {
		fmaFn = func(string) bool { return true }
	}
	m, err := NewMachine(mods, Config{Ncol: 64, FMA: fmaFn})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Call("bench", "init"); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkInterpreterStep(b *testing.B) {
	m := benchMachine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Call("bench", "step"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterStepFMA(b *testing.B) {
	m := benchMachine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Call("bench", "step"); err != nil {
			b.Fatal(err)
		}
	}
}
