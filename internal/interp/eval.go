package interp

import (
	"fmt"
	"math"

	"github.com/climate-rca/rca/internal/fortran"
)

// frame is one subprogram activation: locals plus by-reference views of
// the actual arguments.
type frame struct {
	module string
	sub    *fortran.Subprogram
	vars   map[string]*Value
}

const maxDepth = 200

// Call invokes module::name, a zero-argument entry subroutine. It is
// the Engine entry point the model driver uses.
func (m *Machine) Call(module, name string) error {
	return m.CallWith(module, name)
}

// CallWith invokes module::name (a subroutine) with the given
// by-reference arguments.
func (m *Machine) CallWith(module, name string, args ...*Value) error {
	targets := m.subs[module+"::"+name]
	if len(targets) == 0 {
		return fmt.Errorf("interp: no subroutine %s in %s", name, module)
	}
	t := m.resolveOverload(targets, len(args))
	return m.invoke(t, args)
}

// resolveOverload picks the interface candidate matching the arity,
// falling back to the first (the static-analysis ambiguity the paper
// handles conservatively is resolved dynamically here).
func (m *Machine) resolveOverload(ts []procKeyTarget, arity int) procKeyTarget {
	for _, t := range ts {
		if len(t.sub.Args) == arity {
			return t
		}
	}
	return ts[0]
}

func (m *Machine) invoke(t procKeyTarget, args []*Value) error {
	if m.depth >= maxDepth {
		return fmt.Errorf("interp: call depth exceeded at %s::%s", t.module, t.sub.Name)
	}
	m.depth++
	defer func() { m.depth-- }()
	if m.cfg.Trace != nil {
		m.cfg.Trace(t.module, t.sub.Name)
	}
	f := &frame{module: t.module, sub: t.sub, vars: make(map[string]*Value, 8)}
	for i, an := range t.sub.Args {
		if i < len(args) && args[i] != nil {
			f.vars[an] = args[i]
		}
	}
	// Allocate locals (and result var) not bound to arguments.
	for _, d := range t.sub.Decls {
		for _, n := range d.Names {
			if _, isArg := f.vars[n]; isArg {
				continue
			}
			v, err := m.allocate(t.module, d, n)
			if err != nil {
				return fmt.Errorf("interp: %s::%s: %w", t.module, t.sub.Name, err)
			}
			if d.Init != nil {
				ev, err := m.evalConst(d.Init)
				if err != nil {
					return err
				}
				assignInto(v, ev)
			}
			f.vars[n] = v
		}
	}
	if t.sub.Kind == fortran.KindFunction {
		rv := t.sub.ResultVar()
		if _, ok := f.vars[rv]; !ok {
			f.vars[rv] = NewScalar(0)
		}
	}
	err := m.execBlock(f, t.sub.Body)
	if err == errReturn {
		err = nil
	}
	if err == nil && t.sub.Kind == fortran.KindFunction {
		if rv := f.vars[t.sub.ResultVar()]; rv != nil {
			m.lastResult = rv.Clone()
		} else {
			m.lastResult = NewScalar(0)
		}
	}
	if m.cfg.KernelWatch == t.module+"::"+t.sub.Name {
		m.snapshotKernel(f)
	}
	if m.cfg.SnapshotAll {
		m.snapshotFrame(f)
	}
	return err
}

// snapshotFrame records every scalar/array variable of the frame under
// the metagraph node-key convention. Derived-type arguments are
// flattened by component (canonical-name style).
func (m *Machine) snapshotFrame(f *frame) {
	prefix := f.module + "::" + f.sub.Name + "::"
	for name, v := range f.vars {
		m.snapshotValue(prefix, name, v)
	}
}

func (m *Machine) snapshotValue(prefix, name string, v *Value) {
	switch v.Kind {
	case KindScalar:
		m.AllValues[prefix+name] = []float64{v.F}
	case KindArray:
		m.AllValues[prefix+name] = append([]float64(nil), v.A...)
	case KindDerived:
		for comp, cv := range v.D {
			m.snapshotValue(prefix, comp, cv)
		}
	}
}

// SnapshotModuleVars records every module-level variable into
// AllValues (call after the run completes).
func (m *Machine) SnapshotModuleVars() {
	for mod, store := range m.storage {
		for name, v := range store {
			if !declaredIn(m.modules[mod], name) {
				continue // use-imported alias; home module records it
			}
			m.snapshotValue(mod+"::::", name, v)
		}
	}
}

// errReturn is the sentinel for FortLite's return statement.
var errReturn = fmt.Errorf("return")

func (m *Machine) execBlock(f *frame, body []fortran.Stmt) error {
	for _, s := range body {
		if err := m.execStmt(f, s); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(f *frame, s fortran.Stmt) error {
	switch x := s.(type) {
	case *fortran.AssignStmt:
		return m.execAssign(f, x)
	case *fortran.CallStmt:
		return m.execCall(f, x)
	case *fortran.ReturnStmt:
		return errReturn
	case *fortran.IfStmt:
		cond, err := m.eval(f, x.Cond)
		if err != nil {
			return err
		}
		if truthy(cond) {
			return m.execBlock(f, x.Then)
		}
		return m.execBlock(f, x.Else)
	case *fortran.DoStmt:
		from, err := m.eval(f, x.From)
		if err != nil {
			return err
		}
		to, err := m.eval(f, x.To)
		if err != nil {
			return err
		}
		iv := f.vars[x.Var]
		if iv == nil {
			iv = NewScalar(0)
			f.vars[x.Var] = iv
		}
		lo, hi := int(from.Scalar()), int(to.Scalar())
		for i := lo; i <= hi; i++ {
			iv.F = float64(i)
			if err := m.execBlock(f, x.Body); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

func truthy(v *Value) bool {
	switch v.Kind {
	case KindScalar:
		return v.F != 0
	case KindArray:
		// Array condition: true when any element is (Fortran's any()
		// would be explicit; FortLite corpus uses scalar conditions, but
		// degrade gracefully).
		for _, x := range v.A {
			if x != 0 {
				return true
			}
		}
	}
	return false
}

// lvalue resolves a reference to the storage cell it denotes, along
// with an optional element index (when the ref indexes an array with a
// scalar subscript). index < 0 means whole value.
func (m *Machine) lvalue(f *frame, r *fortran.Ref) (*Value, int, error) {
	v := f.vars[r.Name]
	if v == nil {
		v = m.storage[f.module][r.Name]
	}
	if v == nil {
		// Implicit local.
		v = NewScalar(0)
		f.vars[r.Name] = v
	}
	// Walk derived components.
	for _, c := range r.Components {
		if v.Kind != KindDerived {
			return nil, -1, fmt.Errorf("interp: %s is not derived (component %s)", r.Name, c)
		}
		nv, ok := v.D[c]
		if !ok {
			return nil, -1, fmt.Errorf("interp: no component %s", c)
		}
		v = nv
	}
	idx := -1
	if r.HasParens && v.Kind == KindArray && len(r.Args) == 1 {
		iv, err := m.eval(f, r.Args[0])
		if err != nil {
			return nil, -1, err
		}
		if iv.Kind == KindScalar {
			idx = int(iv.F) - 1 // Fortran is 1-based
			if idx < 0 || idx >= len(v.A) {
				return nil, -1, fmt.Errorf("interp: index %d out of bounds [1,%d] on %s", idx+1, len(v.A), r.Name)
			}
		}
	}
	return v, idx, nil
}

func (m *Machine) execAssign(f *frame, a *fortran.AssignStmt) error {
	cell, idx, err := m.lvalue(f, a.LHS)
	if err != nil {
		return err
	}
	rhs, err := m.eval(f, a.RHS)
	if err != nil {
		return err
	}
	if idx >= 0 {
		cell.A[idx] = rhs.Scalar()
		return nil
	}
	assignInto(cell, rhs)
	return nil
}

// assignInto stores src into dst in place (preserving aliasing), with
// scalar→array broadcast and array→scalar first-element collapse.
func assignInto(dst, src *Value) {
	switch dst.Kind {
	case KindScalar:
		dst.F = src.Scalar()
	case KindArray:
		switch src.Kind {
		case KindScalar:
			for i := range dst.A {
				dst.A[i] = src.F
			}
		case KindArray:
			n := len(dst.A)
			if len(src.A) < n {
				n = len(src.A)
			}
			copy(dst.A[:n], src.A[:n])
		}
	case KindDerived:
		if src.Kind == KindDerived {
			for k, sv := range src.D {
				if dv, ok := dst.D[k]; ok {
					assignInto(dv, sv)
				}
			}
		}
	}
}

func (m *Machine) execCall(f *frame, c *fortran.CallStmt) error {
	switch c.Name {
	case "outfld":
		return m.execOutfld(f, c)
	case "random_number":
		if len(c.Args) != 1 {
			return fmt.Errorf("interp: random_number wants 1 arg")
		}
		ref, ok := c.Args[0].(*fortran.Ref)
		if !ok {
			return fmt.Errorf("interp: random_number needs a variable")
		}
		cell, idx, err := m.lvalue(f, ref)
		if err != nil {
			return err
		}
		switch {
		case idx >= 0:
			cell.A[idx] = m.cfg.RNG.Float64()
		case cell.Kind == KindArray:
			for i := range cell.A {
				cell.A[i] = m.cfg.RNG.Float64()
			}
		default:
			cell.F = m.cfg.RNG.Float64()
		}
		return nil
	}
	targets := m.subs[f.module+"::"+c.Name]
	if len(targets) == 0 {
		return fmt.Errorf("interp: no subroutine %q visible in %s", c.Name, f.module)
	}
	t := m.resolveOverload(targets, len(c.Args))
	args := make([]*Value, len(c.Args))
	for i, a := range c.Args {
		if ref, ok := a.(*fortran.Ref); ok {
			cell, idx, err := m.lvalue(f, ref)
			if err != nil {
				return err
			}
			if idx >= 0 {
				// Element views are passed by value (copy-in only).
				args[i] = NewScalar(cell.A[idx])
			} else if ref.HasParens && cell.Kind != KindArray {
				// name(...) that is actually a function call result.
				v, err := m.eval(f, a)
				if err != nil {
					return err
				}
				args[i] = v
			} else {
				args[i] = cell
			}
			continue
		}
		v, err := m.eval(f, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	return m.invoke(t, args)
}

func (m *Machine) execOutfld(f *frame, c *fortran.CallStmt) error {
	if len(c.Args) != 2 {
		return fmt.Errorf("interp: outfld wants 2 args")
	}
	lbl, ok := c.Args[0].(*fortran.StrLit)
	if !ok {
		return fmt.Errorf("interp: outfld label must be a literal")
	}
	v, err := m.eval(f, c.Args[1])
	if err != nil {
		return err
	}
	switch v.Kind {
	case KindArray:
		m.Outputs[lbl.Value] = append([]float64(nil), v.A...)
	case KindScalar:
		m.Outputs[lbl.Value] = []float64{v.F}
	default:
		return fmt.Errorf("interp: outfld of derived value")
	}
	return nil
}

func (m *Machine) snapshotKernel(f *frame) {
	for name, v := range f.vars {
		switch v.Kind {
		case KindScalar:
			m.Kernel[name] = []float64{v.F}
		case KindArray:
			m.Kernel[name] = append([]float64(nil), v.A...)
		}
	}
}

// eval evaluates an expression to a value. Returned values are fresh
// (safe to mutate) except for plain variable references, which alias
// storage — callers that mutate must Clone.
func (m *Machine) eval(f *frame, e fortran.Expr) (*Value, error) {
	switch x := e.(type) {
	case *fortran.NumLit:
		return NewScalar(x.Value), nil
	case *fortran.StrLit:
		return NewScalar(0), nil
	case *fortran.UnaryExpr:
		v, err := m.eval(f, x.X)
		if err != nil {
			return nil, err
		}
		return mapUnary(x.Op, v)
	case *fortran.BinaryExpr:
		return m.evalBinary(f, x)
	case *fortran.Ref:
		return m.evalRef(f, x)
	}
	return nil, fmt.Errorf("interp: unknown expression %T", e)
}

func mapUnary(op fortran.Kind, v *Value) (*Value, error) {
	apply := func(x float64) float64 {
		if op == fortran.NOT {
			if x == 0 {
				return 1
			}
			return 0
		}
		return -x
	}
	switch v.Kind {
	case KindScalar:
		return NewScalar(apply(v.F)), nil
	case KindArray:
		out := NewArray(len(v.A))
		for i, x := range v.A {
			out.A[i] = apply(x)
		}
		return out, nil
	}
	return nil, fmt.Errorf("interp: unary op on derived value")
}

// evalBinary evaluates l op r elementwise with broadcasting. When the
// module has FMA enabled and the expression is (a*b)+c or c+(a*b), the
// multiply-add is fused via math.FMA — the semantic difference between
// AVX2-with-FMA and AVX2-disabled builds in the paper's §6.4.
func (m *Machine) evalBinary(f *frame, b *fortran.BinaryExpr) (*Value, error) {
	if (b.Op == fortran.PLUS || b.Op == fortran.MINUS) && m.cfg.FMA != nil && m.cfg.FMA(f.module) {
		if mul, ok := b.L.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
			// a*b + c fuses directly; a*b - c fuses as FMA(a, b, -c).
			return m.evalFMA(f, mul.L, mul.R, b.R, b.Op == fortran.MINUS, false)
		}
		if b.Op == fortran.PLUS {
			if mul, ok := b.R.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
				return m.evalFMA(f, mul.L, mul.R, b.L, false, false)
			}
		} else if mul, ok := b.R.(*fortran.BinaryExpr); ok && mul.Op == fortran.STAR {
			// c - a*b fuses as FMA(-a, b, c).
			return m.evalFMA(f, mul.L, mul.R, b.L, false, true)
		}
	}
	l, err := m.eval(f, b.L)
	if err != nil {
		return nil, err
	}
	r, err := m.eval(f, b.R)
	if err != nil {
		return nil, err
	}
	return zipValues(b.Op, l, r)
}

// evalFMA computes FMA(±a, b, ±c) elementwise: negC selects a*b - c,
// negA selects c - a*b.
func (m *Machine) evalFMA(f *frame, ae, be, ce fortran.Expr, negC, negA bool) (*Value, error) {
	a, err := m.eval(f, ae)
	if err != nil {
		return nil, err
	}
	bv, err := m.eval(f, be)
	if err != nil {
		return nil, err
	}
	c, err := m.eval(f, ce)
	if err != nil {
		return nil, err
	}
	sa, sc := 1.0, 1.0
	if negA {
		sa = -1
	}
	if negC {
		sc = -1
	}
	n, anyArr := broadcastLen(a, bv, c)
	if !anyArr {
		return NewScalar(math.FMA(sa*a.F, bv.F, sc*c.F)), nil
	}
	out := NewArray(n)
	for i := 0; i < n; i++ {
		out.A[i] = math.FMA(sa*at(a, i), at(bv, i), sc*at(c, i))
	}
	return out, nil
}

func at(v *Value, i int) float64 {
	if v.Kind == KindArray {
		return v.A[i]
	}
	return v.F
}

// broadcastLen returns the common field length (the minimum array
// length across arguments) and whether any argument is an array.
func broadcastLen(vs ...*Value) (int, bool) {
	n, anyArr := 0, false
	for _, v := range vs {
		if v.Kind == KindArray {
			if !anyArr || len(v.A) < n {
				n = len(v.A)
			}
			anyArr = true
		}
	}
	if !anyArr {
		n = 1
	}
	return n, anyArr
}

func applyScalarOp(op fortran.Kind, a, b float64) (float64, error) {
	switch op {
	case fortran.PLUS:
		return a + b, nil
	case fortran.MINUS:
		return a - b, nil
	case fortran.STAR:
		return a * b, nil
	case fortran.SLASH:
		return a / b, nil
	case fortran.POW:
		return math.Pow(a, b), nil
	case fortran.EQ:
		return b2f(a == b), nil
	case fortran.NE:
		return b2f(a != b), nil
	case fortran.LT:
		return b2f(a < b), nil
	case fortran.LE:
		return b2f(a <= b), nil
	case fortran.GT:
		return b2f(a > b), nil
	case fortran.GE:
		return b2f(a >= b), nil
	case fortran.AND:
		return b2f(a != 0 && b != 0), nil
	case fortran.OR:
		return b2f(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("interp: bad binary op %v", op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func zipValues(op fortran.Kind, l, r *Value) (*Value, error) {
	if l.Kind == KindDerived || r.Kind == KindDerived {
		return nil, fmt.Errorf("interp: arithmetic on derived value")
	}
	if l.Kind == KindScalar && r.Kind == KindScalar {
		out, err := applyScalarOp(op, l.F, r.F)
		if err != nil {
			return nil, err
		}
		return NewScalar(out), nil
	}
	n, _ := broadcastLen(l, r)
	out := NewArray(n)
	for i := 0; i < n; i++ {
		v, err := applyScalarOp(op, at(l, i), at(r, i))
		if err != nil {
			return nil, err
		}
		out.A[i] = v
	}
	return out, nil
}

// evalRef evaluates variable references, array elements, intrinsic and
// user function calls.
func (m *Machine) evalRef(f *frame, r *fortran.Ref) (*Value, error) {
	if r.HasParens && len(r.Components) == 0 {
		// Could be intrinsic, function, or array element.
		if fn, ok := intrinsicFns[r.Name]; ok {
			return m.evalIntrinsic(f, r, fn)
		}
		if targets := m.funcs[f.module+"::"+r.Name]; len(targets) > 0 {
			return m.callFunction(f, targets, r.Args)
		}
	}
	cell, idx, err := m.lvalue(f, r)
	if err != nil {
		return nil, err
	}
	if idx >= 0 {
		return NewScalar(cell.A[idx]), nil
	}
	return cell, nil
}

func (m *Machine) callFunction(f *frame, targets []procKeyTarget, argExprs []fortran.Expr) (*Value, error) {
	t := m.resolveOverload(targets, len(argExprs))
	args := make([]*Value, len(argExprs))
	anyArray := false
	for i, a := range argExprs {
		v, err := m.eval(f, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
		if v.Kind == KindArray {
			anyArray = true
		}
	}
	if t.sub.Elemental && anyArray {
		// Elemental broadcast: apply the function per column.
		n, _ := broadcastLen(args...)
		out := NewArray(n)
		for i := 0; i < n; i++ {
			col := make([]*Value, len(args))
			for j, v := range args {
				col[j] = NewScalar(at(v, i))
			}
			rv, err := m.invokeFunction(t, col)
			if err != nil {
				return nil, err
			}
			out.A[i] = rv.Scalar()
		}
		return out, nil
	}
	// Pass clones so the callee cannot alias caller expression temps.
	for i := range args {
		args[i] = args[i].Clone()
	}
	return m.invokeFunction(t, args)
}

func (m *Machine) invokeFunction(t procKeyTarget, args []*Value) (*Value, error) {
	if err := m.invoke(t, args); err != nil {
		return nil, err
	}
	// The result variable lives in the (discarded) frame; re-run with a
	// captured frame would be wasteful, so invoke stores results here:
	return m.lastResult, nil
}

// evalIntrinsic evaluates built-in functions elementwise.
func (m *Machine) evalIntrinsic(f *frame, r *fortran.Ref, fn intrinsicFn) (*Value, error) {
	args := make([]*Value, len(r.Args))
	for i, a := range r.Args {
		v, err := m.eval(f, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn(m, args)
}
