package interp

import (
	"math"
	"strings"
	"testing"

	"github.com/climate-rca/rca/internal/fortran"
)

// mustFail asserts that running module m's subroutine s errors with a
// message containing want.
func mustFail(t *testing.T, src, want string) {
	t.Helper()
	mods, err := fortran.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(mods, Config{Ncol: 2})
	if err == nil {
		err = m.Call("m", "s")
	}
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestArithmeticOnDerivedErrors(t *testing.T) {
	mustFail(t, `
module m
  type tt
    real :: f(:)
  end type
  type(tt) :: x
  real :: y
contains
  subroutine s()
    y = x + 1.0
  end subroutine
end module
`, "derived")
}

func TestOutfldOfDerivedErrors(t *testing.T) {
	mustFail(t, `
module m
  type tt
    real :: f(:)
  end type
  type(tt) :: x
contains
  subroutine s()
    call outfld('X', x)
  end subroutine
end module
`, "outfld")
}

func TestOutfldNonLiteralLabelErrors(t *testing.T) {
	mustFail(t, `
module m
  real :: lbl, v(:)
contains
  subroutine s()
    call outfld(lbl, v)
  end subroutine
end module
`, "label")
}

func TestRandomNumberArityError(t *testing.T) {
	mustFail(t, `
module m
  real :: a(:), b(:)
contains
  subroutine s()
    call random_number(a, b)
  end subroutine
end module
`, "random_number")
}

func TestIntrinsicArityErrors(t *testing.T) {
	mustFail(t, `
module m
  real :: x
contains
  subroutine s()
    x = sqrt(1.0, 2.0)
  end subroutine
end module
`, "intrinsic")
	mustFail(t, `
module m
  real :: x
contains
  subroutine s()
    x = min(1.0)
  end subroutine
end module
`, "min/max")
}

func TestUnknownDerivedComponentError(t *testing.T) {
	mustFail(t, `
module m
  type tt
    real :: f(:)
  end type
  type(tt) :: x
  real :: y
contains
  subroutine s()
    y = x%nosuch
  end subroutine
end module
`, "component")
}

func TestUnknownDerivedTypeError(t *testing.T) {
	mods, err := fortran.ParseFile(`
module m
  type(nosuchtype) :: x
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(mods, Config{Ncol: 2}); err == nil {
		t.Fatal("unknown derived type accepted")
	}
}

func TestComparisonAndLogicalOps(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: r1, r2, r3, r4, r5, r6
contains
  subroutine s()
    r1 = 1.0
    r2 = 2.0
    if (r1 < r2 .and. r2 <= 2.0) r3 = 1.0
    if (r1 >= 1.0 .or. r2 == 99.0) r4 = 1.0
    if (r1 /= r2) r5 = 1.0
    if (.not. (r1 > r2)) r6 = 1.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"r3", "r4", "r5", "r6"} {
		v, _ := m.ModuleVar("m", name)
		if v.F != 1 {
			t.Fatalf("%s = %v; want 1", name, v.F)
		}
	}
}

func TestModSignFloorIntrinsics(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: a, b, c
contains
  subroutine s()
    a = mod(7.0, 3.0)
    b = sign(5.0, -1.0)
    c = floor(2.7)
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	get := func(n string) float64 {
		v, _ := m.ModuleVar("m", n)
		return v.F
	}
	if get("a") != 1 || get("b") != -5 || get("c") != 2 {
		t.Fatalf("mod=%v sign=%v floor=%v", get("a"), get("b"), get("c"))
	}
}

func TestArrayComparisonElementwise(t *testing.T) {
	m := machineFor(t, Config{Ncol: 3}, `
module m
  real :: a(:), mask(:)
contains
  subroutine s()
    integer :: i
    do i = 1, 3
      a(i) = i
    end do
    mask = a > 1.5
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	mask, _ := m.ModuleVar("m", "mask")
	want := []float64{0, 1, 1}
	for i, w := range want {
		if mask.A[i] != w {
			t.Fatalf("mask = %v", mask.A)
		}
	}
}

func TestPowOperator(t *testing.T) {
	m := machineFor(t, Config{Ncol: 1}, `
module m
  real :: a, b
contains
  subroutine s()
    a = 2.0 ** 10.0
    b = 10.0 ** (-(2.0))
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	a, _ := m.ModuleVar("m", "a")
	b, _ := m.ModuleVar("m", "b")
	if a.F != 1024 || math.Abs(b.F-0.01) > 1e-15 {
		t.Fatalf("a=%v b=%v", a.F, b.F)
	}
}

func TestDerivedAssignCopiesFields(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2}, `
module m
  type tt
    real :: f(:)
  end type
  type(tt) :: x, y
contains
  subroutine s()
    x%f = 3.0
    y = x
    x%f = 9.0
  end subroutine
end module
`)
	if err := m.Call("m", "s"); err != nil {
		t.Fatal(err)
	}
	y, _ := m.ModuleVar("m", "y")
	if y.D["f"].A[0] != 3 {
		t.Fatalf("derived assign aliased: %v", y.D["f"].A)
	}
}

func TestValueCloneIndependence(t *testing.T) {
	v := &Value{Kind: KindDerived, D: map[string]*Value{
		"a": NewScalar(1),
		"b": {Kind: KindArray, A: []float64{1, 2}},
	}}
	c := v.Clone()
	c.D["a"].F = 99
	c.D["b"].A[0] = 99
	if v.D["a"].F != 1 || v.D["b"].A[0] != 1 {
		t.Fatalf("clone aliased original: %+v", v)
	}
}

func TestScalarOfEmptyArray(t *testing.T) {
	v := &Value{Kind: KindArray}
	if v.Scalar() != 0 {
		t.Fatal("empty array scalar != 0")
	}
}

func TestValueString(t *testing.T) {
	if NewScalar(2.5).String() != "2.5" {
		t.Fatal("scalar string")
	}
	if NewArray(3).String() != "array[3]" {
		t.Fatal("array string")
	}
	d := &Value{Kind: KindDerived, D: map[string]*Value{"a": NewScalar(0)}}
	if !strings.Contains(d.String(), "derived") {
		t.Fatal("derived string")
	}
}

func TestSnapshotAllKeysMatchMetagraphConvention(t *testing.T) {
	m := machineFor(t, Config{Ncol: 2, SnapshotAll: true}, `
module phys
  type ps
    real :: omega(:)
  end type
  type(ps) :: state
  real :: modvar(:)
contains
  subroutine s()
    real :: loc(:)
    loc = 1.5
    state%omega = loc * 2.0
    modvar = state%omega
  end subroutine
end module
`)
	if err := m.Call("phys", "s"); err != nil {
		t.Fatal(err)
	}
	m.SnapshotModuleVars()
	for _, key := range []string{"phys::s::loc", "phys::::omega", "phys::::modvar"} {
		if _, ok := m.AllValues[key]; !ok {
			t.Fatalf("snapshot key %s missing (have %d keys)", key, len(m.AllValues))
		}
	}
	if m.AllValues["phys::::omega"][0] != 3 {
		t.Fatalf("omega snapshot = %v", m.AllValues["phys::::omega"])
	}
}

func TestFMAWithMinusFusion(t *testing.T) {
	// a*b - c must also fuse under FMA mode (compilers fuse both
	// forms); checked via the corpus' canonical cancellation.
	src := `
module m
  real :: x
contains
  subroutine s()
    x = 1000003.0 * 0.999997 - 999999.999991
  end subroutine
end module
`
	run := func(fma bool) float64 {
		m := machineFor(t, Config{Ncol: 1, FMA: func(string) bool { return fma }}, src)
		if err := m.Call("m", "s"); err != nil {
			t.Fatal(err)
		}
		v, _ := m.ModuleVar("m", "x")
		return v.F
	}
	if run(true) == run(false) {
		t.Fatal("a*b - c not fused under FMA mode")
	}
}
