// Package binenc implements the deterministic little-endian binary
// encoding the artifact codecs share. The contract is stronger than
// encoding/gob's: byte-for-byte determinism — encoding the same value
// twice (or encoding a decoded value) yields identical bytes, so
// content addresses are stable and the round-trip fuzzers can assert
// bit-exactness. Writers never fail; readers carry a sticky error and
// return zero values after the first malformed field, so codecs can
// decode straight-line and check Err() once.
package binenc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrMalformed reports a truncated or out-of-spec payload.
var ErrMalformed = errors.New("binenc: malformed payload")

// maxSliceLen bounds decoded element counts so a corrupted length
// prefix cannot drive a multi-gigabyte allocation. Every artifact the
// system encodes is far below this.
const maxSliceLen = 1 << 28

// Writer accumulates a deterministic binary payload.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with some preallocated capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I32 appends an int32 (two's complement).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by exact bit pattern (NaN payloads survive).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Len appends a non-negative element count.
func (w *Writer) Len(n int) { w.U32(uint32(n)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.buf = append(w.buf, s...)
}

// Raw appends length-prefixed raw bytes.
func (w *Writer) Raw(b []byte) {
	w.Len(len(b))
	w.buf = append(w.buf, b...)
}

// Reader decodes a payload written by Writer. All methods return zero
// values once the sticky error is set.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps a payload.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Done extends Err with a trailing-garbage check: a well-formed
// payload must be consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return ErrMalformed
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.err = ErrMalformed
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool. Any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Len reads an element count, rejecting absurd values so corrupted
// prefixes fail cleanly instead of exhausting memory.
func (r *Reader) Len() int {
	n := r.U32()
	if r.err == nil && n > maxSliceLen {
		r.err = ErrMalformed
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Raw reads length-prefixed raw bytes (copied out of the payload).
func (r *Reader) Raw() []byte {
	n := r.Len()
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
