package fortran

import (
	"fmt"
	"strings"
)

// Lexer tokenizes FortLite source. It is line-oriented: comments start
// at '!' and run to end of line; '&' at end of line continues the
// statement (the continuation marker is consumed and no NEWLINE is
// emitted); blank lines collapse.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Tokens lexes the whole input, returning the token stream terminated
// by an EOF token. Keyword/identifier text is lowercased (Fortran is
// case-insensitive); string literal text retains its original case
// without the surrounding quotes.
func (l *Lexer) Tokens() ([]Token, error) {
	var toks []Token
	emitNewline := func() {
		// Collapse consecutive newlines.
		if n := len(toks); n > 0 && toks[n-1].Kind != NEWLINE {
			toks = append(toks, Token{Kind: NEWLINE, Line: l.line})
		}
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			emitNewline()
			l.pos++
			l.line++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '!':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '&':
			// Continuation: skip to and past the newline.
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\r') {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] == '!' {
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
			}
			if l.pos < len(l.src) && l.src[l.pos] == '\n' {
				l.pos++
				l.line++
			}
		case c == '\'' || c == '"':
			tok, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			toks = append(toks, l.lexNumber())
		case isIdentStart(c):
			toks = append(toks, l.lexIdentOrDotOp())
		case c == '.':
			tok, err := l.lexDotOp()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		default:
			tok, err := l.lexOperator()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		}
	}
	emitNewline()
	toks = append(toks, Token{Kind: EOF, Line: l.line})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		if l.src[l.pos] == '\n' {
			return Token{}, fmt.Errorf("fortran: line %d: unterminated string", l.line)
		}
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{}, fmt.Errorf("fortran: line %d: unterminated string", l.line)
	}
	text := l.src[start+1 : l.pos]
	l.pos++ // closing quote
	return Token{Kind: STRING, Text: text, Line: l.line}, nil
}

func (l *Lexer) lexNumber() Token {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		// Don't swallow ".and." style operators after an integer: only
		// continue past '.' if followed by a digit or exponent.
		if l.src[l.pos] == '.' {
			if l.pos+1 < len(l.src) {
				n := l.src[l.pos+1]
				if !isDigit(n) && n|0x20 != 'e' && n|0x20 != 'd' {
					break
				}
			}
		}
		l.pos++
	}
	// Exponent: e/d with optional sign, then digits. The 'd' exponent
	// (double precision) is normalized to 'e'.
	if l.pos < len(l.src) && (l.src[l.pos]|0x20 == 'e' || l.src[l.pos]|0x20 == 'd') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save // not an exponent after all
		}
	}
	text := strings.ToLower(l.src[start:l.pos])
	text = strings.Replace(text, "d", "e", 1)
	// Kind suffix like 1.0_r8.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '_' && isIdentStart(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
	}
	return Token{Kind: NUMBER, Text: text, Line: l.line}
}

func (l *Lexer) lexIdentOrDotOp() Token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return Token{Kind: IDENT, Text: strings.ToLower(l.src[start:l.pos]), Line: l.line}
}

func (l *Lexer) lexDotOp() (Token, error) {
	rest := strings.ToLower(l.src[l.pos:])
	for _, op := range []struct {
		text string
		kind Kind
	}{
		{".and.", AND}, {".or.", OR}, {".not.", NOT},
		{".true.", NUMBER}, {".false.", NUMBER},
	} {
		if strings.HasPrefix(rest, op.text) {
			l.pos += len(op.text)
			text := op.text
			if op.kind == NUMBER {
				// Booleans become 1/0 numeric literals; FortLite treats
				// logicals as numbers, which is all the corpus needs.
				if text == ".true." {
					text = "1"
				} else {
					text = "0"
				}
			}
			return Token{Kind: op.kind, Text: text, Line: l.line}, nil
		}
	}
	return Token{}, fmt.Errorf("fortran: line %d: unexpected '.'", l.line)
}

func (l *Lexer) lexOperator() (Token, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	mk := func(k Kind, n int) (Token, error) {
		t := Token{Kind: k, Text: l.src[l.pos : l.pos+n], Line: l.line}
		l.pos += n
		return t, nil
	}
	switch two {
	case "::":
		return mk(DCOLON, 2)
	case "=>":
		return mk(ARROW, 2)
	case "**":
		return mk(POW, 2)
	case "==":
		return mk(EQ, 2)
	case "/=":
		return mk(NE, 2)
	case "<=":
		return mk(LE, 2)
	case ">=":
		return mk(GE, 2)
	}
	switch l.src[l.pos] {
	case '(':
		return mk(LPAREN, 1)
	case ')':
		return mk(RPAREN, 1)
	case ',':
		return mk(COMMA, 1)
	case ':':
		return mk(COLON, 1)
	case '%':
		return mk(PERCENT, 1)
	case '=':
		return mk(ASSIGN, 1)
	case '+':
		return mk(PLUS, 1)
	case '-':
		return mk(MINUS, 1)
	case '*':
		return mk(STAR, 1)
	case '/':
		return mk(SLASH, 1)
	case '<':
		return mk(LT, 1)
	case '>':
		return mk(GT, 1)
	}
	return Token{}, fmt.Errorf("fortran: line %d: unexpected character %q", l.line, l.src[l.pos])
}
