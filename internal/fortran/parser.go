package fortran

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for FortLite.
type Parser struct {
	toks []Token
	pos  int
}

// ParseFile lexes and parses src, returning every module it contains.
func ParseFile(src string) ([]*Module, error) {
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var mods []*Module
	p.skipNewlines()
	for !p.at(EOF) {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
		p.skipNewlines()
	}
	return mods, nil
}

// ParseModule parses a source string expected to contain exactly one
// module.
func ParseModule(src string) (*Module, error) {
	mods, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(mods) != 1 {
		return nil, fmt.Errorf("fortran: expected 1 module, found %d", len(mods))
	}
	return mods[0], nil
}

func (p *Parser) cur() Token     { return p.toks[p.pos] }
func (p *Parser) at(k Kind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == IDENT && t.Text == kw
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *Parser) expectIdent() (Token, error) {
	if !p.at(IDENT) {
		return Token{}, p.errorf("expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("fortran: line %d: %s", p.cur().Line, fmt.Sprintf(format, args...))
}

func (p *Parser) skipNewlines() {
	for p.at(NEWLINE) {
		p.next()
	}
}

func (p *Parser) endOfStmt() error {
	if p.at(EOF) {
		return nil
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return err
	}
	p.skipNewlines()
	return nil
}

var typeKeywords = map[string]bool{
	"real": true, "integer": true, "logical": true, "character": true,
}

func (p *Parser) parseModule() (*Module, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Line: nameTok.Line}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	// Specification part.
	for {
		switch {
		case p.atKeyword("use"):
			u, err := p.parseUse()
			if err != nil {
				return nil, err
			}
			m.Uses = append(m.Uses, u)
		case p.atKeyword("implicit"):
			p.next()
			if err := p.expectKeyword("none"); err != nil {
				return nil, err
			}
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
		case p.atKeyword("private") || p.atKeyword("public") || p.atKeyword("save"):
			// Visibility/save statements are accepted and ignored.
			p.next()
			for !p.at(NEWLINE) && !p.at(EOF) {
				p.next()
			}
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
		case p.atKeyword("type") && p.peekIsTypeDef():
			dt, err := p.parseDerivedType()
			if err != nil {
				return nil, err
			}
			m.Types = append(m.Types, dt)
		case p.atKeyword("interface"):
			iface, err := p.parseInterface()
			if err != nil {
				return nil, err
			}
			m.Interfaces = append(m.Interfaces, iface)
		case p.atDeclStart():
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			m.Decls = append(m.Decls, d)
		default:
			goto containsPart
		}
	}
containsPart:
	if p.atKeyword("contains") {
		p.next()
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		for p.atKeyword("subroutine") || p.atKeyword("function") || p.atKeyword("elemental") {
			sub, err := p.parseSubprogram()
			if err != nil {
				return nil, err
			}
			m.Subprograms = append(m.Subprograms, sub)
		}
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	if p.atKeyword("module") {
		p.next()
		if p.at(IDENT) {
			p.next()
		}
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return m, nil
}

// peekIsTypeDef distinguishes `type foo` / `type :: foo` (definition)
// from `type(foo) :: x` (declaration).
func (p *Parser) peekIsTypeDef() bool {
	nxt := p.toks[p.pos+1]
	return nxt.Kind == IDENT || nxt.Kind == DCOLON
}

func (p *Parser) atDeclStart() bool {
	if p.atKeyword("type") && !p.peekIsTypeDef() {
		return true
	}
	return p.at(IDENT) && typeKeywords[p.cur().Text]
}

func (p *Parser) parseUse() (Use, error) {
	tok := p.next() // 'use'
	name, err := p.expectIdent()
	if err != nil {
		return Use{}, err
	}
	u := Use{Module: name.Text, Line: tok.Line}
	if p.at(COMMA) {
		p.next()
		if p.atKeyword("only") {
			p.next()
			if _, err := p.expect(COLON); err != nil {
				return Use{}, err
			}
		}
		for {
			local, err := p.expectIdent()
			if err != nil {
				return Use{}, err
			}
			r := Rename{Local: local.Text, Remote: local.Text}
			if p.at(ARROW) {
				p.next()
				remote, err := p.expectIdent()
				if err != nil {
					return Use{}, err
				}
				r.Remote = remote.Text
			}
			u.Only = append(u.Only, r)
			if !p.at(COMMA) {
				break
			}
			p.next()
		}
	}
	return u, p.endOfStmt()
}

func (p *Parser) parseDerivedType() (DerivedType, error) {
	tok := p.next() // 'type'
	if p.at(DCOLON) {
		p.next()
	}
	name, err := p.expectIdent()
	if err != nil {
		return DerivedType{}, err
	}
	dt := DerivedType{Name: name.Text, Line: tok.Line}
	if err := p.endOfStmt(); err != nil {
		return DerivedType{}, err
	}
	for !p.atKeyword("end") {
		d, err := p.parseVarDecl()
		if err != nil {
			return DerivedType{}, err
		}
		dt.Fields = append(dt.Fields, d)
	}
	p.next() // 'end'
	if p.atKeyword("type") {
		p.next()
		if p.at(IDENT) {
			p.next()
		}
	}
	return dt, p.endOfStmt()
}

func (p *Parser) parseInterface() (Interface, error) {
	tok := p.next() // 'interface'
	name, err := p.expectIdent()
	if err != nil {
		return Interface{}, err
	}
	iface := Interface{Name: name.Text, Line: tok.Line}
	if err := p.endOfStmt(); err != nil {
		return Interface{}, err
	}
	for p.atKeyword("module") {
		p.next()
		if err := p.expectKeyword("procedure"); err != nil {
			return Interface{}, err
		}
		for {
			proc, err := p.expectIdent()
			if err != nil {
				return Interface{}, err
			}
			iface.Procedures = append(iface.Procedures, proc.Text)
			if !p.at(COMMA) {
				break
			}
			p.next()
		}
		if err := p.endOfStmt(); err != nil {
			return Interface{}, err
		}
	}
	if err := p.expectKeyword("end"); err != nil {
		return Interface{}, err
	}
	if p.atKeyword("interface") {
		p.next()
		if p.at(IDENT) {
			p.next()
		}
	}
	return iface, p.endOfStmt()
}

// parseVarDecl parses declarations like:
//
//	real :: a, b(:), c
//	real(r8), parameter :: tboil = 373.16
//	integer, intent(in) :: n
//	type(physstate) :: state
//	real, dimension(:) :: q
func (p *Parser) parseVarDecl() (VarDecl, error) {
	tok := p.cur()
	d := VarDecl{Line: tok.Line}
	switch {
	case p.atKeyword("type"):
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return d, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return d, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return d, err
		}
		d.BaseType = name.Text
		d.IsType = true
	default:
		d.BaseType = p.next().Text
		// Optional kind spec: real(r8), character(len=...): skip the
		// parenthesized blob.
		if p.at(LPAREN) {
			depth := 0
			for {
				t := p.next()
				if t.Kind == LPAREN {
					depth++
				} else if t.Kind == RPAREN {
					depth--
					if depth == 0 {
						break
					}
				} else if t.Kind == EOF {
					return d, p.errorf("unterminated kind spec")
				}
			}
		}
	}
	// Attributes.
	for p.at(COMMA) {
		p.next()
		attr, err := p.expectIdent()
		if err != nil {
			return d, err
		}
		switch attr.Text {
		case "parameter":
			d.Param = true
		case "intent":
			if _, err := p.expect(LPAREN); err != nil {
				return d, err
			}
			which, err := p.expectIdent()
			if err != nil {
				return d, err
			}
			switch which.Text {
			case "in":
				d.Intent = IntentIn
			case "out":
				d.Intent = IntentOut
			case "inout":
				d.Intent = IntentInOut
			default:
				return d, p.errorf("bad intent %q", which.Text)
			}
			if _, err := p.expect(RPAREN); err != nil {
				return d, err
			}
		case "dimension":
			if _, err := p.expect(LPAREN); err != nil {
				return d, err
			}
			if _, err := p.expect(COLON); err != nil {
				return d, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return d, err
			}
			d.Array = true
		case "public", "private", "save", "allocatable", "pointer", "target":
			// Accepted and ignored.
		default:
			return d, p.errorf("unknown attribute %q", attr.Text)
		}
	}
	if _, err := p.expect(DCOLON); err != nil {
		return d, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return d, err
		}
		d.Names = append(d.Names, name.Text)
		d.ArrayFlags = append(d.ArrayFlags, false)
		if p.at(LPAREN) {
			p.next()
			if _, err := p.expect(COLON); err != nil {
				return d, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return d, err
			}
			d.ArrayFlags[len(d.ArrayFlags)-1] = true
		}
		if p.at(ASSIGN) {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return d, err
			}
			d.Init = e
		}
		if !p.at(COMMA) {
			break
		}
		p.next()
	}
	return d, p.endOfStmt()
}

func (p *Parser) parseSubprogram() (*Subprogram, error) {
	sub := &Subprogram{Line: p.cur().Line}
	if p.atKeyword("elemental") {
		sub.Elemental = true
		p.next()
	}
	switch {
	case p.atKeyword("subroutine"):
		p.next()
		sub.Kind = KindSubroutine
	case p.atKeyword("function"):
		p.next()
		sub.Kind = KindFunction
	default:
		return nil, p.errorf("expected subroutine or function")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	sub.Name = name.Text
	if p.at(LPAREN) {
		p.next()
		for !p.at(RPAREN) {
			arg, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			sub.Args = append(sub.Args, arg.Text)
			if p.at(COMMA) {
				p.next()
			}
		}
		p.next() // ')'
	}
	if sub.Kind == KindFunction && p.atKeyword("result") {
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		res, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sub.Result = res.Text
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	// Local declarations.
	for p.atDeclStart() || p.atKeyword("implicit") {
		if p.atKeyword("implicit") {
			p.next()
			if err := p.expectKeyword("none"); err != nil {
				return nil, err
			}
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
			continue
		}
		d, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		sub.Decls = append(sub.Decls, d)
	}
	body, err := p.parseStmts(func() bool { return p.atKeyword("end") })
	if err != nil {
		return nil, err
	}
	sub.Body = body
	p.next() // 'end'
	if p.atKeyword("subroutine") || p.atKeyword("function") {
		p.next()
		if p.at(IDENT) {
			p.next()
		}
	}
	return sub, p.endOfStmt()
}

// parseStmts parses statements until stop() reports the terminator is
// current.
func (p *Parser) parseStmts(stop func() bool) ([]Stmt, error) {
	var out []Stmt
	for !stop() {
		if p.at(EOF) {
			return nil, p.errorf("unexpected EOF in statement block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("call"):
		return p.parseCall()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("do"):
		return p.parseDo()
	case p.atKeyword("return"):
		line := p.next().Line
		return &ReturnStmt{Line: line}, p.endOfStmt()
	case p.at(IDENT):
		return p.parseAssign()
	}
	return nil, p.errorf("unexpected token %s at statement start", p.cur())
}

func (p *Parser) parseCall() (Stmt, error) {
	tok := p.next() // 'call'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c := &CallStmt{Name: name.Text, Line: tok.Line}
	if p.at(LPAREN) {
		p.next()
		for !p.at(RPAREN) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if p.at(COMMA) {
				p.next()
			}
		}
		p.next()
	}
	return c, p.endOfStmt()
}

func (p *Parser) parseIf() (Stmt, error) {
	tok := p.next() // 'if'
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Line: tok.Line}
	if p.atKeyword("then") {
		p.next()
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		thenBody, err := p.parseStmts(func() bool {
			return p.atKeyword("end") || p.atKeyword("else") || p.atKeyword("elseif")
		})
		if err != nil {
			return nil, err
		}
		s.Then = thenBody
		for {
			switch {
			case p.atKeyword("elseif"):
				p.next()
				nested, err := p.parseElseIfTail()
				if err != nil {
					return nil, err
				}
				s.Else = []Stmt{nested}
				return s, nil
			case p.atKeyword("else"):
				p.next()
				if p.atKeyword("if") {
					p.next()
					nested, err := p.parseElseIfTail()
					if err != nil {
						return nil, err
					}
					s.Else = []Stmt{nested}
					return s, nil
				}
				if err := p.endOfStmt(); err != nil {
					return nil, err
				}
				elseBody, err := p.parseStmts(func() bool { return p.atKeyword("end") })
				if err != nil {
					return nil, err
				}
				s.Else = elseBody
			case p.atKeyword("end"):
				p.next()
				if err := p.expectKeyword("if"); err != nil {
					return nil, err
				}
				return s, p.endOfStmt()
			default:
				return nil, p.errorf("expected else/end if, found %s", p.cur())
			}
		}
	}
	// One-line if: a single simple statement.
	inner, err := p.parseSimpleStmtNoNewline()
	if err != nil {
		return nil, err
	}
	s.Then = []Stmt{inner}
	return s, p.endOfStmt()
}

// parseElseIfTail parses the `(cond) then ... end if` remainder of an
// else-if chain as a nested IfStmt; it consumes the final `end if`.
func (p *Parser) parseElseIfTail() (*IfStmt, error) {
	line := p.cur().Line
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Line: line}
	thenBody, err := p.parseStmts(func() bool {
		return p.atKeyword("end") || p.atKeyword("else") || p.atKeyword("elseif")
	})
	if err != nil {
		return nil, err
	}
	s.Then = thenBody
	switch {
	case p.atKeyword("elseif"):
		p.next()
		nested, err := p.parseElseIfTail()
		if err != nil {
			return nil, err
		}
		s.Else = []Stmt{nested}
		return s, nil
	case p.atKeyword("else"):
		p.next()
		if p.atKeyword("if") {
			p.next()
			nested, err := p.parseElseIfTail()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{nested}
			return s, nil
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		elseBody, err := p.parseStmts(func() bool { return p.atKeyword("end") })
		if err != nil {
			return nil, err
		}
		s.Else = elseBody
		fallthrough
	default:
		p.next() // 'end'
		if err := p.expectKeyword("if"); err != nil {
			return nil, err
		}
		return s, p.endOfStmt()
	}
}

// parseSimpleStmtNoNewline parses the body of a one-line if (assignment,
// call, or return) without consuming the trailing newline.
func (p *Parser) parseSimpleStmtNoNewline() (Stmt, error) {
	switch {
	case p.atKeyword("call"):
		tok := p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		c := &CallStmt{Name: name.Text, Line: tok.Line}
		if p.at(LPAREN) {
			p.next()
			for !p.at(RPAREN) {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, e)
				if p.at(COMMA) {
					p.next()
				}
			}
			p.next()
		}
		return c, nil
	case p.atKeyword("return"):
		return &ReturnStmt{Line: p.next().Line}, nil
	case p.at(IDENT):
		lhs, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Line: lhs.Line}, nil
	}
	return nil, p.errorf("bad one-line if body at %s", p.cur())
}

func (p *Parser) parseDo() (Stmt, error) {
	tok := p.next() // 'do'
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(func() bool { return p.atKeyword("end") })
	if err != nil {
		return nil, err
	}
	p.next() // 'end'
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	return &DoStmt{Var: v.Text, From: from, To: to, Body: body, Line: tok.Line}, p.endOfStmt()
}

func (p *Parser) parseAssign() (Stmt, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Line: lhs.Line}, p.endOfStmt()
}

// parseRef parses name, name(args), a%b(i)%c forms.
func (p *Parser) parseRef() (*Ref, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	r := &Ref{Name: name.Text, Line: name.Line}
	parseArgs := func() ([]Expr, bool, error) {
		if !p.at(LPAREN) {
			return nil, false, nil
		}
		p.next()
		var args []Expr
		for !p.at(RPAREN) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, false, err
			}
			args = append(args, e)
			if p.at(COMMA) {
				p.next()
			}
		}
		p.next()
		return args, true, nil
	}
	args, had, err := parseArgs()
	if err != nil {
		return nil, err
	}
	r.Args, r.HasParens = args, had
	for p.at(PERCENT) {
		p.next()
		comp, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		r.Components = append(r.Components, comp.Text)
		// Indexing may attach to any component; only the final one's
		// args are retained (indices are atomic per the paper).
		args, had, err := parseArgs()
		if err != nil {
			return nil, err
		}
		if had {
			r.Args, r.HasParens = args, true
		}
	}
	return r, nil
}

// Expression grammar: or → and → cmp → add → mul → unary → power → primary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(OR) {
		tok := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OR, L: l, R: r, Line: tok.Line}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(AND) {
		tok := p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: AND, L: l, R: r, Line: tok.Line}
	}
	return l, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EQ, NE, LT, LE, GT, GE:
		tok := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: tok.Kind, L: l, R: r, Line: tok.Line}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(PLUS) || p.at(MINUS) {
		tok := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: tok.Kind, L: l, R: r, Line: tok.Line}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(STAR) || p.at(SLASH) {
		tok := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: tok.Kind, L: l, R: r, Line: tok.Line}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(MINUS) || p.at(NOT) {
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: tok.Kind, X: x, Line: tok.Line}, nil
	}
	if p.at(PLUS) {
		p.next()
		return p.parseUnary()
	}
	return p.parsePower()
}

func (p *Parser) parsePower() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.at(POW) {
		tok := p.next()
		// Exponentiation is right-associative.
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: POW, L: base, R: exp, Line: tok.Line}, nil
	}
	return base, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.at(NUMBER):
		tok := p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", tok.Text, err)
		}
		return &NumLit{Value: v, Line: tok.Line}, nil
	case p.at(STRING):
		tok := p.next()
		return &StrLit{Value: tok.Text, Line: tok.Line}, nil
	case p.at(LPAREN):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(IDENT):
		return p.parseRef()
	}
	return nil, p.errorf("unexpected token %s in expression", p.cur())
}
