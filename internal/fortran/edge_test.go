package fortran

import (
	"testing"
	"testing/quick"
)

func TestParseKindSpecs(t *testing.T) {
	m, err := ParseModule(`
module m
  real(r8) :: a
  real(kind=8) :: b
  character(len=16) :: name
  integer :: i
contains
  subroutine s()
    a = 1.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Decls) != 4 {
		t.Fatalf("decls = %d", len(m.Decls))
	}
}

func TestParseDimensionAttribute(t *testing.T) {
	m, err := ParseModule(`
module m
  real, dimension(:) :: q, r
contains
  subroutine s()
    q = 1.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Decls[0]
	if !d.IsArrayName("q") || !d.IsArrayName("r") {
		t.Fatalf("dimension attr not applied: %+v", d)
	}
}

func TestParseVisibilityStatementsIgnored(t *testing.T) {
	m, err := ParseModule(`
module m
  implicit none
  private
  public :: s
  save
  real :: x
contains
  subroutine s()
    x = 1.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Subprograms) != 1 {
		t.Fatalf("subprograms = %d", len(m.Subprograms))
	}
}

func TestParsePointerAllocatableAttrs(t *testing.T) {
	if _, err := ParseModule(`
module m
  real, pointer :: p(:)
  real, allocatable :: q(:)
  real, target :: r(:)
end module
`); err != nil {
		t.Fatal(err)
	}
}

func TestParseUnknownAttributeRejected(t *testing.T) {
	if _, err := ParseModule(`
module m
  real, bogus :: x
end module
`); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestParsePowerRightAssociative(t *testing.T) {
	m, err := ParseModule(`
module m
  real :: x
contains
  subroutine s(a)
    real :: a
    x = a ** 2.0 ** 3.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	outer := assign.RHS.(*BinaryExpr)
	if outer.Op != POW {
		t.Fatalf("outer op = %v", outer.Op)
	}
	// Right-associative: a ** (2 ** 3).
	inner, ok := outer.R.(*BinaryExpr)
	if !ok || inner.Op != POW {
		t.Fatalf("not right-associative: %+v", outer.R)
	}
}

func TestParseUnaryPlusDropped(t *testing.T) {
	m, err := ParseModule(`
module m
  real :: x
contains
  subroutine s()
    x = +3.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	if lit, ok := assign.RHS.(*NumLit); !ok || lit.Value != 3 {
		t.Fatalf("unary plus: %+v", assign.RHS)
	}
}

func TestParseSubroutineWithoutArgs(t *testing.T) {
	m, err := ParseModule(`
module m
  real :: x
contains
  subroutine bare
    x = 1.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Subprograms[0].Args) != 0 {
		t.Fatalf("args = %v", m.Subprograms[0].Args)
	}
}

func TestParseFunctionDefaultResultVar(t *testing.T) {
	m, err := ParseModule(`
module m
contains
  function f(a)
    real :: a, f
    f = a * 2.0
  end function
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Subprograms[0].ResultVar() != "f" {
		t.Fatalf("result var = %q", m.Subprograms[0].ResultVar())
	}
}

func TestParseEndWithoutNames(t *testing.T) {
	if _, err := ParseModule(`
module m
  real :: x
contains
  subroutine s()
    x = 1.0
  end subroutine
end module
`); err != nil {
		t.Fatal(err)
	}
}

func TestParseTypeDColonForm(t *testing.T) {
	m, err := ParseModule(`
module m
  type :: tt
    real :: f
  end type tt
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Types) != 1 || m.Types[0].Name != "tt" {
		t.Fatalf("types = %+v", m.Types)
	}
}

func TestParseDeepNesting(t *testing.T) {
	m, err := ParseModule(`
module m
  real :: acc
contains
  subroutine s()
    integer :: i, j
    do i = 1, 3
      do j = 1, 3
        if (i == j) then
          if (i > 1) then
            acc = acc + 1.0
          end if
        else
          acc = acc - 0.5
        end if
      end do
    end do
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	var depth, maxDepth int
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, s := range body {
			switch x := s.(type) {
			case *DoStmt:
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
				walk(x.Body)
				depth--
			case *IfStmt:
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
				walk(x.Then)
				walk(x.Else)
				depth--
			}
		}
	}
	walk(m.Subprograms[0].Body)
	if maxDepth != 4 {
		t.Fatalf("nesting depth = %d; want 4", maxDepth)
	}
}

func TestParseLongExpression(t *testing.T) {
	// The paper mentions a CESM statement exceeding 3500 characters;
	// build a synthetic long chain and make sure we handle it.
	src := "module m\n  real :: x\ncontains\n  subroutine s()\n    x = 1.0"
	for i := 0; i < 500; i++ {
		src += " + 1.0"
	}
	src += "\n  end subroutine\nend module\n"
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	WalkExprs(m.Subprograms[0].Body[0].(*AssignStmt).RHS, func(Expr) { count++ })
	if count < 1000 {
		t.Fatalf("expression nodes = %d", count)
	}
}

// Property: lexing never panics and either errors or terminates with
// EOF for arbitrary byte strings.
func TestLexerTotalProperty(t *testing.T) {
	f := func(src string) bool {
		toks, err := NewLexer(src).Tokens()
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing arbitrary strings never panics (errors are fine).
func TestParserTotalProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = ParseFile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
