package fortran

// This file defines the FortLite abstract syntax tree. The shapes
// deliberately mirror what the metagraph builder needs: references keep
// their derived-type component chains (for canonical naming) and
// name(args) forms stay ambiguous between array indexing and function
// calls until symbol tables exist (paper §4.2).

// Module is a parsed Fortran module.
type Module struct {
	Name        string
	Uses        []Use
	Types       []DerivedType
	Decls       []VarDecl
	Interfaces  []Interface
	Subprograms []*Subprogram
	Line        int
}

// Use is a use statement. If Only is empty the whole public surface of
// the used module is imported. Renames (local => remote) appear both in
// only-lists and bare use statements.
type Use struct {
	Module string
	Only   []Rename
	Line   int
}

// Rename maps a local name to the remote (source-module) name. For
// plain imports Local == Remote.
type Rename struct {
	Local  string
	Remote string
}

// DerivedType is a Fortran derived type definition.
type DerivedType struct {
	Name   string
	Fields []VarDecl
	Line   int
}

// Intent describes a dummy argument's declared intent.
type Intent int

// Intent values. IntentUnknown means no intent clause was present; the
// metagraph treats such arguments conservatively (both directions).
const (
	IntentUnknown Intent = iota
	IntentIn
	IntentOut
	IntentInOut
)

// VarDecl declares one or more variables of a shared base type.
type VarDecl struct {
	Names    []string
	BaseType string // "real", "integer", "logical", "character", or derived type name
	IsType   bool   // true when BaseType names a derived type (type(x) :: ...)
	Array    bool   // dimension(:) attribute — applies to every name
	// ArrayFlags marks names individually declared with (:), parallel
	// to Names (nil when no name carries its own shape).
	ArrayFlags []bool
	Param      bool // parameter attribute: compile-time constant
	Intent     Intent
	Init       Expr // parameter initializer, if any
	Line       int
}

// ArrayAt reports whether the i'th declared name is an array, taking
// both the dimension attribute and per-name (:) shapes into account.
func (d *VarDecl) ArrayAt(i int) bool {
	if d.Array {
		return true
	}
	return i < len(d.ArrayFlags) && d.ArrayFlags[i]
}

// IsArrayName reports whether the named variable is declared as an
// array by this declaration.
func (d *VarDecl) IsArrayName(name string) bool {
	for i, n := range d.Names {
		if n == name {
			return d.ArrayAt(i)
		}
	}
	return false
}

// Interface is a generic interface block mapping a generic name to
// specific module procedures.
type Interface struct {
	Name       string
	Procedures []string
	Line       int
}

// SubKind distinguishes subroutines from functions.
type SubKind int

// Subprogram kinds.
const (
	KindSubroutine SubKind = iota
	KindFunction
)

// Subprogram is a subroutine or function contained in a module.
type Subprogram struct {
	Name      string
	Kind      SubKind
	Elemental bool
	Args      []string
	Result    string // function result variable ("" for subroutines; defaults to the function name)
	Decls     []VarDecl
	Body      []Stmt
	Line      int
}

// ResultVar returns the name of the function's result variable.
func (s *Subprogram) ResultVar() string {
	if s.Result != "" {
		return s.Result
	}
	return s.Name
}

// Stmt is a FortLite statement.
type Stmt interface{ stmtNode() }

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	LHS  *Ref
	RHS  Expr
	Line int
}

// CallStmt is a subroutine call.
type CallStmt struct {
	Name string
	Args []Expr
	Line int
}

// IfStmt is a block or one-line if.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// DoStmt is a counted do loop.
type DoStmt struct {
	Var  string
	From Expr
	To   Expr
	Body []Stmt
	Line int
}

// ReturnStmt exits the enclosing subprogram.
type ReturnStmt struct{ Line int }

func (*AssignStmt) stmtNode() {}
func (*CallStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*DoStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode() {}

// Expr is a FortLite expression.
type Expr interface{ exprNode() }

// NumLit is a numeric literal.
type NumLit struct {
	Value float64
	Line  int
}

// StrLit is a character literal (used by outfld labels).
type StrLit struct {
	Value string
	Line  int
}

// Ref is a (possibly derived-type, possibly indexed/called) reference:
//
//	name
//	name(args...)            — array element OR function call (ambiguous)
//	a%b%c                    — derived-type access; Components = [b c]
//	a(i)%b%c(j)              — indexed base with component chain
//
// Args attaches to the final component. Canonical name per the paper is
// the last component (or Name when there are none).
type Ref struct {
	Name       string
	Components []string
	Args       []Expr // nil = plain reference; non-nil = name(...) form
	HasParens  bool   // true when (...) was present, even with zero args
	Line       int
}

// Canonical returns the paper's canonical name: the final component of
// a derived-type chain, or the base name.
func (r *Ref) Canonical() string {
	if len(r.Components) > 0 {
		return r.Components[len(r.Components)-1]
	}
	return r.Name
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind // PLUS, MINUS, STAR, SLASH, POW, EQ, NE, LT, LE, GT, GE, AND, OR
	L, R Expr
	Line int
}

// UnaryExpr is unary minus or .not..
type UnaryExpr struct {
	Op   Kind // MINUS or NOT
	X    Expr
	Line int
}

func (*NumLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ref) exprNode()        {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}

// WalkExprs applies fn to every sub-expression of e, preorder.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Ref:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *BinaryExpr:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *UnaryExpr:
		WalkExprs(x.X, fn)
	}
}

// WalkStmts applies fn to every statement in body, recursing into
// control-flow bodies, preorder.
func WalkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch x := s.(type) {
		case *IfStmt:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		case *DoStmt:
			WalkStmts(x.Body, fn)
		}
	}
}
