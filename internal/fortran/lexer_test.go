package fortran

import (
	"reflect"
	"testing"
)

func kindsOf(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleAssignment(t *testing.T) {
	toks, err := NewLexer("x = a + b\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, IDENT, PLUS, IDENT, NEWLINE, EOF}
	if !reflect.DeepEqual(kindsOf(toks), want) {
		t.Fatalf("kinds = %v; want %v", kindsOf(toks), want)
	}
}

func TestLexCaseInsensitive(t *testing.T) {
	toks, err := NewLexer("MODULE Foo\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "module" || toks[1].Text != "foo" {
		t.Fatalf("texts = %q %q", toks[0].Text, toks[1].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := NewLexer("x = 1 ! set x\ny = 2\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, NUMBER, NEWLINE, IDENT, ASSIGN, NUMBER, NEWLINE, EOF}
	if !reflect.DeepEqual(kindsOf(toks), want) {
		t.Fatalf("kinds = %v", kindsOf(toks))
	}
}

func TestLexContinuation(t *testing.T) {
	toks, err := NewLexer("x = a + &\n    b\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, ASSIGN, IDENT, PLUS, IDENT, NEWLINE, EOF}
	if !reflect.DeepEqual(kindsOf(toks), want) {
		t.Fatalf("kinds = %v", kindsOf(toks))
	}
	// Line numbers still advance past the continuation.
	if toks[4].Line != 2 {
		t.Fatalf("continued token line = %d", toks[4].Line)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"1":         "1",
		"3.25":      "3.25",
		"8.1328e-3": "8.1328e-3",
		"1.5d0":     "1.5e0", // d exponent normalized
		"2.0_r8":    "2.0",   // kind suffix stripped
		".5":        ".5",
	}
	for src, want := range cases {
		toks, err := NewLexer(src + "\n").Tokens()
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != NUMBER || toks[0].Text != want {
			t.Fatalf("%q -> %v %q; want NUMBER %q", src, toks[0].Kind, toks[0].Text, want)
		}
	}
}

func TestLexNumberThenDotOp(t *testing.T) {
	toks, err := NewLexer("if (x == 1 .and. y == 2) then\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	var sawAnd bool
	for _, tok := range toks {
		if tok.Kind == AND {
			sawAnd = true
		}
	}
	if !sawAnd {
		t.Fatalf("no AND token in %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := NewLexer("call outfld('FLDS', flwds)\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != STRING || toks[3].Text != "FLDS" {
		t.Fatalf("string token = %v", toks[3])
	}
	if _, err := NewLexer("x = 'unterminated\n").Tokens(); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := NewLexer("a :: b => c ** d == e /= f <= g >= h % i\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, DCOLON, IDENT, ARROW, IDENT, POW, IDENT, EQ,
		IDENT, NE, IDENT, LE, IDENT, GE, IDENT, PERCENT, IDENT, NEWLINE, EOF}
	if !reflect.DeepEqual(kindsOf(toks), want) {
		t.Fatalf("kinds = %v", kindsOf(toks))
	}
}

func TestLexLogicalLiterals(t *testing.T) {
	toks, err := NewLexer("x = .true.\ny = .false.\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != NUMBER || toks[2].Text != "1" {
		t.Fatalf(".true. = %v", toks[2])
	}
	if toks[6].Kind != NUMBER || toks[6].Text != "0" {
		t.Fatalf(".false. = %v", toks[6])
	}
}

func TestLexBlankLinesCollapse(t *testing.T) {
	toks, err := NewLexer("a = 1\n\n\n\nb = 2\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("NEWLINE count = %d; want 2", count)
	}
}

func TestLexErrorOnGarbage(t *testing.T) {
	if _, err := NewLexer("x = #\n").Tokens(); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := NewLexer("a = 1\nb = 2\nc = 3\n").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	lines := map[string]int{}
	for _, tok := range toks {
		if tok.Kind == IDENT {
			lines[tok.Text] = tok.Line
		}
	}
	if lines["a"] != 1 || lines["b"] != 2 || lines["c"] != 3 {
		t.Fatalf("lines = %v", lines)
	}
}
