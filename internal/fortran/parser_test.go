package fortran

import (
	"strings"
	"testing"
)

const sampleModule = `
module microp_aero
  use shr_kind_mod, only: r8 => shr_kind_r8
  use wv_saturation
  implicit none
  real, parameter :: wsubmin = 0.20
  real :: wsub(:)
  type aero_state
    real :: ccn(:)
    real :: num(:)
  end type
  interface svp
    module procedure svp_water, svp_ice
  end interface
contains
  subroutine microp_aero_run(state, cld)
    type(aero_state) :: state
    real, intent(in) :: cld(:)
    real :: tmp(:)
    integer :: i
    tmp = max(wsubmin, cld * 0.5)
    wsub = tmp + state%num * 0.20
    if (wsubmin > 0.1) then
      wsub = wsub + 0.01
    else
      wsub = wsub - 0.01
    end if
    do i = 1, 4
      tmp = tmp * 1.01
    end do
    call outfld('WSUB', wsub)
  end subroutine microp_aero_run

  elemental function svp_water(t) result(es)
    real, intent(in) :: t
    real :: es
    es = 10.0 ** (t * 8.1328e-3 - 3.49149)
  end function svp_water

  function svp_ice(t) result(es)
    real, intent(in) :: t
    real :: es
    es = svp_water(t) * 0.99
    return
  end function svp_ice
end module microp_aero
`

func TestParseSampleModule(t *testing.T) {
	m, err := ParseModule(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "microp_aero" {
		t.Fatalf("name = %q", m.Name)
	}
	if len(m.Uses) != 2 {
		t.Fatalf("uses = %d", len(m.Uses))
	}
	if m.Uses[0].Module != "shr_kind_mod" || m.Uses[0].Only[0].Local != "r8" || m.Uses[0].Only[0].Remote != "shr_kind_r8" {
		t.Fatalf("use rename parsed wrong: %+v", m.Uses[0])
	}
	if m.Uses[1].Only != nil {
		t.Fatalf("bare use has only-list: %+v", m.Uses[1])
	}
	if len(m.Types) != 1 || m.Types[0].Name != "aero_state" || len(m.Types[0].Fields) != 2 {
		t.Fatalf("derived type = %+v", m.Types)
	}
	if len(m.Interfaces) != 1 || m.Interfaces[0].Name != "svp" || len(m.Interfaces[0].Procedures) != 2 {
		t.Fatalf("interface = %+v", m.Interfaces)
	}
	if len(m.Subprograms) != 3 {
		t.Fatalf("subprograms = %d", len(m.Subprograms))
	}
}

func TestParseDeclAttributes(t *testing.T) {
	m, err := ParseModule(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	// Module-level param.
	var param *VarDecl
	for i := range m.Decls {
		if m.Decls[i].Param {
			param = &m.Decls[i]
		}
	}
	if param == nil || param.Names[0] != "wsubmin" {
		t.Fatalf("parameter decl missing: %+v", m.Decls)
	}
	if lit, ok := param.Init.(*NumLit); !ok || lit.Value != 0.20 {
		t.Fatalf("param init = %+v", param.Init)
	}
	// Array decl.
	var wsub *VarDecl
	for i := range m.Decls {
		for _, n := range m.Decls[i].Names {
			if n == "wsub" {
				wsub = &m.Decls[i]
			}
		}
	}
	if wsub == nil || !wsub.IsArrayName("wsub") {
		t.Fatalf("wsub array decl: %+v", wsub)
	}
	// Intent in subprogram.
	run := m.Subprograms[0]
	var cld *VarDecl
	for i := range run.Decls {
		for _, n := range run.Decls[i].Names {
			if n == "cld" {
				cld = &run.Decls[i]
			}
		}
	}
	if cld == nil || cld.Intent != IntentIn {
		t.Fatalf("cld intent: %+v", cld)
	}
	// Derived-type decl.
	var st *VarDecl
	for i := range run.Decls {
		if run.Decls[i].IsType {
			st = &run.Decls[i]
		}
	}
	if st == nil || st.BaseType != "aero_state" {
		t.Fatalf("type decl: %+v", st)
	}
}

func TestParseSubprogramShapes(t *testing.T) {
	m, err := ParseModule(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	run := m.Subprograms[0]
	if run.Kind != KindSubroutine || len(run.Args) != 2 {
		t.Fatalf("run = %+v", run)
	}
	water := m.Subprograms[1]
	if water.Kind != KindFunction || !water.Elemental || water.ResultVar() != "es" {
		t.Fatalf("svp_water = %+v", water)
	}
	ice := m.Subprograms[2]
	if ice.Elemental {
		t.Fatal("svp_ice marked elemental")
	}
	// Body statement mix: return present.
	found := false
	WalkStmts(ice.Body, func(s Stmt) {
		if _, ok := s.(*ReturnStmt); ok {
			found = true
		}
	})
	if !found {
		t.Fatal("return statement missing")
	}
}

func TestParseControlFlow(t *testing.T) {
	m, err := ParseModule(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	run := m.Subprograms[0]
	var ifs, dos, calls, assigns int
	WalkStmts(run.Body, func(s Stmt) {
		switch s.(type) {
		case *IfStmt:
			ifs++
		case *DoStmt:
			dos++
		case *CallStmt:
			calls++
		case *AssignStmt:
			assigns++
		}
	})
	if ifs != 1 || dos != 1 || calls != 1 {
		t.Fatalf("ifs=%d dos=%d calls=%d", ifs, dos, calls)
	}
	if assigns < 5 {
		t.Fatalf("assigns = %d", assigns)
	}
}

func TestParseDerivedRefCanonical(t *testing.T) {
	src := `
module m
contains
  subroutine s(elem)
    real :: elem
    real :: x
    x = elem
  end subroutine
end module
`
	if _, err := ParseModule(src); err != nil {
		t.Fatal(err)
	}
	// Canonical name extraction on a deep chain.
	m, err := ParseModule(`
module m2
  real :: w(:)
contains
  subroutine s2(elem)
    real :: elem
    w = elem%derived%omega_p * 2.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	mul := assign.RHS.(*BinaryExpr)
	ref := mul.L.(*Ref)
	if ref.Canonical() != "omega_p" {
		t.Fatalf("canonical = %q", ref.Canonical())
	}
	if ref.Name != "elem" || len(ref.Components) != 2 {
		t.Fatalf("ref = %+v", ref)
	}
}

func TestParseIndexedDerivedRef(t *testing.T) {
	m, err := ParseModule(`
module m3
  real :: out(:)
contains
  subroutine s(elem, ie)
    real :: elem
    integer :: ie
    out = elem(ie)%derived%omega_p
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	ref := assign.RHS.(*Ref)
	if ref.Canonical() != "omega_p" {
		t.Fatalf("canonical = %q", ref.Canonical())
	}
}

func TestParsePrecedence(t *testing.T) {
	m, err := ParseModule(`
module m4
  real :: x
contains
  subroutine s(a, b, c)
    real :: a, b, c
    x = a + b * c ** 2.0
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	add := assign.RHS.(*BinaryExpr)
	if add.Op != PLUS {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != STAR {
		t.Fatalf("second op = %v", mul.Op)
	}
	pow := mul.R.(*BinaryExpr)
	if pow.Op != POW {
		t.Fatalf("third op = %v", pow.Op)
	}
}

func TestParseElseIfChain(t *testing.T) {
	m, err := ParseModule(`
module m5
  real :: x
contains
  subroutine s(a)
    real :: a
    if (a > 1.0) then
      x = 1.0
    else if (a > 0.5) then
      x = 0.5
    else
      x = 0.0
    end if
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	outer := m.Subprograms[0].Body[0].(*IfStmt)
	if len(outer.Else) != 1 {
		t.Fatalf("else = %+v", outer.Else)
	}
	inner, ok := outer.Else[0].(*IfStmt)
	if !ok || len(inner.Else) != 1 {
		t.Fatalf("nested else-if = %+v", outer.Else[0])
	}
}

func TestParseOneLineIf(t *testing.T) {
	m, err := ParseModule(`
module m6
  real :: x
contains
  subroutine s(a)
    real :: a
    if (a > 1.0) x = a
    if (a < 0.0) return
    if (a == 0.0) call helper(a)
  end subroutine
  subroutine helper(b)
    real :: b
    x = b
  end subroutine
end module
`)
	if err != nil {
		t.Fatal(err)
	}
	body := m.Subprograms[0].Body
	if len(body) != 3 {
		t.Fatalf("body = %d stmts", len(body))
	}
	for i, s := range body {
		ifs, ok := s.(*IfStmt)
		if !ok || len(ifs.Then) != 1 {
			t.Fatalf("stmt %d = %+v", i, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module\n",           // missing name
		"module m\n x = 1\n", // statement outside contains
		"module m\ncontains\nsubroutine s\nend subroutine\n", // missing end module
		"module m\nreal :: x(\nend module\n",                 // bad decl
	}
	for _, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Fatalf("accepted bad source %q", src)
		}
	}
}

func TestParseMultipleModulesPerFile(t *testing.T) {
	src := `
module a
  real :: x
end module a

module b
  use a
  real :: y
end module b
`
	mods, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 || mods[0].Name != "a" || mods[1].Name != "b" {
		t.Fatalf("mods = %+v", mods)
	}
}

func TestParseFigure2Example(t *testing.T) {
	// Mirrors the paper's Figure 2: a statement with RHS variables,
	// an intrinsic, and a function call, all flowing into the LHS.
	src := `
module fig2
  real :: omega(:)
contains
  subroutine compute(b, c, d, e, g, h)
    real :: b, c, d, e, g, h
    omega = alpha(b * min(c, d) + e * f(g + h))
  end subroutine
  function alpha(x) result(y)
    real :: x, y
    y = x * 2.0
  end function
  function f(x) result(y)
    real :: x, y
    y = x + 1.0
  end function
end module
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Subprograms[0].Body[0].(*AssignStmt)
	if assign.LHS.Name != "omega" {
		t.Fatalf("lhs = %+v", assign.LHS)
	}
	// Count leaf refs on the RHS.
	var names []string
	WalkExprs(assign.RHS, func(e Expr) {
		if r, ok := e.(*Ref); ok {
			names = append(names, r.Name)
		}
	})
	joined := strings.Join(names, ",")
	for _, want := range []string{"alpha", "b", "min", "c", "d", "e", "f", "g", "h"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing ref %q in %v", want, names)
		}
	}
}
