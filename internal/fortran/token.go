// Package fortran implements the FortLite front end: a lexer, AST, and
// recursive-descent parser for the Fortran subset the synthetic CESM
// corpus is written in. It plays the role fparser/F2PY play in the
// paper (§4.1): turning source files into syntax trees the metagraph
// builder consumes.
//
// FortLite covers the constructs the paper singles out as the hard
// parts of parsing CESM: modules, use statements with only-lists and
// renames, derived types (with chained % access), generic interfaces,
// subroutines and (elemental) functions, assignments whose right-hand
// sides mix array references and function calls indistinguishably,
// intrinsic procedures, if/do control flow, and outfld-style I/O calls.
package fortran

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Keywords are recognized case-insensitively by the lexer
// and normalized to lowercase in Token.Text.
const (
	EOF Kind = iota
	NEWLINE
	IDENT
	NUMBER
	STRING
	// Punctuation and operators.
	LPAREN  // (
	RPAREN  // )
	COMMA   // ,
	DCOLON  // ::
	COLON   // :
	PERCENT // %
	ASSIGN  // =
	ARROW   // =>
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	POW     // **
	EQ      // ==
	NE      // /=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	AND     // .and.
	OR      // .or.
	NOT     // .not.
)

var kindNames = map[Kind]string{
	EOF: "EOF", NEWLINE: "NEWLINE", IDENT: "IDENT", NUMBER: "NUMBER",
	STRING: "STRING", LPAREN: "(", RPAREN: ")", COMMA: ",", DCOLON: "::",
	COLON: ":", PERCENT: "%", ASSIGN: "=", ARROW: "=>", PLUS: "+",
	MINUS: "-", STAR: "*", SLASH: "/", POW: "**", EQ: "==", NE: "/=",
	LT: "<", LE: "<=", GT: ">", GE: ">=", AND: ".and.", OR: ".or.",
	NOT: ".not.",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a lexed token with its source line (1-based).
type Token struct {
	Kind Kind
	Text string
	Line int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d", t.Kind, t.Text, t.Line)
}
